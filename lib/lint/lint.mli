(** rc-lint: static protection-obligation and atomic-discipline checks
    for the reclamation stack (DESIGN.md §9).

    The analyzer parses each [.ml] file with the ppxlib parser and runs
    a set of purely syntactic rules over the AST — R1..R9, catalogued
    in {!rules}. Rules are deliberately approximate: they encode the
    repo's protocol conventions (announce/confirm naming, CAS-helper
    naming, the [ATOMIC] functor discipline of §8, the guard/retire
    life-cycle of §14) rather than a points-to analysis, which is
    exactly the Meyer–Wolff observation — the acquire/release/retire
    obligations are simple enough to be checked on the syntax of
    disciplined code.

    Which rules run on a file is decided by its path (the role system:
    functorized cores, [lib/ds/*_manual.ml] structures, SMR schemes,
    observability modules). The visitor machinery, role classification,
    and per-rule state are implementation details hidden behind this
    interface.

    Suppression: [\[@@@rc_lint.allow "R2"\]] as a floating structure
    attribute silences a rule from that point to the end of the file;
    [\[@rc_lint.allow "R2"\]] attached to an expression or value
    binding silences exactly that subtree/site. The payload ["all"]
    silences every rule. *)

val rules : (string * string) list
(** The rule catalogue: [(id, one-line description)] pairs, in order.
    This is what [rc_lint --list-rules] prints. *)

val lint_string :
  ?allow_unsafe:string list -> filename:string -> string -> Finding.t list
(** [lint_string ~filename src] parses [src] and returns its findings,
    sorted by {!Finding.compare}. [filename] determines the file's
    roles (and thus which rules run); [allow_unsafe] lists path
    suffixes where R4 (Obj escapes) is permitted. A parse failure is
    reported as a single finding with rule ["parse"] rather than an
    exception. *)

val lint_file : ?allow_unsafe:string list -> string -> Finding.t list
(** [lint_file path] reads and lints one file. *)

val lint_paths : ?allow_unsafe:string list -> string list -> Finding.t list
(** [lint_paths roots] lints every [.ml] file under the given roots
    (directories are walked recursively, [_build] and dotfiles
    skipped), returning the merged, sorted findings. *)

val load_allowlist : string -> string list
(** Read an R4 allowlist file: one path suffix per line, [#] comments
    and blank lines ignored. *)
