(* A single lint diagnostic, and its two renderings (human / JSON).

   Findings carry 1-based lines and 0-based columns, matching compiler
   diagnostics so editors can jump to them. The JSON shape is flat
   scalars only, the same discipline as [Obs.Report]'s exports. *)

type t = { file : string; line : int; col : int; rule : string; msg : string }

let compare a b =
  compare (a.file, a.line, a.col, a.rule, a.msg) (b.file, b.line, b.col, b.rule, b.msg)

let to_human f = Printf.sprintf "%s:%d:%d: %s: %s" f.file f.line f.col f.rule f.msg

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf {|{"file":"%s","line":%d,"col":%d,"rule":"%s","msg":"%s"}|}
    (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.msg)

let list_to_json fs =
  let b = Buffer.create 1024 in
  Buffer.add_string b {|{"version":1,"count":|};
  Buffer.add_string b (string_of_int (List.length fs));
  Buffer.add_string b {|,"findings":[|};
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (to_json f))
    fs;
  Buffer.add_string b "]}";
  Buffer.contents b
