(** A single rc-lint diagnostic, and its two renderings (human /
    JSON). Findings carry 1-based lines and 0-based columns, matching
    compiler diagnostics so editors can jump to them. *)

type t = { file : string; line : int; col : int; rule : string; msg : string }

val compare : t -> t -> int
(** Lexicographic on (file, line, col, rule, msg) — the stable order
    the engine sorts findings into. *)

val to_human : t -> string
(** [file:line:col: RULE: message], the compiler-diagnostic shape. *)

val to_json : t -> string
(** One finding as a flat JSON object (scalars only). *)

val list_to_json : t list -> string
(** The versioned envelope [{"version":1,"count":N,"findings":[...]}]
    the CI gate and external tooling consume. *)
