(** rc-lint: static protection-obligation and atomic-discipline checks
    for the reclamation stack (DESIGN.md §9).

    The analyzer parses each [.ml] file with the ppxlib parser and runs
    a set of purely syntactic rules over the AST. Rules are
    deliberately approximate — they encode the repo's protocol
    conventions (announce/confirm naming, CAS-helper naming, the
    [ATOMIC] functor discipline of §8) rather than a points-to
    analysis, which is exactly the Meyer–Wolff observation: the
    acquire/release/retire obligations are simple enough to be checked
    on the syntax of disciplined code.

    Suppression: [\[@@@rc_lint.allow "R2"\]] as a floating structure
    attribute silences a rule from that point to the end of the file;
    [\[@rc_lint.allow "R2"\]] attached to an expression, value binding,
    or record label silences exactly that subtree/site. The payload
    ["all"] silences every rule. *)

open Ppxlib

(* ------------------------------------------------------------------ *)
(* Rule catalogue                                                      *)
(* ------------------------------------------------------------------ *)

let rules : (string * string) list =
  [
    ( "R1",
      "raw-atomic: no direct Stdlib.Atomic operations inside the schedule-sensitive \
       functorized cores or any ATOMIC-parameterized functor body" );
    ( "R2",
      "acquire-release pairing: in lib/ds/*_manual.ml a function that acquires protection \
       must release it on every syntactic exit path" );
    ( "R3",
      "retire-discipline: retire calls must be dominated by a successful CAS/unlink \
       (an if-then whose condition runs compare_and_set or a *cas* helper)" );
    ( "R4",
      "unsafe-escape: Obj.magic/Obj.repr/Obj.obj forbidden outside \
       tools/rc_lint/allow_unsafe.txt" );
    ( "R5",
      "obs-consistency: an SMR scheme defining retire must touch \
       Obs.Scheme_metrics.on_retire so telemetry cannot silently rot" );
    ( "R6",
      "padding: per-domain hot counter arrays in lib/obs and lib/smr must go through \
       Repro_util.Padded (or annotate the deliberate layout)" );
    ( "R7",
      "knob-capture: scheme code must read tuning knobs through Knobs.t accessors, never \
       store them in its own record fields — a captured constant is invisible to the \
       adaptive controller" );
    ( "R8",
      "guard-escape: a guard obtained from an acquire-family call must not escape its \
       protection scope — not stored in a non-local ref or mutable field, not packed \
       into a returned record/tuple, not captured by a closure except as a \
       release-family argument" );
    ( "R9",
      "use-after-retire: a pointer passed to retire (directly or through a summarized \
       helper that retires its parameter) must not be used on any subsequent path in \
       the function" );
  ]

(* ------------------------------------------------------------------ *)
(* File roles                                                          *)
(* ------------------------------------------------------------------ *)

(* Which rules apply to a file is decided from its path. Fixture files
   under test/lint_fixtures mimic the real layout (ds/, smr/, obs/
   subdirectories), so the same role logic covers both trees. *)
type roles = {
  core : bool;  (* one of the three schedule-sensitive cores: whole-file R1 *)
  manual_ds : bool;  (* a *_manual.ml data structure: R2 + R3 *)
  smr_scheme : bool;  (* under an smr/ directory: R5 + R7 *)
  obs_smr : bool;  (* under obs/ or smr/: R6 *)
  unsafe_allowed : bool;  (* listed in allow_unsafe.txt: R4 off *)
  knobs_module : bool;  (* knobs.ml itself — the one legal knob store; R7 off *)
}

let path_segments p =
  String.split_on_char '/' p |> List.filter (fun s -> s <> "" && s <> ".")

(* Allowlist entries are workspace-relative ("lib/smr/ident.ml"); a
   file matches when its trailing path segments equal the entry's, so
   the linter works from any invocation root. *)
let suffix_matches ~entry path =
  let e = List.rev (path_segments entry) and p = List.rev (path_segments path) in
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> x = y && is_prefix a' b'
    | _ -> false
  in
  e <> [] && is_prefix e p

let core_basenames = [ "sticky_counter_f.ml"; "slot_protocol.ml"; "rc_cell.ml" ]

let roles_of ~allow_unsafe path =
  let segs = path_segments path in
  let base = match List.rev segs with b :: _ -> b | [] -> path in
  let dirs = match List.rev segs with _ :: d -> d | [] -> [] in
  let has d = List.mem d dirs in
  {
    core = List.mem base core_basenames;
    manual_ds = Filename.check_suffix base "_manual.ml";
    smr_scheme = has "smr";
    obs_smr = has "obs" || has "smr";
    unsafe_allowed = List.exists (fun entry -> suffix_matches ~entry path) allow_unsafe;
    knobs_module = String.equal base "knobs.ml";
  }

(* ------------------------------------------------------------------ *)
(* Suppression attributes                                              *)
(* ------------------------------------------------------------------ *)

let allow_payload (a : attribute) =
  if not (String.equal a.attr_name.txt "rc_lint.allow") then None
  else
    match a.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
        Some s
    | _ -> Some "all" (* a malformed payload suppresses everything rather than nothing *)

let allows rule attrs =
  List.exists
    (fun a ->
      match allow_payload a with
      | Some s -> String.equal s rule || String.equal (String.lowercase_ascii s) "all"
      | None -> false)
    attrs

(* ------------------------------------------------------------------ *)
(* Longident and subtree helpers                                       *)
(* ------------------------------------------------------------------ *)

let flat lid = try Longident.flatten_exn lid with _ -> []
let last_seg lid = match List.rev (flat lid) with s :: _ -> Some s | [] -> None

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Protection-protocol vocabularies. These encode the repo's naming
   conventions (Smr_intf + the manual data structures); a structure
   using different names can either adopt them or annotate. *)
let acquire_names = [ "protect"; "protect_read"; "try_acquire"; "acquire" ]

let release_names =
  [ "release"; "release_opt"; "release_all"; "unprotect"; "unannounce"; "discard"; "clear" ]

let raise_names = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]
let retire_names = [ "retire"; "retire_free" ]

(* [Fun.protect] is scoped-finalization, not slot protection. *)
let is_family names path =
  match List.rev path with
  | name :: _ -> List.mem name names && path <> [ "Fun"; "protect" ]
  | [] -> false

let apply_head e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> Some (flat txt)
  | _ -> None

let expr_contains_apply names e =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        if not !found then begin
          (match apply_head e with
          | Some path when is_family names path -> found := true
          | _ -> ());
          if not !found then super#expression e
        end
    end
  in
  it#expression e;
  !found

let contains_acquire = expr_contains_apply acquire_names
let contains_release = expr_contains_apply release_names

(* CAS vocabulary: the primitive itself plus the repo's retrying
   helpers (link_cas, edge_cas, cas_link, ...). *)
let is_casish_name s =
  let s = String.lowercase_ascii s in
  String.equal s "compare_and_set" || contains_substring ~sub:"cas" s

let pattern_mentions_none p =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! pattern p =
        (match p.ppat_desc with
        | Ppat_construct ({ txt = Lident "None"; _ }, _) -> found := true
        | _ -> ());
        if not !found then super#pattern p
    end
  in
  it#pattern p;
  !found

(* ------------------------------------------------------------------ *)
(* Finding accumulation                                                *)
(* ------------------------------------------------------------------ *)

type ctx = { file : string; mutable findings : Finding.t list }

let report ctx rule (loc : Location.t) msg =
  ctx.findings <-
    {
      Finding.file = ctx.file;
      line = loc.loc_start.pos_lnum;
      col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
      rule;
      msg;
    }
    :: ctx.findings

(* ------------------------------------------------------------------ *)
(* R1: raw-atomic                                                      *)
(* ------------------------------------------------------------------ *)

let atomic_value_ref lid =
  match flat lid with [ "Atomic"; _ ] | [ "Stdlib"; "Atomic"; _ ] -> true | _ -> false

let atomic_module_ref lid =
  match flat lid with [ "Atomic" ] | [ "Stdlib"; "Atomic" ] -> true | _ -> false

let r1_msg what =
  Printf.sprintf
    "raw `%s` bypasses the ATOMIC functor shim; the §8 schedule explorer cannot interpose \
     on this step — use the functor's atomic parameter"
    what

let run_r1 ctx ~whole_file st =
  let it =
    object (self)
      inherit Ast_traverse.iter as super
      val mutable scope = if whole_file then 1 else 0

      method! module_expr me =
        match me.pmod_desc with
        | Pmod_functor (Named (_, { pmty_desc = Pmty_ident { txt; _ }; _ }), body)
          when last_seg txt = Some "ATOMIC" ->
            scope <- scope + 1;
            self#module_expr body;
            scope <- scope - 1
        | Pmod_ident { txt; loc } when scope > 0 && atomic_module_ref txt ->
            report ctx "R1" loc (r1_msg (String.concat "." (flat txt)))
        | _ -> super#module_expr me

      method! value_binding vb =
        if allows "R1" vb.pvb_attributes then () else super#value_binding vb

      method! expression e =
        if allows "R1" e.pexp_attributes then ()
        else begin
          (if scope > 0 then
             match e.pexp_desc with
             | Pexp_ident { txt; loc } when atomic_value_ref txt ->
                 report ctx "R1" loc (r1_msg (String.concat "." (flat txt)))
             | _ -> ());
          super#expression e
        end

      method! core_type t =
        if allows "R1" t.ptyp_attributes then ()
        else begin
          (if scope > 0 then
             match t.ptyp_desc with
             | Ptyp_constr ({ txt; loc }, _) when atomic_value_ref txt ->
                 report ctx "R1" loc (r1_msg (String.concat "." (flat txt)))
             | _ -> ());
          super#core_type t
        end

      method! open_description od =
        (if scope > 0 && atomic_module_ref od.popen_expr.txt then
           report ctx "R1" od.popen_loc (r1_msg (String.concat "." (flat od.popen_expr.txt))));
        super#open_description od
    end
  in
  it#structure st

(* ------------------------------------------------------------------ *)
(* R2: acquire-release pairing                                         *)
(* ------------------------------------------------------------------ *)

(* Per structure-level function: if its body performs an
   acquire-family call it must (a) mention a release-family call
   somewhere (unless the function is itself a guard constructor by
   naming convention: name starts with "protect" or mentions
   "acquire"), and (b) not raise on a
   path with no preceding release. "Preceding" is judged per enclosing
   sequence/let chain; a raise in the [None] arm of a match whose
   scrutinee performs the acquire is exempt (no slot was obtained). *)

let r2_guard_constructor name =
  let lname = String.lowercase_ascii name in
  String.length lname >= 7 && String.sub lname 0 7 = "protect"
  || contains_substring ~sub:"acquire" lname

let r2_check_binding ctx name (vb : value_binding) =
  let body = vb.pvb_expr in
  if not (contains_acquire body) then ()
  else begin
    if (not (r2_guard_constructor name)) && not (contains_release body) then
      report ctx "R2" vb.pvb_loc
        (Printf.sprintf
           "`%s` acquires protection but contains no release/unprotect — every exit path \
            must return its announcement slot"
           name);
    let it =
      object (self)
        inherit Ast_traverse.iter as super
        val mutable released = false
        val mutable exempt = false

        method! expression e =
          if allows "R2" e.pexp_attributes then ()
          else begin
            let saved_r = released and saved_e = exempt in
            (match e.pexp_desc with
            | Pexp_sequence (e1, e2) ->
                self#expression e1;
                released <- saved_r || contains_release e1;
                exempt <- saved_e;
                self#expression e2
            | Pexp_let (_, vbs, rest) ->
                List.iter
                  (fun vb ->
                    self#expression vb.pvb_expr;
                    released <- saved_r;
                    exempt <- saved_e)
                  vbs;
                released <- saved_r || List.exists (fun vb -> contains_release vb.pvb_expr) vbs;
                self#expression rest
            | Pexp_match (scrut, cases) ->
                self#expression scrut;
                let acquiring = contains_acquire scrut in
                List.iter
                  (fun c ->
                    released <- saved_r;
                    exempt <- saved_e || (acquiring && pattern_mentions_none c.pc_lhs);
                    Option.iter self#expression c.pc_guard;
                    self#expression c.pc_rhs)
                  cases
            | Pexp_try (body, cases) ->
                (* A raise inside [try] does not exit the function. *)
                exempt <- true;
                self#expression body;
                released <- saved_r;
                exempt <- saved_e;
                List.iter
                  (fun c ->
                    Option.iter self#expression c.pc_guard;
                    self#expression c.pc_rhs;
                    released <- saved_r;
                    exempt <- saved_e)
                  cases
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
              when is_family raise_names (flat txt) ->
                if not (released || exempt) then
                  report ctx "R2" e.pexp_loc
                    (Printf.sprintf
                       "early exit via `%s` on a path that may hold a protection slot — \
                        release the guard first (or annotate with [@rc_lint.allow \"R2\"])"
                       (String.concat "." (flat txt)));
                List.iter (fun (_, a) -> self#expression a) args
            | _ -> super#expression e);
            released <- saved_r;
            exempt <- saved_e
          end
      end
    in
    it#expression body
  end

let run_r2 ctx st =
  let it =
    object
      inherit Ast_traverse.iter as super

      method! structure_item si =
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                if allows "R2" vb.pvb_attributes then ()
                else
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt = name; _ } -> r2_check_binding ctx name vb
                  | _ -> ())
              vbs
        | _ -> super#structure_item si
    end
  in
  it#structure st

(* ------------------------------------------------------------------ *)
(* R3: retire-discipline                                               *)
(* ------------------------------------------------------------------ *)

(* A retire call is accepted only inside the then-arm of an
   if-expression whose condition runs a CAS (directly, or through a
   variable let-bound to a CAS result), anywhere below that arm —
   including local helper functions defined inside it, which is how
   nm_tree's Fig 1a retire_chain loop is structured. *)

let run_r3 ctx st =
  let it =
    object (self)
      inherit Ast_traverse.iter as super
      val mutable dominated = false
      val mutable casvars : string list = []

      method private casish_cond c =
        let found = ref false in
        let vars = casvars in
        let probe =
          object
            inherit Ast_traverse.iter as deeper

            method! expression e =
              if not !found then begin
                (match e.pexp_desc with
                | Pexp_ident { txt = Lident v; _ } when List.mem v vars -> found := true
                | _ -> (
                    match apply_head e with
                    | Some path
                      when (match List.rev path with
                           | n :: _ -> is_casish_name n
                           | [] -> false) ->
                        found := true
                    | _ -> ()));
                if not !found then deeper#expression e
              end
          end
        in
        probe#expression c;
        !found

      method! value_binding vb =
        let skip =
          allows "R3" vb.pvb_attributes
          ||
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = name; _ } -> List.mem name retire_names
          | _ -> false
        in
        if skip then () else super#value_binding vb

      method! expression e =
        if allows "R3" e.pexp_attributes then ()
        else begin
          let saved_d = dominated and saved_v = casvars in
          (match e.pexp_desc with
          | Pexp_let (_, vbs, body) ->
              List.iter (fun vb -> self#value_binding vb) vbs;
              dominated <- saved_d;
              List.iter
                (fun vb ->
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt = v; _ } when self#casish_cond vb.pvb_expr ->
                      casvars <- v :: casvars
                  | _ -> ())
                vbs;
              self#expression body
          | Pexp_ifthenelse (cond, then_, else_) ->
              self#expression cond;
              dominated <- saved_d || self#casish_cond cond;
              self#expression then_;
              dominated <- saved_d;
              Option.iter self#expression else_
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
            when is_family retire_names (flat txt) ->
              if not dominated then
                report ctx "R3" e.pexp_loc
                  (Printf.sprintf
                     "`%s` outside a CAS-success arm — the node may still be reachable; \
                      retire only after a successful unlink, or annotate the helper"
                     (String.concat "." (flat txt)));
              List.iter (fun (_, a) -> self#expression a) args
          | _ -> super#expression e);
          dominated <- saved_d;
          casvars <- saved_v
        end
    end
  in
  it#structure st

(* ------------------------------------------------------------------ *)
(* R4: unsafe-escape                                                   *)
(* ------------------------------------------------------------------ *)

let obj_escape lid =
  match flat lid with
  | [ "Obj"; m ] | [ "Stdlib"; "Obj"; m ] -> List.mem m [ "magic"; "repr"; "obj" ]
  | _ -> false

let run_r4 ctx st =
  let it =
    object
      inherit Ast_traverse.iter as super

      method! value_binding vb =
        if allows "R4" vb.pvb_attributes then () else super#value_binding vb

      method! expression e =
        if allows "R4" e.pexp_attributes then ()
        else begin
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } when obj_escape txt ->
              report ctx "R4" loc
                (Printf.sprintf
                   "unsafe `%s` escape hatch — add this file to \
                    tools/rc_lint/allow_unsafe.txt if the use is deliberate"
                   (String.concat "." (flat txt)))
          | _ -> ());
          super#expression e
        end
    end
  in
  it#structure st

(* ------------------------------------------------------------------ *)
(* R5: obs-consistency                                                 *)
(* ------------------------------------------------------------------ *)

let run_r5 ctx st =
  let retire_binding = ref None in
  let touched = ref false in
  let suppressed = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! structure_item si =
        (match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = "retire"; _ } ->
                    if allows "R5" vb.pvb_attributes then suppressed := true
                    else if !retire_binding = None then retire_binding := Some vb.pvb_loc
                | _ -> ())
              vbs
        | _ -> ());
        super#structure_item si

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match List.rev (flat txt) with
            | "on_retire" :: "Scheme_metrics" :: _ -> touched := true
            | _ -> ())
        | _ -> ());
        super#expression e
    end
  in
  it#structure st;
  match !retire_binding with
  | Some loc when (not !touched) && not !suppressed ->
      report ctx "R5" loc
        "scheme defines `retire` but never calls Obs.Scheme_metrics.on_retire — the §7 \
         telemetry (retire counters, reclaim-latency histogram) would silently rot"
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* R6: padding                                                         *)
(* ------------------------------------------------------------------ *)

let is_int_type t =
  match t.ptyp_desc with Ptyp_constr ({ txt = Lident "int"; _ }, []) -> true | _ -> false

let is_atomic_type t =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, [ _ ]) -> (
      match flat txt with [ "Atomic"; "t" ] | [ "Stdlib"; "Atomic"; "t" ] -> true | _ -> false)
  | _ -> false

let run_r6 ctx st =
  let it =
    object
      inherit Ast_traverse.iter as super

      method! label_declaration ld =
        let hot_array =
          match ld.pld_type.ptyp_desc with
          | Ptyp_constr ({ txt = Lident "array"; _ }, [ elt ]) ->
              if is_int_type elt then Some "int array"
              else if is_atomic_type elt then Some "Atomic.t array"
              else None
          | _ -> None
        in
        (match hot_array with
        | Some shape
          when not
                 (allows "R6" ld.pld_attributes || allows "R6" ld.pld_type.ptyp_attributes) ->
            report ctx "R6" ld.pld_loc
              (Printf.sprintf
                 "field `%s` is a plain %s — per-domain hot counters share cache lines; use \
                  Repro_util.Padded, or annotate a deliberate layout with [@rc_lint.allow \
                  \"R6\"]"
                 ld.pld_name.txt shape)
        | _ -> ());
        super#label_declaration ld
    end
  in
  it#structure st

(* ------------------------------------------------------------------ *)
(* R7: knob-capture                                                    *)
(* ------------------------------------------------------------------ *)

(* A scheme record field named after a tuning knob is a constant
   captured at [create] time: the adaptive controller's setters write
   the Knobs.t block, so a copy in scheme state silently stops
   tracking. Schemes store the [Knobs.t] itself and re-read through
   its accessors on every use. ([slots_per_thread] is exempt —
   structural, sized at create by design.) *)

let knob_field_names = [ "epoch_freq"; "cleanup_freq"; "batch_cap"; "sync_scan" ]

let run_r7 ctx st =
  let it =
    object
      inherit Ast_traverse.iter as super

      method! label_declaration ld =
        if
          List.mem ld.pld_name.txt knob_field_names
          && not
               (allows "R7" ld.pld_attributes || allows "R7" ld.pld_type.ptyp_attributes)
        then
          report ctx "R7" ld.pld_loc
            (Printf.sprintf
               "field `%s` captures a tuning knob in scheme state — store the Knobs.t \
                block and read `Knobs.%s` at each use so the adaptive controller can \
                retune it"
               ld.pld_name.txt ld.pld_name.txt);
        super#label_declaration ld
    end
  in
  it#structure st

(* ------------------------------------------------------------------ *)
(* R8: guard-escape                                                    *)
(* ------------------------------------------------------------------ *)

(* Interprocedural life-cycle rule 1 (Meyer–Wolff's guard scoping as a
   syntactic check): a guard value let-bound from an acquire-family
   call is *tainted*; it must die inside its function. Escape shapes:

   - assigned into a ref that is NOT let-bound to [ref ...] in the same
     function (a local ref is the legal hand-over-hand idiom — see
     nm_tree's seek — because it cannot outlive the frame);
   - stored into a mutable record field ([x.f <- ... g ...]);
   - packed into a record literal (a cursor that outlives the scope);
   - returned in tail position (bare, or inside a tuple/construct);
   - captured by a closure, unless every mention inside the closure is
     an argument of a release-family call (the [Fun.protect
     ~finally:(fun () -> release t g)] finalizer idiom).

   Taint is deliberately narrow: only [let]-bound variables whose name
   looks like a guard ([g], [g_*], [g<digit/letter>], [guard*]) and
   whose right-hand side *is* an acquire-family application. Guards
   bound by match patterns ([Some g -> ...]) are the caller's problem
   at the binding site that produced them, and functions that exist to
   construct guards (protect*/acquire* by name, as in R2) are exempt. *)

let guardish_name n =
  let ln = String.lowercase_ascii n in
  String.equal ln "g"
  || (String.length ln >= 2 && ln.[0] = 'g' && (ln.[1] = '_' || String.length ln <= 3))
  || (String.length ln >= 5 && String.sub ln 0 5 = "guard")

let is_acquire_apply e =
  match apply_head e with Some path -> is_family acquire_names path | None -> false

let pat_vars p =
  let acc = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! pattern q =
        (match q.ppat_desc with
        | Ppat_var { txt; _ } -> acc := txt :: !acc
        | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
        | _ -> ());
        super#pattern q
    end
  in
  it#pattern p;
  !acc

(* Tainted variables let-bound by [vbs]: guard-named vars (bare or in a
   tuple pattern) whose RHS is an acquire-family application. *)
let r8_taints_of vbs =
  List.concat_map
    (fun vb ->
      if is_acquire_apply vb.pvb_expr then
        List.filter guardish_name (pat_vars vb.pvb_pat)
      else [])
    vbs

(* Local refs let-bound by [vbs]: [let r = ref ...]. *)
let r8_refs_of vbs =
  List.concat_map
    (fun vb ->
      match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
      | ( Ppat_var { txt; _ },
          Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "ref"; _ }; _ }, _) ) ->
          [ txt ]
      | _ -> [])
    vbs

let minus vars names = List.filter (fun v -> not (List.mem v names)) vars

let param_pats params =
  List.filter_map
    (fun p ->
      match p.pparam_desc with Pparam_val (_, _, pat) -> Some pat | Pparam_newtype _ -> None)
    params

let param_vars params = List.concat_map pat_vars (param_pats params)

(* Does [e] mention a tainted guard at all — skipping release-family
   call arguments when [skip_release], and respecting lambda-parameter
   shadowing? *)
let mentions_guard ~skip_release tainted e0 =
  let found = ref false in
  let rec make tainted =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        if !found || tainted = [] then ()
        else
          match e.pexp_desc with
          | Pexp_ident { txt = Lident v; _ } when List.mem v tainted -> found := true
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
            when skip_release && is_family release_names (flat txt) ->
              ()
          | Pexp_function (params, _, fbody) -> (
              let tainted = minus tainted (param_vars params) in
              match fbody with
              | Pfunction_body e' -> (make tainted)#expression e'
              | Pfunction_cases (cases, _, _) ->
                  List.iter
                    (fun c ->
                      (make (minus tainted (pat_vars c.pc_lhs)))#expression c.pc_rhs)
                    cases)
          | _ -> super#expression e
    end
  in
  (make tainted)#expression e0;
  !found

(* A tainted ident reachable through pure data structure only:
   tuples, constructs, variants, record fields. This is the "the guard
   itself is in the returned value" test — calls are not structural, so
   [loop g] or [release t g] never match. *)
let rec structural_mention tainted e =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident v; _ } -> List.mem v tainted
  | Pexp_tuple es -> List.exists (structural_mention tainted) es
  | Pexp_construct (_, Some e') | Pexp_variant (_, Some e') -> structural_mention tainted e'
  | Pexp_record (fields, base) ->
      List.exists (fun (_, e') -> structural_mention tainted e') fields
      || (match base with Some b -> structural_mention tainted b | None -> false)
  | Pexp_constraint (e', _) -> structural_mention tainted e'
  | _ -> false

let run_r8 ctx st =
  (* Tail positions of a function body: where a structural mention of a
     tainted guard means "returned to the caller". *)
  let rec check_tail tainted e =
    (* no empty-taint short-circuit: the top-level call starts empty
       and only picks up taint at the [let]s it walks through *)
    if allows "R8" e.pexp_attributes then ()
    else
      match e.pexp_desc with
      | Pexp_function (params, _, Pfunction_body body) ->
          check_tail (minus tainted (param_vars params)) body
      | Pexp_function (params, _, Pfunction_cases (cases, _, _)) ->
          let tainted = minus tainted (param_vars params) in
          List.iter (fun c -> check_tail (minus tainted (pat_vars c.pc_lhs)) c.pc_rhs) cases
      | Pexp_let (_, vbs, body) ->
          let tainted = minus tainted (List.concat_map (fun vb -> pat_vars vb.pvb_pat) vbs) in
          check_tail (tainted @ r8_taints_of vbs) body
      | Pexp_sequence (_, e2) -> check_tail tainted e2
      | Pexp_ifthenelse (_, t, eo) ->
          check_tail tainted t;
          Option.iter (check_tail tainted) eo
      | Pexp_match (_, cases) | Pexp_try (_, cases) ->
          List.iter (fun c -> check_tail (minus tainted (pat_vars c.pc_lhs)) c.pc_rhs) cases
      | Pexp_constraint (e', _) -> check_tail tainted e'
      | Pexp_ident _ | Pexp_tuple _ | Pexp_construct _ | Pexp_variant _ ->
          if structural_mention tainted e then
            report ctx "R8" e.pexp_loc
              "guard escapes its protection scope: returned from a non-constructor \
               function — the protection interval must close before the frame does \
               (release first, or name the function protect*/acquire* if it is a guard \
               constructor)"
      | _ -> ()
  in
  let walk_binding vb =
    let it =
      object (self)
        inherit Ast_traverse.iter as super
        val mutable tainted : string list = []
        val mutable refs : string list = []

        method! expression e =
          if allows "R8" e.pexp_attributes then ()
          else begin
            let saved_t = tainted and saved_r = refs in
            (match e.pexp_desc with
            | Pexp_let (_, vbs, body) ->
                List.iter (fun vb -> self#expression vb.pvb_expr) vbs;
                let bound = List.concat_map (fun vb -> pat_vars vb.pvb_pat) vbs in
                tainted <- minus tainted bound @ r8_taints_of vbs;
                refs <- minus refs bound @ r8_refs_of vbs;
                self#expression body
            | Pexp_function (params, _, fbody) ->
                let mentions =
                  match fbody with
                  | Pfunction_body e' -> mentions_guard ~skip_release:true tainted e'
                  | Pfunction_cases (cases, _, _) ->
                      List.exists
                        (fun c -> mentions_guard ~skip_release:true tainted c.pc_rhs)
                        cases
                in
                if mentions then
                  report ctx "R8" e.pexp_loc
                    "guard escapes its protection scope: captured by a closure (only \
                     release-family calls may mention a guard from inside a closure — \
                     the closure may run after the announcement is gone)";
                tainted <- minus tainted (param_vars params);
                (match fbody with
                | Pfunction_body e' -> self#expression e'
                | Pfunction_cases (cases, _, _) ->
                    let t0 = tainted in
                    List.iter
                      (fun c ->
                        tainted <- minus t0 (pat_vars c.pc_lhs);
                        self#expression c.pc_rhs)
                      cases)
            | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
                self#expression scrut;
                List.iter
                  (fun c ->
                    tainted <- minus saved_t (pat_vars c.pc_lhs);
                    refs <- saved_r;
                    Option.iter self#expression c.pc_guard;
                    self#expression c.pc_rhs)
                  cases
            | Pexp_apply
                ( { pexp_desc = Pexp_ident { txt = Lident ":="; _ }; _ },
                  [ (_, { pexp_desc = Pexp_ident { txt = Lident r; _ }; _ }); (_, rhs) ] )
              ->
                if
                  (not (List.mem r refs))
                  && mentions_guard ~skip_release:false tainted rhs
                then
                  report ctx "R8" e.pexp_loc
                    (Printf.sprintf
                       "guard escapes its protection scope: assigned into `%s`, a ref \
                        not local to this function — the guard may be read after its \
                        announcement is released"
                       r);
                self#expression rhs
            | Pexp_setfield (obj, field, rhs) ->
                if mentions_guard ~skip_release:false tainted rhs then
                  report ctx "R8" e.pexp_loc
                    (Printf.sprintf
                       "guard escapes its protection scope: stored into mutable field \
                        `%s` — state that outlives the frame must not hold a live guard"
                       (match last_seg field.txt with Some s -> s | None -> "?"));
                self#expression obj;
                self#expression rhs
            | Pexp_record _ ->
                if structural_mention tainted e then
                  report ctx "R8" e.pexp_loc
                    "guard escapes its protection scope: packed into a record literal — \
                     a cursor or state value must carry released (or caller-owned) \
                     guards only"
                else super#expression e
            | _ -> super#expression e);
            tainted <- saved_t;
            refs <- saved_r
          end
      end
    in
    it#expression vb.pvb_expr;
    check_tail [] vb.pvb_expr
  in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! structure_item si =
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                if allows "R8" vb.pvb_attributes then ()
                else
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt = name; _ } when not (r2_guard_constructor name) ->
                      walk_binding vb
                  | _ -> ())
              vbs
        | _ -> super#structure_item si
    end
  in
  it#structure st

(* ------------------------------------------------------------------ *)
(* R9: use-after-retire                                                *)
(* ------------------------------------------------------------------ *)

(* Interprocedural life-cycle rule 2: once a pointer variable is passed
   to retire — directly, or through a helper whose summary says it
   retires that parameter — any later occurrence of the variable on any
   path in the function is flagged. After a retire the node can be
   freed by any concurrent eject; even reading it is the race the §14
   sanitizer hunts dynamically, and this is its static shadow.

   Pass 1 builds per-function summaries (one top-down sweep over the
   file: which positional parameters flow into a retire-family call);
   pass 2 walks every function body in syntactic order with a
   may-retire set — branch arms are analyzed independently and their
   exits unioned, rebinding a name clears it, and closures are analyzed
   under the state at their creation point. *)

type r9_summary = (string, int list) Hashtbl.t
(* function name -> positional (unlabelled) argument indices it retires *)

let r9_positional_params e =
  (* the Nolabel parameter names of a [fun p1 -> fun p2 -> ...] chain *)
  let rec go acc e =
    match e.pexp_desc with
    | Pexp_function (params, _, fbody) -> (
        let acc =
          List.fold_left
            (fun acc p ->
              match p.pparam_desc with
              | Pparam_val (Nolabel, _, { ppat_desc = Ppat_var { txt; _ }; _ }) ->
                  txt :: acc
              | _ -> acc)
            acc params
        in
        match fbody with Pfunction_body e' -> go acc e' | Pfunction_cases _ -> List.rev acc)
    | Pexp_constraint (e', _) -> go acc e'
    | _ -> List.rev acc
  in
  go [] e

let r9_build_summaries st : r9_summary =
  let summaries : r9_summary = Hashtbl.create 16 in
  let scan_function name rhs =
    let params = r9_positional_params rhs in
    if params <> [] then begin
      let retired_params = ref [] in
      let it =
        object
          inherit Ast_traverse.iter as super

          method! expression e =
            (match e.pexp_desc with
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
              when is_family retire_names (flat txt) -> (
                (* only the LAST positional ident is the retired
                   pointer; leading ones are the context *)
                let last_ident =
                  List.fold_left
                    (fun acc (lbl, a) ->
                      match (lbl, a.pexp_desc) with
                      | Nolabel, Pexp_ident { txt = Lident v; _ } -> Some v
                      | _ -> acc)
                    None args
                in
                match last_ident with
                | Some v -> (
                    match List.find_index (String.equal v) params with
                    | Some i when not (List.mem i !retired_params) ->
                        retired_params := i :: !retired_params
                    | _ -> ())
                | None -> ())
            | _ -> ());
            super#expression e
        end
      in
      it#expression rhs;
      if !retired_params <> [] then Hashtbl.replace summaries name !retired_params
    end
  in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! value_binding vb =
        (match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt = name; _ } when not (List.mem name retire_names) ->
            scan_function name vb.pvb_expr
        | _ -> ());
        super#value_binding vb
    end
  in
  it#structure st;
  summaries

let run_r9 ctx st =
  let summaries = r9_build_summaries st in
  (* [walk retired e] returns the may-retire set after [e]; [retired]
     maps a variable to the line of its retire site. *)
  let rec walk (retired : (string * int) list) e : (string * int) list =
    if allows "R9" e.pexp_attributes then retired
    else begin
      let use v loc =
        match List.assoc_opt v retired with
        | Some line ->
            report ctx "R9" loc
              (Printf.sprintf
                 "`%s` used after retire (retired at line %d) — a retired node may be \
                  freed by any concurrent eject; copy what you need before retiring, or \
                  annotate with [@rc_lint.allow \"R9\"]"
                 v line)
        | None -> ()
      in
      let unbind vars retired = List.filter (fun (v, _) -> not (List.mem v vars)) retired in
      (* The retired pointer is the LAST positional ident argument —
         leading positional args are the per-thread context
         ([retire c n], never the other way around). *)
      let retire_args args retired =
        let last_ident =
          List.fold_left
            (fun acc (lbl, a) ->
              match (lbl, a.pexp_desc) with
              | Nolabel, Pexp_ident { txt = Lident v; _ } -> Some (v, a.pexp_loc)
              | _ -> acc)
            None args
        in
        match last_ident with
        | Some (v, loc) when not (List.mem_assoc v retired) ->
            (v, loc.loc_start.pos_lnum) :: retired
        | _ -> retired
      in
      match e.pexp_desc with
      | Pexp_ident { txt = Lident v; _ } ->
          use v e.pexp_loc;
          retired
      | Pexp_let (_, vbs, body) ->
          let r = List.fold_left (fun r vb -> walk r vb.pvb_expr) retired vbs in
          let bound = List.concat_map (fun vb -> pat_vars vb.pvb_pat) vbs in
          walk (unbind bound r) body
      | Pexp_sequence (e1, e2) -> walk (walk retired e1) e2
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
        when is_family retire_names (flat txt) ->
          (* flag uses inside the args first (covers double retire),
             then mark the retired variables *)
          let r = List.fold_left (fun r (_, a) -> walk r a) retired args in
          retire_args args r
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident f; _ }; _ }, args)
        when Hashtbl.mem summaries f ->
          let r = List.fold_left (fun r (_, a) -> walk r a) retired args in
          let retiring = Hashtbl.find summaries f in
          let _, r =
            List.fold_left
              (fun (i, acc) (lbl, a) ->
                match (lbl, a.pexp_desc) with
                | Nolabel, Pexp_ident { txt = Lident v; _ } ->
                    if List.mem i retiring && not (List.mem_assoc v acc) then
                      (i + 1, (v, a.pexp_loc.loc_start.pos_lnum) :: acc)
                    else (i + 1, acc)
                | Nolabel, _ -> (i + 1, acc)
                | _ -> (i, acc))
              (0, r) args
          in
          r
      | Pexp_apply (head, args) ->
          List.fold_left (fun r (_, a) -> walk r a) (walk retired head) args
      | Pexp_ifthenelse (cond, t, eo) ->
          let r0 = walk retired cond in
          let r1 = walk r0 t in
          let r2 = match eo with Some e' -> walk r0 e' | None -> r0 in
          (* may-retire: union of the arms *)
          r1 @ List.filter (fun (v, _) -> not (List.mem_assoc v r1)) r2
      | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
          let r0 = walk retired scrut in
          List.fold_left
            (fun acc c ->
              Option.iter (fun g -> ignore (walk r0 g)) c.pc_guard;
              let ri = walk (unbind (pat_vars c.pc_lhs) r0) c.pc_rhs in
              acc @ List.filter (fun (v, _) -> not (List.mem_assoc v acc)) ri)
            r0 cases
      | Pexp_function (params, _, fbody) ->
          let inner = unbind (param_vars params) retired in
          (match fbody with
          | Pfunction_body e' -> ignore (walk inner e')
          | Pfunction_cases (cases, _, _) ->
              List.iter
                (fun c -> ignore (walk (unbind (pat_vars c.pc_lhs) inner) c.pc_rhs))
                cases);
          retired
      | Pexp_tuple es | Pexp_array es -> List.fold_left walk retired es
      | Pexp_construct (_, eo) | Pexp_variant (_, eo) ->
          Option.fold ~none:retired ~some:(walk retired) eo
      | Pexp_record (fields, base) ->
          let r = Option.fold ~none:retired ~some:(walk retired) base in
          List.fold_left (fun r (_, e') -> walk r e') r fields
      | Pexp_field (e', _) -> walk retired e'
      | Pexp_setfield (o, _, v) -> walk (walk retired o) v
      | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) | Pexp_assert e' | Pexp_lazy e'
      | Pexp_open (_, e') ->
          walk retired e'
      | Pexp_while (c, b) ->
          ignore (walk (walk retired c) b);
          retired
      | Pexp_for (p, lo, hi, _, b) ->
          let r = walk (walk retired lo) hi in
          ignore (walk (unbind (pat_vars p) r) b);
          r
      | Pexp_letmodule (_, _, e') -> walk retired e'
      | _ ->
          (* other node kinds neither bind nor retire in this codebase;
             still surface any use of an already-retired variable *)
          if retired <> [] then begin
            let probe =
              object
                inherit Ast_traverse.iter as super

                method! expression e' =
                  (match e'.pexp_desc with
                  | Pexp_ident { txt = Lident v; _ } -> use v e'.pexp_loc
                  | _ -> ());
                  super#expression e'
              end
            in
            probe#expression e
          end;
          retired
    end
  in
  let top =
    object
      inherit Ast_traverse.iter as super

      method! structure_item si =
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let skip =
                  allows "R9" vb.pvb_attributes
                  ||
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt = name; _ } -> List.mem name retire_names
                  | _ -> false
                in
                if not skip then ignore (walk [] vb.pvb_expr))
              vbs
        | _ -> super#structure_item si
    end
  in
  top#structure st

(* Floating [@@@rc_lint.allow "R"] attributes: each one suppresses the
   rule for every finding at or below its own line. *)
let file_suppressions st =
  let spans = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! structure_item si =
        (match si.pstr_desc with
        | Pstr_attribute a -> (
            match allow_payload a with
            | Some rule -> spans := (rule, a.attr_loc.loc_start.pos_lnum) :: !spans
            | None -> ())
        | _ -> ());
        super#structure_item si
    end
  in
  it#structure st;
  !spans

let suppressed_by spans (f : Finding.t) =
  List.exists
    (fun (rule, from_line) ->
      (String.equal rule f.Finding.rule || String.equal (String.lowercase_ascii rule) "all")
      && f.Finding.line >= from_line)
    spans

let lint_structure ~roles ctx st =
  run_r1 ctx ~whole_file:roles.core st;
  if roles.manual_ds then begin
    run_r2 ctx st;
    run_r3 ctx st;
    run_r8 ctx st;
    run_r9 ctx st
  end;
  if not roles.unsafe_allowed then run_r4 ctx st;
  if roles.smr_scheme then run_r5 ctx st;
  if roles.obs_smr then run_r6 ctx st;
  if roles.smr_scheme && not roles.knobs_module then run_r7 ctx st;
  let spans = file_suppressions st in
  ctx.findings <- List.filter (fun f -> not (suppressed_by spans f)) ctx.findings

let lint_string ?(allow_unsafe = []) ~filename src =
  let ctx = { file = filename; findings = [] } in
  let roles = roles_of ~allow_unsafe filename in
  (try
     let lexbuf = Lexing.from_string src in
     Lexing.set_filename lexbuf filename;
     let st = Parse.implementation lexbuf in
     lint_structure ~roles ctx st
   with e ->
     let line =
       match e with
       | Syntaxerr.Error err -> (Syntaxerr.location_of_error err).loc_start.pos_lnum
       | _ -> 1
     in
     ctx.findings <-
       [
         {
           Finding.file = filename;
           line;
           col = 0;
           rule = "parse";
           msg = Printf.sprintf "cannot parse: %s" (Printexc.to_string e);
         };
       ]);
  List.sort Finding.compare ctx.findings

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?allow_unsafe path = lint_string ?allow_unsafe ~filename:path (read_file path)

(* ------------------------------------------------------------------ *)
(* File collection and allowlist                                       *)
(* ------------------------------------------------------------------ *)

let rec collect_ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.filter (fun name -> name <> "_build" && name.[0] <> '.')
    |> List.concat_map (fun name -> collect_ml_files (Filename.concat path name))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let load_allowlist path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line ->
            let line = String.trim line in
            if line = "" || line.[0] = '#' then go acc else go (line :: acc)
      in
      go [])

let lint_paths ?(allow_unsafe = []) paths =
  paths
  |> List.concat_map collect_ml_files
  |> List.concat_map (fun f -> lint_file ~allow_unsafe f)
  |> List.sort Finding.compare
