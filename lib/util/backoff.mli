(** Truncated exponential backoff for CAS retry loops.

    Standard contention-management helper: on each failed attempt the
    caller invokes {!once}, which spins for a geometrically growing
    number of {!Domain.cpu_relax} iterations, capped at [max]. *)

type t

val create : ?min:int -> ?max:int -> ?rng:Rng.t -> unit -> t
(** [create ?min ?max ?rng ()] returns a fresh backoff controller.
    [min] (default 1) and [max] (default 256) bound the spin count.
    When [rng] is given, each spin adds a seeded random jitter of up to
    the current level, so threads that fail together don't retry in
    lockstep; the rng must not be shared across threads. *)

val once : t -> unit
(** Spin once at the current level (plus jitter when seeded), then
    double the level (up to the cap). *)

val reset : t -> unit
(** Reset the spin level to its minimum (call after a success). *)

val current : t -> int
(** The current spin level (tests / diagnostics). *)
