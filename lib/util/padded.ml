type 'a t = 'a Atomic.t array

let stride = 8

let create n init = Array.init (n * stride) (fun _ -> Atomic.make init)
let length t = Array.length t / stride
let get t i = Atomic.get t.(i * stride)
let set t i v = Atomic.set t.(i * stride) v
let exchange t i v = Atomic.exchange t.(i * stride) v
let compare_and_set t i expected desired = Atomic.compare_and_set t.(i * stride) expected desired
let add t i v = ignore (Atomic.fetch_and_add t.(i * stride) v)

let fold f acc t =
  let n = length t in
  let acc = ref acc in
  for i = 0 to n - 1 do
    acc := f !acc (get t i)
  done;
  !acc
