let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let sorted xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let ys = sorted xs in
    if n mod 2 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let ys = sorted xs in
    (* Nearest rank, with an epsilon so e.g. 99.9/100*1000 (which rounds
       up to 999.0000000000001) stays rank 999, not 1000. *)
    let rank = int_of_float (ceil ((p /. 100. *. float_of_int n) -. 1e-9)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    ys.(idx)
  end

(* Fixed-percentile conveniences over {!percentile}; the benchmark
   reporters and the observability layer all quote exactly these
   three. *)
let p50 xs = percentile xs 50.
let p99 xs = percentile xs 99.
let p999 xs = percentile xs 99.9

let merge_counts a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Stats.merge_counts: bucket count mismatch";
  Array.init n (fun i -> a.(i) + b.(i))

let min_max xs =
  if Array.length xs = 0 then (0., 0.)
  else Array.fold_left (fun (lo, hi) x -> (min lo x, max hi x)) (xs.(0), xs.(0)) xs

let throughput_mops ~ops ~seconds = float_of_int ops /. seconds /. 1e6
