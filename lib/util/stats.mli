(** Small descriptive-statistics helpers for the benchmark reporters. *)

val mean : float array -> float
(** Arithmetic mean; 0. on an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0. for n < 2. *)

val median : float array -> float
(** Median (does not mutate the input); 0. on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank method. *)

val p50 : float array -> float
val p99 : float array -> float

val p999 : float array -> float
(** Nearest-rank 50th / 99th / 99.9th percentiles (no mutation). *)

val merge_counts : int array -> int array -> int array
(** Element-wise sum of two equal-length histogram bucket-count arrays
    (the merge step for per-domain histogram shards); raises
    [Invalid_argument] on a length mismatch. *)

val min_max : float array -> float * float
(** Minimum and maximum; [(0., 0.)] on an empty array. *)

val throughput_mops : ops:int -> seconds:float -> float
(** Operations per second in millions. *)
