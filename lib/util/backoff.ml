type t = { min : int; max : int; rng : Rng.t option; mutable cur : int }

let create ?(min = 1) ?(max = 256) ?rng () = { min; max; rng; cur = min }

let current t = t.cur

(* With a seeded [rng], spin for [cur, 2*cur) iterations instead of
   exactly [cur]: threads that exhausted their slots at the same moment
   decorrelate instead of re-colliding in lockstep. *)
let once t =
  let spins =
    match t.rng with None -> t.cur | Some rng -> t.cur + Rng.int rng (t.cur + 1)
  in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done;
  if t.cur < t.max then t.cur <- min t.max (t.cur * 2)

let reset t = t.cur <- t.min
