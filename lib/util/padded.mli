(** Pid-indexed arrays with padding against false sharing.

    Per-thread slots (hazard-pointer announcements, epoch announcements,
    retired-list heads) are hot: a slot written by thread [i] must not
    share a cache line with a slot read by thread [j]. We space logical
    elements [stride] words apart, so each occupies its own cache line
    on common 64-byte-line hardware. *)

type 'a t
(** A padded array of ['a]-valued atomics. *)

val stride : int
(** Number of physical slots per logical element (8 words = 64 bytes). *)

val create : int -> 'a -> 'a t
(** [create n init] makes a padded array of [n] logical atomics, each
    initialized to [init]. *)

val length : 'a t -> int
(** Logical length. *)

val get : 'a t -> int -> 'a
(** Atomic load of logical element [i]. *)

val set : 'a t -> int -> 'a -> unit
(** Atomic store to logical element [i]. *)

val exchange : 'a t -> int -> 'a -> 'a
(** Atomic exchange on logical element [i]. *)

val compare_and_set : 'a t -> int -> 'a -> 'a -> bool
(** CAS on logical element [i] (physical-equality comparison, as
    {!Atomic.compare_and_set}). *)

val add : int t -> int -> int -> unit
(** Atomic fetch-and-add on logical element [i] (int arrays only):
    lost-update-free even when several threads share a slot, which is
    what the telemetry counter shards rely on. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** [fold f acc t] folds over current values of all logical elements.
    Not a snapshot: concurrent updates may or may not be observed. *)
