(** Per-thread bag of retired entries, shared by all scheme
    implementations.

    Each entry carries scheme-specific metadata (retire epoch, birth /
    retire interval, or the retired pointer's identity token) and the
    deferred operation. Access is owner-thread-only, except {!drain}
    which is quiescent-only. *)

type 'meta t

val create : unit -> 'meta t

val push : 'meta t -> 'meta -> (Deferred.t) -> unit

val size : _ t -> int
(** Entries currently held. *)

val due : _ t -> every:int -> bool
(** [due q ~every] is [true] on every [every]-th push since the last
    time it returned [true] (and resets the tally). Drives scan
    amortization. *)

val pop_prefix : ?max:int -> 'meta t -> safe:('meta -> bool) -> (Deferred.t) list
(** Remove and return the longest prefix of entries (oldest first)
    whose metadata satisfies [safe], at most [max] of them (default
    unbounded). For queues whose metadata is monotone (EBR retire
    epochs). *)

val filter_pop : ?max:int -> 'meta t -> safe:('meta -> bool) -> (Deferred.t) list
(** Remove and return up to [max] entries satisfying [safe] (oldest
    first; default unbounded), preserving the order of the
    remainder. *)

val drain : 'meta t -> (Deferred.t) list
(** Remove and return everything. *)

val drain_with_meta : 'meta t -> ('meta * Deferred.t) list
(** Remove and return everything, metadata included (oldest first). *)
