module Padded = Repro_util.Padded

let name = "HP"
let om = Obs.Scheme_metrics.v name
let is_protected_region = false
let confirm_is_trivial = false
let requires_validation = true

type guard = int
(* A guard is the thread-local slot index: 0..k-1 from the free pool,
   k for the reserved slot. *)

type t = {
  max_threads : int;
  k : int; (* non-reserved slots per thread *)
  knobs : Knobs.t;
  cleanup_floor : int; (* amortization floor: 2 * announcements *)
  slots : Ident.t Padded.t; (* (k+1) * max_threads announcement slots *)
  free : int list array; (* per-thread free local slot indices; owner only *)
  retired : Ident.t Retire_queue.t array;
  orphans : Ident.t Orphanage.t;
}

let create ?epoch_freq ?cleanup_freq ?slots_per_thread ~max_threads () =
  (match epoch_freq with
  | Some _ -> Obs.Scheme_metrics.on_knob_ignored om ~knob:"epoch_freq"
  | None -> ());
  let knobs = Knobs.create ?epoch_freq ?cleanup_freq ?slots_per_thread ~scheme:name () in
  let k = Knobs.slots_per_thread knobs in
  {
    max_threads;
    k;
    knobs;
    cleanup_floor = 2 * (k + 1) * max_threads;
    slots = Padded.create ((k + 1) * max_threads) Ident.null;
    free = Array.init max_threads (fun _ -> List.init k Fun.id);
    retired = Array.init max_threads (fun _ -> Retire_queue.create ());
    orphans = Orphanage.create ();
  }

(* The scan-cost amortization argument needs cleanup_freq >= O(total
   announcements); the floor is applied at read time so the controller
   may still lower the knob and the scheme degrades gracefully. *)
let effective_cleanup_freq t = max (Knobs.cleanup_freq t.knobs) t.cleanup_floor

let max_threads t = t.max_threads
let knobs t = t.knobs
let force_advance _t = ()
let slots_per_thread t = t.k
let slot_index t ~pid local = (pid * (t.k + 1)) + local
let begin_critical_section _t ~pid:_ = ()
let end_critical_section _t ~pid:_ = ()
let alloc_hook _t ~pid:_ = 0

let try_acquire t ~pid id =
  match t.free.(pid) with
  | [] ->
      Obs.Scheme_metrics.on_slot_exhausted om ~pid;
      None
  | s :: rest ->
      t.free.(pid) <- rest;
      Obs.Scheme_metrics.on_acquire om ~pid;
      (* Atomic.set is seq_cst: the announcement is globally visible
         before the caller's revalidating re-read. *)
      Padded.set t.slots (slot_index t ~pid s) id;
      Some s

let acquire t ~pid id =
  Obs.Scheme_metrics.on_acquire om ~pid;
  Padded.set t.slots (slot_index t ~pid t.k) id;
  t.k

let confirm t ~pid g id =
  let idx = slot_index t ~pid g in
  if Ident.equal (Padded.get t.slots idx) id then true
  else begin
    Obs.Scheme_metrics.on_confirm_retry om ~pid;
    Padded.set t.slots idx id;
    false
  end

let release t ~pid g =
  Padded.set t.slots (slot_index t ~pid g) Ident.null;
  if g < t.k then t.free.(pid) <- g :: t.free.(pid)

let announced_count t =
  Padded.fold (fun acc id -> if Ident.is_null id then acc else acc + 1) 0 t.slots

let retire t ~pid id ~birth:_ op =
  let op = Obs.Scheme_metrics.on_retire om ~pid op in
  Retire_queue.push t.retired.(pid) id op

let eject ?(force = false) t ~pid =
  let q = t.retired.(pid) in
  if
    force || Knobs.sync_scan t.knobs
    || Retire_queue.due q ~every:(effective_cleanup_freq t)
  then begin
    (* Snapshot every announcement; entries are held back while their
       identity appears anywhere. The announcement count is small
       (P*(k+1)), so a linear membership test beats hashing — identity
       tokens cannot be hashed stably under a moving GC. *)
    let announced = ref [] in
    let total = (t.k + 1) * t.max_threads in
    for i = 0 to total - 1 do
      let id = Padded.get t.slots i in
      if not (Ident.is_null id) then announced := id :: !announced
    done;
    let announced = !announced in
    let safe id = not (List.exists (Ident.equal id) announced) in
    let adopted =
      match Orphanage.take_all t.orphans with
      | [] -> []
      | entries ->
          let ready, blocked = List.partition (fun (id, _) -> safe id) entries in
          Orphanage.put t.orphans blocked;
          List.map snd ready
    in
    let max = if force then max_int else Knobs.batch_cap t.knobs in
    Obs.Scheme_metrics.on_eject om ~pid (Retire_queue.filter_pop ~max q ~safe @ adopted)
  end
  else []

let retired_count t ~pid = Retire_queue.size t.retired.(pid)

let abandon t ~pid =
  Obs.Scheme_metrics.on_abandon om ~pid;
  for s = 0 to t.k do
    Padded.set t.slots (slot_index t ~pid s) Ident.null
  done;
  t.free.(pid) <- List.init t.k Fun.id;
  Orphanage.put t.orphans (Retire_queue.drain_with_meta t.retired.(pid))

let reclamation_frontier _t = None

let drain_all t =
  let orphaned = List.map snd (Orphanage.take_all t.orphans) in
  orphaned @ Array.fold_left (fun acc q -> acc @ Retire_queue.drain q) [] t.retired
