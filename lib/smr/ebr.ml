module Padded = Repro_util.Padded

let name = "EBR"
let om = Obs.Scheme_metrics.v name
let epoch_advances = Obs.Metrics.counter "smr.ebr.epoch_advance"
let is_protected_region = true
let confirm_is_trivial = true
let requires_validation = false
let empty_ann = max_int

type guard = int

type t = {
  max_threads : int;
  knobs : Knobs.t;
  ann : int Padded.t;
  cur_epoch : int Atomic.t;
  alloc_tally : int Padded.t; (* owner-thread only; padded for locality *)
  retired : int Retire_queue.t array; (* meta = retire epoch *)
  orphans : int Orphanage.t; (* entries abandoned by crashed threads *)
}

let create ?epoch_freq ?cleanup_freq ?slots_per_thread ~max_threads () =
  (match slots_per_thread with
  | Some _ -> Obs.Scheme_metrics.on_knob_ignored om ~knob:"slots_per_thread"
  | None -> ());
  {
    max_threads;
    knobs = Knobs.create ?epoch_freq ?cleanup_freq ?slots_per_thread ~scheme:name ();
    ann = Padded.create max_threads empty_ann;
    cur_epoch = Atomic.make 0;
    alloc_tally = Padded.create max_threads 0;
    retired = Array.init max_threads (fun _ -> Retire_queue.create ());
    orphans = Orphanage.create ();
  }

let max_threads t = t.max_threads
let knobs t = t.knobs
let current_epoch t = Atomic.get t.cur_epoch
let advance_epoch t =
  ignore (Atomic.fetch_and_add t.cur_epoch 1);
  Obs.Metrics.incr epoch_advances ~pid:0

let force_advance t = advance_epoch t

let begin_critical_section t ~pid =
  (* Announcing a possibly stale epoch is conservative-safe: it only
     makes this section look older to the ejector. *)
  Padded.set t.ann pid (Atomic.get t.cur_epoch)

let end_critical_section t ~pid = Padded.set t.ann pid empty_ann

let alloc_hook t ~pid =
  let tally = Padded.get t.alloc_tally pid + 1 in
  Padded.set t.alloc_tally pid tally;
  if tally mod Knobs.epoch_freq t.knobs = 0 then advance_epoch t;
  0

let try_acquire _t ~pid _id =
  Obs.Scheme_metrics.on_acquire om ~pid;
  Some 0

let acquire _t ~pid _id =
  Obs.Scheme_metrics.on_acquire om ~pid;
  0

let confirm _t ~pid:_ _g _id = true
let release _t ~pid:_ _g = ()

let min_announced t = Padded.fold min max_int t.ann

let retire t ~pid _id ~birth:_ op =
  let op = Obs.Scheme_metrics.on_retire om ~pid op in
  Retire_queue.push t.retired.(pid) (Atomic.get t.cur_epoch) op

(* Adopt orphaned entries against the same safety predicate; the
   still-protected remainder goes back to the pool. *)
let adopt_orphans t ~safe =
  match Orphanage.take_all t.orphans with
  | [] -> []
  | entries ->
      let ready, blocked = List.partition (fun (m, _) -> safe m) entries in
      Orphanage.put t.orphans blocked;
      List.map snd ready

let eject ?(force = false) t ~pid =
  let q = t.retired.(pid) in
  if
    force || Knobs.sync_scan t.knobs
    || Retire_queue.due q ~every:(Knobs.cleanup_freq t.knobs)
  then begin
    let min_ann = min_announced t in
    let safe e = e < min_ann in
    let max = if force then max_int else Knobs.batch_cap t.knobs in
    (* Retire epochs are monotone within a thread's queue. *)
    Obs.Scheme_metrics.on_eject om ~pid
      (Retire_queue.pop_prefix ~max q ~safe @ adopt_orphans t ~safe)
  end
  else []

let retired_count t ~pid = Retire_queue.size t.retired.(pid)

let abandon t ~pid =
  Obs.Scheme_metrics.on_abandon om ~pid;
  Padded.set t.ann pid empty_ann;
  Orphanage.put t.orphans (Retire_queue.drain_with_meta t.retired.(pid))

let reclamation_frontier t =
  let f = min_announced t in
  Some (if f = max_int then Atomic.get t.cur_epoch else f)

let drain_all t =
  let orphaned = List.map snd (Orphanage.take_all t.orphans) in
  orphaned @ Array.fold_left (fun acc q -> acc @ Retire_queue.drain q) [] t.retired
