(** Mutable, per-instance tuning-knob block — the CONTROLLABLE surface
    of every reclamation scheme (DESIGN.md §10).

    The paper tunes each scheme with captured constants ([epoch_freq],
    [cleanup_freq], announcement-slot budgets); PR 1's robustness
    experiment showed those constants fail open under faults. This
    module replaces them with one mutable knob block per scheme
    instance that the {!Adapt} runtime controller can retune while the
    scheme runs: schemes read knobs through the accessors on every use
    (never capturing the value at [create] time), and the controller
    writes them from the other side.

    Concurrency: each knob lives in its own padded atomic cell
    ({!Repro_util.Padded}), so controller writes never false-share with
    scheme reads and a read is one atomic load. Knob moves are advisory
    — a scheme may complete an in-flight scan under the old value — but
    every subsequent decision sees the new one.

    Validation: all [create] arguments are range-checked ([<= 0] raises
    [Invalid_argument]) uniformly, including knobs a particular scheme
    ignores — passing a nonsense value is a bug even when it happens to
    be unread. *)

type t

(** {2 Documented defaults}

    One default per knob, shared by {e every} scheme (previously EBR
    advanced every 10 allocations while IBR/HE used 40; runs were not
    reproducible from their results files because the effective values
    were buried in per-scheme code). The values are the paper's §5.1
    IBR/HE tuning; the adaptive controller retunes them under load, so
    the static default is a starting point, not a commitment. *)

val default_epoch_freq : int
(** Allocations between global epoch/era advances (40). *)

val default_cleanup_freq : int
(** Retires between eject scans (64). *)

val default_slots_per_thread : int
(** HP/HE/PTB announcement slots per thread, excluding the reserved
    slot (8). *)

val default_batch_cap : int
(** Maximum deferred operations released per eject scan ([max_int] =
    uncapped). *)

val create :
  ?epoch_freq:int ->
  ?cleanup_freq:int ->
  ?slots_per_thread:int ->
  ?batch_cap:int ->
  scheme:string ->
  unit ->
  t
(** Build a knob block for one scheme instance, validating every
    provided value ([<= 0] raises [Invalid_argument] naming the scheme
    and the knob). Effective values are mirrored into registry gauges
    [smr.<scheme>.knob.*] so [stats --json] runs are reproducible from
    their results files. *)

val scheme : t -> string

(** {2 Accessors — the only way scheme code may read a knob}

    (rc-lint rule R7 enforces this: a scheme storing a knob in its own
    record field captures a constant the controller cannot move.) *)

val epoch_freq : t -> int
val cleanup_freq : t -> int
val batch_cap : t -> int

val sync_scan : t -> bool
(** Last-resort memory-pressure mode: when set, every [eject] call
    scans unconditionally (the amortization counter is bypassed). *)

val slots_per_thread : t -> int
(** Structural, not retunable: slot arrays are sized at [create]. *)

(** {2 Controller-side setters}

    Setters validate like [create] and update the registry gauges, so
    the reported knob values always reflect the last write. *)

val set_epoch_freq : t -> int -> unit
val set_cleanup_freq : t -> int -> unit
val set_batch_cap : t -> int -> unit
val set_sync_scan : t -> bool -> unit

type handle = {
  h_scheme : string;
  h_knobs : t;
  h_force_advance : unit -> unit;
      (** Force a global epoch/era advance (no-op for schemes without a
          clock): the memory-pressure escalation lever. *)
}
(** A first-class CONTROLLABLE capability over one scheme instance —
    what structures expose to the {!Adapt} controller without leaking
    their scheme type. *)
