(** Epoch-based reclamation (Fraser 2004; paper Fig 3).

    A protected-{e region} scheme: each thread announces the global
    epoch on entering a critical section and un-announces on leaving.
    An entry retired at epoch [e] is safe once every announced epoch is
    strictly greater than [e] — every critical section active at the
    retirement has then finished. Following the paper's tuning (§5.1),
    the global epoch advances once per [epoch_freq] allocations
    (default {!Knobs.default_epoch_freq}) rather than by epoch
    consensus.

    [try_acquire]/[confirm] degenerate to no-ops: the critical section
    itself protects every pointer read inside it, which is why EBR
    reads cost a single load. *)

include Smr_intf.S

val current_epoch : t -> int
(** The global epoch (diagnostics / tests). *)

val advance_epoch : t -> unit
(** Force a global epoch advance (tests and teardown helpers). *)
