let name = "None"
let is_protected_region = true
let confirm_is_trivial = true
let requires_validation = false

type guard = int
type t = { max_threads : int; retired : unit Retire_queue.t array; orphans : unit Orphanage.t }

let create ?epoch_freq:_ ?cleanup_freq:_ ?slots_per_thread:_ ~max_threads () =
  {
    max_threads;
    retired = Array.init max_threads (fun _ -> Retire_queue.create ());
    orphans = Orphanage.create ();
  }

let max_threads t = t.max_threads
let begin_critical_section _t ~pid:_ = ()
let end_critical_section _t ~pid:_ = ()
let alloc_hook _t ~pid:_ = 0
let try_acquire _t ~pid:_ _id = Some 0
let acquire _t ~pid:_ _id = 0
let confirm _t ~pid:_ _g _id = true
let release _t ~pid:_ _g = ()
let retire t ~pid _id ~birth:_ op = Retire_queue.push t.retired.(pid) () op
let eject ?force:_ _t ~pid:_ = []
let retired_count t ~pid = Retire_queue.size t.retired.(pid)

(* Nothing is announced and nothing ejects before teardown, but the
   parked entries still need a live owner for [drain_all] to find. *)
let abandon t ~pid = Orphanage.put t.orphans (Retire_queue.drain_with_meta t.retired.(pid))
let reclamation_frontier _t = None

let drain_all t =
  let orphaned = List.map snd (Orphanage.take_all t.orphans) in
  orphaned @ Array.fold_left (fun acc q -> acc @ Retire_queue.drain q) [] t.retired
