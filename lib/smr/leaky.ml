let name = "None"
let om = Obs.Scheme_metrics.v name
let is_protected_region = true
let confirm_is_trivial = true
let requires_validation = false

type guard = int

type t = {
  max_threads : int;
  knobs : Knobs.t;
  retired : unit Retire_queue.t array;
  orphans : unit Orphanage.t;
}

let create ?epoch_freq ?cleanup_freq ?slots_per_thread ~max_threads () =
  (* The leaky baseline never reclaims, so every knob is ignored — but
     a caller tuning it is confused, and an out-of-range value is a bug
     regardless: validate uniformly and count the misuse. *)
  List.iter
    (fun (knob, v) ->
      if Option.is_some v then Obs.Scheme_metrics.on_knob_ignored om ~knob)
    [
      ("epoch_freq", epoch_freq);
      ("cleanup_freq", cleanup_freq);
      ("slots_per_thread", slots_per_thread);
    ];
  {
    max_threads;
    knobs = Knobs.create ?epoch_freq ?cleanup_freq ?slots_per_thread ~scheme:name ();
    retired = Array.init max_threads (fun _ -> Retire_queue.create ());
    orphans = Orphanage.create ();
  }

let max_threads t = t.max_threads
let knobs t = t.knobs
let force_advance _t = ()
let begin_critical_section _t ~pid:_ = ()
let end_critical_section _t ~pid:_ = ()
let alloc_hook _t ~pid:_ = 0
let try_acquire _t ~pid _id =
  Obs.Scheme_metrics.on_acquire om ~pid;
  Some 0

let acquire _t ~pid _id =
  Obs.Scheme_metrics.on_acquire om ~pid;
  0

let confirm _t ~pid:_ _g _id = true
let release _t ~pid:_ _g = ()

let retire t ~pid _id ~birth:_ op =
  let op = Obs.Scheme_metrics.on_retire om ~pid op in
  Retire_queue.push t.retired.(pid) () op

(* "Eject nothing, leak everything" is the scheme; still count the scan
   so the accounting identity (retire = eject.ops + backlog) is
   checkable for it too. *)
let eject ?force:_ _t ~pid = Obs.Scheme_metrics.on_eject om ~pid []
let retired_count t ~pid = Retire_queue.size t.retired.(pid)

(* Nothing is announced and nothing ejects before teardown, but the
   parked entries still need a live owner for [drain_all] to find. *)
let abandon t ~pid =
  Obs.Scheme_metrics.on_abandon om ~pid;
  Orphanage.put t.orphans (Retire_queue.drain_with_meta t.retired.(pid))
let reclamation_frontier _t = None

let drain_all t =
  let orphaned = List.map snd (Orphanage.take_all t.orphans) in
  orphaned @ Array.fold_left (fun acc q -> acc @ Retire_queue.drain q) [] t.retired
