module Padded = Repro_util.Padded

let name = "PTB"
let om = Obs.Scheme_metrics.v name
let is_protected_region = false
let confirm_is_trivial = false
let requires_validation = true

type guard = int
type handoff = (Ident.t * Deferred.t) option

type t = {
  max_threads : int;
  k : int;
  knobs : Knobs.t;
  cleanup_floor : int; (* amortization floor: 2 * announcements *)
  slots : Ident.t Padded.t; (* posted values, (k+1) per thread *)
  handoffs : handoff Padded.t; (* one per physical slot *)
  free : int list array; (* owner only *)
  retired : Ident.t Retire_queue.t array;
  orphans : Ident.t Orphanage.t;
}

let create ?epoch_freq ?cleanup_freq ?slots_per_thread ~max_threads () =
  (match epoch_freq with
  | Some _ -> Obs.Scheme_metrics.on_knob_ignored om ~knob:"epoch_freq"
  | None -> ());
  let knobs = Knobs.create ?epoch_freq ?cleanup_freq ?slots_per_thread ~scheme:name () in
  let k = Knobs.slots_per_thread knobs in
  {
    max_threads;
    k;
    knobs;
    cleanup_floor = 2 * (k + 1) * max_threads;
    slots = Padded.create ((k + 1) * max_threads) Ident.null;
    handoffs = Padded.create ((k + 1) * max_threads) None;
    free = Array.init max_threads (fun _ -> List.init k Fun.id);
    retired = Array.init max_threads (fun _ -> Retire_queue.create ());
    orphans = Orphanage.create ();
  }

(* See Hp.effective_cleanup_freq. *)
let effective_cleanup_freq t = max (Knobs.cleanup_freq t.knobs) t.cleanup_floor

let max_threads t = t.max_threads
let knobs t = t.knobs
let force_advance _t = ()
let slot_index t ~pid local = (pid * (t.k + 1)) + local
let begin_critical_section _t ~pid:_ = ()
let end_critical_section _t ~pid:_ = ()
let alloc_hook _t ~pid:_ = 0

let try_acquire t ~pid id =
  match t.free.(pid) with
  | [] ->
      Obs.Scheme_metrics.on_slot_exhausted om ~pid;
      None
  | s :: rest ->
      t.free.(pid) <- rest;
      Obs.Scheme_metrics.on_acquire om ~pid;
      Padded.set t.slots (slot_index t ~pid s) id;
      Some s

let acquire t ~pid id =
  Obs.Scheme_metrics.on_acquire om ~pid;
  Padded.set t.slots (slot_index t ~pid t.k) id;
  t.k

let confirm t ~pid g id =
  let idx = slot_index t ~pid g in
  if Ident.equal (Padded.get t.slots idx) id then true
  else begin
    Obs.Scheme_metrics.on_confirm_retry om ~pid;
    Padded.set t.slots idx id;
    false
  end

(* Releasing a guard inherits its handed-off buck: the entry returns
   to the releaser's retired queue and is decided at the next scan. *)
let release t ~pid g =
  let idx = slot_index t ~pid g in
  Padded.set t.slots idx Ident.null;
  (match Padded.exchange t.handoffs idx None with
  | Some (id, op) -> Retire_queue.push t.retired.(pid) id op
  | None -> ());
  if g < t.k then t.free.(pid) <- g :: t.free.(pid)

let retire t ~pid id ~birth:_ op =
  let op = Obs.Scheme_metrics.on_retire om ~pid op in
  Retire_queue.push t.retired.(pid) id op

(* Liberate: unguarded entries are safe; guarded ones are handed off to
   the guard that pins them (at most one buck per guard — otherwise the
   entry stays queued). *)
let eject ?(force = false) t ~pid =
  let q = t.retired.(pid) in
  if
    force || Knobs.sync_scan t.knobs
    || Retire_queue.due q ~every:(effective_cleanup_freq t)
  then begin
    let total = (t.k + 1) * t.max_threads in
    let safe = ref [] in
    let keep = ref [] in
    List.iter
      (fun ((id, op) as entry) ->
        let posted_at = ref (-1) in
        (try
           for i = 0 to total - 1 do
             if Ident.equal (Padded.get t.slots i) id then begin
               posted_at := i;
               raise Exit
             end
           done
         with Exit -> ());
        if !posted_at < 0 then safe := (id, op) :: !safe
        else begin
          let i = !posted_at in
          if Padded.compare_and_set t.handoffs i None (Some entry) then begin
            (* Hand-off succeeded; but if the guard was released in the
               meantime nobody will inherit the buck, so take it back. *)
            if not (Ident.equal (Padded.get t.slots i) id) then begin
              match Padded.exchange t.handoffs i None with
              | Some (id', op') when Ident.equal id' id ->
                  (* Reclaimed our own hand-off: the guard is gone, the
                     entry is unprotected. *)
                  safe := (id', op') :: !safe
              | Some other ->
                  (* A releaser already took ours and a different buck
                     landed in the slot: adopt it. *)
                  keep := other :: !keep
              | None -> (* a releaser inherited the buck *) ()
            end
          end
          else keep := entry :: !keep
        end)
      (Orphanage.take_all t.orphans @ Retire_queue.drain_with_meta q);
    (* Cap the released batch; entries past the cap stay unprotected
       and go back on the queue for the next scan. *)
    let cap = if force then max_int else Knobs.batch_cap t.knobs in
    let out = ref [] in
    List.iteri
      (fun i entry -> if i < cap then out := entry :: !out else keep := entry :: !keep)
      (List.rev !safe);
    List.iter (fun (id, op) -> Retire_queue.push q id op) (List.rev !keep);
    Obs.Scheme_metrics.on_eject om ~pid (List.rev_map snd !out)
  end
  else []

let retired_count t ~pid = Retire_queue.size t.retired.(pid)

let abandon t ~pid =
  Obs.Scheme_metrics.on_abandon om ~pid;
  (* Clear the dead thread's posted guards, reclaiming any buck that
     was handed off to them along the way. *)
  let parked = ref [] in
  for s = 0 to t.k do
    let idx = slot_index t ~pid s in
    Padded.set t.slots idx Ident.null;
    match Padded.exchange t.handoffs idx None with
    | Some entry -> parked := entry :: !parked
    | None -> ()
  done;
  t.free.(pid) <- List.init t.k Fun.id;
  Orphanage.put t.orphans (!parked @ Retire_queue.drain_with_meta t.retired.(pid))

let reclamation_frontier _t = None

let drain_all t =
  (* Quiescent: every slot is unposted, but bucks may still sit in
     hand-off slots from guards released... released guards clear their
     hand-off, so only unreleased-but-quiescent slots could hold one;
     sweep them too. *)
  let parked = ref [] in
  for i = 0 to Padded.length t.handoffs - 1 do
    match Padded.exchange t.handoffs i None with
    | Some (_, op) -> parked := op :: !parked
    | None -> ()
  done;
  let parked = !parked in
  let orphaned = List.map snd (Orphanage.take_all t.orphans) in
  parked @ orphaned @ Array.fold_left (fun acc q -> acc @ Retire_queue.drain q) [] t.retired
