type 'meta entry = { meta : 'meta; op : Deferred.t }
type 'meta t = { q : 'meta entry Queue.t; mutable since_scan : int }

let create () = { q = Queue.create (); since_scan = 0 }

let push t meta op =
  Queue.push { meta; op } t.q;
  t.since_scan <- t.since_scan + 1

let size t = Queue.length t.q

let due t ~every =
  if t.since_scan >= every then begin
    t.since_scan <- 0;
    true
  end
  else false

let pop_prefix ?(max = max_int) t ~safe =
  let rec go n acc =
    if n >= max then List.rev acc
    else
      match Queue.peek_opt t.q with
      | Some e when safe e.meta ->
          ignore (Queue.pop t.q);
          go (n + 1) (e.op :: acc)
      | _ -> List.rev acc
  in
  go 0 []

let filter_pop ?(max = max_int) t ~safe =
  let keep = Queue.create () in
  let out = ref [] in
  let n = ref 0 in
  Queue.iter
    (fun e ->
      if !n < max && safe e.meta then begin
        out := e.op :: !out;
        incr n
      end
      else Queue.push e keep)
    t.q;
  Queue.clear t.q;
  Queue.transfer keep t.q;
  List.rev !out

let drain t =
  let out = Queue.fold (fun acc e -> e.op :: acc) [] t.q in
  Queue.clear t.q;
  List.rev out

let drain_with_meta t =
  let out = Queue.fold (fun acc e -> (e.meta, e.op) :: acc) [] t.q in
  Queue.clear t.q;
  List.rev out
