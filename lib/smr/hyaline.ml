module Padded = Repro_util.Padded

let name = "Hyaline"
let om = Obs.Scheme_metrics.v name
let is_protected_region = true
let confirm_is_trivial = true
let requires_validation = false

type guard = int

type rnode = Nil | Node of { refs : int Atomic.t; op : Deferred.t; next : rnode }
type hstate = { active : int; head : rnode }

type t = {
  max_threads : int;
  knobs : Knobs.t;
  state : hstate Atomic.t;
  snapshot : rnode Padded.t; (* head observed at each thread's enter *)
  in_cs : bool Padded.t; (* whether each thread holds an open critical section *)
  safe : (Deferred.t) list Atomic.t; (* entries whose stamp reached zero *)
  pending : int Atomic.t; (* retired - ejected, diagnostics *)
}

let create ?epoch_freq ?cleanup_freq ?slots_per_thread ~max_threads () =
  (* Hyaline's batch ref-stamping has no epoch clock, no scan
     amortization, and no announcement slots: every tuning knob except
     [batch_cap] is meaningless here. The values are still validated
     (a nonsense value is a bug even when unread) and the misuse is
     counted. *)
  List.iter
    (fun (knob, v) ->
      if Option.is_some v then Obs.Scheme_metrics.on_knob_ignored om ~knob)
    [
      ("epoch_freq", epoch_freq);
      ("cleanup_freq", cleanup_freq);
      ("slots_per_thread", slots_per_thread);
    ];
  {
    max_threads;
    knobs = Knobs.create ?epoch_freq ?cleanup_freq ?slots_per_thread ~scheme:name ();
    state = Atomic.make { active = 0; head = Nil };
    snapshot = Padded.create max_threads Nil;
    in_cs = Padded.create max_threads false;
    safe = Atomic.make [];
    pending = Atomic.make 0;
  }

let max_threads t = t.max_threads
let knobs t = t.knobs
let force_advance _t = ()
let active_count t = (Atomic.get t.state).active

let rec push_safe t op =
  let cur = Atomic.get t.safe in
  if not (Atomic.compare_and_set t.safe cur (op :: cur)) then push_safe t op

let rec begin_critical_section t ~pid =
  let s = Atomic.get t.state in
  if Atomic.compare_and_set t.state s { s with active = s.active + 1 } then begin
    Padded.set t.snapshot pid s.head;
    Padded.set t.in_cs pid true
  end
  else begin
    Domain.cpu_relax ();
    begin_critical_section t ~pid
  end

(* Decrement the stamp of every entry retired during our operation:
   the list segment from [upto] (the head when we left) down to, but
   excluding, [stop] (the head when we entered). Whoever zeroes a stamp
   owns the entry. *)
let rec decrement_segment t upto stop =
  if upto != stop then
    match upto with
    | Nil -> ()
    | Node n ->
        if Atomic.fetch_and_add n.refs (-1) = 1 then push_safe t n.op;
        decrement_segment t n.next stop

let rec end_critical_section t ~pid =
  let s = Atomic.get t.state in
  let active' = s.active - 1 in
  (* The last operation out truncates the global list: every remaining
     entry's stamp is held only by operations that already left or by
     us, so nobody else will need to reach it through the state. *)
  let head' = if active' = 0 then Nil else s.head in
  if Atomic.compare_and_set t.state s { active = active'; head = head' } then begin
    decrement_segment t s.head (Padded.get t.snapshot pid);
    Padded.set t.snapshot pid Nil;
    Padded.set t.in_cs pid false
  end
  else begin
    Domain.cpu_relax ();
    end_critical_section t ~pid
  end

let alloc_hook _t ~pid:_ = 0

let try_acquire _t ~pid _id =
  Obs.Scheme_metrics.on_acquire om ~pid;
  Some 0

let acquire _t ~pid _id =
  Obs.Scheme_metrics.on_acquire om ~pid;
  0

let confirm _t ~pid:_ _g _id = true
let release _t ~pid:_ _g = ()

let rec retire t ~pid _id ~birth op =
  let s = Atomic.get t.state in
  if s.active = 0 then
    (* No reader can hold the object; it is immediately safe. *)
    if Atomic.compare_and_set t.state s s then push_safe t op else retire t ~pid _id ~birth op
  else begin
    let node = Node { refs = Atomic.make s.active; op; next = s.head } in
    if not (Atomic.compare_and_set t.state s { s with head = node }) then
      retire t ~pid _id ~birth op
  end

let retire t ~pid id ~birth op =
  let op = Obs.Scheme_metrics.on_retire om ~pid op in
  ignore (Atomic.fetch_and_add t.pending 1);
  retire t ~pid id ~birth op

let eject ?(force = false) t ~pid =
  match Atomic.get t.safe with
  | [] -> []
  | _ ->
      let ops = Atomic.exchange t.safe [] in
      (* Cap the batch: the excess goes back on the safe list (it is
         already reclaimable, the controller just wants it released in
         smaller doses). *)
      let cap = if force then max_int else Knobs.batch_cap t.knobs in
      let ops =
        let rec split n acc = function
          | [] -> List.rev acc
          | rest when n = 0 ->
              List.iter (push_safe t) rest;
              List.rev acc
          | op :: rest -> split (n - 1) (op :: acc) rest
        in
        if cap = max_int then ops else split cap [] ops
      in
      ignore (Atomic.fetch_and_add t.pending (-List.length ops));
      Obs.Scheme_metrics.on_eject om ~pid ops

(* Pending entries that are global rather than per-thread: report the
   whole count against every pid (documented in the interface). *)
let retired_count t ~pid:_ = Atomic.get t.pending

(* A crashed thread holds no private retired entries (retirement is
   global here), but an open critical section pins a unit of every
   stamp retired since it entered. Leaving on its behalf releases them
   — the adoption this scheme gets for free from its batch counting. *)
let abandon t ~pid =
  Obs.Scheme_metrics.on_abandon om ~pid;
  if Padded.get t.in_cs pid then end_critical_section t ~pid

let reclamation_frontier _t = None

let drain_all t = eject ~force:true t ~pid:0
