type 'meta t = ('meta * Deferred.t) list Atomic.t

let create () = Atomic.make []

let rec put t entries =
  match entries with
  | [] -> ()
  | _ ->
      let cur = Atomic.get t in
      if not (Atomic.compare_and_set t cur (entries @ cur)) then put t entries

let take_all t = Atomic.exchange t []
let size t = List.length (Atomic.get t)
