(** Shared pool of retired entries orphaned by a crashed thread.

    Retired lists are owner-only, so when [abandon] reaps a crashed
    thread it cannot push the dead thread's entries into a survivor's
    queue directly. Instead they land here, batch-at-a-time
    (Hyaline-style adoption): any thread's next eject scan calls
    {!take_all} and folds the orphans through the scheme's usual safety
    check, re-queuing the ones still protected. The metadata travels
    with each entry so adopted garbage is held back exactly as long as
    home-grown garbage.

    Lock-free; [take_all] transfers ownership of the whole batch to the
    caller. *)

type 'meta t

val create : unit -> 'meta t

val put : 'meta t -> ('meta * Deferred.t) list -> unit
(** Add a batch of orphaned entries (no-op on [[]]). *)

val take_all : 'meta t -> ('meta * Deferred.t) list
(** Remove and return every pooled entry; the caller must either run
    or re-queue each one. *)

val size : 'meta t -> int
(** Current pool size (diagnostics; racy under concurrency). *)
