(** Common interface over manual SMR schemes (paper §2, §3.2).

    Every scheme — hazard pointers, EBR, IBR, Hyaline, hazard eras —
    implements this signature; the generalized acquire–retire layer
    (Fig 2) and the manual data structures are functors over it.

    {2 The acquire protocol}

    C++ [acquire] takes a [T**] and reads the location internally; our
    schemes are type-erased, so the {e typed} read stays with the
    caller and the scheme exposes a two-phase protocol:

    {[
      let v = Atomic.get loc in
      let g = try_acquire s ~pid (ident v) in    (* or acquire for the reserved slot *)
      let rec settle v =
        if confirm s ~pid g (ident v) then (v, g)   (* v is now protected *)
        else settle (Atomic.get loc)
      in
      settle (Atomic.get loc)
    ]}

    [try_acquire] performs the initial announcement (pointer for HP,
    era for HE, nothing for the region schemes); [confirm g id] checks
    that the announcement covers the {e most recent} read — re-reading
    between announce and confirm is what closes the read–reclaim race —
    and re-announces on failure so the caller can simply re-read and
    confirm again. For EBR and Hyaline, [confirm] is constantly [true]
    and the protocol degenerates to a single load, which is exactly why
    region schemes are fast (paper §2). This protocol subsumes the
    retry loops of Fig 4 (IBR) and of classic HP verbatim.

    {2 Retire / eject}

    [retire] records a deferred operation (a {!Deferred.t} closure —
    it receives the pid of the thread that runs it: a
    [free] for manual use, a reference-count decrement for automatic
    use — the generalization at the heart of the paper). [eject]
    returns operations that are no longer protected; it amortizes
    internally, so most calls return [[]]. Callers must run the
    returned closures {e outside} the scheme (never reentrantly), which
    is how the paper avoids recursive ejects (§3.2); the
    [Acquire_retire] layer provides the drain queue that enforces
    this. A pointer may be retired several times before being ejected
    the same number of times (Def 3.3): every scheme here tracks retire
    {e entries}, not unique pointers, so this needs no special casing.

    {2 Threading}

    [pid] ∈ [0, max_threads) names the calling thread; per-thread state
    (slots, announcements, retired lists) is padded against false
    sharing. A given [pid]'s operations must come from one thread at a
    time. *)

module type S = sig
  type t
  (** Scheme instance state. *)

  val name : string
  (** Short display name, e.g. ["EBR"]. *)

  val is_protected_region : bool
  (** True for region schemes (EBR, IBR, Hyaline, HE-partially): their
      [confirm] never fails after the epoch stabilizes and [try_acquire]
      never exhausts. Used by reporting only. *)

  val confirm_is_trivial : bool
  (** [true] when [confirm] is constantly [true] (EBR, Hyaline, the
      leaky baseline): the critical section alone protects every read,
      so callers can skip the announce-settle re-read entirely — the
      single-load fast path that makes region schemes cheap. *)

  val requires_validation : bool
  (** Whether traversals must revalidate link-level reachability
      (Michael's [*prev == cur] check) before trusting a protected
      node. [false] only for EBR and Hyaline, whose ejection blocks
      {e everything} retired after the oldest active critical section
      began — that global property makes even frozen marked-chain edges
      safe to follow. IBR, HE, and HP only protect objects whose
      retirement interval meets the announcement, so a node reached
      through the frozen edge of an already-unlinked node may already
      be reclaimed; structures that cannot validate (the NM tree) are
      unsafe under these schemes, exactly as the paper reports
      (§5.1). *)

  type guard = int
  (** Guards are small integers (slot indices or 0 for region schemes).
      Negative guards never escape. *)

  val create :
    ?epoch_freq:int -> ?cleanup_freq:int -> ?slots_per_thread:int -> max_threads:int -> unit -> t
  (** [create ~max_threads ()] builds an instance supporting pids
      [0 .. max_threads-1]. All knobs share the documented
      {!Knobs} defaults and are validated uniformly: a value [<= 0]
      raises [Invalid_argument] in every scheme, even for knobs that
      scheme ignores (the misuse is additionally recorded as a
      [knob_ignored] scheme counter).
      - [epoch_freq]: allocations between global epoch/era advances
        (default {!Knobs.default_epoch_freq} = 40 for every
        epoch-clocked scheme; ignored by HP, PTB, Hyaline, Leaky).
      - [cleanup_freq]: retires between eject scans (default
        {!Knobs.default_cleanup_freq} = 64).
      - [slots_per_thread]: announcement slots for HP/HE/PTB (default
        {!Knobs.default_slots_per_thread} = 8), excluding the reserved
        slot; ignored by region schemes.

      The instance's knobs stay mutable after [create] — see
      {!knobs}. *)

  val knobs : t -> Knobs.t
  (** The instance's live knob block. Scheme code re-reads knobs
      through {!Knobs} accessors on every decision (never capturing
      values), so {!Knobs} setters retune a running instance; the
      {!Knobs.slots_per_thread} value is structural and fixed at
      [create]. *)

  val force_advance : t -> unit
  (** Advance the scheme's global epoch/era clock immediately (EBR,
      IBR, HE); a no-op for schemes without a clock. The controller's
      memory-pressure lever: advancing the clock lets entries retired
      under old epochs become ejectable without waiting out
      [epoch_freq] allocations. Safe from any thread. *)

  val max_threads : t -> int

  val begin_critical_section : t -> pid:int -> unit
  val end_critical_section : t -> pid:int -> unit

  val alloc_hook : t -> pid:int -> int
  (** Call on every managed allocation; returns the birth tag to store
      with the object (the current epoch for IBR/HE; 0 for others).
      Advances the global epoch every [epoch_freq] calls. *)

  val try_acquire : t -> pid:int -> Ident.t -> guard option
  (** Begin protecting a pointer using a free slot. [None] = slots
      exhausted (HP/HE only). The protection is not valid until a
      subsequent [confirm] returns [true]. *)

  val acquire : t -> pid:int -> Ident.t -> guard
  (** Like {!try_acquire} but uses the per-thread reserved slot; never
      fails. At most one reserved acquire may be active per thread
      (Def 3.2 (3)). *)

  val confirm : t -> pid:int -> guard -> Ident.t -> bool
  (** [confirm t ~pid g id]: [true] iff the value whose identity is
      [id], read {e after} the guard's last announcement, is protected.
      On [false] the guard has been re-announced for [id] (HP) or the
      current epoch (IBR/HE); re-read and confirm again. *)

  val release : t -> pid:int -> guard -> unit
  (** End the protection of [g]. Guards from [try_acquire] return to
      the free pool; the reserved guard becomes reusable. *)

  val retire : t -> pid:int -> Ident.t -> birth:int -> Deferred.t -> unit
  (** Defer an operation on the object identified by [Ident.t] (with
      the birth tag from {!alloc_hook}) until no acquire active at this
      call still protects it. *)

  val eject : ?force:bool -> t -> pid:int -> Deferred.t list
  (** Deferred operations now safe to run. Amortized: most calls return
      [[]] without scanning; pass [~force:true] to scan unconditionally
      (used by flush/teardown paths). Run the closures outside the
      scheme. *)

  val retired_count : t -> pid:int -> int
  (** Number of this thread's retired-but-not-ejected entries
      (diagnostics / memory accounting). *)

  val abandon : t -> pid:int -> unit
  (** Crash recovery: release every resource held by [pid] on its
      behalf — close its critical section, clear its announcement
      slots, and hand its retired-but-not-ejected entries to the
      survivors for adoption (Hyaline-batch style: they land in a
      shared orphan pool that any thread's next [eject] scan drains,
      still subject to the scheme's safety check).

      Call it exactly once per crashed thread, and only after that
      thread has truly stopped calling into the scheme — [abandon]
      mutates owner-only state. Afterwards the pid's slots are free
      again, so a supervisor may recycle the pid for a replacement
      thread. Without [abandon], a crashed thread permanently pins the
      garbage its announcements protect — for EBR, {e all} garbage
      retired after its critical section began (§2's unbounded case);
      for HP/IBR/HE a bounded amount. *)

  val reclamation_frontier : t -> int option
  (** The oldest announced epoch/era still blocking reclamation, for
      schemes with a global clock (EBR: min announced epoch; IBR: min
      announced interval start; HE: min announced era — each falling
      back to the current epoch/era when nothing is announced). [None]
      for schemes without one (HP, PTB, Hyaline, the leaky baseline).
      A frontier that stops advancing while retired counts grow is the
      signature of a stalled thread — the [Acquire_retire] watchdog
      reports exactly that. *)

  val drain_all : t -> Deferred.t list
  (** Return {e all} pending deferred operations from all threads.
      Only sound at quiescence: no critical section active, no guard
      held, no concurrent scheme calls. Used at teardown and by the
      leak-freedom tests. *)
end
