module Padded = Repro_util.Padded

let name = "IBR"
let om = Obs.Scheme_metrics.v name
let epoch_advances = Obs.Metrics.counter "smr.ibr.epoch_advance"
let is_protected_region = true
let confirm_is_trivial = false
let requires_validation = true

type guard = int
type interval = { b : int; e : int }

(* Inactive sentinel: an empty interval that intersects nothing. *)
let inactive = { b = max_int; e = min_int }

type t = {
  max_threads : int;
  knobs : Knobs.t;
  ann : interval Padded.t;
  cur_epoch : int Atomic.t;
  alloc_tally : int Padded.t; (* owner-thread only *)
  retired : (int * int) Retire_queue.t array; (* meta = (birth, retire epoch) *)
  orphans : (int * int) Orphanage.t;
}

let create ?epoch_freq ?cleanup_freq ?slots_per_thread ~max_threads () =
  (match slots_per_thread with
  | Some _ -> Obs.Scheme_metrics.on_knob_ignored om ~knob:"slots_per_thread"
  | None -> ());
  {
    max_threads;
    knobs = Knobs.create ?epoch_freq ?cleanup_freq ?slots_per_thread ~scheme:name ();
    ann = Padded.create max_threads inactive;
    cur_epoch = Atomic.make 0;
    alloc_tally = Padded.create max_threads 0;
    retired = Array.init max_threads (fun _ -> Retire_queue.create ());
    orphans = Orphanage.create ();
  }

let max_threads t = t.max_threads
let knobs t = t.knobs
let current_epoch t = Atomic.get t.cur_epoch
let advance_epoch t =
  ignore (Atomic.fetch_and_add t.cur_epoch 1);
  Obs.Metrics.incr epoch_advances ~pid:0

let force_advance t = advance_epoch t

let begin_critical_section t ~pid =
  let e = Atomic.get t.cur_epoch in
  Padded.set t.ann pid { b = e; e }

let end_critical_section t ~pid = Padded.set t.ann pid inactive

let alloc_hook t ~pid =
  let tally = Padded.get t.alloc_tally pid + 1 in
  Padded.set t.alloc_tally pid tally;
  if tally mod Knobs.epoch_freq t.knobs = 0 then advance_epoch t;
  Atomic.get t.cur_epoch

let try_acquire _t ~pid _id =
  Obs.Scheme_metrics.on_acquire om ~pid;
  Some 0

let acquire _t ~pid _id =
  Obs.Scheme_metrics.on_acquire om ~pid;
  0

let confirm t ~pid _g _id =
  (* Fig 4: a read performed at the thread's announced upper epoch is
     protected iff the global epoch has not moved since; otherwise
     extend the announced interval and have the caller re-read. *)
  let cur = Atomic.get t.cur_epoch in
  let a = Padded.get t.ann pid in
  if a.e = cur then true
  else begin
    Obs.Scheme_metrics.on_confirm_retry om ~pid;
    Padded.set t.ann pid { a with e = cur };
    false
  end

let release _t ~pid:_ _g = ()

let retire t ~pid _id ~birth op =
  let op = Obs.Scheme_metrics.on_retire om ~pid op in
  Retire_queue.push t.retired.(pid) (birth, Atomic.get t.cur_epoch) op

let adopt_orphans t ~safe =
  match Orphanage.take_all t.orphans with
  | [] -> []
  | entries ->
      let ready, blocked = List.partition (fun (m, _) -> safe m) entries in
      Orphanage.put t.orphans blocked;
      List.map snd ready

let eject ?(force = false) t ~pid =
  let q = t.retired.(pid) in
  if
    force || Knobs.sync_scan t.knobs
    || Retire_queue.due q ~every:(Knobs.cleanup_freq t.knobs)
  then begin
    let n = t.max_threads in
    let anns = Array.init n (fun i -> Padded.get t.ann i) in
    let safe (birth, retired_at) =
      Array.for_all (fun a -> a.e < birth || a.b > retired_at) anns
    in
    let max = if force then max_int else Knobs.batch_cap t.knobs in
    Obs.Scheme_metrics.on_eject om ~pid
      (Retire_queue.filter_pop ~max q ~safe @ adopt_orphans t ~safe)
  end
  else []

let retired_count t ~pid = Retire_queue.size t.retired.(pid)

let abandon t ~pid =
  Obs.Scheme_metrics.on_abandon om ~pid;
  Padded.set t.ann pid inactive;
  Orphanage.put t.orphans (Retire_queue.drain_with_meta t.retired.(pid))

let reclamation_frontier t =
  let f = Padded.fold (fun acc a -> min acc a.b) max_int t.ann in
  Some (if f = max_int then Atomic.get t.cur_epoch else f)

let drain_all t =
  let orphaned = List.map snd (Orphanage.take_all t.orphans) in
  orphaned @ Array.fold_left (fun acc q -> acc @ Retire_queue.drain q) [] t.retired
