(* Mutable per-instance knob block (see the .mli). Each knob is one
   logical cell of a padded atomic array: scheme threads read knobs on
   hot-ish paths (every alloc / eject-due check), the controller writes
   them from the sampler thread, and padding keeps the two from
   false-sharing. [slots_per_thread] is structural (slot arrays are
   sized at create) and therefore a plain immutable field. *)

module Padded = Repro_util.Padded

let default_epoch_freq = 40
let default_cleanup_freq = 64
let default_slots_per_thread = 8
let default_batch_cap = max_int

(* Cell indices. *)
let i_epoch = 0
let i_cleanup = 1
let i_batch = 2
let i_sync = 3
let n_cells = 4

type t = {
  scheme : string;
  cells : int Padded.t;
  slots_per_thread : int;
  (* Registry mirrors: the effective values [stats --json] reports.
     Gauges are last-write-wins, so re-instantiating a scheme (or
     retuning at runtime) leaves the latest value visible. *)
  g_epoch : Obs.Metrics.gauge;
  g_cleanup : Obs.Metrics.gauge;
  g_batch : Obs.Metrics.gauge;
  g_sync : Obs.Metrics.gauge;
}

let scheme t = t.scheme

let validate ~scheme ~knob v =
  if v <= 0 then
    invalid_arg
      (Printf.sprintf "%s.create: %s must be positive (got %d)" scheme knob v)

let create ?epoch_freq ?cleanup_freq ?slots_per_thread ?batch_cap ~scheme () =
  let pick ~knob ~default = function
    | None -> default
    | Some v ->
        validate ~scheme ~knob v;
        v
  in
  let epoch = pick ~knob:"epoch_freq" ~default:default_epoch_freq epoch_freq in
  let cleanup = pick ~knob:"cleanup_freq" ~default:default_cleanup_freq cleanup_freq in
  let slots = pick ~knob:"slots_per_thread" ~default:default_slots_per_thread slots_per_thread in
  let batch = pick ~knob:"batch_cap" ~default:default_batch_cap batch_cap in
  let cells = Padded.create n_cells 0 in
  Padded.set cells i_epoch epoch;
  Padded.set cells i_cleanup cleanup;
  Padded.set cells i_batch batch;
  Padded.set cells i_sync 0;
  let p = "smr." ^ String.lowercase_ascii scheme ^ ".knob." in
  let t =
    {
      scheme;
      cells;
      slots_per_thread = slots;
      g_epoch = Obs.Metrics.gauge (p ^ "epoch_freq");
      g_cleanup = Obs.Metrics.gauge (p ^ "cleanup_freq");
      g_batch = Obs.Metrics.gauge (p ^ "batch_cap");
      g_sync = Obs.Metrics.gauge (p ^ "sync_scan");
    }
  in
  Obs.Metrics.set_gauge t.g_epoch epoch;
  Obs.Metrics.set_gauge t.g_cleanup cleanup;
  Obs.Metrics.set_gauge t.g_batch batch;
  Obs.Metrics.set_gauge t.g_sync 0;
  t

let epoch_freq t = Padded.get t.cells i_epoch
let cleanup_freq t = Padded.get t.cells i_cleanup
let batch_cap t = Padded.get t.cells i_batch
let sync_scan t = Padded.get t.cells i_sync <> 0
let slots_per_thread t = t.slots_per_thread

let set_epoch_freq t v =
  validate ~scheme:t.scheme ~knob:"epoch_freq" v;
  Padded.set t.cells i_epoch v;
  Obs.Metrics.set_gauge t.g_epoch v

let set_cleanup_freq t v =
  validate ~scheme:t.scheme ~knob:"cleanup_freq" v;
  Padded.set t.cells i_cleanup v;
  Obs.Metrics.set_gauge t.g_cleanup v

let set_batch_cap t v =
  validate ~scheme:t.scheme ~knob:"batch_cap" v;
  Padded.set t.cells i_batch v;
  Obs.Metrics.set_gauge t.g_batch v

let set_sync_scan t v =
  Padded.set t.cells i_sync (if v then 1 else 0);
  Obs.Metrics.set_gauge t.g_sync (if v then 1 else 0)

type handle = {
  h_scheme : string;
  h_knobs : t;
  h_force_advance : unit -> unit;
}
