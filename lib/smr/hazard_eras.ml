module Padded = Repro_util.Padded

let name = "HE"
let om = Obs.Scheme_metrics.v name
let epoch_advances = Obs.Metrics.counter "smr.he.epoch_advance"
let is_protected_region = false
let confirm_is_trivial = false
let requires_validation = true

type guard = int

let empty_era = -1

type t = {
  max_threads : int;
  k : int;
  knobs : Knobs.t;
  cleanup_floor : int; (* amortization floor: 2 * announcements *)
  era : int Atomic.t;
  slots : int Padded.t; (* announced eras, (k+1) per thread *)
  free : int list array; (* owner only *)
  alloc_tally : int Padded.t;
  retired : (int * int) Retire_queue.t array; (* (birth era, retire era) *)
  orphans : (int * int) Orphanage.t;
}

let create ?epoch_freq ?cleanup_freq ?slots_per_thread ~max_threads () =
  let knobs = Knobs.create ?epoch_freq ?cleanup_freq ?slots_per_thread ~scheme:name () in
  let k = Knobs.slots_per_thread knobs in
  {
    max_threads;
    k;
    knobs;
    cleanup_floor = 2 * (k + 1) * max_threads;
    era = Atomic.make 0;
    slots = Padded.create ((k + 1) * max_threads) empty_era;
    free = Array.init max_threads (fun _ -> List.init k Fun.id);
    alloc_tally = Padded.create max_threads 0;
    retired = Array.init max_threads (fun _ -> Retire_queue.create ());
    orphans = Orphanage.create ();
  }

(* See Hp.effective_cleanup_freq: the floor keeps scan cost amortized
   even when the controller lowers the knob. *)
let effective_cleanup_freq t = max (Knobs.cleanup_freq t.knobs) t.cleanup_floor

let max_threads t = t.max_threads
let knobs t = t.knobs
let current_era t = Atomic.get t.era
let advance_era t =
  ignore (Atomic.fetch_and_add t.era 1);
  Obs.Metrics.incr epoch_advances ~pid:0

let force_advance t = advance_era t
let slot_index t ~pid local = (pid * (t.k + 1)) + local
let begin_critical_section _t ~pid:_ = ()
let end_critical_section _t ~pid:_ = ()

let alloc_hook t ~pid =
  let tally = Padded.get t.alloc_tally pid + 1 in
  Padded.set t.alloc_tally pid tally;
  if tally mod Knobs.epoch_freq t.knobs = 0 then advance_era t;
  Atomic.get t.era

let try_acquire t ~pid _id =
  match t.free.(pid) with
  | [] ->
      Obs.Scheme_metrics.on_slot_exhausted om ~pid;
      None
  | s :: rest ->
      t.free.(pid) <- rest;
      Obs.Scheme_metrics.on_acquire om ~pid;
      Padded.set t.slots (slot_index t ~pid s) (Atomic.get t.era);
      Some s

let acquire t ~pid _id =
  Obs.Scheme_metrics.on_acquire om ~pid;
  Padded.set t.slots (slot_index t ~pid t.k) (Atomic.get t.era);
  t.k

let confirm t ~pid g _id =
  (* The protected read happened after the slot announced some era [a];
     if the global era still equals [a], the read object was born no
     later than [a] and cannot be retired earlier, so the announcement
     covers it. Otherwise re-announce the fresh era and re-read. *)
  let idx = slot_index t ~pid g in
  let announced = Padded.get t.slots idx in
  let cur = Atomic.get t.era in
  if announced = cur then true
  else begin
    Obs.Scheme_metrics.on_confirm_retry om ~pid;
    Padded.set t.slots idx cur;
    false
  end

let release t ~pid g =
  Padded.set t.slots (slot_index t ~pid g) empty_era;
  if g < t.k then t.free.(pid) <- g :: t.free.(pid)

let retire t ~pid _id ~birth op =
  let op = Obs.Scheme_metrics.on_retire om ~pid op in
  Retire_queue.push t.retired.(pid) (birth, Atomic.get t.era) op

let eject ?(force = false) t ~pid =
  let q = t.retired.(pid) in
  if
    force || Knobs.sync_scan t.knobs
    || Retire_queue.due q ~every:(effective_cleanup_freq t)
  then begin
    let eras = ref [] in
    let total = (t.k + 1) * t.max_threads in
    for i = 0 to total - 1 do
      let e = Padded.get t.slots i in
      if e <> empty_era then eras := e :: !eras
    done;
    let eras = !eras in
    let safe (birth, retired_at) =
      not (List.exists (fun e -> birth <= e && e <= retired_at) eras)
    in
    let adopted =
      match Orphanage.take_all t.orphans with
      | [] -> []
      | entries ->
          let ready, blocked = List.partition (fun (m, _) -> safe m) entries in
          Orphanage.put t.orphans blocked;
          List.map snd ready
    in
    let max = if force then max_int else Knobs.batch_cap t.knobs in
    Obs.Scheme_metrics.on_eject om ~pid (Retire_queue.filter_pop ~max q ~safe @ adopted)
  end
  else []

let retired_count t ~pid = Retire_queue.size t.retired.(pid)

let abandon t ~pid =
  Obs.Scheme_metrics.on_abandon om ~pid;
  for s = 0 to t.k do
    Padded.set t.slots (slot_index t ~pid s) empty_era
  done;
  t.free.(pid) <- List.init t.k Fun.id;
  Orphanage.put t.orphans (Retire_queue.drain_with_meta t.retired.(pid))

let reclamation_frontier t =
  let f =
    Padded.fold (fun acc e -> if e = empty_era then acc else min acc e) max_int t.slots
  in
  Some (if f = max_int then Atomic.get t.era else f)

let drain_all t =
  let orphaned = List.map snd (Orphanage.take_all t.orphans) in
  orphaned @ Array.fold_left (fun acc q -> acc @ Retire_queue.drain q) [] t.retired
