(** Deterministic seeded key generators for the serving workload
    (DESIGN.md §12).

    The determinism contract: a generator is a pure function of
    [(spec, seed, range)] — [next] consumes only its own PRNG stream,
    so the same triple yields a bit-identical key sequence on every
    host, every run, and every thread interleaving (each worker owns
    its generator). test/test_kv.ml pins golden sequences against this
    contract.

    Three families, mirroring the skew regimes the reclamation papers
    disagree on (Hyaline §6, Stamp-it §5 — scheme rankings flip under
    skew):

    + {b Uniform}: every key equally likely — the paper's own Fig 13
      regime.
    + {b Zipfian}: YCSB-style bounded Zipf over ranks with parameter
      [theta] (0 < theta < 1; 0.99 is the YCSB default). Rank [r]'s
      probability is proportional to [1/(r+1)^theta]; rank 0 is the
      hottest. Ranks are scattered over the key space by a fixed
      Fibonacci permutation so that popular keys do not collide into
      neighbouring hash-table buckets.
    + {b Hotspot}: a contiguous hot set of [hot_keys] keys receives
      [hot_pct]% of draws; every [shift_every] draws the hot set
      {e migrates} to a new deterministic position — the phase change
      the adaptive controller is supposed to notice (ROADMAP item 5). *)

type spec =
  | Uniform
  | Zipfian of { theta : float }
  | Hotspot of { hot_keys : int; hot_pct : int; shift_every : int }

let spec_to_string = function
  | Uniform -> "uniform"
  | Zipfian { theta } -> Printf.sprintf "zipf:%.2f" theta
  | Hotspot { hot_keys; hot_pct; shift_every } ->
      Printf.sprintf "hotspot:%d:%d:%d" hot_keys hot_pct shift_every

(* "uniform" | "zipf" | "zipf:0.99" | "hotspot" | "hotspot:KEYS:PCT:SHIFT" *)
let spec_of_string s =
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "uniform" ] -> Ok Uniform
  | [ "zipf" ] -> Ok (Zipfian { theta = 0.99 })
  | [ "zipf"; t ] -> (
      match float_of_string_opt t with
      | Some theta when theta > 0.0 && theta < 1.0 -> Ok (Zipfian { theta })
      | _ -> Error (Printf.sprintf "zipf theta must be in (0,1): %S" t))
  | [ "hotspot" ] -> Ok (Hotspot { hot_keys = 128; hot_pct = 90; shift_every = 50_000 })
  | [ "hotspot"; k; p; e ] -> (
      match (int_of_string_opt k, int_of_string_opt p, int_of_string_opt e) with
      | Some hot_keys, Some hot_pct, Some shift_every
        when hot_keys > 0 && hot_pct >= 0 && hot_pct <= 100 && shift_every > 0 ->
          Ok (Hotspot { hot_keys; hot_pct; shift_every })
      | _ -> Error (Printf.sprintf "hotspot spec must be hotspot:KEYS:PCT:SHIFT: %S" s))
  | _ -> Error (Printf.sprintf "unknown keygen spec %S (uniform | zipf[:THETA] | hotspot[:KEYS:PCT:SHIFT])" s)

(* Fibonacci scatter: an odd multiplier is a bijection modulo 2^62, so
   ranks map to distinct keys when [range] is reached by [mod] — not a
   bijection then, but collisions are rare and harmless (two ranks
   sharing a key just add their probabilities). *)
let scatter rank range = rank * 0x2545F4914F6CDD1D land max_int mod range

type state =
  | U
  | Z of {
      z_theta : float;
      z_zetan : float; (* zeta(range, theta) *)
      z_alpha : float;
      z_eta : float;
    }
  | H of {
      mutable h_base : int; (* current hot-set origin *)
      mutable h_drawn : int; (* draws since the last shift *)
      mutable h_shifts : int; (* completed migrations *)
      h_keys : int;
      h_pct : int;
      h_every : int;
    }

type t = { rng : Repro_util.Rng.t; range : int; state : state; spec : spec }

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

(* Deterministic hot-set origin for migration [i]: scattered over the
   key space so consecutive phases do not overlap for any sane
   (range, hot_keys). *)
let hot_origin ~seed ~range i = (seed + ((i + 1) * 0x9E3779B97F4A7))  land max_int mod range

let create ~seed ~range spec =
  if range <= 0 then invalid_arg "Keygen.create: range must be positive";
  let rng = Repro_util.Rng.create ~seed in
  let state =
    match spec with
    | Uniform -> U
    | Zipfian { theta } ->
        (* YCSB's ScrambledZipfian constants: closed-form inverse-CDF
           sampling after precomputing zeta(range, theta). *)
        let zetan = zeta range theta in
        let zeta2 = zeta 2 theta in
        let alpha = 1.0 /. (1.0 -. theta) in
        let eta =
          (1.0 -. Float.pow (2.0 /. float_of_int range) (1.0 -. theta))
          /. (1.0 -. (zeta2 /. zetan))
        in
        Z { z_theta = theta; z_zetan = zetan; z_alpha = alpha; z_eta = eta }
    | Hotspot { hot_keys; hot_pct; shift_every } ->
        H
          {
            h_base = hot_origin ~seed ~range 0;
            h_drawn = 0;
            h_shifts = 0;
            h_keys = min hot_keys range;
            h_pct = hot_pct;
            h_every = shift_every;
          }
  in
  { rng; range; state; spec }

let spec t = t.spec
let range t = t.range

(** The rank drawn by the Zipfian inverse CDF, before scattering —
    exposed so the distribution tests can check rank-frequency
    monotonicity without inverting the scatter. *)
let zipf_rank t =
  match t.state with
  | Z z ->
      let u = Repro_util.Rng.float t.rng in
      let uz = u *. z.z_zetan in
      if uz < 1.0 then 0
      else if uz < 1.0 +. Float.pow 0.5 z.z_theta then 1
      else
        int_of_float
          (float_of_int t.range
          *. Float.pow ((z.z_eta *. u) -. z.z_eta +. 1.0) z.z_alpha)
        |> min (t.range - 1)
  | _ -> invalid_arg "Keygen.zipf_rank: not a Zipfian generator"

(** Completed hot-set migrations (0 for non-hotspot generators). *)
let shifts t = match t.state with H h -> h.h_shifts | _ -> 0

(** Current hot-set origin, for tests. *)
let hot_base t =
  match t.state with
  | H h -> h.h_base
  | _ -> invalid_arg "Keygen.hot_base: not a hotspot generator"

let next t =
  match t.state with
  | U -> Repro_util.Rng.int t.rng t.range
  | Z _ -> scatter (zipf_rank t) t.range
  | H h ->
      if h.h_drawn >= h.h_every then begin
        h.h_drawn <- 0;
        h.h_shifts <- h.h_shifts + 1;
        (* The new origin is drawn from the same PRNG stream, so it is
           covered by the determinism contract: same (spec, seed,
           range) → same migration schedule. *)
        h.h_base <- hot_origin ~seed:(Repro_util.Rng.int t.rng max_int) ~range:t.range 0
      end;
      h.h_drawn <- h.h_drawn + 1;
      if Repro_util.Rng.int t.rng 100 < h.h_pct then
        (h.h_base + Repro_util.Rng.int t.rng h.h_keys) mod t.range
      else Repro_util.Rng.int t.rng t.range
