(** The pinned perf-trajectory matrix behind [bench perf] and
    `tools/bench_check` (DESIGN.md §11).

    One run measures every (scheme × structure × thread-count) cell of
    a fixed matrix — all Treiber stacks, all doubly-linked queues,
    all hash-table sets, and the sharded KV serving store under its
    read95/write50 mixes — with full telemetry on, and assembles an
    {!Obs.Perf.summary}: throughput, retire→free latency and eject
    batch-size quantiles out of the {!Obs.Histo} rings, peak live
    blocks and peak retired backlog sampled by the coordinator, plus
    the deterministic atomic-op profiles of the three lock-free cores
    instantiated over {!Sched.Counting}.

    The harness here is deliberately smaller than {!Driver}: cells are
    short (fractions of a second) and uniform across structure kinds,
    so one probe record covers stacks, queues and sets. Telemetry is
    reset between cells, which is what makes per-cell histogram
    attribution correct — every [smr.*] histogram alive after a cell
    belongs to that cell's scheme. *)

let default_threads = [ 1; 2; 4 ]
let default_duration = 0.2
let default_scale = 4096

let git_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let sha = try String.trim (input_line ic) with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if sha = "" then "unknown" else sha
  with _ -> "unknown"

(* Merge every histogram whose name ends in [suffix] (e.g. all
   [smr.<scheme>.reclaim_latency] rings — an RC cell populates its
   underlying scheme's) and take quantiles of the merged counts. *)
let quantiles_of_suffix suffix =
  let acc = Array.make Obs.Histo.buckets 0 in
  List.iter
    (fun h ->
      if String.ends_with ~suffix (Obs.Histo.name h) then
        Array.iteri (fun i c -> acc.(i) <- acc.(i) + c) (Obs.Histo.merged h))
    (Obs.Histo.dump ());
  Obs.Perf.quantiles_of_counts acc

(* What [measure] needs to know about a structure: how a worker loops,
   and how the coordinator observes memory. [p_finish] tears down and
   returns the block count left live — the leak figure. *)
type probe = {
  p_worker : int -> (unit -> bool) -> int;
  p_live : unit -> int;
  p_backlog : unit -> int;
  p_finish : unit -> int;
}

let measure ~scheme ~structure ~threads ~duration (probe : probe) =
  Obs.Report.reset_all ();
  Obs.Metrics.set_enabled true;
  (* Reclaim-latency sampling rides [Trace.should_sample]. *)
  Obs.Trace.set_enabled true;
  let stop = Atomic.make false in
  let running () = not (Atomic.get stop) in
  let ops = Array.make threads 0 in
  let domains =
    List.init threads (fun i -> Domain.spawn (fun () -> ops.(i) <- probe.p_worker (i + 1) running))
  in
  let peak_live = ref 0 in
  let peak_backlog = ref 0 in
  let observe () =
    peak_live := max !peak_live (probe.p_live ());
    peak_backlog := max !peak_backlog (probe.p_backlog ())
  in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. duration in
  let rec sample () =
    let now = Unix.gettimeofday () in
    if now < deadline then begin
      observe ();
      Unix.sleepf (min 0.002 (deadline -. now));
      sample ()
    end
  in
  sample ();
  Atomic.set stop true;
  List.iter Domain.join domains;
  let elapsed = Unix.gettimeofday () -. t0 in
  observe ();
  let leaked = probe.p_finish () in
  let total = Array.fold_left ( + ) 0 ops in
  let reclaim = quantiles_of_suffix ".reclaim_latency" in
  let eject = quantiles_of_suffix ".eject.batch_size" in
  Obs.Metrics.set_enabled false;
  Obs.Trace.set_enabled false;
  {
    Obs.Perf.c_scheme = scheme;
    c_structure = structure;
    c_threads = threads;
    c_ops = total;
    c_mops = Repro_util.Stats.throughput_mops ~ops:total ~seconds:elapsed;
    c_reclaim = reclaim;
    c_eject_batch = eject;
    c_peak_live = !peak_live;
    c_peak_backlog = !peak_backlog;
    c_leaked = leaked;
  }

(* Workers batch 64 operations between stop-flag checks, like
   [Driver]. Worker exceptions end that worker's run with the ops it
   completed — cells measure throughput, not safety (the fault and
   lincheck harnesses own that). *)

let stack_cell ~threads ~duration ~scale (module St : Instances.STACK) =
  let s = St.create ~max_threads:(threads + 1) () in
  let c0 = St.ctx s 0 in
  for i = 1 to scale / 2 do
    St.push c0 i
  done;
  St.flush c0;
  let probe =
    {
      p_worker =
        (fun pid running ->
          let c = St.ctx s pid in
          let rng = Repro_util.Rng.create ~seed:(7919 * pid) in
          let n = ref 0 in
          (try
             while running () do
               for _ = 1 to 64 do
                 if Repro_util.Rng.bool rng then St.push c !n else ignore (St.pop c)
               done;
               n := !n + 64
             done;
             St.flush c
           with _ -> ());
          !n);
      p_live = (fun () -> St.live_objects s);
      p_backlog = (fun () -> St.retired_backlog s);
      p_finish =
        (fun () ->
          St.teardown s;
          St.live_objects s);
    }
  in
  measure ~scheme:St.name ~structure:"stack" ~threads ~duration probe

let queue_cell ~threads ~duration ~scale (module Q : Ds.Queue_intf.S) =
  let q = Q.create ~max_threads:(threads + 1) () in
  let c0 = Q.ctx q 0 in
  for i = 1 to max threads (scale / 64) do
    Q.enqueue c0 i
  done;
  Q.flush c0;
  let probe =
    {
      p_worker =
        (fun pid running ->
          let c = Q.ctx q pid in
          let n = ref 0 in
          (try
             while running () do
               for _ = 1 to 32 do
                 (match Q.dequeue c with Some v -> Q.enqueue c v | None -> ());
                 incr n;
                 incr n
               done
             done;
             Q.flush c
           with _ -> ());
          !n);
      p_live = (fun () -> Q.live_objects q);
      p_backlog = (fun () -> Q.retired_backlog q);
      p_finish =
        (fun () ->
          Q.teardown q;
          Q.live_objects q);
    }
  in
  measure ~scheme:Q.name ~structure:"queue" ~threads ~duration probe

let hash_cell ~threads ~duration ~scale (module D : Ds.Set_intf.S) =
  let d =
    D.create ~buckets:(max 64 (scale / 8)) ~max_threads:(threads + 1) ()
  in
  let c0 = D.ctx d 0 in
  let rng0 = Repro_util.Rng.create ~seed:42 in
  let filled = ref 0 in
  while !filled < scale / 2 do
    if D.insert c0 (Repro_util.Rng.int rng0 scale) then incr filled
  done;
  D.flush c0;
  let probe =
    {
      p_worker =
        (fun pid running ->
          let c = D.ctx d pid in
          let rng = Repro_util.Rng.create ~seed:(7919 * pid) in
          let n = ref 0 in
          (try
             while running () do
               for _ = 1 to 64 do
                 let r = Repro_util.Rng.int rng 100 in
                 let key = Repro_util.Rng.int rng scale in
                 (* 50% updates keep the retire pipeline busy so the
                    latency histograms have substance at smoke scale. *)
                 if r < 25 then ignore (D.insert c key)
                 else if r < 50 then ignore (D.remove c key)
                 else ignore (D.contains c key)
               done;
               n := !n + 64
             done;
             D.flush c
           with _ -> ());
          !n);
      p_live = (fun () -> D.live_objects d);
      p_backlog = (fun () -> D.retired_backlog d);
      p_finish =
        (fun () ->
          D.teardown d;
          D.live_objects d);
    }
  in
  measure ~scheme:D.name ~structure:"hash" ~threads ~duration probe

(* Serving cells: the sharded KV store under Zipfian skew, one cell
   per (scheme × mix). The coordinator's sampler doubles as the
   service clock (one tick per ~2ms observation), so TTL'd puts
   expire mid-cell and the expiry/overwrite retire churn the cell
   measures is the real serving pipeline, not just inserts. *)
let kv_mixes = [ ("kv-read95", 95); ("kv-write50", 50) ]

let kv_cell ~threads ~duration ~scale ~structure ~read_pct
    ((name, (module K : Kv_intf.S)) : string * (module Kv_intf.S)) =
  let t = K.create ~shards:4 ~buckets:(max 64 (scale / 8)) ~max_threads:(threads + 1) () in
  let c0 = K.ctx t 0 in
  for k = 0 to (scale / 2) - 1 do
    ignore (K.put c0 ~now:0 k k)
  done;
  K.flush c0;
  let probe =
    {
      p_worker =
        (fun pid running ->
          let c = K.ctx t pid in
          let kg =
            Keygen.create ~seed:(7919 * pid) ~range:scale (Keygen.Zipfian { theta = 0.99 })
          in
          let rng = Repro_util.Rng.create ~seed:(104729 * pid) in
          let n = ref 0 in
          (try
             while running () do
               let now = K.now t in
               for _ = 1 to 64 do
                 let key = Keygen.next kg in
                 let r = Repro_util.Rng.int rng 100 in
                 if r < read_pct then ignore (K.get c ~now key)
                 else if r mod 5 = 0 then ignore (K.remove c ~now key)
                 else
                   let ttl = if r land 3 = 0 then Some 64 else None in
                   ignore (K.put c ~now ?ttl key r)
               done;
               n := !n + 64
             done;
             K.flush c
           with _ -> ());
          !n);
      p_live =
        (fun () ->
          ignore (K.tick t);
          K.live_objects t);
      p_backlog = (fun () -> K.retired_backlog t);
      p_finish =
        (fun () ->
          K.teardown t;
          K.live_objects t);
    }
  in
  measure ~scheme:name ~structure ~threads ~duration probe

(* ---------------- atomic-op profiles ---------------- *)

(* The three schedule-explored cores, re-instantiated over the
   counting shim. Counts are exact and deterministic: each script is
   single-domain, contention-free, and pinned so its per-op cost is a
   protocol invariant, not a measurement. *)
module C = Sched.Counting
module Sticky_c = Sticky.Sticky_counter_f.Make (C)
module Slot_c = Acquire_retire.Slot_protocol.Make (C)
module Cell_c = Cdrc.Rc_cell.Make (C)

let profile_ops = 1000

let profile ~core ~op body : Obs.Perf.atomic_profile =
  C.reset ();
  for _ = 1 to profile_ops do
    body ()
  done;
  let c = C.snapshot () in
  {
    Obs.Perf.a_core = core;
    a_op = op;
    a_ops = profile_ops;
    a_gets = c.C.gets;
    a_sets = c.C.sets;
    a_exchanges = c.C.exchanges;
    a_cas = c.C.cas;
    a_cas_failures = c.C.cas_failures;
    a_faa = c.C.faa;
  }

let atomic_profiles () =
  let sticky = Sticky_c.create 1 in
  let slots = Slot_c.create ~slots_per_thread:2 ~max_threads:1 () in
  let shared = C.make 7 in
  let cell = Cell_c.make 0 in
  [
    (* Revive-free increment + non-final decrement: the refcount hot
       path. 2 FAA/op. *)
    profile ~core:"sticky" ~op:"inc_dec" (fun () ->
        ignore (Sticky_c.increment_if_not_zero sticky);
        ignore (Sticky_c.decrement sticky));
    (* Linearizable read of a live counter. 1 get/op. *)
    profile ~core:"sticky" ~op:"load" (fun () -> ignore (Sticky_c.load sticky));
    (* Uncontended death: final decrement announces with one CAS. *)
    profile ~core:"sticky" ~op:"death" (fun () ->
        let t = Sticky_c.create 1 in
        ignore (Sticky_c.decrement t));
    (* Announce→confirm→release on an unchanging location: the
       hazard-pointer read path. 3 gets (pre-read, settle re-read,
       confirm) + 2 sets (announce, release) per op — the [read]
       closure is itself a counted get. *)
    profile ~core:"slot" ~op:"protect_release" (fun () ->
        let _, g = Slot_c.protect_read slots ~pid:0 ~read:(fun () -> C.get shared) in
        Slot_c.release slots ~pid:0 g);
    (* Retire one identity and eject it: the scan reads every slot. *)
    profile ~core:"slot" ~op:"retire_eject" (fun () ->
        Slot_c.retire slots ~pid:0 1 (fun () -> ());
        ignore (Slot_c.eject slots ~pid:0));
    (* Fig 9 weak upgrade + matching drop on a live control block. *)
    profile ~core:"rc_cell" ~op:"upgrade_drop" (fun () ->
        ignore (Cell_c.try_upgrade cell);
        ignore (Cell_c.strong_decrement cell));
    (* Value-cell dereference. 1 get/op. *)
    profile ~core:"rc_cell" ~op:"read" (fun () -> ignore (Cell_c.read cell));
    (* Full disposal: final strong decrement, take the value, final
       weak decrement frees the block. *)
    profile ~core:"rc_cell" ~op:"dispose" (fun () ->
        let cb = Cell_c.make 0 in
        ignore (Cell_c.strong_decrement cb);
        ignore (Cell_c.take cb);
        ignore (Cell_c.weak_decrement cb));
  ]

(* The pinned per-op expectations for these scripts live in
   test/test_perf.ml; a change there is a change to a core protocol's
   atomic footprint and should be deliberate. *)

(* ---------------- the matrix ---------------- *)

let run ?(label = "perf") ?(threads = default_threads) ?(duration = default_duration)
    ?(scale = default_scale) ?(log = fun (_ : string) -> ()) () : Obs.Perf.summary =
  let metrics_were = Obs.Metrics.enabled () in
  let trace_were = Obs.Trace.enabled () in
  let cells =
    List.concat_map
      (fun p ->
        log (Printf.sprintf "P=%d: %d stacks" p (List.length Instances.stacks));
        let st = List.map (stack_cell ~threads:p ~duration ~scale) Instances.stacks in
        log (Printf.sprintf "P=%d: %d queues" p (List.length Instances.queues));
        let qs = List.map (queue_cell ~threads:p ~duration ~scale) Instances.queues in
        let sets = Instances.all_sets Instances.Hash_s in
        log (Printf.sprintf "P=%d: %d hash sets" p (List.length sets));
        let hs = List.map (hash_cell ~threads:p ~duration ~scale) sets in
        let kvs =
          List.concat_map
            (fun (structure, read_pct) ->
              log
                (Printf.sprintf "P=%d: %d KV services (%s)" p
                   (List.length Instances.kv_services) structure);
              List.map
                (kv_cell ~threads:p ~duration ~scale ~structure ~read_pct)
                Instances.kv_services)
            kv_mixes
        in
        st @ qs @ hs @ kvs)
      threads
  in
  Obs.Report.reset_all ();
  Obs.Metrics.set_enabled metrics_were;
  Obs.Trace.set_enabled trace_were;
  {
    Obs.Perf.s_meta =
      {
        Obs.Perf.m_label = label;
        m_git_sha = git_sha ();
        m_host_domains = Domain.recommended_domain_count ();
        m_duration = duration;
        m_threads = threads;
        m_scale = scale;
      };
    s_cells = cells;
    s_atomics = atomic_profiles ();
  }

(* Scheme coverage a full-matrix run must achieve — the 7 reclamation
   schemes of the evaluation (§5 plus our HE/PTB/None extensions). *)
let required_schemes = [ "EBR"; "IBR"; "HP"; "HE"; "Hyaline"; "PTB"; "None" ]
