(** The full evaluation matrix: every (structure × scheme ×
    manual/automatic) combination from the paper's §5, as first-class
    modules the benchmark harness iterates over.

    Manual schemes: HP, EBR, IBR, Hyaline (+ HE and PTB as our
    extensions). Automatic: RCHP (= CDRC), RCEBR, RCIBR, RCHyaline
    (+ RCHE, RCPTB). *)

module RC_ebr = Cdrc.Make (Smr.Ebr)
module RC_ibr = Cdrc.Make (Smr.Ibr)
module RC_hyaline = Cdrc.Make (Smr.Hyaline)
module RC_hp = Cdrc.Make (Smr.Hp)
module RC_he = Cdrc.Make (Smr.Hazard_eras)
module RC_ptb = Cdrc.Make (Smr.Ptb)

(* RC over the no-op scheme ("RCNone"): decrements defer forever until
   quiesce drains them, making it the leak-upper-bound baseline of the
   KV sweep. *)
module RC_none = Cdrc.Make (Smr.Leaky)

(* Harris-Michael list *)
module L_ebr = Ds.Hm_list_manual.Make (Smr.Ebr)
module L_ibr = Ds.Hm_list_manual.Make (Smr.Ibr)
module L_hyaline = Ds.Hm_list_manual.Make (Smr.Hyaline)
module L_hp = Ds.Hm_list_manual.Make (Smr.Hp)
module L_he = Ds.Hm_list_manual.Make (Smr.Hazard_eras)
module L_ptb = Ds.Hm_list_manual.Make (Smr.Ptb)
module Lr_ebr = Ds.Hm_list_rc.Make (RC_ebr)
module Lr_ibr = Ds.Hm_list_rc.Make (RC_ibr)
module Lr_hyaline = Ds.Hm_list_rc.Make (RC_hyaline)
module Lr_hp = Ds.Hm_list_rc.Make (RC_hp)
module Lr_he = Ds.Hm_list_rc.Make (RC_he)
module Lr_ptb = Ds.Hm_list_rc.Make (RC_ptb)

(* Michael hash table *)
module H_ebr = Ds.Hash_table_manual.Make (Smr.Ebr)
module H_ibr = Ds.Hash_table_manual.Make (Smr.Ibr)
module H_hyaline = Ds.Hash_table_manual.Make (Smr.Hyaline)
module H_hp = Ds.Hash_table_manual.Make (Smr.Hp)
module H_he = Ds.Hash_table_manual.Make (Smr.Hazard_eras)
module H_ptb = Ds.Hash_table_manual.Make (Smr.Ptb)
module Hr_ebr = Ds.Hash_table_rc.Make (RC_ebr)
module Hr_ibr = Ds.Hash_table_rc.Make (RC_ibr)
module Hr_hyaline = Ds.Hash_table_rc.Make (RC_hyaline)
module Hr_hp = Ds.Hash_table_rc.Make (RC_hp)
module Hr_he = Ds.Hash_table_rc.Make (RC_he)
module Hr_ptb = Ds.Hash_table_rc.Make (RC_ptb)

(* Natarajan-Mittal tree *)
module T_ebr = Ds.Nm_tree_manual.Make (Smr.Ebr)
module T_ibr = Ds.Nm_tree_manual.Make (Smr.Ibr)
module T_hyaline = Ds.Nm_tree_manual.Make (Smr.Hyaline)
module T_hp = Ds.Nm_tree_manual.Make (Smr.Hp)
module T_he = Ds.Nm_tree_manual.Make (Smr.Hazard_eras)
module T_ptb = Ds.Nm_tree_manual.Make (Smr.Ptb)
module Tr_ebr = Ds.Nm_tree_rc.Make (RC_ebr)
module Tr_ibr = Ds.Nm_tree_rc.Make (RC_ibr)
module Tr_hyaline = Ds.Nm_tree_rc.Make (RC_hyaline)
module Tr_hp = Ds.Nm_tree_rc.Make (RC_hp)
module Tr_he = Ds.Nm_tree_rc.Make (RC_he)
module Tr_ptb = Ds.Nm_tree_rc.Make (RC_ptb)

(* Doubly-linked queues (Fig 12). The paper's "our algorithm" uses the
   hazard-pointer acquire-retire; we expose every scheme. *)
module Q_rc_hp = Ds.Dl_queue_rc.Make (RC_hp)
module Q_rc_ebr = Ds.Dl_queue_rc.Make (RC_ebr)
module Q_rc_ibr = Ds.Dl_queue_rc.Make (RC_ibr)
module Q_rc_hyaline = Ds.Dl_queue_rc.Make (RC_hyaline)
module Q_rc_he = Ds.Dl_queue_rc.Make (RC_he)
module Q_rc_ptb = Ds.Dl_queue_rc.Make (RC_ptb)
module Q_manual = Ds.Dl_queue_manual.Make ()
module Q_locked = Ds.Dl_queue_locked.Make ()

(* Treiber stacks (extension: not a paper benchmark, but the smallest
   SMR consumer; used by the ext-stack table). *)
module St_ebr = Ds.Treiber_stack_manual.Make (Smr.Ebr)
module St_ibr = Ds.Treiber_stack_manual.Make (Smr.Ibr)
module St_hyaline = Ds.Treiber_stack_manual.Make (Smr.Hyaline)
module St_hp = Ds.Treiber_stack_manual.Make (Smr.Hp)
module St_he = Ds.Treiber_stack_manual.Make (Smr.Hazard_eras)
module St_leaky = Ds.Treiber_stack_manual.Make (Smr.Leaky)
module Str_ebr = Ds.Treiber_stack_rc.Make (RC_ebr)
module Str_ibr = Ds.Treiber_stack_rc.Make (RC_ibr)
module Str_hyaline = Ds.Treiber_stack_rc.Make (RC_hyaline)
module Str_hp = Ds.Treiber_stack_rc.Make (RC_hp)
module Str_he = Ds.Treiber_stack_rc.Make (RC_he)

module type STACK = sig
  val name : string

  type t
  type ctx

  val create : ?slots_per_thread:int -> ?epoch_freq:int -> max_threads:int -> unit -> t
  val ctx : t -> int -> ctx
  val push : ctx -> int -> unit
  val pop : ctx -> int option
  val flush : ctx -> unit
  val size : t -> int
  val live_objects : t -> int

  val retired_backlog : t -> int
  (** Entries retired but not yet reclaimed, as in {!Ds.Set_intf.S}. *)

  val teardown : t -> unit
end

let stacks : (module STACK) list =
  [
    (module St_ebr : STACK);
    (module St_ibr);
    (module St_hyaline);
    (module St_hp);
    (module St_he);
    (module St_leaky);
    (module Str_ebr);
    (module Str_ibr);
    (module Str_hyaline);
    (module Str_hp);
    (module Str_he);
  ]

type structure = List_s | Hash_s | Tree_s

let structure_name = function List_s -> "list" | Hash_s -> "hash" | Tree_s -> "tree"

type set_instance = (module Ds.Set_intf.S)

let manual_sets = function
  | List_s ->
      [
        (module L_ebr : Ds.Set_intf.S);
        (module L_ibr);
        (module L_hyaline);
        (module L_hp);
        (module L_he);
        (module L_ptb);
      ]
  | Hash_s ->
      [
        (module H_ebr : Ds.Set_intf.S);
        (module H_ibr);
        (module H_hyaline);
        (module H_hp);
        (module H_he);
        (module H_ptb);
      ]
  | Tree_s ->
      [
        (module T_ebr : Ds.Set_intf.S);
        (module T_ibr);
        (module T_hyaline);
        (module T_hp);
        (module T_he);
        (module T_ptb);
      ]

let rc_sets = function
  | List_s ->
      [
        (module Lr_ebr : Ds.Set_intf.S);
        (module Lr_ibr);
        (module Lr_hyaline);
        (module Lr_hp);
        (module Lr_he);
        (module Lr_ptb);
      ]
  | Hash_s ->
      [
        (module Hr_ebr : Ds.Set_intf.S);
        (module Hr_ibr);
        (module Hr_hyaline);
        (module Hr_hp);
        (module Hr_he);
        (module Hr_ptb);
      ]
  | Tree_s ->
      [
        (module Tr_ebr : Ds.Set_intf.S);
        (module Tr_ibr);
        (module Tr_hyaline);
        (module Tr_hp);
        (module Tr_he);
        (module Tr_ptb);
      ]

let all_sets s = manual_sets s @ rc_sets s

let queues : (module Ds.Queue_intf.S) list =
  [
    (module Q_manual : Ds.Queue_intf.S);
    (module Q_rc_hp);
    (module Q_rc_ebr);
    (module Q_rc_ibr);
    (module Q_rc_hyaline);
    (module Q_rc_he);
    (module Q_rc_ptb);
    (module Q_locked);
  ]

(* Scheme names are matched case-insensitively and ignoring '-'/'_',
   so "rc-ebr" and "RC_EBR" both select "RCEBR". *)
let normalize_name s =
  String.lowercase_ascii
    (String.concat "" (String.split_on_char '-' (String.concat "" (String.split_on_char '_' s))))

let find_set structure name =
  List.find_opt
    (fun (module D : Ds.Set_intf.S) -> normalize_name D.name = normalize_name name)
    (all_sets structure)

let find_queue name =
  List.find_opt
    (fun (module Q : Ds.Queue_intf.S) -> normalize_name Q.name = normalize_name name)
    queues

(* ---------------------------------------------------------------- *)
(* Sharded KV service (DESIGN.md §12): automatic schemes only — the
   serving workload exists to stress the RC conversion's deferred
   decrements under overwrite/TTL churn. Listed under the {e bare}
   scheme name so KV perf cells share the scheme axis with the rest of
   the BENCH trajectory. *)

module Kv_ebr = Kv_service.Make (RC_ebr)
module Kv_ibr = Kv_service.Make (RC_ibr)
module Kv_hyaline = Kv_service.Make (RC_hyaline)
module Kv_hp = Kv_service.Make (RC_hp)
module Kv_he = Kv_service.Make (RC_he)
module Kv_ptb = Kv_service.Make (RC_ptb)
module Kv_none = Kv_service.Make (RC_none)

let kv_services : (string * (module Kv_intf.S)) list =
  [
    ("EBR", (module Kv_ebr : Kv_intf.S));
    ("IBR", (module Kv_ibr));
    ("Hyaline", (module Kv_hyaline));
    ("HP", (module Kv_hp));
    ("HE", (module Kv_he));
    ("PTB", (module Kv_ptb));
    ("None", (module Kv_none));
  ]

let find_kv name =
  List.find_opt
    (fun (n, _) ->
      normalize_name n = normalize_name name
      || normalize_name ("RC" ^ n) = normalize_name name)
    kv_services
