(** Experiment registry: one entry per table/figure of the paper's
    evaluation (§5), plus our ablations. DESIGN.md §4 carries the full
    index; EXPERIMENTS.md records paper-vs-measured outcomes. *)

type set_exp = {
  id : string;
  title : string;
  expected : string; (* the paper's qualitative result for this figure *)
  structure : Instances.structure;
  mix : Driver.spec -> Driver.spec; (* workload mix on top of the base spec *)
}

let with_tree_defaults s =
  { s with Driver.key_range = 200_000; init_size = 100_000 }

let set_experiments =
  [
    {
      id = "fig11";
      title = "Fig 11: NM tree, 50% updates / 50% range queries (size 64)";
      expected =
        "RC{EBR,IBR,Hyaline} >> RCHP (paper: >7x at 144T; RCHP exhausts \
         announcement slots on range queries); RC within 10-15% of manual";
      structure = Tree_s;
      mix = (fun s -> { (with_tree_defaults s) with update_pct = 50; rq_pct = 50; rq_size = 64 });
    };
    {
      id = "fig13a";
      title = "Fig 13a: Harris-Michael list, 10% updates / 90% lookups, 1K keys";
      expected =
        "region schemes > pointer schemes; RC versions close to manual but \
         with higher memory (deferred decrements keep chains alive)";
      structure = List_s;
      mix =
        (fun s ->
          { s with key_range = 2_000; init_size = 1_000; update_pct = 10; rq_pct = 0 });
    };
    {
      id = "fig13b";
      title = "Fig 13b: Michael hash table, 10% updates / 90% lookups, 100K keys, load factor 1";
      expected = "all schemes close (shallow buckets); RCEBR ~ EBR";
      structure = Hash_s;
      mix =
        (fun s ->
          {
            s with
            key_range = 200_000;
            init_size = 100_000;
            update_pct = 10;
            rq_pct = 0;
            buckets = Some 100_000;
          });
    };
    {
      id = "fig13c";
      title = "Fig 13c: NM tree, 10% updates / 90% lookups, 100K keys";
      expected = "RCEBR within 10% of EBR and up to ~1.7x faster than RCHP";
      structure = Tree_s;
      mix = (fun s -> { (with_tree_defaults s) with update_pct = 10; rq_pct = 0 });
    };
    {
      id = "fig13d";
      title = "Fig 13d: NM tree, 50% updates / 50% lookups, 100K keys";
      expected = "same ordering as 13c with larger RC-vs-manual gaps";
      structure = Tree_s;
      mix = (fun s -> { (with_tree_defaults s) with update_pct = 50; rq_pct = 0 });
    };
    {
      id = "fig13e";
      title = "Fig 13e: NM tree, 1% updates / 99% lookups, 100K keys";
      expected =
        "RCEBR ~ EBR (near-identical); RCHyaline slightly faster than Hyaline; \
         RCIBR ~20% slower than IBR";
      structure = Tree_s;
      mix = (fun s -> { (with_tree_defaults s) with update_pct = 1; rq_pct = 0 });
    };
    {
      id = "fig13f";
      title = "Fig 13f: NM tree, 100% updates, 100K keys (memory stress)";
      expected =
        "manual and automatic track each other on throughput; automatic uses \
         several times more memory when oversubscribed";
      structure = Tree_s;
      mix = (fun s -> { (with_tree_defaults s) with update_pct = 100; rq_pct = 0 });
    };
  ]

let find_set_exp id = List.find_opt (fun e -> e.id = id) set_experiments

(* ---------------- runners ---------------- *)

let run_set_instance (module D : Ds.Set_intf.S) spec =
  let module R = Driver.Run (D) in
  R.run ~spec ()

let run_set_exp ?(threads = [ 1; 2; 4 ]) ?(duration = 0.4) ?(schemes = []) ?(scale = 1)
    ?(adapt = false) e =
  Format.printf "@.== %s ==@.expected: %s@.@." e.title e.expected;
  let instances =
    match schemes with
    | [] -> Instances.all_sets e.structure
    | names ->
        List.filter_map (fun n -> Instances.find_set e.structure n) names
  in
  let results = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun (module D : Ds.Set_intf.S) ->
          let spec = e.mix { Driver.default_spec with threads = p; duration; adapt } in
          (* [scale] > 1 shrinks the structure for smoke runs. *)
          let spec =
            {
              spec with
              init_size = max 16 (spec.init_size / scale);
              key_range = max 32 (spec.key_range / scale);
              buckets = Option.map (fun b -> max 16 (b / scale)) spec.buckets;
            }
          in
          let r = run_set_instance (module D) spec in
          results := r :: !results;
          Format.printf "%a@." Driver.pp_result r;
          List.iter
            (fun d -> Format.printf "    [adapt] %s@." d)
            r.Driver.adapt_decisions)
        instances;
      Format.printf "@.")
    threads;
  List.rev !results

let run_fig12 ?(threads = [ 1; 2; 4 ]) ?(duration = 0.4) ?(schemes = []) () =
  Format.printf
    "@.== Fig 12: doubly-linked queue, P threads pop-then-push ==@.expected: Original > \
     ours (RC-weak) >> locked stand-in at high thread counts; ours within ~19-33%% of \
     Original beyond 1 thread@.@.";
  let instances =
    match schemes with
    | [] -> Instances.queues
    | names -> List.filter_map Instances.find_queue names
  in
  let results = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun (module Q : Ds.Queue_intf.S) ->
          let module R = Queue_driver.Run (Q) in
          let r = R.run ~threads:p ~duration () in
          results := r :: !results;
          Format.printf "%a@." Queue_driver.pp_result r)
        instances;
      Format.printf "@.")
    threads;
  List.rev !results

(* ---------------- ablations ---------------- *)

(* abl1: wait-free sticky counter vs CAS-loop counter under concurrent
   increment-if-not-zero pressure (the §4.3 claim: O(1) vs O(P)
   amortized). *)
let run_abl_sticky ?(threads = [ 1; 2; 4 ]) ?(duration = 0.3) () =
  Format.printf
    "@.== Ablation: sticky counter vs CAS-loop counter ==@.expected: sticky sustains \
     higher inc/dec throughput as contention grows@.@.";
  let bench name inc dec =
    List.iter
      (fun p ->
        let stop = Atomic.make false in
        let ops = Array.make p 0 in
        let worker pid () =
          let n = ref 0 in
          while not (Atomic.get stop) do
            for _ = 1 to 64 do
              if inc () then ignore (dec ())
            done;
            n := !n + 128
          done;
          ops.(pid) <- !n
        in
        let t0 = Unix.gettimeofday () in
        let ds = List.init p (fun pid -> Domain.spawn (worker pid)) in
        Unix.sleepf duration;
        Atomic.set stop true;
        List.iter Domain.join ds;
        let dt = Unix.gettimeofday () -. t0 in
        let total = Array.fold_left ( + ) 0 ops in
        Format.printf "%-8s P=%-3d %8.3f Mops/s@." name p
          (Repro_util.Stats.throughput_mops ~ops:total ~seconds:dt))
      threads
  in
  let s = Sticky.Sticky_counter.create 1 in
  bench "sticky"
    (fun () -> Sticky.Sticky_counter.increment_if_not_zero s)
    (fun () -> Sticky.Sticky_counter.decrement s);
  let c = Sticky.Casloop_counter.create 1 in
  bench "casloop"
    (fun () -> Sticky.Casloop_counter.increment_if_not_zero c)
    (fun () -> Sticky.Casloop_counter.decrement c);
  Format.printf "@."

(* abl2: EBR/IBR epoch frequency sweep (the paper's §5.1 tuning:
   throughput vs memory trade-off). *)
let run_abl_epochfreq ?(threads = 4) ?(duration = 0.3) ?(freqs = [ 1; 10; 40; 160; 640 ]) ()
    =
  Format.printf
    "@.== Ablation: epoch advance frequency (RCEBR on the NM tree, 50%% updates) \
     ==@.expected: rare advances raise throughput but grow live memory@.@.";
  List.iter
    (fun f ->
      let spec =
        {
          Driver.default_spec with
          threads;
          duration;
          update_pct = 50;
          key_range = 20_000;
          init_size = 10_000;
          epoch_freq = Some f;
        }
      in
      let module R = Driver.Run (Instances.Tr_ebr) in
      let r = R.run ~spec () in
      Format.printf "epoch_freq=%-5d %a@." f Driver.pp_result r)
    freqs;
  Format.printf "@."

(* abl3: HP announcement-slot budget vs the snapshot fast path — the
   mechanism behind Fig 11's RCHP collapse, isolated. *)
let run_abl_hpslots ?(threads = 2) ?(duration = 0.3) ?(slots = [ 2; 4; 8; 16; 32 ]) () =
  Format.printf
    "@.== Ablation: RCHP announcement slots vs range-query throughput (NM tree, 50%% \
     RQ-64) ==@.expected: few slots force the count-increment slow path; throughput \
     recovers as slots cover the query path@.@.";
  List.iter
    (fun k ->
      let spec =
        {
          Driver.default_spec with
          threads;
          duration;
          update_pct = 50;
          rq_pct = 50;
          rq_size = 64;
          key_range = 20_000;
          init_size = 10_000;
          slots = Some k;
        }
      in
      let module R = Driver.Run (Instances.Tr_hp) in
      let r = R.run ~spec () in
      Format.printf "slots=%-3d %a@." k Driver.pp_result r)
    slots;
  Format.printf "@."

(* ---------------- robustness (fault injection) ---------------- *)

(* The paper's §2/§5.2 robustness claim, machine-checked: stall one
   thread inside its critical section and watch each scheme's garbage.
   EBR's backlog grows without bound (the stalled section pins the
   epoch frontier); HP/IBR/HE cap it per stalled thread; and reaping
   the stalled thread with [abandon] restores reclamation everywhere.
   Workers run a Treiber push/pop loop — the smallest real SMR
   consumer — under a [Fault.Faulty_smr] wrapper, so the stall is
   injected by a deterministic plan rather than scripted by hand. *)

type robustness_result = {
  rb_scheme : string;
  rb_curve : (float * int) list; (* (seconds, live blocks) samples *)
  rb_peak_stalled : int; (* peak live blocks while the victim stalled *)
  rb_live_at_abandon : int;
  rb_live_end : int; (* live blocks once survivors drained post-abandon *)
  rb_leaked : int; (* after teardown *)
  rb_watchdog_fired : float option; (* seconds at which Stuck was reported *)
  rb_events : Fault.Fault_plan.event list;
}

let pp_robustness_result ppf r =
  Format.fprintf ppf
    "%-8s peak(stalled)=%-8d live@abandon=%-8d live@end=%-8d leaked=%-4d watchdog=%s"
    r.rb_scheme r.rb_peak_stalled r.rb_live_at_abandon r.rb_live_end r.rb_leaked
    (match r.rb_watchdog_fired with
    | Some s -> Printf.sprintf "stuck@%.2fs" s
    | None -> "quiet")

let robustness_schemes : (module Smr.Smr_intf.S) list =
  [
    (module Smr.Ebr : Smr.Smr_intf.S);
    (module Smr.Ibr);
    (module Smr.Hp);
    (module Smr.Hazard_eras);
    (module Smr.Hyaline);
    (module Smr.Ptb);
  ]

let run_robustness_one ?(duration = 1.0) ?(seed = 42) (module S : Smr.Smr_intf.S) =
  let workers = 3 in
  let victim = 0 in
  (* Stall the victim forever at its 21st critical-section entry; the
     plan is the only thing that distinguishes this run from a healthy
     one. *)
  let plan =
    Fault.Fault_plan.create
      [ { site = On_begin_cs; pid = Some victim; at = 21; action = Stall 0 } ]
  in
  let module FS =
    Fault.Faulty_smr.Make
      (S)
      (struct
        let plan = plan
      end)
  in
  let module St = Ds.Treiber_stack_manual.Make (FS) in
  let st = St.create ~max_threads:workers () in
  let stop = Atomic.make false in
  let abandoned = Atomic.make false in
  let worker pid () =
    let c = St.ctx st pid in
    let rng = Repro_util.Rng.create ~seed:(seed + (pid * 7919)) in
    while not (Atomic.get stop) do
      if Fault.Fault_plan.stalled plan ~pid then
        (* Parked: the thread is "preempted" holding its protection. *)
        Unix.sleepf 0.001
      else begin
        St.push c (Repro_util.Rng.int rng 1000);
        ignore (St.pop c)
      end
    done;
    if not (Fault.Fault_plan.stalled plan ~pid) then St.flush c
  in
  let t0 = Unix.gettimeofday () in
  let domains = List.init workers (fun pid -> Domain.spawn (worker pid)) in
  let wd = St.Ar.watchdog ~threshold:3 ~slack:256 () in
  let watchdog_fired = ref None in
  let curve = ref [] in
  let peak_stalled = ref 0 in
  let live_at_abandon = ref 0 in
  let abandon_at = duration /. 2. in
  let rec sample () =
    let now = Unix.gettimeofday () -. t0 in
    if now < duration then begin
      let live = St.live_objects st in
      curve := (now, live) :: !curve;
      if not (Atomic.get abandoned) then begin
        peak_stalled := max !peak_stalled live;
        (match St.Ar.watchdog_check st.St.ar wd with
        | St.Ar.Stuck _ when !watchdog_fired = None -> watchdog_fired := Some now
        | _ -> ());
        if now >= abandon_at then begin
          (* Recovery: reap the stalled thread on its behalf. *)
          live_at_abandon := live;
          St.abandon st ~pid:victim;
          Atomic.set abandoned true
        end
      end;
      Unix.sleepf 0.002;
      sample ()
    end
  in
  sample ();
  Atomic.set stop true;
  List.iter Domain.join domains;
  let live_end = St.live_objects st in
  St.teardown st;
  {
    rb_scheme = S.name;
    rb_curve = List.rev !curve;
    rb_peak_stalled = !peak_stalled;
    rb_live_at_abandon = !live_at_abandon;
    rb_live_end = live_end;
    rb_leaked = St.live_objects st;
    rb_watchdog_fired = !watchdog_fired;
    rb_events = Fault.Fault_plan.trace plan;
  }

let run_robustness ?(duration = 1.0) ?(schemes = []) ?(seed = 42) ?out () =
  Format.printf
    "@.== Robustness: one stalled thread, garbage growth and recovery by abandon \
     ==@.expected: EBR backlog grows unboundedly while stalled (watchdog trips); \
     HP/IBR/HE stay bounded; abandon restores leak-free reclamation everywhere@.@.";
  let picked =
    match schemes with
    | [] -> robustness_schemes
    | names ->
        List.filter
          (fun (module S : Smr.Smr_intf.S) ->
            List.exists
              (fun n -> Instances.normalize_name n = Instances.normalize_name S.name)
              names)
          robustness_schemes
  in
  let results = List.map (run_robustness_one ~duration ~seed) picked in
  List.iter
    (fun r ->
      Format.printf "%a@." pp_robustness_result r;
      List.iter (fun e -> Format.printf "    [fault] %a@." Fault.Fault_plan.pp_event e) r.rb_events)
    results;
  Format.printf "@.";
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "# robustness: stalled thread at op 21, abandon at %.2fs, seed %d@."
        (duration /. 2.) seed;
      Format.fprintf ppf "# scheme,time_s,live_blocks@.";
      List.iter
        (fun r ->
          List.iter
            (fun (t, live) -> Format.fprintf ppf "%s,%.4f,%d@." r.rb_scheme t live)
            r.rb_curve;
          Format.fprintf ppf "# %a@." pp_robustness_result r)
        results;
      Format.pp_print_flush ppf ();
      close_out oc;
      Format.printf "curves written to %s@.@." path);
  results

(* ---------------- adaptivity (controller vs fixed knobs) ---------------- *)

(* The tentpole claim of the adaptive controller, machine-checked on
   the PR 1 stalled-domain fault plan: a victim enters a critical
   section and stalls forever, pinning EBR's epoch frontier. With fixed
   knobs the healthy domain's garbage grows without bound — every scan
   is futile and no human calls [abandon]. With the controller on, the
   watchdog's Stuck verdicts feed the stall-response policy, which
   backs off the futile scans and, after the grace period, escalates to
   the abandon/orphanage-adoption path; the backlog then drains and
   stays bounded.

   Unlike [run_robustness], this is a {e single-domain} deterministic
   replay — a scripted churn loop with no Domain.spawn, no wall clock,
   and no randomness — so the controller's decision log is a pure
   function of the iteration count and replays bit-identically
   (test/test_adapt.ml runs it twice and pins the log). *)

type adaptivity_result = {
  ad_scheme : string;
  ad_adapt : bool;
  ad_iters : int;
  ad_peak_backlog : int; (* max retired-but-unreclaimed entries seen *)
  ad_end_backlog : int; (* backlog after the last iteration *)
  ad_escalated_at : int option; (* iteration of the abandon escalation *)
  ad_leaked : int; (* live blocks after quiesce; 0 = leak-free *)
  ad_decisions : string list;
}

let pp_adaptivity_result ppf r =
  Format.fprintf ppf
    "%-8s adapt=%-5b iters=%-6d peak_backlog=%-6d end_backlog=%-6d escalate=%s leaked=%d \
     decisions=%d"
    r.ad_scheme r.ad_adapt r.ad_iters r.ad_peak_backlog r.ad_end_backlog
    (match r.ad_escalated_at with Some i -> Printf.sprintf "@%d" i | None -> "never")
    r.ad_leaked (List.length r.ad_decisions)

(* One deterministic run: [iters] alloc/retire/eject churn iterations
   on the healthy domain (pid 1) while pid 0 stalls inside its first
   critical section; a controller tick every [check_every] iterations.
   Exposed with these knobs so the tests and the CI smoke can pin exact
   escalation points. *)
let run_adaptivity_one ?(iters = 2000) ?(check_every = 32) ?config ~adapt
    (module S : Smr.Smr_intf.S) =
  let plan =
    Fault.Fault_plan.create
      [ { site = On_begin_cs; pid = Some 0; at = 1; action = Stall 0 } ]
  in
  let module FS =
    Fault.Faulty_smr.Make
      (S)
      (struct
        let plan = plan
      end)
  in
  let module Ar = Acquire_retire.Make (FS) in
  (* epoch_freq/cleanup_freq 1: the scheme is maximally eager, so any
     unbounded growth is the stall's fault, not the tuning's. *)
  let ar = Ar.create ~epoch_freq:1 ~cleanup_freq:1 ~max_threads:2 () in
  (* The victim enters and never leaves: the plan stalls it at its
     first section entry, freezing its announcement. *)
  Ar.begin_critical_section ar ~pid:0;
  let wd = Ar.watchdog ~threshold:3 ~slack:64 () in
  let escalated_at = ref None in
  let iter = ref 0 in
  let ctl =
    if adapt then
      Some
        (Adapt.Controller.create ?config
           ~on_escalate:(fun () ->
             escalated_at := Some !iter;
             Ar.abandon ar ~pid:0)
           [ Ar.handle ar ])
    else None
  in
  let peak = ref 0 in
  for i = 1 to iters do
    iter := i;
    Ar.begin_critical_section ar ~pid:1;
    let m = Ar.alloc ar ~pid:1 i in
    Ar.retire_free ar ~pid:1 m;
    Ar.end_critical_section ar ~pid:1;
    List.iter (fun op -> op 1) (Ar.eject ar ~pid:1);
    peak := max !peak (Ar.total_pending ar);
    if i mod check_every = 0 then
      match ctl with
      | None -> ()
      | Some c ->
          let stalled =
            match Ar.watchdog_check ar wd with Ar.Stuck _ -> true | Ar.Progressing -> false
          in
          ignore
            (Adapt.Controller.observe c
               {
                 Adapt.Controller.backlog = Ar.total_pending ar;
                 p99 = None;
                 stalled;
               })
  done;
  let end_backlog = Ar.total_pending ar in
  (* Teardown: reap the victim if the controller never did, then apply
     everything — the run must be leak-free either way. *)
  if !escalated_at = None then Ar.abandon ar ~pid:0;
  Ar.drain ar ~pid:1;
  Ar.quiesce ar;
  {
    ad_scheme = S.name;
    ad_adapt = adapt;
    ad_iters = iters;
    ad_peak_backlog = !peak;
    ad_end_backlog = end_backlog;
    ad_escalated_at = !escalated_at;
    ad_leaked = Simheap.live (Ar.heap ar);
    ad_decisions = (match ctl with None -> [] | Some c -> Adapt.Controller.decisions c);
  }

(* Controller-on vs fixed-knob EBR under the same stalled-domain plan.
   Returns [(ok, results)]: [ok] iff the controller kept the peak
   backlog at or under [bound] while the fixed-knob run ended above it
   — the CI smoke's assertion. *)
let run_adaptivity ?(iters = 2000) ?(bound = 512) ?out () =
  Format.printf
    "@.== Adaptivity: stalled domain, controller vs fixed knobs (EBR) ==@.expected: \
     fixed-knob EBR backlog grows without bound behind the pinned frontier; the \
     controller backs off scans, escalates to abandon after the grace period, and \
     keeps the backlog under %d@.@."
    bound;
  let on = run_adaptivity_one ~iters ~adapt:true (module Smr.Ebr : Smr.Smr_intf.S) in
  let off = run_adaptivity_one ~iters ~adapt:false (module Smr.Ebr : Smr.Smr_intf.S) in
  let results = [ on; off ] in
  List.iter (fun r -> Format.printf "%a@." pp_adaptivity_result r) results;
  Format.printf "@.controller decisions:@.";
  List.iter (fun d -> Format.printf "    [adapt] %s@." d) on.ad_decisions;
  let ok =
    on.ad_peak_backlog <= bound && off.ad_end_backlog > bound
    && on.ad_leaked = 0 && off.ad_leaked = 0
  in
  Format.printf "@.bound=%d controller-on peak=%d (%s) fixed-knob end=%d (%s)@.@." bound
    on.ad_peak_backlog
    (if on.ad_peak_backlog <= bound then "bounded" else "VIOLATED")
    off.ad_end_backlog
    (if off.ad_end_backlog > bound then "unbounded as expected" else "UNEXPECTEDLY BOUNDED");
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "# adaptivity: stalled domain at first begin_cs, EBR, iters=%d bound=%d@."
        iters bound;
      List.iter (fun r -> Format.fprintf ppf "%a@." pp_adaptivity_result r) results;
      Format.fprintf ppf "# controller decision log@.";
      List.iter (fun d -> Format.fprintf ppf "%s@." d) on.ad_decisions;
      Format.pp_print_flush ppf ();
      close_out oc;
      Format.printf "results written to %s@.@." path);
  (ok, results)

(* Extension table: Treiber stack push/pop across every scheme — not a
   paper figure, but the smallest end-to-end consumer of the framework
   (includes the "None" leak-everything upper bound). *)
let run_ext_stack ?(threads = [ 1; 2; 4 ]) ?(duration = 0.3) () =
  Format.printf
    "@.== Extension: Treiber stack, P threads push/pop pairs ==@.expected: None (no \
     reclamation) is the throughput upper bound and the memory worst case; region \
     schemes close behind; RC versions track their manual counterparts@.@.";
  List.iter
    (fun p ->
      List.iter
        (fun (module St : Instances.STACK) ->
          let s = St.create ~max_threads:p () in
          let stop = Atomic.make false in
          let ops = Array.make p 0 in
          let worker pid () =
            let c = St.ctx s pid in
            let n = ref 0 in
            while not (Atomic.get stop) do
              for i = 1 to 32 do
                St.push c i;
                ignore (St.pop c)
              done;
              n := !n + 64
            done;
            St.flush c;
            ops.(pid) <- !n
          in
          let t0 = Unix.gettimeofday () in
          let ds = List.init p (fun pid -> Domain.spawn (worker pid)) in
          Unix.sleepf duration;
          Atomic.set stop true;
          List.iter Domain.join ds;
          let dt = Unix.gettimeofday () -. t0 in
          let total = Array.fold_left ( + ) 0 ops in
          let peak_live = St.live_objects s in
          St.teardown s;
          Format.printf "%-10s P=%-3d %8.3f Mops/s  residual=%-9d leak-after=%d@." St.name
            p
            (Repro_util.Stats.throughput_mops ~ops:total ~seconds:dt)
            peak_live (St.live_objects s))
        Instances.stacks;
      Format.printf "@.")
    threads

(* ---------------- telemetry (`stats`, `obs-overhead`) ---------------- *)

let ensure_results_dir () =
  try Unix.mkdir "results" 0o755 with Unix.Unix_error _ -> ()

(* Run [f] with stdout silenced — used by [stats --json] so the
   process's only stdout is the JSON object itself. Redirection happens
   at the fd level because OCaml 5's [Format.std_formatter] swaps in a
   shared buffered backend at the first [Domain.spawn], which would
   bypass silenced formatter out-functions. *)
let with_quiet_stdout f =
  Format.pp_print_flush Format.std_formatter ();
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      Format.pp_print_flush Format.std_formatter ();
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

(* What a telemetry-enabled run of each experiment must have produced,
   assuming the default (all-schemes) instance list; [stats --check]
   asserts these are present and nonzero. *)
type metric_requirement = Key of string | Prefix of string

let stats_requirements = function
  | "robustness" -> [ Key "fault.fired"; Prefix "smr."; Prefix "ar." ]
  | "fig12" -> [ Prefix "smr."; Prefix "cdrc." ]
  | "chaos" -> [ Prefix "kv.breaker."; Key "kv.retry"; Key "kv.shed" ]
  | _ ->
      [ Key "smr.ebr.retire"; Key "smr.ebr.eject.ops"; Prefix "cdrc."; Prefix "ar." ]

let print_reclaim_latency () =
  let hs =
    Obs.Histo.dump ()
    |> List.filter (fun h ->
           String.ends_with ~suffix:".reclaim_latency" (Obs.Histo.name h))
    |> List.filter_map (fun h ->
           Option.map (fun ps -> (h, ps)) (Obs.Histo.percentiles h))
  in
  if hs <> [] then begin
    Format.printf
      "@.reclamation latency per scheme (operation ticks survived; bucket upper bounds)@.";
    List.iter
      (fun (h, (p50, p99, p999)) ->
        Format.printf "  %-28s n=%-9d p50=%-8d p99=%-8d p999=%d@." (Obs.Histo.name h)
          (Obs.Histo.count h) p50 p99 p999)
      hs
  end

(** Run one experiment with telemetry enabled, export the event trace
    to [results/trace-<exp>.jsonl], and report the metric registry.
    Returns a process exit code: 0 on success, 1 if [--check] failed,
    2 for an unknown experiment id. *)
let run_stats ?(threads = [ 2 ]) ?(duration = 0.3) ?(schemes = []) ?(scale = 1)
    ?(json = false) ?(check = false) exp =
  Obs.Report.reset_all ();
  Obs.Metrics.set_enabled true;
  Obs.Trace.set_enabled true;
  let run () =
    match exp with
    | "fig12" ->
        ignore (run_fig12 ~threads ~duration ~schemes ());
        true
    | "robustness" ->
        ignore (run_robustness ~duration ~schemes ());
        true
    | "chaos" ->
        (* One mixed campaign with the breaker on; a deliberately tight
           deadline makes sure the retry/shed paths actually fire so the
           requirements below are discriminating. *)
        let cschemes =
          if schemes = [] then Chaos_runner.base_schemes
          else Chaos_runner.find_schemes schemes
        in
        let spec =
          { Chaos_runner.default_spec with Chaos_runner.ch_deadline = 12 }
        in
        ignore (Chaos_runner.run_all ~spec ~schemes:cschemes ());
        true
    | id -> (
        match find_set_exp id with
        | Some e ->
            ignore (run_set_exp ~threads ~duration ~schemes ~scale e);
            true
        | None ->
            Format.eprintf
              "stats: unknown experiment %S (expected fig11, fig13a-f, fig12, \
               robustness or chaos)@."
              id;
            false)
  in
  let known = if json then with_quiet_stdout run else run () in
  Obs.Metrics.set_enabled false;
  Obs.Trace.set_enabled false;
  if not known then 2
  else begin
    ensure_results_dir ();
    let trace_path = Filename.concat "results" ("trace-" ^ exp ^ ".jsonl") in
    let trace_lines = Obs.Trace.export_file trace_path in
    if json then begin
      print_string (Obs.Report.json ());
      print_newline ()
    end
    else begin
      Format.printf "@.== telemetry: %s ==@.@." exp;
      print_string (Obs.Report.tree ());
      print_reclaim_latency ();
      Format.printf "@.trace: %s (%d events)@." trace_path trace_lines
    end;
    if not check then 0
    else begin
      let failures = ref [] in
      (match Obs.Report.validate_jsonl_file trace_path with
      | Ok 0 -> failures := Printf.sprintf "%s: empty trace" trace_path :: !failures
      | Ok _ -> ()
      | Error e -> failures := Printf.sprintf "%s: %s" trace_path e :: !failures);
      let counters, _ = Obs.Metrics.dump () in
      let nonzero_key k = List.exists (fun (n, v) -> n = k && v > 0) counters in
      let nonzero_prefix p =
        List.exists (fun (n, v) -> v > 0 && String.starts_with ~prefix:p n) counters
      in
      List.iter
        (fun r ->
          let ok, what =
            match r with
            | Key k -> (nonzero_key k, "counter " ^ k)
            | Prefix p -> (nonzero_prefix p, "a nonzero counter under " ^ p)
          in
          if not ok then failures := ("missing " ^ what) :: !failures)
        (stats_requirements exp);
      match List.rev !failures with
      | [] ->
          Format.eprintf "stats --check: OK (trace parses; required metrics present)@.";
          0
      | fs ->
          List.iter (fun f -> Format.eprintf "stats --check: FAIL: %s@." f) fs;
          1
    end
  end

(** Overhead of the telemetry layer itself: the [run_ext_stack] Treiber
    push/pop kernel on EBR, telemetry disabled vs enabled, alternating
    repeats with the medians compared. The disabled path's only cost
    over uninstrumented code is one atomic flag load per hook, so "off"
    here stands in for the pre-telemetry baseline. *)
let run_obs_overhead ?(threads = 2) ?(duration = 0.4) ?(repeats = 3) () =
  let module St = Instances.St_ebr in
  let measure () =
    let s = St.create ~max_threads:threads () in
    let stop = Atomic.make false in
    let ops = Array.make threads 0 in
    let worker pid () =
      let c = St.ctx s pid in
      let n = ref 0 in
      while not (Atomic.get stop) do
        for i = 1 to 32 do
          St.push c i;
          ignore (St.pop c)
        done;
        n := !n + 64
      done;
      St.flush c;
      ops.(pid) <- !n
    in
    let t0 = Unix.gettimeofday () in
    let ds = List.init threads (fun pid -> Domain.spawn (worker pid)) in
    Unix.sleepf duration;
    Atomic.set stop true;
    List.iter Domain.join ds;
    let dt = Unix.gettimeofday () -. t0 in
    St.teardown s;
    Repro_util.Stats.throughput_mops ~ops:(Array.fold_left ( + ) 0 ops) ~seconds:dt
  in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  Format.printf "@.== Telemetry overhead: Treiber stack (EBR), P=%d, %d repeats per mode ==@."
    threads repeats;
  let off = ref [] and on = ref [] in
  for _ = 1 to repeats do
    Obs.Metrics.set_enabled false;
    Obs.Trace.set_enabled false;
    off := measure () :: !off;
    Obs.Report.reset_all ();
    Obs.Metrics.set_enabled true;
    Obs.Trace.set_enabled true;
    on := measure () :: !on;
    Obs.Metrics.set_enabled false;
    Obs.Trace.set_enabled false
  done;
  Obs.Report.reset_all ();
  let m_off = median !off and m_on = median !on in
  let delta = 100. *. (m_off -. m_on) /. m_off in
  Format.printf "telemetry off: %8.3f Mops/s@." m_off;
  Format.printf "telemetry on : %8.3f Mops/s  (%+.1f%% vs off)@.@." m_on (-.delta);
  (m_off, m_on)
