(* Per-shard circuit breaker for the KV serving layer.

   Pure deterministic core + thin imperative shell, the same geometry
   as [Adapt.Controller]: [admit]/[report]/[tick] are pure functions of
   (config, state, inputs) returning a new state plus what changed, so
   every transition sequence replays bit-identically from the same
   inputs and the qcheck properties in test_resilience.ml quantify
   over reachable states directly. The shell owns one mutable state
   cell per shard and translates transitions into kv.breaker.* metrics
   and trace events.

   The state machine is the classical closed/open/half-open triangle
   with two CDRC-specific twists:

   - Memory pressure has its own, earlier line of defense: a Closed
     breaker past [shed_writes_at] backlog degrades to read-only
     (writes shed, reads admitted) with hysteresis at
     [shed_writes_clear] — mirroring the SLO-guard regrow geometry in
     lib/adapt — because in this system writes are what retire
     memory into a stalled shard's backlog while reads are harmless.

   - Open is entered for three distinct causes (consecutive request
     failures, backlog past [backlog_trip], p99 past [p99_trip]);
     the cause is carried in the state and surfaced in the trace so a
     campaign log says *why* a shard went dark.

   Liveness by construction: Open always counts down to Half_open;
   Half_open closes after [close_after] probe successes, re-opens on a
   probe failure, and — when no traffic arrives at all — closes after
   [open_ticks] quiet ticks with healthy signals. So the breaker can
   only stay non-Closed while something is actually failing, which is
   the "never wedges open" property the tests assert. *)

type cause = Failures | Backlog | Latency

let cause_name = function
  | Failures -> "failures"
  | Backlog -> "backlog"
  | Latency -> "latency"

type state =
  | Closed of { fails : int; shed_writes : bool }
  | Open of { left : int; cause : cause }
  | Half_open of { probes_left : int; ok : int; idle : int }

type kind = Read | Write

type decision = Admit | Admit_probe | Shed | Shed_write

type transition = To_open of cause | To_half_open | To_closed

type config = {
  trip_failures : int;  (** consecutive request failures that trip Closed -> Open *)
  backlog_trip : int;  (** shard backlog at/above this trips Open (memory pressure) *)
  shed_writes_at : int;  (** Closed degrades to read-only at/above this backlog *)
  shed_writes_clear : int;  (** ...and re-admits writes at/below this (hysteresis) *)
  p99_trip : int;  (** request p99 (ticks) at/above this trips Open *)
  open_ticks : int;  (** ticks spent Open before probing (and quiet-close budget) *)
  probe_quota : int;  (** requests admitted while Half_open *)
  close_after : int;  (** probe successes needed to close; <= probe_quota *)
}

let default_config =
  {
    trip_failures = 8;
    backlog_trip = 2048;
    shed_writes_at = 512;
    shed_writes_clear = 128;
    p99_trip = 256;
    open_ticks = 4;
    probe_quota = 4;
    close_after = 2;
  }

let validate_config c =
  let req b msg = if not b then invalid_arg ("Breaker: " ^ msg) in
  req (c.trip_failures >= 1) "trip_failures must be >= 1";
  req (c.backlog_trip >= 1) "backlog_trip must be >= 1";
  req
    (c.shed_writes_clear <= c.shed_writes_at)
    "shed_writes_clear must be <= shed_writes_at (hysteresis)";
  req (c.shed_writes_at <= c.backlog_trip) "shed_writes_at must be <= backlog_trip";
  req (c.p99_trip >= 1) "p99_trip must be >= 1";
  req (c.open_ticks >= 1) "open_ticks must be >= 1";
  req (c.probe_quota >= 1) "probe_quota must be >= 1";
  req
    (c.close_after >= 1 && c.close_after <= c.probe_quota)
    "close_after must be in [1, probe_quota]"

let init = Closed { fails = 0; shed_writes = false }

let state_name = function
  | Closed { shed_writes = false; _ } -> "closed"
  | Closed { shed_writes = true; _ } -> "closed-readonly"
  | Open _ -> "open"
  | Half_open _ -> "half-open"

(* ------------------------------ pure core ------------------------- *)

let admit _cfg st kind =
  match st with
  | Closed { shed_writes = true; _ } when kind = Write -> (st, Shed_write)
  | Closed _ -> (st, Admit)
  | Open _ -> (st, Shed)
  | Half_open { probes_left = 0; _ } -> (st, Shed)
  | Half_open h ->
      (Half_open { h with probes_left = h.probes_left - 1; idle = 0 }, Admit_probe)

let report cfg st ~ok =
  match st with
  | Closed c when ok -> (Closed { c with fails = 0 }, None)
  | Closed c ->
      let fails = c.fails + 1 in
      if fails >= cfg.trip_failures then
        (Open { left = cfg.open_ticks; cause = Failures }, Some (To_open Failures))
      else (Closed { c with fails }, None)
  | Half_open h when ok ->
      let okn = h.ok + 1 in
      if okn >= cfg.close_after then (init, Some To_closed)
      else (Half_open { h with ok = okn; idle = 0 }, None)
  | Half_open _ ->
      (* A failed probe re-opens immediately: the shard is still sick. *)
      (Open { left = cfg.open_ticks; cause = Failures }, Some (To_open Failures))
  | Open _ -> (st, None)
  (* reports from requests admitted before the trip land here; ignore *)

let healthy cfg ~backlog ~p99 =
  backlog < cfg.backlog_trip
  && match p99 with None -> true | Some p -> p < cfg.p99_trip

let tick cfg st ~backlog ~p99 =
  match st with
  | Closed c ->
      if backlog >= cfg.backlog_trip then
        (Open { left = cfg.open_ticks; cause = Backlog }, Some (To_open Backlog))
      else if (match p99 with Some p -> p >= cfg.p99_trip | None -> false) then
        (Open { left = cfg.open_ticks; cause = Latency }, Some (To_open Latency))
      else
        let shed_writes =
          if backlog >= cfg.shed_writes_at then true
          else if backlog <= cfg.shed_writes_clear then false
          else c.shed_writes
        in
        (Closed { c with shed_writes }, None)
  | Open o ->
      if o.left <= 1 then
        ( Half_open { probes_left = cfg.probe_quota; ok = 0; idle = 0 },
          Some To_half_open )
      else (Open { o with left = o.left - 1 }, None)
  | Half_open h ->
      (* No-traffic liveness: with healthy signals and no probes in
         flight for a full open_ticks window, close rather than wedge. *)
      if healthy cfg ~backlog ~p99 then
        let idle = h.idle + 1 in
        if idle >= cfg.open_ticks then (init, Some To_closed)
        else (Half_open { h with idle }, None)
      else (Open { left = cfg.open_ticks; cause = Backlog }, Some (To_open Backlog))

(* --------------------------- imperative shell --------------------- *)

let trip_c = Obs.Metrics.counter "kv.breaker.trip"
let close_c = Obs.Metrics.counter "kv.breaker.close"
let probe_c = Obs.Metrics.counter "kv.breaker.probe"
let shed_c = Obs.Metrics.counter "kv.breaker.shed"

type t = { cfg : config; shard : int; mutable st : state }

let create ?(config = default_config) ~shard () =
  validate_config config;
  { cfg = config; shard; st = init }

let state t = t.st
let config t = t.cfg

let note t ~pid tr =
  (match tr with
  | To_open _ -> Obs.Metrics.incr trip_c ~pid
  | To_closed -> Obs.Metrics.incr close_c ~pid
  | To_half_open -> ());
  let cause = match tr with To_open c -> cause_name c | _ -> "recovered" in
  Obs.Trace.emit ~pid
    (Obs.Trace.Breaker { shard = t.shard; state = state_name t.st; cause })

let admit_req t ~pid kind =
  let st, d = admit t.cfg t.st kind in
  t.st <- st;
  (match d with
  | Admit_probe -> Obs.Metrics.incr probe_c ~pid
  | Shed | Shed_write -> Obs.Metrics.incr shed_c ~pid
  | Admit -> ());
  d

let report_req t ~pid ~ok =
  let st, tr = report t.cfg t.st ~ok in
  t.st <- st;
  Option.iter (note t ~pid) tr;
  tr

let on_tick t ~pid ~backlog ~p99 =
  let st, tr = tick t.cfg t.st ~backlog ~p99 in
  t.st <- st;
  Option.iter (note t ~pid) tr;
  tr
