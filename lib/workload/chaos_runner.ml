(** Deterministic chaos-campaign driver for the sharded KV service
    (DESIGN.md §13): executes a {!Fault.Chaos} schedule against a live
    {!Kv_service} through the full resilience stack — per-request
    deadlines, bounded {!Repro_util.Backoff} retries, per-shard
    {!Breaker}s — and checks the invariant oracles.

    Everything is logical and single-threaded: requests are steps,
    latency is accumulated cost units (1 per healthy call, inflated by
    the victim's [Slow] factor, a full per-try budget for a stalled
    member), the clock ticks every few steps, and every random draw
    comes from seeded streams. The same [spec] therefore produces a
    bit-identical run — outcome for outcome, transition for transition
    — which the [c_digest] fingerprint asserts cheaply.

    Shard [s] is served by a pool of {!Fault.Chaos.members} pids
    (member 0 the campaign victim); requests round-robin the pool and
    fail over on retry. Pid 0 is the unfaulted client: prefill, TTL
    sweeps, breaker ticks and recovery drains run there. When a shard's
    breaker trips, the driver runs the recovery drill: abandon the
    shard's crashed/stalled members ({!Kv_intf.S.abandon_shard}),
    replace them with fresh-generation pids, heal gray ones, then
    drain asynchronously — one {!Kv_intf.S.drain_shard} pass per tick —
    until the backlog re-enters the bound; the elapsed steps are the
    recovery latency recorded in the [kv.recovery.steps] histogram and
    gated by the recovery SLO oracle. *)

type spec = {
  ch_seed : int;
  ch_kind : Fault.Chaos.kind;
  ch_shards : int;
  ch_victims : int;
  ch_steps : int;
  ch_keys : int;
  ch_write_pct : int;  (** % of requests that are writes (puts + removes) *)
  ch_breaker : bool;
  ch_deadline : int;  (** per-request latency budget, in cost units *)
  ch_retries : int;  (** extra attempts after the first *)
  ch_backlog_bound : int;  (** breaker trip point and end-of-run bound *)
  ch_recovery_slo : int;  (** max steps from trip to bounded backlog *)
  ch_validate : bool;  (** check accounting identities (with crash slack) *)
}

let default_spec =
  {
    ch_seed = 42;
    ch_kind = Fault.Chaos.Mixed;
    ch_shards = 4;
    ch_victims = 4;
    ch_steps = 4000;
    ch_keys = 1024;
    ch_write_pct = 40;
    ch_breaker = true;
    ch_deadline = 24;
    ch_retries = 2;
    ch_backlog_bound = 256;
    ch_recovery_slo = 200;
    ch_validate = true;
  }

(* Base manual schemes the campaign wraps in Faulty_smr; the KV service
   is instantiated per run so the fault plan is fresh. *)
let base_schemes : (string * (module Smr.Smr_intf.S)) list =
  [
    ("EBR", (module Smr.Ebr : Smr.Smr_intf.S));
    ("IBR", (module Smr.Ibr));
    ("HP", (module Smr.Hp));
    ("HE", (module Smr.Hazard_eras));
    ("Hyaline", (module Smr.Hyaline));
    ("PTB", (module Smr.Ptb));
    ("None", (module Smr.Leaky));
  ]

let find_schemes names =
  let wanted = List.map Instances.normalize_name names in
  List.filter
    (fun (n, _) -> List.mem (Instances.normalize_name n) wanted)
    base_schemes

(* Schemes whose garbage stays bounded under a stalled thread (the
   paper's robustness column); EBR/Hyaline pin everything behind a
   frozen frontier and None defers forever by construction. *)
let scheme_is_robust name = List.mem name [ "IBR"; "HP"; "HE"; "PTB" ]

type run = {
  c_scheme : string;
  c_kind : Fault.Chaos.kind;
  c_seed : int;
  c_breaker : bool;
  c_steps : int;
  c_ok_first : int;
  c_retried_ok : int;
  c_retries : int;
  c_timed_out : int;
  c_shed : int;
  c_failed : int;
  c_aborted : int;  (** requests killed mid-flight by a Crash *)
  c_trips : int;
  c_drills : int;
  c_recoveries : int list;  (** steps-to-bounded-backlog, one per drill *)
  c_peak_backlog : int;  (** worst single-shard backlog seen *)
  c_end_backlog : int;  (** worst single-shard backlog at campaign end *)
  c_leaked : int;
  c_digest : int;
  c_oracles : Fault.Chaos.oracle list;
  c_ok : bool;
}

let pp_run ppf r =
  Format.fprintf ppf
    "%-8s %-13s seed=%-6d breaker=%-5b ok=%d+%dr shed=%d timeout=%d failed=%d \
     aborted=%d trips=%d drills=%d peak=%d end=%d leaked=%d digest=%x %s"
    r.c_scheme
    (Fault.Chaos.kind_name r.c_kind)
    r.c_seed r.c_breaker r.c_ok_first r.c_retried_ok r.c_shed r.c_timed_out r.c_failed
    r.c_aborted r.c_trips r.c_drills r.c_peak_backlog r.c_end_backlog r.c_leaked
    r.c_digest
    (if r.c_ok then "PASS" else "FAIL")

(* Request-layer counters (shared names with Kv_runner's wall-clock
   path; the registry is idempotent by name). *)
let retry_c = Obs.Metrics.counter "kv.retry"
let shed_c = Obs.Metrics.counter "kv.shed"
let timeout_c = Obs.Metrics.counter "kv.timeout"
let retried_ok_c = Obs.Metrics.counter "kv.retried_ok"
let recovery_h = Obs.Histo.histo "kv.recovery.steps"

let breaker_config spec =
  {
    Breaker.trip_failures = 6;
    backlog_trip = spec.ch_backlog_bound;
    shed_writes_at = max 2 (spec.ch_backlog_bound / 2);
    shed_writes_clear = max 1 (spec.ch_backlog_bound / 8);
    p99_trip = max 2 (spec.ch_deadline / 6);
    open_ticks = 4;
    probe_quota = 4;
    close_after = 2;
  }

let run_campaign ?(spec = default_spec)
    ((sname, (module S : Smr.Smr_intf.S)) : string * (module Smr.Smr_intf.S)) : run =
  let cspec =
    {
      Fault.Chaos.seed = spec.ch_seed;
      kind = spec.ch_kind;
      shards = spec.ch_shards;
      victims = spec.ch_victims;
    }
  in
  let plan = Fault.Fault_plan.create (Fault.Chaos.rules cspec) in
  let module FS =
    Fault.Faulty_smr.Make
      (S)
      (struct
        let plan = plan
      end)
  in
  let module R = Cdrc.Make (FS) in
  let module K = Kv_service.Make (R) in
  let members = Fault.Chaos.members in
  let max_restarts = 2 in
  let first_spare = Fault.Chaos.first_spare_pid ~shards:spec.ch_shards in
  let max_threads = first_spare + (spec.ch_shards * members * max_restarts) in
  let t = K.create ~shards:spec.ch_shards ~buckets:64 ~epoch_freq:1 ~max_threads () in
  if K.shard_count t <> spec.ch_shards then
    invalid_arg "Chaos_runner: shards must be a power of two";
  let nshards = spec.ch_shards in
  let metrics_were = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  (* Lazy per-pid contexts: restarts mint fresh generations. *)
  let ctxs = Array.make max_threads None in
  let ctx_of pid =
    match ctxs.(pid) with
    | Some c -> c
    | None ->
        let c = K.ctx t pid in
        ctxs.(pid) <- Some c;
        c
  in
  let c0 = ctx_of 0 in
  (* Prefill so reads hit and puts overwrite (overwrites are what
     retire boxes into a pinned shard). *)
  for k = 0 to (spec.ch_keys / 2) - 1 do
    ignore (K.put c0 ~now:0 k k)
  done;
  K.flush c0;
  let serving =
    Array.init nshards (fun s ->
        Array.init members (fun m -> Fault.Chaos.pid_of ~shard:s ~member:m))
  in
  let rr = Array.make nshards 0 in
  let next_spare = ref first_spare in
  let bcfg = breaker_config spec in
  let breakers = Array.init nshards (fun s -> Breaker.create ~config:bcfg ~shard:s ()) in
  (* Per-shard recovery state: Some (trip_step) while draining. *)
  let recovering = Array.make nshards None in
  let recoveries = ref [] in
  let slo_misses = ref 0 in
  (* Per-shard sliding window of request latencies for the p99 signal. *)
  let win_len = 32 in
  let lat_win = Array.init nshards (fun _ -> Array.make win_len 1) in
  let lat_n = Array.make nshards 0 in
  let observe_lat shard cost =
    lat_win.(shard).(lat_n.(shard) mod win_len) <- cost;
    lat_n.(shard) <- lat_n.(shard) + 1
  in
  let window_p99 shard =
    if lat_n.(shard) = 0 then None
    else begin
      let n = min lat_n.(shard) win_len in
      let a = Array.sub lat_win.(shard) 0 n in
      Array.sort compare a;
      Some a.(max 0 (n - 1 - (n / 100)))
    end
  in
  let kg =
    Keygen.create ~seed:(spec.ch_seed lxor 0xbeef) ~range:spec.ch_keys Keygen.Uniform
  in
  let rng = Repro_util.Rng.create ~seed:(spec.ch_seed lxor 0x51ab) in
  let bo_rng = Repro_util.Rng.create ~seed:(spec.ch_seed lxor 0x0b0f) in
  let digest = ref 17 in
  let mix_digest v = digest := ((!digest * 1000003) + v) land max_int in
  let ok_first = ref 0
  and retried_ok = ref 0
  and nretries = ref 0
  and timed_out = ref 0
  and shed = ref 0
  and failed = ref 0
  and aborted = ref 0
  and trips = ref 0
  and drills = ref 0 in
  let peak_backlog = ref 0 in
  let uaf = ref None in
  let per_try = max 1 (spec.ch_deadline / (spec.ch_retries + 1)) in
  (* One attempt against [pid]. Returns the try's cost and verdict. *)
  let attempt_op ~pid ~key ~opc ~step =
    if Fault.Fault_plan.crashed plan ~pid then (1, false)
    else if Fault.Fault_plan.stalled plan ~pid then (per_try, false)
    else
      let c = ctx_of pid in
      let now = K.now t in
      let cost = 1 + Fault.Fault_plan.slow_factor plan ~pid in
      try
        (match opc with
        | 0 -> ignore (K.get c ~now key)
        | 1 ->
            let ttl = if Repro_util.Rng.int rng 100 < 20 then Some 32 else None in
            ignore (K.put c ~now ?ttl key step)
        | _ -> ignore (K.remove c ~now key));
        if cost > per_try then (per_try, false) (* executed, but the try timed out *)
        else (cost, true)
      with Fault.Fault_plan.Crashed _ ->
        incr aborted;
        (1, false)
  in
  (* The recovery drill: reap/replace/heal the shard's faulted members.
     Draining then proceeds one pass per tick until the backlog is back
     under the bound (the measured recovery latency). *)
  let drill shard ~step =
    incr drills;
    Array.iteri
      (fun m pid ->
        if Fault.Fault_plan.crashed plan ~pid || Fault.Fault_plan.stalled plan ~pid
        then begin
          K.abandon_shard t ~shard ~pid;
          if !next_spare < max_threads then begin
            serving.(shard).(m) <- !next_spare;
            incr next_spare
          end
        end
        else if Fault.Fault_plan.slow_factor plan ~pid > 0 then
          Fault.Fault_plan.heal plan ~pid)
      serving.(shard);
    (* The repaired shard gets a fresh latency signal: stale pre-drill
       samples in the window would re-trip the breaker on a healthy
       pool. *)
    lat_n.(shard) <- 0;
    if recovering.(shard) = None then recovering.(shard) <- Some step
  in
  let finish_recovery shard ~step =
    match recovering.(shard) with
    | None -> ()
    | Some t0 ->
        K.drain_shard c0 ~shard;
        if K.shard_backlog t ~shard <= spec.ch_backlog_bound then begin
          let took = step - t0 in
          recovering.(shard) <- None;
          recoveries := took :: !recoveries;
          Obs.Histo.observe recovery_h ~pid:0 took;
          if took > spec.ch_recovery_slo then incr slo_misses
        end
        else if step - t0 > spec.ch_recovery_slo then begin
          (* Give up the SLO but keep draining; record the miss once. *)
          recovering.(shard) <- None;
          recoveries := (step - t0) :: !recoveries;
          Obs.Histo.observe recovery_h ~pid:0 (step - t0);
          incr slo_misses
        end
  in
  (try
     for step = 1 to spec.ch_steps do
       let key = Keygen.next kg in
       let r = Repro_util.Rng.int rng 100 in
       let opc =
         if r >= spec.ch_write_pct then 0
         else if r < spec.ch_write_pct * 3 / 4 then 1
         else 2
       in
       let kind = if opc = 0 then Breaker.Read else Breaker.Write in
       let shard = K.shard_of_key t key in
       let decision =
         if spec.ch_breaker then Breaker.admit_req breakers.(shard) ~pid:0 kind
         else Breaker.Admit
       in
       (match decision with
       | Breaker.Shed | Breaker.Shed_write ->
           incr shed;
           Obs.Metrics.incr shed_c ~pid:0;
           mix_digest 3
       | Breaker.Admit | Breaker.Admit_probe ->
           let b = Repro_util.Backoff.create ~min:1 ~max:8 ~rng:bo_rng () in
           let total = ref 0 in
           let saw_timeout = ref false in
           let rec go n =
             if n > spec.ch_retries || !total >= spec.ch_deadline then `Exhausted
             else begin
               if n > 0 then begin
                 incr nretries;
                 Obs.Metrics.incr retry_c ~pid:0;
                 total := !total + Repro_util.Backoff.current b;
                 Repro_util.Backoff.once b
               end;
               let m = rr.(shard) in
               rr.(shard) <- (m + 1) mod members;
               let pid = serving.(shard).(m) in
               let cost, ok = attempt_op ~pid ~key ~opc ~step in
               total := !total + cost;
               if cost >= per_try && not ok then saw_timeout := true;
               if spec.ch_breaker then
                 ignore (Breaker.report_req breakers.(shard) ~pid:0 ~ok);
               if ok && !total <= spec.ch_deadline then `Ok n
               else if ok then begin
                 saw_timeout := true;
                 `Exhausted (* late success: deadline already blown *)
               end
               else go (n + 1)
             end
           in
           let code =
             match go 0 with
             | `Ok 0 ->
                 incr ok_first;
                 0
             | `Ok _ ->
                 incr retried_ok;
                 Obs.Metrics.incr retried_ok_c ~pid:0;
                 1
             | `Exhausted ->
                 if !saw_timeout then begin
                   incr timed_out;
                   Obs.Metrics.incr timeout_c ~pid:0;
                   2
                 end
                 else begin
                   incr failed;
                   4
                 end
           in
           observe_lat shard (min !total spec.ch_deadline);
           mix_digest ((!total * 8) + code));
       mix_digest ((shard * 4) + opc);
       (* Clock, sweeps, breaker ticks and recovery drains. *)
       if step mod 8 = 0 then begin
         let now = K.tick t in
         if now mod 4 = 0 then ignore (K.expire_sweep c0 ~now);
         for s = 0 to nshards - 1 do
           let backlog = K.shard_backlog t ~shard:s in
           peak_backlog := max !peak_backlog backlog;
           if spec.ch_breaker then begin
             (match
                Breaker.on_tick breakers.(s) ~pid:0 ~backlog ~p99:(window_p99 s)
              with
             | Some (Breaker.To_open cause) ->
                 incr trips;
                 mix_digest (100 + s);
                 ignore cause;
                 drill s ~step
             | Some Breaker.To_half_open -> mix_digest (200 + s)
             | Some Breaker.To_closed -> mix_digest (300 + s)
             | None -> ());
             finish_recovery s ~step
           end
         done
       end
     done
   with (Simheap.Use_after_free _ | Simheap.Double_free _) as e ->
     uaf := Some (Printexc.to_string e));
  (* Campaign over: measure the end state before reaping anyone — the
     recovery oracle judges what the resilience layer achieved, not
     what teardown can mop up. *)
  let end_backlog = ref 0 in
  for s = 0 to nshards - 1 do
    end_backlog := max !end_backlog (K.shard_backlog t ~shard:s)
  done;
  (* Finalize: reap every faulted serving pid so leak accounting tests
     the scheme, then validate and tear down. *)
  for s = 0 to nshards - 1 do
    Array.iter
      (fun pid ->
        if Fault.Fault_plan.crashed plan ~pid || Fault.Fault_plan.stalled plan ~pid
        then K.abandon_shard t ~shard:s ~pid)
      serving.(s);
    K.drain_shard c0 ~shard:s
  done;
  let now = K.now t in
  let accounting_ok, accounting_detail =
    if not spec.ch_validate then (true, "skipped")
    else begin
      ignore (K.expire_sweep c0 ~now);
      let c = K.counters t in
      let size = K.size t ~now in
      let node_delta =
        abs (c.Kv_intf.puts_new - (size + c.Kv_intf.removes + c.Kv_intf.expiries))
      in
      let installed =
        c.Kv_intf.puts_new + c.Kv_intf.overwrites + c.Kv_intf.expired_overwrites
      in
      let box_delta =
        abs
          (installed - size
          - (c.Kv_intf.overwrites + c.Kv_intf.expired_overwrites + c.Kv_intf.removes
           + c.Kv_intf.expiries))
      in
      ( node_delta <= !aborted && box_delta <= !aborted,
        Printf.sprintf "node_delta=%d box_delta=%d <= aborted=%d" node_delta box_delta
          !aborted )
    end
  in
  K.teardown t;
  let leaked = K.live_objects t in
  Obs.Metrics.set_enabled metrics_were;
  let garbage_bound = 8 * spec.ch_backlog_bound in
  let oracles =
    [
      Fault.Chaos.oracle ~name:"uaf-free"
        ~ok:(!uaf = None)
        (match !uaf with None -> "no UAF / double-free" | Some e -> e);
      (* Each crash (= one caught abort) strands a bounded handful of
         blocks, like a dying thread in any RC system: its in-flight
         allocation (a value box made but never published), plus — when
         the crash lands inside a deferred destructor cascade — the
         unfinished suffix of that destructor. A node destructor that
         cleared [slot] but died before clearing [next] pins the next
         chain node, transitively pinning that chain's remaining suffix,
         so the per-crash allowance is a chain length, not 1. A genuine
         reclamation leak scales with retire traffic (hundreds+) and a
         crash-free campaign must leak nothing, so the slack stays
         discriminating. *)
      (let allowance = 16 * !aborted in
       Fault.Chaos.oracle ~name:"leak-free"
         ~ok:(leaked <= allowance)
         (Printf.sprintf "%d blocks leaked after teardown <= %d (16 per crash)" leaked
            allowance));
      Fault.Chaos.oracle ~name:"accounting" ~ok:accounting_ok accounting_detail;
    ]
    @ (if scheme_is_robust sname then
         [
           Fault.Chaos.oracle ~name:"bounded-garbage"
             ~ok:(!peak_backlog <= garbage_bound)
             (Printf.sprintf "peak shard backlog %d <= %d" !peak_backlog garbage_bound);
         ]
       else [])
    @
    if sname = "None" then []
    else
      [
        Fault.Chaos.oracle ~name:"recovery-slo"
          ~ok:(!slo_misses = 0 && !end_backlog <= spec.ch_backlog_bound)
          (Printf.sprintf "slo_misses=%d end backlog %d <= %d (%d drills)" !slo_misses
             !end_backlog spec.ch_backlog_bound !drills);
      ]
  in
  {
    c_scheme = sname;
    c_kind = spec.ch_kind;
    c_seed = spec.ch_seed;
    c_breaker = spec.ch_breaker;
    c_steps = spec.ch_steps;
    c_ok_first = !ok_first;
    c_retried_ok = !retried_ok;
    c_retries = !nretries;
    c_timed_out = !timed_out;
    c_shed = !shed;
    c_failed = !failed;
    c_aborted = !aborted;
    c_trips = !trips;
    c_drills = !drills;
    c_recoveries = List.rev !recoveries;
    c_peak_backlog = !peak_backlog;
    c_end_backlog = !end_backlog;
    c_leaked = leaked;
    c_digest = !digest;
    c_oracles = oracles;
    c_ok = List.for_all (fun o -> o.Fault.Chaos.o_ok) oracles;
  }

(* Run a campaign over each scheme; [ok] iff every oracle on every
   scheme holds. Prints the replayable schedule first so any failure
   names its exact reproduction. *)
let run_all ?(spec = default_spec) ?(schemes = base_schemes) () =
  let cspec =
    {
      Fault.Chaos.seed = spec.ch_seed;
      kind = spec.ch_kind;
      shards = spec.ch_shards;
      victims = spec.ch_victims;
    }
  in
  List.iter (fun l -> Format.printf "%s@." l) (Fault.Chaos.describe cspec);
  Format.printf "steps=%d keys=%d writes=%d%% breaker=%b deadline=%d retries=%d \
                 bound=%d slo=%d@.@."
    spec.ch_steps spec.ch_keys spec.ch_write_pct spec.ch_breaker spec.ch_deadline
    spec.ch_retries spec.ch_backlog_bound spec.ch_recovery_slo;
  let runs = List.map (fun inst -> run_campaign ~spec inst) schemes in
  List.iter
    (fun r ->
      Format.printf "%a@." pp_run r;
      List.iter
        (fun o ->
          if not o.Fault.Chaos.o_ok then
            Format.printf "    %a@." Fault.Chaos.pp_oracle o)
        r.c_oracles)
    runs;
  let ok = List.for_all (fun r -> r.c_ok) runs in
  if not ok then
    Format.printf
      "@.FAIL — replay with: cdrc-bench chaos --campaign %s --seed %d --shards %d \
       --victims %d%s@."
      (Fault.Chaos.kind_name spec.ch_kind)
      spec.ch_seed spec.ch_shards spec.ch_victims
      (if spec.ch_breaker then "" else " --breaker off");
  (ok, runs)
