(** Per-shard circuit breaker for the KV serving layer (DESIGN.md §13).

    Classical closed / open / half-open machine, structured like
    [Adapt.Controller]: a pure deterministic core ({!admit}, {!report},
    {!tick}) over explicit state, plus a thin shell ({!t}) that owns
    one mutable state cell per shard and turns transitions into
    [kv.breaker.*] metrics and [Breaker] trace events.

    Inputs come from the same lib/obs signals the adaptive controller
    reads — per-shard retired backlog and the request p99 — plus
    per-request success/failure reports. Memory pressure degrades a
    Closed breaker to read-only (writes shed, reads admitted) with
    hysteresis before it trips fully open; the trip cause
    (failures/backlog/latency) is carried in the state and surfaced in
    the trace.

    Liveness: Open always counts down to Half_open; Half_open admits
    exactly [probe_quota] probes, closes after [close_after] successes,
    re-opens on a probe failure, and closes after a quiet healthy
    window when no traffic arrives — so the breaker can only stay
    non-Closed while something is actually failing ("never wedges
    open", property-tested in test_resilience.ml). *)

type cause = Failures | Backlog | Latency

val cause_name : cause -> string

type state =
  | Closed of { fails : int; shed_writes : bool }
  | Open of { left : int; cause : cause }
  | Half_open of { probes_left : int; ok : int; idle : int }

type kind = Read | Write

type decision =
  | Admit  (** serve normally *)
  | Admit_probe  (** serve; one of the half-open probe quota *)
  | Shed  (** reject: breaker open (or probe quota exhausted) *)
  | Shed_write  (** reject: read-only degradation under memory pressure *)

type transition = To_open of cause | To_half_open | To_closed

type config = {
  trip_failures : int;
  backlog_trip : int;
  shed_writes_at : int;
  shed_writes_clear : int;
  p99_trip : int;
  open_ticks : int;
  probe_quota : int;
  close_after : int;
}

val default_config : config

val validate_config : config -> unit
(** Raises [Invalid_argument] on non-positive thresholds, inverted
    hysteresis, or [close_after] outside [1, probe_quota]. *)

val init : state
val state_name : state -> string

(** {2 Pure core — deterministic, replayable} *)

val admit : config -> state -> kind -> state * decision
val report : config -> state -> ok:bool -> state * transition option
val tick : config -> state -> backlog:int -> p99:int option -> state * transition option

(** {2 Shell — one per shard, metrics + trace on transitions} *)

type t

val create : ?config:config -> shard:int -> unit -> t
val state : t -> state
val config : t -> config

val admit_req : t -> pid:int -> kind -> decision
val report_req : t -> pid:int -> ok:bool -> transition option
val on_tick : t -> pid:int -> backlog:int -> p99:int option -> transition option
