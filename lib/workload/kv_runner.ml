(** Serving-workload harness for the sharded KV service (DESIGN.md
    §12): the "heavy traffic" scenario of the ROADMAP, driven by
    {!Keygen} key distributions and operation mixes instead of the
    uniform set churn of {!Driver}.

    Two entry points:

    + {!run_one} / {!sweep}: wall-clock multi-domain serving runs —
      per-op p50/p99/p999 latency via {!Obs.Histo}, background TTL
      sweeps from the sampler (retirement storms), per-shard backlog
      sampling, optional per-shard {!Adapt.Controller}s, and
      post-run internal-consistency validation (the {!Kv_intf}
      accounting identities + leak-freedom).
    + {!run_stalled_shard}: the deterministic shard-stall +
      abandon-recovery scenario — a {!Fault.Fault_plan} stalls the
      victim inside a shard-0 critical section via {!Fault.Faulty_smr}
      and the per-shard controller escalates to {!Kv_intf.S.abandon_shard};
      controller-on must stay bounded where fixed knobs grow without
      bound (the CI exit-code check). *)

type mix = Read95 | Write50 | Scan_churn

let mix_to_string = function
  | Read95 -> "read95"
  | Write50 -> "write50"
  | Scan_churn -> "scan"

let mix_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "read95" | "read" -> Ok Read95
  | "write50" | "write" -> Ok Write50
  | "scan" | "scan-churn" -> Ok Scan_churn
  | s -> Error (Printf.sprintf "unknown mix %S (read95 | write50 | scan)" s)

(* Perf-cell structure label: the mix is part of the key so the BENCH
   trajectory tracks each serving regime separately. *)
let mix_structure m = "kv-" ^ mix_to_string m

type spec = {
  threads : int;
  duration : float;
  shards : int;
  buckets : int; (* per shard *)
  keys : int; (* key range *)
  keygen : Keygen.spec;
  mix : mix;
  ttl_pct : int; (* % of puts that carry a TTL *)
  ttl_ticks : int; (* TTL length, in logical clock ticks *)
  sweep_every : int; (* background expiry sweep period, in ticks *)
  adapt : bool; (* per-shard adaptive controllers *)
  deadline_ms : float; (* per-request deadline; 0 = no deadline accounting *)
  retries : int; (* bounded retries after a deadline miss *)
  breaker : bool; (* per-shard circuit breakers (sampler-driven) *)
  seed : int;
}

let default_spec =
  {
    threads = 4;
    duration = 1.0;
    shards = 4;
    buckets = 256;
    keys = 16_384;
    keygen = Keygen.Zipfian { theta = 0.99 };
    mix = Read95;
    ttl_pct = 25;
    ttl_ticks = 64;
    sweep_every = 32;
    adapt = false;
    deadline_ms = 0.;
    retries = 0;
    breaker = false;
    seed = 42;
  }

type result = {
  r_scheme : string;
  r_spec : spec;
  r_ops : int;
  r_elapsed : float;
  r_mops : float;
  r_hit_rate : float; (* gets_hit / (gets_hit + gets_miss) *)
  r_get_lat : (int * int * int) option; (* p50/p99/p999, nanoseconds *)
  r_put_lat : (int * int * int) option;
  r_scan_lat : (int * int * int) option;
  r_counters : Kv_intf.counters;
  r_swept : int; (* entries claimed by background sweeps *)
  r_peak_live : int;
  r_peak_backlog : int; (* service-wide *)
  r_shard_peak_backlog : int array;
  r_leaked : int;
  r_failures : int; (* worker deaths only — never request outcomes *)
  r_timed_out : int; (* requests past the deadline after all retries *)
  r_retried_ok : int; (* requests rescued by a retry *)
  r_retries : int; (* retry attempts issued *)
  r_shed : int; (* requests rejected by a breaker *)
  r_trips : int; (* breaker open transitions *)
  r_adapt_decisions : string list;
  r_violations : string list; (* internal-consistency failures; [] = valid *)
}

let pp_result ppf r =
  let pp_lat name = function
    | None -> ""
    | Some (p50, p99, _) -> Printf.sprintf "  %s=%d/%dns" name p50 p99
  in
  Format.fprintf ppf
    "%-8s %-10s P=%-2d S=%-2d %8.3f Mops/s  ops=%-9d hit=%4.1f%%%s%s%s  peak_backlog=%-6d%s%s%s%s"
    r.r_scheme (mix_to_string r.r_spec.mix) r.r_spec.threads r.r_spec.shards r.r_mops
    r.r_ops
    (100. *. r.r_hit_rate)
    (pp_lat "get" r.r_get_lat) (pp_lat "put" r.r_put_lat) (pp_lat "scan" r.r_scan_lat)
    r.r_peak_backlog
    (if r.r_timed_out + r.r_retried_ok + r.r_shed + r.r_trips > 0 then
       Printf.sprintf "  timeout=%d retried_ok=%d shed=%d trips=%d" r.r_timed_out
         r.r_retried_ok r.r_shed r.r_trips
     else "")
    (if r.r_leaked > 0 then Printf.sprintf "  LEAK=%d" r.r_leaked else "")
    (if r.r_failures > 0 then Printf.sprintf "  FAILED-WORKERS=%d" r.r_failures else "")
    (match r.r_violations with
    | [] -> ""
    | vs -> Printf.sprintf "  INVALID=%d" (List.length vs))

(* Latency rings, nanosecond-valued; 1-in-8 operations are timed. *)
let get_histo = Obs.Histo.histo "kv.get.latency_ns"
let put_histo = Obs.Histo.histo "kv.put.latency_ns"
let scan_histo = Obs.Histo.histo "kv.scan.latency_ns"
let lat_sample_mask = 7

(* Request-outcome counters, shared by name with Chaos_runner (the
   metrics registry is idempotent per name). *)
let retry_c = Obs.Metrics.counter "kv.retry"
let shed_c = Obs.Metrics.counter "kv.shed"
let timeout_c = Obs.Metrics.counter "kv.timeout"
let retried_ok_c = Obs.Metrics.counter "kv.retried_ok"

(* The internal-consistency check of the [test] archetype, shared by
   [--validate] runs and test_kv.ml: at quiescence after a final
   sweep, the node and box retirement identities must hold exactly,
   and teardown must free every block. *)
let validate_identities (c : Kv_intf.counters) ~size =
  let errs = ref [] in
  let check name got want =
    if got <> want then
      errs := Printf.sprintf "%s: got %d, want %d" name got want :: !errs
  in
  check "node identity: puts_new = size + removes + expiries" c.Kv_intf.puts_new
    (size + c.Kv_intf.removes + c.Kv_intf.expiries);
  let installed =
    c.Kv_intf.puts_new + c.Kv_intf.overwrites + c.Kv_intf.expired_overwrites
  in
  check "box identity: installed - size = retire events" (installed - size)
    (c.Kv_intf.overwrites + c.Kv_intf.expired_overwrites + c.Kv_intf.removes
   + c.Kv_intf.expiries);
  List.rev !errs

let run_one ?(spec = default_spec) ?(validate = false)
    ((scheme_name, (module K : Kv_intf.S)) : string * (module Kv_intf.S)) =
  let t =
    K.create ~shards:spec.shards ~buckets:spec.buckets
      ~max_threads:(spec.threads + 1) ()
  in
  let c0 = K.ctx t 0 in
  (* Prefill to half the key range so read-heavy mixes hit. *)
  let rng0 = Repro_util.Rng.create ~seed:spec.seed in
  let filled = ref 0 in
  while !filled < spec.keys / 2 do
    if not (K.put c0 ~now:0 (Repro_util.Rng.int rng0 spec.keys) !filled) then
      incr filled
  done;
  K.flush c0;
  K.reset_peak t;
  let metrics_were = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  let stop = Atomic.make false in
  let ops = Array.make spec.threads 0 in
  let failures = Atomic.make 0 in
  (* Request-outcome tallies, per worker (summed at the end) — kept
     strictly apart from [failures], which counts worker deaths. *)
  let timed_out = Array.make spec.threads 0 in
  let retried_ok = Array.make spec.threads 0 in
  let retries_issued = Array.make spec.threads 0 in
  let shed = Array.make spec.threads 0 in
  let deadline_ns = int_of_float (spec.deadline_ms *. 1e6) in
  (* Per-shard breaker state words, published by the sampler and read
     by every worker on admission: 0 = admit, 1 = read-only (shed
     writes), 2 = open (shed everything). *)
  let nshards = K.shard_count t in
  let breaker_words = Array.init nshards (fun _ -> Atomic.make 0) in
  let worker pid () =
    let c = K.ctx t (pid + 1) in
    let kg =
      Keygen.create ~seed:(spec.seed + ((pid + 1) * 7919)) ~range:spec.keys spec.keygen
    in
    let rng = Repro_util.Rng.create ~seed:(spec.seed lxor ((pid + 1) * 104729)) in
    let n = ref 0 in
    let timed histo op =
      if !n land lat_sample_mask = 0 then begin
        let t0 = Unix.gettimeofday () in
        op ();
        let dt = Unix.gettimeofday () -. t0 in
        Obs.Histo.observe histo ~pid:(pid + 1) (int_of_float (dt *. 1e9))
      end
      else op ()
    in
    (* The resilient request path: admission against the shard's
       published breaker word, then — when a deadline is set — wall
       time on every attempt, with up to [retries] re-executions
       behind a seeded-jitter backoff. A wall clock cannot abort a
       synchronous call, so a missed deadline means the attempt is
       charged as timed out and the budget decides whether anyone
       retries; that is exactly the accounting a caller with a
       deadline would observe. *)
    let admitted shard kindw =
      (not spec.breaker)
      ||
      match Atomic.get breaker_words.(shard) with
      | 2 -> false
      | 1 -> kindw = Breaker.Read
      | _ -> true
    in
    let request shard kindw histo op =
      if not (admitted shard kindw) then begin
        shed.(pid) <- shed.(pid) + 1;
        Obs.Metrics.incr shed_c ~pid:(pid + 1)
      end
      else if deadline_ns = 0 then
        match histo with Some h -> timed h op | None -> op ()
      else begin
        let attempt () =
          let t0 = Unix.gettimeofday () in
          op ();
          let dt = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
          (match histo with
          | Some h when !n land lat_sample_mask = 0 ->
              Obs.Histo.observe h ~pid:(pid + 1) dt
          | _ -> ());
          dt
        in
        if attempt () > deadline_ns then begin
          let b = Repro_util.Backoff.create ~min:1 ~max:64 ~rng () in
          let rec go k =
            if k > spec.retries then begin
              timed_out.(pid) <- timed_out.(pid) + 1;
              Obs.Metrics.incr timeout_c ~pid:(pid + 1)
            end
            else begin
              Repro_util.Backoff.once b;
              retries_issued.(pid) <- retries_issued.(pid) + 1;
              Obs.Metrics.incr retry_c ~pid:(pid + 1);
              if attempt () <= deadline_ns then begin
                retried_ok.(pid) <- retried_ok.(pid) + 1;
                Obs.Metrics.incr retried_ok_c ~pid:(pid + 1)
              end
              else go (k + 1)
            end
          in
          go 1
        end
      end
    in
    (try
       while not (Atomic.get stop) do
         let now = K.now t in
         for _ = 1 to 64 do
           let key = Keygen.next kg in
           let shard = K.shard_of_key t key in
           let r = Repro_util.Rng.int rng 100 in
           let get () =
             request shard Breaker.Read (Some get_histo) (fun () ->
                 ignore (K.get c ~now key))
           in
           let put () =
             let ttl =
               if Repro_util.Rng.int rng 100 < spec.ttl_pct then Some spec.ttl_ticks
               else None
             in
             request shard Breaker.Write (Some put_histo) (fun () ->
                 ignore (K.put c ~now ?ttl key !n))
           in
           let remove () =
             request shard Breaker.Write None (fun () -> ignore (K.remove c ~now key))
           in
           (match spec.mix with
           | Read95 -> if r < 95 then get () else put ()
           | Write50 ->
               if r < 50 then get () else if r < 90 then put () else remove ()
           | Scan_churn ->
               if r < 10 then
                 request shard Breaker.Read (Some scan_histo) (fun () ->
                     ignore (K.scan c ~now key (key + 64)))
               else if r < 60 then get ()
               else if r < 90 then put ()
               else remove ());
           incr n
         done
       done;
       K.flush c
     with e ->
       ignore (Atomic.fetch_and_add failures 1);
       Printf.eprintf "[kv %s] worker %d died: %s\n%!" scheme_name pid
         (Printexc.to_string e));
    ops.(pid) <- !n
  in
  let t0 = Unix.gettimeofday () in
  let domains = List.init spec.threads (fun pid -> Domain.spawn (worker pid)) in
  (* The sampler owns logical time: one tick per sample, a background
     expiry sweep (the retirement storm) every [sweep_every] ticks, and
     — with [adapt] — one controller per shard fed that shard's
     backlog, so a hotspot phase shift is a per-shard signal change. *)
  let shard_peaks = Array.make nshards 0 in
  let peak_backlog = ref 0 in
  let swept = ref 0 in
  let trips = ref 0 in
  let controllers =
    if spec.adapt then
      Array.init nshards (fun s -> Adapt.Controller.create (K.shard_control t ~shard:s))
    else [||]
  in
  (* Sampler-driven breakers: transitions come entirely from the tick
     signals (backlog, request p99) — no cross-domain report plumbing —
     and the tick-only liveness of {!Breaker.tick} (idle-close from
     half-open) guarantees recovery once the signals are healthy. The
     latency trip only makes sense against a deadline, so without one
     it is pushed out of reach. *)
  let breakers =
    if spec.breaker then
      let cfg =
        {
          Breaker.default_config with
          p99_trip = (if deadline_ns > 0 then 2 * deadline_ns else max_int / 2);
        }
      in
      Array.init nshards (fun s -> Breaker.create ~config:cfg ~shard:s ())
    else [||]
  in
  let deadline = t0 +. spec.duration in
  let rec sample () =
    let wall = Unix.gettimeofday () in
    if wall < deadline then begin
      let tick = K.tick t in
      let total = ref 0 in
      for s = 0 to nshards - 1 do
        let b = K.shard_backlog t ~shard:s in
        shard_peaks.(s) <- max shard_peaks.(s) b;
        total := !total + b;
        if spec.breaker then begin
          let p99 =
            match Obs.Histo.percentiles get_histo with
            | Some (_, p99, _) when deadline_ns > 0 -> Some p99
            | _ -> None
          in
          (match Breaker.on_tick breakers.(s) ~pid:0 ~backlog:b ~p99 with
          | Some (Breaker.To_open _) -> incr trips
          | _ -> ());
          Atomic.set breaker_words.(s)
            (match Breaker.state breakers.(s) with
            | Breaker.Open _ -> 2
            | Breaker.Closed { shed_writes = true; _ } -> 1
            | _ -> 0)
        end;
        if spec.adapt then
          ignore
            (Adapt.Controller.observe controllers.(s)
               {
                 Adapt.Controller.backlog = b;
                 p99 = Driver.reclaim_p99 ();
                 stalled = false;
               })
      done;
      peak_backlog := max !peak_backlog !total;
      if tick mod spec.sweep_every = 0 then swept := !swept + K.expire_sweep c0 ~now:tick;
      Unix.sleepf (min 0.002 (deadline -. wall));
      sample ()
    end
  in
  sample ();
  Atomic.set stop true;
  List.iter Domain.join domains;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total_ops = Array.fold_left ( + ) 0 ops in
  let now = K.now t in
  let violations =
    if validate then begin
      ignore (K.expire_sweep c0 ~now);
      validate_identities (K.counters t) ~size:(K.size t ~now)
    end
    else []
  in
  let counters = K.counters t in
  let peak_live = K.peak_objects t in
  let get_lat = Obs.Histo.percentiles get_histo in
  let put_lat = Obs.Histo.percentiles put_histo in
  let scan_lat = Obs.Histo.percentiles scan_histo in
  K.teardown t;
  let leaked = K.live_objects t in
  Obs.Metrics.set_enabled metrics_were;
  {
    r_scheme = scheme_name;
    r_spec = spec;
    r_ops = total_ops;
    r_elapsed = elapsed;
    r_mops = Repro_util.Stats.throughput_mops ~ops:total_ops ~seconds:elapsed;
    r_hit_rate =
      (let h = counters.Kv_intf.gets_hit and m = counters.Kv_intf.gets_miss in
       if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m));
    r_get_lat = get_lat;
    r_put_lat = put_lat;
    r_scan_lat = scan_lat;
    r_counters = counters;
    r_swept = !swept;
    r_peak_live = peak_live;
    r_peak_backlog = !peak_backlog;
    r_shard_peak_backlog = shard_peaks;
    r_leaked = leaked;
    r_failures = Atomic.get failures;
    r_timed_out = Array.fold_left ( + ) 0 timed_out;
    r_retried_ok = Array.fold_left ( + ) 0 retried_ok;
    r_retries = Array.fold_left ( + ) 0 retries_issued;
    r_shed = Array.fold_left ( + ) 0 shed;
    r_trips = !trips;
    r_adapt_decisions =
      Array.to_list controllers
      |> List.concat_map (fun c -> Adapt.Controller.decisions c);
    r_violations =
      violations
      @ (if leaked > 0 then [ Printf.sprintf "leaked %d blocks" leaked ] else []);
  }

(* The scheme×shards×threads×mix sweep behind [cdrc-bench kv]. Returns
   [(ok, results)]: ok iff every run is leak-free, failure-free and —
   when [validate] — satisfies the accounting identities. *)
let sweep ?(spec = default_spec) ?(schemes = Instances.kv_services)
    ?(shard_counts = [ spec.shards ]) ?(thread_counts = [ spec.threads ])
    ?(mixes = [ spec.mix ]) ?(validate = false) () =
  let results =
    List.concat_map
      (fun mix ->
        List.concat_map
          (fun shards ->
            List.concat_map
              (fun threads ->
                List.map
                  (fun inst ->
                    let spec = { spec with mix; shards; threads } in
                    let r = run_one ~spec ~validate inst in
                    Format.printf "%a@." pp_result r;
                    r)
                  schemes)
              thread_counts)
          shard_counts)
      mixes
  in
  let ok =
    List.for_all (fun r -> r.r_leaked = 0 && r.r_failures = 0 && r.r_violations = []) results
  in
  (ok, results)

(* ================================================================= *)
(* Controller reaction latency to a workload phase shift (ROADMAP
   item 5's open question: how fast does adaptation react, not just
   whether it eventually bounds the backlog). Deterministic single
   thread, logical time.

   The probe couples the hotspot keygen's migrations to a retirement
   signal the controller can see: every tick refreshes the hot set
   with TTL'd puts, so while a phase is stable the entries are
   perpetually renewed and the backlog stays calm; the moment the hot
   set migrates, the abandoned phase stops being refreshed, expires
   [ttl] ticks later, and the next background sweep claims the whole
   old hot set at once — a retirement burst that drives the shard
   backlog past [backlog_high]. Reaction latency is the tick gap from
   the migration to the controller's first [Force_advance], so it
   bounds the end-to-end detection pipeline: expiry + sweep cadence +
   controller tick. *)

type reaction_result = {
  a_shifts : int; (* hot-set migrations that occurred *)
  a_reactions : int list; (* shift → first Force_advance, ticks, per shift *)
  a_worst : int; (* max reaction; -1 when nothing was measured *)
  a_peak_backlog : int; (* anywhere, including post-shift bursts *)
  a_steady_peak : int; (* outside the post-shift burst windows *)
  a_decisions : string list;
}

let reaction_g = Obs.Metrics.gauge "adapt.reaction_ticks"

let pp_reaction_result ppf r =
  Format.fprintf ppf
    "kv-EBR   adapt-reaction shifts=%d reactions=[%s] worst=%d peak=%d steady=%d"
    r.a_shifts
    (String.concat ";" (List.map string_of_int (List.rev r.a_reactions)))
    r.a_worst r.a_peak_backlog r.a_steady_peak

let measure_adapt_reaction ?(ticks = 2400) ?(hot_keys = 256) ?(shift_ticks = 800)
    ?(ttl = 32) ?(sweep_every = 8) ?(per_tick = 8) ?(seed = 42) () =
  let name, (module K : Kv_intf.S) =
    match Instances.find_kv "EBR" with
    | Some inst -> inst
    | None -> invalid_arg "measure_adapt_reaction: no EBR KV instance"
  in
  ignore name;
  let metrics_were = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  let t = K.create ~shards:1 ~buckets:64 ~epoch_freq:1 ~max_threads:2 () in
  let c = K.ctx t 1 in
  let kg =
    Keygen.create ~seed ~range:16_384
      (Keygen.Hotspot
         { hot_keys; hot_pct = 100; shift_every = shift_ticks * per_tick })
  in
  (* Thresholds sized so a steady phase never fires the pressure
     policy but one expired hot set always does. The sweep that claims
     an expired hot set drains most of its own burst as it goes (the
     retire path ejects every cleanup batch), so the observable spike
     tops out well under [hot_keys]; 3/8 of the hot set sits between
     the steady-churn plateau and that post-sweep residue. *)
  let config =
    {
      Adapt.Controller.default_config with
      Adapt.Controller.backlog_high = 3 * hot_keys / 8;
      backlog_low = hot_keys / 16;
    }
  in
  let ctl = Adapt.Controller.create ~config (K.shard_control t ~shard:0) in
  let seen_shifts = ref 0 in
  let pending_shift = ref None in
  let last_shift = ref min_int in
  let reactions = ref [] in
  let peak = ref 0 in
  let steady_peak = ref 0 in
  for tick = 1 to ticks do
    let now = K.tick t in
    for _ = 1 to per_tick do
      ignore (K.put c ~now ~ttl (Keygen.next kg) tick)
    done;
    if Keygen.shifts kg > !seen_shifts then begin
      seen_shifts := Keygen.shifts kg;
      (* A shift during an unfinished measurement restarts the clock:
         the controller has yet to react to any phase change. *)
      pending_shift := Some tick;
      last_shift := tick
    end;
    if tick mod sweep_every = 0 then ignore (K.expire_sweep c ~now);
    let backlog = K.shard_backlog t ~shard:0 in
    peak := max !peak backlog;
    if tick - !last_shift > 2 * (ttl + sweep_every) then
      steady_peak := max !steady_peak backlog;
    let actions =
      Adapt.Controller.observe ctl
        { Adapt.Controller.backlog; p99 = None; stalled = false }
    in
    match !pending_shift with
    | Some t0 when List.mem Adapt.Controller.Force_advance actions ->
        let dt = tick - t0 in
        reactions := dt :: !reactions;
        Obs.Metrics.set_gauge reaction_g dt;
        pending_shift := None
    | _ -> ()
  done;
  K.flush c;
  K.teardown t;
  Obs.Metrics.set_enabled metrics_were;
  {
    a_shifts = !seen_shifts;
    a_reactions = !reactions;
    a_worst = List.fold_left max (-1) !reactions;
    a_peak_backlog = !peak;
    a_steady_peak = !steady_peak;
    a_decisions = Adapt.Controller.decisions ctl;
  }

(* ================================================================= *)
(* Stalled-shard fault scenario: deterministic single-thread replay,
   mirroring Experiments.run_adaptivity_one but end-to-end through the
   KV service. A fault plan stalls the victim on its [stall_at]-th
   shard-0 critical-section entry; Faulty_smr then freezes the
   victim's protection (its CS exit is suppressed), pinning shard 0's
   EBR frontier while the healthy worker's overwrite churn piles
   deferred decrements behind it. *)

type fault_result = {
  f_adapt : bool;
  f_iters : int;
  f_peak_backlog : int; (* shard 0, sampled every iteration *)
  f_end_backlog : int;
  f_escalated_at : int option;
  f_fault_fired : bool; (* the plan's stall actually hit *)
  f_leaked : int;
  f_decisions : string list;
}

let pp_fault_result ppf r =
  Format.fprintf ppf
    "kv-EBR   adapt=%-5b iters=%-6d peak_backlog=%-6d end_backlog=%-6d escalate=%s \
     fault=%s leaked=%d decisions=%d"
    r.f_adapt r.f_iters r.f_peak_backlog r.f_end_backlog
    (match r.f_escalated_at with Some i -> Printf.sprintf "@%d" i | None -> "never")
    (if r.f_fault_fired then "fired" else "NOT-FIRED")
    r.f_leaked (List.length r.f_decisions)

let run_stalled_shard_one ?(iters = 2000) ?(check_every = 32) ?(stall_at = 8) ?config
    ~adapt () =
  let plan =
    Fault.Fault_plan.create
      [ { site = On_begin_cs; pid = Some 1; at = stall_at; action = Stall 0 } ]
  in
  let module FS =
    Fault.Faulty_smr.Make
      (Smr.Ebr)
      (struct
        let plan = plan
      end)
  in
  let module R = Cdrc.Make (FS) in
  let module K = Kv_service.Make (R) in
  (* Maximally eager tuning, as in the adaptivity experiment: any
     unbounded growth is the stall's fault, not the knobs'. *)
  let t = K.create ~shards:2 ~buckets:32 ~epoch_freq:1 ~max_threads:3 () in
  let victim = K.ctx t 1 in
  let healthy = K.ctx t 2 in
  (* Work entirely on shard-0 keys so the victim's frozen critical
     section pins exactly the backlog the healthy worker creates. *)
  let shard0_keys =
    List.filter (fun k -> K.shard_of_key t k = 0) (List.init 4096 Fun.id)
  in
  let key_at =
    let arr = Array.of_list shard0_keys in
    fun i -> arr.(i mod Array.length arr)
  in
  let escalated_at = ref None in
  let iter = ref 0 in
  let ctl =
    if adapt then
      Some
        (Adapt.Controller.create ?config
           ~on_escalate:(fun () ->
             escalated_at := Some !iter;
             K.abandon_shard t ~shard:0 ~pid:1)
           (K.shard_control t ~shard:0))
    else None
  in
  let peak = ref 0 in
  for i = 1 to iters do
    iter := i;
    (* The victim ops until the plan stalls it mid-operation; a
       stalled pid is parked (its protection is frozen by the
       wrapper). *)
    if not (Fault.Fault_plan.stalled plan ~pid:1) then
      ignore (K.put victim ~now:i (key_at i) i);
    (* Overwrite churn on a small hot set: every put retires a box
       into shard 0's pinned runtime. *)
    ignore (K.put healthy ~now:i (key_at (i mod 8)) i);
    peak := max !peak (K.shard_backlog t ~shard:0);
    if i mod check_every = 0 then
      match ctl with
      | None -> ()
      | Some c ->
          ignore
            (Adapt.Controller.observe c
               {
                 Adapt.Controller.backlog = K.shard_backlog t ~shard:0;
                 p99 = None;
                 stalled = K.watchdog_check t <> None;
               })
  done;
  let end_backlog = K.shard_backlog t ~shard:0 in
  (* Reap the victim if the controller never did; the run must be
     leak-free either way. *)
  if !escalated_at = None then K.abandon_shard t ~shard:0 ~pid:1;
  K.flush healthy;
  K.teardown t;
  {
    f_adapt = adapt;
    f_iters = iters;
    f_peak_backlog = !peak;
    f_end_backlog = end_backlog;
    f_escalated_at = !escalated_at;
    f_fault_fired = Fault.Fault_plan.stalled plan ~pid:1;
    f_leaked = K.live_objects t;
    f_decisions = (match ctl with None -> [] | Some c -> Adapt.Controller.decisions c);
  }

(* Controller-on vs fixed knobs under the same stalled-shard plan.
   [ok] iff the controller kept shard 0's peak backlog at or under
   [bound] while the fixed-knob run ended above it, both leak-free and
   with the fault actually fired — the CI exit-code check. *)
let run_stalled_shard ?(iters = 2000) ?(bound = 512) () =
  Format.printf
    "@.== KV stalled shard: victim pinned in a shard-0 critical section (EBR) \
     ==@.expected: fixed-knob backlog grows behind the pinned frontier; the per-shard \
     controller escalates to abandon_shard and keeps the peak under %d@.@."
    bound;
  let on = run_stalled_shard_one ~iters ~adapt:true () in
  let off = run_stalled_shard_one ~iters ~adapt:false () in
  Format.printf "%a@.%a@." pp_fault_result on pp_fault_result off;
  Format.printf "@.controller decisions:@.";
  List.iter (fun d -> Format.printf "    [adapt] %s@." d) on.f_decisions;
  let ok =
    on.f_peak_backlog <= bound
    && off.f_end_backlog > bound
    && on.f_leaked = 0 && off.f_leaked = 0
    && on.f_fault_fired && off.f_fault_fired
  in
  Format.printf "@.bound=%d controller-on peak=%d (%s) fixed-knob end=%d (%s)@.@." bound
    on.f_peak_backlog
    (if on.f_peak_backlog <= bound then "bounded" else "VIOLATED")
    off.f_end_backlog
    (if off.f_end_backlog > bound then "unbounded as expected" else "UNEXPECTEDLY BOUNDED");
  (ok, [ on; off ])
