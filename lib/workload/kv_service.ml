(** Sharded KV store under automatic reference counting — the serving
    workload of DESIGN.md §12, layered over {!Ds.Hash_table_rc}'s
    design (bucket arrays of Harris–Michael chains) with one RC
    runtime {e per shard} and an atomic value slot per node.

    See {!Kv_intf} for the slot-mark protocol. The invariant that
    makes searches (first node with key ≥ k) sufficient: within a
    bucket chain, a live node for key [k] always precedes any same-key
    tombstones, because inserts go {e before} the first key-≥-k node
    and a node is never resurrected after its slot is marked.

    The protocol steps that decide linearization — chain traversal,
    the slot CAS/mark, and the physical unlink — are annotated with
    {!Sched.yield} scheduling points (free outside a controller), so
    test/test_kv.ml can drive the shard core under the DFS explorer
    and check recorded histories for linearizability across bounded
    preemption interleavings. *)

module Make (R : Cdrc.Intf.S) : Kv_intf.S = struct
  let name = R.scheme_name

  (* Immutable value box: the unit of overwrite churn. [bexp] is the
     logical expiry tick; [max_int] = no TTL. *)
  type box = { bv : int; bexp : int }
  type node = { key : int; slot : box R.asp; next : node R.asp }
  type shard = { rt : R.rt; buckets : node R.asp array; nbuckets : int }

  type t = {
    shards : shard array;
    mask : int;
    heap : Simheap.t;
    clock : int Atomic.t;
    c_puts_new : int Repro_util.Padded.t;
    c_overwrites : int Repro_util.Padded.t;
    c_expired_overwrites : int Repro_util.Padded.t;
    c_removes : int Repro_util.Padded.t;
    c_expiries : int Repro_util.Padded.t;
    c_gets_hit : int Repro_util.Padded.t;
    c_gets_miss : int Repro_util.Padded.t;
  }

  type ctx = { t : t; ths : R.thr array; pid : int }

  let pow2_ceil n =
    let r = ref 1 in
    while !r < n do
      r := !r lsl 1
    done;
    !r

  let create ?(shards = 4) ?(buckets = 1 lsl 10) ?slots_per_thread ?epoch_freq
      ~max_threads () =
    if shards <= 0 then invalid_arg "Kv_service.create: shards must be positive";
    if buckets <= 0 then invalid_arg "Kv_service.create: buckets must be positive";
    let nshards = pow2_ceil shards in
    (* One heap across shards: leak accounting is service-global. *)
    let heap = Simheap.create ~name:("kv-" ^ R.scheme_name) () in
    let mk_shard _ =
      {
        rt =
          R.create ~support_weak:false ?slots_per_thread ?epoch_freq ~heap
            ~max_threads ();
        buckets = Array.init buckets (fun _ -> R.Asp.make_null ());
        nbuckets = buckets;
      }
    in
    {
      shards = Array.init nshards mk_shard;
      mask = nshards - 1;
      heap;
      clock = Atomic.make 0;
      c_puts_new = Repro_util.Padded.create max_threads 0;
      c_overwrites = Repro_util.Padded.create max_threads 0;
      c_expired_overwrites = Repro_util.Padded.create max_threads 0;
      c_removes = Repro_util.Padded.create max_threads 0;
      c_expiries = Repro_util.Padded.create max_threads 0;
      c_gets_hit = Repro_util.Padded.create max_threads 0;
      c_gets_miss = Repro_util.Padded.create max_threads 0;
    }

  let shard_count t = Array.length t.shards

  (* Shard router: a different Fibonacci mix than the bucket hash, so
     bucket collisions and shard placement are uncorrelated. *)
  let shard_of_key t key = (key * 0x2545F4914F6CDD1D land max_int) lsr 17 land t.mask
  let bucket sh key = key * 2654435761 land max_int mod sh.nbuckets
  let ctx t pid = { t; ths = Array.map (fun sh -> R.thread sh.rt pid) t.shards; pid }
  let now t = Atomic.get t.clock
  let tick t = 1 + Atomic.fetch_and_add t.clock 1
  let bump arr c = Repro_util.Padded.add arr c.pid 1

  (* ------------------------------------------------------------------ *)
  (* Chain search — hm_list_rc's cursor, verbatim protocol: position at
     the first node with key ≥ k, helping unlink next-marked nodes.
     Slot (liveness) inspection is the caller's job. *)

  type cursor = {
    found : bool;
    prev : node R.asp;
    prev_s : node R.snapshot; (* keeps prev's node alive; null for head *)
    cur : node R.snapshot;
  }

  let discard th cu =
    R.Snapshot.drop th cu.prev_s;
    R.Snapshot.drop th cu.cur

  exception Restart

  let rec search th head key =
    match search_once th head key with cu -> cu | exception Restart -> search th head key

  and search_once th head key =
    let prev = ref head in
    let prev_s = ref (R.Snapshot.null ()) in
    let cur = ref (R.Asp.get_snapshot th head) in
    let abort () =
      R.Snapshot.drop th !cur;
      R.Snapshot.drop th !prev_s;
      raise Restart
    in
    let rec loop () =
      Sched.yield ();
      if R.Snapshot.is_null !cur then
        { found = false; prev = !prev; prev_s = !prev_s; cur = !cur }
      else begin
        let node = R.Snapshot.get !cur in
        let next = R.Asp.get_snapshot th node.next in
        if R.Snapshot.is_marked next then begin
          if
            R.Asp.compare_and_swap th !prev
              ~expected:(R.Snapshot.ptr !cur ~tag:0)
              ~desired:(R.Snapshot.ptr next ~tag:0)
          then begin
            R.Snapshot.drop th !cur;
            cur := next;
            loop ()
          end
          else begin
            R.Snapshot.drop th next;
            abort ()
          end
        end
        else if node.key >= key then begin
          R.Snapshot.drop th next;
          { found = node.key = key; prev = !prev; prev_s = !prev_s; cur = !cur }
        end
        else begin
          R.Snapshot.drop th !prev_s;
          prev_s := !cur;
          prev := node.next;
          cur := next;
          loop ()
        end
      end
    in
    loop ()

  (* Physical deletion of a slot-marked node: mark [next], then unlink
     via the predecessor from the caller's cursor; a failed unlink is
     finished by a helping re-search. Loops until the next-mark lands —
     the slot mark already made the node unresurrectable, so the only
     contention is successor churn. *)
  let unlink_node th head cu node =
    let rec mark_next () =
      Sched.yield ();
      let next = R.Asp.get_snapshot th node.next in
      if R.Snapshot.is_marked next then R.Snapshot.drop th next
      else if R.Asp.try_mark th node.next ~expected:(R.Snapshot.ptr next ~tag:0) then begin
        if
          not
            (R.Asp.compare_and_swap th cu.prev
               ~expected:(R.Snapshot.ptr cu.cur ~tag:0)
               ~desired:(R.Snapshot.ptr next ~tag:0))
        then begin
          let cu2 = search th head node.key in
          discard th cu2
        end;
        R.Snapshot.drop th next
      end
      else begin
        R.Snapshot.drop th next;
        mark_next ()
      end
    in
    mark_next ()

  let mk_box th v exp = R.Shared.make th { bv = v; bexp = exp }

  let mk_node th key box_sh next_ptr =
    R.Shared.make th
      ~destroy:(fun th n ->
        R.Asp.clear th n.slot;
        R.Asp.clear th n.next)
      { key; slot = R.Asp.make th (R.Shared.ptr box_sh); next = R.Asp.make th next_ptr }

  (* ------------------------------------------------------------------ *)
  (* Core operations. Each runs under [R.critically] on the target
     shard's thread handle only — shard isolation is what makes the
     stalled-shard fault scenario local. *)

  let locate c key =
    let s = shard_of_key c.t key in
    (c.t.shards.(s), c.ths.(s))

  let get c ~now key =
    let sh, th = locate c key in
    let head = sh.buckets.(bucket sh key) in
    R.critically th (fun () ->
        let cu = search th head key in
        if not cu.found then begin
          discard th cu;
          bump c.t.c_gets_miss c;
          None
        end
        else begin
          let node = R.Snapshot.get cu.cur in
          let bs = R.Asp.get_snapshot th node.slot in
          if R.Snapshot.is_null bs || R.Snapshot.is_marked bs then begin
            R.Snapshot.drop th bs;
            discard th cu;
            bump c.t.c_gets_miss c;
            None
          end
          else begin
            let box = R.Snapshot.get bs in
            if box.bexp > now then begin
              let v = box.bv in
              R.Snapshot.drop th bs;
              discard th cu;
              bump c.t.c_gets_hit c;
              Some v
            end
            else begin
              (* Expired: never served. Lazily claim the expiry; the
                 winner of the slot mark owns the physical unlink. *)
              Sched.yield ();
              let claimed =
                R.Asp.try_mark th node.slot ~expected:(R.Snapshot.ptr bs ~tag:0)
              in
              R.Snapshot.drop th bs;
              if claimed then begin
                bump c.t.c_expiries c;
                unlink_node th head cu node
              end;
              discard th cu;
              bump c.t.c_gets_miss c;
              None
            end
          end
        end)

  let put c ~now ?ttl key v =
    let sh, th = locate c key in
    let head = sh.buckets.(bucket sh key) in
    let exp = match ttl with None -> max_int | Some d -> now + d in
    R.critically th (fun () ->
        let rec go () =
          let cu = search th head key in
          let insert_fresh () =
            (* Fresh node before the first key-≥-k node: covers both
               the absent case and insert-before-tombstone. *)
            let box_sh = mk_box th v exp in
            let fresh = mk_node th key box_sh (R.Snapshot.ptr cu.cur ~tag:0) in
            R.Shared.drop th box_sh;
            Sched.yield ();
            if
              R.Asp.compare_and_swap th cu.prev
                ~expected:(R.Snapshot.ptr cu.cur ~tag:0)
                ~desired:(R.Shared.ptr fresh)
            then begin
              R.Shared.drop th fresh;
              discard th cu;
              bump c.t.c_puts_new c;
              false
            end
            else begin
              R.Shared.drop th fresh;
              discard th cu;
              go ()
            end
          in
          if not cu.found then insert_fresh ()
          else begin
            let node = R.Snapshot.get cu.cur in
            let bs = R.Asp.get_snapshot th node.slot in
            if R.Snapshot.is_null bs || R.Snapshot.is_marked bs then begin
              R.Snapshot.drop th bs;
              insert_fresh ()
            end
            else begin
              let old = R.Snapshot.get bs in
              let box_sh = mk_box th v exp in
              Sched.yield ();
              if
                R.Asp.compare_and_swap th node.slot
                  ~expected:(R.Snapshot.ptr bs ~tag:0)
                  ~desired:(R.Shared.ptr box_sh)
              then begin
                (* The old box's decrement is now deferred through the
                   scheme — overwrite churn is retirement traffic. *)
                R.Shared.drop th box_sh;
                R.Snapshot.drop th bs;
                discard th cu;
                if old.bexp > now then begin
                  bump c.t.c_overwrites c;
                  true
                end
                else begin
                  bump c.t.c_expired_overwrites c;
                  false
                end
              end
              else begin
                R.Shared.drop th box_sh;
                R.Snapshot.drop th bs;
                discard th cu;
                go ()
              end
            end
          end
        in
        go ())

  (* Shared kill path: claim the slot mark, count the death as a
     remove (live) or expiry (dead), unlink. [only_expired] is the
     sweep/lazy-expiry mode: live entries survive. Returns
     [(claimed, was_live)]. *)
  let kill c ~now ~only_expired key =
    let sh, th = locate c key in
    let head = sh.buckets.(bucket sh key) in
    R.critically th (fun () ->
        let rec go () =
          let cu = search th head key in
          if not cu.found then begin
            discard th cu;
            (false, false)
          end
          else begin
            let node = R.Snapshot.get cu.cur in
            let bs = R.Asp.get_snapshot th node.slot in
            if R.Snapshot.is_null bs || R.Snapshot.is_marked bs then begin
              R.Snapshot.drop th bs;
              discard th cu;
              (false, false)
            end
            else begin
              let live = (R.Snapshot.get bs).bexp > now in
              if only_expired && live then begin
                R.Snapshot.drop th bs;
                discard th cu;
                (false, false)
              end
              else if begin
                Sched.yield ();
                R.Asp.try_mark th node.slot ~expected:(R.Snapshot.ptr bs ~tag:0)
              end
              then begin
                R.Snapshot.drop th bs;
                bump (if live then c.t.c_removes else c.t.c_expiries) c;
                unlink_node th head cu node;
                discard th cu;
                (true, live)
              end
              else begin
                R.Snapshot.drop th bs;
                discard th cu;
                go ()
              end
            end
          end
        in
        go ())

  let remove c ~now key = snd (kill c ~now ~only_expired:false key)

  (* Read-only chain fold over live snapshots; marked (physically
     dying) nodes are passed through without helping. *)
  let fold_chain th head f acc =
    R.critically th (fun () ->
        let prev_s = ref (R.Snapshot.null ()) in
        let cur = ref (R.Asp.get_snapshot th head) in
        let acc = ref acc in
        let rec loop () =
          if R.Snapshot.is_null !cur then begin
            R.Snapshot.drop th !cur;
            R.Snapshot.drop th !prev_s;
            !acc
          end
          else begin
            let node = R.Snapshot.get !cur in
            let next = R.Asp.get_snapshot th node.next in
            if not (R.Snapshot.is_marked next) then begin
              let bs = R.Asp.get_snapshot th node.slot in
              (if not (R.Snapshot.is_null bs || R.Snapshot.is_marked bs) then
                 let box = R.Snapshot.get bs in
                 acc := f !acc node.key box.bv box.bexp);
              R.Snapshot.drop th bs
            end;
            R.Snapshot.drop th !prev_s;
            prev_s := !cur;
            cur := next;
            loop ()
          end
        in
        loop ())

  let scan c ~now lo hi =
    let total = ref 0 in
    Array.iteri
      (fun s sh ->
        let th = c.ths.(s) in
        Array.iter
          (fun head ->
            total :=
              fold_chain th head
                (fun acc key _v exp ->
                  if key >= lo && key < hi && exp > now then acc + 1 else acc)
                !total)
          sh.buckets)
      c.t.shards;
    !total

  let expire_sweep c ~now =
    let claimed = ref 0 in
    Array.iteri
      (fun s sh ->
        let th = c.ths.(s) in
        Array.iter
          (fun head ->
            (* Collect candidates read-only, then claim each through
               the racing-safe kill path. *)
            let expired =
              fold_chain th head
                (fun acc key _v exp -> if exp <= now then key :: acc else acc)
                []
            in
            List.iter
              (fun key -> if fst (kill c ~now ~only_expired:true key) then incr claimed)
              expired)
          sh.buckets)
      c.t.shards;
    !claimed

  let flush c = Array.iter R.flush c.ths

  (* Recovery drill helper: eagerly eject one shard's runtime from the
     caller's handle until its backlog stops shrinking — after an
     [abandon_shard] this adopts and drains the dead pid's parked
     retirements. Multiple passes because each eject can unlock the
     next (deferred decrements cascade through the RC graph). *)
  let drain_shard c ~shard =
    let backlog () = R.retired_backlog c.t.shards.(shard).rt in
    let rec go prev =
      R.flush c.ths.(shard);
      let b = backlog () in
      if b > 0 && b < prev then go b
    in
    go max_int

  (* ------------------------------------------------------------------ *)
  (* Accounting and observability *)

  let size t ~now =
    let total = ref 0 in
    Array.iter
      (fun sh ->
        let th = R.thread sh.rt 0 in
        Array.iter
          (fun head ->
            total :=
              fold_chain th head
                (fun acc _key _v exp -> if exp > now then acc + 1 else acc)
                !total)
          sh.buckets)
      t.shards;
    !total

  let live_objects t = Simheap.live t.heap
  let peak_objects t = Simheap.peak t.heap
  let reset_peak t = Simheap.reset_peak t.heap
  let shard_backlog t ~shard = R.retired_backlog t.shards.(shard).rt

  let retired_backlog t =
    Array.fold_left (fun acc sh -> acc + R.retired_backlog sh.rt) 0 t.shards

  let watchdog_check t =
    Array.fold_left
      (fun acc sh -> match acc with Some _ -> acc | None -> R.watchdog_check sh.rt)
      None t.shards

  let shard_control t ~shard = R.control t.shards.(shard).rt

  let control t =
    Array.to_list t.shards |> List.concat_map (fun sh -> R.control sh.rt)

  let counters t =
    let sum arr = Repro_util.Padded.fold ( + ) 0 arr in
    {
      Kv_intf.puts_new = sum t.c_puts_new;
      overwrites = sum t.c_overwrites;
      expired_overwrites = sum t.c_expired_overwrites;
      removes = sum t.c_removes;
      expiries = sum t.c_expiries;
      gets_hit = sum t.c_gets_hit;
      gets_miss = sum t.c_gets_miss;
    }

  (* ------------------------------------------------------------------ *)
  (* Fault scenarios *)

  let stall_enter c ~shard = R.begin_critical_section c.ths.(shard)
  let stall_exit c ~shard = R.end_critical_section c.ths.(shard)
  let abandon_shard t ~shard ~pid = R.abandon t.shards.(shard).rt ~pid

  let teardown t =
    Array.iter
      (fun sh ->
        let th = R.thread sh.rt 0 in
        Array.iter (fun head -> R.Asp.clear th head) sh.buckets;
        R.quiesce sh.rt)
      t.shards
end
