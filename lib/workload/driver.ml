(** Multi-domain benchmark driver reproducing the paper's measurement
    methodology (§5): prefill a structure to a target size, run P
    threads for a fixed duration against a key range twice the initial
    size, and report throughput plus memory usage (live simulated-heap
    blocks, sampled continuously for the average and tracked for the
    peak).

    Operation mix: [update_pct]% updates (half inserts, half removes),
    [rq_pct]% range queries of [rq_size] consecutive keys, the
    remainder point lookups — covering Fig 11 (50/50 updates and range
    queries) and every Fig 13 panel. *)

type spec = {
  threads : int;
  duration : float; (* seconds of measured work *)
  key_range : int; (* keys drawn uniformly from [0, key_range) *)
  init_size : int; (* prefilled distinct keys *)
  update_pct : int;
  rq_pct : int;
  rq_size : int;
  seed : int;
  buckets : int option; (* hash table only *)
  slots : int option; (* HP/HE announcement slots per thread *)
  epoch_freq : int option; (* EBR/IBR/HE epoch advance frequency *)
  adapt : bool; (* run the adaptive reclamation controller *)
}

let default_spec =
  {
    threads = 4;
    duration = 1.0;
    key_range = 200_000;
    init_size = 100_000;
    update_pct = 10;
    rq_pct = 0;
    rq_size = 64;
    seed = 42;
    buckets = None;
    slots = None;
    epoch_freq = None;
    adapt = false;
  }

type result = {
  scheme : string;
  spec : spec;
  total_ops : int;
  elapsed : float;
  mops : float;
  live_avg : float; (* mean live blocks sampled during the run *)
  live_peak : int;
  leaked : int; (* live blocks after teardown; 0 = leak-free *)
  uaf : int; (* use-after-free events caught (unsafe schemes) *)
  worker_failures : int; (* workers killed by a non-safety exception (harness bug) *)
  snap_slow_share : float option; (* RC only: slow-path snapshot share *)
  watchdog_verdicts : string list;
      (* Stuck verdicts the reclamation watchdog raised during the run
         (empty when telemetry is disabled or reclamation progressed). *)
  adapt_decisions : string list;
      (* The adaptive controller's decision log (empty when
         [spec.adapt] is false): one line per sampler tick on which the
         controller moved a knob. *)
}

let pp_result ppf r =
  Format.fprintf ppf "%-12s P=%-3d %8.3f Mops/s  ops=%-10d live(avg)=%-9.0f peak=%-9d%s%s%s%s"
    r.scheme r.spec.threads r.mops r.total_ops r.live_avg r.live_peak
    (if r.leaked > 0 then Printf.sprintf "  LEAK=%d" r.leaked else "")
    (if r.uaf > 0 then Printf.sprintf "  UAF=%d" r.uaf else "")
    (if r.worker_failures > 0 then Printf.sprintf "  FAILED-WORKERS=%d" r.worker_failures
     else "")
    (match r.snap_slow_share with
    | Some s when s > 0.0005 -> Printf.sprintf "  slow-snap=%.1f%%" (100. *. s)
    | _ -> "");
  (match r.watchdog_verdicts with
  | [] -> ()
  | vs -> Format.fprintf ppf "  WATCHDOG=%d" (List.length vs));
  match r.adapt_decisions with
  | [] -> ()
  | ds -> Format.fprintf ppf "  ADAPT=%d" (List.length ds)

(* Time-series gauges published by the sampler thread; global because a
   process runs one driver at a time. *)
let live_gauge = Obs.Metrics.gauge "driver.live_blocks"
let backlog_gauge = Obs.Metrics.gauge "driver.retired_backlog"
let ops_gauge = Obs.Metrics.gauge "driver.ops_per_s"

(* p99 retire→free latency across every scheme's reclaim_latency
   histogram (one driver runs one scheme per process, so at most one
   accumulates). [None] while telemetry is off or nothing was
   sampled — the controller treats that as "SLO met". *)
let reclaim_p99 () =
  let acc = Array.make Obs.Histo.buckets 0 in
  List.iter
    (fun h ->
      if String.ends_with ~suffix:".reclaim_latency" (Obs.Histo.name h) then
        Array.iteri (fun i c -> acc.(i) <- acc.(i) + c) (Obs.Histo.merged h))
    (Obs.Histo.dump ());
  Obs.Histo.percentile_of_counts acc 99.0

module Run (D : Ds.Set_intf.S) = struct
  let prefill d spec =
    let c = D.ctx d 0 in
    let rng = Repro_util.Rng.create ~seed:spec.seed in
    let filled = ref 0 in
    while !filled < spec.init_size do
      if D.insert c (Repro_util.Rng.int rng spec.key_range) then incr filled
    done;
    D.flush c

  let run ?(spec = default_spec) () =
    let d =
      D.create ?buckets:spec.buckets ?slots_per_thread:spec.slots
        ?epoch_freq:spec.epoch_freq
        ~max_threads:(spec.threads + 1) (* +1: the sampler/prefill thread *) ()
    in
    prefill d spec;
    D.reset_peak d;
    ignore (Obs.Verdicts.drain ()); (* discard verdicts from earlier runs *)
    let stop = Atomic.make false in
    let ops = Array.make spec.threads 0 in
    (* Published batch-by-batch so the sampler can compute a live
       throughput rate without waiting for workers to finish. *)
    let progress = Repro_util.Padded.create spec.threads 0 in
    let uafs = Atomic.make 0 in
    let failures = Atomic.make 0 in
    let worker pid () =
      let c = D.ctx d (pid + 1) in
      let rng = Repro_util.Rng.create ~seed:(spec.seed + ((pid + 1) * 7919)) in
      let n = ref 0 in
      (try
         while not (Atomic.get stop) do
           (* Batch 64 operations between stop-flag checks. *)
           for _ = 1 to 64 do
             let r = Repro_util.Rng.int rng 100 in
             let key = Repro_util.Rng.int rng spec.key_range in
             if r < spec.update_pct then begin
               if r land 1 = 0 then ignore (D.insert c key) else ignore (D.remove c key)
             end
             else if r < spec.update_pct + spec.rq_pct then
               ignore (D.range_query c key (key + spec.rq_size))
             else ignore (D.contains c key)
           done;
           n := !n + 64;
           Repro_util.Padded.set progress pid !n
         done;
         D.flush c
       with
      | (Simheap.Use_after_free _ | Simheap.Double_free _) as e ->
          (* A safety violation of the reclamation scheme under test. *)
          ignore (Atomic.fetch_and_add uafs 1);
          Printf.eprintf "[%s] worker %d safety violation: %s\n%!" D.name pid
            (Printexc.to_string e)
      | e ->
          (* Anything else is a harness/structure bug, not a UAF —
             report it as a worker failure so the two aren't conflated. *)
          ignore (Atomic.fetch_and_add failures 1);
          Printf.eprintf "[%s] worker %d died: %s\n%!" D.name pid (Printexc.to_string e));
      ops.(pid) <- !n
    in
    let t0 = Unix.gettimeofday () in
    let domains = List.init spec.threads (fun pid -> Domain.spawn (worker pid)) in
    (* Sample memory usage from the coordinating thread while the
       workers run. *)
    let samples = ref [] in
    let deadline = t0 +. spec.duration in
    let last_ops = ref 0 in
    let last_t = ref t0 in
    (* The adaptive controller rides the sampler: one controller tick
       per sample, fed the backlog, latency-p99, and watchdog signals.
       No [on_escalate] here — benchmark workers are healthy by
       construction, so escalation is only logged; the adaptivity
       experiment wires the real abandon path. *)
    let ctl = if spec.adapt then Some (Adapt.Controller.create (D.control d)) else None in
    let rec sample () =
      let now = Unix.gettimeofday () in
      if now < deadline then begin
        let live = D.live_objects d in
        samples := float_of_int live :: !samples;
        let verdict = ref None in
        let checked = ref false in
        (* Telemetry side of the sampler: per-second throughput and
           backlog gauges, a Sample trace event, and a watchdog poke.
           Gated as a block so the disabled path adds nothing beyond
           the pre-existing live_objects read. *)
        if Obs.Metrics.enabled () then begin
          let done_ops = Repro_util.Padded.fold ( + ) 0 progress in
          let dt = now -. !last_t in
          let rate =
            if dt > 0. then int_of_float (float_of_int (done_ops - !last_ops) /. dt) else 0
          in
          last_ops := done_ops;
          last_t := now;
          let backlog = D.retired_backlog d in
          Obs.Metrics.set_gauge live_gauge live;
          Obs.Metrics.set_gauge backlog_gauge backlog;
          Obs.Metrics.set_gauge ops_gauge rate;
          Obs.Trace.emit ~pid:0
            (Obs.Trace.Sample
               {
                 t_ms = int_of_float ((now -. t0) *. 1000.);
                 ops_per_s = rate;
                 live;
                 backlog;
               });
          verdict := D.watchdog_check d;
          checked := true
        end;
        (match ctl with
        | None -> ()
        | Some c ->
            if not !checked then verdict := D.watchdog_check d;
            ignore
              (Adapt.Controller.observe c
                 {
                   Adapt.Controller.backlog = D.retired_backlog d;
                   p99 = reclaim_p99 ();
                   stalled = !verdict <> None;
                 }));
        Unix.sleepf (min 0.01 (deadline -. now));
        sample ()
      end
    in
    sample ();
    Atomic.set stop true;
    List.iter Domain.join domains;
    let elapsed = Unix.gettimeofday () -. t0 in
    let total_ops = Array.fold_left ( + ) 0 ops in
    let live_peak = D.peak_objects d in
    let live_avg =
      match !samples with [] -> float_of_int (D.live_objects d) | s -> Repro_util.Stats.mean (Array.of_list s)
    in
    let uaf_ds = D.uaf_events d in
    let snap_slow_share =
      match D.snapshot_stats d with
      | Some (fast, slow) when fast + slow > 0 ->
          Some (float_of_int slow /. float_of_int (fast + slow))
      | Some _ -> Some 0.
      | None -> None
    in
    D.teardown d;
    let leaked = D.live_objects d in
    {
      scheme = D.name;
      spec;
      total_ops;
      elapsed;
      mops = Repro_util.Stats.throughput_mops ~ops:total_ops ~seconds:elapsed;
      live_avg;
      live_peak;
      leaked;
      uaf = uaf_ds + Atomic.get uafs;
      worker_failures = Atomic.get failures;
      snap_slow_share;
      watchdog_verdicts = Obs.Verdicts.drain ();
      adapt_decisions =
        (match ctl with None -> [] | Some c -> Adapt.Controller.decisions c);
    }
end
