(** Interface of the sharded KV serving store (DESIGN.md §12).

    The service is a KV generalization of {!Ds.Hash_table_rc}: each
    shard is an independent RC runtime holding a bucket array of
    Harris–Michael chains whose nodes carry the key plus an atomic
    {e value slot} — an [R.asp] pointing at an immutable value box
    [(value, expiry)]. Every state change of a mapping is a single CAS
    or mark on that slot, so the whole KV history linearizes on slot
    operations:

    + {b put on a live entry}: CAS slot [old → new] — the old box's
      decrement is deferred through the scheme under test (the paper's
      core mechanism, now exercised by overwrite churn).
    + {b remove / TTL expiry}: mark the slot ([try_mark]) — a marked
      slot is a tombstone; the marker then physically unlinks the node
      Harris-style (mark [next], CAS the predecessor).
    + {b put on an absent/tombstoned key}: insert a fresh node {e
      before} the first node with key ≥ k, so a live node always
      precedes any same-key tombstones and searches (first key ≥ k)
      stay correct.

    All core operations take an explicit logical [~now] so tests and
    exploration schedules are deterministic; the service-level clock
    ([now]/[tick]) is a convenience for the runner only. *)

(** Operation-outcome counters, summed over threads. The accounting
    identities tested in [test/test_kv.ml] (at quiescence, after an
    [expire_sweep]):

    - node identity: [puts_new = size + removes + expiries] — every
      node dies by exactly one slot mark, counted by the thread that
      won the mark;
    - box identity: every installed value box is retired by exactly one
      of overwrite, expired overwrite, remove, or expiry, so
      [installed - size = overwrites + expired_overwrites + removes
      + expiries] where [installed = puts_new + overwrites +
      expired_overwrites]. *)
type counters = {
  puts_new : int;  (** puts that created a fresh node *)
  overwrites : int;  (** puts that replaced a live box *)
  expired_overwrites : int;  (** puts that replaced an expired box *)
  removes : int;  (** removes that killed a live entry *)
  expiries : int;  (** slot marks claimed on expired entries *)
  gets_hit : int;
  gets_miss : int;
}

module type S = sig
  val name : string
  (** Underlying RC scheme name ("RCEBR" … "RCNone"). *)

  type t
  type ctx

  val create :
    ?shards:int ->
    ?buckets:int ->
    ?slots_per_thread:int ->
    ?epoch_freq:int ->
    max_threads:int ->
    unit ->
    t
  (** [shards] (default 4) is rounded up to a power of two; [buckets]
      is per shard. All shards share one {!Simheap} so [live_objects]
      and leak accounting are service-global. *)

  val shard_count : t -> int
  val shard_of_key : t -> int -> int
  val ctx : t -> int -> ctx

  (** {1 Logical time} *)

  val now : t -> int
  val tick : t -> int
  (** Advance the service clock by one tick; returns the new time. *)

  (** {1 Core operations} *)

  val get : ctx -> now:int -> int -> int option
  (** [None] for absent, tombstoned, or expired keys — an expired
      entry is never served; the reader lazily claims its expiry. *)

  val put : ctx -> now:int -> ?ttl:int -> int -> int -> bool
  (** [put c ~now ?ttl k v] maps [k] to [v] (until [now + ttl] if
      given). Returns [true] iff a {e live} entry was overwritten. *)

  val remove : ctx -> now:int -> int -> bool
  (** [true] iff a live entry was removed; removing an expired entry
      claims the expiry and returns [false]. *)

  val scan : ctx -> now:int -> int -> int -> int
  (** [scan c ~now lo hi]: count of live, unexpired keys in
      [\[lo, hi)], across all shards. *)

  val expire_sweep : ctx -> now:int -> int
  (** Claim and unlink every expired entry; returns the number
      expired — the background TTL-churn primitive. *)

  val flush : ctx -> unit

  val drain_shard : ctx -> shard:int -> unit
  (** Eagerly eject one shard's runtime from the caller's handle until
      its backlog stops shrinking — the recovery-drill drain after an
      {!abandon_shard}. *)

  (** {1 Accounting and observability} *)

  val size : t -> now:int -> int
  val live_objects : t -> int
  val peak_objects : t -> int
  val reset_peak : t -> unit

  val retired_backlog : t -> int
  (** Deferred decrements/disposals parked across all shards. *)

  val shard_backlog : t -> shard:int -> int
  val watchdog_check : t -> string option
  val control : t -> Smr.Knobs.handle list
  val shard_control : t -> shard:int -> Smr.Knobs.handle list
  val counters : t -> counters

  (** {1 Fault scenarios} *)

  val stall_enter : ctx -> shard:int -> unit
  (** Open a critical section on one shard and keep it open — a
      stalled request handler pinning that shard's reclamation
      frontier. *)

  val stall_exit : ctx -> shard:int -> unit

  val abandon_shard : t -> shard:int -> pid:int -> unit
  (** Recovery: abandon [pid]'s resources on one shard's runtime
      (close its critical section, adopt its parked retirements).
      Call only after the pid has truly stopped touching the shard. *)

  val teardown : t -> unit
  (** Clear every bucket and quiesce every shard; afterwards
      [live_objects t = 0] on a leak-free run. *)
end
