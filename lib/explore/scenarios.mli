(** Schedule-exploration scenarios (DESIGN.md §8): the lock-free
    kernels — sticky counter, announcement slots, CDRC weak upgrade —
    instantiated over [Sched.Traced] and packaged as {!Sched.scenario}
    values for the DFS/PCT/random explorers. Builders taking [?mutate]
    produce, when set, a deliberately broken variant (a seeded protocol
    bug) that exploration must catch; the functor instantiations and
    per-scenario plumbing are internal. *)

val sticky_one_death : ?mutate:bool -> domains:int -> ops:int -> unit -> Sched.scenario
(** [domains] fibers each run [ops] paired increment/decrement bursts;
    the check asserts exactly one death credit was granted (Fig 7).
    [mutate] drops the zero-confirmation re-read. *)

val sticky_load_vs_decrement : ?mutate:bool -> ?loads:int -> unit -> Sched.scenario
(** Loads racing the killing decrement: the zero/help-flag dance.
    [mutate] omits the help-flag publish, losing a death credit. *)

(** Operation alphabet for the linearizability-style sticky harness. *)
type sticky_op = Inc | Dec | Load

val pp_sticky_op : Format.formatter -> sticky_op -> unit

val sticky_model : int -> sticky_op -> int * int
(** Sequential specification: [sticky_model count op] returns the next
    count and the op's observed result ([Load] sees the count; [Inc]
    and [Dec] report the count they produced). *)

val sticky_lincheck : ?mutate:bool -> seqs:sticky_op list array -> unit -> Sched.scenario
(** Run one fixed op sequence per fiber and check the concurrent
    history against {!sticky_model} over all linearizations. *)

val slots_reclaim : ?mutate:bool -> unit -> Sched.scenario
(** Acquire-retire announcement slots: a protected reader races
    retire+eject; no use-after-free (Fig 2). [mutate] skips the
    confirm re-read, the classic protect bug. *)

val weak_upgrade : unit -> Sched.scenario
(** CDRC weak upgrade vs the final strong drop: dispose exactly once,
    free exactly once (Figs 8-9). *)

val racy_counter : unit -> Sched.scenario
(** Harness self-check: a deliberately racy read-modify-write whose
    lost update MUST be found by exploration. *)
