(** Target registry and runner for the schedule-exploration harness:
    the named scenarios the [cdrc-bench explore] subcommand and the CI
    smoke stage drive. See {!Scenarios} for the scenarios themselves
    and [Sched] for the explorers. *)

module Scenarios = Scenarios
module San_scenarios = San_scenarios

type target = {
  t_name : string;
  t_doc : string;
  t_mk : unit -> Sched.scenario;
  t_expect_fail : bool;
      (** Mutants and deliberate bugs: finding a counterexample is the
          passing outcome, and surviving exploration is the failure —
          these targets prove the harness can detect the real bug. *)
}

let targets =
  [
    {
      t_name = "sticky-one-death";
      t_doc = "sticky counter: 2 domains x 3 inc/dec bursts, exactly one death credit (Fig 7)";
      t_mk = (fun () -> Scenarios.sticky_one_death ~domains:2 ~ops:3 ());
      t_expect_fail = false;
    };
    {
      t_name = "sticky-load-vs-dec";
      t_doc = "sticky counter: loads racing the killing decrement (zero/help-flag dance)";
      t_mk = (fun () -> Scenarios.sticky_load_vs_decrement ());
      t_expect_fail = false;
    };
    {
      t_name = "sticky-drop-help";
      t_doc = "MUTANT: load omits the help-flag publish; the lost death credit must be found";
      t_mk = (fun () -> Scenarios.sticky_load_vs_decrement ~mutate:true ());
      t_expect_fail = true;
    };
    {
      t_name = "slots";
      t_doc = "acquire-retire announcement slots: reader vs retire+eject, no UAF (Fig 2)";
      t_mk = (fun () -> Scenarios.slots_reclaim ());
      t_expect_fail = false;
    };
    {
      t_name = "slots-skip-validate";
      t_doc = "MUTANT: reader skips the confirm re-read; the use-after-free must be found";
      t_mk = (fun () -> Scenarios.slots_reclaim ~mutate:true ());
      t_expect_fail = true;
    };
    {
      t_name = "weak-upgrade";
      t_doc = "CDRC weak upgrade vs final strong drop: dispose once, free once (Figs 8-9)";
      t_mk = (fun () -> Scenarios.weak_upgrade ());
      t_expect_fail = false;
    };
    {
      t_name = "racy-counter";
      t_doc = "harness self-check: a racy RMW whose lost update MUST be found";
      t_mk = (fun () -> Scenarios.racy_counter ());
      t_expect_fail = true;
    };
  ]

let find name = List.find_opt (fun t -> t.t_name = name) targets

(* Sanitized targets ([cdrc-bench explore --sanitize], DESIGN.md §14):
   the same kernels wrapped so an [Analysis.Race_monitor] checks each
   explored schedule for lifetime-rule violations. The clean targets
   assert zero false positives under exhaustive DFS; the MUTANT targets
   carry seeded protocol bugs the sanitizer must catch, naming the two
   racing operations. *)
let san_targets =
  [
    {
      t_name = "san-slots";
      t_doc = "sanitized announcement slots: reader vs retire+eject, zero violations (Fig 2)";
      t_mk = (fun () -> San_scenarios.san_slots ());
      t_expect_fail = false;
    };
    {
      t_name = "san-slots-drop-acquire";
      t_doc = "MUTANT: the announcement write is dropped; the unprotected access must be caught";
      t_mk = (fun () -> San_scenarios.san_slots ~mutate:true ());
      t_expect_fail = true;
    };
    {
      t_name = "san-handoff";
      t_doc = "sanitized ownership hand-off: deref ordered before free by the ack edge";
      t_mk = (fun () -> San_scenarios.san_handoff ());
      t_expect_fail = false;
    };
    {
      t_name = "san-handoff-retire-early";
      t_doc = "MUTANT: retire+free reordered before the hand-off; the racing deref must be caught";
      t_mk = (fun () -> San_scenarios.san_handoff ~mutate:true ());
      t_expect_fail = true;
    };
    {
      t_name = "san-weak-upgrade";
      t_doc = "sanitized CDRC strong-counter ledger: upgrades and drops balance exactly (Figs 8-9)";
      t_mk = (fun () -> San_scenarios.san_weak_upgrade ());
      t_expect_fail = false;
    };
    {
      t_name = "san-rc-extra-dec";
      t_doc = "MUTANT: one fiber drops its strong reference twice; the ledger must flag it";
      t_mk = (fun () -> San_scenarios.san_weak_upgrade ~mutate:true ());
      t_expect_fail = true;
    };
  ]

let find_san name = List.find_opt (fun t -> t.t_name = name) san_targets

type mode = Dfs | Pct | Random

let mode_of_string = function
  | "dfs" -> Some Dfs
  | "pct" -> Some Pct
  | "random" -> Some Random
  | _ -> None

let run_target (t : target) ~mode ~seed ~iters ~max_preemptions ~max_steps ~depth
    ~(replay : int list option) : Sched.result =
  match replay with
  | Some trace -> Sched.replay ~max_steps ~trace t.t_mk
  | None -> (
      match mode with
      | Dfs -> Sched.explore_dfs ~max_steps ?max_preemptions t.t_mk
      | Pct -> Sched.explore_pct ~max_steps ~iters ~depth ~seed t.t_mk
      | Random -> Sched.explore_random ~max_steps ~iters ~seed t.t_mk)

(** Interpret an exploration result against the target's expectation;
    returns the process exit code (0 = the harness behaved as the
    target demands) and prints a human report, including the replay
    recipe for any counterexample. *)
let report ppf (t : target) (r : Sched.result) : int =
  match (r, t.t_expect_fail) with
  | Sched.Pass { schedules }, false ->
      Format.fprintf ppf "%s: pass (%d schedules, no counterexample)@." t.t_name schedules;
      0
  | Sched.Pass { schedules }, true ->
      Format.fprintf ppf
        "%s: MUTANT SURVIVED %d schedules — the harness failed to find the injected bug@."
        t.t_name schedules;
      1
  | Sched.Exhausted { schedules }, _ ->
      Format.fprintf ppf "%s: inconclusive — schedule budget exhausted after %d schedules@."
        t.t_name schedules;
      1
  | Sched.Fail f, true ->
      Format.fprintf ppf "%s: mutant caught after %d schedules (%s)@.  schedule %a@." t.t_name
        f.Sched.f_schedules f.Sched.f_message Sched.pp_trace f.Sched.f_trace;
      0
  | Sched.Fail f, false ->
      Format.fprintf ppf "%s: COUNTEREXAMPLE after %d schedules:@.  %s@.  schedule %a@.  replay: %s@."
        t.t_name f.Sched.f_schedules f.Sched.f_message Sched.pp_trace f.Sched.f_trace
        f.Sched.f_replay;
      1
