(* Sanitized schedule-exploration scenarios (DESIGN.md §14): the same
   lock-free kernels as {!Scenarios}, wrapped so every protocol event —
   block registration, guard announcement, deref, retire, free,
   reference-count traffic — is reported to an
   [Analysis.Race_monitor]. The monitor also taps every [Sched.Traced]
   atomic op (via the tracer hook its [create] installs), so it knows
   the happens-before structure of the schedule being executed and can
   name the two racing operations the moment a lifetime rule breaks.

   Each builder creates a fresh monitor per [mk ()] call; the
   controller clears the tracer hook when the run finishes, so monitors
   never leak across schedules. *)

module Slots_t = Acquire_retire.Slot_protocol.Make (Sched.Traced)
module Cell_t = Cdrc.Rc_cell.Make (Sched.Traced)
module Mon = Analysis.Race_monitor
module T = Sched.Traced

(* ------------------------------------------------------------------ *)
(* Announcement slots under the sanitizer (Fig 2) *)

(** {!Scenarios.slots_reclaim} with the monitor watching: the reader
    reports its guard {e as the slot actually stands} (read back via
    [Slot_protocol.announcement] — a dropped announcement write must
    not earn phantom coverage) and its deref; the reclaimer reports
    retire and free. Clean runs are violation-free: a deref of the
    retired-but-announced block is covered by the guard (rule a), and
    the slot-release write → eject-scan read edge orders every deref
    before the free (rule b). With [mutate] the announcement write in
    [acquire] is dropped (and the settle loop skipped, since [confirm]
    would silently repair the slot): eject can no longer see the
    reader, and the sanitizer must catch the unprotected access — as a
    racing deref-vs-retire or an unordered deref-vs-free pair. *)
let san_slots ?(mutate = false) () : Sched.scenario =
  let mon = Mon.create ~fibers:2 () in
  let heap = Simheap.create ~name:"san-slots" () in
  let b1 = Simheap.alloc heap and b2 = Simheap.alloc heap in
  Mon.register mon ~ident:1;
  Mon.register mon ~ident:2;
  let block_of = function
    | 1 -> b1
    | 2 -> b2
    | id -> failwith (Printf.sprintf "unknown ident %d" id)
  in
  let proto = Slots_t.create ~max_threads:2 () in
  proto.Slots_t.mutation_drop_acquire := mutate;
  let loc = T.make 1 in
  {
    Sched.fibers =
      [|
        (fun () ->
          let v, g = Slots_t.protect_read proto ~pid:0 ~read:(fun () -> T.get loc) in
          (* Report the announcement as it actually stands: only a slot
             that really carries [v] holds eject back. *)
          if Slots_t.announcement proto g = v then Mon.acquire mon ~ident:v;
          Mon.deref mon ~ident:v;
          Simheap.check_live (block_of v);
          Mon.release mon ~ident:v;
          Slots_t.release proto ~pid:0 g);
        (fun () ->
          T.set loc 2;
          Mon.retire mon ~ident:1;
          Slots_t.retire proto ~pid:1 1 (fun () ->
              Mon.free mon ~ident:1;
              Simheap.free b1);
          ignore (Slots_t.eject proto ~pid:1));
      |];
    check =
      (fun () ->
        (* The reader has released: a final eject must reclaim node 1
           (the free event lands in the oracle context, which follows
           every fiber — ordered by construction). *)
        ignore (Slots_t.eject proto ~pid:1);
        Mon.check mon;
        let live = Simheap.live heap in
        if live <> 1 then
          failwith (Printf.sprintf "post-run live blocks: expected 1 (node 2), got %d" live));
  }

(* ------------------------------------------------------------------ *)
(* Ownership hand-off (the *_manual transfer idiom) *)

(** Ownership transfer without guards, ordered purely by
    happens-before — the idiom of the [*_manual] structures, where a
    CAS unlink makes the unlinker the node's sole owner. The producer
    unlinks node 1 from [shared] and hands it to the consumer through
    an atomic [mailbox]; the consumer dereferences it and acknowledges
    through [ack]; only after observing the ack does the producer
    retire and free. Both sides poll boundedly (a fixed handful of
    attempts), so every schedule terminates; unconsumed or unfreed
    state is reclaimed by the oracle, whose events are ordered after
    all fibers by construction.

    Clean runs are violation-free: the consumer's deref is ordered
    before the free by the [ack] write → read edge. With [mutate] the
    producer retires {e before} the hand-off — and frees immediately,
    never waiting for the ack: any schedule in which the consumer
    receives the node trips the sanitizer, either as a use-after-free
    deref (rule a) or as a deref not ordered before the free
    (rule b). *)
let san_handoff ?(mutate = false) () : Sched.scenario =
  let mon = Mon.create ~fibers:2 () in
  let heap = Simheap.create ~name:"san-handoff" () in
  let b1 = Simheap.alloc heap in
  Mon.register mon ~ident:1;
  let shared = T.make 1 in
  let mailbox = T.make 0 in
  let ack = T.make 0 in
  let free_node () =
    Mon.free mon ~ident:1;
    Simheap.free b1
  in
  let producer () =
    let v = T.exchange shared 0 in
    if v <> 0 then
      if mutate then begin
        (* BUG under test: retire + free reordered before the hand-off. *)
        Mon.retire mon ~ident:v;
        free_node ();
        T.set mailbox v
      end
      else begin
        T.set mailbox v;
        let rec poll k =
          if k = 0 then false
          else if T.get ack = 1 then true
          else poll (k - 1)
        in
        if poll 3 then begin
          Mon.retire mon ~ident:v;
          free_node ()
        end
      end
  in
  let consumer () =
    let rec take k =
      if k = 0 then 0
      else
        let v = T.exchange mailbox 0 in
        if v <> 0 then v else take (k - 1)
    in
    match take 3 with
    | 0 -> ()
    | v ->
        Mon.deref mon ~ident:v;
        Simheap.check_live b1;
        T.set ack 1
  in
  {
    Sched.fibers = [| producer; consumer |];
    check =
      (fun () ->
        Mon.check mon;
        (* Quiesce: whatever survived the bounded polls is reclaimed
           here, in the oracle context. *)
        if Simheap.is_live b1 then free_node ();
        if Simheap.live heap <> 0 then
          failwith (Printf.sprintf "leak: %d block(s) never freed" (Simheap.live heap)));
  }

(* ------------------------------------------------------------------ *)
(* CDRC strong counter ledger (Figs 8–9) *)

(** {!Scenarios.weak_upgrade} with the strong counter's traffic fed to
    the monitor's reference-count ledger (rule c): every successful
    upgrade reports an increment, every strong decrement reports
    itself and whether it took the death credit. Clean runs balance
    exactly; with [mutate] the first fiber drops its strong reference
    {e twice} — the classic double-decrement — and the ledger must
    flag the duplicated decrement (or duplicated death credit) at the
    offending operation. *)
let san_weak_upgrade ?(mutate = false) () : Sched.scenario =
  let mon = Mon.create ~fibers:2 () in
  let heap = Simheap.create ~name:"san-weak" () in
  let block = Simheap.alloc heap in
  let cell = Cell_t.make 42 in
  let cell_id = 1 in
  Mon.rc_register mon ~ident:cell_id ~count:1;
  if not (Cell_t.weak_increment_if_not_zero cell) then failwith "setup weak_increment";
  let drop_strong () =
    let death = Cell_t.strong_decrement cell in
    Mon.rc_decr mon ~ident:cell_id ~death;
    if death then begin
      (match Cell_t.take cell with
      | Some _ -> ()
      | None -> failwith "double dispose");
      if Cell_t.weak_decrement cell then Simheap.free block
    end
  in
  let drop_weak () = if Cell_t.weak_decrement cell then Simheap.free block in
  {
    Sched.fibers =
      [|
        (fun () ->
          drop_strong ();
          (* BUG under test: a second drop of a reference this fiber no
             longer owns. *)
          if mutate then drop_strong ());
        (fun () ->
          if Cell_t.try_upgrade cell then begin
            Mon.rc_incr mon ~ident:cell_id;
            (match Cell_t.read cell with
            | Some _ -> ()
            | None -> failwith "successful upgrade observed a disposed value");
            Simheap.check_live block;
            drop_strong ()
          end;
          drop_weak ());
      |];
    check =
      (fun () ->
        Mon.check mon;
        if Simheap.live heap <> 0 then
          failwith
            (Printf.sprintf "leak: %d control block(s) never freed" (Simheap.live heap));
        let s = Cell_t.strong_count cell and w = Cell_t.weak_count cell in
        if s <> 0 || w <> 0 then
          failwith (Printf.sprintf "final counts: strong=%d weak=%d (expected 0/0)" s w));
  }
