(** Target registry and runner for the schedule-exploration harness:
    the named scenarios the [cdrc-bench explore] subcommand and the CI
    smoke/sanitize stages drive. See {!Scenarios} and
    {!San_scenarios} for the scenarios themselves and [Sched] for the
    explorers. *)

module Scenarios = Scenarios
module San_scenarios = San_scenarios

type target = {
  t_name : string;
  t_doc : string;
  t_mk : unit -> Sched.scenario;
  t_expect_fail : bool;
      (** Mutants and deliberate bugs: finding a counterexample is the
          passing outcome, and surviving exploration is the failure —
          these targets prove the harness can detect the real bug. *)
}

val targets : target list
(** The plain exploration registry ([cdrc-bench explore]). *)

val find : string -> target option

val san_targets : target list
(** The sanitized registry ([cdrc-bench explore --sanitize],
    DESIGN.md §14): each kernel wrapped so an [Analysis.Race_monitor]
    checks every explored schedule for lifetime-rule violations. Clean
    targets assert zero false positives under exhaustive DFS; MUTANT
    targets carry seeded protocol bugs the sanitizer must catch. *)

val find_san : string -> target option

type mode = Dfs | Pct | Random

val mode_of_string : string -> mode option

val run_target :
  target ->
  mode:mode ->
  seed:int ->
  iters:int ->
  max_preemptions:int option ->
  max_steps:int ->
  depth:int ->
  replay:int list option ->
  Sched.result
(** Run one target under the given explorer (or replay one pinned
    schedule when [replay] is set). *)

val report : Format.formatter -> target -> Sched.result -> int
(** Interpret an exploration result against the target's expectation;
    returns the process exit code (0 = the harness behaved as the
    target demands) and prints a human report, including the replay
    recipe for any counterexample. *)
