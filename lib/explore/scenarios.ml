(* Schedule-exploration scenarios for the lock-free cores: each
   builder returns a fresh [Sched.scenario] — simulated domains as
   cooperative fibers plus a final-state oracle — over the traced
   instantiations of the functorized cores. Verdicts come from three
   oracle families: protocol invariants (death credits, dispose-once),
   [Simheap] (use-after-free / double-free / leak), and [Lincheck]
   (history linearizability against the sequential model). *)

module Sticky_t = Sticky.Sticky_counter_f.Make (Sched.Traced)
module Slots_t = Acquire_retire.Slot_protocol.Make (Sched.Traced)
module Cell_t = Cdrc.Rc_cell.Make (Sched.Traced)
module T = Sched.Traced

(* ------------------------------------------------------------------ *)
(* Sticky counter (Fig 7) *)

(** [domains] fibers each own one unit of the count and run [ops]
    increment/decrement bursts before dropping their unit. Oracle:
    exactly one decrement overall takes the death credit, the counter
    reads 0 afterwards, and stays stuck. The traced twin of
    test_sticky's parallel stress. *)
let sticky_one_death ?(mutate = false) ~domains ~ops () : Sched.scenario =
  Sticky_t.mutation_drop_help_publish := mutate;
  let c = Sticky_t.create domains in
  let deaths = ref 0 in
  let fiber _i () =
    for _ = 1 to ops do
      if Sticky_t.increment_if_not_zero c then
        if Sticky_t.decrement c then incr deaths
    done;
    (* drop our owned unit *)
    if Sticky_t.decrement c then incr deaths
  in
  {
    Sched.fibers = Array.init domains (fun i -> fiber i);
    check =
      (fun () ->
        if !deaths <> 1 then
          failwith (Printf.sprintf "death credits: expected 1, got %d" !deaths);
        let v = Sticky_t.load c in
        if v <> 0 then failwith (Printf.sprintf "post-death load: expected 0, got %d" v);
        if Sticky_t.increment_if_not_zero c then
          failwith "increment revived a dead counter");
  }

(** One fiber loads [loads] times while another drops the only unit:
    the load either sees the old value or helps announce the death
    (the zero-flag/help-flag dance). Oracles: exactly one death
    credit, and the observed loads are monotone non-increasing in
    {0, 1}. With [mutate] the load "forgets" to publish the help flag
    — the decrement then loses its credit, which the explorer must
    detect. *)
let sticky_load_vs_decrement ?(mutate = false) ?(loads = 2) () : Sched.scenario =
  Sticky_t.mutation_drop_help_publish := mutate;
  let c = Sticky_t.create 1 in
  let deaths = ref 0 in
  let seen = ref [] in
  {
    Sched.fibers =
      [|
        (fun () ->
          for _ = 1 to loads do
            seen := Sticky_t.load c :: !seen
          done);
        (fun () -> if Sticky_t.decrement c then incr deaths);
      |];
    check =
      (fun () ->
        if !deaths <> 1 then
          failwith (Printf.sprintf "death credits: expected 1, got %d" !deaths);
        let rec monotone prev = function
          | [] -> true
          | v :: rest -> v >= 0 && v <= 1 && v <= prev && monotone v rest
        in
        if not (monotone max_int (List.rev !seen)) then
          failwith
            ("loads not monotone non-increasing in {0,1}: "
            ^ String.concat "," (List.map string_of_int (List.rev !seen))));
  }

(* ---- sticky counter vs. its sequential model, via Lincheck ---- *)

type sticky_op = Inc | Dec | Load

let pp_sticky_op ppf = function
  | Inc -> Format.fprintf ppf "inc"
  | Dec -> Format.fprintf ppf "dec"
  | Load -> Format.fprintf ppf "load"

(* Sequential specification: a non-negative count, stuck at zero.
   Results are encoded as ints: Inc -> 0/1 (failed/succeeded),
   Dec -> 0/1 (survived/took the death credit), Load -> the value. *)
let sticky_model count op =
  match op with
  | Inc -> if count > 0 then (count + 1, 1) else (count, 0)
  | Dec -> if count >= 1 then (count - 1, if count = 1 then 1 else 0) else (count, -1)
  | Load -> (count, count)

(** Run one scripted op sequence per fiber against a shared counter
    (each fiber starts owning one unit; a [Dec] is skipped unless the
    fiber owns a unit, honoring the API precondition; leftover units
    are dropped at the end), recording every operation with logical
    invocation/response stamps. Oracle: the recorded history is
    linearizable against the sequential model — the schedule-exploration
    port of test_sticky's qcheck property. *)
let sticky_lincheck ?(mutate = false) ~(seqs : sticky_op list array) () : Sched.scenario =
  Sticky_t.mutation_drop_help_publish := mutate;
  let nfibers = Array.length seqs in
  let c = Sticky_t.create nfibers in
  let rec_ : (sticky_op, int) Lincheck.Recorder.t = Lincheck.Recorder.create () in
  (* Yield inside the recorded window so other fibers' steps land
     between a recorded op's invocation and response stamps — otherwise
     histories could never overlap. *)
  let recorded thread op f =
    Lincheck.Recorder.run rec_ ~thread op (fun () ->
        Sched.yield ();
        f ())
  in
  let fiber i () =
    let units = ref 1 in
    List.iter
      (fun op ->
        match op with
        | Inc ->
            if recorded i Inc (fun () -> if Sticky_t.increment_if_not_zero c then 1 else 0)
               = 1
            then incr units
        | Dec ->
            if !units > 0 then begin
              decr units;
              ignore (recorded i Dec (fun () -> if Sticky_t.decrement c then 1 else 0))
            end
        | Load -> ignore (recorded i Load (fun () -> Sticky_t.load c)))
      seqs.(i);
    while !units > 0 do
      decr units;
      ignore (recorded i Dec (fun () -> if Sticky_t.decrement c then 1 else 0))
    done
  in
  {
    Sched.fibers = Array.init nfibers fiber;
    check =
      (fun () ->
        match
          Lincheck.check_or_explain ~model:sticky_model ~equal_res:( = )
            ~pp_op:pp_sticky_op
            ~pp_res:(fun ppf r -> Format.fprintf ppf "%d" r)
            ~init:nfibers (Lincheck.Recorder.history rec_)
        with
        | Ok () -> ()
        | Error msg -> failwith msg);
  }

(* ------------------------------------------------------------------ *)
(* Acquire–retire announcement slots (Fig 2) *)

(** A reader protects and dereferences whatever a shared location
    holds while a reclaimer swings the location from node 1 to node 2,
    retires node 1 and ejects. Oracles: [Simheap] (the deref must
    never hit a freed block, freeing must happen exactly once) and no
    leak once the reader has released. With [mutate] the reader skips
    the confirm re-read after announcing — the classic validation
    elision, which opens a use-after-free window the explorer must
    find. *)
let slots_reclaim ?(mutate = false) () : Sched.scenario =
  let heap = Simheap.create ~name:"sched-slots" () in
  let b1 = Simheap.alloc heap and b2 = Simheap.alloc heap in
  let block_of = function
    | 1 -> b1
    | 2 -> b2
    | id -> failwith (Printf.sprintf "unknown ident %d" id)
  in
  let proto = Slots_t.create ~max_threads:2 () in
  proto.Slots_t.mutation_skip_validate := mutate;
  let loc = T.make 1 in
  {
    Sched.fibers =
      [|
        (fun () ->
          let v, g = Slots_t.protect_read proto ~pid:0 ~read:(fun () -> T.get loc) in
          Simheap.check_live (block_of v);
          Slots_t.release proto ~pid:0 g);
        (fun () ->
          T.set loc 2;
          Slots_t.retire proto ~pid:1 1 (fun () -> Simheap.free b1);
          ignore (Slots_t.eject proto ~pid:1));
      |];
    check =
      (fun () ->
        (* The reader has released: a final eject must reclaim node 1. *)
        ignore (Slots_t.eject proto ~pid:1);
        let live = Simheap.live heap in
        if live <> 1 then
          failwith (Printf.sprintf "post-run live blocks: expected 1 (node 2), got %d" live));
  }

(* ------------------------------------------------------------------ *)
(* CDRC weak-pointer upgrade (Figs 8–9) *)

(** The owner of the last strong reference races a weak-pointer
    upgrade: drop-strong → dispose → weak-decrement → free on one
    side, increment-if-not-zero → deref on the other. Oracles: a
    successful upgrade must observe the value (never the disposed
    [None]) and a live block; disposal happens exactly once; the block
    is freed exactly once and nothing leaks ([Simheap]); both counters
    end at zero. *)
let weak_upgrade () : Sched.scenario =
  let heap = Simheap.create ~name:"sched-weak" () in
  let block = Simheap.alloc heap in
  let cell = Cell_t.make 42 in
  (* the weak-holder fiber's own weak unit, on top of the strong
     side's implicit one (Fig 8: weak = #weak + (1 if strong > 0)) *)
  if not (Cell_t.weak_increment_if_not_zero cell) then failwith "setup weak_increment";
  let drop_strong () =
    if Cell_t.strong_decrement cell then begin
      (match Cell_t.take cell with
      | Some _ -> ()
      | None -> failwith "double dispose");
      if Cell_t.weak_decrement cell then Simheap.free block
    end
  in
  let drop_weak () = if Cell_t.weak_decrement cell then Simheap.free block in
  {
    Sched.fibers =
      [|
        (fun () -> drop_strong ());
        (fun () ->
          if Cell_t.try_upgrade cell then begin
            (match Cell_t.read cell with
            | Some _ -> ()
            | None -> failwith "successful upgrade observed a disposed value");
            Simheap.check_live block;
            drop_strong ()
          end;
          drop_weak ());
      |];
    check =
      (fun () ->
        if Simheap.live heap <> 0 then
          failwith (Printf.sprintf "leak: %d control block(s) never freed" (Simheap.live heap));
        let s = Cell_t.strong_count cell and w = Cell_t.weak_count cell in
        if s <> 0 || w <> 0 then
          failwith (Printf.sprintf "final counts: strong=%d weak=%d (expected 0/0)" s w));
  }

(* ------------------------------------------------------------------ *)
(* Harness self-check *)

(** A deliberately racy read-modify-write counter: two fibers each do
    [get; set (v+1)]. The lost-update schedule exists, so the explorer
    MUST find it — if this scenario ever passes exhaustive
    exploration, the harness itself is broken. *)
let racy_counter () : Sched.scenario =
  let c = T.make 0 in
  let bump () =
    let v = T.get c in
    T.set c (v + 1)
  in
  {
    Sched.fibers = [| bump; bump |];
    check =
      (fun () ->
        let v = T.get c in
        if v <> 2 then failwith (Printf.sprintf "lost update: counter = %d, expected 2" v));
  }
