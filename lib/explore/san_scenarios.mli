(** Sanitized schedule-exploration scenarios (DESIGN.md §14): the same
    lock-free kernels as {!Scenarios}, wrapped so every protocol event
    — block registration, guard announcement, deref, retire, free,
    reference-count traffic — is reported to an
    [Analysis.Race_monitor]. The monitor also taps every
    [Sched.Traced] atomic op, so it knows the happens-before structure
    of the schedule being executed and names the two racing operations
    the moment a lifetime rule breaks.

    Each builder creates a fresh monitor per [mk ()] call; the
    scheduler clears the tracer hook when the run finishes, so
    monitors never leak across schedules. With [?mutate] set, each
    builder seeds the protocol bug its registry entry documents. *)

val san_slots : ?mutate:bool -> unit -> Sched.scenario
(** Announcement slots under the sanitizer (Fig 2): clean runs are
    violation-free; [mutate] drops the announcement write in [acquire]
    (and the settle loop, which would repair it), so the unprotected
    access must be caught. *)

val san_handoff : ?mutate:bool -> unit -> Sched.scenario
(** Ownership hand-off ordered purely by happens-before (the
    [*_manual] transfer idiom): producer unlinks, mails the node,
    waits for the ack, then retires and frees. [mutate] retires and
    frees before the hand-off — the racing deref must be caught. *)

val san_weak_upgrade : ?mutate:bool -> unit -> Sched.scenario
(** CDRC strong-counter ledger (Figs 8-9): upgrades and drops must
    balance exactly. [mutate] makes one fiber drop its strong
    reference twice — the duplicated decrement must be flagged. *)
