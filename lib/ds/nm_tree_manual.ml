(** Natarajan–Mittal lock-free external binary search tree (PPoPP
    2014) under manual SMR — the paper's main benchmark structure
    (Figs 11, 13c–f) and its Fig 1a example of how error-prone manual
    retirement is: the cleanup path must retire an entire chain of
    nodes by hand, a loop several published artifacts got wrong.

    Edges carry a {e flag} bit (a leaf removal is in progress through
    this edge) and a {e tag} bit (the edge is frozen and will be
    excised together with its parent). Seek tracks the last untagged
    edge (ancestor → successor); cleanup tags the sibling edge and
    swings the ancestor edge past the whole flagged chain, then retires
    every excised node (the Fig 1a loop).

    Safety caveat, reproduced deliberately: the paper notes (§5.1) that
    HP and IBR are {e not} safe for this tree — seeks can traverse
    frozen edges of logically removed nodes whose targets were already
    reclaimed; "we still include these numbers … even though these
    experiments occasionally crash". Under our simulated heap such an
    access raises [Simheap.Use_after_free] instead of corrupting
    memory; the operation wrappers catch it, release all held guards,
    count the event, and restart — so the benchmark keeps running and
    reports the violation count. EBR and Hyaline are fully safe here.

    Guard discipline: only the ancestor, parent, and current nodes are
    ever dereferenced, so at most four announcement slots are live at a
    time during seeks; the successor is tracked without protection
    because it is only compared and CAS-expected, never read. Range
    queries hold a guard per path node and fall back to unprotected
    reads when slots run out (HP/HE), matching the paper's over-budget
    behaviour. *)

module Make (S : Smr.Smr_intf.S) = struct
  module Ar = Acquire_retire.Make (S)
  module Ident = Smr.Ident

  let name = S.name

  type node = { key : int; left : edge Atomic.t; right : edge Atomic.t }
  and edge = { dest : node Ar.managed option; flag : bool; tag : bool }

  let inf2 = max_int
  let inf1 = max_int - 1
  let clean m = { dest = Some m; flag = false; tag = false }
  let null_edge = { dest = None; flag = false; tag = false }

  type t = {
    ar : Ar.t;
    root : node Ar.managed; (* the R sentinel; never retired *)
    uaf : int Atomic.t; (* unsafe-scheme violations caught and retried *)
    nthreads : int;
    wd : Ar.watchdog;
  }

  type ctx = { t : t; pid : int; mutable held : S.guard list }

  let mk_leaf ar ~pid key =
    Ar.alloc ar ~pid { key; left = Atomic.make null_edge; right = Atomic.make null_edge }

  let mk_internal ar ~pid key l r =
    Ar.alloc ar ~pid { key; left = Atomic.make (clean l); right = Atomic.make (clean r) }

  let create ?slots_per_thread ?epoch_freq ?buckets:_ ~max_threads () =
    let ar = Ar.create ?slots_per_thread ?epoch_freq ~max_threads () in
    (* Sentinels: R(inf2) -> [ S(inf1), leaf(inf2) ];
                  S(inf1) -> [ leaf(inf1), leaf(inf2) ]. *)
    let l_inf1 = mk_leaf ar ~pid:0 inf1 in
    let l_inf2a = mk_leaf ar ~pid:0 inf2 in
    let l_inf2b = mk_leaf ar ~pid:0 inf2 in
    let s = mk_internal ar ~pid:0 inf1 l_inf1 l_inf2a in
    let r = mk_internal ar ~pid:0 inf2 s l_inf2b in
    { ar; root = r; uaf = Atomic.make 0; nthreads = max_threads; wd = Ar.watchdog () }

  let ctx t pid = { t; pid; held = [] }
  let uaf_events t = Atomic.get t.uaf
  let is_leaf node = (Atomic.get node.left).dest = None
  let ident_of e = match e.dest with None -> Ident.null | Some m -> Ident.of_val m

  let edge_eq a b =
    a.flag = b.flag && a.tag = b.tag
    &&
    match (a.dest, b.dest) with
    | None, None -> true
    | Some x, Some y -> x == y
    | _ -> false

  let rec edge_cas cell expected desired =
    let cur = Atomic.get cell in
    if not (edge_eq cur expected) then false
    else if Atomic.compare_and_set cell cur desired then true
    else edge_cas cell expected desired

  (* Protect the destination of the edge in [cell]. [None] guard means
     the announcement slots ran out: proceed unprotected (the paper's
     over-budget HP behaviour). *)
  let protect c cell =
    let smr = Ar.smr c.t.ar in
    if S.confirm_is_trivial then
      match S.try_acquire smr ~pid:c.pid Ident.null with
      | Some g ->
          c.held <- g :: c.held;
          (Atomic.get cell, Some g)
      | None -> (Atomic.get cell, None)
    else
      match S.try_acquire smr ~pid:c.pid (ident_of (Atomic.get cell)) with
      | None -> (Atomic.get cell, None)
      | Some g ->
          c.held <- g :: c.held;
          let rec settle () =
            let v = Atomic.get cell in
            if S.confirm smr ~pid:c.pid g (ident_of v) then (v, Some g) else settle ()
          in
          settle ()

  let release c = function
    | None -> ()
    | Some g ->
        c.held <- List.filter (fun h -> h <> g) c.held;
        S.release (Ar.smr c.t.ar) ~pid:c.pid g

  let release_all c =
    List.iter (fun g -> S.release (Ar.smr c.t.ar) ~pid:c.pid g) c.held;
    c.held <- []

  let run_ejects c =
    match Ar.eject c.t.ar ~pid:c.pid with
    | [] -> ()
    | ops -> List.iter (fun op -> op c.pid) ops

  (* Seek record (paper Fig 1a). Guards: ancestor, parent, leaf; the
     successor is never dereferenced so it carries no guard. *)
  type seek_record = {
    anc : node Ar.managed;
    suc : node Ar.managed;
    par : node Ar.managed;
    leaf : node Ar.managed;
    g_anc : S.guard option;
    g_par : S.guard option;
    g_leaf : S.guard option;
  }

  let discard c s =
    release c s.g_anc;
    release c s.g_par;
    release c s.g_leaf

  let deref (m : node Ar.managed) = Ar.get m

  let seek c key =
    let r = c.t.root in
    let e_s, g_s = protect c (deref r).left in
    let s =
      match e_s.dest with
      | Some m -> m
      | None ->
          release c g_s;
          failwith "nm_tree: corrupt sentinel"
    in
    let anc = ref r and g_anc = ref None in
    let suc = ref s in
    let par = ref s and g_par = ref g_s in
    let e_c, g_c = protect c (deref s).left in
    let cur =
      ref
        (match e_c.dest with
        | Some m -> m
        | None ->
            release c g_c;
            release c !g_par;
            failwith "nm_tree: corrupt sentinel")
    in
    let g_cur = ref g_c in
    let cur_tag = ref e_c.tag in
    let rec walk () =
      let n = deref !cur in
      if not (is_leaf n) then begin
        if not !cur_tag then begin
          (* The edge par->cur is untagged: par/cur become the new
             ancestor/successor. *)
          release c !g_anc;
          g_anc := !g_par;
          anc := !par;
          suc := !cur;
          g_par := None
        end
        else begin
          release c !g_par;
          g_par := None
        end;
        g_par := !g_cur;
        par := !cur;
        let e, g = protect c (if key < n.key then n.left else n.right) in
        (match e.dest with
        | None ->
            (* Internal nodes always have two children; a null edge
               means we read a reclaimed node on an unsafe scheme. *)
            release c g;
            raise (Simheap.Use_after_free "nm_tree: null child of internal node")
        | Some m ->
            cur := m;
            g_cur := g;
            cur_tag := e.tag);
        walk ()
      end
    in
    walk ();
    {
      anc = !anc;
      suc = !suc;
      par = !par;
      leaf = !cur;
      g_anc = !g_anc;
      g_par = !g_par;
      g_leaf = !g_cur;
    }

  (* Excise the flagged chain hanging between ancestor and sibling:
     tag the sibling edge, swing the ancestor edge, and — this being
     the manual version — retire the whole chain by hand (Fig 1a). *)
  let cleanup c key (s : seek_record) =
    let par = deref s.par in
    let child_cell, sibling_cell =
      if key < par.key then (par.left, par.right) else (par.right, par.left)
    in
    let e_child = Atomic.get child_cell in
    let sibling_cell = if e_child.flag then sibling_cell else child_cell in
    let rec tag_sibling () =
      let es = Atomic.get sibling_cell in
      if not es.tag then
        if not (Atomic.compare_and_set sibling_cell es { es with tag = true }) then
          tag_sibling ()
    in
    tag_sibling ();
    let es = Atomic.get sibling_cell in
    let anc = deref s.anc in
    let acell = if key < anc.key then anc.left else anc.right in
    let ok =
      edge_cas acell
        { dest = Some s.suc; flag = false; tag = false }
        { dest = es.dest; flag = es.flag; tag = false }
    in
    if ok then begin
      (* We won the excision: retire the successor..parent chain plus
         the flagged leaves hanging off it. Exactly the loop the paper
         shows is easy to get wrong (Fig 1a); reference counting makes
         it disappear (see Nm_tree_rc). *)
      let stop = es.dest in
      let rec retire_chain (n : node Ar.managed) =
        let at_stop = match stop with Some sib -> n == sib | None -> false in
        if not at_stop then begin
          let node = deref n in
          let el = Atomic.get node.left in
          let er = Atomic.get node.right in
          let excised, next = if el.flag then (el.dest, er.dest) else (er.dest, el.dest) in
          (match excised with
          | Some fm -> Ar.retire_free c.t.ar ~pid:c.pid fm
          | None -> ());
          Ar.retire_free c.t.ar ~pid:c.pid n;
          match next with Some m -> retire_chain m | None -> ()
        end
      in
      retire_chain s.suc;
      run_ejects c
    end;
    ok

  let insert_op c key =
    let rec go () =
      let s = seek c key in
      let leaf = deref s.leaf in
      if leaf.key = key then begin
        discard c s;
        false
      end
      else begin
        let par = deref s.par in
        let cell = if key < par.key then par.left else par.right in
        let new_leaf = mk_leaf c.t.ar ~pid:c.pid key in
        let ikey = max key leaf.key in
        let l, r = if key < leaf.key then (new_leaf, s.leaf) else (s.leaf, new_leaf) in
        let new_internal = mk_internal c.t.ar ~pid:c.pid ikey l r in
        if edge_cas cell (clean s.leaf) (clean new_internal) then begin
          discard c s;
          true
        end
        else begin
          (* Unpublished nodes: reclaim directly. *)
          Simheap.free new_leaf.Ar.block;
          Simheap.free new_internal.Ar.block;
          (* Help the delete that beat us, if any. *)
          let e = Atomic.get cell in
          (match e.dest with
          | Some m when m == s.leaf && (e.flag || e.tag) -> ignore (cleanup c key s)
          | _ -> ());
          discard c s;
          go ()
        end
      end
    in
    go ()

  let remove_op c key =
    let rec cleanup_loop victim =
      let s = seek c key in
      if s.leaf != victim then begin
        (* Someone else finished removing our victim. *)
        discard c s;
        true
      end
      else begin
        let ok = cleanup c key s in
        discard c s;
        if ok then true else cleanup_loop victim
      end
    in
    let rec inject () =
      let s = seek c key in
      if (deref s.leaf).key <> key then begin
        discard c s;
        false
      end
      else begin
        let par = deref s.par in
        let cell = if key < par.key then par.left else par.right in
        if edge_cas cell (clean s.leaf) { dest = Some s.leaf; flag = true; tag = false }
        then begin
          let victim = s.leaf in
          let ok = cleanup c key s in
          discard c s;
          if ok then true else cleanup_loop victim
        end
        else begin
          let e = Atomic.get cell in
          (match e.dest with
          | Some m when m == s.leaf && (e.flag || e.tag) -> ignore (cleanup c key s)
          | _ -> ());
          discard c s;
          inject ()
        end
      end
    in
    inject ()

  (* Read-only descent: protects parent and current only. *)
  let contains_op c key =
    let r = c.t.root in
    let e_s, g_s = protect c (deref r).left in
    let par_g = ref g_s in
    let cur =
      ref
        (match e_s.dest with
        | Some m -> m
        | None ->
            release c g_s;
            failwith "nm_tree: corrupt sentinel")
    in
    let g_cur = ref None in
    (* Swap: initial cur is S, protected by g_s. *)
    g_cur := !par_g;
    par_g := None;
    let rec walk () =
      let n = deref !cur in
      if is_leaf n then begin
        let res = n.key = key in
        release c !g_cur;
        release c !par_g;
        res
      end
      else begin
        let e, g = protect c (if key < n.key then n.left else n.right) in
        match e.dest with
        | None ->
            release c g;
            release c !g_cur;
            release c !par_g;
            raise (Simheap.Use_after_free "nm_tree: null child of internal node")
        | Some m ->
            release c !par_g;
            par_g := !g_cur;
            cur := m;
            g_cur := g;
            walk ()
      end
    in
    walk ()

  (* Sequential range count over [lo, hi): DFS holding one guard per
     path node (paper Fig 11's workload). *)
  let range_op c lo hi =
    let count = ref 0 in
    let rec dfs (m : node Ar.managed) =
      let n = deref m in
      if is_leaf n then begin
        if n.key >= lo && n.key < hi && n.key < inf1 then incr count
      end
      else begin
        if lo < n.key then begin
          let e, g = protect c n.left in
          (match e.dest with Some child -> dfs child | None -> ());
          release c g
        end;
        if hi > n.key then begin
          let e, g = protect c n.right in
          (match e.dest with Some child -> dfs child | None -> ());
          release c g
        end
      end
    in
    let e, g = protect c (deref c.t.root).left in
    (match e.dest with Some s -> dfs s | None -> ());
    release c g;
    !count

  (* ------------------ Set_intf.S wrapper ---------------------------- *)

  (* Operations run inside a critical section; Use_after_free (possible
     under the unsafe schemes, see header) is caught, guards are
     released, the event is counted, and the operation restarts. *)
  let guarded c f =
    let rec attempt () =
      Ar.begin_critical_section c.t.ar ~pid:c.pid;
      match f () with
      | v ->
          Ar.end_critical_section c.t.ar ~pid:c.pid;
          v
      | exception Simheap.Use_after_free _ ->
          release_all c;
          Ar.end_critical_section c.t.ar ~pid:c.pid;
          ignore (Atomic.fetch_and_add c.t.uaf 1);
          attempt ()
      | exception e ->
          release_all c;
          Ar.end_critical_section c.t.ar ~pid:c.pid;
          raise e
    in
    attempt ()

  let insert c key = guarded c (fun () -> insert_op c key)
  let remove c key = guarded c (fun () -> remove_op c key)
  let contains c key = guarded c (fun () -> contains_op c key)
  let range_query c lo hi = guarded c (fun () -> range_op c lo hi)
  let flush c = Ar.drain c.t.ar ~pid:c.pid

  let size t =
    let rec go (m : node Ar.managed) =
      let n = m.Ar.value in
      if is_leaf n then if n.key < inf1 then 1 else 0
      else
        let l = (Atomic.get n.left).dest and r = (Atomic.get n.right).dest in
        (match l with Some x -> go x | None -> 0)
        + (match r with Some x -> go x | None -> 0)
    in
    go t.root

  let live_objects t = Simheap.live (Ar.heap t.ar)
  let peak_objects t = Simheap.peak (Ar.heap t.ar)
  let reset_peak t = Simheap.reset_peak (Ar.heap t.ar)

  let teardown t =
    let rec free_rec (m : node Ar.managed) =
      let n = m.Ar.value in
      (match (Atomic.get n.left).dest with Some x -> free_rec x | None -> ());
      (match (Atomic.get n.right).dest with Some x -> free_rec x | None -> ());
      if Simheap.is_live m.Ar.block then Simheap.free m.Ar.block
    in
    free_rec t.root;
    Ar.quiesce t.ar
  let snapshot_stats _ = None
  let retired_backlog t = Ar.total_pending t.ar
  let control t = [ Ar.handle t.ar ]

  let watchdog_check t =
    match Ar.watchdog_check t.ar t.wd with
    | Ar.Progressing -> None
    | Ar.Stuck { frontier; pending } ->
        Some (Printf.sprintf "%s: stuck (frontier=%d pending=%d)" name frontier pending)
end
