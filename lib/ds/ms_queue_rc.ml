(** Michael–Scott queue under automatic reference counting. Compare
    with {!Ms_queue_manual}: no retire on dequeue, no head/successor
    revalidation dance — snapshots make a stale head's successor safe
    to read (its cell still owns a count unit), and the head CAS's
    deferred decrement reclaims the old dummy. *)

module Make (R : Cdrc.Intf.S) = struct
  let name = R.scheme_name

  type node = { value : int; next : node R.asp }

  type t = { rt : R.rt; head : node R.asp; tail : node R.asp }
  type ctx = { t : t; th : R.thr }

  let mk_node th v =
    R.Shared.make th
      ~destroy:(fun th n -> R.Asp.clear th n.next)
      { value = v; next = R.Asp.make_null () }

  let create ?slots_per_thread ?epoch_freq ~max_threads () =
    let rt = R.create ~support_weak:false ?slots_per_thread ?epoch_freq ~max_threads () in
    let th = R.thread rt 0 in
    let dummy = mk_node th min_int in
    let t =
      {
        rt;
        head = R.Asp.make th (R.Shared.ptr dummy);
        tail = R.Asp.make th (R.Shared.ptr dummy);
      }
    in
    R.Shared.drop th dummy;
    t

  let ctx t pid = { t; th = R.thread t.rt pid }

  let enqueue c v =
    let th = c.th in
    R.critically th @@ fun () ->
    let nu = mk_node th v in
    let rec loop () =
      let lt = R.Asp.get_snapshot th c.t.tail in
      let tnode = R.Snapshot.get lt in
      let nx = R.Asp.get_snapshot th tnode.next in
      if R.Snapshot.is_null nx then begin
        if
          R.Asp.compare_and_swap th tnode.next ~expected:R.Ptr.null
            ~desired:(R.Shared.ptr nu)
        then begin
          ignore
            (R.Asp.compare_and_swap th c.t.tail ~expected:(R.Snapshot.ptr lt ~tag:0)
               ~desired:(R.Shared.ptr nu));
          R.Snapshot.drop th nx;
          R.Snapshot.drop th lt
        end
        else begin
          R.Snapshot.drop th nx;
          R.Snapshot.drop th lt;
          loop ()
        end
      end
      else begin
        (* Help the lagging enqueuer. *)
        ignore
          (R.Asp.compare_and_swap th c.t.tail ~expected:(R.Snapshot.ptr lt ~tag:0)
             ~desired:(R.Snapshot.ptr nx ~tag:0));
        R.Snapshot.drop th nx;
        R.Snapshot.drop th lt;
        loop ()
      end
    in
    loop ();
    R.Shared.drop th nu

  let dequeue c =
    let th = c.th in
    R.critically th @@ fun () ->
    let rec loop () =
      let lh = R.Asp.get_snapshot th c.t.head in
      let hnode = R.Snapshot.get lh in
      let next = R.Asp.get_snapshot th hnode.next in
      if R.Snapshot.is_null next then begin
        R.Snapshot.drop th next;
        R.Snapshot.drop th lh;
        None
      end
      else begin
        (* Help a lagging tail before swinging the head past it. *)
        let lt = R.Asp.unsafe_ptr c.t.tail in
        if R.Ptr.same_object lt (R.Snapshot.ptr lh ~tag:0) then
          ignore
            (R.Asp.compare_and_swap th c.t.tail ~expected:(R.Snapshot.ptr lh ~tag:0)
               ~desired:(R.Snapshot.ptr next ~tag:0));
        if
          R.Asp.compare_and_swap th c.t.head ~expected:(R.Snapshot.ptr lh ~tag:0)
            ~desired:(R.Snapshot.ptr next ~tag:0)
        then begin
          let v = (R.Snapshot.get next).value in
          R.Snapshot.drop th next;
          R.Snapshot.drop th lh;
          Some v
        end
        else begin
          R.Snapshot.drop th next;
          R.Snapshot.drop th lh;
          loop ()
        end
      end
    in
    loop ()

  let flush c = R.flush c.th
  let live_objects t = R.live_objects t.rt
  let retired_backlog t = R.retired_backlog t.rt

  let teardown t =
    let th = R.thread t.rt 0 in
    R.Asp.clear th t.head;
    R.Asp.clear th t.tail;
    R.quiesce t.rt
end
