(** Common interface of the concurrent integer-set data structures
    (Harris–Michael list, Michael hash table, Natarajan–Mittal tree),
    in both manual-SMR and reference-counted versions.

    The benchmark driver ({!Workload}) is a functor over this
    signature, so every workload runs unchanged over every (structure ×
    scheme × manual/automatic) combination — mirroring the paper's
    evaluation matrix (§5.1).

    Each structure owns its runtime (SMR instance or RC runtime) and a
    simulated heap; [live_objects] reports the paper's memory-usage
    metric (allocated-but-unreclaimed blocks). *)

module type S = sig
  val name : string
  (** e.g. ["EBR"] or ["RCEBR"] — the reclamation scheme label. *)

  type t
  type ctx
  (** Per-thread handle; create one per worker with its pid. *)

  val create :
    ?slots_per_thread:int -> ?epoch_freq:int -> ?buckets:int -> max_threads:int -> unit -> t
  (** [buckets] is meaningful only for the hash table (default 2^16);
      the list and tree ignore it. *)

  val ctx : t -> int -> ctx

  val insert : ctx -> int -> bool
  (** [insert c k]: [true] if [k] was absent and is now present. *)

  val remove : ctx -> int -> bool
  (** [remove c k]: [true] if [k] was present and is now absent. *)

  val contains : ctx -> int -> bool

  val range_query : ctx -> int -> int -> int
  (** [range_query c lo hi]: number of keys in [\[lo, hi)], collected by
      a sequential (non-linearizable) traversal, as in the paper's
      Fig 11 workload. *)

  val flush : ctx -> unit
  (** Apply pending reclamation for this thread (between phases). *)

  val size : t -> int
  (** Sequential size; call only at quiescence. *)

  val live_objects : t -> int
  (** Allocated-but-unreclaimed node count (includes nodes awaiting
      deferred reclamation). *)

  val peak_objects : t -> int
  val reset_peak : t -> unit

  val snapshot_stats : t -> (int * int) option
  (** RC versions: (fast, slow) snapshot path counts (Fig 11's fallback
      mechanism); [None] for manual versions. *)

  val uaf_events : t -> int
  (** Use-after-free violations caught and retried (non-zero only for
      the NM tree under the unsafe schemes — paper §5.1's "occasionally
      crash" caveat). *)

  val retired_backlog : t -> int
  (** Entries retired but not yet reclaimed, summed over all threads —
      the quantity the driver's sampler publishes as the
      [driver.retired_backlog] gauge. *)

  val watchdog_check : t -> string option
  (** Sample the structure's reclamation-progress watchdog ([Some
      verdict] when reclamation is stuck behind a pinned frontier while
      garbage accumulates, [None] otherwise). The driver's sampler
      calls this periodically and collects verdicts into
      [result.watchdog_verdicts]. *)

  val control : t -> Smr.Knobs.handle list
  (** The structure's CONTROLLABLE surface: one knob handle per
      underlying scheme instance (one for manual structures, three —
      strong/weak/dispose — for RC ones). The driver's sampler hands
      these to the adaptive controller when [--adapt] is on. *)

  val teardown : t -> unit
  (** Free every node and apply all deferred operations; afterwards
      [live_objects t = 0] unless the structure leaked. Quiescent-only. *)
end
