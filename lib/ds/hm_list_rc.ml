(** Harris–Michael list set under {e automatic} reference counting —
    the RC side of the paper's list benchmark (Fig 13a), written
    against the scheme-agnostic {!Cdrc.Intf.S}, so the same code is
    RCEBR, RCIBR, RCHyaline, RCHP, or RCHE depending on instantiation.

    Note what is {e absent} compared to {!Hm_list_manual}: no [retire]
    calls, no announcement bookkeeping, no [*prev == cur] revalidation
    — unlinking a node through a CAS automatically defers the
    decrement of its reference count, and snapshots guarantee their
    target stays readable (the paper's Fig 1 contrast). *)

module Make (R : Cdrc.Intf.S) = struct
  let name = R.scheme_name

  type node = { key : int; next : node R.asp }

  type t = { rt : R.rt; head : node R.asp }
  type ctx = { t : t; th : R.thr }

  let create ?slots_per_thread ?epoch_freq ?buckets:_ ~max_threads () =
    {
      rt =
        R.create ~support_weak:false ?slots_per_thread ?epoch_freq ~max_threads ();
      head = R.Asp.make_null ();
    }

  let ctx t pid = { t; th = R.thread t.rt pid }

  let mk_node th key next_ptr =
    R.Shared.make th ~destroy:(fun th v -> R.Asp.clear th v.next) { key; next = R.Asp.make th next_ptr }

  type cursor = {
    found : bool;
    prev : node R.asp; (* the cell that links to [cur] *)
    prev_s : node R.snapshot; (* keeps prev's node alive; null for head *)
    cur : node R.snapshot;
  }

  let discard c cu =
    R.Snapshot.drop c.th cu.prev_s;
    R.Snapshot.drop c.th cu.cur

  exception Restart

  let rec search c head key =
    match search_once c head key with cu -> cu | exception Restart -> search c head key

  and search_once c head key =
    let th = c.th in
    let prev = ref head in
    let prev_s = ref (R.Snapshot.null ()) in
    let cur = ref (R.Asp.get_snapshot th head) in
    let abort () =
      R.Snapshot.drop th !cur;
      R.Snapshot.drop th !prev_s;
      raise Restart
    in
    let rec loop () =
      if R.Snapshot.is_null !cur then
        { found = false; prev = !prev; prev_s = !prev_s; cur = !cur }
      else begin
        let node = R.Snapshot.get !cur in
        let next = R.Asp.get_snapshot th node.next in
        if R.Snapshot.is_marked next then begin
          (* cur is logically deleted: unlink it. The CAS's deferred
             decrement replaces the whole retire loop of the manual
             version. *)
          if
            R.Asp.compare_and_swap th !prev
              ~expected:(R.Snapshot.ptr !cur ~tag:0)
              ~desired:(R.Snapshot.ptr next ~tag:0)
          then begin
            R.Snapshot.drop th !cur;
            cur := next;
            loop ()
          end
          else begin
            R.Snapshot.drop th next;
            abort ()
          end
        end
        else if node.key >= key then begin
          R.Snapshot.drop th next;
          { found = node.key = key; prev = !prev; prev_s = !prev_s; cur = !cur }
        end
        else begin
          R.Snapshot.drop th !prev_s;
          prev_s := !cur;
          prev := node.next;
          cur := next;
          loop ()
        end
      end
    in
    loop ()

  let insert_at c head key =
    let th = c.th in
    let rec go () =
      let cu = search c head key in
      if cu.found then begin
        discard c cu;
        false
      end
      else begin
        let fresh = mk_node th key (R.Snapshot.ptr cu.cur ~tag:0) in
        if
          R.Asp.compare_and_swap th cu.prev
            ~expected:(R.Snapshot.ptr cu.cur ~tag:0)
            ~desired:(R.Shared.ptr fresh)
        then begin
          R.Shared.drop th fresh;
          discard c cu;
          true
        end
        else begin
          R.Shared.drop th fresh;
          discard c cu;
          go ()
        end
      end
    in
    go ()

  let remove_at c head key =
    let th = c.th in
    let rec go () =
      let cu = search c head key in
      if not cu.found then begin
        discard c cu;
        false
      end
      else begin
        let node = R.Snapshot.get cu.cur in
        let next = R.Asp.get_snapshot th node.next in
        if R.Snapshot.is_marked next then begin
          R.Snapshot.drop th next;
          discard c cu;
          go ()
        end
        else if R.Asp.try_mark th node.next ~expected:(R.Snapshot.ptr next ~tag:0) then begin
          (* Owned deletion: attempt the unlink; a later search finishes
             it otherwise. *)
          if
            not
              (R.Asp.compare_and_swap th cu.prev
                 ~expected:(R.Snapshot.ptr cu.cur ~tag:0)
                 ~desired:(R.Snapshot.ptr next ~tag:0))
          then begin
            let cu2 = search c head key in
            discard c cu2
          end;
          R.Snapshot.drop th next;
          discard c cu;
          true
        end
        else begin
          R.Snapshot.drop th next;
          discard c cu;
          go ()
        end
      end
    in
    go ()

  (* Read-only traversal: marked nodes are passed through. *)
  let contains_at c head key =
    let th = c.th in
    let prev_s = ref (R.Snapshot.null ()) in
    let cur = ref (R.Asp.get_snapshot th head) in
    let finish result =
      R.Snapshot.drop th !cur;
      R.Snapshot.drop th !prev_s;
      result
    in
    let rec loop () =
      if R.Snapshot.is_null !cur then finish false
      else begin
        let node = R.Snapshot.get !cur in
        if node.key > key then finish false
        else if node.key = key then
          (* Only the mark bit is needed: an unprotected view read
             suffices (no dereference). *)
          finish (not (R.Ptr.is_marked (R.Asp.unsafe_ptr node.next)))
        else begin
          let next = R.Asp.get_snapshot th node.next in
          R.Snapshot.drop th !prev_s;
          prev_s := !cur;
          cur := next;
          loop ()
        end
      end
    in
    loop ()

  let range_at c head lo hi =
    let th = c.th in
    let prev_s = ref (R.Snapshot.null ()) in
    let cur = ref (R.Asp.get_snapshot th head) in
    let count = ref 0 in
    let finish () =
      R.Snapshot.drop th !cur;
      R.Snapshot.drop th !prev_s;
      !count
    in
    let rec loop () =
      if R.Snapshot.is_null !cur then finish ()
      else begin
        let node = R.Snapshot.get !cur in
        if node.key >= hi then finish ()
        else begin
          let next = R.Asp.get_snapshot th node.next in
          if node.key >= lo && not (R.Snapshot.is_marked next) then incr count;
          R.Snapshot.drop th !prev_s;
          prev_s := !cur;
          cur := next;
          loop ()
        end
      end
    in
    loop ()

  (* ------------------ Set_intf.S wrapper ---------------------------- *)

  let insert c key = R.critically c.th (fun () -> insert_at c c.t.head key)
  let remove c key = R.critically c.th (fun () -> remove_at c c.t.head key)
  let contains c key = R.critically c.th (fun () -> contains_at c c.t.head key)
  let range_query c lo hi = R.critically c.th (fun () -> range_at c c.t.head lo hi)
  let flush c = R.flush c.th

  let size_at rt head =
    let th = R.thread rt 0 in
    R.critically th (fun () ->
        let cur = ref (R.Asp.get_snapshot th head) in
        let n = ref 0 in
        let rec loop () =
          if R.Snapshot.is_null !cur then !n
          else begin
            let node = R.Snapshot.get !cur in
            let next = R.Asp.get_snapshot th node.next in
            if not (R.Snapshot.is_marked next) then incr n;
            R.Snapshot.drop th !cur;
            cur := next;
            loop ()
          end
        in
        loop ())

  let size t = size_at t.rt t.head
  let live_objects t = R.live_objects t.rt
  let peak_objects t = R.peak_objects t.rt
  let reset_peak t = Simheap.reset_peak (R.heap t.rt)

  let teardown t =
    let th = R.thread t.rt 0 in
    R.Asp.clear th t.head;
    R.quiesce t.rt
  let uaf_events _ = 0

  let snapshot_stats t = Some (R.snapshot_stats t.rt)
  let retired_backlog t = R.retired_backlog t.rt
  let watchdog_check t = R.watchdog_check t.rt
  let control t = R.control t.rt
end
