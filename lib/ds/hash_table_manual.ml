(** Michael's lock-free hash table (Michael 2002) under manual SMR:
    a fixed array of Harris–Michael list buckets (paper Fig 13b; the
    paper sizes buckets for an average load factor of 1).

    Reuses {!Hm_list_manual}'s per-cell operations; all buckets share
    one SMR instance and one simulated heap. *)

module Make (S : Smr.Smr_intf.S) = struct
  module L = Hm_list_manual.Make (S)

  let name = S.name

  type t = { list : L.t; buckets : L.link Atomic.t array; nbuckets : int }
  type ctx = { t : t; c : L.ctx }

  let default_buckets = 1 lsl 16

  let create ?slots_per_thread ?epoch_freq ?(buckets = default_buckets) ~max_threads () =
    {
      list = L.create ?slots_per_thread ?epoch_freq ~max_threads ();
      buckets = Array.init buckets (fun _ -> Atomic.make L.null_link);
      nbuckets = buckets;
    }

  let ctx t pid = { t; c = L.ctx t.list pid }

  (* Fibonacci hashing spreads the benchmark's dense integer keys. *)
  let bucket t key = key * 2654435761 land max_int mod t.nbuckets

  let with_section ctx f =
    L.Ar.begin_critical_section ctx.t.list.L.ar ~pid:ctx.c.L.pid;
    Fun.protect
      ~finally:(fun () -> L.Ar.end_critical_section ctx.t.list.L.ar ~pid:ctx.c.L.pid)
      f

  let insert ctx key =
    with_section ctx (fun () -> L.insert_at ctx.c ctx.t.buckets.(bucket ctx.t key) key)

  let remove ctx key =
    with_section ctx (fun () -> L.remove_at ctx.c ctx.t.buckets.(bucket ctx.t key) key)

  let contains ctx key =
    with_section ctx (fun () -> L.contains_at ctx.c ctx.t.buckets.(bucket ctx.t key) key)

  (* Hash tables do not support ordered ranges; the paper never runs
     range queries on them. Count by scanning all buckets. *)
  let range_query ctx lo hi =
    with_section ctx (fun () ->
        Array.fold_left
          (fun acc b -> acc + L.range_at ctx.c b lo hi)
          0 ctx.t.buckets)

  let flush ctx = L.flush ctx.c
  let size t = Array.fold_left (fun acc b -> acc + L.size_at b) 0 t.buckets
  let live_objects t = L.live_objects t.list
  let peak_objects t = L.peak_objects t.list
  let reset_peak t = L.reset_peak t.list

  let teardown t =
    Array.iter L.teardown_at t.buckets;
    L.Ar.quiesce t.list.L.ar
  let uaf_events _ = 0

  let snapshot_stats _ = None
  let retired_backlog t = L.retired_backlog t.list
  let watchdog_check t = L.watchdog_check t.list
  let control t = L.control t.list
end
