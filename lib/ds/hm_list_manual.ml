(** Harris–Michael lock-free linked-list set (Harris 2001, Michael
    2002) under {e manual} safe memory reclamation — the baseline side
    of the paper's list benchmark (Fig 13a).

    Nodes are unlinked with a logically-deleting mark on their [next]
    link, then retired; removed memory is reclaimed by whichever SMR
    scheme the functor is instantiated with. Schemes whose protection
    is interval- or pointer-precise (HP, HE, IBR) additionally require
    Michael's [*prev == cur] revalidation before trusting a protected
    node; EBR and Hyaline skip it (see [Smr_intf.requires_validation])
    exactly as their native implementations do — this asymmetry is part
    of why region schemes are faster and is preserved deliberately.

    The core operates on an explicit head cell so that the Michael
    hash table can reuse it bucket-by-bucket. *)

module Make (S : Smr.Smr_intf.S) = struct
  module Ar = Acquire_retire.Make (S)
  module Ident = Smr.Ident

  let name = S.name

  type node = { key : int; next : link Atomic.t }
  and link = { dest : node Ar.managed option; marked : bool }

  type t = { ar : Ar.t; head : link Atomic.t; nthreads : int; wd : Ar.watchdog }
  type ctx = { t : t; pid : int }

  let null_link = { dest = None; marked = false }

  let create ?slots_per_thread ?epoch_freq ?buckets:_ ~max_threads () =
    {
      ar = Ar.create ?slots_per_thread ?epoch_freq ~max_threads ();
      head = Atomic.make null_link;
      nthreads = max_threads;
      wd = Ar.watchdog ();
    }

  let ctx t pid = { t; pid }
  let validate = S.requires_validation
  let ident_of l = match l.dest with None -> Ident.null | Some m -> Ident.of_val m
  let link_to m = { dest = Some m; marked = false }

  let link_eq a b =
    a.marked = b.marked
    &&
    match (a.dest, b.dest) with
    | None, None -> true
    | Some x, Some y -> x == y
    | _ -> false

  let rec link_cas cell expected desired =
    let cur = Atomic.get cell in
    if not (link_eq cur expected) then false
    else if Atomic.compare_and_set cell cur desired then true
    else link_cas cell expected desired

  (* Protect the destination of the link currently in [cell]; returns
     the protected link and its guard. Guard budget per traversal is at
     most 3, below the default 8 slots of HP/HE. *)
  let protect c cell =
    let smr = Ar.smr c.t.ar in
    if S.confirm_is_trivial then
      match S.try_acquire smr ~pid:c.pid Ident.null with
      | Some g -> (Atomic.get cell, g)
      | None -> failwith "hm_list_manual: out of announcement slots (need >= 3)"
    else begin
      let v0 = Atomic.get cell in
      match S.try_acquire smr ~pid:c.pid (ident_of v0) with
      | None -> failwith "hm_list_manual: out of announcement slots (need >= 3)"
      | Some g ->
          let rec settle () =
            let v = Atomic.get cell in
            if S.confirm smr ~pid:c.pid g (ident_of v) then (v, g) else settle ()
          in
          settle ()
    end

  let release c g = S.release (Ar.smr c.t.ar) ~pid:c.pid g
  let release_opt c = function Some g -> release c g | None -> ()

  let run_ejects c =
    match Ar.eject c.t.ar ~pid:c.pid with
    | [] -> ()
    | ops -> List.iter (fun op -> op c.pid) ops

  exception Restart

  type cursor = {
    found : bool;
    prev : link Atomic.t;
    prev_g : S.guard option; (* protects the node containing [prev] *)
    cur : link; (* unmarked view of the successor *)
    cur_g : S.guard option;
  }

  let discard c cu =
    release_opt c cu.prev_g;
    release_opt c cu.cur_g

  (* Michael's find: position the cursor at the first node with
     key >= [key], unlinking marked nodes on the way. *)
  let rec search c head key =
    match search_once c head key with cu -> cu | exception Restart -> search c head key

  and search_once c head key =
    let prev = ref head in
    let prev_g = ref None in
    let v, g = protect c head in
    let cur = ref v in
    let cur_g = ref (if v.dest = None then (release c g; None) else Some g) in
    let abort () =
      release_opt c !cur_g;
      release_opt c !prev_g;
      raise Restart
    in
    let rec loop () =
      match !cur.dest with
      | None -> { found = false; prev = !prev; prev_g = !prev_g; cur = !cur; cur_g = None }
      | Some m ->
          let node = Ar.get m in
          let next, gn = protect c node.next in
          (* Protected-pointer schemes: cur is only trustworthy if prev
             still links to it unmarked (Michael 2002). *)
          if validate && not (link_eq (Atomic.get !prev) { dest = !cur.dest; marked = false })
          then begin
            release c gn;
            abort ()
          end
          else if next.marked then
            (* cur is logically deleted: unlink and retire it. *)
            if
              link_cas !prev
                { dest = !cur.dest; marked = false }
                { dest = next.dest; marked = false }
            then begin
              Ar.retire_free c.t.ar ~pid:c.pid m;
              run_ejects c;
              release_opt c !cur_g;
              cur := { next with marked = false };
              cur_g := (if next.dest = None then (release c gn; None) else Some gn);
              loop ()
            end
            else begin
              release c gn;
              abort ()
            end
          else if node.key >= key then begin
            release c gn;
            {
              found = node.key = key;
              prev = !prev;
              prev_g = !prev_g;
              cur = !cur;
              cur_g = !cur_g;
            }
          end
          else begin
            release_opt c !prev_g;
            prev_g := !cur_g;
            prev := node.next;
            cur := next;
            cur_g := (if next.dest = None then (release c gn; None) else Some gn);
            loop ()
          end
    in
    loop ()

  let insert_at c head key =
    let rec go () =
      let cu = search c head key in
      if cu.found then begin
        discard c cu;
        false
      end
      else begin
        let m =
          Ar.alloc c.t.ar ~pid:c.pid
            { key; next = Atomic.make { dest = cu.cur.dest; marked = false } }
        in
        if
          link_cas cu.prev { dest = cu.cur.dest; marked = false } { dest = Some m; marked = false }
        then begin
          discard c cu;
          true
        end
        else begin
          (* Never published: reclaim directly. *)
          Simheap.free m.Ar.block;
          discard c cu;
          go ()
        end
      end
    in
    go ()

  let remove_at c head key =
    let rec go () =
      let cu = search c head key in
      if not cu.found then begin
        discard c cu;
        false
      end
      else begin
        let m = Option.get cu.cur.dest in
        let node = Ar.get m in
        let next = Atomic.get node.next in
        if next.marked then begin
          (* A concurrent remove owns this node; retry until the find
             no longer sees it. *)
          discard c cu;
          go ()
        end
        else if
          link_cas node.next { dest = next.dest; marked = false }
            { dest = next.dest; marked = true }
        then begin
          (* We own the deletion; try to unlink (guards still held, so
             the prev cell is safe to CAS), else a later find unlinks
             and retires it. *)
          if
            link_cas cu.prev { dest = Some m; marked = false }
              { dest = next.dest; marked = false }
          then begin
            Ar.retire_free c.t.ar ~pid:c.pid m;
            run_ejects c
          end
          else begin
            let cu2 = search c head key in
            discard c cu2
          end;
          discard c cu;
          true
        end
        else begin
          discard c cu;
          go ()
        end
      end
    in
    go ()

  (* Read-only traversal: no helping, no unlinking; marked nodes are
     passed through (their links are frozen). *)
  let contains_at c head key =
    let once () =
      let prev = ref head in
      let prev_g = ref None in
      let v, g = protect c head in
      let cur = ref v in
      let cur_g = ref (if v.dest = None then (release c g; None) else Some g) in
      let finish result =
        release_opt c !cur_g;
        release_opt c !prev_g;
        result
      in
      let rec loop () =
        match !cur.dest with
        | None -> finish false
        | Some m ->
            let node = Ar.get m in
            if node.key > key then finish false
            else if node.key = key then
              (* Deletion flag lives on the node's own next link; no
                 dereference needed to read it. *)
              finish (not (Atomic.get node.next).marked)
            else begin
              let next, gn = protect c node.next in
              if
                validate
                && not (link_eq (Atomic.get !prev) { dest = !cur.dest; marked = false })
              then begin
                release c gn;
                release_opt c !cur_g;
                release_opt c !prev_g;
                raise Restart
              end;
              release_opt c !prev_g;
              prev_g := !cur_g;
              prev := node.next;
              cur := { next with marked = false };
              cur_g := (if next.dest = None then (release c gn; None) else Some gn);
              loop ()
            end
      in
      loop ()
    in
    let rec retry () = match once () with b -> b | exception Restart -> retry () in
    retry ()

  (* Sequential-traversal range count (non-linearizable, as in the
     paper's range-query workload). *)
  let range_at c head lo hi =
    let once () =
      let prev = ref head in
      let prev_g = ref None in
      let v, g = protect c head in
      let cur = ref v in
      let cur_g = ref (if v.dest = None then (release c g; None) else Some g) in
      let count = ref 0 in
      let finish () =
        release_opt c !cur_g;
        release_opt c !prev_g;
        !count
      in
      let rec loop () =
        match !cur.dest with
        | None -> finish ()
        | Some m ->
            let node = Ar.get m in
            if node.key >= hi then finish ()
            else begin
              let next, gn = protect c node.next in
              if
                validate
                && not (link_eq (Atomic.get !prev) { dest = !cur.dest; marked = false })
              then begin
                release c gn;
                release_opt c !cur_g;
                release_opt c !prev_g;
                raise Restart
              end;
              if node.key >= lo && not next.marked then incr count;
              release_opt c !prev_g;
              prev_g := !cur_g;
              prev := node.next;
              cur := { next with marked = false };
              cur_g := (if next.dest = None then (release c gn; None) else Some gn);
              loop ()
            end
      in
      loop ()
    in
    let rec retry () = match once () with n -> n | exception Restart -> retry () in
    retry ()

  (* Quiescent-only sequential helpers over a head cell. *)
  let size_at head =
    let rec go l n =
      match l.dest with
      | None -> n
      | Some m ->
          let node = m.Ar.value in
          let next = Atomic.get node.next in
          go next (if next.marked then n else n + 1)
    in
    go (Atomic.get head) 0

  let teardown_at head =
    let rec go l =
      match l.dest with
      | None -> ()
      | Some m ->
          let node = m.Ar.value in
          let next = Atomic.get node.next in
          if Simheap.is_live m.Ar.block then Simheap.free m.Ar.block;
          go next
    in
    go (Atomic.get head);
    Atomic.set head null_link

  (* ------------------ Set_intf.S wrapper ---------------------------- *)

  let with_section c f =
    Ar.begin_critical_section c.t.ar ~pid:c.pid;
    Fun.protect ~finally:(fun () -> Ar.end_critical_section c.t.ar ~pid:c.pid) f

  let insert c key = with_section c (fun () -> insert_at c c.t.head key)
  let remove c key = with_section c (fun () -> remove_at c c.t.head key)
  let contains c key = with_section c (fun () -> contains_at c c.t.head key)
  let range_query c lo hi = with_section c (fun () -> range_at c c.t.head lo hi)
  let flush c = Ar.drain c.t.ar ~pid:c.pid
  let size t = size_at t.head
  let live_objects t = Simheap.live (Ar.heap t.ar)
  let peak_objects t = Simheap.peak (Ar.heap t.ar)
  let reset_peak t = Simheap.reset_peak (Ar.heap t.ar)
  let teardown t =
    teardown_at t.head;
    Ar.quiesce t.ar
  let uaf_events _ = 0

  let snapshot_stats _ = None
  let retired_backlog t = Ar.total_pending t.ar
  let control t = [ Ar.handle t.ar ]

  let watchdog_check t =
    match Ar.watchdog_check t.ar t.wd with
    | Ar.Progressing -> None
    | Ar.Stuck { frontier; pending } ->
        Some (Printf.sprintf "%s: stuck (frontier=%d pending=%d)" name frontier pending)
end
