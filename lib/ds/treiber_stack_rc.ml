(** Treiber's stack under automatic reference counting — compare with
    {!Treiber_stack_manual}: the pop path has no retire, no eject, and
    no reclamation bookkeeping at all; the unlinking CAS defers the
    decrement and the node chain unwinds through destroy hooks. *)

module Make (R : Cdrc.Intf.S) = struct
  let name = R.scheme_name

  type node = { value : int; next : node R.asp }

  type t = { rt : R.rt; top : node R.asp }
  type ctx = { t : t; th : R.thr }

  let create ?slots_per_thread ?epoch_freq ~max_threads () =
    {
      rt = R.create ~support_weak:false ?slots_per_thread ?epoch_freq ~max_threads ();
      top = R.Asp.make_null ();
    }

  let ctx t pid = { t; th = R.thread t.rt pid }

  let push c v =
    let th = c.th in
    R.critically th @@ fun () ->
    let rec go () =
      let top = R.Asp.get_snapshot th c.t.top in
      let fresh =
        R.Shared.make th
          ~destroy:(fun th n -> R.Asp.clear th n.next)
          { value = v; next = R.Asp.make th (R.Snapshot.ptr top ~tag:0) }
      in
      let ok =
        R.Asp.compare_and_swap th c.t.top ~expected:(R.Snapshot.ptr top ~tag:0)
          ~desired:(R.Shared.ptr fresh)
      in
      R.Shared.drop th fresh;
      R.Snapshot.drop th top;
      if not ok then go ()
    in
    go ()

  let pop c =
    let th = c.th in
    R.critically th @@ fun () ->
    let rec go () =
      let top = R.Asp.get_snapshot th c.t.top in
      if R.Snapshot.is_null top then begin
        R.Snapshot.drop th top;
        None
      end
      else begin
        let node = R.Snapshot.get top in
        let next = R.Asp.get_snapshot th node.next in
        let ok =
          R.Asp.compare_and_swap th c.t.top ~expected:(R.Snapshot.ptr top ~tag:0)
            ~desired:(R.Snapshot.ptr next ~tag:0)
        in
        R.Snapshot.drop th next;
        if ok then begin
          let v = node.value in
          R.Snapshot.drop th top;
          Some v
        end
        else begin
          R.Snapshot.drop th top;
          go ()
        end
      end
    in
    go ()

  let flush c = R.flush c.th

  let size t =
    let th = R.thread t.rt 0 in
    R.critically th (fun () ->
        let rec go acc snap =
          if R.Snapshot.is_null snap then begin
            R.Snapshot.drop th snap;
            acc
          end
          else begin
            let next = R.Asp.get_snapshot th (R.Snapshot.get snap).next in
            R.Snapshot.drop th snap;
            go (acc + 1) next
          end
        in
        go 0 (R.Asp.get_snapshot th t.top))

  let live_objects t = R.live_objects t.rt
  let retired_backlog t = R.retired_backlog t.rt

  let teardown t =
    let th = R.thread t.rt 0 in
    R.Asp.clear th t.top;
    R.quiesce t.rt
end
