(** Ramalhete–Correia's doubly-linked lock-free queue implemented with
    our atomic weak pointers — a line-by-line transcription of the
    paper's Fig 10.

    [next] edges are atomic {e shared} pointers (they own the nodes);
    [prev] edges are atomic {e weak} pointers, which is exactly what
    breaks the prev/next reference cycle that would otherwise leak
    every node (paper §4.6). The queue keeps one dummy node; [head]
    points at the last dequeued (dummy) node and [tail] at the last
    enqueued node. *)

module Make (R : Cdrc.Intf.S) = struct
  let name = R.scheme_name ^ "-weak"

  type node = { value : int; next : node R.asp; prev : node R.awp }

  type t = { rt : R.rt; head : node R.asp; tail : node R.asp }
  type ctx = { t : t; th : R.thr }

  let destroy th (n : node) =
    R.Asp.clear th n.next;
    R.Awp.clear th n.prev

  let mk_node th value =
    R.Shared.make th ~destroy { value; next = R.Asp.make_null (); prev = R.Awp.make_null () }

  let create ~max_threads () =
    let rt = R.create ~support_weak:true ~max_threads () in
    let th = R.thread rt 0 in
    let dummy = mk_node th min_int in
    let head = R.Asp.make th (R.Shared.ptr dummy) in
    let tail = R.Asp.make th (R.Shared.ptr dummy) in
    R.Shared.drop th dummy;
    { rt; head; tail }

  let ctx t pid = { t; th = R.thread t.rt pid }

  (* Fig 10 enqueue. *)
  let enqueue c v =
    let th = c.th in
    R.critically th @@ fun () ->
    let new_node = mk_node th v in
    let rec loop () =
      let ltail = R.Asp.get_snapshot th c.t.tail in
      let tl = R.Snapshot.get ltail in
      (* Publish our prev pointer before trying to swing the tail. *)
      R.Awp.store th (R.Shared.get new_node).prev (R.Snapshot.ptr ltail ~tag:0);
      (* Help the previous enqueuer set its next pointer (Fig 10
         lines 16-18). *)
      let lprev = R.Awp.get_snapshot th tl.prev in
      (if not (R.Weak_snapshot.is_null lprev) then begin
         let pn = R.Weak_snapshot.get lprev in
         if R.Ptr.is_null (R.Asp.unsafe_ptr pn.next) then
           ignore
             (R.Asp.compare_and_swap th pn.next ~expected:R.Ptr.null
                ~desired:(R.Snapshot.ptr ltail ~tag:0))
       end);
      R.Weak_snapshot.drop th lprev;
      if
        R.Asp.compare_and_swap th c.t.tail
          ~expected:(R.Snapshot.ptr ltail ~tag:0)
          ~desired:(R.Shared.ptr new_node)
      then begin
        (* Fig 10 line 20: link the old tail forward to us. *)
        ignore
          (R.Asp.compare_and_swap th tl.next ~expected:R.Ptr.null
             ~desired:(R.Shared.ptr new_node));
        R.Snapshot.drop th ltail
      end
      else begin
        R.Snapshot.drop th ltail;
        loop ()
      end
    in
    loop ();
    R.Shared.drop th new_node

  (* Fig 10 dequeue. *)
  let dequeue c =
    let th = c.th in
    R.critically th @@ fun () ->
    let rec loop () =
      let lhead = R.Asp.get_snapshot th c.t.head in
      let hd = R.Snapshot.get lhead in
      let lnext = R.Asp.get_snapshot th hd.next in
      if R.Snapshot.is_null lnext then begin
        R.Snapshot.drop th lnext;
        R.Snapshot.drop th lhead;
        None
      end
      else if
        R.Asp.compare_and_swap th c.t.head
          ~expected:(R.Snapshot.ptr lhead ~tag:0)
          ~desired:(R.Snapshot.ptr lnext ~tag:0)
      then begin
        let v = (R.Snapshot.get lnext).value in
        R.Snapshot.drop th lnext;
        R.Snapshot.drop th lhead;
        Some v
      end
      else begin
        R.Snapshot.drop th lnext;
        R.Snapshot.drop th lhead;
        loop ()
      end
    in
    loop ()

  let flush c = R.flush c.th
  let live_objects t = R.live_objects t.rt
  let retired_backlog t = R.retired_backlog t.rt

  let teardown t =
    let th = R.thread t.rt 0 in
    R.Asp.clear th t.head;
    R.Asp.clear th t.tail;
    R.quiesce t.rt
end
