(** Natarajan–Mittal external BST under automatic reference counting —
    the paper's Fig 1b: compare {!Nm_tree_manual.Make.cleanup}, whose
    hand-written chain-retirement loop simply does not exist here. The
    ancestor CAS's deferred decrement releases the excised chain, and
    each node's destroy hook releases its children, so the whole
    subtree unwinds automatically (and iteratively, through the
    runtime's pending queue).

    Unlike the manual version, this tree is safe under {e every} scheme
    including RCHP and RCIBR — the paper points this out as an
    advantage (§5.1): snapshots protect reference counts, so traversing
    frozen edges of removed nodes can never touch freed memory.

    Range queries hold a snapshot per path node; under RCHP the
    announcement slots run out and [get_snapshot] transparently falls
    back to reference-count increments — the exact mechanism behind
    RCHP's collapse in Fig 11. *)

module Make (R : Cdrc.Intf.S) = struct
  let name = R.scheme_name

  (* Edge tag bits: bit 0 = flag, bit 1 = tag. *)
  let fl = 1
  let tg = 2

  type node = { key : int; left : node R.asp; right : node R.asp }

  let inf2 = max_int
  let inf1 = max_int - 1

  type t = { rt : R.rt; root : node R.shared; uaf : int Atomic.t }
  type ctx = { t : t; th : R.thr }

  let destroy th (v : node) =
    R.Asp.clear th v.left;
    R.Asp.clear th v.right

  let mk_leaf th key =
    R.Shared.make th ~destroy { key; left = R.Asp.make_null (); right = R.Asp.make_null () }

  let mk_internal th key (l : node R.ptr) (r : node R.ptr) =
    R.Shared.make th ~destroy { key; left = R.Asp.make th l; right = R.Asp.make th r }

  let create ?slots_per_thread ?epoch_freq ?buckets:_ ~max_threads () =
    let rt = R.create ~support_weak:false ?slots_per_thread ?epoch_freq ~max_threads () in
    let th = R.thread rt 0 in
    let l_inf1 = mk_leaf th inf1 in
    let l_inf2a = mk_leaf th inf2 in
    let l_inf2b = mk_leaf th inf2 in
    let s = mk_internal th inf1 (R.Shared.ptr l_inf1) (R.Shared.ptr l_inf2a) in
    let r = mk_internal th inf2 (R.Shared.ptr s) (R.Shared.ptr l_inf2b) in
    List.iter (R.Shared.drop th) [ l_inf1; l_inf2a; l_inf2b; s ];
    { rt; root = r; uaf = Atomic.make 0 }

  let ctx t pid = { t; th = R.thread t.rt pid }
  let uaf_events t = Atomic.get t.uaf
  let is_leaf (n : node) = R.Ptr.is_null (R.Asp.unsafe_ptr n.left)

  (* Seek record: snapshots pin ancestor, parent, and leaf; the
     successor is only ever compared / CAS-expected, so a bare view
     suffices (views carry identity, not access). *)
  type seek_record = {
    anc : node R.snapshot;
    suc : node R.ptr;
    par : node R.snapshot;
    leaf : node R.snapshot;
  }

  let discard c s =
    R.Snapshot.drop c.th s.anc;
    R.Snapshot.drop c.th s.par;
    R.Snapshot.drop c.th s.leaf

  (* The R sentinel is permanently pinned by [t.root], so it needs no
     snapshot; a null snapshot in the [anc] slot denotes R and is
     resolved by [anc_cell]. *)
  let seek c key =
    let th = c.th in
    let rn = R.Shared.get c.t.root in
    let s_snap = R.Asp.get_snapshot th rn.left in
    (* anc = R (represented by a null snapshot), suc = S, par = S. *)
    let anc = ref (R.Snapshot.null ()) in
    let suc = ref (R.Snapshot.ptr s_snap ~tag:0) in
    let par = ref s_snap in
    let sn = R.Snapshot.get s_snap in
    let cur = ref (R.Asp.get_snapshot th sn.left) in
    let cur_tag = ref (R.Snapshot.tag !cur) in
    let rec walk () =
      let n = R.Snapshot.get !cur in
      if not (is_leaf n) then begin
        if !cur_tag land tg = 0 then begin
          (* Edge par->cur untagged: par becomes ancestor, cur becomes
             successor. The par snapshot moves to the anc slot. *)
          R.Snapshot.drop th !anc;
          anc := !par;
          suc := R.Snapshot.ptr !cur ~tag:0
        end
        else R.Snapshot.drop th !par;
        par := !cur;
        let next = R.Asp.get_snapshot th (if key < n.key then n.left else n.right) in
        if R.Snapshot.is_null next then begin
          (* Cannot happen: internal nodes always have two children and
             snapshots pin their targets. *)
          R.Snapshot.drop th next;
          failwith "nm_tree_rc: null child of internal node"
        end;
        cur_tag := R.Snapshot.tag next;
        cur := next;
        walk ()
      end
    in
    walk ();
    { anc = !anc; suc = !suc; par = !par; leaf = !cur }

  (* Ancestor child cell toward [key]; a null anc snapshot denotes the
     root sentinel R. *)
  let anc_cell c (s : seek_record) key =
    let n =
      if R.Snapshot.is_null s.anc then R.Shared.get c.t.root else R.Snapshot.get s.anc
    in
    if key < n.key then n.left else n.right

  (* Fig 1b cleanup: note the absence of any retire loop — the
     compare_and_swap defers the decrement of the excised chain and
     destroy hooks do the rest. *)
  let cleanup c key (s : seek_record) =
    let th = c.th in
    let par = R.Snapshot.get s.par in
    let child_cell, sibling_cell =
      if key < par.key then (par.left, par.right) else (par.right, par.left)
    in
    let sibling_cell =
      if R.Ptr.tag (R.Asp.unsafe_ptr child_cell) land fl <> 0 then sibling_cell
      else child_cell
    in
    (* Tag the sibling edge (freeze its pointer). The CAS desired value
       must be backed by an owned reference, hence the snapshot. *)
    let rec tag_sibling () =
      let es = R.Asp.get_snapshot th sibling_cell in
      let t0 = R.Snapshot.tag es in
      if t0 land tg <> 0 then es
      else if
        R.Asp.compare_and_swap th sibling_cell ~expected:(R.Snapshot.ptr es)
          ~desired:(R.Snapshot.ptr es ~tag:(t0 lor tg))
      then begin
        R.Snapshot.drop th es;
        R.Asp.get_snapshot th sibling_cell
      end
      else begin
        R.Snapshot.drop th es;
        tag_sibling ()
      end
    in
    let es = tag_sibling () in
    let acell = anc_cell c s key in
    let ok =
      R.Asp.compare_and_swap th acell
        ~expected:(R.Ptr.with_tag s.suc 0)
        ~desired:(R.Snapshot.ptr es ~tag:(R.Snapshot.tag es land fl))
    in
    R.Snapshot.drop th es;
    ok

  let insert_op c key =
    let th = c.th in
    let rec go () =
      let s = seek c key in
      let leaf = R.Snapshot.get s.leaf in
      if leaf.key = key then begin
        discard c s;
        false
      end
      else begin
        let par = R.Snapshot.get s.par in
        let cell = if key < par.key then par.left else par.right in
        let new_leaf = mk_leaf th key in
        let ikey = max key leaf.key in
        let lp, rp =
          if key < leaf.key then (R.Shared.ptr new_leaf, R.Snapshot.ptr s.leaf ~tag:0)
          else (R.Snapshot.ptr s.leaf ~tag:0, R.Shared.ptr new_leaf)
        in
        let new_internal = mk_internal th ikey lp rp in
        let ok =
          R.Asp.compare_and_swap th cell
            ~expected:(R.Snapshot.ptr s.leaf ~tag:0)
            ~desired:(R.Shared.ptr new_internal)
        in
        R.Shared.drop th new_leaf;
        R.Shared.drop th new_internal;
        if ok then begin
          discard c s;
          true
        end
        else begin
          let e = R.Asp.unsafe_ptr cell in
          if R.Ptr.same_object e (R.Snapshot.ptr s.leaf ~tag:0) && R.Ptr.tag e <> 0 then
            ignore (cleanup c key s);
          discard c s;
          go ()
        end
      end
    in
    go ()

  let remove_op c key =
    let th = c.th in
    let rec cleanup_loop (victim : node R.ptr) =
      let s = seek c key in
      if not (R.Ptr.same_object (R.Snapshot.ptr s.leaf ~tag:0) victim) then begin
        discard c s;
        true
      end
      else begin
        let ok = cleanup c key s in
        discard c s;
        if ok then true else cleanup_loop victim
      end
    in
    let rec inject () =
      let s = seek c key in
      if (R.Snapshot.get s.leaf).key <> key then begin
        discard c s;
        false
      end
      else begin
        let par = R.Snapshot.get s.par in
        let cell = if key < par.key then par.left else par.right in
        if
          R.Asp.compare_and_swap th cell
            ~expected:(R.Snapshot.ptr s.leaf ~tag:0)
            ~desired:(R.Snapshot.ptr s.leaf ~tag:fl)
        then begin
          let victim = R.Snapshot.ptr s.leaf ~tag:0 in
          let ok = cleanup c key s in
          discard c s;
          if ok then true else cleanup_loop victim
        end
        else begin
          let e = R.Asp.unsafe_ptr cell in
          if R.Ptr.same_object e (R.Snapshot.ptr s.leaf ~tag:0) && R.Ptr.tag e <> 0 then
            ignore (cleanup c key s);
          discard c s;
          inject ()
        end
      end
    in
    inject ()

  (* Read-only descent with two rotating snapshots. *)
  let contains_op c key =
    let th = c.th in
    let rn = R.Shared.get c.t.root in
    let prev = ref (R.Snapshot.null ()) in
    let cur = ref (R.Asp.get_snapshot th rn.left) in
    let rec walk () =
      let n = R.Snapshot.get !cur in
      if is_leaf n then begin
        let res = n.key = key in
        R.Snapshot.drop th !cur;
        R.Snapshot.drop th !prev;
        res
      end
      else begin
        let next = R.Asp.get_snapshot th (if key < n.key then n.left else n.right) in
        R.Snapshot.drop th !prev;
        prev := !cur;
        cur := next;
        walk ()
      end
    in
    walk ()

  (* DFS range count holding one snapshot per path node — the workload
     that exhausts RCHP's announcement slots (Fig 11). *)
  let range_op c lo hi =
    let th = c.th in
    let count = ref 0 in
    let rec dfs (snap : node R.snapshot) =
      let n = R.Snapshot.get snap in
      if is_leaf n then begin
        if n.key >= lo && n.key < hi && n.key < inf1 then incr count
      end
      else begin
        if lo < n.key then begin
          let child = R.Asp.get_snapshot th n.left in
          if not (R.Snapshot.is_null child) then dfs child;
          R.Snapshot.drop th child
        end;
        if hi > n.key then begin
          let child = R.Asp.get_snapshot th n.right in
          if not (R.Snapshot.is_null child) then dfs child;
          R.Snapshot.drop th child
        end
      end
    in
    let rn = R.Shared.get c.t.root in
    let s = R.Asp.get_snapshot th rn.left in
    if not (R.Snapshot.is_null s) then dfs s;
    R.Snapshot.drop th s;
    !count

  (* ------------------ Set_intf.S wrapper ---------------------------- *)

  let insert c key = R.critically c.th (fun () -> insert_op c key)
  let remove c key = R.critically c.th (fun () -> remove_op c key)
  let contains c key = R.critically c.th (fun () -> contains_op c key)
  let range_query c lo hi = R.critically c.th (fun () -> range_op c lo hi)
  let flush c = R.flush c.th

  let size t =
    let th = R.thread t.rt 0 in
    R.critically th (fun () ->
        let rec go (snap : node R.snapshot) =
          let n = R.Snapshot.get snap in
          let r =
            if is_leaf n then if n.key < inf1 then 1 else 0
            else begin
              let l = R.Asp.get_snapshot th n.left in
              let rr = R.Asp.get_snapshot th n.right in
              let total =
                (if R.Snapshot.is_null l then 0 else go l)
                + if R.Snapshot.is_null rr then 0 else go rr
              in
              R.Snapshot.drop th l;
              R.Snapshot.drop th rr;
              total
            end
          in
          r
        in
        let rn = R.Shared.get t.root in
        let s = R.Asp.get_snapshot th rn.left in
        let n = if R.Snapshot.is_null s then 0 else go s in
        R.Snapshot.drop th s;
        n)

  let live_objects t = R.live_objects t.rt
  let peak_objects t = R.peak_objects t.rt
  let reset_peak t = Simheap.reset_peak (R.heap t.rt)

  let teardown t =
    let th = R.thread t.rt 0 in
    R.Shared.drop th t.root;
    R.quiesce t.rt
  let snapshot_stats t = Some (R.snapshot_stats t.rt)
  let retired_backlog t = R.retired_backlog t.rt
  let watchdog_check t = R.watchdog_check t.rt
  let control t = R.control t.rt
end
