(** Common interface of the doubly-linked queue implementations used
    in the paper's weak-pointer evaluation (Fig 12):

    - {!Dl_queue_rc}: our atomic weak pointers (paper Fig 10),
    - {!Dl_queue_manual}: Ramalhete–Correia's original custom manual
      scheme ("Original" in Fig 12),
    - {!Dl_queue_locked}: a lock-based atomic shared/weak pointer
      implementation standing in for the closed-source just::thread
      library (DESIGN.md S3). *)

module type S = sig
  val name : string

  type t
  type ctx

  val create : max_threads:int -> unit -> t
  val ctx : t -> int -> ctx
  val enqueue : ctx -> int -> unit

  val dequeue : ctx -> int option
  (** [None] when the queue is empty. *)

  val flush : ctx -> unit
  val live_objects : t -> int

  val retired_backlog : t -> int
  (** Entries retired but not yet reclaimed, summed over all threads;
      [0] for implementations that free eagerly (the locked queue). *)

  val teardown : t -> unit
end
