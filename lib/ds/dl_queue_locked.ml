(** Ramalhete–Correia's queue over {e lock-based} atomic shared/weak
    pointers — the stand-in for the commercial just::thread library in
    the paper's Fig 12 (DESIGN.md S3; the closed-source original is
    unavailable, so we substitute the same "correct general-purpose
    atomic smart pointers that collapse under contention" profile,
    implemented in the style of Microsoft's lock-based STL
    atomic<shared_ptr>).

    Every pointer cell carries a mutex; loads, stores, and CASes take
    it. Reference counts are plain atomic integers (CAS-loop
    increment-if-not-zero for weak upgrades). Because a load holds the
    cell lock while bumping the count, no deferral machinery is needed
    at all — and every reader serializes on the head/tail cells, which
    is exactly why this design is an order of magnitude slower at high
    thread counts. *)

module Make () = struct
  module Counter = Sticky.Casloop_counter

  let name = "locked-weak"

  type cb = {
    node : node;
    strong : Counter.t;
    weak : Counter.t;
    block : Simheap.block;
    mutable disposed : bool;
  }

  and node = { value : int; next : cell; prev : cell (* weak *) }
  and cell = { m : Mutex.t; mutable ptr : cb option }

  type t = { heap : Simheap.t; head : cell; tail : cell }
  type ctx = { t : t; pending : (unit -> unit) Queue.t; mutable draining : bool }

  let mk_cell p = { m = Mutex.create (); ptr = p }

  (* ---- counts; destruction cascades run through the ctx queue so a
     dispose never runs while a cell lock is held. ---- *)

  let rec dec_strong c cb =
    if Counter.decrement cb.strong then
      Queue.push
        (fun () ->
          assert (not cb.disposed);
          cb.disposed <- true;
          (* destroy: release the node's own references *)
          clear_strong_cell c cb.node.next;
          clear_weak_cell c cb.node.prev;
          dec_weak c cb)
        c.pending

  and dec_weak _c cb = if Counter.decrement cb.weak then Simheap.free cb.block

  and clear_strong_cell c cell =
    Mutex.lock cell.m;
    let old = cell.ptr in
    cell.ptr <- None;
    Mutex.unlock cell.m;
    match old with Some cb -> dec_strong c cb | None -> ()

  and clear_weak_cell c cell =
    Mutex.lock cell.m;
    let old = cell.ptr in
    cell.ptr <- None;
    Mutex.unlock cell.m;
    match old with Some cb -> dec_weak c cb | None -> ()

  let drain c =
    if not c.draining then begin
      c.draining <- true;
      while not (Queue.is_empty c.pending) do
        (Queue.pop c.pending) ()
      done;
      c.draining <- false
    end

  (* ---- lock-based atomic shared pointer ops ---- *)

  (* load: the cell lock makes ptr-read + strong-increment atomic, so
     the count can never race to zero in between. *)
  let load_shared cell =
    Mutex.lock cell.m;
    let p = cell.ptr in
    (match p with
    | Some cb ->
        if not (Counter.increment_if_not_zero cb.strong) then
          failwith "dl_queue_locked: increment of dead count under lock"
    | None -> ());
    Mutex.unlock cell.m;
    p

  let store_shared c cell desired =
    (match desired with
    | Some cb -> ignore (Counter.increment_if_not_zero cb.strong)
    | None -> ());
    Mutex.lock cell.m;
    let old = cell.ptr in
    cell.ptr <- desired;
    Mutex.unlock cell.m;
    (match old with Some cb -> dec_strong c cb | None -> ());
    drain c

  let cas_shared c cell ~expected ~desired =
    Mutex.lock cell.m;
    let eq =
      match (cell.ptr, expected) with
      | None, None -> true
      | Some a, Some b -> a == b
      | _ -> false
    in
    if eq then begin
      (match desired with
      | Some cb -> ignore (Counter.increment_if_not_zero cb.strong)
      | None -> ());
      let old = cell.ptr in
      cell.ptr <- desired;
      Mutex.unlock cell.m;
      (match old with Some cb -> dec_strong c cb | None -> ());
      drain c;
      true
    end
    else begin
      Mutex.unlock cell.m;
      false
    end

  let store_weak c cell desired =
    (match desired with
    | Some cb -> ignore (Counter.increment_if_not_zero cb.weak)
    | None -> ());
    Mutex.lock cell.m;
    let old = cell.ptr in
    cell.ptr <- desired;
    Mutex.unlock cell.m;
    (match old with Some cb -> dec_weak c cb | None -> ());
    drain c

  (* weak load + upgrade in one step: lock the cell, bump weak, then
     try the strong upgrade via CAS-loop increment-if-not-zero. *)
  let upgrade_weak cell =
    Mutex.lock cell.m;
    let p = cell.ptr in
    let r =
      match p with
      | Some cb when Counter.increment_if_not_zero cb.strong -> Some cb
      | _ -> None
    in
    Mutex.unlock cell.m;
    r

  (* ---- the queue (Fig 10 shape) ---- *)

  let alloc_node t v =
    {
      node = { value = v; next = mk_cell None; prev = mk_cell None };
      strong = Counter.create 1;
      weak = Counter.create 1;
      block = Simheap.alloc t.heap;
      disposed = false;
    }

  let create ~max_threads:_ () =
    let heap = Simheap.create ~name:"dlq-locked" () in
    let t = { heap; head = mk_cell None; tail = mk_cell None } in
    let dummy = alloc_node t min_int in
    (* head and tail each take a strong count unit... *)
    ignore (Counter.increment_if_not_zero dummy.strong);
    ignore (Counter.increment_if_not_zero dummy.strong);
    t.head.ptr <- Some dummy;
    t.tail.ptr <- Some dummy;
    (* ...and the construction reference is dropped. *)
    ignore (Counter.decrement dummy.strong);
    t

  let ctx t _pid = { t; pending = Queue.create (); draining = false }

  let enqueue c v =
    let nu = alloc_node c.t v in
    let rec loop () =
      match load_shared c.t.tail with
      | None -> failwith "dl_queue_locked: null tail"
      | Some ltail ->
          store_weak c nu.node.prev (Some ltail);
          (* Help the previous enqueuer. *)
          (match upgrade_weak ltail.node.prev with
          | Some lprev ->
              (match load_shared lprev.node.next with
              | None -> ignore (cas_shared c lprev.node.next ~expected:None ~desired:(Some ltail))
              | Some nx -> dec_strong c nx);
              dec_strong c lprev;
              drain c
          | None -> ());
          if cas_shared c c.t.tail ~expected:(Some ltail) ~desired:(Some nu) then begin
            ignore (cas_shared c ltail.node.next ~expected:None ~desired:(Some nu));
            dec_strong c ltail;
            drain c
          end
          else begin
            dec_strong c ltail;
            drain c;
            loop ()
          end
    in
    loop ();
    dec_strong c nu;
    drain c

  let dequeue c =
    let rec loop () =
      match load_shared c.t.head with
      | None -> failwith "dl_queue_locked: null head"
      | Some lhead -> (
          match load_shared lhead.node.next with
          | None ->
              dec_strong c lhead;
              drain c;
              None
          | Some lnext ->
              if cas_shared c c.t.head ~expected:(Some lhead) ~desired:(Some lnext) then begin
                let v = lnext.node.value in
                dec_strong c lnext;
                dec_strong c lhead;
                drain c;
                Some v
              end
              else begin
                dec_strong c lnext;
                dec_strong c lhead;
                drain c;
                loop ()
              end)
    in
    loop ()

  let flush c = drain c
  let live_objects t = Simheap.live t.heap

  (* Reclamation is immediate once the per-ctx drain runs; nothing is
     parked cross-thread, so the backlog a sampler could observe is 0. *)
  let retired_backlog _ = 0

  let teardown t =
    let c = { t; pending = Queue.create (); draining = false } in
    clear_strong_cell c t.head;
    clear_strong_cell c t.tail;
    drain c
end
