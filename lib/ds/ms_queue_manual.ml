(** Michael–Scott lock-free FIFO queue (PODC 1996) under manual SMR —
    the structure hazard pointers were originally demonstrated on, and
    a second queue shape (single dummy node, no back-links) to contrast
    with the paper's doubly-linked queue.

    Protection discipline (Michael 2004): the dequeuer protects the
    head node, then its successor, and must re-validate [head == h]
    after each protection before dereferencing — the successor of a
    stale head may already be reclaimed under the pointer/interval
    schemes. The re-validation is performed unconditionally; for
    EBR/Hyaline it is redundant but harmless. *)

module Make (S : Smr.Smr_intf.S) = struct
  module Ar = Acquire_retire.Make (S)
  module Ident = Smr.Ident

  let name = S.name

  type node = { value : int; next : link Atomic.t }
  and link = node Ar.managed option

  type t = { ar : Ar.t; head : link Atomic.t; tail : link Atomic.t }
  type ctx = { t : t; pid : int }

  let mk_node ar ~pid v = Ar.alloc ar ~pid { value = v; next = Atomic.make None }

  let create ?slots_per_thread ?epoch_freq ~max_threads () =
    let ar = Ar.create ?slots_per_thread ?epoch_freq ~max_threads () in
    let dummy = mk_node ar ~pid:0 min_int in
    { ar; head = Atomic.make (Some dummy); tail = Atomic.make (Some dummy) }

  let ctx t pid = { t; pid }
  let ident_of = function None -> Ident.null | Some m -> Ident.of_val m

  let rec link_cas cell expected desired =
    let cur = Atomic.get cell in
    let eq =
      match (cur, expected) with
      | None, None -> true
      | Some a, Some b -> a == b
      | _ -> false
    in
    if not eq then false
    else if Atomic.compare_and_set cell cur desired then true
    else link_cas cell expected desired

  let link_is cell v =
    match (Atomic.get cell, v) with
    | None, None -> true
    | Some a, Some b -> a == b
    | _ -> false

  (* Announce-and-settle on an anchor cell (head or tail). *)
  let protect c (cell : link Atomic.t) =
    let smr = Ar.smr c.t.ar in
    if S.confirm_is_trivial then
      match S.try_acquire smr ~pid:c.pid Ident.null with
      | Some g -> (Atomic.get cell, g)
      | None -> failwith "ms_queue: out of announcement slots"
    else begin
      let v0 = Atomic.get cell in
      match S.try_acquire smr ~pid:c.pid (ident_of v0) with
      | None -> failwith "ms_queue: out of announcement slots"
      | Some g ->
          let rec settle () =
            let v = Atomic.get cell in
            if S.confirm smr ~pid:c.pid g (ident_of v) then (v, g) else settle ()
          in
          settle ()
    end

  let release c g = S.release (Ar.smr c.t.ar) ~pid:c.pid g

  let run_ejects c =
    match Ar.eject c.t.ar ~pid:c.pid with
    | [] -> ()
    | ops -> List.iter (fun op -> op c.pid) ops

  let enqueue c v =
    Ar.begin_critical_section c.t.ar ~pid:c.pid;
    let nu = mk_node c.t.ar ~pid:c.pid v in
    let rec loop () =
      let lt, g = protect c c.t.tail in
      match lt with
      | None ->
          (* The tail link is never null; still, don't leak the slot. *)
          release c g;
          failwith "ms_queue: null tail"
      | Some tm ->
          (* Validate tail still = tm before trusting it. *)
          if not (link_is c.t.tail lt) then begin
            release c g;
            loop ()
          end
          else begin
            let tnode = Ar.get tm in
            match Atomic.get tnode.next with
            | None ->
                if link_cas tnode.next None (Some nu) then begin
                  (* Swing the tail; failure means someone helped. *)
                  ignore (link_cas c.t.tail (Some tm) (Some nu));
                  release c g
                end
                else begin
                  release c g;
                  loop ()
                end
            | Some nx ->
                (* Help a lagging enqueuer advance the tail. *)
                ignore (link_cas c.t.tail (Some tm) (Some nx));
                release c g;
                loop ()
          end
    in
    loop ();
    Ar.end_critical_section c.t.ar ~pid:c.pid

  let dequeue c =
    Ar.begin_critical_section c.t.ar ~pid:c.pid;
    let rec loop () =
      let lh, gh = protect c c.t.head in
      match lh with
      | None ->
          release c gh;
          failwith "ms_queue: null head"
      | Some hm ->
          if not (link_is c.t.head lh) then begin
            release c gh;
            loop ()
          end
          else begin
            let hnode = Ar.get hm in
            let lt = Atomic.get c.t.tail in
            let next = Atomic.get hnode.next in
            match next with
            | None ->
                release c gh;
                None
            | Some nm ->
                (* Protect the successor, then re-validate the head:
                   a stale head's successor may already be reclaimed. *)
                let smr = Ar.smr c.t.ar in
                let gn =
                  if S.confirm_is_trivial then Option.get (S.try_acquire smr ~pid:c.pid Ident.null)
                  else begin
                    match S.try_acquire smr ~pid:c.pid (Ident.of_val nm) with
                    | None -> failwith "ms_queue: out of announcement slots"
                    | Some g ->
                        let rec settle () =
                          if S.confirm smr ~pid:c.pid g (Ident.of_val nm) then g
                          else settle ()
                        in
                        settle ()
                  end
                in
                if not (link_is c.t.head lh) then begin
                  release c gn;
                  release c gh;
                  loop ()
                end
                else if
                  match lt with Some tm -> tm == hm | None -> false
                then begin
                  (* Tail is lagging behind a non-empty queue: help. *)
                  ignore (link_cas c.t.tail lt next);
                  release c gn;
                  release c gh;
                  loop ()
                end
                else begin
                  let v = (Ar.get nm).value in
                  if link_cas c.t.head lh next then begin
                    Ar.retire_free c.t.ar ~pid:c.pid hm;
                    run_ejects c;
                    release c gn;
                    release c gh;
                    Some v
                  end
                  else begin
                    release c gn;
                    release c gh;
                    loop ()
                  end
                end
          end
    in
    let r = loop () in
    Ar.end_critical_section c.t.ar ~pid:c.pid;
    r

  let flush c = Ar.drain c.t.ar ~pid:c.pid
  let live_objects t = Simheap.live (Ar.heap t.ar)

  let teardown t =
    let rec go = function
      | None -> ()
      | Some (m : node Ar.managed) ->
          let next = Atomic.get m.Ar.value.next in
          if Simheap.is_live m.Ar.block then Simheap.free m.Ar.block;
          go next
    in
    go (Atomic.get t.head);
    Atomic.set t.head None;
    Atomic.set t.tail None;
    Ar.quiesce t.ar
end
