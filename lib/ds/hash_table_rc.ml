(** Michael's hash table under automatic reference counting: an array
    of {!Hm_list_rc} bucket cells sharing one RC runtime (paper
    Fig 13b, automatic side). *)

module Make (R : Cdrc.Intf.S) = struct
  module L = Hm_list_rc.Make (R)

  let name = R.scheme_name

  type t = { list : L.t; buckets : L.node R.asp array; nbuckets : int }
  type ctx = { t : t; c : L.ctx }

  let default_buckets = 1 lsl 16

  let create ?slots_per_thread ?epoch_freq ?(buckets = default_buckets) ~max_threads () =
    {
      list = L.create ?slots_per_thread ?epoch_freq ~max_threads ();
      buckets = Array.init buckets (fun _ -> R.Asp.make_null ());
      nbuckets = buckets;
    }

  let ctx t pid = { t; c = L.ctx t.list pid }
  let bucket t key = key * 2654435761 land max_int mod t.nbuckets
  let th ctx = ctx.c.L.th

  let insert ctx key =
    R.critically (th ctx) (fun () ->
        L.insert_at ctx.c ctx.t.buckets.(bucket ctx.t key) key)

  let remove ctx key =
    R.critically (th ctx) (fun () ->
        L.remove_at ctx.c ctx.t.buckets.(bucket ctx.t key) key)

  let contains ctx key =
    R.critically (th ctx) (fun () ->
        L.contains_at ctx.c ctx.t.buckets.(bucket ctx.t key) key)

  let range_query ctx lo hi =
    R.critically (th ctx) (fun () ->
        Array.fold_left (fun acc b -> acc + L.range_at ctx.c b lo hi) 0 ctx.t.buckets)

  let flush ctx = L.flush ctx.c
  let size t = Array.fold_left (fun acc b -> acc + L.size_at t.list.L.rt b) 0 t.buckets

  let live_objects t = L.live_objects t.list
  let peak_objects t = L.peak_objects t.list
  let reset_peak t = L.reset_peak t.list

  let teardown t =
    let th = R.thread t.list.L.rt 0 in
    Array.iter (fun b -> R.Asp.clear th b) t.buckets;
    R.quiesce t.list.L.rt
  let uaf_events _ = 0

  let snapshot_stats t = Some (R.snapshot_stats t.list.L.rt)
  let retired_backlog t = R.retired_backlog t.list.L.rt
  let watchdog_check t = R.watchdog_check t.list.L.rt
  let control t = R.control t.list.L.rt
end
