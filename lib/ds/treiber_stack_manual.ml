(** Treiber's lock-free stack under manual SMR — not one of the
    paper's benchmark structures, but the canonical smallest consumer
    of safe memory reclamation; included to show the scheme interface
    generalizes beyond the paper's three structures and as the simplest
    worked example of the announce/confirm protocol.

    The pop path is the classic read-reclaim race: read [top], read
    [top.next], CAS — between the reads another popper may free the old
    top. The protect/confirm step closes it for every scheme. *)

module Make (S : Smr.Smr_intf.S) = struct
  module Ar = Acquire_retire.Make (S)
  module Ident = Smr.Ident

  let name = S.name

  type node = { value : int; next : node Ar.managed option }

  type t = { ar : Ar.t; top : node Ar.managed option Atomic.t }
  type ctx = { t : t; pid : int; bo : Repro_util.Backoff.t }

  let create ?slots_per_thread ?epoch_freq ~max_threads () =
    { ar = Ar.create ?slots_per_thread ?epoch_freq ~max_threads (); top = Atomic.make None }

  (* Jittered backoff (seeded per thread) for the slot-exhaustion
     retry: threads that run out of HP/HE announcement slots together
     must not retry in lockstep. *)
  let ctx t pid =
    { t; pid; bo = Repro_util.Backoff.create ~rng:(Repro_util.Rng.create ~seed:(0x5eed + pid)) () }
  let ident_of = function None -> Ident.null | Some m -> Ident.of_val m

  let rec link_cas cell expected desired =
    let cur = Atomic.get cell in
    let eq =
      match (cur, expected) with
      | None, None -> true
      | Some a, Some b -> a == b
      | _ -> false
    in
    if not eq then false
    else if Atomic.compare_and_set cell cur desired then true
    else link_cas cell expected desired

  let push c v =
    Ar.begin_critical_section c.t.ar ~pid:c.pid;
    let rec go () =
      let top = Atomic.get c.t.top in
      let m = Ar.alloc c.t.ar ~pid:c.pid { value = v; next = top } in
      if not (link_cas c.t.top top (Some m)) then begin
        Simheap.free m.Ar.block;
        go ()
      end
    in
    go ();
    Ar.end_critical_section c.t.ar ~pid:c.pid

  let pop c =
    Ar.begin_critical_section c.t.ar ~pid:c.pid;
    let smr = Ar.smr c.t.ar in
    let rec go ?(attempts = 0) () =
      let v0 = Atomic.get c.t.top in
      match S.try_acquire smr ~pid:c.pid (ident_of v0) with
      | None ->
          (* Slots exhausted (HP/HE): back off with jitter and retry —
             a concurrent releaser or a woken stalled guard may free
             one — before declaring the budget truly blown. *)
          if attempts >= 16 then failwith "treiber_stack: out of announcement slots"
          else begin
            Repro_util.Backoff.once c.bo;
            go ~attempts:(attempts + 1) ()
          end
      | Some g ->
          Repro_util.Backoff.reset c.bo;
          let rec settle () =
            let v = Atomic.get c.t.top in
            if S.confirm smr ~pid:c.pid g (ident_of v) then v else settle ()
          in
          let top = settle () in
          let result =
            match top with
            | None ->
                S.release smr ~pid:c.pid g;
                None
            | Some m ->
                let node = Ar.get m in
                if link_cas c.t.top top node.next then begin
                  S.release smr ~pid:c.pid g;
                  Ar.retire_free c.t.ar ~pid:c.pid m;
                  (match Ar.eject c.t.ar ~pid:c.pid with
                  | [] -> ()
                  | ops -> List.iter (fun op -> op c.pid) ops);
                  Some node.value
                end
                else begin
                  S.release smr ~pid:c.pid g;
                  go ()
                end
          in
          result
    in
    let r = go () in
    Ar.end_critical_section c.t.ar ~pid:c.pid;
    r

  let flush c = Ar.drain c.t.ar ~pid:c.pid

  (** Reap a crashed thread's scheme state (see {!Acquire_retire}). *)
  let abandon t ~pid = Ar.abandon t.ar ~pid

  (* Quiescent helpers *)
  let size t =
    let rec go acc = function
      | None -> acc
      | Some (m : node Ar.managed) -> go (acc + 1) m.Ar.value.next
    in
    go 0 (Atomic.get t.top)

  let live_objects t = Simheap.live (Ar.heap t.ar)
  let retired_backlog t = Ar.total_pending t.ar

  let teardown t =
    let rec go = function
      | None -> ()
      | Some (m : node Ar.managed) ->
          let next = m.Ar.value.next in
          if Simheap.is_live m.Ar.block then Simheap.free m.Ar.block;
          go next
    in
    go (Atomic.get t.top);
    Atomic.set t.top None;
    Ar.quiesce t.ar
end
