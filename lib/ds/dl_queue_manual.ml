(** Ramalhete–Correia's doubly-linked queue with its {e original}
    custom manual memory management — the "Original" baseline of the
    paper's Fig 12.

    The original scheme is a specialized hazard-pointer variant: each
    thread announces the single node it operates on, and an announced
    node protects {e itself and its neighbours} — the scan holds back a
    retired node while it, its [prev], or its [next] is announced. This
    halves the memory fences compared to general-purpose HP, which is
    why the paper expects no general-purpose scheme (including ours) to
    beat it (§5.2). *)

module Make () = struct
  module Ident = Smr.Ident
  module Padded = Repro_util.Padded

  let name = "Original"

  type node = { value : int; next : link Atomic.t; prev : link Atomic.t; block : Simheap.block }
  and link = node option

  type t = {
    heap : Simheap.t;
    ann : Ident.t Padded.t; (* one announcement slot per thread *)
    retired : node Queue.t array; (* owner-thread only *)
    head : link Atomic.t;
    tail : link Atomic.t;
    max_threads : int;
  }

  type ctx = { t : t; pid : int }

  let scan_threshold t = (2 * t.max_threads) + 8

  let mk_node t v prev =
    {
      value = v;
      next = Atomic.make None;
      prev = Atomic.make prev;
      block = Simheap.alloc t.heap;
    }

  let create ~max_threads () =
    let heap = Simheap.create ~name:"dlq-original" () in
    let t =
      {
        heap;
        ann = Padded.create max_threads Ident.null;
        retired = Array.init max_threads (fun _ -> Queue.create ());
        head = Atomic.make None;
        tail = Atomic.make None;
        max_threads;
      }
    in
    let dummy = mk_node t min_int None in
    Atomic.set t.head (Some dummy);
    Atomic.set t.tail (Some dummy);
    t

  let ctx t pid = { t; pid }
  let ident_of = function None -> Ident.null | Some n -> Ident.of_val n

  (* Announce-and-revalidate on the head or tail anchor. *)
  let protect c (anchor : link Atomic.t) =
    let rec go () =
      let l = Atomic.get anchor in
      Padded.set c.t.ann c.pid (ident_of l);
      let l' = Atomic.get anchor in
      if Ident.equal (ident_of l') (ident_of l) then l else go ()
    in
    go ()

  let unannounce c = Padded.set c.t.ann c.pid Ident.null

  (* Deref with the poisoned-heap check: a protocol violation shows up
     as Use_after_free instead of silent corruption. *)
  let deref (n : node) =
    Simheap.check_live n.block;
    n

  let scan c =
    let t = c.t in
    let announced = ref [] in
    for i = 0 to t.max_threads - 1 do
      let id = Padded.get t.ann i in
      if not (Ident.is_null id) then announced := id :: !announced
    done;
    let announced = !announced in
    let is_announced id = List.exists (Ident.equal id) announced in
    let keep = Queue.create () in
    Queue.iter
      (fun (n : node) ->
        (* Protected while the node or either neighbour is announced;
           the neighbour links are read from the retired node itself,
           which we still own. *)
        let held =
          is_announced (Ident.of_val n)
          || is_announced (ident_of (Atomic.get n.prev))
          || is_announced (ident_of (Atomic.get n.next))
        in
        if held then Queue.push n keep else Simheap.free n.block)
      t.retired.(c.pid);
    Queue.clear t.retired.(c.pid);
    Queue.transfer keep t.retired.(c.pid)

  let retire c n =
    Queue.push n c.t.retired.(c.pid);
    if Queue.length c.t.retired.(c.pid) >= scan_threshold c.t then scan c

  let rec cas_link cell expected desired =
    let cur = Atomic.get cell in
    let eq =
      match (cur, expected) with
      | None, None -> true
      | Some a, Some b -> a == b
      | _ -> false
    in
    if not eq then false
    else if Atomic.compare_and_set cell cur desired then true
    else cas_link cell expected desired

  let enqueue c v =
    let nu = mk_node c.t v None in
    let rec loop () =
      match protect c c.t.tail with
      | None -> failwith "dl_queue_manual: null tail"
      | Some ltail ->
          let lt = deref ltail in
          Atomic.set nu.prev (Some ltail);
          (* Help the previous enqueuer: lprev is protected by
             adjacency to the announced ltail. *)
          (match Atomic.get lt.prev with
          | Some lprev when Atomic.get (deref lprev).next = None ->
              ignore (cas_link (deref lprev).next None (Some ltail))
          | _ -> ());
          if cas_link c.t.tail (Some ltail) (Some nu) then begin
            ignore (cas_link lt.next None (Some nu));
            unannounce c
          end
          else loop ()
    in
    loop ()

  let dequeue c =
    let rec loop () =
      match protect c c.t.head with
      | None -> failwith "dl_queue_manual: null head"
      | Some lhead -> (
          let h = deref lhead in
          match Atomic.get h.next with
          | None ->
              unannounce c;
              None
          | Some lnext ->
              if cas_link c.t.head (Some lhead) (Some lnext) then begin
                (* lnext is protected by adjacency to lhead, which we
                   still announce. *)
                let v = (deref lnext).value in
                retire c lhead;
                unannounce c;
                Some v
              end
              else loop ())
    in
    loop ()

  let flush c = scan c
  let live_objects t = Simheap.live t.heap
  let retired_backlog t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.retired

  let teardown t =
    let rec free_chain = function
      | None -> ()
      | Some (n : node) ->
          let next = Atomic.get n.next in
          if Simheap.is_live n.block then Simheap.free n.block;
          free_chain next
    in
    free_chain (Atomic.get t.head);
    Atomic.set t.head None;
    Atomic.set t.tail None;
    Array.iter
      (fun q ->
        Queue.iter (fun (n : node) -> if Simheap.is_live n.block then Simheap.free n.block) q;
        Queue.clear q)
      t.retired
end
