(** Deterministic schedule exploration for the lock-free cores
    (dscheck-style; see DESIGN.md §8).

    The schedule-sensitive algorithms — the sticky counter (Fig 7), the
    acquire–retire announcement protocol (Fig 2) and the CDRC
    weak-pointer upgrade path (Figs 8–9) — are functorized over the
    {!ATOMIC} signature. Production code instantiates them with
    {!Passthrough} (literally [Stdlib.Atomic]: zero cost); the test
    harness instantiates them with {!Traced}, whose every operation
    yields to a controller via an effect. The controller runs each
    "domain" as a cooperative fiber on a single OS thread and decides,
    at every atomic step, which fiber runs next — so a bad interleaving
    is a *schedule we can enumerate and replay*, not a lottery ticket.

    Three explorers drive the controller:

    - {!explore_dfs}: exhaustive depth-first enumeration of schedules,
      optionally preemption-bounded (CHESS-style): a context switch
      away from a still-runnable fiber costs one preemption, and
      schedules over the budget are pruned. Tiny configs (2 domains ×
      a few ops) are feasible unbounded; the preemption bound keeps
      larger ones exhaustive-in-practice, since reclamation races need
      only 1–3 preemptions.
    - {!explore_pct}: PCT-style randomized priority schedules
      (Burckhardt et al.): random fiber priorities plus [depth - 1]
      random priority-change points per run.
    - {!explore_random}: uniform random walk over runnable fibers.

    Every failure carries the executed schedule and a replay
    recipe; {!replay} re-runs a single schedule deterministically. *)

(* ------------------------------------------------------------------ *)
(* The atomic shim *)

module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
end

(** Production path: the real thing, no indirection. *)
module Passthrough : ATOMIC with type 'a t = 'a Atomic.t = Stdlib.Atomic

type _ Effect.t += Yield : unit Effect.t

(* Depth of active controllers on this domain. Exploration is strictly
   single-domain (that is the point), so a plain ref suffices; the
   guard makes Traced usable outside a controller (it just degrades to
   sequential execution, which the unit tests of the functorized cores
   rely on). *)
let controller_depth = ref 0

let yield () = if !controller_depth > 0 then Effect.perform Yield

(* ------------------------------------------------------------------ *)
(* Operation tracing (the sanitizer's event feed, DESIGN.md §14) *)

type op_kind = Op_get | Op_set | Op_exchange | Op_cas of bool | Op_faa

type op_event = {
  op_fiber : int;  (** executing fiber, or [-1] for setup/oracle code *)
  op_step : int;  (** controller step at which the op executed *)
  op_loc : int;  (** unique id of the {!Traced} cell *)
  op_kind : op_kind;
}

(* One observer at a time is plenty: the monitor is per-schedule and
   [run_schedule] clears the hook on exit, so a stale tracer can never
   leak into an unrelated run. Scenario builders re-install on each
   [mk ()]. *)
let tracer : (op_event -> unit) option ref = ref None
let set_tracer f = tracer := f

(* Maintained by [run_schedule]; [-1] outside fiber context (setup code
   in the scenario builder, and the final [check] oracle). *)
let running_fiber = ref (-1)
let running_step = ref 0
let current_fiber () = !running_fiber
let current_step () = !running_step

let trace_uid = ref 0

let emit loc kind =
  match !tracer with
  | None -> ()
  | Some f ->
      f { op_fiber = !running_fiber; op_step = !running_step; op_loc = loc; op_kind = kind }

(** Traced shim: a plain mutable cell, sound because the controller
    serializes all fibers on one thread; each operation is one
    indivisible step *after* the scheduling point. Every operation also
    reports itself to the installed {!set_tracer} hook (after the
    scheduling point, i.e. at the moment the op takes effect), which is
    how the happens-before sanitizer in [lib/analysis] sees the
    synchronization structure of a schedule. *)
module Traced : ATOMIC = struct
  type 'a t = { mutable v : 'a; uid : int }

  let make v =
    incr trace_uid;
    { v; uid = !trace_uid }

  let get r =
    yield ();
    emit r.uid Op_get;
    r.v

  let set r v =
    yield ();
    emit r.uid Op_set;
    r.v <- v

  let exchange r v =
    yield ();
    emit r.uid Op_exchange;
    let old = r.v in
    r.v <- v;
    old

  (* Same comparison as the hardware CAS [Stdlib.Atomic] performs:
     physical equality (coincides with structural on the ints the
     functorized cores store). *)
  let compare_and_set r old nu =
    yield ();
    if r.v == old then begin
      emit r.uid (Op_cas true);
      r.v <- nu;
      true
    end
    else begin
      emit r.uid (Op_cas false);
      false
    end

  let fetch_and_add r n =
    yield ();
    emit r.uid Op_faa;
    let old = r.v in
    r.v <- old + n;
    old
end

(** Counting shim: the production primitives ([Stdlib.Atomic], no
    behavioral change) plus one plain counter per operation kind. This
    is the third instantiation of the PR 3 functor boundary — the perf
    profiler ([Workload.Perf_runner]) drives the functorized cores over
    it with pinned single-domain scripts, so "atomics per operation" is
    an exact, deterministic number rather than a sampled estimate.

    Off the production path by construction: production code keeps
    instantiating {!Passthrough}; nothing here runs unless a profiling
    script instantiates the cores over [Counting]. The counters are
    plain (unsynchronized) refs — profiling scripts are single-domain,
    like the deterministic telemetry tests. [make] is deliberately not
    counted: allocation is not a protocol step. *)
module Counting = struct
  type 'a t = 'a Atomic.t

  type counts = {
    gets : int;
    sets : int;
    exchanges : int;
    cas : int;  (** CAS attempts, successful or not *)
    cas_failures : int;  (** the failed subset of [cas] *)
    faa : int;
  }

  let zero = { gets = 0; sets = 0; exchanges = 0; cas = 0; cas_failures = 0; faa = 0 }
  let state = ref zero
  let reset () = state := zero
  let snapshot () = !state

  (* Failed CAS attempts are already inside [cas]. *)
  let total c = c.gets + c.sets + c.exchanges + c.cas + c.faa

  let make = Atomic.make

  let get r =
    state := { !state with gets = !state.gets + 1 };
    Atomic.get r

  let set r v =
    state := { !state with sets = !state.sets + 1 };
    Atomic.set r v

  let exchange r v =
    state := { !state with exchanges = !state.exchanges + 1 };
    Atomic.exchange r v

  let compare_and_set r old nu =
    let ok = Atomic.compare_and_set r old nu in
    state :=
      {
        !state with
        cas = !state.cas + 1;
        cas_failures = (!state.cas_failures + if ok then 0 else 1);
      };
    ok

  let fetch_and_add r n =
    state := { !state with faa = !state.faa + 1 };
    Atomic.fetch_and_add r n
end

(* ------------------------------------------------------------------ *)
(* Scenarios and single-schedule execution *)

type scenario = {
  fibers : (unit -> unit) array;  (** one function per simulated domain *)
  check : unit -> unit;  (** final-state oracle; raise to report a violation *)
}

exception Step_bound_exceeded of int
exception Abort  (** used to discontinue leftover fibers after a violation *)

type fiber_state =
  | Pending of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Finished

(* Execute one schedule. [choose ~runnable ~last ~step] picks the next
   fiber among [runnable] (ascending indices). Returns the executed
   choice list and, per step, the runnable set (for DFS backtracking) —
   or the offending exception and the choices made so far. *)
let run_schedule ?(max_steps = 10_000) ~choose (s : scenario) :
    (int list * int list list, exn * int list) result =
  let n = Array.length s.fibers in
  let state = Array.map (fun f -> Pending f) s.fibers in
  let trace = ref [] and alts = ref [] in
  let step = ref 0 in
  let last = ref (-1) in
  let runnable () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      match state.(i) with Finished -> () | _ -> acc := i :: !acc
    done;
    !acc
  in
  let run_fiber i =
    let effc : type a. a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option =
      function
      | Yield -> Some (fun k -> state.(i) <- Suspended k)
      | _ -> None
    in
    let handler =
      { Effect.Deep.retc = (fun () -> state.(i) <- Finished); exnc = raise; effc }
    in
    match state.(i) with
    | Pending f -> Effect.Deep.match_with f () handler
    | Suspended k -> Effect.Deep.continue k ()
    | Finished -> invalid_arg "Sched: scheduled a finished fiber"
  in
  let cleanup () =
    (* Discontinue leftover fibers so their [Fun.protect] finalizers
       run; swallow whatever they raise on the way out. *)
    Array.iteri
      (fun i st ->
        match st with
        | Suspended k -> (
            state.(i) <- Finished;
            try Effect.Deep.discontinue k Abort with _ -> ())
        | _ -> ())
      state
  in
  incr controller_depth;
  Fun.protect
    ~finally:(fun () ->
      decr controller_depth;
      (* The tracer is per-schedule state: scenario builders install it
         in [mk ()], so clearing it here guarantees no events from this
         run's monitor ever reach a later, unrelated run. *)
      running_fiber := -1;
      set_tracer None)
    (fun () ->
      (* The oracle runs after every fiber has finished: no concurrency
         remains, so traced operations inside it must degrade to plain
         sequential ones rather than yield (there is no handler on this
         stack). Masking the depth does exactly that. *)
      let run_check () =
        let saved = !controller_depth in
        controller_depth := 0;
        running_fiber := -1;
        running_step := !step;
        Fun.protect ~finally:(fun () -> controller_depth := saved) s.check
      in
      let rec loop () =
        match runnable () with
        | [] -> (
            match run_check () with
            | () -> Ok (List.rev !trace, List.rev !alts)
            | exception e -> Error (e, List.rev !trace))
        | rs -> (
            if !step >= max_steps then begin
              cleanup ();
              Error (Step_bound_exceeded max_steps, List.rev !trace)
            end
            else begin
              let i = choose ~runnable:rs ~last:!last ~step:!step in
              if not (List.mem i rs) then
                invalid_arg
                  (Printf.sprintf "Sched: schedule chose fiber %d, not runnable at step %d"
                     i !step);
              trace := i :: !trace;
              alts := rs :: !alts;
              incr step;
              last := i;
              running_fiber := i;
              running_step := !step - 1;
              match
                Fun.protect ~finally:(fun () -> running_fiber := -1) (fun () -> run_fiber i)
              with
              | () -> loop ()
              | exception e ->
                  state.(i) <- Finished;
                  cleanup ();
                  Error (e, List.rev !trace)
            end)
      in
      loop ())

(* ------------------------------------------------------------------ *)
(* Results and replay *)

type failure = {
  f_trace : int list;  (** executed schedule of the failing run *)
  f_message : string;  (** rendering of the violation *)
  f_replay : string;  (** how to reproduce: trace or seed recipe *)
  f_schedules : int;  (** schedules executed before the failure *)
}

type result =
  | Pass of { schedules : int }
  | Fail of failure
  | Exhausted of { schedules : int }
      (** hit the schedule budget before completing the search *)

let pp_trace ppf trace =
  Format.fprintf ppf "[%s]" (String.concat ";" (List.map string_of_int trace))

let trace_to_string trace = Format.asprintf "%a" pp_trace trace

let trace_of_string s =
  (* Strict parse: a schedule string that is not exactly what
     [trace_to_string] produces (modulo whitespace and comma
     separators) is a user error, and silently truncating or
     mis-reading it would replay the *wrong* schedule — reject with a
     message naming the offending token instead. *)
  let orig = s in
  let fail fmt =
    Printf.ksprintf (fun m -> invalid_arg ("Sched.trace_of_string: " ^ m)) fmt
  in
  let s = String.trim s in
  let len = String.length s in
  let s =
    match (len > 0 && s.[0] = '[', len > 0 && s.[len - 1] = ']') with
    | true, true -> String.sub s 1 (len - 2)
    | false, false -> s
    | true, false | false, true -> fail "unbalanced brackets in %S" orig
  in
  if String.exists (fun c -> c = '[' || c = ']') s then
    fail "stray bracket inside %S" orig;
  let s = String.trim s in
  if s = "" then []
  else
    String.split_on_char ';' s
    |> List.concat_map (String.split_on_char ',')
    |> List.map (fun tok ->
           let t = String.trim tok in
           if t = "" then fail "empty element in %S" orig
           else
             (* [int_of_string_opt] covers both garbage and ints that
                overflow the native word. *)
             match int_of_string_opt t with
             | None -> fail "invalid fiber index %S in %S" t orig
             | Some i when i < 0 -> fail "negative fiber index %d in %S" i orig
             | Some i -> i)

let message_of_exn e =
  match e with
  | Failure m -> m
  | Invalid_argument m -> "Invalid_argument: " ^ m
  | Step_bound_exceeded n ->
      Printf.sprintf "step bound (%d) exceeded: possible livelock under this schedule" n
  | e -> Printexc.to_string e

(** Re-run one schedule: follow [trace]; if the program runs past the
    end of the trace, continue with the first runnable fiber. *)
let replay ?max_steps ~trace (mk : unit -> scenario) : result =
  let arr = Array.of_list trace in
  let choose ~runnable ~last:_ ~step =
    if step < Array.length arr then arr.(step) else List.hd runnable
  in
  match run_schedule ?max_steps ~choose (mk ()) with
  | Ok _ -> Pass { schedules = 1 }
  | Error (e, t) ->
      Fail
        {
          f_trace = t;
          f_message = message_of_exn e;
          f_replay = "replay trace " ^ trace_to_string t;
          f_schedules = 1;
        }

(* ------------------------------------------------------------------ *)
(* Exhaustive DFS, optionally preemption-bounded *)

let preemptions_of ~trace ~alts =
  (* count context switches away from a still-runnable fiber *)
  let rec go last n trace alts =
    match (trace, alts) with
    | [], _ | _, [] -> n
    | c :: trace', rs :: alts' ->
        let n = if last >= 0 && c <> last && List.mem last rs then n + 1 else n in
        go c n trace' alts'
  in
  go (-1) 0 trace alts

let explore_dfs ?max_steps ?(max_schedules = 1_000_000) ?max_preemptions
    (mk : unit -> scenario) : result =
  let schedules = ref 0 in
  let budget_hit = ref false in
  (* Run one schedule following [prefix], then defaulting to "stay on
     the last fiber if runnable, else lowest index" — the
     preemption-free completion, so bounding preemptions only needs to
     look at deviations. *)
  let run_prefix prefix =
    incr schedules;
    let arr = Array.of_list prefix in
    let choose ~runnable ~last ~step =
      if step < Array.length arr then arr.(step)
      else if last >= 0 && List.mem last runnable then last
      else List.hd runnable
    in
    run_schedule ?max_steps ~choose (mk ())
  in
  (* DFS over the schedule tree: each run yields the executed trace and
     the runnable set at every step; recursing on every untried
     alternative at every depth >= |prefix| covers the subtree. *)
  let rec dfs prefix : result option =
    if !schedules >= max_schedules then begin
      budget_hit := true;
      None
    end
    else
      match run_prefix prefix with
      | Error (e, t) ->
          Some
            (Fail
               {
                 f_trace = t;
                 f_message = message_of_exn e;
                 f_replay = "replay trace " ^ trace_to_string t;
                 f_schedules = !schedules;
               })
      | Ok (trace, alts) ->
          let plen = List.length prefix in
          let trace_a = Array.of_list trace and alts_a = Array.of_list alts in
          let nsteps = Array.length trace_a in
          let rec deviate idx =
            if idx >= nsteps then None
            else begin
              let chosen = trace_a.(idx) in
              let head i = Array.to_list (Array.sub trace_a 0 i) in
              let rec alts_loop = function
                | [] -> deviate (idx + 1)
                | a :: rest when a = chosen -> alts_loop rest
                | a :: rest -> (
                    let prefix' = head idx @ [ a ] in
                    let ok_budget =
                      match max_preemptions with
                      | None -> true
                      | Some b ->
                          let alts_prefix =
                            Array.to_list (Array.sub alts_a 0 idx) @ [ alts_a.(idx) ]
                          in
                          preemptions_of ~trace:prefix' ~alts:alts_prefix <= b
                    in
                    if not ok_budget then alts_loop rest
                    else
                      match dfs prefix' with
                      | Some r -> Some r
                      | None -> alts_loop rest)
              in
              (* alternatives at steps inside the given prefix were
                 already covered by our caller *)
              if idx < plen then deviate (idx + 1) else alts_loop alts_a.(idx)
            end
          in
          deviate plen
  in
  match dfs [] with
  | Some r -> r
  | None ->
      if !budget_hit then Exhausted { schedules = !schedules }
      else Pass { schedules = !schedules }

(* ------------------------------------------------------------------ *)
(* Randomized explorers *)

let mix_seed seed iter = (seed * 1_000_003) + iter

let explore_random ?max_steps ?(iters = 1_000) ~seed (mk : unit -> scenario) : result =
  let rec go it =
    if it >= iters then Pass { schedules = iters }
    else begin
      let rng = Repro_util.Rng.create ~seed:(mix_seed seed it) in
      let choose ~runnable ~last:_ ~step:_ =
        List.nth runnable (Repro_util.Rng.int rng (List.length runnable))
      in
      match run_schedule ?max_steps ~choose (mk ()) with
      | Ok _ -> go (it + 1)
      | Error (e, t) ->
          Fail
            {
              f_trace = t;
              f_message = message_of_exn e;
              f_replay =
                Printf.sprintf "mode=random seed=%d iter=%d (trace %s)" seed it
                  (trace_to_string t);
              f_schedules = it + 1;
            }
    end
  in
  go 0

(* PCT (probabilistic concurrency testing): assign random priorities,
   run the highest-priority runnable fiber, and at [depth - 1] random
   change points drop the running fiber's priority below everything
   else. Finds any bug of depth d with probability >= 1/(n * k^(d-1))
   per run. *)
let explore_pct ?(max_steps = 10_000) ?(iters = 1_000) ?(depth = 3) ~seed
    (mk : unit -> scenario) : result =
  (* PCT draws change points from [0, k) where k estimates the run
     length in steps — NOT from [0, max_steps): the bound is orders of
     magnitude above real runs and change points would never land
     inside one. Probe one schedule to estimate k. *)
  let probe_len =
    let choose ~runnable ~last ~step:_ =
      if last >= 0 && List.mem last runnable then last else List.hd runnable
    in
    match run_schedule ~max_steps ~choose (mk ()) with
    | Ok (trace, _) -> List.length trace
    | Error (_, trace) -> List.length trace
  in
  let horizon = max 1 probe_len in
  let rec go it =
    if it >= iters then Pass { schedules = iters }
    else begin
      let rng = Repro_util.Rng.create ~seed:(mix_seed seed it) in
      let scen = mk () in
      let n = Array.length scen.fibers in
      (* priorities: higher value runs first; start with a random
         permutation of n .. 2n-1 so change points (0 .. depth-2,
         descending) always sink below initial priorities *)
      let prio = Array.init n (fun i -> n + i) in
      for i = n - 1 downto 1 do
        let j = Repro_util.Rng.int rng (i + 1) in
        let tmp = prio.(i) in
        prio.(i) <- prio.(j);
        prio.(j) <- tmp
      done;
      let change_points =
        Array.init (max 0 (depth - 1)) (fun _ -> Repro_util.Rng.int rng horizon)
      in
      let next_sink = ref (depth - 2) in
      let choose ~runnable ~last:_ ~step =
        let best =
          List.fold_left
            (fun acc i -> match acc with
              | Some j when prio.(j) >= prio.(i) -> acc
              | _ -> Some i)
            None runnable
        in
        let i = Option.get best in
        if Array.exists (fun cp -> cp = step) change_points then begin
          prio.(i) <- !next_sink;
          decr next_sink
        end;
        i
      in
      match run_schedule ~max_steps ~choose scen with
      | Ok _ -> go (it + 1)
      | Error (e, t) ->
          Fail
            {
              f_trace = t;
              f_message = message_of_exn e;
              f_replay =
                Printf.sprintf "mode=pct seed=%d iter=%d depth=%d (trace %s)" seed it
                  depth (trace_to_string t);
              f_schedules = it + 1;
            }
    end
  in
  go 0

let pp_result ppf = function
  | Pass { schedules } -> Format.fprintf ppf "pass (%d schedules)" schedules
  | Exhausted { schedules } ->
      Format.fprintf ppf "exhausted schedule budget (%d schedules) without a verdict"
        schedules
  | Fail f ->
      Format.fprintf ppf "counterexample after %d schedules:@.  %s@.  schedule %a@.  replay: %s"
        f.f_schedules f.f_message pp_trace f.f_trace f.f_replay
