(** Deterministic schedule exploration for the lock-free cores.

    See DESIGN.md §8. The schedule-sensitive algorithms are functorized
    over {!ATOMIC}; production instantiates {!Passthrough} (zero-cost,
    literally [Stdlib.Atomic]), tests instantiate {!Traced}, which
    yields to a cooperative controller at every atomic operation. The
    explorers enumerate or sample schedules; every failure carries a
    deterministic replay recipe. *)

module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
end

module Passthrough : ATOMIC with type 'a t = 'a Atomic.t
(** The production shim: [Stdlib.Atomic] itself. *)

module Traced : ATOMIC
(** The exploration shim: every operation is a scheduling point.
    Usable only under a controller (outside one it degrades to plain
    sequential execution). *)

(** The profiling shim: real atomics plus exact per-operation-kind
    counters (DESIGN.md §11). Single-domain use only (plain counters);
    production code never instantiates it — the perf profiler drives
    pinned scripts of the functorized cores over it to report
    deterministic atomics-per-operation costs. *)
module Counting : sig
  include ATOMIC with type 'a t = 'a Atomic.t

  type counts = {
    gets : int;
    sets : int;
    exchanges : int;
    cas : int;  (** CAS attempts, successful or not *)
    cas_failures : int;  (** the failed subset of [cas] *)
    faa : int;
  }

  val reset : unit -> unit
  val snapshot : unit -> counts

  val total : counts -> int
  (** All counted operations; [cas_failures] is a subset of [cas] and
      is not re-added. [make] is never counted. *)
end

val yield : unit -> unit
(** Explicit scheduling point. No-op outside a controller; under one,
    hands control to the scheduler. Use to interleave code that does
    not go through {!Traced} (e.g. whole data-structure operations). *)

(** {1 Operation tracing}

    The event feed for schedule-level analyses (the happens-before
    sanitizer in [lib/analysis], DESIGN.md §14). Every {!Traced}
    operation reports itself — after its scheduling point, at the
    moment it takes effect — to the installed tracer. *)

type op_kind = Op_get | Op_set | Op_exchange | Op_cas of bool | Op_faa

type op_event = {
  op_fiber : int;
      (** executing fiber index, or [-1] for code outside fiber context
          (scenario setup, the final [check] oracle, cleanup) *)
  op_step : int;  (** controller step at which the op executed *)
  op_loc : int;  (** unique id of the {!Traced} cell (per-process) *)
  op_kind : op_kind;
}

val set_tracer : (op_event -> unit) option -> unit
(** Install (or clear) the single operation observer. Per-schedule
    state: {e every} [run] clears the tracer when it finishes, so
    scenario builders must re-install it on each [mk ()] call. *)

val current_fiber : unit -> int
(** Index of the fiber currently executing under a controller, or [-1]
    outside fiber context. Monitors use this to attribute non-atomic
    protocol events (deref/retire/free) to fibers. *)

val current_step : unit -> int
(** The controller step of the currently-executing fiber segment. *)

(** {1 Scenarios} *)

type scenario = {
  fibers : (unit -> unit) array;  (** one function per simulated domain *)
  check : unit -> unit;  (** final-state oracle; raise to report a violation *)
}
(** A schedule-exploration subject. Builders must return a {e fresh}
    scenario on every call (explorers re-execute from scratch for each
    schedule), and must be deterministic apart from scheduling. *)

exception Step_bound_exceeded of int
(** Raised (as a verdict) when a single schedule exceeds its step
    budget — livelock under that schedule, or a too-small bound. *)

(** {1 Results} *)

type failure = {
  f_trace : int list;  (** executed schedule (fiber index per step) *)
  f_message : string;  (** rendering of the violation *)
  f_replay : string;  (** how to reproduce: trace or seed recipe *)
  f_schedules : int;  (** schedules executed up to and including the failure *)
}

type result =
  | Pass of { schedules : int }
  | Fail of failure
  | Exhausted of { schedules : int }
      (** schedule budget hit before the search completed *)

val pp_result : Format.formatter -> result -> unit
val pp_trace : Format.formatter -> int list -> unit

val trace_to_string : int list -> string
(** Render a schedule as ["[0;1;1;0]"]. *)

val trace_of_string : string -> int list
(** Parse the {!trace_to_string} format (also accepts commas as
    separators and surrounding whitespace). Strict: raises
    [Invalid_argument] — naming the offending token — on unbalanced
    brackets, empty elements, non-numeric or overflowing tokens, and
    negative fiber indices. Never silently truncates. *)

(** {1 Explorers} *)

val explore_dfs :
  ?max_steps:int ->
  ?max_schedules:int ->
  ?max_preemptions:int ->
  (unit -> scenario) ->
  result
(** Exhaustive depth-first enumeration of schedules. [max_preemptions]
    bounds context switches away from a still-runnable fiber
    (CHESS-style); omit it for full exhaustiveness on tiny configs.
    [max_schedules] (default 1e6) turns a runaway search into
    {!Exhausted} rather than a hang. *)

val explore_random : ?max_steps:int -> ?iters:int -> seed:int -> (unit -> scenario) -> result
(** [iters] independent uniformly-random walks; run [i] uses a seed
    derived from [(seed, i)], so a failing (seed, iter) pair replays. *)

val explore_pct :
  ?max_steps:int -> ?iters:int -> ?depth:int -> seed:int -> (unit -> scenario) -> result
(** PCT (probabilistic concurrency testing): random fiber priorities
    plus [depth - 1] random priority-change points per run. Detects a
    depth-[d] bug with probability ≥ 1/(n·k^(d-1)) per run. *)

val replay : ?max_steps:int -> trace:int list -> (unit -> scenario) -> result
(** Deterministically re-run one schedule (e.g. a counterexample's
    [f_trace]); past the end of the trace, continues first-runnable. *)
