(** The adaptive reclamation controller (DESIGN.md §10).

    A feedback loop over the {!Smr.Knobs.handle}s a structure exposes
    through its [control] accessor, driven by three [lib/obs] signals
    per tick — the retired backlog, the p99 retire→free latency, and
    the watchdog's stall verdict — and implementing three policies:

    + {b Memory-pressure escalation}: backlog at or above
      [backlog_high] forces an epoch/era advance every tick and shrinks
      the eject batch cap; at [sync_scan_at] the controller engages the
      last-resort synchronous-scan mode (every eject call scans), which
      disengages only once the backlog falls back to [backlog_low].
    + {b Stall response}: while the watchdog reports a stuck frontier,
      healthy domains back off their scan interval (doubling
      [cleanup_freq] per tick up to [max_cleanup] — scanning is futile
      while the frontier is pinned); after [grace] consecutive stuck
      ticks the controller escalates once to the abandon /
      orphanage-adoption path via the [on_escalate] callback.
    + {b SLO guard}: p99 retire→free latency above [p99_target] halves
      the batch cap; once latency is back under target {e and} the
      backlog is calm, the cap regrows — but only after [hysteresis]
      quiet ticks, so the loop cannot oscillate between shrink and
      grow.

    Every knob move is a bounded step (×2 / ÷2, clamped to
    [[min_batch, max_batch]] / [[base_cleanup, max_cleanup]]), and
    {!step} is a pure function of [(config, state, signals)] — no
    clocks, no randomness — so controller runs replay bit-identically
    under the traced scheduler and the tests pin exact decision
    sequences. *)

type config = {
  backlog_high : int;  (** force-advance + shrink at or above this *)
  backlog_low : int;  (** hysteresis floor: calm again at or below *)
  sync_scan_at : int;  (** engage synchronous-scan mode at or above *)
  p99_target : int;  (** SLO: p99 retire→free latency target, in ticks *)
  min_batch : int;  (** batch-cap clamp, lower *)
  max_batch : int;  (** batch-cap clamp, upper (and initial value) *)
  base_cleanup : int;  (** cleanup_freq when no stall is in progress *)
  max_cleanup : int;  (** cleanup_freq backoff ceiling *)
  grace : int;  (** consecutive stuck ticks before escalating *)
  hysteresis : int;  (** quiet ticks required before the cap regrows *)
}

val default_config : config
(** [backlog_high = 512], [backlog_low = 128], [sync_scan_at = 2048],
    [p99_target = 64], [min_batch = 8], [max_batch = 4096],
    [base_cleanup = Knobs.default_cleanup_freq], [max_cleanup = 1024],
    [grace = 3], [hysteresis = 4]. *)

type signals = {
  backlog : int;  (** retired-but-unreclaimed entries (structure total) *)
  p99 : int option;
      (** p99 retire→free latency in retire ticks; [None] when
          telemetry is disabled or no sample exists yet *)
  stalled : bool;  (** watchdog verdict: frontier stuck this tick *)
}

type action =
  | Force_advance
  | Set_batch_cap of int
  | Set_cleanup_freq of int
  | Set_sync_scan of bool
  | Escalate_abandon

val pp_action : action -> string

(** {2 The pure core} *)

type state

val init : config -> state

val step : config -> state -> signals -> state * action list
(** One controller tick. Deterministic, total, and monotone in the
    backlog signal: with everything else fixed, a larger backlog never
    yields a larger batch cap, never un-fires [Force_advance], and
    never disengages sync-scan mode (the qcheck property). Emitted
    [Set_*] actions always carry values inside the config's clamps. *)

(** Inspection accessors over the abstract state — what the effective
    knob values would be after the tick (tests and debugging). *)

val state_batch_cap : state -> int
val state_cleanup_freq : state -> int
val state_sync_scan : state -> bool

(** {2 The imperative shell} *)

type t

val create :
  ?config:config -> ?on_escalate:(unit -> unit) -> Smr.Knobs.handle list -> t
(** A controller over the given handles. [on_escalate] is the
    abandon/adoption hook invoked (once per stall episode) when the
    grace period expires; without it the escalation is only logged. *)

val config : t -> config

val observe : t -> signals -> action list
(** Run one {!step}, apply the resulting actions to every handle
    (knob setters, force-advance, the escalate callback), append a
    decision-log line, and return the actions. *)

val decisions : t -> string list
(** The decision log, oldest first: one line per tick that emitted at
    least one action — a deterministic function of the signal history.
    Capped at 4096 lines; later entries are dropped and counted in the
    final line. *)
