(* See the .mli for the policy spec. The split matters: [step] is the
   whole brain and is pure — state in, signals in, state and actions
   out — while [t] below merely applies actions to knob handles and
   keeps the log. Determinism (and the monotonicity property) are
   properties of [step] alone, so that is what the tests pin. *)

type config = {
  backlog_high : int;
  backlog_low : int;
  sync_scan_at : int;
  p99_target : int;
  min_batch : int;
  max_batch : int;
  base_cleanup : int;
  max_cleanup : int;
  grace : int;
  hysteresis : int;
}

let default_config =
  {
    backlog_high = 512;
    backlog_low = 128;
    sync_scan_at = 2048;
    p99_target = 64;
    min_batch = 8;
    max_batch = 4096;
    base_cleanup = Smr.Knobs.default_cleanup_freq;
    max_cleanup = 1024;
    grace = 3;
    hysteresis = 4;
  }

type signals = { backlog : int; p99 : int option; stalled : bool }

type action =
  | Force_advance
  | Set_batch_cap of int
  | Set_cleanup_freq of int
  | Set_sync_scan of bool
  | Escalate_abandon

let pp_action = function
  | Force_advance -> "force_advance"
  | Set_batch_cap n -> Printf.sprintf "batch_cap=%d" n
  | Set_cleanup_freq n -> Printf.sprintf "cleanup_freq=%d" n
  | Set_sync_scan b -> Printf.sprintf "sync_scan=%b" b
  | Escalate_abandon -> "escalate_abandon"

type state = {
  tick : int;
  batch_cap : int;
  cleanup_freq : int;
  sync_scan : bool;
  stuck_ticks : int; (* consecutive stalled ticks *)
  cooldown : int; (* quiet ticks still owed before the cap may regrow *)
  escalated : bool; (* latch: escalate at most once per stall episode *)
}

let init cfg =
  {
    tick = 0;
    batch_cap = cfg.max_batch;
    cleanup_freq = cfg.base_cleanup;
    sync_scan = false;
    stuck_ticks = 0;
    cooldown = 0;
    escalated = false;
  }

let clamp lo hi v = max lo (min hi v)

let step cfg st (s : signals) =
  let actions = ref [] in
  let emit a = actions := a :: !actions in
  (* Policy 1: memory pressure. [pressure] and [calm] are monotone
     threshold indicators of the backlog; everything derived from them
     below stays monotone in it. *)
  let pressure = s.backlog >= cfg.backlog_high in
  let calm = s.backlog <= cfg.backlog_low in
  if pressure then emit Force_advance;
  let sync_scan =
    if s.backlog >= cfg.sync_scan_at then true
    else if calm then false
    else st.sync_scan
  in
  (* Policy 2: stall response. While the frontier is pinned, eject
     scans find nothing; healthy domains double their scan interval
     instead of burning it, and revert the moment the stall clears. *)
  let stuck_ticks = if s.stalled then st.stuck_ticks + 1 else 0 in
  let cleanup_freq =
    if s.stalled then
      clamp cfg.base_cleanup cfg.max_cleanup (st.cleanup_freq * 2)
    else cfg.base_cleanup
  in
  let escalate = s.stalled && stuck_ticks >= cfg.grace && not st.escalated in
  if escalate then emit Escalate_abandon;
  let escalated = (st.escalated || escalate) && s.stalled in
  (* Policy 3: SLO guard, sharing the batch cap with policy 1. Shrink
     beats grow; growth additionally requires a calm backlog and a
     spent cooldown, and every shrink re-arms the cooldown — the
     hysteresis that keeps the cap from flapping. *)
  let slo_shrink = match s.p99 with Some p -> p > cfg.p99_target | None -> false in
  let slo_ok = match s.p99 with Some p -> p <= cfg.p99_target | None -> true in
  let batch_cap, cooldown =
    if pressure || slo_shrink then
      (clamp cfg.min_batch cfg.max_batch (st.batch_cap / 2), cfg.hysteresis)
    else if calm && slo_ok && st.cooldown = 0 then
      (clamp cfg.min_batch cfg.max_batch (st.batch_cap * 2), 0)
    else (st.batch_cap, max 0 (st.cooldown - 1))
  in
  if batch_cap <> st.batch_cap then emit (Set_batch_cap batch_cap);
  if cleanup_freq <> st.cleanup_freq then emit (Set_cleanup_freq cleanup_freq);
  if sync_scan <> st.sync_scan then emit (Set_sync_scan sync_scan);
  let st' =
    {
      tick = st.tick + 1;
      batch_cap;
      cleanup_freq;
      sync_scan;
      stuck_ticks;
      cooldown;
      escalated;
    }
  in
  (st', List.rev !actions)

let state_batch_cap st = st.batch_cap
let state_cleanup_freq st = st.cleanup_freq
let state_sync_scan st = st.sync_scan

(* ---------------------------------------------------------------- *)

let max_log = 4096

type t = {
  cfg : config;
  handles : Smr.Knobs.handle list;
  on_escalate : (unit -> unit) option;
  mutable st : state;
  mutable log_rev : string list;
  mutable logged : int;
  mutable dropped : int;
}

let create ?(config = default_config) ?on_escalate handles =
  { cfg = config; handles; on_escalate; st = init config; log_rev = []; logged = 0; dropped = 0 }

let config t = t.cfg

let apply t = function
  | Force_advance -> List.iter (fun h -> h.Smr.Knobs.h_force_advance ()) t.handles
  | Set_batch_cap v ->
      List.iter (fun h -> Smr.Knobs.set_batch_cap h.Smr.Knobs.h_knobs v) t.handles
  | Set_cleanup_freq v ->
      List.iter (fun h -> Smr.Knobs.set_cleanup_freq h.Smr.Knobs.h_knobs v) t.handles
  | Set_sync_scan b ->
      List.iter (fun h -> Smr.Knobs.set_sync_scan h.Smr.Knobs.h_knobs b) t.handles
  | Escalate_abandon -> ( match t.on_escalate with Some f -> f () | None -> ())

let log_line t (s : signals) actions =
  if t.logged >= max_log then t.dropped <- t.dropped + 1
  else begin
    let line =
      Printf.sprintf "t=%d backlog=%d p99=%s stalled=%b | %s" t.st.tick s.backlog
        (match s.p99 with Some p -> string_of_int p | None -> "-")
        s.stalled
        (String.concat " " (List.map pp_action actions))
    in
    t.log_rev <- line :: t.log_rev;
    t.logged <- t.logged + 1
  end

let observe t s =
  let st', actions = step t.cfg t.st s in
  t.st <- st';
  List.iter (apply t) actions;
  if actions <> [] then log_line t s actions;
  actions

let decisions t =
  let tail =
    if t.dropped > 0 then [ Printf.sprintf "(+%d decisions dropped)" t.dropped ] else []
  in
  List.rev_append t.log_rev tail
