(* The telemetry clock. Wall time would make every histogram
   non-reproducible, so latencies are measured in *operation ticks*: a
   counter bumped once per retire (see [Scheme_metrics]). A reclamation
   latency of 500 then reads "this entry survived 500 subsequent
   retires before its deferred operation ran" — exactly the
   bounded-garbage quantity the paper's §2 argues about, and identical
   across runs with a fixed seed and single domain.

   The clock is sharded into plain single-writer cells, like the
   [Metrics] counters: a bump is one unfenced store by the retiring
   pid, and [now] sums the cells. Cross-domain reads may see a slightly
   stale sum — an error of at most the few in-flight bumps, which is
   noise at histogram bucket resolution — while the single-domain reads
   the deterministic tests rely on are exact. *)

let shards = 16
let shard_mask = shards - 1
let stride = 8 (* cache-line padding, one live int per stride *)
let cells = Array.make (shards * stride) 0

let bump ~pid =
  let i = (pid land shard_mask) * stride in
  Array.unsafe_set cells i (Array.unsafe_get cells i + 1)

let now () =
  let s = ref 0 in
  for i = 0 to shards - 1 do
    s := !s + Array.unsafe_get cells (i * stride)
  done;
  !s

let reset () = Array.fill cells 0 (Array.length cells) 0
