(** The telemetry clock: operation ticks, not wall time (DESIGN.md §7).

    One tick = one retirement anywhere in the process ({!bump} is
    called by [Scheme_metrics.on_retire]). A reclamation latency of 500
    ticks reads "this entry survived 500 subsequent retires" — the
    paper's bounded-garbage quantity, reproducible under a fixed seed.

    Sharded into plain single-writer cells: {!bump} is one unfenced
    store by the retiring pid; {!now} sums the cells and may be stale
    by the few in-flight bumps cross-domain, while single-domain reads
    are exact. *)

val bump : pid:int -> unit
(** Advance the clock by one tick on [pid]'s shard. *)

val now : unit -> int
(** Sum over all shards. *)

val reset : unit -> unit
