(** Bounded sink for watchdog Stuck verdicts (DESIGN.md §7).

    Watchdogs {!record} verdict strings as they fire; the workload
    driver {!drain}s them into [result.watchdog_verdicts] after each
    run. The sink keeps at most 64 verdicts — a wedged reader thread
    can trip the watchdog on every check for the rest of a long run —
    and reports the overflow count as a final synthetic entry. *)

val record : string -> unit

val drain : unit -> string list
(** Verdicts recorded since the last drain, oldest first; resets the
    sink. A trailing ["(+N more verdicts dropped)"] entry marks
    overflow. *)

val reset : unit -> unit
