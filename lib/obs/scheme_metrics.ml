(* The per-scheme instrumentation bundle.

   Every SMR scheme binds one of these at module-initialization time
   ([let om = Obs.Scheme_metrics.v name]) and calls the [on_*] helpers
   from its protocol entry points. The helpers are written so the
   disabled path is one atomic load: counters no-op inside [Metrics],
   and the only helper with real structure — [on_retire], which wraps
   the deferred operation to timestamp its eventual execution — checks
   [Metrics.enabled] once and returns the operation unchanged when
   telemetry is off, so disabled runs allocate nothing per retire.

   Latency accounting: [on_retire] bumps the operation-tick clock on
   every retire, and for sampled retires closes over the current tick;
   when the wrapped deferred operation finally runs (at eject or drain
   time), the tick delta is the entry's reclamation latency in
   "subsequent retires survived" — the paper's bounded-garbage
   quantity, deterministic under a fixed seed. The wrapper observes
   into the scheme's latency histogram and then runs the real
   operation, so instrumentation cannot change reclamation order or
   effects. *)

type t = {
  scheme : string;
  acquire : Metrics.counter;
  slot_exhausted : Metrics.counter;
  confirm_retry : Metrics.counter;
  retire : Metrics.counter;
  knob_ignored : Metrics.counter;
  eject_scans : Metrics.counter;
  eject_ops : Metrics.counter;
  abandon : Metrics.counter;
  eject_batch : Histo.t;
  reclaim_latency : Histo.t;
  (* Preallocated constant events for the hot, sampled trace points, so
     an emitted acquire/retire allocates only its ring entry. *)
  ev_acquire : Trace.ev;
  ev_confirm_retry : Trace.ev;
  ev_retire : Trace.ev;
}

let v scheme =
  let p = "smr." ^ String.lowercase_ascii scheme ^ "." in
  {
    scheme;
    acquire = Metrics.counter (p ^ "acquire");
    slot_exhausted = Metrics.counter (p ^ "slot_exhausted");
    confirm_retry = Metrics.counter (p ^ "confirm_retry");
    retire = Metrics.counter (p ^ "retire");
    knob_ignored = Metrics.counter (p ^ "knob_ignored");
    eject_scans = Metrics.counter (p ^ "eject.scans");
    eject_ops = Metrics.counter (p ^ "eject.ops");
    abandon = Metrics.counter (p ^ "abandon");
    eject_batch = Histo.histo (p ^ "eject.batch_size");
    reclaim_latency = Histo.histo (p ^ "reclaim_latency");
    ev_acquire = Trace.Acquire { scheme };
    ev_confirm_retry = Trace.Confirm_retry { scheme };
    ev_retire = Trace.Retire { scheme };
  }

(* Acquire and retire run once per data-structure operation, so their
   trace events are sampled (see [Trace.should_sample]); their counters
   stay exact. *)
let on_acquire t ~pid =
  Metrics.incr t.acquire ~pid;
  if Trace.should_sample ~pid then Trace.emit ~pid t.ev_acquire

let on_slot_exhausted t ~pid = Metrics.incr t.slot_exhausted ~pid

(* A knob was passed to [create] that this scheme does not read (e.g.
   [epoch_freq] for HP, anything for Leaky). The value was still
   range-checked; the counter records the misuse so callers tuning a
   knob that cannot matter find out from [stats] instead of silence. *)
let on_knob_ignored t ~knob:_ = Metrics.incr t.knob_ignored ~pid:0

let on_confirm_retry t ~pid =
  Metrics.incr t.confirm_retry ~pid;
  if Trace.should_sample ~pid then Trace.emit ~pid t.ev_confirm_retry

(* Returns the deferred operation to store in the retired list. The
   retire counter and the tick clock move on every retire (both are
   single plain stores); the trace event and the latency-tracking
   wrapper ride the 1-in-32 [Trace.should_sample] gate, so the
   histogram is a uniform sample of retirements rather than a census —
   percentiles are unaffected, and the closure allocation disappears
   from 31/32 of the hot path. *)
let on_retire t ~pid (op : int -> unit) : int -> unit =
  if not (Metrics.enabled ()) then op
  else begin
    Metrics.incr t.retire ~pid;
    Tick.bump ~pid;
    if not (Trace.should_sample ~pid) then op
    else begin
      Trace.emit ~pid t.ev_retire;
      let t0 = Tick.now () in
      fun run_pid ->
        Histo.observe t.reclaim_latency ~pid:run_pid (Tick.now () - t0);
        op run_pid
    end
  end

(* Call at every eject scan site with the batch about to be returned;
   passes the batch through. *)
let on_eject t ~pid ops =
  if Metrics.enabled () then begin
    Metrics.incr t.eject_scans ~pid;
    let n = List.length ops in
    if n > 0 then begin
      Metrics.add t.eject_ops ~pid n;
      Histo.observe t.eject_batch ~pid n;
      Trace.emit ~pid (Trace.Eject { scheme = t.scheme; batch = n })
    end
  end;
  ops

let on_abandon t ~pid =
  Metrics.incr t.abandon ~pid;
  Trace.emit ~pid (Trace.Abandon { scheme = t.scheme })
