(* Bounded sink for watchdog Stuck verdicts, drained by the workload
   driver into [result.watchdog_verdicts]. Bounded because a wedged
   reader thread can trip the watchdog on every check for the rest of a
   long run; after [max_kept] verdicts the rest are counted but
   dropped. *)

let max_kept = 64
let lock = Mutex.create ()
let kept : string list ref = ref []
let n_kept = ref 0
let dropped = ref 0

let record s =
  Mutex.lock lock;
  if !n_kept < max_kept then begin
    kept := s :: !kept;
    incr n_kept
  end
  else incr dropped;
  Mutex.unlock lock

(** Verdicts recorded since the last drain, oldest first; resets the
    sink. *)
let drain () =
  Mutex.lock lock;
  let vs = List.rev !kept in
  let d = !dropped in
  kept := [];
  n_kept := 0;
  dropped := 0;
  Mutex.unlock lock;
  if d > 0 then vs @ [ Printf.sprintf "(+%d more verdicts dropped)" d ] else vs

let reset () = ignore (drain ())
