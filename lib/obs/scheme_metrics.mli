(** The per-scheme instrumentation bundle (DESIGN.md §7).

    Every SMR scheme binds one of these at module-initialization time
    ([let om = Obs.Scheme_metrics.v name]) and calls the [on_*] hooks
    from its protocol entry points. All hooks are one atomic load when
    telemetry is disabled; [on_retire] additionally guarantees the
    disabled path allocates nothing per retire. *)

type t

val v : string -> t
(** [v scheme] binds the counter/histogram/event bundle under the
    [smr.<scheme>.] metric prefix. Registration is idempotent, so
    functor re-instantiation over one scheme shares one set of cells. *)

val on_acquire : t -> pid:int -> unit
(** One protected acquisition (announce/epoch-entry). Counter exact;
    trace event sampled 1-in-32. *)

val on_slot_exhausted : t -> pid:int -> unit
(** An acquire found no free announcement slot (HP/HE fallback). *)

val on_knob_ignored : t -> knob:string -> unit
(** A tuning knob was passed to [create] that this scheme never reads;
    recorded so callers find out from [stats] instead of silence. *)

val on_confirm_retry : t -> pid:int -> unit
(** An announce→re-validate round failed and retried. *)

val on_retire : t -> pid:int -> (int -> unit) -> int -> unit
(** [on_retire t ~pid op] counts the retirement, bumps the operation
    tick clock, and returns the deferred operation to store: [op]
    itself when disabled or unsampled, or a wrapper that records the
    tick-delta reclamation latency into [smr.<scheme>.reclaim_latency]
    before running [op]. Wrapping never changes reclamation order or
    effects. *)

val on_eject : t -> pid:int -> 'a list -> 'a list
(** Call at every eject scan with the batch about to be returned;
    counts the scan, the batch size (histogram + counter) and passes
    the batch through unchanged. *)

val on_abandon : t -> pid:int -> unit
(** A stalled thread's state was reaped on its behalf. *)
