(* Bounded per-domain event rings.

   Each pid owns a ring of [capacity] entries, written only by that pid
   (owner-write), so recording an event is: one global fetch-and-add
   for the sequence number, one store into the ring slot, one bump of
   the local cursor. When the ring wraps, the oldest events are
   overwritten — the trace is a flight recorder, not a log. Export
   collects all rings, sorts by sequence number, and emits JSONL; the
   sequence gives a single global order without the writers ever
   synchronizing on more than the one counter.

   Rings are indexed by [pid land (max_pids - 1)]; OCaml domain ids
   grow monotonically across a process's lifetime, so two pids *can*
   collide on a ring in long sessions — each entry carries its real
   pid, so a collision interleaves two domains' events in one ring
   rather than misattributing them. *)

let capacity = 4096
let max_pids = 128
let ring_mask = max_pids - 1

type ev =
  | Acquire of { scheme : string }
  | Confirm_retry of { scheme : string }
  | Retire of { scheme : string }
  | Eject of { scheme : string; batch : int }
  | Abandon of { scheme : string }
  | Watchdog of { scheme : string; verdict : string }
  | Fault of { site : string; action : string }
  | Sample of { t_ms : int; ops_per_s : int; live : int; backlog : int }
  | Breaker of { shard : int; state : string; cause : string }

type entry = { seq : int; e_pid : int; ev : ev }

type ring = {
  slots : entry option array;
  mutable cursor : int;
  mutable written : int;
  mutable tick : int; (* sampling clock for hot-path events, owner-written *)
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let seq = Atomic.make 0
let rings : ring option Atomic.t array = Array.init max_pids (fun _ -> Atomic.make None)

let ring_for pid =
  let i = pid land ring_mask in
  match Atomic.get rings.(i) with
  | Some r -> r
  | None ->
      let r = { slots = Array.make capacity None; cursor = 0; written = 0; tick = 0 } in
      (* A CAS loss means another pid sharing this index raced us to
         install a ring; use theirs. *)
      if Atomic.compare_and_set rings.(i) None (Some r) then r
      else Option.get (Atomic.get rings.(i))

let emit ~pid ev =
  if Atomic.get enabled_flag then begin
    let r = ring_for pid in
    let s = Atomic.fetch_and_add seq 1 in
    r.slots.(r.cursor) <- Some { seq = s; e_pid = pid; ev };
    r.cursor <- (r.cursor + 1) mod capacity;
    r.written <- r.written + 1
  end

(* Per-operation events (acquire, retire) fire millions of times a
   second; recording each one would roughly double the cost of the
   operations being observed. Hot call sites therefore gate their
   [emit] on this predicate, which keeps 1 in [2^sample_shift] events
   per ring and — crucially — allocates nothing on the skipped 31/32:
   the caller only constructs the event value after a [true]. Rare
   events (eject, abandon, watchdog, fault, sample) keep full fidelity
   by calling [emit] directly. *)
let sample_shift = 5

let should_sample ~pid =
  Atomic.get enabled_flag
  &&
  let r = ring_for pid in
  r.tick <- r.tick + 1;
  r.tick land ((1 lsl sample_shift) - 1) = 0

let reset () =
  Atomic.set seq 0;
  Array.iter (fun cell -> Atomic.set cell None) rings

(** Total events recorded since the last [reset], including ones that
    have since been overwritten. *)
let emitted () = Atomic.get seq

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fields_of_ev = function
  | Acquire { scheme } -> ("acquire", [ ("scheme", `S scheme) ])
  | Confirm_retry { scheme } -> ("confirm_retry", [ ("scheme", `S scheme) ])
  | Retire { scheme } -> ("retire", [ ("scheme", `S scheme) ])
  | Eject { scheme; batch } -> ("eject", [ ("scheme", `S scheme); ("batch", `I batch) ])
  | Abandon { scheme } -> ("abandon", [ ("scheme", `S scheme) ])
  | Watchdog { scheme; verdict } ->
      ("watchdog", [ ("scheme", `S scheme); ("verdict", `S verdict) ])
  | Fault { site; action } -> ("fault", [ ("site", `S site); ("action", `S action) ])
  | Sample { t_ms; ops_per_s; live; backlog } ->
      ( "sample",
        [ ("t_ms", `I t_ms); ("ops_per_s", `I ops_per_s); ("live", `I live); ("backlog", `I backlog) ] )
  | Breaker { shard; state; cause } ->
      ("breaker", [ ("shard", `I shard); ("state", `S state); ("cause", `S cause) ])

let entry_to_json { seq; e_pid; ev } =
  let kind, fields = fields_of_ev ev in
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf {|{"seq":%d,"pid":%d,"ev":"%s"|} seq e_pid kind);
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (match v with
        | `S s -> Printf.sprintf {|,"%s":"%s"|} k (json_escape s)
        | `I i -> Printf.sprintf {|,"%s":%d|} k i))
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

(** All surviving entries across all rings, in global sequence order. *)
let entries () =
  let acc = ref [] in
  Array.iter
    (fun cell ->
      match Atomic.get cell with
      | None -> ()
      | Some r -> Array.iter (function None -> () | Some e -> acc := e :: !acc) r.slots)
    rings;
  List.sort (fun a b -> compare a.seq b.seq) !acc

let to_jsonl () = entries () |> List.map entry_to_json

let export_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let n = ref 0 in
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n';
          incr n)
        (to_jsonl ());
      !n)
