(* Reclamation-progress watchdog, shared by acquire–retire and CDRC.

   Detects the paper's §2 pathology at runtime: a stalled reader pins
   the scheme's reclamation frontier and garbage accumulates behind it.
   The caller samples (frontier, total pending retired entries) and
   feeds them to [check]. A frontier move resets the state (and
   re-baselines the backlog); a frontier that sits still across
   [threshold] consecutive checks while the backlog grew by more than
   [slack] entries since it last moved yields [Stuck] — the
   supervisor's cue to find the stalled thread and abandon it. [slack]
   absorbs the sawtooth of amortized eject scans so a healthy
   bounded-garbage scheme doesn't trip it.

   Besides returning the verdict, [check] feeds the telemetry layer:
   per-verdict counters in the registry, a bounded string sink
   ([Verdicts]) the driver drains into its result record, and a
   [Watchdog] event on the trace ring. *)

type verdict = Progressing | Stuck of { frontier : int; pending : int }

type t = {
  scheme : string;
  threshold : int;
  slack : int;
  mutable last_frontier : int;
  mutable baseline : int; (* pending when the frontier last moved *)
  mutable strikes : int;
  progressing_c : Metrics.counter;
  stuck_c : Metrics.counter;
}

let create ?(threshold = 3) ?(slack = 256) ~scheme () =
  let prefix = "ar." ^ String.lowercase_ascii scheme ^ ".watchdog." in
  {
    scheme;
    threshold;
    slack;
    last_frontier = min_int;
    baseline = max_int;
    strikes = 0;
    progressing_c = Metrics.counter (prefix ^ "progressing");
    stuck_c = Metrics.counter (prefix ^ "stuck");
  }

let verdict_string t ~frontier ~pending =
  Printf.sprintf "%s: stuck (frontier=%d pending=%d strikes=%d)" t.scheme frontier pending
    t.strikes

let check t ~pid ~frontier ~pending =
  if frontier <> t.last_frontier then begin
    t.last_frontier <- frontier;
    t.baseline <- pending;
    t.strikes <- 0;
    Metrics.incr t.progressing_c ~pid;
    Progressing
  end
  else begin
    t.strikes <- t.strikes + 1;
    if t.strikes >= t.threshold && pending >= t.baseline + t.slack then begin
      Metrics.incr t.stuck_c ~pid;
      let s = verdict_string t ~frontier ~pending in
      Verdicts.record s;
      Trace.emit ~pid (Trace.Watchdog { scheme = t.scheme; verdict = s });
      Stuck { frontier; pending }
    end
    else begin
      Metrics.incr t.progressing_c ~pid;
      Progressing
    end
  end
