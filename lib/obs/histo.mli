(** Fixed-bucket log-scale histograms (DESIGN.md §7).

    32 buckets: bucket 0 holds v <= 0, bucket i >= 1 holds
    2^(i-1) <= v < 2^i, and the last bucket absorbs everything above
    2^30. Recording is a bucket-index computation plus one
    fetch-and-add into a per-domain shard; merging only happens at
    report time, so the hot path never takes a lock. A percentile is
    reported as the inclusive upper bound of its bucket, i.e. a
    guaranteed "no worse than" figure. *)

type t

val buckets : int

val histo : string -> t
(** Find-or-register the histogram named [name]. *)

val name : t -> string

val bucket_of : int -> int
(** Bucket index for a value. *)

val bucket_upper : int -> int
(** Inclusive upper bound of bucket [i]: the value reported for any
    percentile that lands in it. *)

val observe : t -> pid:int -> int -> unit
(** Record one value; no-op while {!Metrics.enabled} is false. *)

val merged : t -> int array
(** Merged bucket counts across all shards, as a [buckets]-long
    array. *)

val count : t -> int
(** Total observations. *)

val percentile_of_counts : int array -> float -> int option
(** Nearest-rank percentile over merged bucket counts; [None] when
    empty. *)

val percentile : t -> float -> int option

val percentiles : t -> (int * int * int) option
(** [(p50, p99, p999)], or [None] if there are no observations. *)

val dump : unit -> t list
(** All registered histograms, name-sorted. *)

val reset : unit -> unit
(** Zero every cell, keeping registered names. *)
