(* Fixed-bucket log-scale histograms.

   32 buckets: bucket 0 holds v <= 0 (and v = 0 — "freed within the
   same tick"), bucket i >= 1 holds 2^(i-1) <= v < 2^i, and the last
   bucket absorbs everything above 2^30. Recording is a bucket-index
   computation plus one fetch-and-add into a per-domain shard; merging
   only happens at report time, so the hot path never takes a lock.

   Bucketing loses sub-bucket resolution, which is the deal we want:
   reclamation latencies span six orders of magnitude and the questions
   asked of them (p50/p99/p999, "does HP free in tens of ticks while
   EBR takes thousands?") only need the exponent. A percentile is
   reported as the inclusive upper bound of its bucket (2^i - 1), i.e.
   a guaranteed "no worse than" figure. *)

let buckets = 32
let shards = 16
let shard_mask = shards - 1

type t = {
  h_name : string;
  (* shards * buckets plain-atomic cells; a shard's buckets are
     deliberately contiguous (not Padded) so one domain's observations
     stay on few lines. *)
  cells : int Atomic.t array; [@rc_lint.allow "R6"]
}

let lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let histo name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
          let h =
            { h_name = name; cells = Array.init (shards * buckets) (fun _ -> Atomic.make 0) }
          in
          Hashtbl.add registry name h;
          h)

let name h = h.h_name

let bucket_of v =
  if v <= 0 then 0
  else
    (* index of the highest set bit, + 1: v in [2^(i-1), 2^i) -> i *)
    let rec go v i = if v = 0 then i else go (v lsr 1) (i + 1) in
    min (buckets - 1) (go v 0)

(** Inclusive upper bound of bucket [i]: the value reported for any
    percentile that lands in it. *)
let bucket_upper i = if i = 0 then 0 else (1 lsl i) - 1

let observe h ~pid v =
  if Metrics.enabled () then
    let base = (pid land shard_mask) * buckets in
    ignore (Atomic.fetch_and_add h.cells.(base + bucket_of v) 1)

(** Merged bucket counts across all shards, as a [buckets]-long array. *)
let merged h =
  let acc = Array.make buckets 0 in
  for s = 0 to shards - 1 do
    for b = 0 to buckets - 1 do
      acc.(b) <- acc.(b) + Atomic.get h.cells.((s * buckets) + b)
    done
  done;
  acc

let count h = Array.fold_left ( + ) 0 (merged h)

(* Nearest-rank over bucket counts: walk buckets until the cumulative
   count reaches ceil(p/100 * n). *)
let percentile_of_counts counts p =
  let n = Array.fold_left ( + ) 0 counts in
  if n = 0 then None
  else begin
    (* Same epsilon as [Repro_util.Stats.percentile]: keep 99.9% of
       1000 at rank 999 despite the float product landing on
       999.0000000000001. *)
    let rank = int_of_float (ceil ((p /. 100. *. float_of_int n) -. 1e-9)) in
    let rank = if rank < 1 then 1 else rank in
    let cum = ref 0 and result = ref (bucket_upper (buckets - 1)) in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if !cum >= rank then begin
             result := bucket_upper i;
             raise Exit
           end)
         counts
     with Exit -> ());
    Some !result
  end

let percentile h p = percentile_of_counts (merged h) p

(** (p50, p99, p999) of [h], or [None] if it has no observations. *)
let percentiles h =
  let counts = merged h in
  match percentile_of_counts counts 50. with
  | None -> None
  | Some p50 ->
      let get p = Option.get (percentile_of_counts counts p) in
      Some (p50, get 99., get 99.9)

let dump () =
  with_lock (fun () ->
      Hashtbl.fold (fun _ h acc -> h :: acc) registry []
      |> List.sort (fun a b -> compare a.h_name b.h_name))

let reset () =
  with_lock (fun () ->
      Hashtbl.iter (fun _ h -> Array.iter (fun c -> Atomic.set c 0) h.cells) registry)
