(* Rendering and validation of the telemetry state.

   [tree] prints the counter/gauge/histogram registries as an indented
   tree keyed on the dot-segments of metric names, so
   [smr.ebr.eject.ops] and [smr.ebr.retire] share the [smr.ebr] node.
   [json] emits the same data as one JSON object (histograms carry
   their non-empty buckets and nearest-rank p50/p99/p999).

   [validate_jsonl_line] is a deliberately minimal JSON checker: it
   accepts exactly the object-of-scalars shape our own [Trace] export
   produces (flat object, string/int/float/bool values, no nesting).
   That is all CI needs to assert "the trace file parses", and it keeps
   the library dependency-free. *)

let tree ?(out = Buffer.create 1024) () =
  let counters, gauges = Metrics.dump () in
  let histos =
    Histo.dump ()
    |> List.filter_map (fun h ->
           match Histo.percentiles h with
           | None -> None
           | Some (p50, p99, p999) ->
               Some
                 ( Histo.name h,
                   Printf.sprintf "n=%d p50=%d p99=%d p999=%d" (Histo.count h) p50 p99 p999 ))
  in
  let entries =
    List.map (fun (n, v) -> (n, string_of_int v)) counters
    @ List.map (fun (n, v) -> (n, Printf.sprintf "%d (gauge)" v)) gauges
    @ histos
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (* Print shared dot-prefix segments once, indenting two spaces per
     depth; the leaf segment carries the value. *)
  let prev = ref [] in
  List.iter
    (fun (name, value) ->
      let segs = String.split_on_char '.' name in
      let rec common a b =
        match (a, b) with
        | x :: a', y :: b' when x = y && b' <> [] && a' <> [] -> 1 + common a' b'
        | _ -> 0
      in
      let shared = common !prev segs in
      let rec emit depth = function
        | [] -> ()
        | [ leaf ] ->
            Buffer.add_string out (String.make (depth * 2) ' ');
            Buffer.add_string out leaf;
            Buffer.add_string out ": ";
            Buffer.add_string out value;
            Buffer.add_char out '\n'
        | seg :: rest ->
            if depth >= shared then begin
              Buffer.add_string out (String.make (depth * 2) ' ');
              Buffer.add_string out seg;
              Buffer.add_char out '\n'
            end;
            emit (depth + 1) rest
      in
      emit 0 segs;
      prev := segs)
    entries;
  Buffer.contents out

let json_escape = Trace.json_escape

let json () =
  let counters, gauges = Metrics.dump () in
  let b = Buffer.create 2048 in
  let field_list items render =
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        render x)
      items
  in
  Buffer.add_string b "{\"counters\":{";
  field_list counters (fun (n, v) ->
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape n) v));
  Buffer.add_string b "},\"gauges\":{";
  field_list gauges (fun (n, v) ->
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape n) v));
  Buffer.add_string b "},\"histograms\":{";
  let histos = Histo.dump () in
  field_list histos (fun h ->
      Buffer.add_string b (Printf.sprintf "\"%s\":{" (json_escape (Histo.name h)));
      (match Histo.percentiles h with
      | None -> Buffer.add_string b "\"count\":0"
      | Some (p50, p99, p999) ->
          Buffer.add_string b
            (Printf.sprintf "\"count\":%d,\"p50\":%d,\"p99\":%d,\"p999\":%d" (Histo.count h)
               p50 p99 p999);
          let counts = Histo.merged h in
          Buffer.add_string b ",\"buckets\":[";
          let first = ref true in
          Array.iteri
            (fun i c ->
              if c > 0 then begin
                if not !first then Buffer.add_char b ',';
                first := false;
                Buffer.add_string b (Printf.sprintf "[%d,%d]" (Histo.bucket_upper i) c)
              end)
            counts;
          Buffer.add_char b ']');
      Buffer.add_char b '}');
  Buffer.add_string b "}}";
  Buffer.contents b

(** {2 Minimal JSONL validation} *)

exception Bad of string

let validate_jsonl_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at %d in %S" msg !pos line)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end";
    let c = line.[!pos] in
    incr pos;
    c
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %c" c) in
  let string_lit () =
    expect '"';
    let rec go () =
      match next () with
      | '"' -> ()
      | '\\' ->
          (match next () with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> ()
          | 'u' ->
              for _ = 1 to 4 do
                match next () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape");
          go ()
      | c when Char.code c < 0x20 -> fail "control char in string"
      | _ -> go ()
    in
    go ()
  in
  let number () =
    if peek () = Some '-' then incr pos;
    let digits () =
      let start = !pos in
      while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
        incr pos
      done;
      if !pos = start then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ())
  in
  let keyword k =
    String.iter (fun c -> if next () <> c then fail ("expected " ^ k)) k
  in
  let value () =
    match peek () with
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> keyword "true"
    | Some 'f' -> keyword "false"
    | Some 'n' -> keyword "null"
    | _ -> fail "expected scalar value"
  in
  try
    expect '{';
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        string_lit ();
        expect ':';
        value ();
        match peek () with
        | Some ',' ->
            incr pos;
            members ()
        | Some '}' -> incr pos
        | _ -> fail "expected , or }"
      in
      members ()
    end;
    if !pos <> n then fail "trailing garbage";
    Ok ()
  with Bad msg -> Error msg

(** Validate a whole JSONL file; [Ok n] with the line count, or the
    first error. Empty lines are rejected — every line must be an
    object. *)
let validate_jsonl_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok acc
        | line -> (
            match validate_jsonl_line line with
            | Ok () -> go (lineno + 1) (acc + 1)
            | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
      in
      go 1 0)

(** Reset every telemetry store: counters, gauges, histograms, trace
    rings, the verdict sink, and the tick clock. *)
let reset_all () =
  Metrics.reset ();
  Histo.reset ();
  Trace.reset ();
  Verdicts.reset ();
  Tick.reset ()
