(** Reclamation-progress watchdog, shared by acquire–retire and CDRC.

    Detects the paper's §2 pathology at runtime: a stalled reader pins
    the scheme's reclamation frontier and garbage accumulates behind
    it. The caller samples [(frontier, pending)] and feeds them to
    {!check}; a frontier that sits still across [threshold]
    consecutive checks while the backlog grows past [slack] yields
    [Stuck] — the supervisor's cue to find the stalled thread and
    abandon it. *)

type verdict = Progressing | Stuck of { frontier : int; pending : int }

type t

val create : ?threshold:int -> ?slack:int -> scheme:string -> unit -> t
(** [threshold] defaults to 3 strikes; [slack] (default 256) absorbs
    the sawtooth of amortized eject scans so a healthy bounded-garbage
    scheme doesn't trip it. *)

val check : t -> pid:int -> frontier:int -> pending:int -> verdict
(** Besides returning the verdict, feeds the telemetry layer:
    per-verdict counters, the [Verdicts] sink, and a [Watchdog] trace
    event on [Stuck]. *)
