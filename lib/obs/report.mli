(** Rendering and validation of the telemetry state (DESIGN.md §7). *)

val tree : ?out:Buffer.t -> unit -> string
(** The counter/gauge/histogram registries as an indented tree keyed
    on the dot-segments of metric names. *)

val json : unit -> string
(** The same data as one JSON object; histograms carry their
    non-empty buckets and nearest-rank p50/p99/p999. *)

val validate_jsonl_line : string -> (unit, string) result
(** Deliberately minimal JSON checker: accepts exactly the
    object-of-scalars shape our own [Trace] export produces (flat
    object, string/int/float/bool values, no nesting). That is all CI
    needs to assert "the trace file parses", and it keeps the library
    dependency-free. *)

val validate_jsonl_file : string -> (int, string) result
(** Validate a whole JSONL file; [Ok n] with the line count, or the
    first error. Empty lines are rejected — every line must be an
    object. *)

val reset_all : unit -> unit
(** Reset every telemetry store: counters, gauges, histograms, trace
    rings, the verdict sink, and the tick clock. *)
