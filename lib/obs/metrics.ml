(* Counter/gauge registry.

   Counters are sharded across [shards] cache-line-padded plain cells;
   a shard is picked by [pid land (shards - 1)] and incremented with an
   unfenced read-modify-write, so the hot path is two plain moves — no
   lock prefix, which is what keeps the enabled overhead inside the 8%
   budget on retire-per-operation workloads. The contract is single
   writer per shard: benchmark pids are dense small ints, so each live
   domain owns its cell. Two concurrent domains whose pids collide
   modulo [shards] (possible for [Domain.self]-derived pids, e.g. the
   sticky-counter metrics) can lose increments on that shard; those
   counters are diagnostics, not accounting. Cross-domain reads are
   racy-but-untorn word loads, and [Domain.join] orders them for the
   post-run reads that matter. Gauges are single last-write-wins
   atomic cells (they are set by the sampler thread, not the workers).

   Everything is gated on one runtime flag: when disabled (the
   default), [incr]/[add]/[set_gauge] are a single atomic load and
   return — the hot paths of the schemes stay allocation-free and
   branch-predictable, which is what keeps the disabled overhead inside
   the 2% budget (see DESIGN.md §7). Registration is idempotent:
   [counter name] returns the existing counter, so functor
   re-instantiation over the same scheme shares one set of cells. *)

let shards = 16
let shard_mask = shards - 1
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let stride = 8 (* one live int per cache line's worth of words *)

(* [cells] is hand-strided (shards * stride, one live int per cache
   line) rather than Repro_util.Padded: counters are plain ints bumped
   only by their owning domain, so the Atomic.t indirection Padded
   imposes would cost on the hot path. *)
type counter = { c_name : string; cells : int array [@rc_lint.allow "R6"] }
type gauge = { g_name : string; cell : int Atomic.t }

(* The registry mutex only guards registration and whole-registry
   reads (dump/reset) — never the per-operation counter paths. *)
let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; cells = Array.make (shards * stride) 0 } in
          Hashtbl.add counters name c;
          c)

let gauge name =
  with_lock (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          let g = { g_name = name; cell = Atomic.make 0 } in
          Hashtbl.add gauges name g;
          g)

let add c ~pid n =
  if Atomic.get enabled_flag then begin
    let i = (pid land shard_mask) * stride in
    Array.unsafe_set c.cells i (Array.unsafe_get c.cells i + n)
  end

let incr c ~pid = add c ~pid 1

let total c =
  let s = ref 0 in
  for i = 0 to shards - 1 do
    s := !s + Array.unsafe_get c.cells (i * stride)
  done;
  !s
let counter_name c = c.c_name

let set_gauge g v = if Atomic.get enabled_flag then Atomic.set g.cell v
let gauge_value g = Atomic.get g.cell
let gauge_name g = g.g_name

let find_counter name = with_lock (fun () -> Hashtbl.find_opt counters name)

(** [value name] is the current total of counter [name]; 0 when the
    counter was never registered. *)
let value name = match find_counter name with None -> 0 | Some c -> total c

let dump () =
  with_lock (fun () ->
      let cs = Hashtbl.fold (fun _ c acc -> (c.c_name, total c) :: acc) counters [] in
      let gs = Hashtbl.fold (fun _ g acc -> (g.g_name, Atomic.get g.cell) :: acc) gauges [] in
      ( List.sort (fun (a, _) (b, _) -> compare a b) cs,
        List.sort (fun (a, _) (b, _) -> compare a b) gs ))

(* Zero every cell but keep the registered names: counters are bound at
   module-initialization time, so forgetting them would orphan the
   callers' handles. *)
let reset () =
  with_lock (fun () ->
      Hashtbl.iter (fun _ c -> Array.fill c.cells 0 (Array.length c.cells) 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.cell 0) gauges)
