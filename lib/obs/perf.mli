(** Versioned, machine-readable perf summaries and the regression
    comparator behind `tools/bench_check` (DESIGN.md §11).

    A summary is one point on the perf trajectory: per
    scheme×structure×thread-count throughput, retire→free latency and
    eject batch-size quantiles, peak live/backlog memory, plus the
    exact atomic-op profiles of the lock-free cores measured over
    [Sched.Counting]. Encoder and parser are dependency-free and
    round-trip bit-identically at the emitted precision. *)

val schema_version : int

type quantiles = { q_count : int; q_p50 : int; q_p99 : int; q_p999 : int }

val quantiles_empty : quantiles

val quantiles_of_counts : int array -> quantiles
(** Nearest-rank quantiles over merged {!Histo} bucket counts (same
    computation as [Histo.percentiles], over an external array). *)

type cell = {
  c_scheme : string;
  c_structure : string;  (** "stack" | "queue" | "hash" *)
  c_threads : int;
  c_ops : int;
  c_mops : float;
  c_reclaim : quantiles;  (** retire→free latency, operation ticks *)
  c_eject_batch : quantiles;
  c_peak_live : int;
  c_peak_backlog : int;
  c_leaked : int;
}

val cell_key : cell -> string
(** ["scheme/structure/threads"] — the comparator's join key. *)

type atomic_profile = {
  a_core : string;
  a_op : string;
  a_ops : int;
  a_gets : int;
  a_sets : int;
  a_exchanges : int;
  a_cas : int;
  a_cas_failures : int;
  a_faa : int;
}

val atomics_total : atomic_profile -> int
val atomics_per_op : atomic_profile -> float

type meta = {
  m_label : string;
  m_git_sha : string;
  m_host_domains : int;
  m_duration : float;
  m_threads : int list;
  m_scale : int;
}

type summary = { s_meta : meta; s_cells : cell list; s_atomics : atomic_profile list }

val to_string : summary -> string
(** One-line JSON object. *)

val summary_of_string : string -> (summary, string) result
val load_file : string -> (summary, string) result

val validate : ?require_schemes:string list -> summary -> (unit, string) result
(** Schema-level sanity: non-empty matrix, unique cell keys, ordered
    quantiles, non-negative figures, non-empty atomic profiles, and
    one cell per scheme in [require_schemes]. *)

type regression = {
  r_key : string;
  r_metric : string;  (** ["throughput"] or ["reclaim_p99"] *)
  r_old : float;
  r_new : float;
  r_delta_pct : float;
  r_allowed : bool;
}

val compare_summaries :
  ?throughput_tol:float ->
  ?latency_tol:float ->
  ?allow:string list ->
  summary ->
  summary ->
  regression list * int
(** [compare_summaries base cand]: regressions over the intersection
    of cell keys, and the number of cells compared. Default tolerances:
    15% throughput drop, 25% p99 retire→free growth (both sides under
    8 ticks are bucket-resolution noise and never flagged). [allow]
    entries match a full key or a ['/']-prefix of one. *)

val failed : regression list -> bool
(** True iff any regression is not allowlisted (the exit-1 condition). *)

val pp_regression : Format.formatter -> regression -> unit

val pp : Format.formatter -> summary -> unit
(** The `stats --perf` per-scheme table, including atomics-per-op. *)
