(** Bounded per-domain event rings (DESIGN.md §7).

    Each pid owns a ring written only by that pid; when it wraps, the
    oldest events are overwritten — the trace is a flight recorder,
    not a log. A single global fetch-and-add sequence number gives
    export a total order without the writers otherwise
    synchronizing. *)

(** One traced event. Hot per-operation events (acquire,
    confirm-retry, retire) are sampled via {!should_sample}; rare
    events (eject, abandon, watchdog, fault, sample) keep full
    fidelity. *)
type ev =
  | Acquire of { scheme : string }
  | Confirm_retry of { scheme : string }
  | Retire of { scheme : string }
  | Eject of { scheme : string; batch : int }
  | Abandon of { scheme : string }
  | Watchdog of { scheme : string; verdict : string }
  | Fault of { site : string; action : string }
  | Sample of { t_ms : int; ops_per_s : int; live : int; backlog : int }
  | Breaker of { shard : int; state : string; cause : string }
      (** circuit-breaker transition on a KV shard (full fidelity) *)

type entry = { seq : int; e_pid : int; ev : ev }

val enabled : unit -> bool
val set_enabled : bool -> unit

val emit : pid:int -> ev -> unit
(** Record an event in [pid]'s ring; no-op while disabled. *)

val should_sample : pid:int -> bool
(** Gate for hot call sites: true for 1 in 32 calls per ring while
    enabled, so the caller only constructs the event value after a
    [true]. *)

val reset : unit -> unit

val emitted : unit -> int
(** Total events recorded since the last {!reset}, including ones
    that have since been overwritten. *)

val json_escape : string -> string

val entries : unit -> entry list
(** All surviving entries across all rings, in global sequence
    order. *)

val to_jsonl : unit -> string list
(** One flat JSON object per surviving entry, sequence-ordered. *)

val export_file : string -> int
(** Write {!to_jsonl} lines to [path]; returns the line count. *)
