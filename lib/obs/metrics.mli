(** Counter/gauge registry (DESIGN.md §7).

    Counters are sharded across cache-line-strided plain cells, picked
    by [pid]; incrementing is two plain moves with no lock prefix.
    The contract is single writer per shard (dense benchmark pids);
    cross-domain reads are racy-but-untorn and [Domain.join] orders
    the post-run reads that matter. Gauges are single last-write-wins
    atomic cells, set by the sampler thread.

    Everything is gated on one runtime flag: when disabled (the
    default), {!add}/{!incr}/{!set_gauge} are a single atomic load and
    return. Registration is idempotent: {!counter} returns the
    existing counter for a seen name, so functor re-instantiation over
    the same scheme shares one set of cells. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

type counter
type gauge

val counter : string -> counter
(** Find-or-register the counter named [name]. *)

val gauge : string -> gauge
(** Find-or-register the gauge named [name]. *)

val add : counter -> pid:int -> int -> unit
(** Add [n] to [pid]'s shard; no-op while disabled. *)

val incr : counter -> pid:int -> unit

val total : counter -> int
(** Sum over all shards (racy-but-untorn reads). *)

val counter_name : counter -> string

val set_gauge : gauge -> int -> unit
(** Last-write-wins; no-op while disabled. *)

val gauge_value : gauge -> int
val gauge_name : gauge -> string

val find_counter : string -> counter option
(** Lookup without registering. *)

val value : string -> int
(** [value name] is the current total of counter [name]; 0 when the
    counter was never registered. *)

val dump : unit -> (string * int) list * (string * int) list
(** [(counters, gauges)], each name-sorted. *)

val reset : unit -> unit
(** Zero every cell but keep the registered names: counters are bound
    at module-initialization time, so forgetting them would orphan the
    callers' handles. *)
