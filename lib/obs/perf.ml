(* Versioned, machine-readable perf summaries (DESIGN.md §11).

   One summary is one point on the repo's perf trajectory: per
   scheme×structure×thread-count throughput, retire→free latency
   quantiles, eject batch-size quantiles and peak live/backlog memory,
   plus the exact atomic-op profiles of the lock-free cores measured
   over the counting shim ([Sched.Counting]). `cdrc-bench perf` emits
   one per PR as `BENCH_PR<N>.json`; `tools/bench_check` compares two
   of them and gates regressions.

   Everything here is dependency-free by design: the JSON encoder and
   the (strict, recursive-descent) parser live side by side so the
   comparator, the tests and the CLI all read the same schema without
   pulling a JSON library into the build. *)

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* Schema *)

type quantiles = { q_count : int; q_p50 : int; q_p99 : int; q_p999 : int }

let quantiles_empty = { q_count = 0; q_p50 = 0; q_p99 = 0; q_p999 = 0 }

(** Quantiles of merged [Histo] bucket counts — the same nearest-rank
    computation [Histo.percentiles] performs, over an externally
    accumulated bucket array (so callers can merge several histograms
    before extracting). *)
let quantiles_of_counts counts =
  let count = Array.fold_left ( + ) 0 counts in
  if count = 0 then quantiles_empty
  else
    let p x = Option.value ~default:0 (Histo.percentile_of_counts counts x) in
    { q_count = count; q_p50 = p 50.0; q_p99 = p 99.0; q_p999 = p 99.9 }

type cell = {
  c_scheme : string;
  c_structure : string;  (** "stack" | "queue" | "hash" *)
  c_threads : int;
  c_ops : int;
  c_mops : float;
  c_reclaim : quantiles;  (** retire→free latency, operation ticks *)
  c_eject_batch : quantiles;
  c_peak_live : int;  (** sampled max of allocated-but-unreclaimed blocks *)
  c_peak_backlog : int;  (** sampled max of retired-but-unreclaimed entries *)
  c_leaked : int;  (** live blocks after teardown; nonzero only for None *)
}

let cell_key c = Printf.sprintf "%s/%s/%d" c.c_scheme c.c_structure c.c_threads

type atomic_profile = {
  a_core : string;  (** "sticky_counter" | "slot_protocol" | "rc_cell" *)
  a_op : string;  (** pinned script name, e.g. "inc_dec" *)
  a_ops : int;  (** operations the script executed *)
  a_gets : int;
  a_sets : int;
  a_exchanges : int;
  a_cas : int;
  a_cas_failures : int;
  a_faa : int;
}

let atomics_total a = a.a_gets + a.a_sets + a.a_exchanges + a.a_cas + a.a_faa

let atomics_per_op a =
  if a.a_ops = 0 then 0.0 else float_of_int (atomics_total a) /. float_of_int a.a_ops

type meta = {
  m_label : string;  (** trajectory point name, e.g. "BENCH_PR7" *)
  m_git_sha : string;
  m_host_domains : int;  (** [Domain.recommended_domain_count] at run time *)
  m_duration : float;  (** measured seconds per cell *)
  m_threads : int list;
  m_scale : int;  (** structure-size divisor (1 = pinned sizes) *)
}

type summary = { s_meta : meta; s_cells : cell list; s_atomics : atomic_profile list }

(* ------------------------------------------------------------------ *)
(* Encoding *)

let buf_addf b fmt = Printf.ksprintf (Buffer.add_string b) fmt

(* Floats are emitted with fixed precision so summaries are diff-stable
   and round-trip through the parser bit-identically at this
   resolution (the tests rely on that, not on %.17g exactness). *)
let float_str f = Printf.sprintf "%.6f" f

let add_quantiles b q =
  buf_addf b "{\"count\":%d,\"p50\":%d,\"p99\":%d,\"p999\":%d}" q.q_count q.q_p50 q.q_p99
    q.q_p999

let add_cell b c =
  buf_addf b "{\"scheme\":\"%s\",\"structure\":\"%s\",\"threads\":%d,\"ops\":%d,\"mops\":%s,"
    (Trace.json_escape c.c_scheme)
    (Trace.json_escape c.c_structure)
    c.c_threads c.c_ops (float_str c.c_mops);
  Buffer.add_string b "\"reclaim_latency\":";
  add_quantiles b c.c_reclaim;
  Buffer.add_string b ",\"eject_batch\":";
  add_quantiles b c.c_eject_batch;
  buf_addf b ",\"peak_live\":%d,\"peak_backlog\":%d,\"leaked\":%d}" c.c_peak_live
    c.c_peak_backlog c.c_leaked

let add_atomic b a =
  buf_addf b
    "{\"core\":\"%s\",\"op\":\"%s\",\"ops\":%d,\"get\":%d,\"set\":%d,\"exchange\":%d,\"cas\":%d,\"cas_fail\":%d,\"faa\":%d}"
    (Trace.json_escape a.a_core) (Trace.json_escape a.a_op) a.a_ops a.a_gets a.a_sets
    a.a_exchanges a.a_cas a.a_cas_failures a.a_faa

let to_string s =
  let b = Buffer.create 8192 in
  buf_addf b "{\"schema_version\":%d,\"meta\":{" schema_version;
  buf_addf b "\"label\":\"%s\",\"git_sha\":\"%s\",\"host_domains\":%d,"
    (Trace.json_escape s.s_meta.m_label)
    (Trace.json_escape s.s_meta.m_git_sha)
    s.s_meta.m_host_domains;
  buf_addf b "\"duration_s\":%s,\"threads\":[%s],\"scale\":%d},"
    (float_str s.s_meta.m_duration)
    (String.concat "," (List.map string_of_int s.s_meta.m_threads))
    s.s_meta.m_scale;
  Buffer.add_string b "\"cells\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      add_cell b c)
    s.s_cells;
  Buffer.add_string b "],\"atomics\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      add_atomic b a)
    s.s_atomics;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    let got = next () in
    if got <> c then fail (Printf.sprintf "expected %c, got %c" c got)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
          (match next () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              let h = ref 0 in
              for _ = 1 to 4 do
                let c = next () in
                let d =
                  match c with
                  | '0' .. '9' -> Char.code c - Char.code '0'
                  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                  | _ -> fail "bad \\u escape"
                in
                h := (!h * 16) + d
              done;
              (* Our own encoder never emits non-ASCII escapes; map the
                 rest to '?' rather than implementing UTF-8. *)
              Buffer.add_char b (if !h < 128 then Char.chr !h else '?')
          | _ -> fail "bad escape");
          go ()
      | c when Char.code c < 0x20 -> fail "control char in string"
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
        incr pos
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let keyword k v =
    String.iter (fun c -> if next () <> c then fail ("expected " ^ k)) k;
    v
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (string_lit ())
    | Some ('-' | '0' .. '9') -> Jnum (number ())
    | Some 't' -> keyword "true" (Jbool true)
    | Some 'f' -> keyword "false" (Jbool false)
    | Some 'n' -> keyword "null" Jnull
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Jlist []
        end
        else begin
          let rec items acc =
            let v = value () in
            skip_ws ();
            match next () with
            | ',' -> items (v :: acc)
            | ']' -> Jlist (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Jobj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Jobj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
    | _ -> fail "expected value"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* Field accessors over the generic tree, failing with the path. *)
let field obj name =
  match obj with
  | Jobj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> raise (Parse_error ("missing field " ^ name)))
  | _ -> raise (Parse_error ("expected object for field " ^ name))

let jint name = function
  | Jnum f -> int_of_float f
  | _ -> raise (Parse_error (name ^ ": expected number"))

let jfloat name = function
  | Jnum f -> f
  | _ -> raise (Parse_error (name ^ ": expected number"))

let jstr name = function
  | Jstr s -> s
  | _ -> raise (Parse_error (name ^ ": expected string"))

let jlist name = function
  | Jlist l -> l
  | _ -> raise (Parse_error (name ^ ": expected array"))

let quantiles_of_json j =
  {
    q_count = jint "count" (field j "count");
    q_p50 = jint "p50" (field j "p50");
    q_p99 = jint "p99" (field j "p99");
    q_p999 = jint "p999" (field j "p999");
  }

let cell_of_json j =
  {
    c_scheme = jstr "scheme" (field j "scheme");
    c_structure = jstr "structure" (field j "structure");
    c_threads = jint "threads" (field j "threads");
    c_ops = jint "ops" (field j "ops");
    c_mops = jfloat "mops" (field j "mops");
    c_reclaim = quantiles_of_json (field j "reclaim_latency");
    c_eject_batch = quantiles_of_json (field j "eject_batch");
    c_peak_live = jint "peak_live" (field j "peak_live");
    c_peak_backlog = jint "peak_backlog" (field j "peak_backlog");
    c_leaked = jint "leaked" (field j "leaked");
  }

let atomic_of_json j =
  {
    a_core = jstr "core" (field j "core");
    a_op = jstr "op" (field j "op");
    a_ops = jint "ops" (field j "ops");
    a_gets = jint "get" (field j "get");
    a_sets = jint "set" (field j "set");
    a_exchanges = jint "exchange" (field j "exchange");
    a_cas = jint "cas" (field j "cas");
    a_cas_failures = jint "cas_fail" (field j "cas_fail");
    a_faa = jint "faa" (field j "faa");
  }

let meta_of_json j =
  {
    m_label = jstr "label" (field j "label");
    m_git_sha = jstr "git_sha" (field j "git_sha");
    m_host_domains = jint "host_domains" (field j "host_domains");
    m_duration = jfloat "duration_s" (field j "duration_s");
    m_threads = List.map (jint "threads") (jlist "threads" (field j "threads"));
    m_scale = jint "scale" (field j "scale");
  }

let summary_of_string str : (summary, string) result =
  try
    let j = parse_json str in
    let v = jint "schema_version" (field j "schema_version") in
    if v <> schema_version then
      Error (Printf.sprintf "schema_version %d (this build reads %d)" v schema_version)
    else
      Ok
        {
          s_meta = meta_of_json (field j "meta");
          s_cells = List.map cell_of_json (jlist "cells" (field j "cells"));
          s_atomics = List.map atomic_of_json (jlist "atomics" (field j "atomics"));
        }
  with
  | Parse_error msg -> Error msg
  | Failure msg -> Error msg

let load_file path : (summary, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": truncated")
  | str -> (
      match summary_of_string (String.trim str) with
      | Ok s -> Ok s
      | Error e -> Error (path ^ ": " ^ e))

(* ------------------------------------------------------------------ *)
(* Validation *)

let quantiles_valid q =
  q.q_count >= 0 && q.q_p50 <= q.q_p99 && q.q_p99 <= q.q_p999
  && (q.q_count > 0 || q = quantiles_empty)

(** Schema-level sanity: non-empty cell matrix, unique cell keys,
    ordered quantiles, non-negative figures, and (optionally) coverage
    of [require_schemes]. This is what the CI smoke asserts about a
    freshly emitted summary before gating against the baseline. *)
let validate ?(require_schemes = []) s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec check_cells seen = function
    | [] -> Ok ()
    | c :: rest ->
        let key = cell_key c in
        if List.mem key seen then err "duplicate cell %s" key
        else if c.c_threads < 1 then err "%s: threads < 1" key
        else if c.c_ops < 0 || c.c_mops < 0.0 then err "%s: negative throughput" key
        else if c.c_peak_live < 0 || c.c_peak_backlog < 0 || c.c_leaked < 0 then
          err "%s: negative memory figure" key
        else if not (quantiles_valid c.c_reclaim) then
          err "%s: unordered reclaim quantiles" key
        else if not (quantiles_valid c.c_eject_batch) then
          err "%s: unordered eject quantiles" key
        else check_cells (key :: seen) rest
  in
  if s.s_cells = [] then Error "no cells"
  else
    match check_cells [] s.s_cells with
    | Error _ as e -> e
    | Ok () -> (
        let missing =
          List.filter
            (fun sch -> not (List.exists (fun c -> c.c_scheme = sch) s.s_cells))
            require_schemes
        in
        match missing with
        | sch :: _ -> err "scheme %s has no cell" sch
        | [] ->
            if s.s_atomics = [] then Error "no atomic profiles"
            else if List.exists (fun a -> a.a_ops <= 0) s.s_atomics then
              Error "atomic profile with ops <= 0"
            else Ok ())

(* ------------------------------------------------------------------ *)
(* Comparison (the regression gate) *)

type regression = {
  r_key : string;  (** [cell_key] of the offending cell *)
  r_metric : string;  (** ["throughput"] or ["reclaim_p99"] *)
  r_old : float;
  r_new : float;
  r_delta_pct : float;  (** signed change, negative = worse throughput *)
  r_allowed : bool;  (** matched the allowlist *)
}

(* p99 latencies below this many operation ticks are bucket-resolution
   noise (the histogram is log-scale: 1 → 2 is one bucket and +100%);
   regressions are only reported once either side clears the floor. *)
let latency_floor = 8

let allow_matches entries key =
  List.exists
    (fun e -> e = key || String.starts_with ~prefix:(e ^ "/") key)
    entries

(** Compare [cand] against [base] cell-by-cell over the intersection of
    cell keys. A throughput drop beyond [throughput_tol] percent or a
    p99 retire→free latency growth beyond [latency_tol] percent is a
    regression; cells matched by [allow] (exact key, or a prefix like
    ["EBR/stack"] or ["EBR"]) are still reported but flagged allowed.
    Returns the regression list and the number of cells compared. *)
let compare_summaries ?(throughput_tol = 15.0) ?(latency_tol = 25.0) ?(allow = [])
    (base : summary) (cand : summary) : regression list * int =
  let compared = ref 0 in
  let regs = ref [] in
  List.iter
    (fun (nc : cell) ->
      match
        List.find_opt
          (fun (oc : cell) -> cell_key oc = cell_key nc)
          base.s_cells
      with
      | None -> ()
      | Some oc ->
          incr compared;
          let key = cell_key nc in
          let allowed = allow_matches allow key in
          if oc.c_mops > 0.0 && nc.c_mops < oc.c_mops *. (1.0 -. (throughput_tol /. 100.0))
          then
            regs :=
              {
                r_key = key;
                r_metric = "throughput";
                r_old = oc.c_mops;
                r_new = nc.c_mops;
                r_delta_pct = 100.0 *. ((nc.c_mops /. oc.c_mops) -. 1.0);
                r_allowed = allowed;
              }
              :: !regs;
          let op99 = oc.c_reclaim.q_p99 and np99 = nc.c_reclaim.q_p99 in
          if
            oc.c_reclaim.q_count > 0 && nc.c_reclaim.q_count > 0
            && (op99 >= latency_floor || np99 >= latency_floor)
            && op99 > 0
            && float_of_int np99
               > float_of_int op99 *. (1.0 +. (latency_tol /. 100.0))
          then
            regs :=
              {
                r_key = key;
                r_metric = "reclaim_p99";
                r_old = float_of_int op99;
                r_new = float_of_int np99;
                r_delta_pct = 100.0 *. ((float_of_int np99 /. float_of_int op99) -. 1.0);
                r_allowed = allowed;
              }
              :: !regs)
    cand.s_cells;
  (List.rev !regs, !compared)

(** True iff any regression is not allowlisted — the comparator's
    exit-1 condition. *)
let failed regs = List.exists (fun r -> not r.r_allowed) regs

let pp_regression ppf r =
  Format.fprintf ppf "%-8s %-28s %10.3f -> %10.3f  (%+.1f%%)%s"
    (match r.r_metric with "throughput" -> "Mops/s" | m -> m)
    r.r_key r.r_old r.r_new r.r_delta_pct
    (if r.r_allowed then "  [allowlisted]" else "")

(* ------------------------------------------------------------------ *)
(* Rendering (`stats --perf`) *)

let pp ppf s =
  let m = s.s_meta in
  Format.fprintf ppf "== perf summary: %s (sha %s, %d host domains, %.2fs/cell, scale %d) ==@.@."
    m.m_label m.m_git_sha m.m_host_domains m.m_duration m.m_scale;
  let structures =
    List.fold_left
      (fun acc c -> if List.mem c.c_structure acc then acc else acc @ [ c.c_structure ])
      [] s.s_cells
  in
  List.iter
    (fun st ->
      Format.fprintf ppf "-- %s --@." st;
      Format.fprintf ppf "%-14s %-4s %10s %12s %21s %13s %10s %9s %7s@." "scheme" "P"
        "Mops/s" "ops" "reclaim p50/p99/p999" "eject p50/p99" "peak-live" "backlog"
        "leaked";
      List.iter
        (fun c ->
          if c.c_structure = st then
            Format.fprintf ppf "%-14s %-4d %10.3f %12d %9s %13s %10d %9d %7d@."
              c.c_scheme c.c_threads c.c_mops c.c_ops
              (if c.c_reclaim.q_count = 0 then "-"
               else
                 Printf.sprintf "%d/%d/%d" c.c_reclaim.q_p50 c.c_reclaim.q_p99
                   c.c_reclaim.q_p999)
              (if c.c_eject_batch.q_count = 0 then "-"
               else Printf.sprintf "%d/%d" c.c_eject_batch.q_p50 c.c_eject_batch.q_p99)
              c.c_peak_live c.c_peak_backlog c.c_leaked)
        s.s_cells;
      Format.fprintf ppf "@.")
    structures;
  if s.s_atomics <> [] then begin
    Format.fprintf ppf
      "-- atomic-op profile (counting shim, exact per-op costs of the lock-free cores) --@.";
    Format.fprintf ppf "%-16s %-18s %10s %6s %6s %6s %10s %6s@." "core" "op" "atomics/op"
      "get" "set" "xchg" "cas(fail)" "faa";
    List.iter
      (fun a ->
        Format.fprintf ppf "%-16s %-18s %10.2f %6d %6d %6d %6d(%d) %6d@." a.a_core a.a_op
          (atomics_per_op a) a.a_gets a.a_sets a.a_exchanges a.a_cas a.a_cas_failures
          a.a_faa)
      s.s_atomics;
    Format.fprintf ppf "@."
  end
