(** The acquire–retire announcement-slot protocol (paper §3.1, Fig 2)
    as a self-contained core, functorized over the atomic shim for
    deterministic schedule exploration.

    This is the protocol kernel the hazard-pointer-family schemes (HP,
    HE, IBR's validation step) all embody: a reader {e announces} the
    identity it is about to dereference in a single-writer slot, then
    {e confirms} the shared location still holds that identity before
    trusting the announcement; a reclaimer moves retired identities to
    a limbo list and {e ejects} — frees — exactly those not announced
    by any slot at scan time. Safety hangs on the announce→re-validate
    order: the full scheme implementations in [Smr] carry epochs,
    batches and telemetry on top, which is noise at schedule
    granularity, so the explorer drives this kernel instead — the same
    moves, one atomic step each.

    Identities are plain non-zero ints (0 marks an empty slot),
    mirroring [Smr.Ident]. Deferred reclamation is a closure, as in
    the Fig 2 interface. *)

module Make (A : Sched.ATOMIC) = struct
  type guard = { g_pid : int; g_slot : int }

  type t = {
    slots : int A.t array array;  (* per-pid announcement slots; 0 = empty *)
    in_use : bool array array;  (* owner-local slot bookkeeping *)
    retired : (int * (unit -> unit)) list ref array;  (* per-pid limbo *)
    nthreads : int;
    slots_per_thread : int;
    (* Mutation for harness validation (ISSUE 3): skip the confirm
       re-read after announcing, i.e. trust the pre-announcement read.
       This is the classic hazard-pointer validation-elision bug; the
       explorer must find the use-after-free it opens. *)
    mutation_skip_validate : bool ref;
    (* Mutation for the sanitizer (ISSUE 10): drop the announcement
       write entirely — the guard is bookkept locally but the slot
       never carries the ident, so eject cannot see the reader. The
       settle loop must be skipped too (confirm would re-point the slot
       on mismatch, silently repairing the dropped write). *)
    mutation_drop_acquire : bool ref;
  }

  let create ?(slots_per_thread = 2) ~max_threads () =
    {
      slots =
        Array.init max_threads (fun _ ->
            Array.init slots_per_thread (fun _ -> A.make 0));
      in_use = Array.init max_threads (fun _ -> Array.make slots_per_thread false);
      retired = Array.init max_threads (fun _ -> ref []);
      nthreads = max_threads;
      slots_per_thread;
      mutation_skip_validate = ref false;
      mutation_drop_acquire = ref false;
    }

  let free_slot t ~pid =
    let row = t.in_use.(pid) in
    let rec go i =
      if i >= t.slots_per_thread then None else if row.(i) then go (i + 1) else Some i
    in
    go 0

  (** Announce [ident] in one of [pid]'s slots. The announcement is not
      yet trustworthy — the caller must {!confirm} it against a re-read
      of the shared location. *)
  let acquire t ~pid ident =
    match free_slot t ~pid with
    | None -> invalid_arg "Slot_protocol.acquire: out of announcement slots"
    | Some i ->
        t.in_use.(pid).(i) <- true;
        if not !(t.mutation_drop_acquire) then A.set t.slots.(pid).(i) ident;
        { g_pid = pid; g_slot = i }

  (** [confirm t ~pid g ident] where [ident] is a {e re-read} of the
      shared location: true iff the announcement covers it. On mismatch
      the announcement is moved to [ident] so the caller can retry. *)
  let confirm t ~pid:_ g ident =
    let slot = t.slots.(g.g_pid).(g.g_slot) in
    if A.get slot = ident then true
    else begin
      A.set slot ident;
      false
    end

  (** What [g]'s slot actually announces right now (0 = nothing). The
      sanitizer reads this back instead of trusting the guard value, so
      a dropped announcement write is visible as the absence it is. *)
  let announcement t g = A.get t.slots.(g.g_pid).(g.g_slot)

  let release t ~pid:_ g =
    A.set t.slots.(g.g_pid).(g.g_slot) 0;
    t.in_use.(g.g_pid).(g.g_slot) <- false

  (** The read side of Fig 2: read the location, announce, re-read and
      settle until the announcement is confirmed. Returns the protected
      identity and its guard. *)
  let protect_read t ~pid ~(read : unit -> int) =
    let v0 = read () in
    let g = acquire t ~pid v0 in
    if !(t.mutation_skip_validate) || !(t.mutation_drop_acquire) then (v0, g)
    else begin
      let rec settle () =
        let v = read () in
        if confirm t ~pid g v then (v, g) else settle ()
      in
      settle ()
    end

  let retire t ~pid ident free = t.retired.(pid) := (ident, free) :: !(t.retired.(pid))

  let retired_count t ~pid = List.length !(t.retired.(pid))

  (** Scan every announcement slot (one atomic read each — each read is
      a scheduling point under exploration, so the explorer exercises
      mid-scan races) and free every retired identity not announced.
      Returns the number of entries freed. *)
  let eject t ~pid =
    let announced = ref [] in
    for p = 0 to t.nthreads - 1 do
      for i = 0 to t.slots_per_thread - 1 do
        let v = A.get t.slots.(p).(i) in
        if v <> 0 then announced := v :: !announced
      done
    done;
    let keep, free = List.partition (fun (id, _) -> List.mem id !announced) !(t.retired.(pid)) in
    t.retired.(pid) := keep;
    List.iter (fun (_, f) -> f ()) free;
    List.length free
end
