(** Generalized acquire–retire (paper §3.1, Fig 2).

    This layer packages any manual SMR scheme as the paper's
    generalized interface: [alloc] / [retire] / [eject] plus critical
    sections and the typed [acquire] / [try_acquire] / [release]
    protocol. It is the contribution that lets reference counting (and
    the manual data structures) be written once against a scheme-
    agnostic API.

    Differences from Fig 2, forced by OCaml and documented in
    DESIGN.md: [alloc] wraps an existing value in a {!Make.managed}
    record (carrying the birth tag and the simulated-heap block) rather
    than calling a constructor; [eject] returns deferred closures for
    the caller to run (never reentrantly — use {!Make.drain}); the
    typed read of the shared location is supplied by the caller as a
    [read] function. *)

(** The announcement-slot kernel of the Fig 2 protocol, functorized
    over the atomic shim for deterministic schedule exploration
    (DESIGN.md §8). *)
module Slot_protocol = Slot_protocol

module Make (S : Smr.Smr_intf.S) = struct
  module Smr_impl = S

  type guard = S.guard

  type t = {
    smr : S.t;
    heap : Simheap.t;
    (* AR-level batch sizing: ops the scheme released but the cap has
       not yet let through. Owner-pid only, like the retired queues. *)
    carry : Smr.Deferred.t Queue.t array;
  }

  (* AR-level eject batch sizes: unlike the scheme-level histogram this
     sees the batches the *data structure* drains, i.e. after any
     fault-injection wrapper has had its say. *)
  let eject_batch_h = Obs.Histo.histo ("ar." ^ String.lowercase_ascii S.name ^ ".eject.batch_size")

  (** A value under acquire–retire management. [alloc] is part of the
      Fig 2 interface because IBR and HE must tag each object with a
      birth epoch at allocation time. *)
  type 'a managed = { value : 'a; birth : int; block : Simheap.block }

  let create ?epoch_freq ?cleanup_freq ?slots_per_thread ?heap ~max_threads () =
    let heap =
      match heap with Some h -> h | None -> Simheap.create ~name:("ar-" ^ S.name) ()
    in
    {
      smr = S.create ?epoch_freq ?cleanup_freq ?slots_per_thread ~max_threads ();
      heap;
      carry = Array.init max_threads (fun _ -> Queue.create ());
    }

  let smr t = t.smr
  let heap t = t.heap
  let max_threads t = S.max_threads t.smr

  let handle t =
    {
      Smr.Knobs.h_scheme = S.name;
      h_knobs = S.knobs t.smr;
      h_force_advance = (fun () -> S.force_advance t.smr);
    }

  (* The hook runs strictly before the heap allocation: if it raises
     (fault injection crashing the thread), no block exists yet and
     nothing can leak. *)
  let alloc t ~pid value =
    let birth = S.alloc_hook t.smr ~pid in
    let block = Simheap.alloc t.heap in
    { value; birth; block }

  let get (m : _ managed) =
    Simheap.check_live m.block;
    m.value

  let is_live (m : _ managed) = Simheap.is_live m.block
  let ident (m : _ managed) = Smr.Ident.of_val m

  let begin_critical_section t ~pid = S.begin_critical_section t.smr ~pid
  let end_critical_section t ~pid = S.end_critical_section t.smr ~pid

  let critically t ~pid f =
    begin_critical_section t ~pid;
    Fun.protect ~finally:(fun () -> end_critical_section t ~pid) f

  (* The two-phase announce/confirm protocol described in
     [Smr.Smr_intf]: [read] loads the shared location, [ident] projects
     the identity token that the scheme announces and validates. *)

  let acquire t ~pid ~(read : unit -> 'v) ~(ident : 'v -> Smr.Ident.t) : 'v * guard =
    if S.confirm_is_trivial then (read (), S.acquire t.smr ~pid Smr.Ident.null)
    else begin
      let v0 = read () in
      let g = S.acquire t.smr ~pid (ident v0) in
      let rec settle () =
        let v = read () in
        if S.confirm t.smr ~pid g (ident v) then (v, g) else settle ()
      in
      settle ()
    end

  let try_acquire t ~pid ~(read : unit -> 'v) ~(ident : 'v -> Smr.Ident.t) :
      ('v * guard) option =
    if S.confirm_is_trivial then
      match S.try_acquire t.smr ~pid Smr.Ident.null with
      | Some g -> Some (read (), g)
      | None -> None
    else begin
      let v0 = read () in
      match S.try_acquire t.smr ~pid (ident v0) with
      | None -> None
      | Some g ->
          let rec settle () =
            let v = read () in
            if S.confirm t.smr ~pid g (ident v) then Some (v, g) else settle ()
          in
          settle ()
    end

  let release t ~pid g = S.release t.smr ~pid g

  let retire t ~pid (m : _ managed) (op : Smr.Deferred.t) =
    S.retire t.smr ~pid (ident m) ~birth:m.birth op

  (** Manual-SMR convenience: retire with the deferred operation being
      the reclamation itself. *)
  let retire_free t ~pid (m : _ managed) =
    retire t ~pid m (fun _pid -> Simheap.free m.block)

  (* Batch sizing happens here as well as inside the scheme: whatever
     the scheme releases joins the pid's carry queue, and at most
     [Knobs.batch_cap] ops come back out per call (everything under
     [~force], so drain/teardown loops still terminate). The cap is
     re-read from the live knob block each call, so the controller's
     moves take effect on the very next eject. *)
  let eject ?(force = false) t ~pid =
    let q = t.carry.(pid) in
    List.iter (fun op -> Queue.push op q) (S.eject ~force t.smr ~pid);
    let cap = if force then max_int else Smr.Knobs.batch_cap (S.knobs t.smr) in
    let rec take n acc =
      if n <= 0 then List.rev acc
      else
        match Queue.take_opt q with
        | None -> List.rev acc
        | Some op -> take (n - 1) (op :: acc)
    in
    let ops = take cap [] in
    (match ops with [] -> () | _ -> Obs.Histo.observe eject_batch_h ~pid (List.length ops));
    ops

  (** Run every ejectable deferred operation. Safe against cascades:
      operations executed here may retire further objects; we loop
      until [eject] yields nothing, never recursing into a running
      operation. *)
  let drain t ~pid =
    let rec go () =
      match eject ~force:true t ~pid with
      | [] -> ()
      | ops ->
          List.iter (fun op -> op pid) ops;
          go ()
    in
    go ()

  (** Crash recovery: reap [pid]'s scheme state (close its critical
      section, clear announcements, orphan its retired entries for
      adoption). Call once, after the thread has truly stopped. *)
  let abandon t ~pid = S.abandon t.smr ~pid

  (** {2 Epoch watchdog}

      Detects the paper's §2 pathology at runtime: a thread stalled
      inside a critical section pins the scheme's reclamation frontier,
      and for a protected-region scheme like EBR {e all} garbage
      retired since then accumulates behind it. The watchdog samples
      (frontier, total pending retired entries) and reports [Stuck]
      once the frontier has sat still across [threshold] consecutive
      checks while the backlog grew by more than [slack] entries since
      the frontier last moved — the supervisor's cue to find the
      stalled thread and [abandon] it. The [slack] absorbs the sawtooth
      of amortized eject scans, so a healthy bounded-garbage scheme
      (IBR with one stalled thread: frontier pinned but backlog capped)
      doesn't trip it. Schemes without a global clock (HP, PTB,
      Hyaline) never report stuck: their garbage is already bounded per
      stalled thread. *)

  type watchdog = Obs.Watchdog.t

  type watchdog_verdict = Progressing | Stuck of { frontier : int; pending : int }

  let watchdog ?threshold ?slack () = Obs.Watchdog.create ?threshold ?slack ~scheme:S.name ()

  let total_pending t =
    let n = S.max_threads t.smr in
    let acc = ref 0 in
    for pid = 0 to n - 1 do
      acc := !acc + S.retired_count t.smr ~pid
    done;
    !acc

  (* The verdict counters, the bounded string sink drained by the
     workload driver, and the trace event all live in [Obs.Watchdog];
     here we only re-expose its verdict under this functor's historical
     constructors. *)
  let watchdog_check t (w : watchdog) =
    match S.reclamation_frontier t.smr with
    | None -> Progressing
    | Some frontier -> (
        let pending = total_pending t in
        match Obs.Watchdog.check w ~pid:0 ~frontier ~pending with
        | Obs.Watchdog.Progressing -> Progressing
        | Obs.Watchdog.Stuck { frontier; pending } -> Stuck { frontier; pending })

  (** Teardown at quiescence: apply every pending deferred operation,
      including cascades. Requires no concurrent activity. *)
  let quiesce t =
    let drain_carry () =
      Array.iter
        (fun q ->
          while not (Queue.is_empty q) do
            (Queue.pop q) 0
          done)
        t.carry
    in
    let rec go () =
      drain_carry ();
      match S.drain_all t.smr with
      | [] -> drain_carry ()
      | ops ->
          List.iter (fun op -> op 0) ops;
          go ()
    in
    go ()
end
