type ('op, 'res) event = { thread : int; op : 'op; res : 'res; inv : int; ret : int }

module Recorder = struct
  type ('op, 'res) t = {
    clock : int Atomic.t;
    events : ('op, 'res) event list Atomic.t; (* Treiber-style push list *)
  }

  let create () = { clock = Atomic.make 0; events = Atomic.make [] }

  let rec push t e =
    let cur = Atomic.get t.events in
    if not (Atomic.compare_and_set t.events cur (e :: cur)) then push t e

  let run t ~thread op f =
    let inv = Atomic.fetch_and_add t.clock 1 in
    let res = f () in
    let ret = Atomic.fetch_and_add t.clock 1 in
    push t { thread; op; res; inv; ret };
    res

  let history t = Atomic.get t.events
end

(* Exhaustive search for a valid linearization. At each step the
   candidates are the pending events not preceded (in real time) by
   another pending event; [e1 precedes e2] iff [e1.ret < e2.inv]. *)
let check_naive ~model ~equal_res ~init history =
  let arr = Array.of_list history in
  let n = Array.length arr in
  let done_ = Array.make n false in
  let rec go remaining state =
    remaining = 0
    || begin
         (* minimal pending events w.r.t. real-time precedence *)
         let is_candidate i =
           (not done_.(i))
           && begin
                let ok = ref true in
                for j = 0 to n - 1 do
                  if (not done_.(j)) && j <> i && arr.(j).ret < arr.(i).inv then ok := false
                done;
                !ok
              end
         in
         let rec try_candidates i =
           if i >= n then false
           else if is_candidate i then begin
             let e = arr.(i) in
             let state', expected = model state e.op in
             if equal_res expected e.res then begin
               done_.(i) <- true;
               if go (remaining - 1) state' then true
               else begin
                 done_.(i) <- false;
                 try_candidates (i + 1)
               end
             end
             else try_candidates (i + 1)
           end
           else try_candidates (i + 1)
         in
         try_candidates 0
       end
  in
  go n init

(* Same search with Wing–Gong pruning of revisited configurations: a
   configuration is (set of linearized events, model state), and every
   path that reaches a configuration again fails or succeeds exactly as
   the first visit did — so memoize failed ones and cut. Histories from
   heavily-overlapping runs otherwise explode factorially (every
   permutation of k mutually-overlapping events is explored even when
   they commute); with the cut, ~12-event histories check in
   milliseconds. The linearized set is a bitmask; the model state is
   compared structurally, which is sound: a false *miss* (two
   semantically equal states with different representations) only costs
   pruning, never an answer. *)
let check_pruned ~model ~equal_res ~init history =
  let arr = Array.of_list history in
  let n = Array.length arr in
  if n > 62 then check_naive ~model ~equal_res ~init history
  else begin
    let all_done = (1 lsl n) - 1 in
    let failed = Hashtbl.create 256 in
    let rec go mask state =
      mask = all_done
      || (not (Hashtbl.mem failed (mask, state)))
         && begin
              let is_candidate i =
                mask land (1 lsl i) = 0
                && begin
                     let ok = ref true in
                     for j = 0 to n - 1 do
                       if mask land (1 lsl j) = 0 && j <> i && arr.(j).ret < arr.(i).inv
                       then ok := false
                     done;
                     !ok
                   end
              in
              let rec try_candidates i =
                if i >= n then begin
                  Hashtbl.replace failed (mask, state) ();
                  false
                end
                else if is_candidate i then begin
                  let e = arr.(i) in
                  let state', expected = model state e.op in
                  if equal_res expected e.res && go (mask lor (1 lsl i)) state' then true
                  else try_candidates (i + 1)
                end
                else try_candidates (i + 1)
              in
              try_candidates 0
            end
    in
    go 0 init
  end

let check = check_pruned

let check_or_explain ~model ~equal_res ~pp_op ~pp_res ~init history =
  if check ~model ~equal_res ~init history then Ok ()
  else begin
    let buf = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buf in
    Format.fprintf ppf "non-linearizable history:@.";
    List.iter
      (fun e ->
        Format.fprintf ppf "  [t%d %3d-%3d] %a -> %a@." e.thread e.inv e.ret pp_op e.op
          pp_res e.res)
      (List.sort (fun a b -> compare a.inv b.inv) history);
    Format.pp_print_flush ppf ();
    Error (Buffer.contents buf)
  end
