(** A small linearizability checker (Wing & Gong style exhaustive
    search) used by the test suite to validate the concurrent data
    structures against their sequential specifications.

    Worker threads record each completed operation with invocation and
    response timestamps drawn from a shared logical clock
    ({!Recorder}). {!check} then searches for a permutation of the
    history that (a) respects real-time order — an operation that
    responded before another was invoked must linearize first — and
    (b) replays correctly against a sequential [model].

    {!check} memoizes visited (linearized-set, model-state)
    configurations (Wing–Gong pruning), so heavily-overlapping
    histories of a dozen events check in milliseconds instead of
    exploring every permutation; it is still exponential in the worst
    case, so keep recorded histories small (a few threads × a few
    operations), which is ample to catch ordering bugs: a
    non-linearizable implementation fails quickly on short
    histories. *)

type ('op, 'res) event = {
  thread : int;
  op : 'op;
  res : 'res;
  inv : int; (* logical invocation time *)
  ret : int; (* logical response time *)
}

module Recorder : sig
  type ('op, 'res) t

  val create : unit -> ('op, 'res) t

  val run : ('op, 'res) t -> thread:int -> 'op -> (unit -> 'res) -> 'res
  (** [run t ~thread op f] executes [f], recording the operation with
      invocation/response stamps. Thread-safe. *)

  val history : ('op, 'res) t -> ('op, 'res) event list
  (** All recorded events (call after workers have joined). *)
end

val check :
  model:('state -> 'op -> 'state * 'res) ->
  equal_res:('res -> 'res -> bool) ->
  init:'state ->
  ('op, 'res) event list ->
  bool
(** [check ~model ~equal_res ~init history]: is there a linearization
    of [history] that replays on [model] from [init] with every
    operation producing its recorded result? Model states must compare
    meaningfully under structural equality for the pruning to bite
    (lists, tuples, ints do; functional sets merely prune less). *)

val check_naive :
  model:('state -> 'op -> 'state * 'res) ->
  equal_res:('res -> 'res -> bool) ->
  init:'state ->
  ('op, 'res) event list ->
  bool
(** The unpruned reference search — exactly {!check} without
    memoization. Exposed so the test suite can assert the pruned
    checker agrees with it on random histories; use {!check}. *)

val check_or_explain :
  model:('state -> 'op -> 'state * 'res) ->
  equal_res:('res -> 'res -> bool) ->
  pp_op:(Format.formatter -> 'op -> unit) ->
  pp_res:(Format.formatter -> 'res -> unit) ->
  init:'state ->
  ('op, 'res) event list ->
  (unit, string) result
(** Like {!check}, but on failure returns a rendering of the offending
    history for diagnostics. *)
