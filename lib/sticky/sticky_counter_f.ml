(** The wait-free sticky counter of paper §4.3 / Fig 7, functorized
    over the atomic shim so the identical algorithm runs on the
    production path ([Sched.Passthrough], see {!Sticky_counter}) and
    under the deterministic schedule explorer ([Sched.Traced]).

    Every atomic step of the zero-flag/help-flag dance below is a
    scheduling point under exploration — the protocol is checked
    schedule-by-schedule, not by wall-clock luck. *)

module Make (A : Sched.ATOMIC) = struct
  type t = int A.t

  (* OCaml ints are 63-bit; reserve the two top usable bits. *)
  let zero_flag = 1 lsl 61
  let help_flag = 1 lsl 60
  let max_value = help_flag - 1

  (* Sticky counters have no pid in their API; shard telemetry by the
     calling domain instead. Registration is idempotent, so the
     production and traced instantiations share one set of cells. *)
  let stick_c = Obs.Metrics.counter "sticky.stick"
  let cas_fail_c = Obs.Metrics.counter "sticky.cas_fail"
  let help_c = Obs.Metrics.counter "sticky.help"
  let self_pid () = (Domain.self () :> int)

  (* Seeded mutation for harness validation (ISSUE 3): when set, [load]
     announces a death with the zero flag alone, "forgetting" to
     publish the help flag. The racing decrement then finds neither a
     CAS-able 0 nor a help mark and takes no death credit — the exact
     Fig 7 bug the schedule explorer must be able to find. Off by
     default; the [CDRC_MUT_DROP_HELP] environment variable arms it at
     start-up for build-level mutation runs. *)
  let mutation_drop_help_publish =
    ref (match Sys.getenv_opt "CDRC_MUT_DROP_HELP" with
        | Some ("1" | "true" | "yes") -> true
        | _ -> false)

  let create n =
    if n < 0 || n > max_value then invalid_arg "Sticky_counter.create";
    A.make (if n = 0 then zero_flag else n)

  let increment_if_not_zero t =
    let v = A.fetch_and_add t 1 in
    v land zero_flag = 0

  let rec decrement_slow t =
    (* Stored value hit 0: try to announce death by setting the zero
       flag. If the CAS fails, either an increment revived the counter or
       a load helped by writing [zero|help]. *)
    if A.compare_and_set t 0 zero_flag then begin
      Obs.Metrics.incr stick_c ~pid:(self_pid ());
      true
    end
    else begin
      Obs.Metrics.incr cas_fail_c ~pid:(self_pid ());
      let e = A.get t in
      if e land help_flag <> 0 then
        (* A load announced the death for us; exactly one decrement may
           claim it by clearing the help flag with an exchange. *)
        A.exchange t zero_flag land help_flag <> 0
      else if e = 0 then
        (* The counter was revived and brought back to 0 by another
           decrement in between; retry against the current state. *)
        decrement_slow t
      else
        (* Revived (e ≥ 1), or a later decrement already claimed the
           death (zero set, no help): we did not bring it to zero. *)
        false
    end

  let decrement t = if A.fetch_and_add t (-1) = 1 then decrement_slow t else false

  let rec load t =
    let e = A.get t in
    if e = 0 then begin
      (* Stored 0 is ambiguous: a decrement is mid-flight. Help it
         announce the death so we can return a linearizable 0. *)
      let announce =
        if !mutation_drop_help_publish then zero_flag else zero_flag lor help_flag
      in
      if A.compare_and_set t 0 announce then begin
        Obs.Metrics.incr help_c ~pid:(self_pid ());
        0
      end
      else load t
    end
    else if e land zero_flag <> 0 then 0
    else e

  let is_zero t = load t = 0
  let raw t = A.get t
end
