type t = int Atomic.t

(* OCaml ints are 63-bit; reserve the two top usable bits. *)
let zero_flag = 1 lsl 61
let help_flag = 1 lsl 60
let max_value = help_flag - 1

(* Sticky counters have no pid in their API; shard telemetry by the
   calling domain instead. *)
let stick_c = Obs.Metrics.counter "sticky.stick"
let cas_fail_c = Obs.Metrics.counter "sticky.cas_fail"
let help_c = Obs.Metrics.counter "sticky.help"
let self_pid () = (Domain.self () :> int)

let create n =
  if n < 0 || n > max_value then invalid_arg "Sticky_counter.create";
  Atomic.make (if n = 0 then zero_flag else n)

let increment_if_not_zero t =
  let v = Atomic.fetch_and_add t 1 in
  v land zero_flag = 0

let rec decrement_slow t =
  (* Stored value hit 0: try to announce death by setting the zero
     flag. If the CAS fails, either an increment revived the counter or
     a load helped by writing [zero|help]. *)
  if Atomic.compare_and_set t 0 zero_flag then begin
    Obs.Metrics.incr stick_c ~pid:(self_pid ());
    true
  end
  else begin
    Obs.Metrics.incr cas_fail_c ~pid:(self_pid ());
    let e = Atomic.get t in
    if e land help_flag <> 0 then
      (* A load announced the death for us; exactly one decrement may
         claim it by clearing the help flag with an exchange. *)
      Atomic.exchange t zero_flag land help_flag <> 0
    else if e = 0 then
      (* The counter was revived and brought back to 0 by another
         decrement in between; retry against the current state. *)
      decrement_slow t
    else
      (* Revived (e ≥ 1), or a later decrement already claimed the
         death (zero set, no help): we did not bring it to zero. *)
      false
  end

let decrement t = if Atomic.fetch_and_add t (-1) = 1 then decrement_slow t else false

let rec load t =
  let e = Atomic.get t in
  if e = 0 then
    (* Stored 0 is ambiguous: a decrement is mid-flight. Help it
       announce the death so we can return a linearizable 0. *)
    if Atomic.compare_and_set t 0 (zero_flag lor help_flag) then begin
      Obs.Metrics.incr help_c ~pid:(self_pid ());
      0
    end
    else load t
  else if e land zero_flag <> 0 then 0
  else e

let is_zero t = load t = 0
let raw t = Atomic.get t
