(* The production instantiation of the functorized Fig 7 algorithm:
   [Sched.Passthrough] is [Stdlib.Atomic], so this compiles to exactly
   the direct implementation. The same functor instantiated over
   [Sched.Traced] is what the schedule-exploration harness checks
   (test/test_sched.ml) — production and exploration run one piece of
   code. *)

include Sticky_counter_f.Make (Sched.Passthrough)
