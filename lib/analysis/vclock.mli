(** Vector clocks for the happens-before engine (DESIGN.md §14).

    One int per context; contexts [0 .. n-1] are fibers, context [n]
    is the setup/oracle context. Mutable — [tick] and [join] update in
    place; use [copy] where a snapshot must not alias. *)

type t

val make : int -> t
(** [make n] is the all-zero clock over [n] contexts. *)

val copy : t -> t
val size : t -> int

val tick : t -> int -> unit
(** [tick c i] increments component [i] (a local step of context [i]). *)

val get : t -> int -> int

val join : t -> t -> unit
(** [join a b] sets [a] to the pointwise max of [a] and [b] — the
    acquire half of a synchronization edge. *)

val leq : t -> t -> bool
(** Pointwise [<=]: [leq a b] means every event summarized by [a]
    happens-before (or is) the frontier of [b]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
