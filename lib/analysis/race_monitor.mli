(** Happens-before race & pointer-lifetime sanitizer (DESIGN.md §14).

    One monitor checks one explored schedule. {!create} installs the
    {!Sched.set_tracer} hook, so every [Sched.Traced] atomic operation
    feeds the FastTrack-style vector-clock engine; the sanitizing
    scenario wrappers in [lib/explore] report protocol events
    explicitly. Violations raise {!Violation} at the offending event —
    inside the offending fiber — so the explorers surface them with the
    executed schedule and a replay recipe, like any oracle failure.

    Checked properties:
    - {b (a)} a fiber dereferencing a {e retired} block must hold a
      guard covering it (and a {e freed} block is out of bounds
      altogether) — the message names the racing deref and retire/free,
      their fibers and steps;
    - {b (b)} at [free], every recorded deref of the block must be
      happens-before-ordered under the freer's clock — "protection
      interval not ordered before the matching free";
    - {b (c)} the reference-count ledger: no duplicated or lost
      decrements/death credits, no increment after death.

    The monitor is per-schedule: build a fresh one inside the scenario
    builder ([mk ()]); [Sched]'s controller clears the tracer hook when
    the run finishes. *)

exception Violation of string

type t

val create : fibers:int -> unit -> t
(** [create ~fibers:n ()] — a monitor for a scenario with [n] fibers.
    Installs itself as the scheduler's tracer (replacing any previous
    one). Clock component [n] is the setup/oracle context: events
    reported while [Sched.current_fiber () = -1] are attributed to it;
    setup happens-before every fiber, the oracle follows all of them. *)

val on_op : t -> Sched.op_event -> unit
(** The tracer feed ({!create} installs it; exposed for tests). Each
    atomic op acquires the location's last-sync clock, releases its own
    frontier there, then ticks. *)

(** {1 Protocol events}

    All events attribute themselves via [Sched.current_fiber] /
    [Sched.current_step]. *)

val register : t -> ident:int -> unit
(** A block identified by [ident] becomes live. *)

val acquire : t -> ident:int -> unit
(** The current context announces a guard covering [ident]. Report this
    only when the announcement {e actually} covers the block (read the
    slot back), or a dropped-acquire bug becomes invisible. *)

val release : t -> ident:int -> unit
(** Drop one guard on [ident] held by the current context (no-op if it
    holds none). *)

val deref : t -> ident:int -> unit
(** The current fiber dereferences the block — rule (a) checked here,
    and the deref is recorded (with a clock snapshot) for rule (b).
    Oracle-context derefs are exempt and unrecorded. *)

val retire : t -> ident:int -> unit
(** The block leaves the data structure; flags double retires. *)

val free : t -> ident:int -> unit
(** Physical reclamation — rule (b) checked here, plus double-free and
    free-without-retire (the latter exempt in the oracle context). *)

val rc_register : t -> ident:int -> count:int -> unit
(** Start the rc ledger for cell [ident] at [count]. *)

val rc_incr : t -> ident:int -> unit
(** A successful increment; flags increments after the death credit. *)

val rc_decr : t -> ident:int -> death:bool -> unit
(** A decrement; [death] marks the caller that took the death credit.
    Flags negative counts and duplicated death credits. *)

val check : t -> unit
(** Final oracle: flags lost death credits (count reached 0 with no
    death reported) and death credits taken with references
    outstanding. Call from the scenario's [check]. *)
