(** Vector clocks for the happens-before engine (DESIGN.md §14).

    A clock is one int per context: indices [0 .. n-1] are the n fibers
    of a scenario, index [n] is the setup/oracle context (code running
    outside any fiber). Plain int arrays — the sanitizer runs one
    schedule at a time on one domain, so no synchronization is needed,
    and the engine copies defensively at the two places a snapshot
    escapes (release into a location clock, recorded deref). *)

type t = int array

let make n = Array.make n 0
let copy = Array.copy
let size = Array.length

let tick (c : t) i = c.(i) <- c.(i) + 1
let get (c : t) i = c.(i)

(* [join a b] folds [b] into [a] pointwise (FastTrack's acquire). *)
let join (a : t) (b : t) =
  for i = 0 to Array.length a - 1 do
    if b.(i) > a.(i) then a.(i) <- b.(i)
  done

let leq (a : t) (b : t) =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let pp ppf (c : t) =
  Format.fprintf ppf "<%s>"
    (String.concat "," (Array.to_list (Array.map string_of_int c)))

let to_string c = Format.asprintf "%a" pp c
