(** Happens-before race & pointer-lifetime sanitizer (DESIGN.md §14).

    One monitor instance checks one explored schedule. Two event feeds
    drive it:

    - every [Sched.Traced] atomic operation, via the {!Sched.set_tracer}
      hook installed by {!create} — these build the happens-before
      relation (FastTrack-style: each atomic op on a location is treated
      as an acquire+release on that location, which is exactly the
      seq-cst semantics the traced shim models);
    - protocol events ([register]/[deref]/[acquire]/[retire]/[free] and
      the [rc_*] family), reported explicitly by the sanitizing scenario
      wrappers in [lib/explore] — these drive the pointer-lifetime
      typestate and the reference-count ledger.

    A violation raises {!Violation} at the offending event, inside the
    fiber that performed it, so the controller surfaces it exactly like
    any other oracle failure: with the executed schedule and a replay
    recipe.

    Contexts: a scenario with [n] fibers gets [n + 1] clock components;
    component [n] is the setup/oracle context (code running with
    [Sched.current_fiber () = -1]). Setup happens-before every fiber
    (fork edge, applied lazily at each fiber's first event), and the
    oracle context lazily joins every fiber's clock (it only runs while
    no fiber does). *)

exception Violation of string

let () =
  Printexc.register_printer (function Violation m -> Some m | _ -> None)

let violation fmt = Printf.ksprintf (fun m -> raise (Violation ("rc-race: " ^ m))) fmt
let who f = if f < 0 then "oracle" else Printf.sprintf "fiber %d" f

type ident_state =
  | Live
  | Retired of { r_fiber : int; r_step : int; r_clock : Vclock.t }
  | Freed of { fr_fiber : int; fr_step : int }

type deref_record = { d_fiber : int; d_step : int; d_clock : Vclock.t }
type rc_state = { mutable count : int; mutable died : bool }

type t = {
  n : int;  (** fibers; clock component [n] is the setup/oracle context *)
  clocks : Vclock.t array;  (** [n + 1] entries *)
  started : bool array;  (** fork edge from setup applied? *)
  locs : (int, Vclock.t) Hashtbl.t;  (** atomic-cell uid -> last-sync clock *)
  idents : (int, ident_state) Hashtbl.t;
  derefs : (int, deref_record list) Hashtbl.t;
  guards : (int, int list) Hashtbl.t;  (** context -> announced idents (multiset) *)
  rc : (int, rc_state) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Contexts and clocks *)

let ctx_of m fiber = if fiber < 0 || fiber >= m.n then m.n else fiber

let clock_of m idx =
  if idx = m.n then begin
    (* The setup/oracle context only runs while no fiber does: before
       the run (all fiber clocks zero — the joins are no-ops) and after
       it (the check oracle logically follows every fiber). *)
    for i = 0 to m.n - 1 do
      Vclock.join m.clocks.(m.n) m.clocks.(i)
    done;
    m.clocks.(m.n)
  end
  else begin
    if not m.started.(idx) then begin
      (* fork edge: everything setup did happens-before the fiber *)
      Vclock.join m.clocks.(idx) m.clocks.(m.n);
      m.started.(idx) <- true
    end;
    m.clocks.(idx)
  end

let here m =
  let f = Sched.current_fiber () in
  let idx = ctx_of m f in
  (f, Sched.current_step (), idx, clock_of m idx)

(* ------------------------------------------------------------------ *)
(* The happens-before engine (tracer feed) *)

let on_op m (ev : Sched.op_event) =
  let idx = ctx_of m ev.op_fiber in
  let c = clock_of m idx in
  (* acquire: fold the location's last-sync clock into ours *)
  (match Hashtbl.find_opt m.locs ev.op_loc with
  | Some l -> Vclock.join c l
  | None -> ());
  (* release: publish our frontier at this location, then advance *)
  Hashtbl.replace m.locs ev.op_loc (Vclock.copy c);
  Vclock.tick c idx

let create ~fibers () =
  let n = fibers in
  let m =
    {
      n;
      clocks = Array.init (n + 1) (fun _ -> Vclock.make (n + 1));
      started = Array.make n false;
      locs = Hashtbl.create 64;
      idents = Hashtbl.create 64;
      derefs = Hashtbl.create 64;
      guards = Hashtbl.create 8;
      rc = Hashtbl.create 8;
    }
  in
  Sched.set_tracer (Some (on_op m));
  m

(* ------------------------------------------------------------------ *)
(* Guards *)

let acquire m ~ident =
  let _, _, idx, _ = here m in
  let cur = Option.value ~default:[] (Hashtbl.find_opt m.guards idx) in
  Hashtbl.replace m.guards idx (ident :: cur)

let release m ~ident =
  let _, _, idx, _ = here m in
  let cur = Option.value ~default:[] (Hashtbl.find_opt m.guards idx) in
  let rec drop = function
    | [] -> []
    | x :: rest -> if x = ident then rest else x :: drop rest
  in
  Hashtbl.replace m.guards idx (drop cur)

let guarded m idx ident =
  match Hashtbl.find_opt m.guards idx with
  | None -> false
  | Some l -> List.mem ident l

(* ------------------------------------------------------------------ *)
(* Pointer-lifetime typestate *)

let register m ~ident = Hashtbl.replace m.idents ident Live

let state_of m ident =
  match Hashtbl.find_opt m.idents ident with
  | Some s -> s
  | None ->
      (* Lenient: an unregistered ident is treated as live from birth. *)
      Hashtbl.replace m.idents ident Live;
      Live

let deref m ~ident =
  let f, step, idx, c = here m in
  if idx <> m.n then begin
    (* Rule (a): a fiber may touch a retired block only under a guard
       covering it (the announcement is what holds eject back); a freed
       block is out of bounds, guard or no guard. *)
    (match state_of m ident with
    | Live -> ()
    | Retired r ->
        if not (guarded m idx ident) then
          if Vclock.leq r.r_clock c then
            violation
              "unprotected use of retired block #%d: %s (step %d) dereferences it \
               after its retire by %s (step %d), with no covering guard"
              ident (who f) step (who r.r_fiber) r.r_step
          else
            violation
              "unprotected read of retired block #%d: deref by %s (step %d) races \
               retire by %s (step %d) — no covering guard, no happens-before order"
              ident (who f) step (who r.r_fiber) r.r_step
    | Freed fr ->
        violation "use-after-free of block #%d: deref by %s (step %d), freed by %s (step %d)"
          ident (who f) step (who fr.fr_fiber) fr.fr_step);
    (* Record for rule (b): at free time every deref must be ordered
       before the free. *)
    let cur = Option.value ~default:[] (Hashtbl.find_opt m.derefs ident) in
    Hashtbl.replace m.derefs ident
      ({ d_fiber = f; d_step = step; d_clock = Vclock.copy c } :: cur)
  end

let retire m ~ident =
  let f, step, _, c = here m in
  (match state_of m ident with
  | Live -> ()
  | Retired r ->
      violation "double retire of block #%d: by %s (step %d), first by %s (step %d)"
        ident (who f) step (who r.r_fiber) r.r_step
  | Freed fr ->
      violation "retire of already-freed block #%d: by %s (step %d), freed by %s (step %d)"
        ident (who f) step (who fr.fr_fiber) fr.fr_step);
  Hashtbl.replace m.idents ident
    (Retired { r_fiber = f; r_step = step; r_clock = Vclock.copy c })

let free m ~ident =
  let f, step, idx, c = here m in
  (match state_of m ident with
  | Freed fr ->
      violation "double free of block #%d: by %s (step %d), first by %s (step %d)"
        ident (who f) step (who fr.fr_fiber) fr.fr_step
  | Live when idx <> m.n ->
      violation "block #%d freed by %s (step %d) without a preceding retire" ident
        (who f) step
  | Live | Retired _ -> ());
  (* Rule (b): every recorded protection interval (deref) must be
     ordered before the free — this is the paper's discipline stated as
     a happens-before check, and it is what the slot release → eject
     scan edges establish in the clean protocol. *)
  List.iter
    (fun d ->
      if not (Vclock.leq d.d_clock c) then
        violation
          "protection interval not ordered before free of block #%d: deref by %s \
           (step %d) does not happen-before the free by %s (step %d)"
          ident (who d.d_fiber) d.d_step (who f) step)
    (Option.value ~default:[] (Hashtbl.find_opt m.derefs ident));
  Hashtbl.replace m.idents ident (Freed { fr_fiber = f; fr_step = step })

(* ------------------------------------------------------------------ *)
(* Reference-count ledger (rule c) *)

let rc_register m ~ident ~count =
  Hashtbl.replace m.rc ident { count; died = false }

let rc_cell m ident =
  match Hashtbl.find_opt m.rc ident with
  | Some s -> s
  | None ->
      let s = { count = 0; died = false } in
      Hashtbl.replace m.rc ident s;
      s

let rc_incr m ~ident =
  let f, step, _, _ = here m in
  let s = rc_cell m ident in
  if s.died then
    violation "rc cell #%d incremented by %s (step %d) after its death credit was taken"
      ident (who f) step;
  s.count <- s.count + 1

let rc_decr m ~ident ~death =
  let f, step, _, _ = here m in
  let s = rc_cell m ident in
  s.count <- s.count - 1;
  if s.count < 0 then
    violation "duplicated decrement on rc cell #%d: decrement by %s (step %d) drops \
               the count to %d"
      ident (who f) step s.count;
  if death then begin
    if s.died then
      violation "duplicated death credit on rc cell #%d: taken again by %s (step %d)"
        ident (who f) step;
    s.died <- true
  end

(* ------------------------------------------------------------------ *)
(* Final oracle *)

let check m =
  Hashtbl.iter
    (fun ident (s : rc_state) ->
      if s.count < 0 then
        violation "rc cell #%d ends the run with negative count %d" ident s.count;
      if s.count = 0 && not s.died then
        violation
          "lost death credit on rc cell #%d: count reached 0 but no decrement \
           reported the death"
          ident;
      if s.died && s.count > 0 then
        violation "rc cell #%d death credit taken with %d references outstanding" ident
          s.count)
    m.rc
