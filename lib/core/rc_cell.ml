(** The schedule-sensitive heart of a CDRC control block (paper §4,
    Figs 8–9), functorized over the atomic shim.

    A control block's lifecycle is driven by three cells — the strong
    sticky counter, the weak sticky counter, and the value cell that is
    atomically emptied exactly once at disposal — and the races that
    matter all run through them: a weak upgrade ([try_upgrade], Fig 9's
    increment-if-not-zero) racing the final strong decrement, a reader
    dereferencing the value cell racing the dispose, the last weak
    decrement racing a weak copy. [Cdrc.Make] wires this module up with
    deferral, guards and birth epochs; none of those add scheduling
    points to the lifecycle itself, so the explorer drives this core
    (over [Sched.Traced]) while production runs the identical code over
    [Sched.Passthrough]. *)

module Make (A : Sched.ATOMIC) = struct
  module Counter = Sticky.Sticky_counter_f.Make (A)

  type 'a t = {
    value : 'a option A.t;  (* [None] once disposed *)
    strong : Counter.t;
    weak : Counter.t;  (* #weak refs + (1 if strong > 0) *)
  }

  let make v =
    { value = A.make (Some v); strong = Counter.create 1; weak = Counter.create 1 }

  (* ---- value cell ---- *)

  let read cb = A.get cb.value

  (** Atomically take the value for disposal; [None] means a second
      disposal raced us, which the caller must treat as a protocol
      violation. *)
  let take cb = A.exchange cb.value None

  let clear cb = A.set cb.value None

  (* ---- strong side ---- *)

  let expired cb = Counter.is_zero cb.strong

  (** Fig 9 upgrade: revive-free increment-if-not-zero on the strong
      count. The single primitive behind [Weak.lock],
      [Weak_snapshot.to_shared] and the out-of-guards fallback of
      [Awp.get_snapshot]. *)
  let try_upgrade cb = Counter.increment_if_not_zero cb.strong

  (** [true] iff this decrement brought the strong count to zero —
      exactly one caller per death gets the disposal duty. *)
  let strong_decrement cb = Counter.decrement cb.strong

  let strong_count cb = Counter.load cb.strong

  (* ---- weak side ---- *)

  let weak_increment_if_not_zero cb = Counter.increment_if_not_zero cb.weak

  (** [true] iff this decrement brought the weak count to zero — the
      winner frees the control block itself. *)
  let weak_decrement cb = Counter.decrement cb.weak

  let weak_count cb = Counter.load cb.weak
end
