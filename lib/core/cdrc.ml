(** Concurrent deferred reference counting over any manual SMR scheme —
    the paper's core contribution (§3.4, Fig 5) extended with weak
    pointers (§4, Figs 8–9).

    {!Make} converts a manual scheme [S] (EBR, IBR, Hyaline, HP, HE)
    into an automatic reference-counting library with the paper's six
    pointer types:

    - {e strong}: [shared] / [atomic shared (Asp)] / [snapshot]
    - {e weak}: [weak] / [atomic weak (Awp)] / [weak_snapshot]

    The conversion instantiates up to three acquire–retire instances of
    [S] — for deferred strong decrements, deferred weak decrements, and
    deferred disposals (Fig 8) — so that reads can protect a reference
    count (or a disposal) instead of incrementing it.

    OCaml-specific API shape (DESIGN.md S5/S6): pointers are linear
    values with explicit [drop] instead of destructors; atomic pointer
    CAS is logical (control-block identity + mark bit) implemented with
    a retry loop over a boxed slot; all racy accesses and snapshot
    lifetimes must happen inside a critical section ({!Make.critically}),
    exactly as §3.4 requires for region schemes. *)

module Make (S : Smr.Smr_intf.S) = struct
  module Smr_impl = S

  (* The control-block lifecycle core (counters + value cell) comes
     from the schedule-explorable functor, instantiated on the
     zero-cost passthrough shim; test/test_sched.ml drives the same
     functor over [Sched.Traced]. *)
  module Cell = Rc_cell.Make (Sched.Passthrough)
  module Ident = Smr.Ident

  let scheme_name = "RC" ^ S.name

  (* Registry mirrors of this runtime's counters. The padded per-rt
     [snap_fast]/[snap_slow] fields below stay authoritative for
     [snapshot_stats] (they are unconditional and per-instance); the
     registry copies are the globally-collected view the [stats] CLI
     reports, and like all telemetry they only move when enabled. *)
  let mprefix = "cdrc." ^ String.lowercase_ascii scheme_name ^ "."
  let snap_fast_c = Obs.Metrics.counter (mprefix ^ "snapshot.fast")
  let snap_slow_c = Obs.Metrics.counter (mprefix ^ "snapshot.slow")
  let dec_deferred_c = Obs.Metrics.counter (mprefix ^ "decrement.deferred")
  let weak_dec_deferred_c = Obs.Metrics.counter (mprefix ^ "weak_decrement.deferred")
  let dispose_deferred_c = Obs.Metrics.counter (mprefix ^ "dispose.deferred")

  exception Use_after_drop of string
  (** Raised when a dropped (or moved-from) pointer is used again —
      the analogue of C++ use-after-destructor UB, made loud. *)

  (* ------------------------------------------------------------------ *)
  (* Control blocks and the runtime *)

  type 'a control_block = {
    cell : 'a Cell.t; (* value (None once disposed) + strong/weak counters *)
    birth_strong : int;
    birth_weak : int;
    birth_dispose : int;
    block : Simheap.block;
    destroy : int -> 'a -> unit; (* user hook, pid of executing thread *)
  }

  type rt = {
    strong_ar : S.t;
    weak_ar : S.t;
    dispose_ar : S.t;
    support_weak : bool;
    heap : Simheap.t;
    pending : Smr.Deferred.t Queue.t array; (* per-pid, owner-thread only *)
    draining : bool array; (* per-pid reentrancy latch *)
    nthreads : int;
    (* instrumentation: snapshot fast (guard) vs slow (count increment)
       paths, per thread — the mechanism behind the paper's Fig 11. *)
    snap_fast : int Repro_util.Padded.t;
    snap_slow : int Repro_util.Padded.t;
    wd : Obs.Watchdog.t; (* reclamation-progress watchdog over strong_ar *)
  }

  type thr = { rt : rt; pid : int }

  let create ?(support_weak = true) ?epoch_freq ?cleanup_freq ?slots_per_thread ?heap
      ~max_threads () =
    let heap =
      match heap with Some h -> h | None -> Simheap.create ~name:("rc-" ^ S.name) ()
    in
    let mk () = S.create ?epoch_freq ?cleanup_freq ?slots_per_thread ~max_threads () in
    {
      strong_ar = mk ();
      weak_ar = mk ();
      dispose_ar = mk ();
      support_weak;
      heap;
      pending = Array.init max_threads (fun _ -> Queue.create ());
      draining = Array.make max_threads false;
      nthreads = max_threads;
      snap_fast = Repro_util.Padded.create max_threads 0;
      snap_slow = Repro_util.Padded.create max_threads 0;
      wd = Obs.Watchdog.create ~scheme:scheme_name ();
    }

  let thread rt pid =
    if pid < 0 || pid >= rt.nthreads then invalid_arg "Cdrc.thread: pid out of range";
    { rt; pid }

  let heap rt = rt.heap
  let max_threads rt = rt.nthreads

  (* ------------------------------------------------------------------ *)
  (* Pending-operation queue: deferred operations (and the cascades they
     trigger) are drained iteratively, never recursively — the paper's
     rule that eject must not be re-entered (§3.2). *)

  let enqueue rt ~pid (op : Smr.Deferred.t) = Queue.push op rt.pending.(pid)
  let enqueue_all rt ~pid ops = List.iter (enqueue rt ~pid) ops

  let drain rt ~pid =
    (* Cheap early exit: this runs after every drop/store/CAS, so the
       empty case must not allocate. *)
    if (not (Queue.is_empty rt.pending.(pid))) && not rt.draining.(pid) then begin
      rt.draining.(pid) <- true;
      let q = rt.pending.(pid) in
      Fun.protect
        ~finally:(fun () -> rt.draining.(pid) <- false)
        (fun () ->
          while not (Queue.is_empty q) do
            (Queue.pop q) pid
          done)
    end

  (* ------------------------------------------------------------------ *)
  (* Reference-count primitives (Fig 8) *)

  let expired cb = Cell.expired cb.cell

  let must_increment cb =
    if not (Cell.try_upgrade cb.cell) then
      failwith "Cdrc: invariant violated: increment of a dead strong count"

  let weak_increment cb =
    if not (Cell.weak_increment_if_not_zero cb.cell) then
      failwith "Cdrc: invariant violated: increment of a dead weak count"

  let free_cb rt cb =
    ignore rt;
    Cell.clear cb.cell;
    Simheap.free cb.block

  let rec decrement rt ~pid cb =
    if Cell.strong_decrement cb.cell then
      if rt.support_weak then delayed_dispose rt ~pid cb
      else
        (* Strong-only mode: no weak snapshot can observe the object, so
           dispose as soon as the count dies — via the queue, so that a
           destroy hook dropping a long chain cannot overflow the stack. *)
        enqueue rt ~pid (fun epid -> dispose rt ~pid:epid cb)

  and dispose rt ~pid cb =
    (match Cell.take cb.cell with
    | Some v -> cb.destroy pid v
    | None -> failwith "Cdrc: invariant violated: double dispose");
    weak_decrement rt ~pid cb

  and weak_decrement rt ~pid:_ cb = if Cell.weak_decrement cb.cell then free_cb rt cb

  and delayed_decrement rt ~pid cb =
    Obs.Metrics.incr dec_deferred_c ~pid;
    S.retire rt.strong_ar ~pid (Ident.of_val cb) ~birth:cb.birth_strong (fun epid ->
        decrement rt ~pid:epid cb);
    enqueue_all rt ~pid (S.eject rt.strong_ar ~pid)

  and delayed_weak_decrement rt ~pid cb =
    Obs.Metrics.incr weak_dec_deferred_c ~pid;
    S.retire rt.weak_ar ~pid (Ident.of_val cb) ~birth:cb.birth_weak (fun epid ->
        weak_decrement rt ~pid:epid cb);
    enqueue_all rt ~pid (S.eject rt.weak_ar ~pid)

  and delayed_dispose rt ~pid cb =
    Obs.Metrics.incr dispose_deferred_c ~pid;
    S.retire rt.dispose_ar ~pid (Ident.of_val cb) ~birth:cb.birth_dispose (fun epid ->
        dispose rt ~pid:epid cb);
    enqueue_all rt ~pid (S.eject rt.dispose_ar ~pid)

  (* ------------------------------------------------------------------ *)
  (* Slots: the value stored in atomic shared/weak pointer cells.
     Logical CAS compares control-block identity plus the mark bit;
     marks are first-class because the paper's benchmarks all need
     marked pointers (§5.1). *)

  (* Tags are 2-bit integers packed next to the pointer, exactly like
     the low pointer bits C++ implementations steal: bit 0 is the
     Harris "mark", bit 1 the Natarajan–Mittal "tag"/"flag" second bit.
     The untagged [Ptr] constructor keeps the hot path a one-field
     block. *)
  type 'a slot =
    | Null
    | Null_tagged of int (* tag in 1..3 *)
    | Ptr of 'a control_block
    | Tagged of 'a control_block * int (* tag in 1..3 *)

  type 'a ptr = 'a slot
  (** A non-owning view of a pointer value: what atomic cells hold and
      what CAS compares. Obtain views from owned pointers ([Shared.ptr],
      [Snapshot.ptr], …); a view is valid only while its backing owner
      is live. *)

  let slot_ident = function
    | Null | Null_tagged _ -> Ident.null
    | Ptr cb | Tagged (cb, _) -> Ident.of_val cb

  let slot_tag = function Null | Ptr _ -> 0 | Null_tagged g | Tagged (_, g) -> g

  let slot_eq a b =
    match (a, b) with
    | Null, Null -> true
    | Null_tagged g, Null_tagged h -> g = h
    | Ptr x, Ptr y -> x == y
    | Tagged (x, g), Tagged (y, h) -> x == y && g = h
    | _ -> false

  let cb_of = function Null | Null_tagged _ -> None | Ptr cb | Tagged (cb, _) -> Some cb

  module Ptr = struct
    type 'a t = 'a ptr

    let null : 'a t = Null
    let is_null = function Null | Null_tagged _ -> true | Ptr _ | Tagged _ -> false
    let tag = slot_tag
    let is_marked p = slot_tag p land 1 <> 0

    let with_tag (p : 'a t) g : 'a t =
      if g < 0 || g > 3 then invalid_arg "Ptr.with_tag: tag must be in 0..3";
      match (p, g) with
      | (Null | Null_tagged _), 0 -> Null
      | (Null | Null_tagged _), g -> Null_tagged g
      | (Ptr cb | Tagged (cb, _)), 0 -> Ptr cb
      | (Ptr cb | Tagged (cb, _)), g -> Tagged (cb, g)

    let with_mark (p : 'a t) m : 'a t =
      with_tag p (if m then slot_tag p lor 1 else slot_tag p land lnot 1)

    let equal = slot_eq

    let same_object a b =
      match (cb_of a, cb_of b) with
      | None, None -> true
      | Some x, Some y -> x == y
      | _ -> false

    (** Logical value read (unprotected!): only for diagnostics,
        quiescent inspection, and values the caller knows are pinned. *)
    let strong_count p = match cb_of p with None -> 0 | Some cb -> Cell.strong_count cb.cell
  end

  (* ------------------------------------------------------------------ *)
  (* The announce/confirm protocol against a slot-holding atomic cell *)

  let settle_guard ar ~pid g id =
    while not (S.confirm ar ~pid g id) do
      ()
    done

  (* When confirm is constantly true (EBR/Hyaline), the first load is
     already protected by the ambient critical section: single-load
     fast path, the reason region schemes are cheap (paper §2). *)
  let protect_load ar ~pid (loc : 'a slot Atomic.t) : 'a slot * S.guard =
    if S.confirm_is_trivial then (Atomic.get loc, S.acquire ar ~pid Ident.null)
    else begin
      let v0 = Atomic.get loc in
      let g = S.acquire ar ~pid (slot_ident v0) in
      let rec settle () =
        let v = Atomic.get loc in
        if S.confirm ar ~pid g (slot_ident v) then (v, g) else settle ()
      in
      settle ()
    end

  let try_protect_load ar ~pid (loc : 'a slot Atomic.t) : ('a slot * S.guard) option =
    if S.confirm_is_trivial then
      match S.try_acquire ar ~pid Ident.null with
      | Some g -> Some (Atomic.get loc, g)
      | None -> None
    else begin
      let v0 = Atomic.get loc in
      match S.try_acquire ar ~pid (slot_ident v0) with
      | None -> None
      | Some g ->
          let rec settle () =
            let v = Atomic.get loc in
            if S.confirm ar ~pid g (slot_ident v) then Some (v, g) else settle ()
          in
          settle ()
    end

  (* Logical CAS over a slot cell: succeed iff the current slot equals
     [expected] (cb identity + mark). Physical CAS failure against a
     logically-equal but re-boxed slot retries (DESIGN.md S5). *)
  let rec slot_cas (loc : 'a slot Atomic.t) expected desired =
    let cur = Atomic.get loc in
    if not (slot_eq cur expected) then false
    else if Atomic.compare_and_set loc cur desired then true
    else slot_cas loc expected desired

  (* ------------------------------------------------------------------ *)
  (* Critical sections (§3.4) *)

  let begin_critical_section (t : thr) =
    S.begin_critical_section t.rt.strong_ar ~pid:t.pid;
    if t.rt.support_weak then begin
      S.begin_critical_section t.rt.weak_ar ~pid:t.pid;
      S.begin_critical_section t.rt.dispose_ar ~pid:t.pid
    end

  let end_critical_section (t : thr) =
    S.end_critical_section t.rt.strong_ar ~pid:t.pid;
    if t.rt.support_weak then begin
      S.end_critical_section t.rt.weak_ar ~pid:t.pid;
      S.end_critical_section t.rt.dispose_ar ~pid:t.pid
    end

  let critically (t : thr) f =
    begin_critical_section t;
    Fun.protect ~finally:(fun () -> end_critical_section t) f

  (* ------------------------------------------------------------------ *)
  (* Owned pointer types *)

  type 'a shared = { mutable s_cb : 'a control_block option; mutable s_live : bool }

  type 'a snapshot = {
    n_cb : 'a control_block option;
    n_guard : S.guard option; (* Some = fast path; None = counted *)
    n_tag : int;
    mutable n_live : bool;
  }

  type 'a weak = { mutable w_cb : 'a control_block option; mutable w_live : bool }

  type 'a weak_snapshot = {
    ws_cb : 'a control_block option;
    ws_guard : S.guard option; (* Some = dispose guard; None = counted *)
    ws_tag : int;
    mutable ws_live : bool;
  }

  type 'a asp = { asp : 'a slot Atomic.t }
  type 'a awp = { awp : 'a slot Atomic.t }

  let check_owner live what = if not live then raise (Use_after_drop what)

  (* ------------------------------------------------------------------ *)

  module Shared = struct
    type 'a t = 'a shared

    let null () : 'a t = { s_cb = None; s_live = true }

    let make (t : thr) ?destroy v : 'a t =
      let rt = t.rt in
      let destroy =
        match destroy with
        | None -> fun _pid _v -> ()
        | Some d -> fun pid v -> d (thread rt pid) v
      in
      let cb =
        {
          cell = Cell.make v;
          birth_strong = S.alloc_hook rt.strong_ar ~pid:t.pid;
          birth_weak = (if rt.support_weak then S.alloc_hook rt.weak_ar ~pid:t.pid else 0);
          birth_dispose =
            (if rt.support_weak then S.alloc_hook rt.dispose_ar ~pid:t.pid else 0);
          block = Simheap.alloc rt.heap;
          destroy;
        }
      in
      { s_cb = Some cb; s_live = true }

    let is_null (p : 'a t) =
      check_owner p.s_live "shared";
      p.s_cb = None

    let get (p : 'a t) =
      check_owner p.s_live "shared";
      match p.s_cb with
      | None -> invalid_arg "Shared.get: null pointer"
      | Some cb -> (
          Simheap.check_live cb.block;
          match Cell.read cb.cell with
          | Some v -> v
          | None -> failwith "Cdrc: invariant violated: strong deref of disposed object")

    let ptr (p : 'a t) : 'a ptr =
      check_owner p.s_live "shared";
      match p.s_cb with None -> Null | Some cb -> Ptr cb

    let copy (t : thr) (p : 'a t) : 'a t =
      ignore t;
      check_owner p.s_live "shared";
      match p.s_cb with
      | None -> null ()
      | Some cb ->
          must_increment cb;
          { s_cb = Some cb; s_live = true }

    let drop (t : thr) (p : 'a t) =
      check_owner p.s_live "shared";
      p.s_live <- false;
      (match p.s_cb with
      | None -> ()
      | Some cb ->
          p.s_cb <- None;
          decrement t.rt ~pid:t.pid cb);
      drain t.rt ~pid:t.pid

    let use_count (p : 'a t) =
      check_owner p.s_live "shared";
      match p.s_cb with None -> 0 | Some cb -> Cell.strong_count cb.cell

    let weak_count (p : 'a t) =
      check_owner p.s_live "shared";
      match p.s_cb with None -> 0 | Some cb -> Cell.weak_count cb.cell

    let equal (a : 'a t) (b : 'a t) =
      check_owner a.s_live "shared";
      check_owner b.s_live "shared";
      match (a.s_cb, b.s_cb) with
      | None, None -> true
      | Some x, Some y -> x == y
      | _ -> false

    (** Scoped allocation: the pointer is dropped when [f] returns or
        raises (the OCaml stand-in for C++ scope-bound destruction,
        DESIGN.md S6). *)
    let scoped (t : thr) ?destroy v f =
      let p = make t ?destroy v in
      Fun.protect ~finally:(fun () -> drop t p) (fun () -> f p)
  end

  module Snapshot = struct
    type 'a t = 'a snapshot

    let null () : 'a t = { n_cb = None; n_guard = None; n_tag = 0; n_live = true }

    let is_null (p : 'a t) =
      check_owner p.n_live "snapshot";
      p.n_cb = None

    let is_marked (p : 'a t) =
      check_owner p.n_live "snapshot";
      p.n_tag land 1 <> 0

    let tag (p : 'a t) =
      check_owner p.n_live "snapshot";
      p.n_tag

    let get (p : 'a t) =
      check_owner p.n_live "snapshot";
      match p.n_cb with
      | None -> invalid_arg "Snapshot.get: null snapshot"
      | Some cb -> (
          Simheap.check_live cb.block;
          match Cell.read cb.cell with
          | Some v -> v
          | None -> failwith "Cdrc: invariant violated: snapshot deref of disposed object")

    let ptr ?tag (p : 'a t) : 'a ptr =
      check_owner p.n_live "snapshot";
      let g = match tag with Some g -> g | None -> p.n_tag in
      let base = match p.n_cb with None -> Null | Some cb -> Ptr cb in
      Ptr.with_tag base g

    (* Fig 5, snapshot_ptr::release *)
    let drop (t : thr) (p : 'a t) =
      check_owner p.n_live "snapshot";
      p.n_live <- false;
      (match (p.n_guard, p.n_cb) with
      | Some g, _ -> S.release t.rt.strong_ar ~pid:t.pid g
      | None, Some cb -> decrement t.rt ~pid:t.pid cb
      | None, None -> ());
      drain t.rt ~pid:t.pid

    (** Upgrade to an owning shared pointer (the snapshot stays live). *)
    let to_shared (t : thr) (p : 'a t) : 'a shared =
      ignore t;
      check_owner p.n_live "snapshot";
      match p.n_cb with
      | None -> Shared.null ()
      | Some cb ->
          must_increment cb;
          { s_cb = Some cb; s_live = true }

    let use_count (p : 'a t) =
      check_owner p.n_live "snapshot";
      match p.n_cb with None -> 0 | Some cb -> Cell.strong_count cb.cell

    let is_protected (p : 'a t) = p.n_guard <> None
  end

  module Asp = struct
    type 'a t = 'a asp

    let make_null () : 'a t = { asp = Atomic.make Null }

    (** Initialize a cell from an owned view, taking a count unit. *)
    let make (t : thr) (v : 'a ptr) : 'a t =
      ignore t;
      (match cb_of v with Some cb -> must_increment cb | None -> ());
      { asp = Atomic.make v }

    (** Unprotected read of the current logical value. Only safe for
        diagnostics or quiescent inspection. *)
    let unsafe_ptr (c : 'a t) : 'a ptr = Atomic.get c.asp

    (* Fig 8 load_and_increment *)
    let load (t : thr) (c : 'a t) : 'a shared =
      let v, g = protect_load t.rt.strong_ar ~pid:t.pid c.asp in
      let res =
        match cb_of v with
        | None -> Shared.null ()
        | Some cb ->
            must_increment cb;
            { s_cb = Some cb; s_live = true }
      in
      S.release t.rt.strong_ar ~pid:t.pid g;
      res

    let store (t : thr) (c : 'a t) (desired : 'a ptr) =
      (match cb_of desired with Some cb -> must_increment cb | None -> ());
      let old = Atomic.exchange c.asp desired in
      (match cb_of old with
      | Some cb -> delayed_decrement t.rt ~pid:t.pid cb
      | None -> ());
      drain t.rt ~pid:t.pid

    (** Logical CAS. [desired] must be backed by an owned reference the
        caller holds across the call (shared, snapshot, or the null
        view); on success the cell takes a new count unit on [desired]
        and releases (deferred) its unit on [expected]. *)
    let compare_and_swap (t : thr) (c : 'a t) ~(expected : 'a ptr) ~(desired : 'a ptr) =
      (match cb_of desired with Some cb -> must_increment cb | None -> ());
      if slot_cas c.asp expected desired then begin
        (match cb_of expected with
        | Some cb -> delayed_decrement t.rt ~pid:t.pid cb
        | None -> ());
        drain t.rt ~pid:t.pid;
        true
      end
      else begin
        (match cb_of desired with
        | Some cb -> decrement t.rt ~pid:t.pid cb
        | None -> ());
        drain t.rt ~pid:t.pid;
        false
      end

    (** Attempt to set the mark bit on the current value if it equals
        [expected] unmarked — the pointer-tagging idiom of Harris-style
        structures, provided natively so data structures need no extra
        count traffic. *)
    let try_mark (t : thr) (c : 'a t) ~(expected : 'a ptr) =
      ignore t;
      slot_cas c.asp (Ptr.with_mark expected false) (Ptr.with_mark expected true)

    let bump counter mirror (t : thr) =
      Repro_util.Padded.set counter t.pid (Repro_util.Padded.get counter t.pid + 1);
      Obs.Metrics.incr mirror ~pid:t.pid

    (* Fig 5 get_snapshot *)
    let get_snapshot (t : thr) (c : 'a t) : 'a snapshot =
      match try_protect_load t.rt.strong_ar ~pid:t.pid c.asp with
      | Some (v, g) -> (
          bump t.rt.snap_fast snap_fast_c t;
          match cb_of v with
          | None ->
              S.release t.rt.strong_ar ~pid:t.pid g;
              { n_cb = None; n_guard = None; n_tag = slot_tag v; n_live = true }
          | Some cb -> { n_cb = Some cb; n_guard = Some g; n_tag = slot_tag v; n_live = true })
      | None -> (
          (* Slow path: protect with the reserved slot, take a real
             count, release the slot (Fig 5 lines 8–11). *)
          bump t.rt.snap_slow snap_slow_c t;
          let v, g = protect_load t.rt.strong_ar ~pid:t.pid c.asp in
          match cb_of v with
          | None ->
              S.release t.rt.strong_ar ~pid:t.pid g;
              { n_cb = None; n_guard = None; n_tag = slot_tag v; n_live = true }
          | Some cb ->
              must_increment cb;
              S.release t.rt.strong_ar ~pid:t.pid g;
              { n_cb = Some cb; n_guard = None; n_tag = slot_tag v; n_live = true })

    (** Scoped snapshot: dropped when [f] returns or raises. *)
    let with_snapshot (t : thr) (c : 'a t) f =
      let s = get_snapshot t c in
      Fun.protect ~finally:(fun () -> Snapshot.drop t s) (fun () -> f s)

    (** Release the cell's count unit (node teardown in destroy hooks). *)
    let clear (t : thr) (c : 'a t) =
      let old = Atomic.exchange c.asp Null in
      (match cb_of old with
      | Some cb -> delayed_decrement t.rt ~pid:t.pid cb
      | None -> ());
      drain t.rt ~pid:t.pid
  end

  (* ------------------------------------------------------------------ *)
  (* Weak side (§4, Fig 9) *)

  let require_weak rt =
    if not rt.support_weak then
      invalid_arg "Cdrc: weak pointers need a runtime created with ~support_weak:true"

  module Weak = struct
    type 'a t = 'a weak

    let null () : 'a t = { w_cb = None; w_live = true }

    let of_shared (t : thr) (p : 'a shared) : 'a t =
      require_weak t.rt;
      check_owner p.s_live "shared";
      match p.s_cb with
      | None -> null ()
      | Some cb ->
          weak_increment cb;
          { w_cb = Some cb; w_live = true }

    let of_snapshot (t : thr) (p : 'a snapshot) : 'a t =
      require_weak t.rt;
      check_owner p.n_live "snapshot";
      match p.n_cb with
      | None -> null ()
      | Some cb ->
          weak_increment cb;
          { w_cb = Some cb; w_live = true }

    let is_null (p : 'a t) =
      check_owner p.w_live "weak";
      p.w_cb = None

    let expired (p : 'a t) =
      check_owner p.w_live "weak";
      match p.w_cb with None -> true | Some cb -> expired cb

    let ptr (p : 'a t) : 'a ptr =
      check_owner p.w_live "weak";
      match p.w_cb with None -> Null | Some cb -> Ptr cb

    (** Upgrade ("lock"): returns a null shared pointer if the object
        has expired. The sticky counter makes this a single
        increment-if-not-zero — no CAS loop (§4.3). *)
    let lock (t : thr) (p : 'a t) : 'a shared =
      ignore t;
      check_owner p.w_live "weak";
      match p.w_cb with
      | None -> Shared.null ()
      | Some cb ->
          if Cell.try_upgrade cb.cell then { s_cb = Some cb; s_live = true }
          else Shared.null ()

    let copy (t : thr) (p : 'a t) : 'a t =
      ignore t;
      check_owner p.w_live "weak";
      match p.w_cb with
      | None -> null ()
      | Some cb ->
          weak_increment cb;
          { w_cb = Some cb; w_live = true }

    let drop (t : thr) (p : 'a t) =
      check_owner p.w_live "weak";
      p.w_live <- false;
      (match p.w_cb with
      | None -> ()
      | Some cb ->
          p.w_cb <- None;
          weak_decrement t.rt ~pid:t.pid cb);
      drain t.rt ~pid:t.pid

    let weak_count (p : 'a t) =
      check_owner p.w_live "weak";
      match p.w_cb with None -> 0 | Some cb -> Cell.weak_count cb.cell
  end

  module Weak_snapshot = struct
    type 'a t = 'a weak_snapshot

    let null () : 'a t =
      { ws_cb = None; ws_guard = None; ws_tag = 0; ws_live = true }

    let is_null (p : 'a t) =
      check_owner p.ws_live "weak_snapshot";
      p.ws_cb = None

    let is_marked (p : 'a t) =
      check_owner p.ws_live "weak_snapshot";
      p.ws_tag land 1 <> 0

    let tag (p : 'a t) =
      check_owner p.ws_live "weak_snapshot";
      p.ws_tag

    let get (p : 'a t) =
      check_owner p.ws_live "weak_snapshot";
      match p.ws_cb with
      | None -> invalid_arg "Weak_snapshot.get: null snapshot"
      | Some cb -> (
          Simheap.check_live cb.block;
          match Cell.read cb.cell with
          | Some v -> v
          | None ->
              failwith "Cdrc: invariant violated: weak snapshot deref of disposed object")

    let ptr ?tag (p : 'a t) : 'a ptr =
      check_owner p.ws_live "weak_snapshot";
      let g = match tag with Some g -> g | None -> p.ws_tag in
      let base = match p.ws_cb with None -> Null | Some cb -> Ptr cb in
      Ptr.with_tag base g

    (** Upgrade to a shared pointer; null if the object expired. *)
    let to_shared (t : thr) (p : 'a t) : 'a shared =
      ignore t;
      check_owner p.ws_live "weak_snapshot";
      match p.ws_cb with
      | None -> Shared.null ()
      | Some cb ->
          if Cell.try_upgrade cb.cell then { s_cb = Some cb; s_live = true }
          else Shared.null ()

    (* Fig 9, weak_snapshot_ptr::release *)
    let drop (t : thr) (p : 'a t) =
      check_owner p.ws_live "weak_snapshot";
      p.ws_live <- false;
      (match (p.ws_guard, p.ws_cb) with
      | Some g, _ -> S.release t.rt.dispose_ar ~pid:t.pid g
      | None, Some cb -> decrement t.rt ~pid:t.pid cb
      | None, None -> ());
      drain t.rt ~pid:t.pid

    let is_protected (p : 'a t) = p.ws_guard <> None
  end

  module Awp = struct
    type 'a t = 'a awp

    let make_null () : 'a t =
      { awp = Atomic.make Null }

    let make (t : thr) (v : 'a ptr) : 'a t =
      require_weak t.rt;
      (match cb_of v with Some cb -> weak_increment cb | None -> ());
      { awp = Atomic.make v }

    let unsafe_ptr (c : 'a t) : 'a ptr = Atomic.get c.awp

    (* Fig 9 store: weak-increment desired, exchange, deferred
       weak-decrement of the old value. *)
    let store (t : thr) (c : 'a t) (desired : 'a ptr) =
      require_weak t.rt;
      (match cb_of desired with Some cb -> weak_increment cb | None -> ());
      let old = Atomic.exchange c.awp desired in
      (match cb_of old with
      | Some cb -> delayed_weak_decrement t.rt ~pid:t.pid cb
      | None -> ());
      drain t.rt ~pid:t.pid

    (* Fig 9 load *)
    let load (t : thr) (c : 'a t) : 'a weak =
      require_weak t.rt;
      let v, g = protect_load t.rt.weak_ar ~pid:t.pid c.awp in
      let res =
        match cb_of v with
        | None -> Weak.null ()
        | Some cb ->
            weak_increment cb;
            { w_cb = Some cb; w_live = true }
      in
      S.release t.rt.weak_ar ~pid:t.pid g;
      res

    (* Fig 9 compare_and_swap. [desired] must be backed by an owned
       weak-counted reference (weak, shared, or weak_snapshot) held by
       the caller across the call; OCaml's value semantics make the
       paper's clobbered-desired race inexpressible (DESIGN.md), so the
       guard on desired's location is unnecessary. *)
    let compare_and_swap (t : thr) (c : 'a t) ~(expected : 'a ptr) ~(desired : 'a ptr) =
      require_weak t.rt;
      (match cb_of desired with Some cb -> weak_increment cb | None -> ());
      if slot_cas c.awp expected desired then begin
        (match cb_of expected with
        | Some cb -> delayed_weak_decrement t.rt ~pid:t.pid cb
        | None -> ());
        drain t.rt ~pid:t.pid;
        true
      end
      else begin
        (match cb_of desired with
        | Some cb -> weak_decrement t.rt ~pid:t.pid cb
        | None -> ());
        drain t.rt ~pid:t.pid;
        false
      end

    (* Fig 9 get_snapshot *)
    let get_snapshot (t : thr) (c : 'a t) : 'a weak_snapshot =
      require_weak t.rt;
      let rt = t.rt in
      let pid = t.pid in
      let rec retry () =
        let v, wg = protect_load rt.weak_ar ~pid c.awp in
        match cb_of v with
        | None ->
            S.release rt.weak_ar ~pid wg;
            { ws_cb = None; ws_guard = None; ws_tag = slot_tag v; ws_live = true }
        | Some cb -> (
            let id = Ident.of_val cb in
            let dg = S.try_acquire rt.dispose_ar ~pid id in
            let alive =
              match dg with
              | Some g ->
                  (* For IBR/HE the dispose-side interval must be
                     re-stabilized before trusting the liveness read. *)
                  settle_guard rt.dispose_ar ~pid g id;
                  not (expired cb)
              | None ->
                  (* Fig 9 line 26: out of dispose guards — fall back to
                     a real strong increment if the object is alive. *)
                  Cell.try_upgrade cb.cell
            in
            if alive then begin
              S.release rt.weak_ar ~pid wg;
              {
                ws_cb = Some cb;
                ws_guard = dg;
                ws_tag = slot_tag v;
                ws_live = true;
              }
            end
            else begin
              (match dg with Some g -> S.release rt.dispose_ar ~pid g | None -> ());
              S.release rt.weak_ar ~pid wg;
              (* Fig 9 lines 34–35: only linearizable to return null if
                 the cell still holds the expired pointer. *)
              if slot_eq (Atomic.get c.awp) v then
                {
                  ws_cb = None;
                  ws_guard = None;
                  ws_tag = slot_tag v;
                  ws_live = true;
                }
              else retry ()
            end)
      in
      retry ()

    let clear (t : thr) (c : 'a t) =
      require_weak t.rt;
      let old = Atomic.exchange c.awp Null in
      (match cb_of old with
      | Some cb -> delayed_weak_decrement t.rt ~pid:t.pid cb
      | None -> ());
      drain t.rt ~pid:t.pid
  end

  (* ------------------------------------------------------------------ *)
  (* Maintenance *)

  (** Apply every deferred operation that is currently safe (plus the
      cascades it triggers). Benchmarks call this between phases. *)
  let flush (t : thr) =
    let rt = t.rt in
    let pid = t.pid in
    enqueue_all rt ~pid (S.eject ~force:true rt.strong_ar ~pid);
    if rt.support_weak then begin
      enqueue_all rt ~pid (S.eject ~force:true rt.weak_ar ~pid);
      enqueue_all rt ~pid (S.eject ~force:true rt.dispose_ar ~pid)
    end;
    drain rt ~pid

  (** Teardown at quiescence: repeatedly drain every acquire–retire
      instance and every pending queue until nothing remains. After
      [quiesce], every unreachable object has been reclaimed; with no
      strong cycles, [Simheap.live rt.heap] counts exactly the objects
      still owned by live pointers. *)
  let quiesce rt =
    let progress = ref true in
    while !progress do
      progress := false;
      let ops =
        S.drain_all rt.strong_ar @ S.drain_all rt.weak_ar @ S.drain_all rt.dispose_ar
      in
      if ops <> [] then progress := true;
      List.iter (fun op -> op 0) ops;
      Array.iteri
        (fun pid q ->
          while not (Queue.is_empty q) do
            progress := true;
            (Queue.pop q) pid
          done)
        rt.pending
    done

  let live_objects rt = Simheap.live rt.heap
  let peak_objects rt = Simheap.peak rt.heap

  (** Snapshot path statistics: (fast guard-protected, slow
      count-incrementing) totals since creation. The slow share is the
      Fig 11 mechanism: protected-pointer schemes fall back to real
      increments when announcement slots run out. *)
  let snapshot_stats rt =
    ( Repro_util.Padded.fold ( + ) 0 rt.snap_fast,
      Repro_util.Padded.fold ( + ) 0 rt.snap_slow )

  (** Deferred decrements/disposals currently parked across the three
      acquire–retire instances. For Hyaline the per-pid count is
      already global, so this overcounts by the thread count there —
      fine for the backlog gauge it feeds, which tracks trend, not an
      exact census. *)
  let retired_backlog rt =
    let sum ar =
      let acc = ref 0 in
      for pid = 0 to rt.nthreads - 1 do
        acc := !acc + S.retired_count ar ~pid
      done;
      !acc
    in
    sum rt.strong_ar + sum rt.weak_ar + sum rt.dispose_ar

  (** CONTROLLABLE surface: one knob handle per underlying scheme
      instance (strong / weak / dispose — the latter two exist even
      under [~support_weak:false] but then never accumulate). The
      adaptive controller tunes all of them in lockstep. *)
  let control rt =
    let h role ar =
      {
        Smr.Knobs.h_scheme = scheme_name ^ "." ^ role;
        h_knobs = S.knobs ar;
        h_force_advance = (fun () -> S.force_advance ar);
      }
    in
    [ h "strong" rt.strong_ar; h "weak" rt.weak_ar; h "dispose" rt.dispose_ar ]

  (** Crash/stall recovery across all three acquire–retire instances:
      the abandoned pid's critical sections close, its announcement
      slots clear, and its parked deferred operations land in the
      shared orphan pools for survivor adoption — so one stalled
      thread cannot pin the whole runtime's backlog. *)
  let abandon rt ~pid =
    S.abandon rt.strong_ar ~pid;
    S.abandon rt.weak_ar ~pid;
    S.abandon rt.dispose_ar ~pid

  let watchdog_check rt =
    match S.reclamation_frontier rt.strong_ar with
    | None -> None
    | Some frontier -> (
        let pending = retired_backlog rt in
        match Obs.Watchdog.check rt.wd ~pid:0 ~frontier ~pending with
        | Obs.Watchdog.Progressing -> None
        | Obs.Watchdog.Stuck { frontier; pending } ->
            Some
              (Printf.sprintf "%s: stuck (frontier=%d pending=%d)" scheme_name frontier
                 pending))
end

(** Re-export of the scheme-agnostic public signature (the [cdrc]
    library's entry module hides sibling modules, so expose it here). *)
module Intf = Cdrc_intf

(** Re-export of the control-block lifecycle functor so the schedule
    explorer (and its CLI) can instantiate it over [Sched.Traced]. *)
module Rc_cell = Rc_cell

(* Compile-time check that Make's output satisfies the scheme-agnostic
   public signature consumed by data structures and benchmarks. *)
module Check (S : Smr.Smr_intf.S) : Cdrc_intf.S = Make (S)
