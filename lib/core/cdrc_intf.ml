(** Public signature of an instantiated reference-counting library
    ({!Cdrc.Make}), independent of the underlying SMR scheme.

    Data structures, benchmarks, and examples are functors over this
    signature, so the same Harris–Michael list or Natarajan–Mittal tree
    runs on RCEBR, RCIBR, RCHyaline, RCHP, and RCHE unchanged — the
    paper's claim that the conversion is scheme-agnostic, enforced by
    the type checker. *)

module type S = sig
  val scheme_name : string

  exception Use_after_drop of string

  (** {1 Runtime and threads} *)

  type rt
  type thr

  val create :
    ?support_weak:bool ->
    ?epoch_freq:int ->
    ?cleanup_freq:int ->
    ?slots_per_thread:int ->
    ?heap:Simheap.t ->
    max_threads:int ->
    unit ->
    rt

  val thread : rt -> int -> thr
  val heap : rt -> Simheap.t
  val max_threads : rt -> int
  val begin_critical_section : thr -> unit
  val end_critical_section : thr -> unit
  val critically : thr -> (unit -> 'r) -> 'r
  val flush : thr -> unit
  val quiesce : rt -> unit
  val live_objects : rt -> int
  val peak_objects : rt -> int

  val snapshot_stats : rt -> int * int
  (** (fast guard-protected snapshots, slow count-incrementing
      snapshots) since creation — the Fig 11 fallback mechanism. *)

  val retired_backlog : rt -> int
  (** Deferred decrements/disposals currently parked in the runtime's
      acquire–retire instances, summed over all threads. *)

  val watchdog_check : rt -> string option
  (** Sample the runtime's reclamation-progress watchdog: [Some verdict]
      when the underlying scheme's frontier has been stuck while the
      deferred-operation backlog grew (see [Obs.Watchdog]); [None]
      otherwise. *)

  val control : rt -> Smr.Knobs.handle list
  (** CONTROLLABLE surface: one knob handle per underlying scheme
      instance (strong / weak / dispose), for the adaptive
      controller. *)

  val abandon : rt -> pid:int -> unit
  (** Crash/stall recovery: release every resource [pid] holds in all
      three underlying scheme instances — close its critical sections,
      clear its announcement slots, and hand its retired-but-not-ejected
      entries to the survivors for adoption. Call it exactly once per
      dead thread, and only after that thread has truly stopped calling
      into the runtime (it mutates owner-only state). *)

  (** {1 Pointer values} *)

  type 'a ptr
  (** Non-owning view: control block identity + mark bit. *)

  type 'a shared
  type 'a snapshot
  type 'a weak
  type 'a weak_snapshot
  type 'a asp
  type 'a awp

  module Ptr : sig
    type 'a t = 'a ptr

    val null : 'a t
    val is_null : 'a t -> bool

    val tag : 'a t -> int
    (** The 2-bit tag packed beside the pointer (bit 0 = Harris mark,
        bit 1 = a second structure-specific bit, e.g. the NM tree's). *)

    val with_tag : 'a t -> int -> 'a t
    val is_marked : 'a t -> bool
    val with_mark : 'a t -> bool -> 'a t
    val equal : 'a t -> 'a t -> bool
    val same_object : 'a t -> 'a t -> bool
    val strong_count : 'a t -> int
  end

  module Shared : sig
    type 'a t = 'a shared

    val null : unit -> 'a t
    val make : thr -> ?destroy:(thr -> 'a -> unit) -> 'a -> 'a t
    val is_null : 'a t -> bool
    val get : 'a t -> 'a
    val ptr : 'a t -> 'a ptr
    val copy : thr -> 'a t -> 'a t
    val drop : thr -> 'a t -> unit
    val use_count : 'a t -> int
    val weak_count : 'a t -> int
    val equal : 'a t -> 'a t -> bool

    val scoped : thr -> ?destroy:(thr -> 'a -> unit) -> 'a -> ('a t -> 'r) -> 'r
    (** Allocate, run, and drop on exit (exception-safe). *)
  end

  module Snapshot : sig
    type 'a t = 'a snapshot

    val null : unit -> 'a t
    val is_null : 'a t -> bool
    val is_marked : 'a t -> bool
    val tag : 'a t -> int
    val get : 'a t -> 'a
    val ptr : ?tag:int -> 'a t -> 'a ptr
    val drop : thr -> 'a t -> unit
    val to_shared : thr -> 'a t -> 'a shared
    val use_count : 'a t -> int
    val is_protected : 'a t -> bool
  end

  module Asp : sig
    type 'a t = 'a asp

    val make_null : unit -> 'a t
    val make : thr -> 'a ptr -> 'a t
    val unsafe_ptr : 'a t -> 'a ptr
    val load : thr -> 'a t -> 'a shared
    val store : thr -> 'a t -> 'a ptr -> unit
    val compare_and_swap : thr -> 'a t -> expected:'a ptr -> desired:'a ptr -> bool
    val try_mark : thr -> 'a t -> expected:'a ptr -> bool
    val get_snapshot : thr -> 'a t -> 'a snapshot

    val with_snapshot : thr -> 'a t -> ('a snapshot -> 'r) -> 'r
    (** Take a snapshot, run, and drop on exit (exception-safe). *)

    val clear : thr -> 'a t -> unit
  end

  module Weak : sig
    type 'a t = 'a weak

    val null : unit -> 'a t
    val of_shared : thr -> 'a shared -> 'a t
    val of_snapshot : thr -> 'a snapshot -> 'a t
    val is_null : 'a t -> bool
    val expired : 'a t -> bool
    val ptr : 'a t -> 'a ptr
    val lock : thr -> 'a t -> 'a shared
    val copy : thr -> 'a t -> 'a t
    val drop : thr -> 'a t -> unit
    val weak_count : 'a t -> int
  end

  module Weak_snapshot : sig
    type 'a t = 'a weak_snapshot

    val null : unit -> 'a t
    val is_null : 'a t -> bool
    val is_marked : 'a t -> bool
    val tag : 'a t -> int
    val get : 'a t -> 'a
    val ptr : ?tag:int -> 'a t -> 'a ptr
    val to_shared : thr -> 'a t -> 'a shared
    val drop : thr -> 'a t -> unit
    val is_protected : 'a t -> bool
  end

  module Awp : sig
    type 'a t = 'a awp

    val make_null : unit -> 'a t
    val make : thr -> 'a ptr -> 'a t
    val unsafe_ptr : 'a t -> 'a ptr
    val store : thr -> 'a t -> 'a ptr -> unit
    val load : thr -> 'a t -> 'a weak
    val compare_and_swap : thr -> 'a t -> expected:'a ptr -> desired:'a ptr -> bool
    val get_snapshot : thr -> 'a t -> 'a weak_snapshot
    val clear : thr -> 'a t -> unit
  end
end
