(* Deterministic chaos campaigns: seeded composition of Fault_plan
   rules across the shards of the KV service.

   This module is pure schedule synthesis — it lives in lib/fault so it
   can only talk Fault_plan vocabulary and stays independent of the
   serving layer; the driver that executes a campaign against a live
   service is Workload.Chaos_runner. The two share a pid-layout
   contract: shard [s] is served by the pid pool
   [pid_of ~shard:s ~member:m] for [m < members], with [member 0] the
   designated fault victim and pid 0 reserved for the unfaulted
   client/sampler. Restart generations allocated by the driver live
   above [first_spare_pid].

   Same seed, same campaign: victim selection, fire points, stall
   durations and slow factors are all drawn from one [Repro_util.Rng]
   stream, so a failed campaign replays bit-identically from the
   (seed, kind, shards, victims) tuple its driver prints. *)

type kind =
  | Stall_storm  (** one member per victim shard stalls forever mid-operation *)
  | Rolling_crash  (** victims crash on retire, staggered across shards *)
  | Crash_during_eject  (** victims crash inside the reclamation path itself *)
  | Gray_slow  (** victims degrade (persistent Slow) but keep serving *)
  | Mixed  (** stall + rolling crash + gray + eject-crash, round-robin *)

let kind_name = function
  | Stall_storm -> "stall-storm"
  | Rolling_crash -> "rolling-crash"
  | Crash_during_eject -> "crash-eject"
  | Gray_slow -> "gray-slow"
  | Mixed -> "mixed"

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "stall-storm" | "stall" -> Ok Stall_storm
  | "rolling-crash" | "crash" -> Ok Rolling_crash
  | "crash-eject" | "crash-during-eject" -> Ok Crash_during_eject
  | "gray-slow" | "gray" | "slow" -> Ok Gray_slow
  | "mixed" -> Ok Mixed
  | s ->
      Error
        (Printf.sprintf
           "unknown campaign %S (stall-storm | rolling-crash | crash-eject | gray-slow \
            | mixed)"
           s)

let all_kinds = [ Stall_storm; Rolling_crash; Crash_during_eject; Gray_slow; Mixed ]

(* ----------------------------- pid layout ------------------------- *)

let members = 2
let pid_of ~shard ~member = 1 + (shard * members) + member
let shard_of_pid pid = (pid - 1) / members
let first_spare_pid ~shards = 1 + (shards * members)

(* ------------------------------ campaigns ------------------------- *)

type spec = { seed : int; kind : kind; shards : int; victims : int }

let default_spec = { seed = 42; kind = Mixed; shards = 4; victims = 4 }

let validate_spec s =
  if s.shards < 1 then invalid_arg "Chaos: shards must be >= 1";
  if s.victims < 1 || s.victims > s.shards then
    invalid_arg "Chaos: victims must be in [1, shards]";
  if first_spare_pid ~shards:s.shards >= Fault_plan.max_pids then
    invalid_arg "Chaos: shard pool exceeds Fault_plan.max_pids"

(* Seeded choice of [victims] distinct shards: Fisher–Yates over the
   shard ids, take the prefix. *)
let pick_victims rng ~shards ~victims =
  let a = Array.init shards Fun.id in
  for i = shards - 1 downto 1 do
    let j = Repro_util.Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list (Array.sub a 0 victims)

(* One rule against the victim member of [shard]. [i] is the victim's
   index in the campaign — rolling kinds stagger their fire points with
   it so faults land as a wave, not a single blast. *)
let rule_for rng kind ~i ~shard =
  let pid = Some (pid_of ~shard ~member:0) in
  let open Fault_plan in
  match kind with
  | Stall_storm ->
      { site = On_begin_cs; pid; at = 2 + Repro_util.Rng.int rng 6; action = Stall 0 }
  | Rolling_crash ->
      { site = On_retire; pid; at = 2 + (3 * i) + Repro_util.Rng.int rng 3; action = Crash }
  | Crash_during_eject ->
      { site = On_eject; pid; at = 1 + Repro_util.Rng.int rng 2; action = Crash }
  | Gray_slow ->
      {
        site = On_begin_cs;
        pid;
        at = 1 + Repro_util.Rng.int rng 4;
        action = Slow { factor = 2 + Repro_util.Rng.int rng 6 };
      }
  | Mixed -> assert false

let rules spec =
  validate_spec spec;
  let rng = Repro_util.Rng.create ~seed:spec.seed in
  let victims = pick_victims rng ~shards:spec.shards ~victims:spec.victims in
  List.mapi
    (fun i shard ->
      let kind =
        match spec.kind with
        | Mixed -> List.nth [ Stall_storm; Rolling_crash; Gray_slow; Crash_during_eject ] (i mod 4)
        | k -> k
      in
      rule_for rng kind ~i ~shard)
    victims

(* --------------------------- replay printing ---------------------- *)

let describe spec =
  let header =
    Printf.sprintf "campaign %s seed=%d shards=%d victims=%d" (kind_name spec.kind)
      spec.seed spec.shards spec.victims
  in
  let line (r : Fault_plan.rule) =
    let pid = match r.pid with Some p -> p | None -> -1 in
    Printf.sprintf "  shard %d pid %d: %s#%d -> %s" (shard_of_pid pid) pid
      (Format.asprintf "%a" Fault_plan.pp_site r.site)
      r.at
      (Format.asprintf "%a" Fault_plan.pp_action r.action)
  in
  header :: List.map line (rules spec)

(* ------------------------------- oracles -------------------------- *)

(** One invariant verdict from a campaign run: safety (UAF/double-free
    /leak freedom, accounting identities) or SLO (bounded garbage,
    recovery latency). The driver fills these in; a campaign passes iff
    every oracle holds. *)
type oracle = { o_name : string; o_ok : bool; o_detail : string }

let oracle ~name ~ok detail = { o_name = name; o_ok = ok; o_detail = detail }

let pp_oracle ppf o =
  Format.fprintf ppf "[%s] %-16s %s"
    (if o.o_ok then "ok" else "FAIL")
    o.o_name o.o_detail
