(** Fault-injecting wrapper over any SMR scheme.

    [Make (S) (P)] is again an [Smr.Smr_intf.S], so every functor-built
    data structure and the whole acquire–retire / CDRC stack runs under
    fault injection without touching scheme internals — instantiate the
    structure over the wrapped module and drive it normally.

    Behaviour around the plan's actions:

    - [Delay]: spins before the underlying call.
    - [Crash]: raises {!Fault_plan.Crashed} {e before} the underlying
      call at every site except [On_retire], where it raises {e after}
      the entry is recorded. This choice makes crashes resource-exact:
      a crash can strand protection (slots, open critical sections) for
      [abandon] to reap, but can never lose a retired entry (it is
      queued) nor an ejected one (the eject never happened).
    - [Stall]: the firing call completes, then the thread's protection
      freezes: while stalled, [end_critical_section] and [release] are
      suppressed (recorded, not executed) — the thread keeps pinning
      whatever it pinned, exactly like a preempted thread holding
      announcements — and [eject] returns [[]]. When the stall expires,
      the first subsequent call replays the suppressed exits.
    - [Drop_eject]: the next n entries the underlying [eject] returns
      are re-retired instead (a lost scan: reclamation is delayed, not
      leaked). *)

module Make (S : Smr.Smr_intf.S) (_ : sig
  val plan : Fault_plan.t
end) : sig
  include Smr.Smr_intf.S

  val plan : Fault_plan.t
  (** The plan this instance injects from. *)

  val inner : t -> S.t
  (** The wrapped scheme instance (for tests that assert on the
      underlying state). *)
end
