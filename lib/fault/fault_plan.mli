(** Deterministic fault schedules for SMR robustness testing.

    A plan is a seeded, reproducible schedule of faults keyed on
    {e injection sites} — the scheme API calls a {!Faulty_smr} wrapper
    intercepts — and fired by per-(site, pid) hit counts, so the same
    plan driven by the same workload injects the same faults at the
    same points, regardless of wall-clock timing. Every fired fault is
    recorded in a trace buffer; a failing run replays exactly from its
    plan (and the trace says what fired when).

    Stall semantics are cooperative: firing [Stall] marks the pid
    stalled (until the global fault clock — which ticks on every site
    hit by any thread — passes the deadline, or {!resume}). The call it
    fired on still completes; the {!Faulty_smr} wrapper then freezes
    the thread's protection (suppressing its critical-section exit and
    guard releases), and the workload driver is expected to park the
    thread while {!stalled} holds. This models "thread stalls inside
    its operation, still holding announcements" — the paper's §2
    robustness scenario — without real blocking, so single-threaded
    tests stay deterministic and deadlock-free.

    [Crash] permanently kills the pid: the wrapper raises {!Crashed}
    out of the victim's call (after a [retire] records its entry,
    before any other site takes effect), and every later scheme call by
    that pid raises again. Recovery is the survivors' job via
    [abandon]. [Delay] spins to widen race windows; [Drop_eject n]
    makes the victim's ejector "lose" its next [n] reclaimable entries
    (the wrapper re-retires them, modelling a lost scan — delayed, not
    leaked).

    [Slow] is the gray-failure action: the pid stays alive and makes
    progress, but every subsequent scheme call pays a spin proportional
    to the factor — a degraded-but-responsive shard, not a stalled one.
    Unlike [Stall] it never freezes protection and never parks the
    thread; unlike [Delay] it persists until {!heal}. Drivers read
    {!slow_factor} to scale logical request latency in deterministic
    campaigns. *)

type site = On_begin_cs | On_confirm | On_retire | On_eject | On_alloc

type action =
  | Stall of int  (** stall for n fault-clock steps; [n <= 0] = until {!resume} *)
  | Delay of int  (** spin for n [cpu_relax] iterations, then proceed *)
  | Crash  (** kill the pid: raise {!Crashed}, permanently *)
  | Drop_eject of int  (** withhold the next n ejected entries (re-retired) *)
  | Slow of { factor : int }
      (** gray failure: slow every later call by [factor] until {!heal} *)

type rule = { site : site; pid : int option; at : int; action : action }
(** Fire [action] on the [at]-th hit of [site] by [pid] ([None] = the
    [at]-th hit by each pid separately; counts start at 1). *)

exception Crashed of int
(** Raised out of a faulted call, carrying the dead pid. *)

type event = {
  ev_step : int;  (** global fault-clock step at which the rule fired *)
  ev_site : site;
  ev_pid : int;
  ev_hit : int;
  ev_action : action;
}

type t

val max_pids : int
(** Capacity limit on pids a plan can track (128). *)

val create : rule list -> t
(** A plan from explicit rules. Raises [Invalid_argument] on hit
    counts < 1 or out-of-range pids. *)

val none : unit -> t
(** A fresh no-fault plan (wrappers become transparent). *)

val random : seed:int -> ?rules:int -> max_threads:int -> unit -> t
(** A seeded random plan of [rules] (default 3) rules targeting pids
    below [max_threads]. Same seed, same plan. *)

(** {2 Queries for workload drivers} *)

val stalled : t -> pid:int -> bool
(** Is the pid currently stalled? Drivers should park a stalled thread
    and poll; the stall may expire on its own as the fault clock
    advances. *)

val crashed : t -> pid:int -> bool

val resume : t -> pid:int -> unit
(** Lift a stall early (recovery experiments). *)

val slow_factor : t -> pid:int -> int
(** Current gray-failure factor for the pid; [0] = healthy. Set by a
    fired [Slow] rule, cleared by {!heal}. *)

val heal : t -> pid:int -> unit
(** Clear the pid's gray-failure slowdown (recovery experiments). *)

val now : t -> int
(** Current fault-clock step. *)

val trace : t -> event list
(** Every fault fired so far, in firing order. *)

val pp_site : Format.formatter -> site -> unit
val pp_action : Format.formatter -> action -> unit
val pp_event : Format.formatter -> event -> unit

(** {2 Wrapper-side interface (used by {!Faulty_smr})} *)

val hit : t -> site -> pid:int -> action option
(** Count a site hit and fire the first matching rule, if any. Raises
    {!Crashed} if the pid has already crashed. *)

val take_drops : t -> pid:int -> avail:int -> int
(** Consume up to [avail] of the pid's pending eject-drop budget. *)
