(** Deterministic chaos campaigns (DESIGN.md §13): seeded composition
    of {!Fault_plan} rules across the shards of the KV service.

    Pure schedule synthesis — the executing driver is
    [Workload.Chaos_runner]. A campaign is fully determined by its
    {!spec}: the same (seed, kind, shards, victims) tuple always
    compiles to the same rules, so any failing run replays
    bit-identically from the schedule its driver prints
    (see {!describe}). *)

type kind =
  | Stall_storm  (** one member per victim shard stalls forever mid-operation *)
  | Rolling_crash  (** victims crash on retire, staggered across shards *)
  | Crash_during_eject  (** victims crash inside the reclamation path itself *)
  | Gray_slow  (** victims degrade (persistent [Slow]) but keep serving *)
  | Mixed  (** stall + rolling crash + gray + eject-crash, round-robin *)

val kind_name : kind -> string
val kind_of_string : string -> (kind, string) result
val all_kinds : kind list

(** {2 Pid layout (contract with the driver)} *)

val members : int
(** Serving pids per shard; member 0 is the designated fault victim. *)

val pid_of : shard:int -> member:int -> int
(** Pid 0 is reserved for the unfaulted client/sampler. *)

val shard_of_pid : int -> int

val first_spare_pid : shards:int -> int
(** Restart generations allocated by the driver start here. *)

(** {2 Campaigns} *)

type spec = { seed : int; kind : kind; shards : int; victims : int }

val default_spec : spec

val validate_spec : spec -> unit
(** Raises [Invalid_argument] on victims outside [1, shards] or a pid
    pool past {!Fault_plan.max_pids}. *)

val rules : spec -> Fault_plan.rule list
(** Compile the campaign schedule. Deterministic in [spec]. *)

val describe : spec -> string list
(** Human-readable schedule (header + one line per rule) — what a
    driver prints so a failed campaign can be replayed. *)

(** {2 Oracles} *)

type oracle = { o_name : string; o_ok : bool; o_detail : string }

val oracle : name:string -> ok:bool -> string -> oracle
val pp_oracle : Format.formatter -> oracle -> unit
