type site = On_begin_cs | On_confirm | On_retire | On_eject | On_alloc
type action =
  | Stall of int
  | Delay of int
  | Crash
  | Drop_eject of int
  | Slow of { factor : int }
type rule = { site : site; pid : int option; at : int; action : action }

exception Crashed of int

type event = {
  ev_step : int;
  ev_site : site;
  ev_pid : int;
  ev_hit : int;
  ev_action : action;
}

(* Per-site, per-pid state is owner-thread only (each pid bumps its own
   counters); the step clock, stall deadlines and the trace are shared
   and atomic. A fixed pid capacity keeps everything allocation-free on
   the injection path. *)
let max_pids = 128
let n_sites = 5

let site_index = function
  | On_begin_cs -> 0
  | On_confirm -> 1
  | On_retire -> 2
  | On_eject -> 3
  | On_alloc -> 4

let site_name = function
  | On_begin_cs -> "begin_cs"
  | On_confirm -> "confirm"
  | On_retire -> "retire"
  | On_eject -> "eject"
  | On_alloc -> "alloc"

let action_name = function
  | Stall 0 -> "stall(forever)"
  | Stall n -> Printf.sprintf "stall(%d)" n
  | Delay n -> Printf.sprintf "delay(%d)" n
  | Crash -> "crash"
  | Drop_eject n -> Printf.sprintf "drop_eject(%d)" n
  | Slow { factor } -> Printf.sprintf "slow(%d)" factor

let fired_c = Obs.Metrics.counter "fault.fired"

type t = {
  rules : rule list;
  hits : int array array; (* site x pid, owner-pid only *)
  step : int Atomic.t; (* global fault clock: ticks on every hit *)
  stalled_until : int Atomic.t array; (* step deadline; 0 = running, max_int = until resumed *)
  crashed : bool array;
  drop_budget : int array; (* owner-pid only *)
  slow : int array; (* gray-failure factor; 0 = healthy, persists until heal *)
  trace : event list Atomic.t;
}

let create rules =
  List.iter
    (fun r ->
      if r.at < 1 then invalid_arg "Fault_plan.create: rule hit counts start at 1";
      (match r.action with
      | Slow { factor } when factor < 1 ->
          invalid_arg "Fault_plan.create: slow factors start at 1"
      | _ -> ());
      match r.pid with
      | Some p when p < 0 || p >= max_pids -> invalid_arg "Fault_plan.create: pid out of range"
      | _ -> ())
    rules;
  {
    rules;
    hits = Array.init n_sites (fun _ -> Array.make max_pids 0);
    step = Atomic.make 0;
    stalled_until = Array.init max_pids (fun _ -> Atomic.make 0);
    crashed = Array.make max_pids false;
    drop_budget = Array.make max_pids 0;
    slow = Array.make max_pids 0;
    trace = Atomic.make [];
  }

let none () = create []

let now t = Atomic.get t.step
let stalled t ~pid = Atomic.get t.stalled_until.(pid) > Atomic.get t.step
let crashed t ~pid = t.crashed.(pid)
let resume t ~pid = Atomic.set t.stalled_until.(pid) 0
let slow_factor t ~pid = t.slow.(pid)
let heal t ~pid = t.slow.(pid) <- 0

let rec record t ev =
  let cur = Atomic.get t.trace in
  if not (Atomic.compare_and_set t.trace cur (ev :: cur)) then record t ev

let trace t =
  List.sort (fun a b -> compare a.ev_step b.ev_step) (Atomic.get t.trace)

(** Called by the wrapper on every injection site. Ticks the clock,
    counts the (site, pid) hit, and fires the first matching rule —
    recording it in the trace and updating stall/crash/drop
    bookkeeping. Raises {!Crashed} if the pid already crashed: a dead
    thread must not reach the scheme again. *)
let hit t site ~pid =
  if t.crashed.(pid) then raise (Crashed pid);
  let step = 1 + Atomic.fetch_and_add t.step 1 in
  let si = site_index site in
  let h = t.hits.(si).(pid) + 1 in
  t.hits.(si).(pid) <- h;
  let matches r =
    r.site = site && r.at = h
    && match r.pid with None -> true | Some p -> p = pid
  in
  match List.find_opt matches t.rules with
  | None -> None
  | Some r ->
      record t { ev_step = step; ev_site = site; ev_pid = pid; ev_hit = h; ev_action = r.action };
      Obs.Metrics.incr fired_c ~pid;
      Obs.Trace.emit ~pid
        (Obs.Trace.Fault { site = site_name site; action = action_name r.action });
      (match r.action with
      | Stall n -> Atomic.set t.stalled_until.(pid) (if n <= 0 then max_int else step + n)
      | Crash -> t.crashed.(pid) <- true
      | Drop_eject n -> t.drop_budget.(pid) <- t.drop_budget.(pid) + n
      | Slow { factor } -> t.slow.(pid) <- factor
      | Delay _ -> ());
      Some r.action

(** Consume up to [avail] units of the pid's pending eject-drop budget;
    returns how many ejected entries the wrapper should withhold. *)
let take_drops t ~pid ~avail =
  let m = min t.drop_budget.(pid) avail in
  t.drop_budget.(pid) <- t.drop_budget.(pid) - m;
  m

(** Seeded random plan over [rules] injection points — same seed, same
    plan, so any failure it provokes replays exactly. *)
let random ~seed ?(rules = 3) ~max_threads () =
  let rng = Repro_util.Rng.create ~seed in
  let site () =
    match Repro_util.Rng.int rng n_sites with
    | 0 -> On_begin_cs
    | 1 -> On_confirm
    | 2 -> On_retire
    | 3 -> On_eject
    | _ -> On_alloc
  in
  let action () =
    match Repro_util.Rng.int rng 10 with
    | 0 | 1 | 2 -> Delay (1 + Repro_util.Rng.int rng 64)
    | 3 | 4 ->
        Stall (if Repro_util.Rng.int rng 3 = 0 then 0 else 5 + Repro_util.Rng.int rng 60)
    | 5 | 6 -> Crash
    | 7 -> Drop_eject (1 + Repro_util.Rng.int rng 4)
    | _ -> Slow { factor = 1 + Repro_util.Rng.int rng 7 }
  in
  let rule () =
    {
      site = site ();
      pid = Some (Repro_util.Rng.int rng max_threads);
      at = 1 + Repro_util.Rng.int rng 25;
      action = action ();
    }
  in
  create (List.init rules (fun _ -> rule ()))

let pp_site ppf s = Format.pp_print_string ppf (site_name s)
let pp_action ppf a = Format.pp_print_string ppf (action_name a)

let pp_event ppf e =
  Format.fprintf ppf "step=%d pid=%d %a#%d -> %a" e.ev_step e.ev_pid pp_site e.ev_site
    e.ev_hit pp_action e.ev_action
