(** Fault-injecting wrapper over any SMR scheme.

    [Make (S) (P)] is again an [Smr.Smr_intf.S], so every functor-built
    data structure and the whole acquire–retire / CDRC stack runs under
    fault injection without touching scheme internals — instantiate the
    structure over the wrapped module and drive it normally.

    Behaviour around the plan's actions:

    - [Delay]: spins before the underlying call.
    - [Crash]: raises {!Fault_plan.Crashed} {e before} the underlying
      call at every site except [On_retire], where it raises {e after}
      the entry is recorded. This choice makes crashes resource-exact:
      a crash can strand protection (slots, open critical sections) for
      [abandon] to reap, but can never lose a retired entry (it is
      queued) nor an ejected one (the eject never happened).
    - [Stall]: the firing call completes, then the thread's protection
      freezes: while stalled, [end_critical_section] and [release] are
      suppressed (recorded, not executed) — the thread keeps pinning
      whatever it pinned, exactly like a preempted thread holding
      announcements — and [eject] returns [[]]. When the stall expires,
      the first subsequent call replays the suppressed exits ("the
      thread wakes and finishes its frozen operation").
    - [Drop_eject]: the next n entries the underlying [eject] returns
      are re-retired instead (a lost scan: reclamation is delayed, not
      leaked).
    - [Slow]: from the firing hit on, every intercepted site spins
      proportionally to the factor before proceeding — a gray-failed
      thread that is degraded but alive — until [Fault_plan.heal]. *)

module Make
    (S : Smr.Smr_intf.S)
    (P : sig
      val plan : Fault_plan.t
    end) =
struct
  let plan = P.plan
  let name = S.name
  let is_protected_region = S.is_protected_region
  let confirm_is_trivial = S.confirm_is_trivial
  let requires_validation = S.requires_validation

  type guard = S.guard

  type pstate = { mutable susp_guards : S.guard list; mutable susp_end_cs : bool }

  type t = { inner : S.t; ps : pstate array }

  let create ?epoch_freq ?cleanup_freq ?slots_per_thread ~max_threads () =
    if max_threads > Fault_plan.max_pids then
      invalid_arg "Faulty_smr: max_threads exceeds Fault_plan.max_pids";
    {
      inner = S.create ?epoch_freq ?cleanup_freq ?slots_per_thread ~max_threads ();
      ps = Array.init max_threads (fun _ -> { susp_guards = []; susp_end_cs = false });
    }

  let inner t = t.inner
  let max_threads t = S.max_threads t.inner
  let knobs t = S.knobs t.inner
  let force_advance t = S.force_advance t.inner

  let spin n =
    for _ = 1 to n do
      Domain.cpu_relax ()
    done

  (* Gray failure: pay the persistent per-site slowdown, if any. *)
  let pace ~pid =
    match Fault_plan.slow_factor plan ~pid with 0 -> () | f -> spin f

  (* On the stalled->running edge, the thread "wakes" and finishes its
     frozen operation: replay the suppressed releases and section exit. *)
  let maybe_wake t ~pid =
    let p = t.ps.(pid) in
    if
      (p.susp_guards <> [] || p.susp_end_cs)
      && not (Fault_plan.stalled plan ~pid)
    then begin
      List.iter (fun g -> S.release t.inner ~pid g) (List.rev p.susp_guards);
      p.susp_guards <- [];
      if p.susp_end_cs then begin
        p.susp_end_cs <- false;
        S.end_critical_section t.inner ~pid
      end
    end

  (* Apply a fired action where Crash aborts before the underlying
     call (used by every site except On_retire). *)
  let act_before ~pid = function
    | None -> ()
    | Some (Fault_plan.Delay n) -> spin n
    | Some Fault_plan.Crash -> raise (Fault_plan.Crashed pid)
    | Some (Fault_plan.Stall _ | Fault_plan.Drop_eject _ | Fault_plan.Slow _) -> ()

  let begin_critical_section t ~pid =
    maybe_wake t ~pid;
    let was_stalled = Fault_plan.stalled plan ~pid in
    act_before ~pid (Fault_plan.hit plan On_begin_cs ~pid);
    pace ~pid;
    (* A stalled thread starts no new sections (parked drivers should
       not get here; the guard keeps a stray call from un-pinning the
       frozen announcement). *)
    if not was_stalled then S.begin_critical_section t.inner ~pid

  let end_critical_section t ~pid =
    if Fault_plan.stalled plan ~pid then t.ps.(pid).susp_end_cs <- true
    else begin
      maybe_wake t ~pid;
      S.end_critical_section t.inner ~pid
    end

  let alloc_hook t ~pid =
    maybe_wake t ~pid;
    act_before ~pid (Fault_plan.hit plan On_alloc ~pid);
    pace ~pid;
    S.alloc_hook t.inner ~pid

  let try_acquire t ~pid id = S.try_acquire t.inner ~pid id
  let acquire t ~pid id = S.acquire t.inner ~pid id

  let confirm t ~pid g id =
    act_before ~pid (Fault_plan.hit plan On_confirm ~pid);
    pace ~pid;
    S.confirm t.inner ~pid g id

  let release t ~pid g =
    if Fault_plan.stalled plan ~pid then
      t.ps.(pid).susp_guards <- g :: t.ps.(pid).susp_guards
    else begin
      maybe_wake t ~pid;
      S.release t.inner ~pid g
    end

  let retire t ~pid id ~birth op =
    maybe_wake t ~pid;
    let a = Fault_plan.hit plan On_retire ~pid in
    (match a with Some (Fault_plan.Delay n) -> spin n | _ -> ());
    pace ~pid;
    S.retire t.inner ~pid id ~birth op;
    (* Crash after recording: the thread dies on the way out, but the
       entry is safely queued for adoption. *)
    match a with Some Fault_plan.Crash -> raise (Fault_plan.Crashed pid) | _ -> ()

  let eject ?force t ~pid =
    if Fault_plan.stalled plan ~pid then []
    else begin
      maybe_wake t ~pid;
      act_before ~pid (Fault_plan.hit plan On_eject ~pid);
      pace ~pid;
      let ops = S.eject ?force t.inner ~pid in
      match Fault_plan.take_drops plan ~pid ~avail:(List.length ops) with
      | 0 -> ops
      | m ->
          let rec split i = function
            | rest when i = 0 -> ([], rest)
            | [] -> ([], [])
            | op :: rest ->
                let d, k = split (i - 1) rest in
                (op :: d, k)
          in
          let dropped, kept = split m ops in
          (* Re-retire under a fresh never-announced identity and a
             maximally conservative birth: delayed, never unsafe. *)
          List.iter
            (fun op -> S.retire t.inner ~pid (Smr.Ident.of_val (ref 0)) ~birth:0 op)
            dropped;
          kept
    end

  let retired_count t ~pid = S.retired_count t.inner ~pid

  let abandon t ~pid =
    (* The pid is dead; its suspended (frozen) exits must not replay
       on top of the reaped state. *)
    t.ps.(pid).susp_guards <- [];
    t.ps.(pid).susp_end_cs <- false;
    S.abandon t.inner ~pid

  let reclamation_frontier t = S.reclamation_frontier t.inner
  let drain_all t = S.drain_all t.inner
end
