(** Pass-The-Buck (Herlihy, Luchangco, Martin & Moir 2005) — the
    protected-pointer scheme the paper cites alongside hazard pointers
    (§2, §6.1); it was the engine of the original single-word lock-free
    reference counting (SLFRC), making it a natural sixth conversion
    target for the framework.

    Like HP, threads post the pointer they are reading in a guard
    slot. The difference is {e liberation with hand-off}: when the
    ejector finds a retired entry still guarded, it does not keep
    polling — it {e hands the entry off} to the guard itself (one
    hand-off slot per guard). Whoever releases or reposts that guard
    inherits the buck: the handed-off entry returns to the releaser's
    retired queue and is decided at its next scan. This bounds the
    number of times an entry can be scanned while one guard pins it and
    gives PTB its value-recycling flavour.

    Everything else matches the HP implementation: per-thread slot
    pools plus a reserved slot, announce/confirm revalidation, and
    [requires_validation = true]. *)

include Smr_intf.S
