(** The type of deferred operations recorded by [retire].

    A deferred operation receives the pid of the {e executing} thread,
    which may differ from the retiring thread: Hyaline ejects from a
    global pool, so whoever drains it runs the closure. Automatic
    reference counting uses the pid to route cascading decrements into
    the executing thread's pending queue. *)

type t = int -> unit

let run (op : t) ~pid = op pid
