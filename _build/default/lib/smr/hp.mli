(** Hazard pointers (Michael 2004).

    A protected-{e pointer} scheme: each thread owns
    [slots_per_thread] announcement slots plus one reserved slot.
    {!try_acquire} claims a free slot and announces the pointer's
    identity in it; {!confirm} checks that a fresh read of the shared
    location still yields the announced identity (the classic
    announce-then-revalidate step that closes the read–reclaim race),
    re-announcing on mismatch. {!try_acquire} returns [None] when all
    non-reserved slots are held — the case that forces CDRC's snapshot
    slow path and explains RCHP's collapse on the range-query workload
    (paper Fig 11).

    Ejection scans every announcement slot and holds back each retired
    entry whose identity is currently announced; the scan is amortized
    over [cleanup_freq] retires. A pointer retired [n] times while
    announced is held back as [n] distinct entries, giving the
    multi-retire semantics of Def 3.3.

    Critical sections are no-ops. *)

include Smr_intf.S

val slots_per_thread : t -> int
(** Non-reserved slots per thread (the [K] of the HP-slot ablation). *)

val announced_count : t -> int
(** Number of currently non-null announcement slots (diagnostics). *)
