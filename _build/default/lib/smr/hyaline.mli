(** Hyaline-1 (Nikolaev & Ravindran 2019) — reference-counted
    retirement batches.

    A protected-region scheme with no epochs: retired entries join a
    global list, each stamped with the number of operations active at
    its retirement. Every operation, on finishing, decrements the stamp
    of exactly the entries retired during its lifetime (the segment of
    the list between the heads at its entry and at its exit); the
    operation that brings a stamp to zero moves the entry to the safe
    pool, from which {!eject} drains.

    Divergence (DESIGN.md S4): real Hyaline packs the list head and the
    active-operation counter into one word mutated with wide CAS, and
    distributes them over several slots. OCaml cannot CAS a
    pointer+integer word, so we keep a single boxed
    [{active; head}] record updated by CAS — enter/retire/leave
    serialize on one atomic, adding contention but preserving the
    algorithm's counting structure. Two behavioural consequences, both
    benign: the last operation to leave truncates the global list
    (in-flight traversals keep their segment reachable), and a retire
    at [active = 0] goes straight to the safe pool. *)

include Smr_intf.S

val active_count : t -> int
(** Number of operations currently inside critical sections. *)
