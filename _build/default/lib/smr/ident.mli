(** Type-erased identity tokens for SMR announcement slots and retired
    lists.

    Hazard-pointer announcement arrays must hold "a pointer to some
    managed object" regardless of its element type; C++ uses [void*].
    In OCaml we erase to an opaque token whose {e only} supported
    operation is physical-identity comparison. The invariant that makes
    this safe (and keeps [Obj] confined to this module): a token is
    never converted back into a value, and tokens are only ever created
    from heap-allocated records (control blocks, nodes), so distinct
    objects always yield non-equal tokens and no token equals {!null}.

    Physical equality is stable under the moving GC — both references
    are updated together, so [==] remains meaningful. Address-based
    hashing would {e not} be stable, which is why the schemes below scan
    announcement arrays linearly rather than hashing tokens. *)

type t
(** An identity token. *)

val null : t
(** The distinguished null token (empty announcement slot). *)

val of_val : 'a -> t
(** [of_val v] is the identity token of [v]. [v] must be a
    heap-allocated value (a record, not an immediate); this is not
    checked. *)

val equal : t -> t -> bool
(** Physical-identity comparison. *)

val is_null : t -> bool
