(** The no-reclamation baseline: retire parks entries forever and
    nothing is ever ejected (until {!drain_all} at teardown). Reads
    cost a single unprotected load — the throughput upper bound
    benchmark suites traditionally include ("none"/"leak") and a
    sanity anchor for every other scheme's overhead. Memory grows
    without bound, which the memory panels make visible. *)

include Smr_intf.S
