type t = Obj.t

let null = Obj.repr 0
let of_val v = Obj.repr v
let equal (a : t) (b : t) = a == b
let is_null t = t == null
