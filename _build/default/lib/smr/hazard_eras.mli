(** Hazard eras (Ramalhete & Correia 2017) — the paper discusses HE in
    §6 as a hybrid of protected-pointer and protected-region methods;
    we include it as a fifth scheme, giving an automatic RCHE beyond
    the paper's three conversions.

    Like HP, each thread owns announcement slots; unlike HP, a slot
    announces the current {e era} rather than a pointer. A pointer read
    while a slot holds era [e] is protected if the era is unchanged
    when {!confirm} runs afterwards — then the object's birth era is
    ≤ [e] ≤ its (future) retire era, so its interval covers the
    announcement. Objects carry birth eras from {!alloc_hook}; entries
    are safe when no announced era falls inside their birth–retire
    interval. If the era advances rarely, [confirm] almost always
    succeeds without a new store, giving region-scheme-like read cost
    with pointer-scheme-like precision. *)

include Smr_intf.S

val current_era : t -> int
val advance_era : t -> unit
