(** Interval-based reclamation, 2GEIBR variant (Wen et al. 2018; paper
    Fig 4).

    Every managed object carries a {e birth epoch} ({!alloc_hook});
    every retired entry an interval [\[birth, retire_epoch\]]. A thread
    announces an interval [\[begin, end\]] covering its critical
    section, extending [end] whenever [confirm] observes an epoch
    advance (the Fig 4 retry loop). An entry is safe once no announced
    interval intersects its birth–retire interval — strictly less
    conservative than EBR, at the cost of per-object tagging.

    Divergence note: the paper's C++ reads [beginAnn\[i\]] and
    [endAnn\[i\]] as two separate words; we store each thread's interval
    as one atomically-swapped boxed pair, which removes a benign
    read-skew race rather than introducing one. *)

include Smr_intf.S

val current_epoch : t -> int
val advance_epoch : t -> unit
