lib/smr/ebr.ml: Array Atomic Repro_util Retire_queue
