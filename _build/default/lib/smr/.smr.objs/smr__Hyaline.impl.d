lib/smr/hyaline.ml: Atomic Deferred Domain List Repro_util
