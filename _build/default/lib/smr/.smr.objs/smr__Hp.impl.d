lib/smr/hp.ml: Array Fun Ident List Repro_util Retire_queue
