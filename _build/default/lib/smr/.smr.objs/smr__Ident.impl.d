lib/smr/ident.ml: Obj
