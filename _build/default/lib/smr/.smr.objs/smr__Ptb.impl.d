lib/smr/ptb.ml: Array Atomic Deferred Fun Ident List Repro_util Retire_queue
