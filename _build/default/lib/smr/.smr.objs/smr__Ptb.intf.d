lib/smr/ptb.mli: Smr_intf
