lib/smr/ibr.ml: Array Atomic Repro_util Retire_queue
