lib/smr/leaky.mli: Smr_intf
