lib/smr/retire_queue.mli: Deferred
