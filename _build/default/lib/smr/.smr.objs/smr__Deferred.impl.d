lib/smr/deferred.ml:
