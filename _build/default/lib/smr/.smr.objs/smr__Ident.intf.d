lib/smr/ident.mli:
