lib/smr/retire_queue.ml: Deferred List Queue
