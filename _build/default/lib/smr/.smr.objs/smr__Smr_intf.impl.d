lib/smr/smr_intf.ml: Deferred Ident
