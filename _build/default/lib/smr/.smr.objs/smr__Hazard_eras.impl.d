lib/smr/hazard_eras.ml: Array Atomic Fun List Repro_util Retire_queue
