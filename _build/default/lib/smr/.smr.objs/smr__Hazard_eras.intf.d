lib/smr/hazard_eras.mli: Smr_intf
