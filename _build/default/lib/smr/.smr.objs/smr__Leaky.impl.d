lib/smr/leaky.ml: Array Retire_queue
