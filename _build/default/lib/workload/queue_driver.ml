(** Driver for the weak-pointer queue benchmark (paper Fig 12): a
    queue prefilled with P elements, P threads each repeatedly popping
    an element and re-inserting it. *)

type result = {
  scheme : string;
  threads : int;
  total_ops : int; (* enqueues + dequeues *)
  elapsed : float;
  mops : float;
  leaked : int;
}

let pp_result ppf r =
  Format.fprintf ppf "%-16s P=%-3d %8.3f Mops/s  ops=%-10d%s" r.scheme r.threads r.mops
    r.total_ops
    (if r.leaked > 0 then Printf.sprintf "  LEAK=%d" r.leaked else "")

module Run (Q : Ds.Queue_intf.S) = struct
  let run ~threads ~duration () =
    let q = Q.create ~max_threads:(threads + 1) () in
    let c0 = Q.ctx q 0 in
    for i = 1 to threads do
      Q.enqueue c0 i
    done;
    Q.flush c0;
    let stop = Atomic.make false in
    let ops = Array.make threads 0 in
    let worker pid () =
      let c = Q.ctx q (pid + 1) in
      let n = ref 0 in
      (try
         while not (Atomic.get stop) do
           for _ = 1 to 32 do
             match Q.dequeue c with
             | Some v -> Q.enqueue c v
             | None -> ()
           done;
           n := !n + 64
         done;
         Q.flush c
       with e -> Printf.eprintf "[%s] queue worker %d died: %s\n%!" Q.name pid (Printexc.to_string e));
      ops.(pid) <- !n
    in
    let t0 = Unix.gettimeofday () in
    let domains = List.init threads (fun pid -> Domain.spawn (worker pid)) in
    Unix.sleepf duration;
    Atomic.set stop true;
    List.iter Domain.join domains;
    let elapsed = Unix.gettimeofday () -. t0 in
    let total_ops = Array.fold_left ( + ) 0 ops in
    Q.teardown q;
    let leaked = Q.live_objects q in
    {
      scheme = Q.name;
      threads;
      total_ops;
      elapsed;
      mops = Repro_util.Stats.throughput_mops ~ops:total_ops ~seconds:elapsed;
      leaked;
    }
end
