(** Experiment registry: one entry per table/figure of the paper's
    evaluation (§5), plus our ablations. DESIGN.md §4 carries the full
    index; EXPERIMENTS.md records paper-vs-measured outcomes. *)

type set_exp = {
  id : string;
  title : string;
  expected : string; (* the paper's qualitative result for this figure *)
  structure : Instances.structure;
  mix : Driver.spec -> Driver.spec; (* workload mix on top of the base spec *)
}

let with_tree_defaults s =
  { s with Driver.key_range = 200_000; init_size = 100_000 }

let set_experiments =
  [
    {
      id = "fig11";
      title = "Fig 11: NM tree, 50% updates / 50% range queries (size 64)";
      expected =
        "RC{EBR,IBR,Hyaline} >> RCHP (paper: >7x at 144T; RCHP exhausts \
         announcement slots on range queries); RC within 10-15% of manual";
      structure = Tree_s;
      mix = (fun s -> { (with_tree_defaults s) with update_pct = 50; rq_pct = 50; rq_size = 64 });
    };
    {
      id = "fig13a";
      title = "Fig 13a: Harris-Michael list, 10% updates / 90% lookups, 1K keys";
      expected =
        "region schemes > pointer schemes; RC versions close to manual but \
         with higher memory (deferred decrements keep chains alive)";
      structure = List_s;
      mix =
        (fun s ->
          { s with key_range = 2_000; init_size = 1_000; update_pct = 10; rq_pct = 0 });
    };
    {
      id = "fig13b";
      title = "Fig 13b: Michael hash table, 10% updates / 90% lookups, 100K keys, load factor 1";
      expected = "all schemes close (shallow buckets); RCEBR ~ EBR";
      structure = Hash_s;
      mix =
        (fun s ->
          {
            s with
            key_range = 200_000;
            init_size = 100_000;
            update_pct = 10;
            rq_pct = 0;
            buckets = Some 100_000;
          });
    };
    {
      id = "fig13c";
      title = "Fig 13c: NM tree, 10% updates / 90% lookups, 100K keys";
      expected = "RCEBR within 10% of EBR and up to ~1.7x faster than RCHP";
      structure = Tree_s;
      mix = (fun s -> { (with_tree_defaults s) with update_pct = 10; rq_pct = 0 });
    };
    {
      id = "fig13d";
      title = "Fig 13d: NM tree, 50% updates / 50% lookups, 100K keys";
      expected = "same ordering as 13c with larger RC-vs-manual gaps";
      structure = Tree_s;
      mix = (fun s -> { (with_tree_defaults s) with update_pct = 50; rq_pct = 0 });
    };
    {
      id = "fig13e";
      title = "Fig 13e: NM tree, 1% updates / 99% lookups, 100K keys";
      expected =
        "RCEBR ~ EBR (near-identical); RCHyaline slightly faster than Hyaline; \
         RCIBR ~20% slower than IBR";
      structure = Tree_s;
      mix = (fun s -> { (with_tree_defaults s) with update_pct = 1; rq_pct = 0 });
    };
    {
      id = "fig13f";
      title = "Fig 13f: NM tree, 100% updates, 100K keys (memory stress)";
      expected =
        "manual and automatic track each other on throughput; automatic uses \
         several times more memory when oversubscribed";
      structure = Tree_s;
      mix = (fun s -> { (with_tree_defaults s) with update_pct = 100; rq_pct = 0 });
    };
  ]

let find_set_exp id = List.find_opt (fun e -> e.id = id) set_experiments

(* ---------------- runners ---------------- *)

let run_set_instance (module D : Ds.Set_intf.S) spec =
  let module R = Driver.Run (D) in
  R.run ~spec ()

let run_set_exp ?(threads = [ 1; 2; 4 ]) ?(duration = 0.4) ?(schemes = []) ?(scale = 1) e =
  Format.printf "@.== %s ==@.expected: %s@.@." e.title e.expected;
  let instances =
    match schemes with
    | [] -> Instances.all_sets e.structure
    | names ->
        List.filter_map (fun n -> Instances.find_set e.structure n) names
  in
  let results = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun (module D : Ds.Set_intf.S) ->
          let spec = e.mix { Driver.default_spec with threads = p; duration } in
          (* [scale] > 1 shrinks the structure for smoke runs. *)
          let spec =
            {
              spec with
              init_size = max 16 (spec.init_size / scale);
              key_range = max 32 (spec.key_range / scale);
              buckets = Option.map (fun b -> max 16 (b / scale)) spec.buckets;
            }
          in
          let r = run_set_instance (module D) spec in
          results := r :: !results;
          Format.printf "%a@." Driver.pp_result r)
        instances;
      Format.printf "@.")
    threads;
  List.rev !results

let run_fig12 ?(threads = [ 1; 2; 4 ]) ?(duration = 0.4) ?(schemes = []) () =
  Format.printf
    "@.== Fig 12: doubly-linked queue, P threads pop-then-push ==@.expected: Original > \
     ours (RC-weak) >> locked stand-in at high thread counts; ours within ~19-33%% of \
     Original beyond 1 thread@.@.";
  let instances =
    match schemes with
    | [] -> Instances.queues
    | names -> List.filter_map Instances.find_queue names
  in
  let results = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun (module Q : Ds.Queue_intf.S) ->
          let module R = Queue_driver.Run (Q) in
          let r = R.run ~threads:p ~duration () in
          results := r :: !results;
          Format.printf "%a@." Queue_driver.pp_result r)
        instances;
      Format.printf "@.")
    threads;
  List.rev !results

(* ---------------- ablations ---------------- *)

(* abl1: wait-free sticky counter vs CAS-loop counter under concurrent
   increment-if-not-zero pressure (the §4.3 claim: O(1) vs O(P)
   amortized). *)
let run_abl_sticky ?(threads = [ 1; 2; 4 ]) ?(duration = 0.3) () =
  Format.printf
    "@.== Ablation: sticky counter vs CAS-loop counter ==@.expected: sticky sustains \
     higher inc/dec throughput as contention grows@.@.";
  let bench name inc dec =
    List.iter
      (fun p ->
        let stop = Atomic.make false in
        let ops = Array.make p 0 in
        let worker pid () =
          let n = ref 0 in
          while not (Atomic.get stop) do
            for _ = 1 to 64 do
              if inc () then ignore (dec ())
            done;
            n := !n + 128
          done;
          ops.(pid) <- !n
        in
        let t0 = Unix.gettimeofday () in
        let ds = List.init p (fun pid -> Domain.spawn (worker pid)) in
        Unix.sleepf duration;
        Atomic.set stop true;
        List.iter Domain.join ds;
        let dt = Unix.gettimeofday () -. t0 in
        let total = Array.fold_left ( + ) 0 ops in
        Format.printf "%-8s P=%-3d %8.3f Mops/s@." name p
          (Repro_util.Stats.throughput_mops ~ops:total ~seconds:dt))
      threads
  in
  let s = Sticky.Sticky_counter.create 1 in
  bench "sticky"
    (fun () -> Sticky.Sticky_counter.increment_if_not_zero s)
    (fun () -> Sticky.Sticky_counter.decrement s);
  let c = Sticky.Casloop_counter.create 1 in
  bench "casloop"
    (fun () -> Sticky.Casloop_counter.increment_if_not_zero c)
    (fun () -> Sticky.Casloop_counter.decrement c);
  Format.printf "@."

(* abl2: EBR/IBR epoch frequency sweep (the paper's §5.1 tuning:
   throughput vs memory trade-off). *)
let run_abl_epochfreq ?(threads = 4) ?(duration = 0.3) ?(freqs = [ 1; 10; 40; 160; 640 ]) ()
    =
  Format.printf
    "@.== Ablation: epoch advance frequency (RCEBR on the NM tree, 50%% updates) \
     ==@.expected: rare advances raise throughput but grow live memory@.@.";
  List.iter
    (fun f ->
      let spec =
        {
          Driver.default_spec with
          threads;
          duration;
          update_pct = 50;
          key_range = 20_000;
          init_size = 10_000;
          epoch_freq = Some f;
        }
      in
      let module R = Driver.Run (Instances.Tr_ebr) in
      let r = R.run ~spec () in
      Format.printf "epoch_freq=%-5d %a@." f Driver.pp_result r)
    freqs;
  Format.printf "@."

(* abl3: HP announcement-slot budget vs the snapshot fast path — the
   mechanism behind Fig 11's RCHP collapse, isolated. *)
let run_abl_hpslots ?(threads = 2) ?(duration = 0.3) ?(slots = [ 2; 4; 8; 16; 32 ]) () =
  Format.printf
    "@.== Ablation: RCHP announcement slots vs range-query throughput (NM tree, 50%% \
     RQ-64) ==@.expected: few slots force the count-increment slow path; throughput \
     recovers as slots cover the query path@.@.";
  List.iter
    (fun k ->
      let spec =
        {
          Driver.default_spec with
          threads;
          duration;
          update_pct = 50;
          rq_pct = 50;
          rq_size = 64;
          key_range = 20_000;
          init_size = 10_000;
          slots = Some k;
        }
      in
      let module R = Driver.Run (Instances.Tr_hp) in
      let r = R.run ~spec () in
      Format.printf "slots=%-3d %a@." k Driver.pp_result r)
    slots;
  Format.printf "@."

(* Extension table: Treiber stack push/pop across every scheme — not a
   paper figure, but the smallest end-to-end consumer of the framework
   (includes the "None" leak-everything upper bound). *)
let run_ext_stack ?(threads = [ 1; 2; 4 ]) ?(duration = 0.3) () =
  Format.printf
    "@.== Extension: Treiber stack, P threads push/pop pairs ==@.expected: None (no \
     reclamation) is the throughput upper bound and the memory worst case; region \
     schemes close behind; RC versions track their manual counterparts@.@.";
  List.iter
    (fun p ->
      List.iter
        (fun (module St : Instances.STACK) ->
          let s = St.create ~max_threads:p () in
          let stop = Atomic.make false in
          let ops = Array.make p 0 in
          let worker pid () =
            let c = St.ctx s pid in
            let n = ref 0 in
            while not (Atomic.get stop) do
              for i = 1 to 32 do
                St.push c i;
                ignore (St.pop c)
              done;
              n := !n + 64
            done;
            St.flush c;
            ops.(pid) <- !n
          in
          let t0 = Unix.gettimeofday () in
          let ds = List.init p (fun pid -> Domain.spawn (worker pid)) in
          Unix.sleepf duration;
          Atomic.set stop true;
          List.iter Domain.join ds;
          let dt = Unix.gettimeofday () -. t0 in
          let total = Array.fold_left ( + ) 0 ops in
          let peak_live = St.live_objects s in
          St.teardown s;
          Format.printf "%-10s P=%-3d %8.3f Mops/s  residual=%-9d leak-after=%d@." St.name
            p
            (Repro_util.Stats.throughput_mops ~ops:total ~seconds:dt)
            peak_live (St.live_objects s))
        Instances.stacks;
      Format.printf "@.")
    threads
