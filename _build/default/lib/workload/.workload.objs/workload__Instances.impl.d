lib/workload/instances.ml: Cdrc Ds List Smr String
