lib/workload/queue_driver.ml: Array Atomic Domain Ds Format List Printexc Printf Repro_util Unix
