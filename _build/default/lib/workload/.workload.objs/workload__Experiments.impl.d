lib/workload/experiments.ml: Array Atomic Domain Driver Ds Format Instances List Option Queue_driver Repro_util Sticky Unix
