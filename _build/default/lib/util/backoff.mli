(** Truncated exponential backoff for CAS retry loops.

    Standard contention-management helper: on each failed attempt the
    caller invokes {!once}, which spins for a geometrically growing
    number of {!Domain.cpu_relax} iterations, capped at [max]. *)

type t

val create : ?min:int -> ?max:int -> unit -> t
(** [create ?min ?max ()] returns a fresh backoff controller. [min]
    (default 1) and [max] (default 256) bound the spin count. *)

val once : t -> unit
(** Spin once at the current level, then double the level (up to the
    cap). *)

val reset : t -> unit
(** Reset the spin level to its minimum (call after a success). *)
