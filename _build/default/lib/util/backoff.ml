type t = { min : int; max : int; mutable cur : int }

let create ?(min = 1) ?(max = 256) () = { min; max; cur = min }

let once t =
  for _ = 1 to t.cur do
    Domain.cpu_relax ()
  done;
  if t.cur < t.max then t.cur <- t.cur * 2

let reset t = t.cur <- t.min
