lib/util/padded.mli:
