lib/util/rng.mli:
