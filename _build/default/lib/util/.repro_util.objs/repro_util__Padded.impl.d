lib/util/padded.ml: Array Atomic
