lib/util/stats.mli:
