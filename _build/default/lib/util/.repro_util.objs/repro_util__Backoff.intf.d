lib/util/backoff.mli:
