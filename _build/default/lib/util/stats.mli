(** Small descriptive-statistics helpers for the benchmark reporters. *)

val mean : float array -> float
(** Arithmetic mean; 0. on an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0. for n < 2. *)

val median : float array -> float
(** Median (does not mutate the input); 0. on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank method. *)

val min_max : float array -> float * float
(** Minimum and maximum; [(0., 0.)] on an empty array. *)

val throughput_mops : ops:int -> seconds:float -> float
(** Operations per second in millions. *)
