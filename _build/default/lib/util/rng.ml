type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64 step, used only to expand the seed into the xoshiro state
   and to derive split streams. *)
let splitmix_next (state : int64 ref) =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_int64_seed s64 =
  let st = ref s64 in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let create ~seed = of_int64_seed (Int64.of_int seed)

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let next64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_int64_seed (next64 t)

(* Keep 62 bits: OCaml's int is 63-bit signed, so a 63-bit payload from
   Int64.to_int could wrap negative. *)
let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine for benchmark workloads; bias is
     negligible for bounds far below 2^62. *)
  next t mod bound

let float t = Int64.to_float (Int64.shift_right_logical (next64 t) 11) *. 0x1p-53
let bool t = Int64.logand (next64 t) 1L = 1L
