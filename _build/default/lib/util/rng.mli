(** Deterministic, splittable pseudo-random number generation.

    Each benchmark thread owns its own generator so that results are
    reproducible independent of scheduling. The implementation is
    SplitMix64 (for seeding) feeding xoshiro256**, both well-studied
    non-cryptographic generators. *)

type t
(** Mutable generator state. Not thread-safe; use one per thread. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. Equal seeds
    give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to hand each worker thread its own stream. *)

val next : t -> int
(** [next t] returns a uniformly distributed non-negative [int]
    (62 bits). *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** [float t] returns a uniform float in [\[0, 1)]. *)

val bool : t -> bool
(** [bool t] returns a uniform boolean. *)
