lib/ds/dl_queue_manual.ml: Array Atomic List Queue Repro_util Simheap Smr
