lib/ds/nm_tree_rc.ml: Atomic Cdrc List Simheap
