lib/ds/ms_queue_manual.ml: Acquire_retire Atomic List Option Simheap Smr
