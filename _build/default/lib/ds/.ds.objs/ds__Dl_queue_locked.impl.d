lib/ds/dl_queue_locked.ml: Mutex Queue Simheap Sticky
