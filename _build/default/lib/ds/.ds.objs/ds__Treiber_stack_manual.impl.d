lib/ds/treiber_stack_manual.ml: Acquire_retire Atomic List Simheap Smr
