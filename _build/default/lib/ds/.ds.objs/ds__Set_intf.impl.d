lib/ds/set_intf.ml:
