lib/ds/hash_table_rc.ml: Array Cdrc Hm_list_rc
