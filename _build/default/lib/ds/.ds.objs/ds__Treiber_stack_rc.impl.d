lib/ds/treiber_stack_rc.ml: Cdrc
