lib/ds/hm_list_rc.ml: Cdrc Simheap
