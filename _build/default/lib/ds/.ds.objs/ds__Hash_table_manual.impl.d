lib/ds/hash_table_manual.ml: Array Atomic Fun Hm_list_manual Smr
