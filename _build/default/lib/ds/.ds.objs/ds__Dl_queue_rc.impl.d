lib/ds/dl_queue_rc.ml: Cdrc
