lib/ds/ms_queue_rc.ml: Cdrc
