lib/ds/hm_list_manual.ml: Acquire_retire Atomic Fun List Option Simheap Smr
