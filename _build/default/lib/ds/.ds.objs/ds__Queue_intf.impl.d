lib/ds/queue_intf.ml:
