lib/ds/nm_tree_manual.ml: Acquire_retire Atomic List Simheap Smr
