(** Simulated manual heap with reclamation accounting and
    use-after-free detection.

    OCaml is garbage-collected, so this reproduction cannot literally
    [free] memory. Instead, every object managed by an SMR scheme or a
    reference-counting control block embeds a {!block} token obtained
    from {!alloc}. "Freeing" the object calls {!free} on its token,
    which:

    - counts the reclamation (live/peak statistics drive the paper's
      memory-usage figures), and
    - poisons the token, so that any later {!check_live} — which the
      data-structure code performs on every dereference — raises
      {!Use_after_free}.

    This preserves exactly the property safe memory reclamation exists
    to provide: {e no thread dereferences an object after it has been
    reclaimed}. A buggy SMR scheme here crashes the stress tests instead
    of silently corrupting memory, which is strictly better for a
    reproduction.

    All operations are thread-safe and lock-free. *)

type t
(** A simulated heap (one per benchmark run, usually). *)

type block
(** An allocation token. Embed it in the managed object. *)

exception Use_after_free of string
(** Raised by {!check_live} on a freed block: an SMR safety violation. *)

exception Double_free of string
(** Raised by {!free} on an already-freed block. *)

val create : ?name:string -> unit -> t
(** [create ?name ()] makes an empty heap. [name] appears in exception
    messages and reports (default ["heap"]). *)

val name : t -> string

val alloc : t -> block
(** Allocate a block: increments the live count and updates the peak. *)

val free : block -> unit
(** Reclaim a block.
    @raise Double_free if the block was already freed. *)

val check_live : block -> unit
(** Assert the block has not been reclaimed.
    @raise Use_after_free if it has. *)

val is_live : block -> bool
(** Non-raising liveness query (used by tests). *)

val uid : block -> int
(** Unique id of the block within its heap (diagnostics). *)

(** {1 Statistics} *)

val live : t -> int
(** Blocks currently allocated and not freed. *)

val peak : t -> int
(** High-water mark of {!live} since creation or {!reset_peak}. *)

val allocated : t -> int
(** Total blocks ever allocated. *)

val freed : t -> int
(** Total blocks ever freed. *)

val reset_peak : t -> unit
(** Reset the peak to the current live count (called between benchmark
    phases so warm-up doesn't pollute measurements). *)

val pp_stats : Format.formatter -> t -> unit
(** Render ["live=… peak=… allocated=… freed=…"]. *)
