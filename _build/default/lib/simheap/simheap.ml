type t = {
  name : string;
  allocated_n : int Atomic.t;
  freed_n : int Atomic.t;
  live_n : int Atomic.t;
  peak_n : int Atomic.t;
  next_uid : int Atomic.t;
}

type block = { heap : t; uid : int; freed : bool Atomic.t }

exception Use_after_free of string
exception Double_free of string

let create ?(name = "heap") () =
  {
    name;
    allocated_n = Atomic.make 0;
    freed_n = Atomic.make 0;
    live_n = Atomic.make 0;
    peak_n = Atomic.make 0;
    next_uid = Atomic.make 0;
  }

let name t = t.name

let rec bump_peak t live =
  let peak = Atomic.get t.peak_n in
  if live > peak && not (Atomic.compare_and_set t.peak_n peak live) then bump_peak t live

let alloc t =
  ignore (Atomic.fetch_and_add t.allocated_n 1);
  let live = Atomic.fetch_and_add t.live_n 1 + 1 in
  bump_peak t live;
  { heap = t; uid = Atomic.fetch_and_add t.next_uid 1; freed = Atomic.make false }

let free b =
  if Atomic.exchange b.freed true then
    raise (Double_free (Printf.sprintf "%s: block %d freed twice" b.heap.name b.uid));
  ignore (Atomic.fetch_and_add b.heap.freed_n 1);
  ignore (Atomic.fetch_and_add b.heap.live_n (-1))

let check_live b =
  if Atomic.get b.freed then
    raise (Use_after_free (Printf.sprintf "%s: block %d used after free" b.heap.name b.uid))

let is_live b = not (Atomic.get b.freed)
let uid b = b.uid
let live t = Atomic.get t.live_n
let peak t = Atomic.get t.peak_n
let allocated t = Atomic.get t.allocated_n
let freed t = Atomic.get t.freed_n
let reset_peak t = Atomic.set t.peak_n (Atomic.get t.live_n)

let pp_stats ppf t =
  Format.fprintf ppf "live=%d peak=%d allocated=%d freed=%d" (live t) (peak t) (allocated t)
    (freed t)
