(** Generalized acquire–retire (paper §3.1, Fig 2).

    This layer packages any manual SMR scheme as the paper's
    generalized interface: [alloc] / [retire] / [eject] plus critical
    sections and the typed [acquire] / [try_acquire] / [release]
    protocol. It is the contribution that lets reference counting (and
    the manual data structures) be written once against a scheme-
    agnostic API.

    Differences from Fig 2, forced by OCaml and documented in
    DESIGN.md: [alloc] wraps an existing value in a {!Make.managed}
    record (carrying the birth tag and the simulated-heap block) rather
    than calling a constructor; [eject] returns deferred closures for
    the caller to run (never reentrantly — use {!Make.drain}); the
    typed read of the shared location is supplied by the caller as a
    [read] function. *)

module Make (S : Smr.Smr_intf.S) = struct
  module Smr_impl = S

  type guard = S.guard

  type t = { smr : S.t; heap : Simheap.t }

  (** A value under acquire–retire management. [alloc] is part of the
      Fig 2 interface because IBR and HE must tag each object with a
      birth epoch at allocation time. *)
  type 'a managed = { value : 'a; birth : int; block : Simheap.block }

  let create ?epoch_freq ?cleanup_freq ?slots_per_thread ?heap ~max_threads () =
    let heap =
      match heap with Some h -> h | None -> Simheap.create ~name:("ar-" ^ S.name) ()
    in
    { smr = S.create ?epoch_freq ?cleanup_freq ?slots_per_thread ~max_threads (); heap }

  let smr t = t.smr
  let heap t = t.heap
  let max_threads t = S.max_threads t.smr

  let alloc t ~pid value =
    { value; birth = S.alloc_hook t.smr ~pid; block = Simheap.alloc t.heap }

  let get (m : _ managed) =
    Simheap.check_live m.block;
    m.value

  let is_live (m : _ managed) = Simheap.is_live m.block
  let ident (m : _ managed) = Smr.Ident.of_val m

  let begin_critical_section t ~pid = S.begin_critical_section t.smr ~pid
  let end_critical_section t ~pid = S.end_critical_section t.smr ~pid

  let critically t ~pid f =
    begin_critical_section t ~pid;
    Fun.protect ~finally:(fun () -> end_critical_section t ~pid) f

  (* The two-phase announce/confirm protocol described in
     [Smr.Smr_intf]: [read] loads the shared location, [ident] projects
     the identity token that the scheme announces and validates. *)

  let acquire t ~pid ~(read : unit -> 'v) ~(ident : 'v -> Smr.Ident.t) : 'v * guard =
    if S.confirm_is_trivial then (read (), S.acquire t.smr ~pid Smr.Ident.null)
    else begin
      let v0 = read () in
      let g = S.acquire t.smr ~pid (ident v0) in
      let rec settle () =
        let v = read () in
        if S.confirm t.smr ~pid g (ident v) then (v, g) else settle ()
      in
      settle ()
    end

  let try_acquire t ~pid ~(read : unit -> 'v) ~(ident : 'v -> Smr.Ident.t) :
      ('v * guard) option =
    if S.confirm_is_trivial then
      match S.try_acquire t.smr ~pid Smr.Ident.null with
      | Some g -> Some (read (), g)
      | None -> None
    else begin
      let v0 = read () in
      match S.try_acquire t.smr ~pid (ident v0) with
      | None -> None
      | Some g ->
          let rec settle () =
            let v = read () in
            if S.confirm t.smr ~pid g (ident v) then Some (v, g) else settle ()
          in
          settle ()
    end

  let release t ~pid g = S.release t.smr ~pid g

  let retire t ~pid (m : _ managed) (op : Smr.Deferred.t) =
    S.retire t.smr ~pid (ident m) ~birth:m.birth op

  (** Manual-SMR convenience: retire with the deferred operation being
      the reclamation itself. *)
  let retire_free t ~pid (m : _ managed) =
    retire t ~pid m (fun _pid -> Simheap.free m.block)

  let eject ?force t ~pid = S.eject ?force t.smr ~pid

  (** Run every ejectable deferred operation. Safe against cascades:
      operations executed here may retire further objects; we loop
      until [eject] yields nothing, never recursing into a running
      operation. *)
  let drain t ~pid =
    let rec go () =
      match eject ~force:true t ~pid with
      | [] -> ()
      | ops ->
          List.iter (fun op -> op pid) ops;
          go ()
    in
    go ()

  (** Teardown at quiescence: apply every pending deferred operation,
      including cascades. Requires no concurrent activity. *)
  let quiesce t =
    let rec go () =
      match S.drain_all t.smr with
      | [] -> ()
      | ops ->
          List.iter (fun op -> op 0) ops;
          go ()
    in
    go ()
end
