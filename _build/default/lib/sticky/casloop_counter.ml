type t = int Atomic.t

let create n =
  if n < 0 then invalid_arg "Casloop_counter.create";
  Atomic.make n

let rec increment_if_not_zero t =
  let v = Atomic.get t in
  if v = 0 then false
  else if Atomic.compare_and_set t v (v + 1) then true
  else increment_if_not_zero t

let rec decrement t =
  let v = Atomic.get t in
  if Atomic.compare_and_set t v (v - 1) then v - 1 = 0 else decrement t

let load t = Atomic.get t
let is_zero t = load t = 0
let raw t = Atomic.get t
