lib/sticky/sticky_counter.ml: Atomic
