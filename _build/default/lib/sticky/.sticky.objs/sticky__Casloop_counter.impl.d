lib/sticky/casloop_counter.ml: Atomic
