lib/sticky/sticky_counter.mli: Counter_intf
