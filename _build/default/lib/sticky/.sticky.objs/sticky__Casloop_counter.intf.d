lib/sticky/casloop_counter.mli: Counter_intf
