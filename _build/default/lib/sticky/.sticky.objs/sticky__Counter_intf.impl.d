lib/sticky/counter_intf.ml:
