(** CAS-loop sticky counter — the traditional lock-free (but not
    wait-free) implementation of increment-if-not-zero (paper §1, §4.2).

    Used as the baseline in the sticky-counter ablation benchmark: under
    P concurrent upgraders the CAS loop costs O(P) amortized per
    operation, while {!Sticky_counter} stays O(1). *)

include Counter_intf.S

val raw : t -> int
(** Raw stored value (the logical count; no flag bits). *)
