(** Common signature of sticky ("increment-if-not-zero") counters.

    A sticky counter is an atomic non-negative counter whose value,
    once it reaches zero, stays zero forever: a subsequent increment
    fails rather than resurrecting the count. Reference-counted objects
    need exactly this — once the strong count hits zero the object is
    dead, and a racing upgrade from a weak pointer must observe that
    rather than revive it (paper §4.2–4.3). *)

module type S = sig
  type t

  val create : int -> t
  (** [create n] makes a counter with initial value [n ≥ 0]. A counter
      created at [0] is already stuck at zero. *)

  val increment_if_not_zero : t -> bool
  (** Atomically increment unless the counter is (stuck at) zero.
      Returns [true] iff the increment happened. *)

  val decrement : t -> bool
  (** Atomically decrement. Returns [true] iff this operation brought
      the counter to zero (exactly one decrement returns [true] for
      each time the counter permanently dies). Precondition: the caller
      owns one unit of the count, i.e. the logical value is ≥ 1. *)

  val load : t -> int
  (** Linearizable read of the logical value (0 once stuck). *)

  val is_zero : t -> bool
  (** [is_zero t] is [load t = 0]. *)
end
