(** Wait-free sticky counter with constant-time increment-if-not-zero,
    decrement, and load (paper §4.3, Figure 7).

    The counter is stored in a single atomic integer. The two highest
    usable bits are bookkeeping flags:

    - [zero]: when set, the counter is (permanently) zero, regardless
      of the low bits — failed increments may still bump the low bits,
      which is harmless because the flag dominates.
    - [help]: set together with [zero] by a {!load} that helped an
      in-flight decrement announce the death; the decrement that clears
      it with an exchange takes credit for bringing the count to zero.

    Divergence from the paper (documented, see DESIGN.md S5): C++
    [compare_exchange] returns the witnessed value on failure in the
    same atomic step; OCaml's [Atomic.compare_and_set] does not, so a
    failed CAS is followed by a separate re-read. This makes {!load}
    (and the failure path of {!decrement}) lock-free rather than
    wait-free in the strict sense — the retry happens only when the
    counter is concurrently revived and re-killed, never in a quiescent
    state. The sequential specification and the
    exactly-one-decrement-takes-credit property are unchanged, and are
    checked by the test suite. *)

include Counter_intf.S

val max_value : int
(** Largest representable logical count (2^60 - 1 on 64-bit). *)

val raw : t -> int
(** Raw stored bits, for tests and diagnostics only. *)
