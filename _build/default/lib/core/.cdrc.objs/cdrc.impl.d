lib/core/cdrc.ml: Array Atomic Cdrc_intf Fun List Queue Repro_util Simheap Smr Sticky
