lib/core/cdrc_intf.ml: Simheap
