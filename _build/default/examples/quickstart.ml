(* Quickstart: the reference-counted pointer types and how they relate
   (paper Fig 6), on a runtime built from EBR.

   Run with:  dune exec examples/quickstart.exe *)

(* Pick a manual SMR scheme; Cdrc.Make turns it into an automatic
   reference-counting runtime (the paper's §3 conversion). Any of
   Smr.Ebr / Smr.Ibr / Smr.Hyaline / Smr.Hp / Smr.Hazard_eras works. *)
module R = Cdrc.Make (Smr.Ebr)

let () =
  (* A runtime serving up to 4 threads (pids 0..3). *)
  let rt = R.create ~max_threads:4 () in
  let th = R.thread rt 0 in

  (* shared: an owning, counted reference. Drop it explicitly (OCaml
     has no destructors — see DESIGN.md S6). *)
  let p = R.Shared.make th "hello, cdrc" in
  Printf.printf "value        : %s\n" (R.Shared.get p);
  Printf.printf "use_count    : %d\n" (R.Shared.use_count p);

  (* atomic shared pointer (Asp): a mutable shared slot that threads
     may load/store/CAS concurrently. Storing takes its own count. *)
  let cell = R.Asp.make th (R.Shared.ptr p) in
  Printf.printf "after Asp.make, use_count = %d\n" (R.Shared.use_count p);

  (* Racy reads and snapshot lifetimes live inside critical sections. *)
  R.critically th (fun () ->
      (* snapshot: read without touching the reference count — the
         fast path that makes automatic RC as fast as manual SMR. *)
      let snap = R.Asp.get_snapshot th cell in
      Printf.printf "snapshot     : %s (protected=%b, count still %d)\n"
        (R.Snapshot.get snap) (R.Snapshot.is_protected snap) (R.Snapshot.use_count snap);
      R.Snapshot.drop th snap);

  (* weak: does not keep the object alive; upgrade with lock. *)
  let w = R.Weak.of_shared th p in
  Printf.printf "expired      : %b\n" (R.Weak.expired w);
  let q = R.Weak.lock th w in
  Printf.printf "locked value : %s\n" (R.Shared.get q);
  R.Shared.drop th q;

  (* Drop every strong reference: the object is destroyed, the weak
     pointer observes expiry. *)
  R.Shared.drop th p;
  R.critically th (fun () -> R.Asp.clear th cell);
  R.quiesce rt;
  Printf.printf "after drops  : expired=%b, lock gives null=%b\n" (R.Weak.expired w)
    (R.Shared.is_null (R.Weak.lock th w));
  R.Weak.drop th w;
  R.quiesce rt;
  Printf.printf "live objects : %d (0 = no leaks)\n" (R.live_objects rt)
