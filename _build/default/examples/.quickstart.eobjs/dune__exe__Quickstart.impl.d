examples/quickstart.ml: Cdrc Printf Smr
