examples/weak_queue.ml: Atomic Cdrc Domain Ds List Printf Smr
