examples/cyclic_graph.mli:
