examples/kv_cache.ml: Atomic Cdrc Domain List Printf Smr Sys
