examples/quickstart.mli:
