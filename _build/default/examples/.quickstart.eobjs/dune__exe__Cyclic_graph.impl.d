examples/cyclic_graph.ml: Array Cdrc Printf Smr
