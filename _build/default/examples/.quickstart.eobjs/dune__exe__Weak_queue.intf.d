examples/weak_queue.mli:
