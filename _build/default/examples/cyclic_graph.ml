(* Cycle collection: the classical reference-counting weakness (paper
   §4) demonstrated on a tree with parent pointers.

   Version A stores parent links as strong pointers -> every
   parent/child pair is a strong cycle -> nothing is ever reclaimed.
   Version B stores parent links as atomic weak pointers (the paper's
   recommended pattern for back/parent edges) -> dropping the root
   reclaims the whole structure.

   Run with:  dune exec examples/cyclic_graph.exe *)

module R = Cdrc.Make (Smr.Ebr)

let fanout = 4
let depth = 5

(* ---- Version A: strong parent links (leaks) ---- *)
module Strong_tree = struct
  type node = { id : int; children : node R.asp array; parent : node R.asp }

  let destroy th (n : node) =
    Array.iter (R.Asp.clear th) n.children;
    R.Asp.clear th n.parent

  let counter = ref 0

  let rec build th d (parent : node R.ptr) =
    incr counter;
    let n =
      R.Shared.make th ~destroy
        {
          id = !counter;
          children = Array.init fanout (fun _ -> R.Asp.make_null ());
          parent = R.Asp.make th parent;
        }
    in
    if d > 1 then
      Array.iter
        (fun cell ->
          let child = build th (d - 1) (R.Shared.ptr n) in
          R.Asp.store th cell (R.Shared.ptr child);
          R.Shared.drop th child)
        (R.Shared.get n).children;
    n
end

(* ---- Version B: weak parent links (collects) ---- *)
module Weak_tree = struct
  type node = { id : int; children : node R.asp array; parent : node R.awp }

  let destroy th (n : node) =
    Array.iter (R.Asp.clear th) n.children;
    R.Awp.clear th n.parent

  let counter = ref 0

  let rec build th d (parent : node R.ptr) =
    incr counter;
    let n =
      R.Shared.make th ~destroy
        {
          id = !counter;
          children = Array.init fanout (fun _ -> R.Asp.make_null ());
          parent = R.Awp.make th parent;
        }
    in
    if d > 1 then
      Array.iter
        (fun cell ->
          let child = build th (d - 1) (R.Shared.ptr n) in
          R.Asp.store th cell (R.Shared.ptr child);
          R.Shared.drop th child)
        (R.Shared.get n).children;
    n

  (* Walk up from any node to the root through weak upgrades. *)
  let rec root_of th (n : node R.shared) =
    let w = R.Awp.load th (R.Shared.get n).parent in
    let up = R.Weak.lock th w in
    R.Weak.drop th w;
    if R.Shared.is_null up then begin
      R.Shared.drop th up;
      n
    end
    else begin
      R.Shared.drop th n;
      root_of th up
    end
end

let () =
  let nodes = ((fanout * fanout * fanout * fanout) + 64) * 2 in
  ignore nodes;

  (* A: strong cycles leak. *)
  let rt_a = R.create ~max_threads:1 () in
  let th_a = R.thread rt_a 0 in
  R.critically th_a (fun () ->
      let root = Strong_tree.build th_a depth R.Ptr.null in
      R.Shared.drop th_a root);
  R.quiesce rt_a;
  Printf.printf "strong parent links: built %d nodes, %d still live after dropping root \
                 (leaked: reference cycles)\n"
    !Strong_tree.counter (R.live_objects rt_a);

  (* B: weak parent links collect. *)
  let rt_b = R.create ~max_threads:1 () in
  let th_b = R.thread rt_b 0 in
  R.critically th_b (fun () ->
      let root = Weak_tree.build th_b depth R.Ptr.null in
      (* Navigate: pick the leftmost leaf, climb back to the root. *)
      let rec leftmost th n =
        let cell = (R.Shared.get n).Weak_tree.children.(0) in
        let child = R.Asp.load th cell in
        if R.Shared.is_null child then begin
          R.Shared.drop th child;
          n
        end
        else begin
          R.Shared.drop th n;
          leftmost th child
        end
      in
      let leaf = leftmost th_b (R.Shared.copy th_b root) in
      Printf.printf "weak parent links: leaf id=%d climbs to root id=%d\n"
        (R.Shared.get leaf).Weak_tree.id
        (let r = Weak_tree.root_of th_b (R.Shared.copy th_b leaf) in
         let id = (R.Shared.get r).Weak_tree.id in
         R.Shared.drop th_b r;
         id);
      R.Shared.drop th_b leaf;
      R.Shared.drop th_b root);
  R.quiesce rt_b;
  Printf.printf "weak parent links: built %d nodes, %d still live after dropping root \
                 (collected)\n"
    !Weak_tree.counter (R.live_objects rt_b);
  assert (R.live_objects rt_b = 0);
  assert (R.live_objects rt_a = !Strong_tree.counter)
