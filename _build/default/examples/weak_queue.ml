(* Producers/consumers over the Ramalhete-Correia doubly-linked queue
   built on atomic weak pointers (paper §4.6, Fig 10) — the workload
   behind Fig 12.

   The queue's [prev] pointers are atomic weak pointers: they let
   enqueuers help each other backwards through the list without
   creating prev/next strong cycles, so nodes reclaim automatically the
   moment they are dequeued and unreferenced.

   Run with:  dune exec examples/weak_queue.exe *)

module R = Cdrc.Make (Smr.Hp) (* the paper's Fig 12 uses the HP-backed runtime *)
module Q = Ds.Dl_queue_rc.Make (R)

let producers = 2
let consumers = 2
let per_producer = 20_000

let () =
  let q = Q.create ~max_threads:(producers + consumers) () in
  let produced = Atomic.make 0 in
  let consumed = Atomic.make 0 in
  let sum = Atomic.make 0 in
  let producer pid () =
    let c = Q.ctx q pid in
    for i = 1 to per_producer do
      Q.enqueue c i;
      ignore (Atomic.fetch_and_add produced 1)
    done;
    Q.flush c
  in
  let consumer pid () =
    let c = Q.ctx q pid in
    let continue = ref true in
    while !continue do
      match Q.dequeue c with
      | Some v ->
          ignore (Atomic.fetch_and_add sum v);
          ignore (Atomic.fetch_and_add consumed 1)
      | None ->
          if Atomic.get produced >= producers * per_producer
             && Atomic.get consumed >= Atomic.get produced
          then continue := false
          else Domain.cpu_relax ()
    done;
    Q.flush c
  in
  let ds =
    List.init producers (fun i -> Domain.spawn (producer i))
    @ List.init consumers (fun i -> Domain.spawn (consumer (producers + i)))
  in
  List.iter Domain.join ds;
  let expected = producers * (per_producer * (per_producer + 1) / 2) in
  Printf.printf "produced %d, consumed %d, sum=%d (expected %d)\n" (Atomic.get produced)
    (Atomic.get consumed) (Atomic.get sum) expected;
  Q.teardown q;
  Printf.printf "live objects after teardown: %d (0 = weak pointers broke every cycle)\n"
    (Q.live_objects q);
  assert (Atomic.get sum = expected);
  assert (Q.live_objects q = 0)
