(* Michael-Scott queue tests: FIFO against a model, conservation under
   contention, per-producer ordering, and leak freedom — across manual
   schemes and RC conversions. *)

module Make_tests (Q : sig
  val name : string [@@warning "-32"]

  type t
  type ctx

  val create : ?slots_per_thread:int -> ?epoch_freq:int -> max_threads:int -> unit -> t
  val ctx : t -> int -> ctx
  val enqueue : ctx -> int -> unit
  val dequeue : ctx -> int option
  val flush : ctx -> unit
  val live_objects : t -> int
  val teardown : t -> unit
end) (L : sig
  val label : string
end) =
struct
  let t name speed f = Alcotest.test_case (L.label ^ ": " ^ name) speed f

  let fifo_model () =
    let q = Q.create ~max_threads:1 () in
    let c = Q.ctx q 0 in
    let model = Queue.create () in
    let rng = Repro_util.Rng.create ~seed:4242 in
    Alcotest.(check (option int)) "empty" None (Q.dequeue c);
    for i = 1 to 3_000 do
      if Repro_util.Rng.bool rng then begin
        Q.enqueue c i;
        Queue.push i model
      end
      else Alcotest.(check (option int)) "fifo agrees" (Queue.take_opt model) (Q.dequeue c)
    done;
    let rec drain () =
      let expected = Queue.take_opt model in
      let got = Q.dequeue c in
      Alcotest.(check (option int)) "drain agrees" expected got;
      if got <> None then drain ()
    in
    drain ();
    Q.flush c;
    Q.teardown q;
    Alcotest.(check int) "leak free" 0 (Q.live_objects q)

  let conservation () =
    let p = 4 in
    let q = Q.create ~max_threads:(p + 1) () in
    let c0 = Q.ctx q 0 in
    for i = 1 to p * 4 do
      Q.enqueue c0 i
    done;
    let failures = Atomic.make 0 in
    let worker pid () =
      let c = Q.ctx q (pid + 1) in
      try
        for _ = 1 to 4_000 do
          match Q.dequeue c with Some v -> Q.enqueue c v | None -> ()
        done;
        Q.flush c
      with e ->
        ignore (Atomic.fetch_and_add failures 1);
        Printf.eprintf "[%s msq %d] %s\n%!" L.label pid (Printexc.to_string e)
    in
    let ds = List.init p (fun pid -> Domain.spawn (worker pid)) in
    List.iter Domain.join ds;
    Alcotest.(check int) "no failures" 0 (Atomic.get failures);
    let rec drain acc = match Q.dequeue c0 with Some v -> drain (v :: acc) | None -> acc in
    Alcotest.(check (list int)) "conserved"
      (List.init (p * 4) (fun i -> i + 1))
      (List.sort compare (drain []));
    Q.flush c0;
    Q.teardown q;
    Alcotest.(check int) "leak free" 0 (Q.live_objects q)

  let per_producer_order () =
    let q = Q.create ~max_threads:3 () in
    let n = 1_500 in
    let producer pid () =
      let c = Q.ctx q pid in
      for i = 0 to n - 1 do
        Q.enqueue c ((pid * 1_000_000) + i)
      done;
      Q.flush c
    in
    let consumer () =
      let c = Q.ctx q 2 in
      let seen = Array.make 2 (-1) in
      let got = ref 0 in
      let ok = ref true in
      while !got < 2 * n do
        match Q.dequeue c with
        | None -> Domain.cpu_relax ()
        | Some v ->
            incr got;
            let pid = v / 1_000_000 in
            let i = v mod 1_000_000 in
            if i <= seen.(pid) then ok := false;
            seen.(pid) <- i
      done;
      Q.flush c;
      !ok
    in
    let p1 = Domain.spawn (producer 0) in
    let p2 = Domain.spawn (producer 1) in
    let cons = Domain.spawn consumer in
    Domain.join p1;
    Domain.join p2;
    Alcotest.(check bool) "per-producer order" true (Domain.join cons);
    Q.teardown q;
    Alcotest.(check int) "leak free" 0 (Q.live_objects q)

  let tests =
    [
      t "fifo vs model" `Quick fifo_model;
      t "conservation" `Slow conservation;
      t "per-producer order" `Slow per_producer_order;
    ]
end

module M_ebr = Ds.Ms_queue_manual.Make (Smr.Ebr)
module M_hp = Ds.Ms_queue_manual.Make (Smr.Hp)
module M_ibr = Ds.Ms_queue_manual.Make (Smr.Ibr)
module M_hyaline = Ds.Ms_queue_manual.Make (Smr.Hyaline)
module M_he = Ds.Ms_queue_manual.Make (Smr.Hazard_eras)
module M_ptb = Ds.Ms_queue_manual.Make (Smr.Ptb)
module Mr_ebr = Ds.Ms_queue_rc.Make (Cdrc.Make (Smr.Ebr))
module Mr_hp = Ds.Ms_queue_rc.Make (Cdrc.Make (Smr.Hp))
module Mr_ibr = Ds.Ms_queue_rc.Make (Cdrc.Make (Smr.Ibr))

module T_m_ebr =
  Make_tests
    (M_ebr)
    (struct
      let label = "msq/EBR"
    end)

module T_m_hp =
  Make_tests
    (M_hp)
    (struct
      let label = "msq/HP"
    end)

module T_m_ibr =
  Make_tests
    (M_ibr)
    (struct
      let label = "msq/IBR"
    end)

module T_m_hyaline =
  Make_tests
    (M_hyaline)
    (struct
      let label = "msq/Hyaline"
    end)

module T_m_he =
  Make_tests
    (M_he)
    (struct
      let label = "msq/HE"
    end)

module T_m_ptb =
  Make_tests
    (M_ptb)
    (struct
      let label = "msq/PTB"
    end)

module T_mr_ebr =
  Make_tests
    (Mr_ebr)
    (struct
      let label = "msq/RCEBR"
    end)

module T_mr_hp =
  Make_tests
    (Mr_hp)
    (struct
      let label = "msq/RCHP"
    end)

module T_mr_ibr =
  Make_tests
    (Mr_ibr)
    (struct
      let label = "msq/RCIBR"
    end)

let () =
  Alcotest.run "ms_queue"
    [
      ("ebr", T_m_ebr.tests);
      ("hp", T_m_hp.tests);
      ("ibr", T_m_ibr.tests);
      ("hyaline", T_m_hyaline.tests);
      ("he", T_m_he.tests);
      ("ptb", T_m_ptb.tests);
      ("rcebr", T_mr_ebr.tests);
      ("rchp", T_mr_hp.tests);
      ("rcibr", T_mr_ibr.tests);
    ]
