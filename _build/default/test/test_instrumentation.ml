(* Tests for the instrumentation and the small type-erasure modules:
   snapshot fast/slow path accounting (the Fig 11 fallback mechanism),
   weak-snapshot fallback under slot exhaustion, identity tokens, and
   deferred-op plumbing. *)

module Ident = Smr.Ident

(* ---------------- Ident ---------------- *)

let test_ident_identity () =
  let a = ref 1 and b = ref 1 in
  Alcotest.(check bool) "same object equal" true (Ident.equal (Ident.of_val a) (Ident.of_val a));
  Alcotest.(check bool) "distinct objects differ" false
    (Ident.equal (Ident.of_val a) (Ident.of_val b));
  Alcotest.(check bool) "null is null" true (Ident.is_null Ident.null);
  Alcotest.(check bool) "object is not null" false (Ident.is_null (Ident.of_val a));
  Alcotest.(check bool) "null equals null" true (Ident.equal Ident.null Ident.null)

let test_ident_stable_across_gc () =
  let a = Array.make 10 0 in
  let id = Ident.of_val a in
  (* Force minor+major collections; physical identity must survive the
     moving GC. *)
  for _ = 1 to 5 do
    ignore (Sys.opaque_identity (Array.make 10_000 0));
    Gc.full_major ()
  done;
  Alcotest.(check bool) "identity stable across GC" true (Ident.equal id (Ident.of_val a))

(* ---------------- Deferred ---------------- *)

let test_deferred_run () =
  let got = ref (-1) in
  let op : Smr.Deferred.t = fun pid -> got := pid in
  Smr.Deferred.run op ~pid:3;
  Alcotest.(check int) "pid passed" 3 !got

(* ---------------- snapshot_stats ---------------- *)

module R_hp = Cdrc.Make (Smr.Hp)
module R_ebr = Cdrc.Make (Smr.Ebr)

let test_fast_path_counting () =
  let rt = R_ebr.create ~max_threads:1 () in
  let th = R_ebr.thread rt 0 in
  R_ebr.critically th (fun () ->
      let p = R_ebr.Shared.make th 1 in
      let cell = R_ebr.Asp.make th (R_ebr.Shared.ptr p) in
      for _ = 1 to 10 do
        let s = R_ebr.Asp.get_snapshot th cell in
        R_ebr.Snapshot.drop th s
      done;
      R_ebr.Shared.drop th p;
      R_ebr.Asp.clear th cell);
  let fast, slow = R_ebr.snapshot_stats rt in
  Alcotest.(check int) "10 fast" 10 fast;
  Alcotest.(check int) "0 slow (region scheme never exhausts)" 0 slow;
  R_ebr.quiesce rt

let test_slow_path_counting_on_exhaustion () =
  (* 2 announcement slots: the first two snapshots are fast, the rest
     spill to the count-increment slow path. *)
  let rt = R_hp.create ~slots_per_thread:2 ~max_threads:1 () in
  let th = R_hp.thread rt 0 in
  R_hp.critically th (fun () ->
      let p = R_hp.Shared.make th 1 in
      let cell = R_hp.Asp.make th (R_hp.Shared.ptr p) in
      let snaps = List.init 5 (fun _ -> R_hp.Asp.get_snapshot th cell) in
      let protected_count =
        List.length (List.filter R_hp.Snapshot.is_protected snaps)
      in
      Alcotest.(check int) "2 guard-protected" 2 protected_count;
      let fast, slow = R_hp.snapshot_stats rt in
      Alcotest.(check int) "fast count" 2 fast;
      Alcotest.(check int) "slow count" 3 slow;
      List.iter (R_hp.Snapshot.drop th) snaps;
      R_hp.Shared.drop th p;
      R_hp.Asp.clear th cell);
  R_hp.quiesce rt

let test_weak_snapshot_fallback_on_exhaustion () =
  (* With 1 dispose slot, the second concurrent weak snapshot takes the
     Fig 9 line 26 fallback (strong increment) and is not
     guard-protected. *)
  let rt = R_hp.create ~support_weak:true ~slots_per_thread:1 ~max_threads:1 () in
  let th = R_hp.thread rt 0 in
  R_hp.critically th (fun () ->
      let p = R_hp.Shared.make th 9 in
      let w = R_hp.Weak.of_shared th p in
      let cell = R_hp.Awp.make th (R_hp.Weak.ptr w) in
      let ws1 = R_hp.Awp.get_snapshot th cell in
      let ws2 = R_hp.Awp.get_snapshot th cell in
      Alcotest.(check bool) "first uses dispose guard" true
        (R_hp.Weak_snapshot.is_protected ws1);
      Alcotest.(check bool) "second fell back to an increment" false
        (R_hp.Weak_snapshot.is_protected ws2);
      (* Both must read the value regardless of path. *)
      Alcotest.(check int) "ws1 reads" 9 (R_hp.Weak_snapshot.get ws1);
      Alcotest.(check int) "ws2 reads" 9 (R_hp.Weak_snapshot.get ws2);
      R_hp.Weak_snapshot.drop th ws1;
      R_hp.Weak_snapshot.drop th ws2;
      R_hp.Weak.drop th w;
      R_hp.Shared.drop th p;
      R_hp.Awp.clear th cell);
  R_hp.quiesce rt;
  Alcotest.(check int) "no leak" 0 (R_hp.live_objects rt)

(* The driver surfaces the slow-path share for RC structures. *)
let test_set_intf_snapshot_stats () =
  let module T = Ds.Nm_tree_rc.Make (R_hp) in
  let t = T.create ~slots_per_thread:2 ~max_threads:1 () in
  let c = T.ctx t 0 in
  for k = 1 to 200 do
    ignore (T.insert c k)
  done;
  (* Deep range queries exhaust 2 slots constantly. *)
  ignore (T.range_query c 0 200);
  (match T.snapshot_stats t with
  | Some (fast, slow) ->
      Alcotest.(check bool) "counted" true (fast > 0);
      Alcotest.(check bool) "slow path exercised" true (slow > 0)
  | None -> Alcotest.fail "RC tree must report stats");
  let module M = Ds.Nm_tree_manual.Make (Smr.Ebr) in
  let m = M.create ~max_threads:1 () in
  Alcotest.(check bool) "manual reports none" true (M.snapshot_stats m = None);
  M.teardown m;
  T.teardown t

let () =
  Alcotest.run "instrumentation"
    [
      ( "ident",
        [
          Alcotest.test_case "identity" `Quick test_ident_identity;
          Alcotest.test_case "stable across GC" `Quick test_ident_stable_across_gc;
        ] );
      ("deferred", [ Alcotest.test_case "run" `Quick test_deferred_run ]);
      ( "snapshot stats",
        [
          Alcotest.test_case "fast path counting" `Quick test_fast_path_counting;
          Alcotest.test_case "slow path on exhaustion" `Quick test_slow_path_counting_on_exhaustion;
          Alcotest.test_case "weak fallback on exhaustion" `Quick
            test_weak_snapshot_fallback_on_exhaustion;
          Alcotest.test_case "Set_intf stats" `Quick test_set_intf_snapshot_stats;
        ] );
    ]
