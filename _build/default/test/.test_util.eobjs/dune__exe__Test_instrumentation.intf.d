test/test_instrumentation.mli:
