test/test_sticky.mli:
