test/test_ds.ml: Alcotest Array Atomic Cdrc Domain Ds Int List Printexc Printf Repro_util Set Smr
