test/test_scheme_details.ml: Alcotest List Option Smr Sticky
