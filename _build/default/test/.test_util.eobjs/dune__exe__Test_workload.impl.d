test/test_workload.ml: Alcotest Ds List Repro_util Smr Workload
