test/test_acquire_retire.mli:
