test/test_ms_queue.ml: Alcotest Array Atomic Cdrc Domain Ds List Printexc Printf Queue Repro_util Smr
