test/test_cdrc.mli:
