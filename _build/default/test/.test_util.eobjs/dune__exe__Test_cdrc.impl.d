test/test_cdrc.ml: Alcotest Array Atomic Cdrc Domain List Printexc Printf Repro_util Smr Sys
