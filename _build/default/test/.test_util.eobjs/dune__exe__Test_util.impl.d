test/test_util.ml: Alcotest Array Backoff Domain Fun List Padded Repro_util Rng Stats
