test/test_lincheck.ml: Alcotest Cdrc Domain Ds Format Int Lincheck List Repro_util Set Smr String
