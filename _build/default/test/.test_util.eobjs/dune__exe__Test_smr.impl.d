test/test_smr.ml: Acquire_retire Alcotest Array Atomic Domain List Printexc Printf Repro_util Simheap Smr Sys
