test/test_qcheck.ml: Alcotest Array Cdrc Ds Fun Int List QCheck2 QCheck_alcotest Queue Repro_util Set Smr
