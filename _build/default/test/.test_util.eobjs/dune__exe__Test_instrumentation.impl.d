test/test_instrumentation.ml: Alcotest Array Cdrc Ds Gc List Smr Sys
