test/test_sticky.ml: Alcotest Array Atomic Domain List QCheck2 QCheck_alcotest Sticky
