test/test_qcheck.mli:
