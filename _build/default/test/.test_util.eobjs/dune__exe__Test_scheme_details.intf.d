test/test_scheme_details.mli:
