test/test_acquire_retire.ml: Acquire_retire Alcotest Array Atomic Simheap Smr
