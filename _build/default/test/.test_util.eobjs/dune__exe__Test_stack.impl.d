test/test_stack.ml: Alcotest Array Atomic Cdrc Domain Ds Fun List Printexc Printf Repro_util Smr
