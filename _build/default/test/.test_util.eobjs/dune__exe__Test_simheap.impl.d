test/test_simheap.ml: Alcotest Domain Format List Simheap
