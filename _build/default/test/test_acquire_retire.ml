(* Tests of the generalized acquire-retire layer itself (Fig 2):
   allocation birth tags, critical-section wrappers, deferred-op
   cascades, and pid routing of ejected operations. *)

module Make_tests (S : Smr.Smr_intf.S) = struct
  module Ar = Acquire_retire.Make (S)

  let t name f = Alcotest.test_case (S.name ^ ": " ^ name) `Quick f

  let birth_tags_monotone () =
    let ar = Ar.create ~epoch_freq:5 ~max_threads:1 () in
    let prev = ref min_int in
    for _ = 1 to 100 do
      let m = Ar.alloc ar ~pid:0 () in
      Alcotest.(check bool) "monotone" true (m.Ar.birth >= !prev);
      prev := m.Ar.birth;
      Ar.retire_free ar ~pid:0 m
    done;
    (* IBR/HE advance their clock every 5 allocations here; the tag
       must actually move for the epoch-based schemes. *)
    if S.name = "IBR" || S.name = "HE" then
      Alcotest.(check bool) "epochs advanced" true (!prev >= 19);
    Ar.quiesce ar;
    Alcotest.(check int) "no leak" 0 (Simheap.live (Ar.heap ar))

  let critically_ends_section_on_exception () =
    let ar = Ar.create ~max_threads:1 () in
    (match Ar.critically ar ~pid:0 (fun () -> failwith "boom") with
    | _ -> Alcotest.fail "expected exception"
    | exception Failure _ -> ());
    (* If the section leaked, this retire would never eject. *)
    let m = Ar.alloc ar ~pid:0 () in
    Ar.retire_free ar ~pid:0 m;
    Ar.quiesce ar;
    Alcotest.(check int) "section was closed" 0 (Simheap.live (Ar.heap ar))

  let cascading_retires () =
    (* A deferred op that retires another object: quiesce must chase
       the cascade to the end (linked chain of 50 objects). *)
    let ar = Ar.create ~max_threads:1 () in
    let ms = Array.init 50 (fun i -> Ar.alloc ar ~pid:0 i) in
    let rec retire_chain i =
      if i < 50 then
        Ar.retire ar ~pid:0 ms.(i) (fun _pid ->
            Simheap.free ms.(i).Ar.block;
            retire_chain (i + 1))
    in
    retire_chain 0;
    Ar.quiesce ar;
    Alcotest.(check int) "whole chain reclaimed" 0 (Simheap.live (Ar.heap ar))

  let ejected_ops_receive_executing_pid () =
    let ar = Ar.create ~cleanup_freq:1 ~max_threads:3 () in
    let m = Ar.alloc ar ~pid:0 () in
    let seen = ref (-1) in
    Ar.retire ar ~pid:0 m (fun pid -> seen := pid);
    (* Drain from pid 2: the op must observe pid 2 (Hyaline can eject
       cross-thread; the closure must not assume the retiring pid). *)
    Ar.drain ar ~pid:2;
    (* For per-thread-queue schemes the entry lives in pid 0's queue, so
       drain it there too. *)
    if !seen = -1 then Ar.drain ar ~pid:0;
    Alcotest.(check bool) "pid routed" true (!seen = 0 || !seen = 2);
    Simheap.free m.Ar.block

  let try_acquire_settles_on_current_value () =
    let ar = Ar.create ~max_threads:1 () in
    let m1 = Ar.alloc ar ~pid:0 1 in
    let cell = Atomic.make m1 in
    Ar.begin_critical_section ar ~pid:0;
    (match Ar.try_acquire ar ~pid:0 ~read:(fun () -> Atomic.get cell) ~ident:Ar.ident with
    | Some (v, g) ->
        Alcotest.(check int) "value" 1 (Ar.get v);
        Ar.release ar ~pid:0 g
    | None -> Alcotest.fail "unexpected exhaustion with free slots");
    Ar.end_critical_section ar ~pid:0;
    Ar.retire_free ar ~pid:0 m1;
    Ar.quiesce ar

  let tests =
    [
      t "birth tags monotone" birth_tags_monotone;
      t "critically closes on exception" critically_ends_section_on_exception;
      t "cascading retires" cascading_retires;
      t "ejected ops receive pid" ejected_ops_receive_executing_pid;
      t "try_acquire settles" try_acquire_settles_on_current_value;
    ]
end

module T_ebr = Make_tests (Smr.Ebr)
module T_ibr = Make_tests (Smr.Ibr)
module T_hyaline = Make_tests (Smr.Hyaline)
module T_hp = Make_tests (Smr.Hp)
module T_he = Make_tests (Smr.Hazard_eras)
module T_ptb = Make_tests (Smr.Ptb)

let () =
  Alcotest.run "acquire_retire"
    [
      ("ebr", T_ebr.tests);
      ("ibr", T_ibr.tests);
      ("hyaline", T_hyaline.tests);
      ("hp", T_hp.tests);
      ("hazard_eras", T_he.tests);
      ("ptb", T_ptb.tests);
    ]
