(* Treiber stack tests (manual across schemes + RC), plus the Leaky
   baseline scheme's semantics: nothing reclaims until teardown. *)

module Make_tests (St : sig
  val name : string [@@warning "-32"]

  type t
  type ctx

  val create : ?slots_per_thread:int -> ?epoch_freq:int -> max_threads:int -> unit -> t
  val ctx : t -> int -> ctx
  val push : ctx -> int -> unit
  val pop : ctx -> int option
  val flush : ctx -> unit
  val size : t -> int
  val live_objects : t -> int
  val teardown : t -> unit
end) (L : sig
  val label : string
end) =
struct
  let t name speed f = Alcotest.test_case (L.label ^ ": " ^ name) speed f

  let lifo_order () =
    let s = St.create ~max_threads:1 () in
    let c = St.ctx s 0 in
    Alcotest.(check (option int)) "empty pop" None (St.pop c);
    for i = 1 to 50 do
      St.push c i
    done;
    Alcotest.(check int) "size" 50 (St.size s);
    for i = 50 downto 1 do
      Alcotest.(check (option int)) "lifo" (Some i) (St.pop c)
    done;
    Alcotest.(check (option int)) "empty again" None (St.pop c);
    St.flush c;
    St.teardown s;
    Alcotest.(check int) "leak free" 0 (St.live_objects s)

  let random_vs_model () =
    let s = St.create ~max_threads:1 () in
    let c = St.ctx s 0 in
    let model = ref [] in
    let rng = Repro_util.Rng.create ~seed:77 in
    for i = 1 to 3_000 do
      if Repro_util.Rng.bool rng then begin
        St.push c i;
        model := i :: !model
      end
      else begin
        let expected = match !model with [] -> None | x :: rest -> (model := rest; Some x) in
        Alcotest.(check (option int)) "pop agrees" expected (St.pop c)
      end
    done;
    Alcotest.(check int) "size agrees" (List.length !model) (St.size s);
    St.flush c;
    St.teardown s;
    Alcotest.(check int) "leak free" 0 (St.live_objects s)

  let concurrent_conservation () =
    let p = 4 in
    let per = 2_000 in
    let s = St.create ~max_threads:p () in
    let popped = Array.make p [] in
    let failures = Atomic.make 0 in
    let worker pid () =
      let c = St.ctx s pid in
      try
        for i = 0 to per - 1 do
          St.push c ((pid * per) + i);
          if i land 1 = 0 then
            match St.pop c with
            | Some v -> popped.(pid) <- v :: popped.(pid)
            | None -> ()
        done;
        St.flush c
      with e ->
        ignore (Atomic.fetch_and_add failures 1);
        Printf.eprintf "[%s stack %d] %s\n%!" L.label pid (Printexc.to_string e)
    in
    let ds = List.init p (fun pid -> Domain.spawn (worker pid)) in
    List.iter Domain.join ds;
    Alcotest.(check int) "no failures" 0 (Atomic.get failures);
    (* Drain the remainder; the multiset of all values must be exactly
       the pushed set. *)
    let c0 = St.ctx s 0 in
    let rec drain acc = match St.pop c0 with Some v -> drain (v :: acc) | None -> acc in
    let leftovers = drain [] in
    let all = List.sort compare (leftovers @ List.concat (Array.to_list popped)) in
    let expected = List.init (p * per) Fun.id in
    Alcotest.(check (list int)) "conserved" expected all;
    St.flush c0;
    St.teardown s;
    Alcotest.(check int) "leak free" 0 (St.live_objects s)

  let tests =
    [
      t "lifo order" `Quick lifo_order;
      t "random vs model" `Quick random_vs_model;
      t "concurrent conservation" `Slow concurrent_conservation;
    ]
end

module S_ebr = Ds.Treiber_stack_manual.Make (Smr.Ebr)
module S_hp = Ds.Treiber_stack_manual.Make (Smr.Hp)
module S_ibr = Ds.Treiber_stack_manual.Make (Smr.Ibr)
module S_hyaline = Ds.Treiber_stack_manual.Make (Smr.Hyaline)
module S_he = Ds.Treiber_stack_manual.Make (Smr.Hazard_eras)
module S_leaky = Ds.Treiber_stack_manual.Make (Smr.Leaky)
module Sr_ebr = Ds.Treiber_stack_rc.Make (Cdrc.Make (Smr.Ebr))
module Sr_hp = Ds.Treiber_stack_rc.Make (Cdrc.Make (Smr.Hp))

module T_s_ebr =
  Make_tests
    (S_ebr)
    (struct
      let label = "stack/EBR"
    end)

module T_s_hp =
  Make_tests
    (S_hp)
    (struct
      let label = "stack/HP"
    end)

module T_s_ibr =
  Make_tests
    (S_ibr)
    (struct
      let label = "stack/IBR"
    end)

module T_s_hyaline =
  Make_tests
    (S_hyaline)
    (struct
      let label = "stack/Hyaline"
    end)

module T_s_he =
  Make_tests
    (S_he)
    (struct
      let label = "stack/HE"
    end)

module T_s_leaky =
  Make_tests
    (S_leaky)
    (struct
      let label = "stack/None"
    end)

module T_sr_ebr =
  Make_tests
    (Sr_ebr)
    (struct
      let label = "stack/RCEBR"
    end)

module T_sr_hp =
  Make_tests
    (Sr_hp)
    (struct
      let label = "stack/RCHP"
    end)

(* Leaky-specific semantics: retired nodes stay resident until
   teardown. *)
let test_leaky_retains () =
  let s = S_leaky.create ~max_threads:1 () in
  let c = S_leaky.ctx s 0 in
  for i = 1 to 100 do
    S_leaky.push c i
  done;
  for _ = 1 to 100 do
    ignore (S_leaky.pop c)
  done;
  S_leaky.flush c;
  (* Everything popped was retired but never reclaimed. *)
  Alcotest.(check int) "retained" 100 (S_leaky.live_objects s);
  S_leaky.teardown s;
  Alcotest.(check int) "teardown reclaims" 0 (S_leaky.live_objects s)

let () =
  Alcotest.run "stack"
    [
      ("ebr", T_s_ebr.tests);
      ("hp", T_s_hp.tests);
      ("ibr", T_s_ibr.tests);
      ("hyaline", T_s_hyaline.tests);
      ("he", T_s_he.tests);
      ("leaky", T_s_leaky.tests @ [ Alcotest.test_case "None retains until teardown" `Quick test_leaky_retains ]);
      ("rcebr", T_sr_ebr.tests);
      ("rchp", T_sr_hp.tests);
    ]
