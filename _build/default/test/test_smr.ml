(* Scheme-generic tests of the SMR implementations, instantiated for
   EBR, IBR, Hyaline, HP, HE, and PTB. The stress test is the central safety
   property: under concurrent replace-and-retire churn, a reader that
   followed the announce/confirm protocol never dereferences a
   reclaimed object (Simheap poisoning would raise), and at quiescence
   nothing leaks. *)

module Ident = Smr.Ident

module Make_tests (S : Smr.Smr_intf.S) = struct
  module Ar = Acquire_retire.Make (S)

  let t name speed f = Alcotest.test_case (S.name ^ ": " ^ name) speed f

  (* -------------------- lifecycle unit tests ----------------------- *)

  let retire_then_eject_unprotected () =
    let s = S.create ~cleanup_freq:1 ~max_threads:2 () in
    let obj = ref 0 in
    let hits = ref 0 in
    let birth = S.alloc_hook s ~pid:0 in
    S.retire s ~pid:0 (Ident.of_val obj) ~birth (fun _ -> incr hits);
    (* Nothing is protected: a forced eject must surface the op. *)
    let ops = S.eject ~force:true s ~pid:0 in
    List.iter (fun op -> op 0) ops;
    Alcotest.(check int) "op ran" 1 !hits;
    Alcotest.(check int) "queue empty" 0 (S.retired_count s ~pid:0)

  let blocked_while_protected () =
    let s = S.create ~cleanup_freq:1 ~max_threads:2 () in
    let obj = ref 0 in
    let hits = ref 0 in
    (* Reader (pid 1): critical section + confirmed guard on obj. *)
    S.begin_critical_section s ~pid:1;
    let id = Ident.of_val obj in
    let g = S.acquire s ~pid:1 id in
    while not (S.confirm s ~pid:1 g id) do
      ()
    done;
    (* Writer (pid 0): allocates (advancing epochs) then retires obj. *)
    let birth = S.alloc_hook s ~pid:0 in
    S.retire s ~pid:0 id ~birth (fun _ -> incr hits);
    let ops = S.eject ~force:true s ~pid:0 in
    Alcotest.(check int) "blocked while protected" 0 (List.length ops);
    Alcotest.(check int) "op not run while protected" 0 !hits;
    (* The entry is still pending somewhere: in the retirer's queue, or
       (PTB) handed off to the pinning guard. *)
    (* Release protection; now it must eject — for PTB the buck lands
       in the releaser's queue, so drain both pids. *)
    S.release s ~pid:1 g;
    S.end_critical_section s ~pid:1;
    List.iter (fun op -> op 0) (S.eject ~force:true s ~pid:0);
    List.iter (fun op -> op 1) (S.eject ~force:true s ~pid:1);
    Alcotest.(check int) "ejected after release" 1 !hits

  let multi_retire_ejects_each_once () =
    (* Def 3.3: the same pointer retired n times is ejected n times. *)
    let s = S.create ~cleanup_freq:1 ~max_threads:1 () in
    let obj = ref 0 in
    let hits = ref 0 in
    let id = Ident.of_val obj in
    for _ = 1 to 5 do
      let birth = S.alloc_hook s ~pid:0 in
      S.retire s ~pid:0 id ~birth (fun _ -> incr hits)
    done;
    let rec drain () =
      match S.eject ~force:true s ~pid:0 with
      | [] -> ()
      | ops ->
          List.iter (fun op -> op 0) ops;
          drain ()
    in
    drain ();
    Alcotest.(check int) "five ejects" 5 !hits

  let multi_retire_blocked_together () =
    let s = S.create ~cleanup_freq:1 ~max_threads:2 () in
    let obj = ref 0 in
    let hits = ref 0 in
    let id = Ident.of_val obj in
    S.begin_critical_section s ~pid:1;
    let g = S.acquire s ~pid:1 id in
    while not (S.confirm s ~pid:1 g id) do
      ()
    done;
    for _ = 1 to 3 do
      let birth = S.alloc_hook s ~pid:0 in
      S.retire s ~pid:0 id ~birth (fun _ -> incr hits)
    done;
    List.iter (fun op -> op 0) (S.eject ~force:true s ~pid:0);
    Alcotest.(check int) "all blocked" 0 !hits;
    S.release s ~pid:1 g;
    S.end_critical_section s ~pid:1;
    let rec drain pid =
      match S.eject ~force:true s ~pid with
      | [] -> ()
      | ops ->
          List.iter (fun op -> op pid) ops;
          drain pid
    in
    drain 0;
    drain 1;
    Alcotest.(check int) "all released" 3 !hits

  let amortization_gates_scans () =
    let s = S.create ~cleanup_freq:1000 ~max_threads:1 () in
    let obj = ref 0 in
    let birth = S.alloc_hook s ~pid:0 in
    S.retire s ~pid:0 (Ident.of_val obj) ~birth (fun _ -> ());
    (* Hyaline has no per-thread amortization (global safe pool), so the
       gate only applies to the queue-based schemes. *)
    if S.name <> "Hyaline" then begin
      Alcotest.(check (list reject)) "unforced eject empty"
        []
        (List.map (fun _ -> Alcotest.fail "op") (S.eject s ~pid:0));
      Alcotest.(check int) "entry retained" 1 (S.retired_count s ~pid:0)
    end;
    ignore (S.eject ~force:true s ~pid:0)

  let drain_all_returns_everything () =
    let s = S.create ~cleanup_freq:1_000_000 ~max_threads:4 () in
    let hits = ref 0 in
    for pid = 0 to 3 do
      for _ = 1 to 10 do
        let obj = ref 0 in
        let birth = S.alloc_hook s ~pid in
        S.retire s ~pid (Ident.of_val obj) ~birth (fun _ -> incr hits)
      done
    done;
    let rec go () =
      match S.drain_all s with
      | [] -> ()
      | ops ->
          List.iter (fun op -> op 0) ops;
          go ()
    in
    go ();
    Alcotest.(check int) "all 40 ops" 40 !hits

  let try_acquire_exhaustion () =
    (* Protected-pointer schemes run out of slots; region schemes never
       do. *)
    let s = S.create ~slots_per_thread:2 ~max_threads:1 () in
    let obj = ref 0 in
    let id = Ident.of_val obj in
    S.begin_critical_section s ~pid:0;
    let g1 = S.try_acquire s ~pid:0 id in
    let g2 = S.try_acquire s ~pid:0 id in
    let g3 = S.try_acquire s ~pid:0 id in
    if S.is_protected_region then
      Alcotest.(check bool) "region never exhausts" true (g3 <> None)
    else begin
      Alcotest.(check bool) "two slots acquired" true (g1 <> None && g2 <> None);
      Alcotest.(check bool) "third exhausts" true (g3 = None);
      (* Releasing returns the slot to the pool. *)
      (match g1 with Some g -> S.release s ~pid:0 g | None -> ());
      Alcotest.(check bool) "slot reusable" true (S.try_acquire s ~pid:0 id <> None)
    end;
    S.end_critical_section s ~pid:0

  let reserved_acquire_always_succeeds () =
    let s = S.create ~slots_per_thread:1 ~max_threads:1 () in
    let obj = ref 0 in
    let id = Ident.of_val obj in
    S.begin_critical_section s ~pid:0;
    (* Exhaust the free slots, then the reserved acquire still works. *)
    let _ = S.try_acquire s ~pid:0 id in
    let g = S.acquire s ~pid:0 id in
    while not (S.confirm s ~pid:0 g id) do
      ()
    done;
    S.release s ~pid:0 g;
    S.end_critical_section s ~pid:0;
    Alcotest.(check pass) "reserved acquire ok" () ()

  (* -------------------- acquire-retire layer ----------------------- *)

  let ar_managed_lifecycle () =
    let ar = Ar.create ~cleanup_freq:1 ~max_threads:1 () in
    let m = Ar.alloc ar ~pid:0 "hello" in
    Alcotest.(check string) "get" "hello" (Ar.get m);
    Alcotest.(check bool) "live" true (Ar.is_live m);
    Ar.retire_free ar ~pid:0 m;
    Ar.drain ar ~pid:0;
    Alcotest.(check bool) "reclaimed" false (Ar.is_live m);
    (match Ar.get m with
    | _ -> Alcotest.fail "expected Use_after_free"
    | exception Simheap.Use_after_free _ -> ());
    Alcotest.(check int) "heap empty" 0 (Simheap.live (Ar.heap ar))

  let ar_typed_acquire_protocol () =
    let ar = Ar.create ~cleanup_freq:1 ~max_threads:2 () in
    let m1 = Ar.alloc ar ~pid:0 1 in
    let cell = Atomic.make m1 in
    Ar.begin_critical_section ar ~pid:1;
    let v, g =
      Ar.acquire ar ~pid:1 ~read:(fun () -> Atomic.get cell) ~ident:Ar.ident
    in
    Alcotest.(check int) "read value" 1 (Ar.get v);
    (* Writer swaps in a new object and retires the old one. *)
    let m2 = Ar.alloc ar ~pid:0 2 in
    let old = Atomic.exchange cell m2 in
    Ar.retire_free ar ~pid:0 old;
    Ar.drain ar ~pid:0;
    (* Still protected: the object must not have been freed. *)
    Alcotest.(check int) "still readable under guard" 1 (Ar.get v);
    Ar.release ar ~pid:1 g;
    Ar.end_critical_section ar ~pid:1;
    Ar.drain ar ~pid:0;
    (* PTB hand-off lands in the releaser's queue. *)
    Ar.drain ar ~pid:1;
    Alcotest.(check bool) "freed after release" false (Ar.is_live m1);
    Ar.retire_free ar ~pid:0 m2;
    Ar.quiesce ar;
    Alcotest.(check int) "leak free" 0 (Simheap.live (Ar.heap ar))

  (* -------------------- concurrency stress ------------------------- *)

  (* [nslots] shared cells; writers replace the managed object in a
     random cell and retire-free the old one; readers acquire a random
     cell with the full protocol and dereference. Poisoned derefs raise
     Use_after_free, failing the test. *)
  let stress ~readers ~writers ~iters () =
    let nthreads = readers + writers in
    let ar = Ar.create ~cleanup_freq:32 ~max_threads:nthreads () in
    let nslots = 16 in
    let cells =
      Array.init nslots (fun i -> Atomic.make (Ar.alloc ar ~pid:0 i))
    in
    let failures = Atomic.make 0 in
    let reader pid () =
      let rng = Repro_util.Rng.create ~seed:(pid * 7919) in
      try
        for _ = 1 to iters do
          Ar.begin_critical_section ar ~pid;
          let slot = Repro_util.Rng.int rng nslots in
          (match
             Ar.try_acquire ar ~pid
               ~read:(fun () -> Atomic.get cells.(slot))
               ~ident:Ar.ident
           with
          | Some (v, g) ->
              ignore (Sys.opaque_identity (Ar.get v));
              Ar.release ar ~pid g
          | None ->
              let v, g =
                Ar.acquire ar ~pid
                  ~read:(fun () -> Atomic.get cells.(slot))
                  ~ident:Ar.ident
              in
              ignore (Sys.opaque_identity (Ar.get v));
              Ar.release ar ~pid g);
          Ar.end_critical_section ar ~pid
        done
      with e ->
        ignore (Atomic.fetch_and_add failures 1);
        Printf.eprintf "[%s] reader %d: %s\n%!" S.name pid (Printexc.to_string e)
    in
    let writer pid () =
      let rng = Repro_util.Rng.create ~seed:(pid * 104729) in
      try
        for i = 1 to iters do
          Ar.begin_critical_section ar ~pid;
          let slot = Repro_util.Rng.int rng nslots in
          let nu = Ar.alloc ar ~pid i in
          let old = Atomic.exchange cells.(slot) nu in
          Ar.retire ar ~pid old (fun _ -> Simheap.free old.Ar.block);
          Ar.end_critical_section ar ~pid;
          List.iter (fun op -> op pid) (Ar.eject ar ~pid)
        done
      with e ->
        ignore (Atomic.fetch_and_add failures 1);
        Printf.eprintf "[%s] writer %d: %s\n%!" S.name pid (Printexc.to_string e)
    in
    let domains =
      List.init nthreads (fun pid ->
          Domain.spawn (if pid < readers then reader pid else writer pid))
    in
    List.iter Domain.join domains;
    Alcotest.(check int) "no reader/writer failures" 0 (Atomic.get failures);
    (* Teardown: retire the survivors, then everything must be freed. *)
    Array.iter (fun c -> Ar.retire_free ar ~pid:0 (Atomic.get c)) cells;
    Ar.quiesce ar;
    Alcotest.(check int) "leak free at quiescence" 0 (Simheap.live (Ar.heap ar))

  let tests =
    [
      t "retire/eject unprotected" `Quick retire_then_eject_unprotected;
      t "blocked while protected" `Quick blocked_while_protected;
      t "multi-retire ejects each" `Quick multi_retire_ejects_each_once;
      t "multi-retire blocked together" `Quick multi_retire_blocked_together;
      t "amortization gates scans" `Quick amortization_gates_scans;
      t "drain_all returns everything" `Quick drain_all_returns_everything;
      t "try_acquire exhaustion" `Quick try_acquire_exhaustion;
      t "reserved acquire" `Quick reserved_acquire_always_succeeds;
      t "managed lifecycle" `Quick ar_managed_lifecycle;
      t "typed acquire protocol" `Quick ar_typed_acquire_protocol;
      t "stress 2r/2w" `Slow (stress ~readers:2 ~writers:2 ~iters:20_000);
      t "stress read-heavy" `Slow (stress ~readers:3 ~writers:1 ~iters:20_000);
    ]
end

module T_ebr = Make_tests (Smr.Ebr)
module T_ibr = Make_tests (Smr.Ibr)
module T_hyaline = Make_tests (Smr.Hyaline)
module T_hp = Make_tests (Smr.Hp)
module T_he = Make_tests (Smr.Hazard_eras)
module T_ptb = Make_tests (Smr.Ptb)

let () =
  Alcotest.run "smr"
    [
      ("ebr", T_ebr.tests);
      ("ibr", T_ibr.tests);
      ("hyaline", T_hyaline.tests);
      ("hp", T_hp.tests);
      ("hazard_eras", T_he.tests);
      ("ptb", T_ptb.tests);
    ]
