(* Tests of the reference-counting core: strong pointer semantics
   (Fig 5), weak pointers (Figs 8-9), cycle behaviour, destroy-hook
   cascades, misuse detection, and multi-domain stress. Instantiated
   for all five SMR schemes. *)

module Make_tests (S : Smr.Smr_intf.S) = struct
  module R = Cdrc.Make (S)

  let t name speed f = Alcotest.test_case (R.scheme_name ^ ": " ^ name) speed f

  let with_rt ?support_weak ?slots_per_thread ~max_threads f =
    let rt = R.create ?support_weak ?slots_per_thread ~max_threads () in
    let r = f rt in
    R.quiesce rt;
    r

  (* -------------------- shared_ptr basics --------------------------- *)

  let shared_lifecycle () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    let p = R.Shared.make th 42 in
    Alcotest.(check int) "get" 42 (R.Shared.get p);
    Alcotest.(check int) "use_count 1" 1 (R.Shared.use_count p);
    let q = R.Shared.copy th p in
    Alcotest.(check int) "use_count 2" 2 (R.Shared.use_count p);
    Alcotest.(check bool) "equal" true (R.Shared.equal p q);
    Alcotest.(check int) "live objects" 1 (R.live_objects rt);
    R.Shared.drop th q;
    Alcotest.(check int) "back to 1" 1 (R.Shared.use_count p);
    R.Shared.drop th p;
    R.quiesce rt;
    Alcotest.(check int) "reclaimed" 0 (R.live_objects rt)

  let shared_null () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    let p : int R.shared = R.Shared.null () in
    Alcotest.(check bool) "is_null" true (R.Shared.is_null p);
    Alcotest.(check int) "count 0" 0 (R.Shared.use_count p);
    (match R.Shared.get p with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ());
    R.Shared.drop th p

  let use_after_drop_detected () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    let p = R.Shared.make th 1 in
    R.Shared.drop th p;
    (match R.Shared.get p with
    | _ -> Alcotest.fail "expected Use_after_drop"
    | exception R.Use_after_drop _ -> ());
    match R.Shared.drop th p with
    | _ -> Alcotest.fail "expected Use_after_drop on double drop"
    | exception R.Use_after_drop _ -> ()

  let destroy_hook_runs () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    let destroyed = ref false in
    let p = R.Shared.make th ~destroy:(fun _th _v -> destroyed := true) 7 in
    R.Shared.drop th p;
    R.quiesce rt;
    Alcotest.(check bool) "destroy ran" true !destroyed

  (* -------------------- atomic shared pointers ---------------------- *)

  let asp_store_load () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th @@ fun () ->
    let p = R.Shared.make th 1 in
    let cell = R.Asp.make th (R.Shared.ptr p) in
    let q = R.Asp.load th cell in
    Alcotest.(check int) "loaded value" 1 (R.Shared.get q);
    Alcotest.(check int) "count: p, cell, q" 3 (R.Shared.use_count p);
    let p2 = R.Shared.make th 2 in
    R.Asp.store th cell (R.Shared.ptr p2);
    let q2 = R.Asp.load th cell in
    Alcotest.(check int) "new value" 2 (R.Shared.get q2);
    List.iter (R.Shared.drop th) [ p; q; p2; q2 ];
    R.Asp.clear th cell

  let asp_cas_semantics () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th @@ fun () ->
    let a = R.Shared.make th 1 in
    let b = R.Shared.make th 2 in
    let cell = R.Asp.make th (R.Shared.ptr a) in
    (* Failing CAS: expected doesn't match. *)
    Alcotest.(check bool) "cas fails" false
      (R.Asp.compare_and_swap th cell ~expected:(R.Shared.ptr b)
         ~desired:(R.Shared.ptr b));
    Alcotest.(check int) "b count unchanged" 1 (R.Shared.use_count b);
    (* Succeeding CAS. *)
    Alcotest.(check bool) "cas succeeds" true
      (R.Asp.compare_and_swap th cell ~expected:(R.Shared.ptr a)
         ~desired:(R.Shared.ptr b));
    let cur = R.Asp.load th cell in
    Alcotest.(check int) "cell holds b" 2 (R.Shared.get cur);
    List.iter (R.Shared.drop th) [ a; b; cur ];
    R.Asp.clear th cell

  let asp_cas_null_transitions () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th (fun () ->
    let cell : int R.asp = R.Asp.make_null () in
    let a = R.Shared.make th 5 in
    Alcotest.(check bool) "null -> a" true
      (R.Asp.compare_and_swap th cell ~expected:R.Ptr.null ~desired:(R.Shared.ptr a));
    Alcotest.(check bool) "a -> null" true
      (R.Asp.compare_and_swap th cell ~expected:(R.Shared.ptr a) ~desired:R.Ptr.null);
    R.Shared.drop th a);
    R.quiesce rt;
    Alcotest.(check int) "reclaimed" 0 (R.live_objects rt)

  let asp_marks () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th @@ fun () ->
    let a = R.Shared.make th 1 in
    let cell = R.Asp.make th (R.Shared.ptr a) in
    Alcotest.(check bool) "try_mark succeeds" true
      (R.Asp.try_mark th cell ~expected:(R.Shared.ptr a));
    Alcotest.(check bool) "marked now" true (R.Ptr.is_marked (R.Asp.unsafe_ptr cell));
    Alcotest.(check bool) "try_mark again fails" false
      (R.Asp.try_mark th cell ~expected:(R.Shared.ptr a));
    let snap = R.Asp.get_snapshot th cell in
    Alcotest.(check bool) "snapshot sees mark" true (R.Snapshot.is_marked snap);
    Alcotest.(check int) "snapshot value" 1 (R.Snapshot.get snap);
    (* same_object ignores marks; equal does not. *)
    Alcotest.(check bool) "same_object" true
      (R.Ptr.same_object (R.Snapshot.ptr snap) (R.Shared.ptr a));
    Alcotest.(check bool) "equal respects mark" false
      (R.Ptr.equal (R.Snapshot.ptr snap ~tag:1) (R.Shared.ptr a));
    R.Snapshot.drop th snap;
    R.Shared.drop th a;
    R.Asp.clear th cell

  let marked_null_slots () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th @@ fun () ->
    let cell : int R.asp = R.Asp.make_null () in
    Alcotest.(check bool) "mark null" true (R.Asp.try_mark th cell ~expected:R.Ptr.null);
    let p = R.Asp.unsafe_ptr cell in
    Alcotest.(check bool) "null and marked" true (R.Ptr.is_null p && R.Ptr.is_marked p)

  (* -------------------- snapshots (Fig 5) --------------------------- *)

  let snapshot_fast_path_no_increment () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th @@ fun () ->
    let p = R.Shared.make th 9 in
    let cell = R.Asp.make th (R.Shared.ptr p) in
    let snap = R.Asp.get_snapshot th cell in
    Alcotest.(check int) "value" 9 (R.Snapshot.get snap);
    (* Fast path must hold a guard, not a count: use_count unchanged. *)
    Alcotest.(check bool) "guard protected" true (R.Snapshot.is_protected snap);
    Alcotest.(check int) "no count bump" 2 (R.Shared.use_count p);
    R.Snapshot.drop th snap;
    R.Shared.drop th p;
    R.Asp.clear th cell

  let snapshot_slow_path_after_exhaustion () =
    (* Only meaningful for protected-pointer schemes: grab snapshots
       until try_acquire runs dry, then the slow path takes a count. *)
    if not S.is_protected_region then begin
      with_rt ~slots_per_thread:2 ~max_threads:1 @@ fun rt ->
      let th = R.thread rt 0 in
      R.critically th @@ fun () ->
      let p = R.Shared.make th 3 in
      let cell = R.Asp.make th (R.Shared.ptr p) in
      let s1 = R.Asp.get_snapshot th cell in
      let s2 = R.Asp.get_snapshot th cell in
      let s3 = R.Asp.get_snapshot th cell in
      (* dispose/weak ARs have their own slots, so only strong-side
         guards compete: with 2 slots, the third snapshot spills. *)
      Alcotest.(check bool) "fast paths" true
        (R.Snapshot.is_protected s1 && R.Snapshot.is_protected s2);
      Alcotest.(check bool) "slow path" false (R.Snapshot.is_protected s3);
      Alcotest.(check int) "slow path bumped count" 3 (R.Shared.use_count p);
      Alcotest.(check int) "all read the value" 9
        (R.Snapshot.get s1 + R.Snapshot.get s2 + R.Snapshot.get s3);
      List.iter (R.Snapshot.drop th) [ s1; s2; s3 ];
      Alcotest.(check int) "counts restored" 2 (R.Shared.use_count p);
      R.Shared.drop th p;
      R.Asp.clear th cell
    end

  let snapshot_keeps_object_alive () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th (fun () ->
        let p = R.Shared.make th 11 in
        let cell = R.Asp.make th (R.Shared.ptr p) in
        let snap = R.Asp.get_snapshot th cell in
        (* Remove both strong references; the snapshot must still read. *)
        R.Shared.drop th p;
        R.Asp.store th cell R.Ptr.null;
        R.flush th;
        Alcotest.(check int) "still readable" 11 (R.Snapshot.get snap);
        Alcotest.(check bool) "object not reclaimed" true (R.live_objects rt = 1);
        R.Snapshot.drop th snap;
        R.Asp.clear th cell);
    R.quiesce rt;
    Alcotest.(check int) "reclaimed after drop" 0 (R.live_objects rt)

  let snapshot_to_shared_upgrade () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th @@ fun () ->
    let p = R.Shared.make th 4 in
    let cell = R.Asp.make th (R.Shared.ptr p) in
    let snap = R.Asp.get_snapshot th cell in
    let q = R.Snapshot.to_shared th snap in
    R.Snapshot.drop th snap;
    Alcotest.(check int) "upgraded" 4 (R.Shared.get q);
    Alcotest.(check int) "count p,cell,q" 3 (R.Shared.use_count p);
    List.iter (R.Shared.drop th) [ p; q ];
    R.Asp.clear th cell

  (* -------------------- destroy cascades ---------------------------- *)

  (* A linked chain of N nodes whose destroy hook clears the next
     pointer: dropping the head must reclaim all N without recursion
     blowing the stack. *)
  let long_chain_no_stack_overflow () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    let n = 50_000 in
    let module Node = struct
      type t = { next : t R.asp }
    end in
    let head = ref (R.Shared.null ()) in
    R.critically th (fun () ->
        for _ = 1 to n do
          let node =
            R.Shared.make th
              ~destroy:(fun th (v : Node.t) -> R.Asp.clear th v.Node.next)
              { Node.next = R.Asp.make th (R.Shared.ptr !head) }
          in
          R.Shared.drop th !head;
          head := node
        done);
    Alcotest.(check int) "all live" n (R.live_objects rt);
    R.critically th (fun () -> R.Shared.drop th !head);
    R.quiesce rt;
    Alcotest.(check int) "all reclaimed" 0 (R.live_objects rt)

  (* -------------------- weak pointers (Figs 8-9) -------------------- *)

  let weak_basic_expiry () =
    with_rt ~support_weak:true ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    let p = R.Shared.make th 21 in
    let w = R.Weak.of_shared th p in
    Alcotest.(check bool) "not expired" false (R.Weak.expired w);
    let q = R.Weak.lock th w in
    Alcotest.(check int) "locked" 21 (R.Shared.get q);
    R.Shared.drop th q;
    R.Shared.drop th p;
    R.quiesce rt;
    Alcotest.(check bool) "expired now" true (R.Weak.expired w);
    let q2 = R.Weak.lock th w in
    Alcotest.(check bool) "lock gives null" true (R.Shared.is_null q2);
    R.Shared.drop th q2;
    (* Object destroyed, but control block alive until weak drops. *)
    R.Weak.drop th w;
    R.quiesce rt;
    Alcotest.(check int) "control block freed" 0 (R.live_objects rt)

  let weak_requires_weak_mode () =
    with_rt ~support_weak:false ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    let p = R.Shared.make th 1 in
    (match R.Weak.of_shared th p with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ());
    R.Shared.drop th p

  let awp_store_load_cas () =
    with_rt ~support_weak:true ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th @@ fun () ->
    let p = R.Shared.make th 1 in
    let w = R.Weak.of_shared th p in
    let cell = R.Awp.make th (R.Weak.ptr w) in
    let w2 = R.Awp.load th cell in
    Alcotest.(check bool) "load not null" false (R.Weak.is_null w2);
    let locked = R.Weak.lock th w2 in
    Alcotest.(check int) "locked value" 1 (R.Shared.get locked);
    R.Shared.drop th locked;
    (* CAS to another object. *)
    let p2 = R.Shared.make th 2 in
    let w3 = R.Weak.of_shared th p2 in
    Alcotest.(check bool) "cas" true
      (R.Awp.compare_and_swap th cell ~expected:(R.Weak.ptr w) ~desired:(R.Weak.ptr w3));
    Alcotest.(check bool) "cas stale fails" false
      (R.Awp.compare_and_swap th cell ~expected:(R.Weak.ptr w) ~desired:(R.Weak.ptr w3));
    List.iter (R.Weak.drop th) [ w; w2; w3 ];
    List.iter (R.Shared.drop th) [ p; p2 ];
    R.Awp.clear th cell

  let weak_snapshot_reads_through_expiry () =
    (* The §4.4 property: a weak snapshot taken while the object is
       alive stays readable even if the strong count dies during its
       lifetime (the dispose is deferred). *)
    with_rt ~support_weak:true ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th (fun () ->
        let p = R.Shared.make th 33 in
        let w = R.Weak.of_shared th p in
        let cell = R.Awp.make th (R.Weak.ptr w) in
        let ws = R.Awp.get_snapshot th cell in
        Alcotest.(check bool) "not null" false (R.Weak_snapshot.is_null ws);
        Alcotest.(check int) "reads" 33 (R.Weak_snapshot.get ws);
        (* Kill the last strong reference mid-snapshot. *)
        R.Shared.drop th p;
        R.flush th;
        Alcotest.(check int) "still readable after expiry" 33 (R.Weak_snapshot.get ws);
        R.Weak_snapshot.drop th ws;
        R.Weak.drop th w;
        R.Awp.clear th cell);
    R.quiesce rt;
    Alcotest.(check int) "reclaimed" 0 (R.live_objects rt)

  let weak_snapshot_null_on_expired () =
    with_rt ~support_weak:true ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th (fun () ->
        let p = R.Shared.make th 1 in
        let w = R.Weak.of_shared th p in
        let cell = R.Awp.make th (R.Weak.ptr w) in
        R.Shared.drop th p;
        R.flush th;
        (* Cell still holds the (expired) pointer: snapshot is null. *)
        let ws = R.Awp.get_snapshot th cell in
        Alcotest.(check bool) "null snapshot" true (R.Weak_snapshot.is_null ws);
        R.Weak_snapshot.drop th ws;
        R.Weak.drop th w;
        R.Awp.clear th cell);
    R.quiesce rt

  let weak_snapshot_upgrade () =
    with_rt ~support_weak:true ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th @@ fun () ->
    let p = R.Shared.make th 8 in
    let w = R.Weak.of_shared th p in
    let cell = R.Awp.make th (R.Weak.ptr w) in
    let ws = R.Awp.get_snapshot th cell in
    let q = R.Weak_snapshot.to_shared th ws in
    Alcotest.(check int) "upgraded" 8 (R.Shared.get q);
    R.Weak_snapshot.drop th ws;
    List.iter (R.Shared.drop th) [ p; q ];
    R.Weak.drop th w;
    R.Awp.clear th cell

  (* -------------------- cycles ------------------------------------- *)

  let strong_cycle_leaks () =
    let module Node = struct
      type t = { other : t R.asp }
    end in
    with_rt ~support_weak:true ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th (fun () ->
        let a =
          R.Shared.make th
            ~destroy:(fun th v -> R.Asp.clear th v.Node.other)
            { Node.other = R.Asp.make_null () }
        in
        let b =
          R.Shared.make th
            ~destroy:(fun th v -> R.Asp.clear th v.Node.other)
            { Node.other = R.Asp.make_null () }
        in
        R.Asp.store th (R.Shared.get a).Node.other (R.Shared.ptr b);
        R.Asp.store th (R.Shared.get b).Node.other (R.Shared.ptr a);
        R.Shared.drop th a;
        R.Shared.drop th b);
    R.quiesce rt;
    (* Reference counting cannot collect a strong cycle: both leak. *)
    Alcotest.(check int) "cycle leaks" 2 (R.live_objects rt)

  let weak_backedge_breaks_cycle () =
    let module Node = struct
      type t = { child : t R.asp; parent : t R.awp }
    end in
    with_rt ~support_weak:true ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    R.critically th (fun () ->
        let destroy th v =
          R.Asp.clear th v.Node.child;
          R.Awp.clear th v.Node.parent
        in
        let parent =
          R.Shared.make th ~destroy
            { Node.child = R.Asp.make_null (); parent = R.Awp.make_null () }
        in
        let child =
          R.Shared.make th ~destroy
            { Node.child = R.Asp.make_null (); parent = R.Awp.make_null () }
        in
        (* parent -> child strong; child -> parent weak. *)
        R.Asp.store th (R.Shared.get parent).Node.child (R.Shared.ptr child);
        let wp = R.Weak.of_shared th parent in
        R.Awp.store th (R.Shared.get child).Node.parent (R.Weak.ptr wp);
        R.Weak.drop th wp;
        (* Child can still reach a live parent through the weak edge. *)
        let w = R.Awp.load th (R.Shared.get child).Node.parent in
        let up = R.Weak.lock th w in
        Alcotest.(check bool) "parent reachable" false (R.Shared.is_null up);
        R.Shared.drop th up;
        R.Weak.drop th w;
        R.Shared.drop th child;
        R.Shared.drop th parent);
    R.quiesce rt;
    (* The weak back-edge lets the pair be reclaimed. *)
    Alcotest.(check int) "no leak" 0 (R.live_objects rt)

  (* -------------------- scoped helpers ------------------------------ *)

  let scoped_helpers () =
    with_rt ~max_threads:1 @@ fun rt ->
    let th = R.thread rt 0 in
    let out =
      R.Shared.scoped th 5 (fun p ->
          Alcotest.(check int) "scoped value" 5 (R.Shared.get p);
          R.Shared.get p * 2)
    in
    Alcotest.(check int) "result" 10 out;
    (* Exception safety: the pointer is dropped even on raise. *)
    (match R.Shared.scoped th 7 (fun _ -> failwith "boom") with
    | _ -> Alcotest.fail "expected exception"
    | exception Failure _ -> ());
    R.quiesce rt;
    Alcotest.(check int) "nothing leaked" 0 (R.live_objects rt);
    R.critically th (fun () ->
        R.Shared.scoped th 3 (fun p ->
            let cell = R.Asp.make th (R.Shared.ptr p) in
            let v = R.Asp.with_snapshot th cell (fun s -> R.Snapshot.get s) in
            Alcotest.(check int) "with_snapshot" 3 v;
            R.Asp.clear th cell))

  (* -------------------- multi-domain stress ------------------------- *)

  let stress_asp ~threads ~iters () =
    let rt = R.create ~support_weak:false ~max_threads:threads () in
    let nslots = 8 in
    let cells = Array.init nslots (fun _ -> R.Asp.make_null ()) in
    (* Seed the cells. *)
    let th0 = R.thread rt 0 in
    Array.iter
      (fun c ->
        let p = R.Shared.make th0 0 in
        R.Asp.store th0 c (R.Shared.ptr p);
        R.Shared.drop th0 p)
      cells;
    let failures = Atomic.make 0 in
    let worker pid () =
      let th = R.thread rt pid in
      let rng = Repro_util.Rng.create ~seed:(pid + 1) in
      try
        for i = 1 to iters do
          R.critically th (fun () ->
              let c = cells.(Repro_util.Rng.int rng nslots) in
              match Repro_util.Rng.int rng 4 with
              | 0 ->
                  (* load + deref *)
                  let p = R.Asp.load th c in
                  if not (R.Shared.is_null p) then ignore (Sys.opaque_identity (R.Shared.get p));
                  R.Shared.drop th p
              | 1 ->
                  (* snapshot + deref *)
                  let s = R.Asp.get_snapshot th c in
                  if not (R.Snapshot.is_null s) then
                    ignore (Sys.opaque_identity (R.Snapshot.get s));
                  R.Snapshot.drop th s
              | 2 ->
                  (* store a fresh object *)
                  let p = R.Shared.make th i in
                  R.Asp.store th c (R.Shared.ptr p);
                  R.Shared.drop th p
              | _ ->
                  (* cas current -> fresh *)
                  let s = R.Asp.get_snapshot th c in
                  let p = R.Shared.make th i in
                  ignore
                    (R.Asp.compare_and_swap th c ~expected:(R.Snapshot.ptr s)
                       ~desired:(R.Shared.ptr p));
                  R.Shared.drop th p;
                  R.Snapshot.drop th s)
        done;
        R.flush th
      with e ->
        ignore (Atomic.fetch_and_add failures 1);
        Printf.eprintf "[%s] stress worker %d: %s\n%!" R.scheme_name pid
          (Printexc.to_string e)
    in
    let domains = List.init threads (fun pid -> Domain.spawn (worker pid)) in
    List.iter Domain.join domains;
    Alcotest.(check int) "no failures" 0 (Atomic.get failures);
    Array.iter (fun c -> R.Asp.clear th0 c) cells;
    R.quiesce rt;
    Alcotest.(check int) "leak free" 0 (R.live_objects rt)

  let stress_weak ~threads ~iters () =
    let rt = R.create ~support_weak:true ~max_threads:threads () in
    let strong_cell = R.Asp.make_null () in
    let weak_cell : int R.awp = R.Awp.make_null () in
    let th0 = R.thread rt 0 in
    let p0 = R.Shared.make th0 0 in
    R.Asp.store th0 strong_cell (R.Shared.ptr p0);
    R.Shared.drop th0 p0;
    let failures = Atomic.make 0 in
    let worker pid () =
      let th = R.thread rt pid in
      let rng = Repro_util.Rng.create ~seed:(pid + 99) in
      try
        for i = 1 to iters do
          R.critically th (fun () ->
              match Repro_util.Rng.int rng 5 with
              | 0 ->
                  (* publish a weak view of the current strong value *)
                  let s = R.Asp.get_snapshot th strong_cell in
                  if not (R.Snapshot.is_null s) then begin
                    let w = R.Weak.of_snapshot th s in
                    R.Awp.store th weak_cell (R.Weak.ptr w);
                    R.Weak.drop th w
                  end;
                  R.Snapshot.drop th s
              | 1 ->
                  (* replace the strong value: older objects expire *)
                  let p = R.Shared.make th i in
                  R.Asp.store th strong_cell (R.Shared.ptr p);
                  R.Shared.drop th p
              | 2 ->
                  (* weak snapshot: deref must be safe even if expired *)
                  let ws = R.Awp.get_snapshot th weak_cell in
                  if not (R.Weak_snapshot.is_null ws) then
                    ignore (Sys.opaque_identity (R.Weak_snapshot.get ws));
                  R.Weak_snapshot.drop th ws
              | 3 ->
                  (* load + lock: null result is fine *)
                  let w = R.Awp.load th weak_cell in
                  let s = R.Weak.lock th w in
                  if not (R.Shared.is_null s) then
                    ignore (Sys.opaque_identity (R.Shared.get s));
                  R.Shared.drop th s;
                  R.Weak.drop th w
              | _ ->
                  let s = R.Asp.load th strong_cell in
                  if not (R.Shared.is_null s) then
                    ignore (Sys.opaque_identity (R.Shared.get s));
                  R.Shared.drop th s)
        done;
        R.flush th
      with e ->
        ignore (Atomic.fetch_and_add failures 1);
        Printf.eprintf "[%s] weak stress %d: %s\n%!" R.scheme_name pid
          (Printexc.to_string e)
    in
    let domains = List.init threads (fun pid -> Domain.spawn (worker pid)) in
    List.iter Domain.join domains;
    Alcotest.(check int) "no failures" 0 (Atomic.get failures);
    R.Asp.clear th0 strong_cell;
    R.Awp.clear th0 weak_cell;
    R.quiesce rt;
    Alcotest.(check int) "leak free" 0 (R.live_objects rt)

  let tests =
    [
      t "shared lifecycle" `Quick shared_lifecycle;
      t "shared null" `Quick shared_null;
      t "use after drop" `Quick use_after_drop_detected;
      t "destroy hook" `Quick destroy_hook_runs;
      t "asp store/load" `Quick asp_store_load;
      t "asp cas" `Quick asp_cas_semantics;
      t "asp cas null" `Quick asp_cas_null_transitions;
      t "asp marks" `Quick asp_marks;
      t "marked null" `Quick marked_null_slots;
      t "snapshot fast path" `Quick snapshot_fast_path_no_increment;
      t "snapshot slow path" `Quick snapshot_slow_path_after_exhaustion;
      t "snapshot keeps alive" `Quick snapshot_keeps_object_alive;
      t "snapshot upgrade" `Quick snapshot_to_shared_upgrade;
      t "long chain reclamation" `Slow long_chain_no_stack_overflow;
      t "weak expiry" `Quick weak_basic_expiry;
      t "weak needs weak mode" `Quick weak_requires_weak_mode;
      t "awp store/load/cas" `Quick awp_store_load_cas;
      t "weak snapshot through expiry" `Quick weak_snapshot_reads_through_expiry;
      t "weak snapshot null on expired" `Quick weak_snapshot_null_on_expired;
      t "weak snapshot upgrade" `Quick weak_snapshot_upgrade;
      t "scoped helpers" `Quick scoped_helpers;
      t "strong cycle leaks" `Quick strong_cycle_leaks;
      t "weak edge breaks cycle" `Quick weak_backedge_breaks_cycle;
      t "stress strong" `Slow (stress_asp ~threads:4 ~iters:10_000);
      t "stress weak" `Slow (stress_weak ~threads:4 ~iters:10_000);
    ]
end

module T_ebr = Make_tests (Smr.Ebr)
module T_ibr = Make_tests (Smr.Ibr)
module T_hyaline = Make_tests (Smr.Hyaline)
module T_hp = Make_tests (Smr.Hp)
module T_he = Make_tests (Smr.Hazard_eras)
module T_ptb = Make_tests (Smr.Ptb)

let () =
  Alcotest.run "cdrc"
    [
      ("rcebr", T_ebr.tests);
      ("rcibr", T_ibr.tests);
      ("rchyaline", T_hyaline.tests);
      ("rchp", T_hp.tests);
      ("rche", T_he.tests);
      ("rcptb", T_ptb.tests);
    ]
