(* White-box tests of scheme-specific mechanics that the generic suite
   cannot see: EBR/IBR epoch bookkeeping, HE eras, HP announcement
   counting, PTB hand-off, Hyaline active counting and truncation, and
   the Leaky baseline. *)

module Ident = Smr.Ident

let mk_obj () = ref 0

(* ---------------- EBR ---------------- *)

let ebr_epoch_advances_on_alloc () =
  let s = Smr.Ebr.create ~epoch_freq:10 ~max_threads:1 () in
  Alcotest.(check int) "epoch 0" 0 (Smr.Ebr.current_epoch s);
  for _ = 1 to 9 do
    ignore (Smr.Ebr.alloc_hook s ~pid:0)
  done;
  Alcotest.(check int) "not yet" 0 (Smr.Ebr.current_epoch s);
  ignore (Smr.Ebr.alloc_hook s ~pid:0);
  Alcotest.(check int) "advanced after 10 allocs" 1 (Smr.Ebr.current_epoch s);
  Smr.Ebr.advance_epoch s;
  Alcotest.(check int) "manual advance" 2 (Smr.Ebr.current_epoch s)

let ebr_stale_announcement_blocks () =
  let s = Smr.Ebr.create ~cleanup_freq:1 ~max_threads:2 () in
  Smr.Ebr.begin_critical_section s ~pid:1;
  (* Epoch advances while pid 1 stays announced at epoch 0. *)
  for _ = 1 to 5 do
    Smr.Ebr.advance_epoch s
  done;
  let hits = ref 0 in
  Smr.Ebr.retire s ~pid:0 (Ident.of_val (mk_obj ())) ~birth:0 (fun _ -> incr hits);
  List.iter (fun op -> op 0) (Smr.Ebr.eject ~force:true s ~pid:0);
  Alcotest.(check int) "old announcement blocks new retire" 0 !hits;
  Smr.Ebr.end_critical_section s ~pid:1;
  List.iter (fun op -> op 0) (Smr.Ebr.eject ~force:true s ~pid:0);
  Alcotest.(check int) "released" 1 !hits

(* ---------------- IBR ---------------- *)

let ibr_interval_blocks_only_overlaps () =
  let s = Smr.Ibr.create ~cleanup_freq:1 ~epoch_freq:1 ~max_threads:2 () in
  (* Object A born at epoch ~0. *)
  let birth_a = Smr.Ibr.alloc_hook s ~pid:0 in
  (* Reader enters at the current epoch. *)
  Smr.Ibr.begin_critical_section s ~pid:1;
  (* Retire A now: its interval [birth_a, now] intersects the reader's
     announced interval -> blocked. *)
  let hits_a = ref 0 in
  Smr.Ibr.retire s ~pid:0 (Ident.of_val (mk_obj ())) ~birth:birth_a (fun _ -> incr hits_a);
  List.iter (fun op -> op 0) (Smr.Ibr.eject ~force:true s ~pid:0);
  Alcotest.(check int) "overlapping interval blocked" 0 !hits_a;
  (* Object B is born and retired entirely after the reader's interval
     (the reader never confirms again): safe to eject immediately. *)
  for _ = 1 to 3 do
    Smr.Ibr.advance_epoch s
  done;
  let birth_b = Smr.Ibr.alloc_hook s ~pid:0 in
  let hits_b = ref 0 in
  Smr.Ibr.retire s ~pid:0 (Ident.of_val (mk_obj ())) ~birth:birth_b (fun _ -> incr hits_b);
  List.iter (fun op -> op 0) (Smr.Ibr.eject ~force:true s ~pid:0);
  Alcotest.(check int) "disjoint interval ejected" 1 !hits_b;
  Alcotest.(check int) "overlapping still blocked" 0 !hits_a;
  Smr.Ibr.end_critical_section s ~pid:1;
  List.iter (fun op -> op 0) (Smr.Ibr.eject ~force:true s ~pid:0);
  Alcotest.(check int) "released after section" 1 !hits_a

let ibr_confirm_extends_interval () =
  let s = Smr.Ibr.create ~epoch_freq:1 ~max_threads:1 () in
  Smr.Ibr.begin_critical_section s ~pid:0;
  let id = Ident.of_val (mk_obj ()) in
  let g = Smr.Ibr.acquire s ~pid:0 id in
  Alcotest.(check bool) "stable epoch confirms" true (Smr.Ibr.confirm s ~pid:0 g id);
  Smr.Ibr.advance_epoch s;
  Alcotest.(check bool) "advanced epoch forces retry" false (Smr.Ibr.confirm s ~pid:0 g id);
  Alcotest.(check bool) "second confirm settles" true (Smr.Ibr.confirm s ~pid:0 g id);
  Smr.Ibr.release s ~pid:0 g;
  Smr.Ibr.end_critical_section s ~pid:0

(* ---------------- HE ---------------- *)

let he_confirm_tracks_era () =
  let s = Smr.Hazard_eras.create ~epoch_freq:1 ~max_threads:1 () in
  let id = Ident.of_val (mk_obj ()) in
  let g = Option.get (Smr.Hazard_eras.try_acquire s ~pid:0 id) in
  Alcotest.(check bool) "same era confirms" true (Smr.Hazard_eras.confirm s ~pid:0 g id);
  Smr.Hazard_eras.advance_era s;
  Alcotest.(check bool) "new era fails once" false (Smr.Hazard_eras.confirm s ~pid:0 g id);
  Alcotest.(check bool) "then settles" true (Smr.Hazard_eras.confirm s ~pid:0 g id);
  Smr.Hazard_eras.release s ~pid:0 g

let he_era_protects_interval () =
  let s = Smr.Hazard_eras.create ~cleanup_freq:1 ~epoch_freq:1 ~max_threads:2 () in
  let birth = Smr.Hazard_eras.alloc_hook s ~pid:0 in
  (* Reader announces the current era. *)
  let id = Ident.of_val (mk_obj ()) in
  let g = Option.get (Smr.Hazard_eras.try_acquire s ~pid:1 id) in
  let hits = ref 0 in
  Smr.Hazard_eras.retire s ~pid:0 id ~birth (fun _ -> incr hits);
  List.iter (fun op -> op 0) (Smr.Hazard_eras.eject ~force:true s ~pid:0);
  Alcotest.(check int) "era inside interval blocks" 0 !hits;
  Smr.Hazard_eras.release s ~pid:1 g;
  List.iter (fun op -> op 0) (Smr.Hazard_eras.eject ~force:true s ~pid:0);
  Alcotest.(check int) "released" 1 !hits

(* ---------------- HP ---------------- *)

let hp_announced_count () =
  let s = Smr.Hp.create ~slots_per_thread:4 ~max_threads:2 () in
  Alcotest.(check int) "initially none" 0 (Smr.Hp.announced_count s);
  let id = Ident.of_val (mk_obj ()) in
  let g1 = Option.get (Smr.Hp.try_acquire s ~pid:0 id) in
  let g2 = Smr.Hp.acquire s ~pid:1 id in
  Alcotest.(check int) "two announced" 2 (Smr.Hp.announced_count s);
  Smr.Hp.release s ~pid:0 g1;
  Smr.Hp.release s ~pid:1 g2;
  Alcotest.(check int) "cleared" 0 (Smr.Hp.announced_count s)

let hp_confirm_reannounces () =
  let s = Smr.Hp.create ~max_threads:1 () in
  let a = Ident.of_val (mk_obj ()) in
  let b = Ident.of_val (mk_obj ()) in
  let g = Option.get (Smr.Hp.try_acquire s ~pid:0 a) in
  Alcotest.(check bool) "same id confirms" true (Smr.Hp.confirm s ~pid:0 g a);
  Alcotest.(check bool) "different id re-announces" false (Smr.Hp.confirm s ~pid:0 g b);
  Alcotest.(check bool) "now b confirms" true (Smr.Hp.confirm s ~pid:0 g b);
  Smr.Hp.release s ~pid:0 g

(* ---------------- PTB ---------------- *)

let ptb_handoff_roundtrip () =
  let s = Smr.Ptb.create ~cleanup_freq:1 ~max_threads:2 () in
  let obj = mk_obj () in
  let id = Ident.of_val obj in
  (* Reader pins the object. *)
  let g = Option.get (Smr.Ptb.try_acquire s ~pid:1 id) in
  Alcotest.(check bool) "confirmed" true (Smr.Ptb.confirm s ~pid:1 g id);
  let hits = ref 0 in
  Smr.Ptb.retire s ~pid:0 id ~birth:0 (fun _ -> incr hits);
  (* Liberation hands the entry to the guard: the retirer's queue
     drops to zero, but nothing ran. *)
  List.iter (fun op -> op 0) (Smr.Ptb.eject ~force:true s ~pid:0);
  Alcotest.(check int) "not run while pinned" 0 !hits;
  Alcotest.(check int) "buck left the retirer" 0 (Smr.Ptb.retired_count s ~pid:0);
  (* The releaser inherits the buck... *)
  Smr.Ptb.release s ~pid:1 g;
  Alcotest.(check int) "buck with the releaser" 1 (Smr.Ptb.retired_count s ~pid:1);
  (* ...and its next scan liberates it. *)
  List.iter (fun op -> op 1) (Smr.Ptb.eject ~force:true s ~pid:1);
  Alcotest.(check int) "liberated by releaser" 1 !hits

let ptb_second_retire_stays_queued () =
  let s = Smr.Ptb.create ~cleanup_freq:1 ~max_threads:2 () in
  let id = Ident.of_val (mk_obj ()) in
  let g = Option.get (Smr.Ptb.try_acquire s ~pid:1 id) in
  ignore (Smr.Ptb.confirm s ~pid:1 g id);
  let hits = ref 0 in
  Smr.Ptb.retire s ~pid:0 id ~birth:0 (fun _ -> incr hits);
  Smr.Ptb.retire s ~pid:0 id ~birth:0 (fun _ -> incr hits);
  List.iter (fun op -> op 0) (Smr.Ptb.eject ~force:true s ~pid:0);
  (* One hand-off slot per guard: the second entry must stay queued. *)
  Alcotest.(check int) "nothing ran" 0 !hits;
  Alcotest.(check int) "one entry kept" 1 (Smr.Ptb.retired_count s ~pid:0);
  Smr.Ptb.release s ~pid:1 g;
  List.iter (fun op -> op 0) (Smr.Ptb.eject ~force:true s ~pid:0);
  List.iter (fun op -> op 1) (Smr.Ptb.eject ~force:true s ~pid:1);
  Alcotest.(check int) "both ran after release" 2 !hits

(* ---------------- Hyaline ---------------- *)

let hyaline_active_counting () =
  let s = Smr.Hyaline.create ~max_threads:3 () in
  Alcotest.(check int) "idle" 0 (Smr.Hyaline.active_count s);
  Smr.Hyaline.begin_critical_section s ~pid:0;
  Smr.Hyaline.begin_critical_section s ~pid:1;
  Alcotest.(check int) "two active" 2 (Smr.Hyaline.active_count s);
  Smr.Hyaline.end_critical_section s ~pid:0;
  Alcotest.(check int) "one active" 1 (Smr.Hyaline.active_count s);
  Smr.Hyaline.end_critical_section s ~pid:1;
  Alcotest.(check int) "idle again" 0 (Smr.Hyaline.active_count s)

let hyaline_stamp_frees_on_last_leave () =
  let s = Smr.Hyaline.create ~max_threads:3 () in
  let hits = ref 0 in
  Smr.Hyaline.begin_critical_section s ~pid:0;
  Smr.Hyaline.begin_critical_section s ~pid:1;
  Smr.Hyaline.retire s ~pid:2 (Ident.of_val (mk_obj ())) ~birth:0 (fun _ -> incr hits);
  Alcotest.(check (list reject)) "not yet safe" []
    (List.map (fun _ -> Alcotest.fail "op") (Smr.Hyaline.eject s ~pid:2));
  Smr.Hyaline.end_critical_section s ~pid:0;
  Alcotest.(check (list reject)) "one reader still out" []
    (List.map (fun _ -> Alcotest.fail "op") (Smr.Hyaline.eject s ~pid:2));
  Smr.Hyaline.end_critical_section s ~pid:1;
  List.iter (fun op -> op 2) (Smr.Hyaline.eject s ~pid:2);
  Alcotest.(check int) "freed when the last reader left" 1 !hits

let hyaline_retire_at_idle_immediate () =
  let s = Smr.Hyaline.create ~max_threads:1 () in
  let hits = ref 0 in
  Smr.Hyaline.retire s ~pid:0 (Ident.of_val (mk_obj ())) ~birth:0 (fun _ -> incr hits);
  List.iter (fun op -> op 0) (Smr.Hyaline.eject s ~pid:0);
  Alcotest.(check int) "no reader -> immediately safe" 1 !hits

(* ---------------- Leaky ---------------- *)

let leaky_never_ejects () =
  let s = Smr.Leaky.create ~max_threads:1 () in
  let hits = ref 0 in
  for _ = 1 to 10 do
    Smr.Leaky.retire s ~pid:0 (Ident.of_val (mk_obj ())) ~birth:0 (fun _ -> incr hits)
  done;
  Alcotest.(check int) "eject never returns" 0
    (List.length (Smr.Leaky.eject ~force:true s ~pid:0));
  Alcotest.(check int) "pending" 10 (Smr.Leaky.retired_count s ~pid:0);
  List.iter (fun op -> op 0) (Smr.Leaky.drain_all s);
  Alcotest.(check int) "drain_all releases" 10 !hits

(* ---------------- sticky counter internals ---------------- *)

let sticky_raw_bits () =
  let c = Sticky.Sticky_counter.create 3 in
  Alcotest.(check int) "raw equals logical when alive" 3 (Sticky.Sticky_counter.raw c);
  ignore (Sticky.Sticky_counter.decrement c);
  ignore (Sticky.Sticky_counter.decrement c);
  Alcotest.(check bool) "dec to zero" true (Sticky.Sticky_counter.decrement c);
  (* Once dead, the zero flag dominates whatever the low bits say. *)
  ignore (Sticky.Sticky_counter.increment_if_not_zero c);
  Alcotest.(check int) "still zero logically" 0 (Sticky.Sticky_counter.load c);
  Alcotest.(check bool) "zero flag set" true
    (Sticky.Sticky_counter.raw c land (1 lsl 61) <> 0)

let sticky_max_value () =
  Alcotest.(check bool) "max_value positive and huge" true
    (Sticky.Sticky_counter.max_value > 1 lsl 59);
  match Sticky.Sticky_counter.create (Sticky.Sticky_counter.max_value + 1) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "scheme_details"
    [
      ( "ebr",
        [
          Alcotest.test_case "epoch advances on alloc" `Quick ebr_epoch_advances_on_alloc;
          Alcotest.test_case "stale announcement blocks" `Quick ebr_stale_announcement_blocks;
        ] );
      ( "ibr",
        [
          Alcotest.test_case "interval overlap logic" `Quick ibr_interval_blocks_only_overlaps;
          Alcotest.test_case "confirm extends interval" `Quick ibr_confirm_extends_interval;
        ] );
      ( "hazard_eras",
        [
          Alcotest.test_case "confirm tracks era" `Quick he_confirm_tracks_era;
          Alcotest.test_case "era protects interval" `Quick he_era_protects_interval;
        ] );
      ( "hp",
        [
          Alcotest.test_case "announced count" `Quick hp_announced_count;
          Alcotest.test_case "confirm re-announces" `Quick hp_confirm_reannounces;
        ] );
      ( "ptb",
        [
          Alcotest.test_case "handoff roundtrip" `Quick ptb_handoff_roundtrip;
          Alcotest.test_case "second retire queued" `Quick ptb_second_retire_stays_queued;
        ] );
      ( "hyaline",
        [
          Alcotest.test_case "active counting" `Quick hyaline_active_counting;
          Alcotest.test_case "stamp frees on last leave" `Quick hyaline_stamp_frees_on_last_leave;
          Alcotest.test_case "idle retire immediate" `Quick hyaline_retire_at_idle_immediate;
        ] );
      ("leaky", [ Alcotest.test_case "never ejects" `Quick leaky_never_ejects ]);
      ( "sticky internals",
        [
          Alcotest.test_case "raw bits" `Quick sticky_raw_bits;
          Alcotest.test_case "max value" `Quick sticky_max_value;
        ] );
    ]
