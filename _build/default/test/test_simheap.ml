(* Tests for the simulated heap: accounting, poisoning, failure
   injection (double free, use-after-free), and thread safety of the
   counters. *)

let test_alloc_free_accounting () =
  let h = Simheap.create ~name:"t" () in
  Alcotest.(check int) "live 0" 0 (Simheap.live h);
  let b1 = Simheap.alloc h in
  let b2 = Simheap.alloc h in
  Alcotest.(check int) "live 2" 2 (Simheap.live h);
  Alcotest.(check int) "allocated 2" 2 (Simheap.allocated h);
  Simheap.free b1;
  Alcotest.(check int) "live 1" 1 (Simheap.live h);
  Alcotest.(check int) "freed 1" 1 (Simheap.freed h);
  Simheap.free b2;
  Alcotest.(check int) "live 0 again" 0 (Simheap.live h)

let test_peak_tracking () =
  let h = Simheap.create () in
  let bs = List.init 5 (fun _ -> Simheap.alloc h) in
  Alcotest.(check int) "peak 5" 5 (Simheap.peak h);
  List.iter Simheap.free bs;
  Alcotest.(check int) "peak stays 5" 5 (Simheap.peak h);
  Simheap.reset_peak h;
  Alcotest.(check int) "peak reset to live" 0 (Simheap.peak h);
  let b = Simheap.alloc h in
  Alcotest.(check int) "peak 1 after reset" 1 (Simheap.peak h);
  Simheap.free b

let test_double_free_detected () =
  let h = Simheap.create ~name:"df" () in
  let b = Simheap.alloc h in
  Simheap.free b;
  match Simheap.free b with
  | () -> Alcotest.fail "expected Double_free"
  | exception Simheap.Double_free _ -> ()

let test_use_after_free_detected () =
  let h = Simheap.create ~name:"uaf" () in
  let b = Simheap.alloc h in
  Simheap.check_live b;
  Alcotest.(check bool) "is_live" true (Simheap.is_live b);
  Simheap.free b;
  Alcotest.(check bool) "not live" false (Simheap.is_live b);
  match Simheap.check_live b with
  | () -> Alcotest.fail "expected Use_after_free"
  | exception Simheap.Use_after_free _ -> ()

let test_uids_unique () =
  let h = Simheap.create () in
  let bs = List.init 100 (fun _ -> Simheap.alloc h) in
  let uids = List.map Simheap.uid bs in
  let sorted = List.sort_uniq compare uids in
  Alcotest.(check int) "all distinct" 100 (List.length sorted)

let test_parallel_accounting () =
  (* N domains allocate and free M blocks each; totals must be exact. *)
  let h = Simheap.create () in
  let n = 4 and m = 5_000 in
  let domains =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to m do
              let b = Simheap.alloc h in
              Simheap.free b
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "allocated" (n * m) (Simheap.allocated h);
  Alcotest.(check int) "freed" (n * m) (Simheap.freed h);
  Alcotest.(check int) "live" 0 (Simheap.live h);
  Alcotest.(check bool) "peak sane" true (Simheap.peak h >= 1 && Simheap.peak h <= n * m)

let test_pp_stats () =
  let h = Simheap.create ~name:"pp" () in
  let b = Simheap.alloc h in
  let s = Format.asprintf "%a" Simheap.pp_stats h in
  Alcotest.(check string) "format" "live=1 peak=1 allocated=1 freed=0" s;
  Simheap.free b

let () =
  Alcotest.run "simheap"
    [
      ( "accounting",
        [
          Alcotest.test_case "alloc/free" `Quick test_alloc_free_accounting;
          Alcotest.test_case "peak" `Quick test_peak_tracking;
          Alcotest.test_case "uids unique" `Quick test_uids_unique;
          Alcotest.test_case "parallel" `Quick test_parallel_accounting;
          Alcotest.test_case "pp_stats" `Quick test_pp_stats;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "double free" `Quick test_double_free_detected;
          Alcotest.test_case "use after free" `Quick test_use_after_free_detected;
        ] );
    ]
