(* Property-based tests (qcheck via QCheck_alcotest): laws of the
   pointer-view algebra, the retire queue against a list model, the
   padded array against a plain array model, RNG distribution
   properties, and random operation sequences on every data structure
   against Stdlib.Set. *)

module Q = QCheck2
module IntSet = Set.Make (Int)

let to_alcotest = QCheck_alcotest.to_alcotest

(* ------------------- Ptr / slot algebra --------------------------- *)

module R = Cdrc.Make (Smr.Ebr)

(* A pool of control blocks to build views over. *)
let rt = R.create ~max_threads:1 ()
let th = R.thread rt 0
let pool = Array.init 8 (fun i -> R.Shared.make th i)

let ptr_gen =
  Q.Gen.(
    let* tag = int_range 0 3 in
    let* shape = int_range 0 8 in
    let base = if shape = 8 then R.Ptr.null else R.Shared.ptr pool.(shape) in
    return (R.Ptr.with_tag base tag))

let prop_with_tag_roundtrip =
  Q.Test.make ~name:"Ptr: tag (with_tag p g) = g" ~count:500
    Q.Gen.(pair ptr_gen (int_range 0 3))
    (fun (p, g) -> R.Ptr.tag (R.Ptr.with_tag p g) = g)

let prop_with_tag_preserves_object =
  Q.Test.make ~name:"Ptr: with_tag preserves object identity" ~count:500
    Q.Gen.(pair ptr_gen (int_range 0 3))
    (fun (p, g) -> R.Ptr.same_object (R.Ptr.with_tag p g) p)

let prop_mark_is_tag_bit0 =
  Q.Test.make ~name:"Ptr: is_marked = bit 0 of tag" ~count:500 ptr_gen (fun p ->
      R.Ptr.is_marked p = (R.Ptr.tag p land 1 <> 0))

let prop_with_mark_sets_bit0 =
  Q.Test.make ~name:"Ptr: with_mark touches only bit 0" ~count:500
    Q.Gen.(pair ptr_gen bool)
    (fun (p, m) ->
      let q = R.Ptr.with_mark p m in
      R.Ptr.is_marked q = m && R.Ptr.tag q land 2 = R.Ptr.tag p land 2)

let prop_equal_refines_same_object =
  Q.Test.make ~name:"Ptr: equal implies same_object" ~count:500
    Q.Gen.(pair ptr_gen ptr_gen)
    (fun (p, q) -> (not (R.Ptr.equal p q)) || R.Ptr.same_object p q)

let prop_null_laws =
  Q.Test.make ~name:"Ptr: null is unmarked and null" ~count:1 Q.Gen.unit (fun () ->
      R.Ptr.is_null R.Ptr.null
      && (not (R.Ptr.is_marked R.Ptr.null))
      && R.Ptr.is_null (R.Ptr.with_tag R.Ptr.null 3))

(* ------------------- Retire_queue vs list model ------------------- *)

type rq_op = Push of int | PopPrefix of int | FilterPop of int | Drain

let rq_op_gen =
  Q.Gen.(
    oneof
      [
        map (fun k -> Push k) (int_range 0 100);
        map (fun k -> PopPrefix k) (int_range 0 100);
        map (fun k -> FilterPop k) (int_range 0 100);
        return Drain;
      ])

let prop_retire_queue_model =
  Q.Test.make ~name:"Retire_queue matches list model" ~count:500
    Q.Gen.(list_size (int_range 0 40) rq_op_gen)
    (fun ops ->
      let q = Smr.Retire_queue.create () in
      let model = ref [] in
      let out_q = ref [] and out_m = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Push k ->
              Smr.Retire_queue.push q k (fun _ -> ());
              model := !model @ [ k ];
              true
          | PopPrefix threshold ->
              let popped = Smr.Retire_queue.pop_prefix q ~safe:(fun m -> m < threshold) in
              let rec split = function
                | m :: rest when m < threshold ->
                    let a, b = split rest in
                    (m :: a, b)
                | rest -> ([], rest)
              in
              let a, b = split !model in
              model := b;
              out_q := List.map (fun _ -> ()) popped @ !out_q;
              out_m := List.map (fun _ -> ()) a @ !out_m;
              List.length popped = List.length a
          | FilterPop threshold ->
              let popped = Smr.Retire_queue.filter_pop q ~safe:(fun m -> m < threshold) in
              let a, b = List.partition (fun m -> m < threshold) !model in
              model := b;
              List.length popped = List.length a
          | Drain ->
              let popped = Smr.Retire_queue.drain q in
              let n = List.length !model in
              model := [];
              List.length popped = n)
        ops
      && Smr.Retire_queue.size q = List.length !model)

(* ------------------- Padded array vs array model ------------------ *)

let prop_padded_model =
  Q.Test.make ~name:"Padded matches array model" ~count:300
    Q.Gen.(
      pair (int_range 1 8)
        (list_size (int_range 0 50) (pair (int_range 0 7) (int_range 0 1000))))
    (fun (n, writes) ->
      let p = Repro_util.Padded.create n 0 in
      let a = Array.make n 0 in
      List.iter
        (fun (i, v) ->
          let i = i mod n in
          Repro_util.Padded.set p i v;
          a.(i) <- v)
        writes;
      Array.for_all Fun.id (Array.init n (fun i -> Repro_util.Padded.get p i = a.(i)))
      && Repro_util.Padded.fold ( + ) 0 p = Array.fold_left ( + ) 0 a)

(* ------------------- RNG ------------------------------------------ *)

let prop_rng_bounds =
  Q.Test.make ~name:"Rng.int stays in bounds" ~count:300
    Q.Gen.(pair (int_range 0 10_000) (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Repro_util.Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Repro_util.Rng.int r bound in
        if x < 0 || x >= bound then ok := false
      done;
      !ok)

let prop_rng_next_nonneg =
  Q.Test.make ~name:"Rng.next is non-negative" ~count:300 Q.Gen.(int_range 0 100_000)
    (fun seed ->
      let r = Repro_util.Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 200 do
        if Repro_util.Rng.next r < 0 then ok := false
      done;
      !ok)

(* ------------------- data structures vs Set model ----------------- *)

type set_op = Insert of int | Remove of int | Contains of int | Range of int * int

let set_op_gen =
  Q.Gen.(
    let key = int_range 0 48 in
    oneof
      [
        map (fun k -> Insert k) key;
        map (fun k -> Remove k) key;
        map (fun k -> Contains k) key;
        map2 (fun a b -> Range (min a b, max a b)) key key;
      ])

let set_model_prop (module D : Ds.Set_intf.S) name =
  Q.Test.make ~name:(name ^ " matches Set model") ~count:60
    Q.Gen.(list_size (int_range 0 120) set_op_gen)
    (fun ops ->
      let d = D.create ~max_threads:1 () in
      let c = D.ctx d 0 in
      let model = ref IntSet.empty in
      let ok =
        List.for_all
          (fun op ->
            match op with
            | Insert k ->
                let e = not (IntSet.mem k !model) in
                model := IntSet.add k !model;
                D.insert c k = e
            | Remove k ->
                let e = IntSet.mem k !model in
                model := IntSet.remove k !model;
                D.remove c k = e
            | Contains k -> D.contains c k = IntSet.mem k !model
            | Range (lo, hi) ->
                let e =
                  IntSet.cardinal (IntSet.filter (fun k -> k >= lo && k < hi) !model)
                in
                D.range_query c lo hi = e)
          ops
      in
      let size_ok = D.size d = IntSet.cardinal !model in
      D.flush c;
      D.teardown d;
      ok && size_ok && D.live_objects d = 0)

module L_ebr = Ds.Hm_list_manual.Make (Smr.Ebr)
module L_hp = Ds.Hm_list_manual.Make (Smr.Hp)
module Lr_hp = Ds.Hm_list_rc.Make (Cdrc.Make (Smr.Hp))
module H_hyaline = Ds.Hash_table_manual.Make (Smr.Hyaline)
module Hr_ibr = Ds.Hash_table_rc.Make (Cdrc.Make (Smr.Ibr))
module T_he = Ds.Nm_tree_manual.Make (Smr.Hazard_eras)
module Tr_hyaline = Ds.Nm_tree_rc.Make (Cdrc.Make (Smr.Hyaline))

(* ------------------- queue vs FIFO model --------------------------- *)

type q_op = Enq of int | Deq

let q_op_gen =
  Q.Gen.(oneof [ map (fun v -> Enq v) (int_range 0 1000); return Deq ])

let queue_model_prop (module Qu : Ds.Queue_intf.S) name =
  Q.Test.make ~name:(name ^ " matches FIFO model") ~count:80
    Q.Gen.(list_size (int_range 0 150) q_op_gen)
    (fun ops ->
      let q = Qu.create ~max_threads:1 () in
      let c = Qu.ctx q 0 in
      let model = Queue.create () in
      let ok =
        List.for_all
          (fun op ->
            match op with
            | Enq v ->
                Qu.enqueue c v;
                Queue.push v model;
                true
            | Deq -> Qu.dequeue c = Queue.take_opt model)
          ops
      in
      Qu.flush c;
      Qu.teardown q;
      ok && Qu.live_objects q = 0)

module Q_rc_he = Ds.Dl_queue_rc.Make (Cdrc.Make (Smr.Hazard_eras))
module Q_orig = Ds.Dl_queue_manual.Make ()
module Q_lock = Ds.Dl_queue_locked.Make ()

let () =
  Alcotest.run "qcheck"
    [
      ( "ptr algebra",
        List.map to_alcotest
          [
            prop_with_tag_roundtrip;
            prop_with_tag_preserves_object;
            prop_mark_is_tag_bit0;
            prop_with_mark_sets_bit0;
            prop_equal_refines_same_object;
            prop_null_laws;
          ] );
      ( "infrastructure",
        List.map to_alcotest
          [ prop_retire_queue_model; prop_padded_model; prop_rng_bounds; prop_rng_next_nonneg ]
      );
      ( "sets vs model",
        List.map to_alcotest
          [
            set_model_prop (module L_ebr) "list/EBR";
            set_model_prop (module L_hp) "list/HP";
            set_model_prop (module Lr_hp) "list/RCHP";
            set_model_prop (module H_hyaline) "hash/Hyaline";
            set_model_prop (module Hr_ibr) "hash/RCIBR";
            set_model_prop (module T_he) "tree/HE";
            set_model_prop (module Tr_hyaline) "tree/RCHyaline";
          ] );
      ( "queues vs model",
        List.map to_alcotest
          [
            queue_model_prop (module Q_rc_he) "queue/RCHE-weak";
            queue_model_prop (module Q_orig) "queue/Original";
            queue_model_prop (module Q_lock) "queue/locked";
          ] );
    ]
