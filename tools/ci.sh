#!/bin/sh
# CI entry point: build, full test suite, then a fast robustness smoke
# (one scheme, 0.2s) to catch fault-injection / abandon regressions
# end-to-end without the cost of the full experiment.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== robustness smoke (EBR, 0.2s) =="
dune exec bin/cdrc_bench.exe -- robustness --duration 0.2 --schemes EBR --out ""

echo "== telemetry smoke (fig13a, scaled down) =="
# Short run with telemetry on; --check fails unless the exported trace
# is valid JSONL and the experiment's required metrics are non-zero.
dune exec bin/cdrc_bench.exe -- stats fig13a --threads 2 --duration 0.1 --scale 50 --check

echo "== no committed trace files =="
if git ls-files 'results/*.jsonl' | grep -q .; then
  echo "error: results/*.jsonl are generated artifacts and must not be committed" >&2
  exit 1
fi

echo "CI OK"
