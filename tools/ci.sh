#!/bin/sh
# CI entry point: build, full test suite, then a fast robustness smoke
# (one scheme, 0.2s) to catch fault-injection / abandon regressions
# end-to-end without the cost of the full experiment.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== robustness smoke (EBR, 0.2s) =="
dune exec bin/cdrc_bench.exe -- robustness --duration 0.2 --schemes EBR --out ""

echo "CI OK"
