#!/bin/sh
# CI entry point: build, full test suite, then a fast robustness smoke
# (one scheme, 0.2s) to catch fault-injection / abandon regressions
# end-to-end without the cost of the full experiment.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== rc-lint (clean tree) =="
# Static protocol checks (DESIGN.md §9): the shipped tree must carry
# zero unsuppressed findings.
dune build @lint

echo "== rc-lint (fixture corpus must fail) =="
# The deliberately-bad corpus guards the linter itself: if rules stop
# firing, this inverted check catches it.
if dune exec tools/rc_lint/rc_lint.exe -- test/lint_fixtures >/dev/null; then
  echo "error: rc_lint found nothing in test/lint_fixtures — rules have regressed" >&2
  exit 1
fi

echo "== robustness smoke (EBR, 0.2s) =="
dune exec bin/cdrc_bench.exe -- robustness --duration 0.2 --schemes EBR --out ""

echo "== adaptivity smoke (controller vs fixed knobs) =="
# Deterministic stalled-domain replay (DESIGN.md §10): exits 1 unless
# the controller-on run keeps EBR's backlog under the bound while the
# fixed-knob run exceeds it — the graceful-degradation contract.
dune exec bin/cdrc_bench.exe -- adaptivity --iters 2000 --bound 512 --out ""

echo "== telemetry smoke (fig13a, scaled down) =="
# Short run with telemetry on; --check fails unless the exported trace
# is valid JSONL and the experiment's required metrics are non-zero.
dune exec bin/cdrc_bench.exe -- stats fig13a --threads 2 --duration 0.1 --scale 50 --check

echo "== schedule-exploration smoke =="
# Deterministic schedule exploration of the lock-free cores (DESIGN.md
# §8). Exhaustive DFS on the real algorithms must find no
# counterexample; the MUTANT targets carry injected bugs and their runs
# fail unless the explorer catches them — every failure prints a
# replayable schedule (replay with: explore TARGET --replay TRACE).
dune exec bin/cdrc_bench.exe -- explore sticky-one-death --mode dfs --preemptions 2
dune exec bin/cdrc_bench.exe -- explore sticky-load-vs-dec --mode dfs
dune exec bin/cdrc_bench.exe -- explore slots --mode dfs
dune exec bin/cdrc_bench.exe -- explore weak-upgrade --mode dfs
dune exec bin/cdrc_bench.exe -- explore sticky-drop-help --mode dfs
dune exec bin/cdrc_bench.exe -- explore slots-skip-validate --mode dfs
dune exec bin/cdrc_bench.exe -- explore racy-counter --mode dfs
# Pinned-seed randomized corpus: the PCT and random explorers must also
# catch the injected bugs with these exact seeds.
dune exec bin/cdrc_bench.exe -- explore racy-counter --mode pct --seed 1 --iters 500
dune exec bin/cdrc_bench.exe -- explore sticky-drop-help --mode random --seed 2 --iters 2000
dune exec bin/cdrc_bench.exe -- explore slots-skip-validate --mode pct --seed 3 --iters 500

echo "== sanitize: clean corpus under exhaustive DFS =="
# The §14 race & lifetime sanitizer: every clean sanitized target must
# survive exhaustive DFS with zero violations — a false positive here
# means the happens-before engine or the typestate rules regressed.
dune exec bin/cdrc_bench.exe -- explore --sanitize san-slots --mode dfs
dune exec bin/cdrc_bench.exe -- explore --sanitize san-handoff --mode dfs
dune exec bin/cdrc_bench.exe -- explore --sanitize san-weak-upgrade --mode dfs

echo "== sanitize: seeded mutants caught with a replayable trace =="
# Each mutant target exits 0 only when the sanitizer catches the seeded
# protocol bug; on top of that, the report must print the replayable
# schedule ("schedule [...]") that names the racing pair — that printed
# trace is the contract the test suite replays.
for t in san-slots-drop-acquire san-handoff-retire-early san-rc-extra-dec; do
  out=$(dune exec bin/cdrc_bench.exe -- explore --sanitize "$t" --mode dfs)
  echo "$out"
  case $out in
    *"schedule ["*) ;;
    *)
      echo "error: $t caught the mutant but printed no replayable schedule" >&2
      exit 1
      ;;
  esac
done

echo "== kv serving smoke (sweep + identity validation) =="
# Short sharded-KV sweep (DESIGN.md §12) with --validate: after each
# run the store is quiesced and the node/box retirement-accounting
# identities plus leak-freedom are asserted; any violation exits 1.
dune exec bin/cdrc_bench.exe -- kv --threads 2 --duration 0.1 --shards 2 \
  --schemes EBR,None --mix read95 --keys 2048 --validate

echo "== kv stalled-shard fault scenario =="
# Deterministic shard-stall + abandon-recovery replay: a fault plan
# pins the victim inside a shard-0 critical section; the per-shard
# controller must escalate to abandon_shard and keep the peak backlog
# under the bound while the fixed-knob run grows without limit.
dune exec bin/cdrc_bench.exe -- kv --fault stalled-shard --iters 1200 --bound 512
# The gate must actually gate: with an unattainable bound the same
# scenario has to exit non-zero.
if dune exec bin/cdrc_bench.exe -- kv --fault stalled-shard --iters 1200 --bound 1 \
    >/dev/null 2>&1; then
  echo "error: kv --fault stalled-shard ignored a violated bound" >&2
  exit 1
fi

echo "== chaos campaign smoke (mixed + rolling-crash, EBR + HP) =="
# Deterministic seeded chaos campaigns (DESIGN.md §13): every safety
# oracle (UAF/double-free freedom, accounting with crash slack, bounded
# garbage, recovery SLO, leak freedom) must hold; a failure prints the
# replayable schedule and exits 1.
dune exec bin/cdrc_bench.exe -- chaos --campaign mixed --schemes EBR,HP --validate
dune exec bin/cdrc_bench.exe -- chaos --campaign rolling-crash --schemes EBR,HP --validate

echo "== chaos recovery gate (breaker must carry the stall storm) =="
# The graceful-degradation contract, inverted and straight: a stall
# storm on EBR with the breaker disabled must blow the backlog bound
# (exit 1) — and the identical campaign with the breaker on must pass.
if dune exec bin/cdrc_bench.exe -- chaos --campaign stall-storm --breaker off \
    --schemes EBR --steps 6000 --write-pct 60 --bound 256 >/dev/null 2>&1; then
  echo "error: breaker-off stall storm passed — the chaos gate no longer gates" >&2
  exit 1
fi
dune exec bin/cdrc_bench.exe -- chaos --campaign stall-storm --breaker on \
  --schemes EBR --steps 6000 --write-pct 60 --bound 256

echo "== telemetry smoke (chaos) =="
# The chaos arm of stats: breaker/retry/shed metrics must be present
# and nonzero, and the exported trace must parse.
dune exec bin/cdrc_bench.exe -- stats chaos --schemes EBR,HP --check

echo "== perf trajectory gate (committed points) =="
# Compare the two most recent committed BENCH_PR<N>.json trajectory
# points directly. This comparison is deterministic (two fixed files),
# so it runs at the strict default tolerances with a documented
# allowlist instead of the wide machine-noise tolerances below:
#   - reclaim_p99 cells: the latency histogram is log2-bucketed, so a
#     one-bucket wobble between sessions reads as +100%;
#   - stack/queue/hash throughput cells at PR8: cross-session jitter
#     on the shared 1-core CI host (the structures' code is unchanged
#     in PR8; the kv-* cells are the new coverage and are gated via
#     the baseline-vs-smoke stage below once both sides carry them).
# Additions here must name the offending cell and the reason.
prev_points=$(ls BENCH_PR*.json 2>/dev/null | sort | tail -2)
if [ "$(echo "$prev_points" | wc -l)" -eq 2 ]; then
  # shellcheck disable=SC2086
  tools/bench_check $prev_points \
    --allow 'None/stack,RCEBR/stack/1,IBR/stack/4,Hyaline/stack/4' \
    --allow 'RCHP-weak/queue/4,RCHyaline-weak/queue/4,locked-weak/queue/4' \
    --allow 'HE/hash/4,RCHyaline/hash/4,RCHE/hash/4'
fi

echo "== perf smoke (pinned matrix, P=1, short) =="
# Emit a schema-valid perf summary (DESIGN.md §11) and gate it against
# the committed baseline. The self-compare is the deterministic exit-0
# check; the baseline compare runs with tolerances wide enough for a
# 1-core CI host (absolute throughput is machine-specific — the strict
# 15/25 defaults are for trajectory points taken on one machine), so
# what it really asserts is that the cell matrix, schema and comparator
# still agree end-to-end.
dune exec bin/cdrc_bench.exe -- perf --threads 1 --duration 0.05 --keys 512 \
  --label ci-smoke --out results/BENCH_smoke.json --validate
tools/bench_check results/BENCH_smoke.json results/BENCH_smoke.json
baseline=$(ls BENCH_PR*.json 2>/dev/null | sort | tail -1 || true)
if [ -n "$baseline" ]; then
  tools/bench_check --throughput-tol 99 --latency-tol 100000 \
    "$baseline" results/BENCH_smoke.json
fi
rm -f results/BENCH_smoke.json

echo "== no committed result artifacts =="
# Raw run output (traces, sweep logs, smoke summaries) is regenerable
# and must not be versioned; the only committed perf artifacts are the
# repo-root BENCH_PR<N>.json trajectory points.
if git ls-files 'results/*.jsonl' 'results/*.txt' 'results/*.json' | grep -q .; then
  echo "error: results/ holds generated artifacts and must not be committed" >&2
  exit 1
fi

echo "CI OK"
