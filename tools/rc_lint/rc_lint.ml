(* rc-lint CLI.

   Usage: rc_lint [--json] [--allow-unsafe FILE] [--list-rules] [PATH...]
   Paths default to lib bin examples (relative to the cwd). Exit codes:
   0 = clean, 1 = findings, 2 = usage/IO error. *)

let () =
  let json = ref false in
  let allow_file = ref "" in
  let list_rules = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as a single JSON object");
      ( "--allow-unsafe",
        Arg.Set_string allow_file,
        "FILE allowlist of files where R4 (Obj escapes) is permitted" );
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit");
    ]
  in
  let usage = "rc_lint [--json] [--allow-unsafe FILE] [--list-rules] [PATH...]" in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (id, doc) -> Printf.printf "%s  %s\n" id doc)
      Rc_lint_lib.Lint.rules;
    exit 0
  end;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "examples" ] | ps -> ps
  in
  match
    let allow_unsafe =
      if !allow_file = "" then [] else Rc_lint_lib.Lint.load_allowlist !allow_file
    in
    List.iter
      (fun p ->
        if not (Sys.file_exists p) then failwith (Printf.sprintf "no such path: %s" p))
      paths;
    Rc_lint_lib.Lint.lint_paths ~allow_unsafe paths
  with
  | findings ->
      if !json then print_endline (Rc_lint_lib.Finding.list_to_json findings)
      else
        List.iter
          (fun f -> print_endline (Rc_lint_lib.Finding.to_human f))
          findings;
      exit (if findings = [] then 0 else 1)
  | exception e ->
      Printf.eprintf "rc_lint: %s\n" (Printexc.to_string e);
      exit 2
