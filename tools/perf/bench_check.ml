(* The perf-trajectory regression gate (DESIGN.md §11): compare two
   BENCH_*.json summaries and exit 1 on any unallowlisted regression.

     tools/bench_check BASE.json CAND.json
     tools/bench_check                      # two most recent BENCH_*.json in .

   All comparison semantics live in [Obs.Perf.compare_summaries]; this
   is only argument parsing, file discovery and rendering. Exit codes:
   0 = no regression, 1 = regression, 2 = usage or parse error. *)

let usage =
  "usage: bench_check [BASE.json CAND.json] [options]\n\
   With no files: compares the two most recent BENCH_*.json in the\n\
   current directory (older = baseline, newer = candidate).\n\
   options:\n\
  \  --throughput-tol PCT   max throughput drop per cell (default 15)\n\
  \  --latency-tol PCT      max p99 retire->free growth per cell (default 25)\n\
  \  --allow KEY[,KEY...]   allowlist cell keys or '/'-prefixes\n\
  \                         (e.g. 'RCEBR/hash/4' or 'RCEBR'); repeatable"

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("bench_check: " ^ m); exit 2) fmt

let () =
  let files = ref [] in
  let ttol = ref 15.0 in
  let ltol = ref 25.0 in
  let allow = ref [] in
  let float_arg name v =
    match float_of_string_opt v with Some f -> f | None -> die "%s: not a number: %s" name v
  in
  let rec parse = function
    | [] -> ()
    | "--throughput-tol" :: v :: rest ->
        ttol := float_arg "--throughput-tol" v;
        parse rest
    | "--latency-tol" :: v :: rest ->
        ltol := float_arg "--latency-tol" v;
        parse rest
    | "--allow" :: v :: rest ->
        allow := !allow @ String.split_on_char ',' v;
        parse rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | f :: rest when String.length f > 0 && f.[0] <> '-' ->
        files := !files @ [ f ];
        parse rest
    | f :: _ -> die "unknown option %s\n%s" f usage
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base_file, cand_file =
    match !files with
    | [ b; c ] -> (b, c)
    | [] -> (
        let found =
          Sys.readdir "." |> Array.to_list
          |> List.filter (fun f ->
                 String.starts_with ~prefix:"BENCH_" f && Filename.check_suffix f ".json")
          |> List.map (fun f -> ((Unix.stat f).Unix.st_mtime, f))
          |> List.sort compare |> List.rev
        in
        match found with
        | (_, newest) :: (_, previous) :: _ -> (previous, newest)
        | _ -> die "found %d BENCH_*.json in .; need two files (or pass them explicitly)"
                 (List.length found))
    | _ -> die "expected exactly two files\n%s" usage
  in
  let load f =
    match Obs.Perf.load_file f with
    | Ok s -> s
    | Error e -> die "%s: %s" f e
  in
  let base = load base_file in
  let cand = load cand_file in
  Printf.printf "baseline:  %s (%s, sha %s)\ncandidate: %s (%s, sha %s)\n" base_file
    base.Obs.Perf.s_meta.Obs.Perf.m_label base.Obs.Perf.s_meta.Obs.Perf.m_git_sha cand_file
    cand.Obs.Perf.s_meta.Obs.Perf.m_label cand.Obs.Perf.s_meta.Obs.Perf.m_git_sha;
  let regs, compared =
    Obs.Perf.compare_summaries ~throughput_tol:!ttol ~latency_tol:!ltol ~allow:!allow base
      cand
  in
  List.iter (fun r -> Format.printf "%a@." Obs.Perf.pp_regression r) regs;
  let allowed = List.length (List.filter (fun r -> r.Obs.Perf.r_allowed) regs) in
  Printf.printf "compared %d cells: %d regressions (%d allowlisted)\n" compared
    (List.length regs) allowed;
  if compared = 0 then die "no common cells between the two summaries";
  exit (if Obs.Perf.failed regs then 1 else 0)
