(* Tests for the rc-lint engine (DESIGN.md §9) over the fixture corpus
   in test/lint_fixtures: every rule fires exactly where expected,
   suppression attributes silence exactly one site, clean files stay
   clean, and parse failures surface as findings rather than crashes. *)

module Lint = Rc_lint_lib.Lint
module Finding = Rc_lint_lib.Finding

let fixture name = Filename.concat "lint_fixtures" name

let rules_of findings =
  List.map (fun f -> f.Finding.rule) findings |> List.sort String.compare

let check_rules name expected =
  let got = rules_of (Lint.lint_file (fixture name)) in
  Alcotest.(check (list string)) name (List.sort String.compare expected) got

let test_bad_files () =
  check_rules "core/sticky_counter_f.ml" [ "R1"; "R1" ];
  check_rules "core/slot_protocol.ml" [ "R1" ];
  check_rules "bad_r1_functor.ml" [ "R1" ];
  check_rules "ds/bad_r2_leak_manual.ml" [ "R2" ];
  check_rules "ds/bad_r2_norelease_manual.ml" [ "R2" ];
  check_rules "ds/bad_r3_retire_manual.ml" [ "R3" ];
  check_rules "ds/bad_r3_retire_loop_manual.ml" [ "R3" ];
  check_rules "bad_r4_obj_magic.ml" [ "R4" ];
  check_rules "ds/bad_r8_escape_manual.ml" [ "R8"; "R8" ];
  check_rules "ds/bad_r9_use_after_retire_manual.ml" [ "R9"; "R9" ];
  check_rules "smr/bad_r5_scheme.ml" [ "R5" ];
  check_rules "obs/bad_r6_counter.ml" [ "R6"; "R6" ];
  check_rules "smr/bad_r7_knobs.ml" [ "R7"; "R7" ]

let test_clean_files () =
  check_rules "clean.ml" [];
  check_rules "suppressed_r1.ml" [];
  check_rules "suppressed_r4.ml" [];
  check_rules "ds/suppressed_r8_manual.ml" [];
  check_rules "ds/suppressed_r9_manual.ml" []

(* suppressed_r2_manual.ml holds two identical leaks; the annotated
   one must be silent and the other must still fire. *)
let test_suppression_site_granular () =
  match Lint.lint_file (fixture "ds/suppressed_r2_manual.ml") with
  | [ f ] ->
      Alcotest.(check string) "rule" "R2" f.Finding.rule;
      Alcotest.(check bool) "fires on the unannotated binding" true (f.Finding.line >= 8)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_corpus_total () =
  let fs = Lint.lint_paths [ "lint_fixtures" ] in
  Alcotest.(check int) "total corpus findings" 19 (List.length fs)

let test_allowlist_gates_r4 () =
  let src = "let key x = Obj.repr x\n" in
  let flagged = Lint.lint_string ~filename:"lib/smr/ident.ml" src in
  Alcotest.(check (list string)) "flagged without allowlist" [ "R4" ] (rules_of flagged);
  let ok =
    Lint.lint_string ~allow_unsafe:[ "lib/smr/ident.ml" ] ~filename:"lib/smr/ident.ml" src
  in
  Alcotest.(check int) "clean with allowlist" 0 (List.length ok)

let test_parse_failure_is_a_finding () =
  match Lint.lint_string ~filename:"broken.ml" "let = =" with
  | [ f ] -> Alcotest.(check string) "rule" "parse" f.Finding.rule
  | fs -> Alcotest.failf "expected one parse finding, got %d" (List.length fs)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_json_output () =
  let fs = Lint.lint_file (fixture "bad_r4_obj_magic.ml") in
  let json = Finding.list_to_json fs in
  Alcotest.(check bool) "versioned" true (contains ~sub:{|"version":1|} json);
  Alcotest.(check bool) "count" true (contains ~sub:{|"count":1|} json);
  Alcotest.(check bool) "rule field" true (contains ~sub:{|"rule":"R4"|} json)

let () =
  Alcotest.run "lint"
    [
      ( "corpus",
        [
          Alcotest.test_case "bad files flagged" `Quick test_bad_files;
          Alcotest.test_case "clean files clean" `Quick test_clean_files;
          Alcotest.test_case "suppression is site-granular" `Quick
            test_suppression_site_granular;
          Alcotest.test_case "corpus total" `Quick test_corpus_total;
        ] );
      ( "engine",
        [
          Alcotest.test_case "allowlist gates R4" `Quick test_allowlist_gates_r4;
          Alcotest.test_case "parse failure is a finding" `Quick
            test_parse_failure_is_a_finding;
          Alcotest.test_case "json output" `Quick test_json_output;
        ] );
    ]
