(* Linearizability checking: first the checker itself (accepts valid
   histories, rejects invalid ones), then real recorded histories from
   our concurrent structures — the Treiber stack, the weak-pointer
   queue, and the HM list set — checked against their sequential
   models over many randomized short runs. *)

type stack_op = Push of int | Pop

let stack_model st op =
  match op with
  | Push v -> (v :: st, None)
  | Pop -> ( match st with [] -> ([], None) | x :: rest -> (rest, Some x))

let pp_stack_op ppf = function
  | Push v -> Format.fprintf ppf "push %d" v
  | Pop -> Format.fprintf ppf "pop"

let pp_res ppf = function
  | None -> Format.fprintf ppf "None"
  | Some v -> Format.fprintf ppf "Some %d" v

let check_stack h =
  Lincheck.check ~model:stack_model ~equal_res:( = ) ~init:[] h

(* ---------------- checker unit tests ---------------- *)

let ev thread op res inv ret = { Lincheck.thread; op; res; inv; ret }

let test_accepts_sequential () =
  (* push 1; pop -> 1 strictly ordered. *)
  let h = [ ev 0 (Push 1) None 0 1; ev 0 Pop (Some 1) 2 3 ] in
  Alcotest.(check bool) "valid" true (check_stack h)

let test_accepts_overlapping_reorder () =
  (* pop overlaps push and returns its value: only valid because they
     overlap (pop linearizes after push). *)
  let h = [ ev 0 (Push 7) None 0 3; ev 1 Pop (Some 7) 1 2 ] in
  Alcotest.(check bool) "valid overlap" true (check_stack h)

let test_rejects_causality_violation () =
  (* pop returns 7 but COMPLETED before push 7 was invoked. *)
  let h = [ ev 1 Pop (Some 7) 0 1; ev 0 (Push 7) None 2 3 ] in
  Alcotest.(check bool) "invalid" false (check_stack h)

let test_rejects_wrong_value () =
  let h = [ ev 0 (Push 1) None 0 1; ev 0 Pop (Some 2) 2 3 ] in
  Alcotest.(check bool) "wrong value" false (check_stack h)

let test_rejects_double_pop () =
  (* one push, two successful pops of the same value *)
  let h =
    [ ev 0 (Push 1) None 0 1; ev 0 Pop (Some 1) 2 3; ev 1 Pop (Some 1) 2 4 ]
  in
  Alcotest.(check bool) "double pop" false (check_stack h)

let test_explain_renders () =
  let h = [ ev 0 (Push 1) None 0 1; ev 0 Pop (Some 2) 2 3 ] in
  match
    Lincheck.check_or_explain ~model:stack_model ~equal_res:( = ) ~pp_op:pp_stack_op
      ~pp_res ~init:[] h
  with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error msg ->
      Alcotest.(check bool) "mentions history" true
        (String.length msg > 0
        && String.length msg >= 10
        &&
        let contains s sub =
          let n = String.length sub in
          let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        contains msg "push 1")

(* ---------------- recorded histories from real structures --------- *)

let record_stack_history (module R : Cdrc.Intf.S) seed =
  let module St = Ds.Treiber_stack_rc.Make (R) in
  let s = St.create ~max_threads:3 () in
  let rec_ = Lincheck.Recorder.create () in
  let worker pid () =
    let c = St.ctx s pid in
    let rng = Repro_util.Rng.create ~seed:(seed + pid) in
    for i = 1 to 4 do
      let v = (pid * 100) + i in
      if Repro_util.Rng.bool rng then
        ignore (Lincheck.Recorder.run rec_ ~thread:pid (Push v) (fun () -> St.push c v; None))
      else ignore (Lincheck.Recorder.run rec_ ~thread:pid Pop (fun () -> St.pop c))
    done;
    St.flush c
  in
  let ds = List.init 3 (fun pid -> Domain.spawn (worker pid)) in
  List.iter Domain.join ds;
  St.teardown s;
  Lincheck.Recorder.history rec_

let test_stack_histories_linearizable () =
  let module R = Cdrc.Make (Smr.Ebr) in
  for seed = 1 to 30 do
    let h = record_stack_history (module R) (seed * 131) in
    match
      Lincheck.check_or_explain ~model:stack_model ~equal_res:( = ) ~pp_op:pp_stack_op
        ~pp_res ~init:[] h
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d: %s" seed msg
  done

(* queue: enqueue/dequeue on the weak-pointer doubly-linked queue *)

type q_op = Enq of int | Deq

let queue_model st op =
  match op with
  | Enq v -> (st @ [ v ], None)
  | Deq -> ( match st with [] -> ([], None) | x :: rest -> (rest, Some x))

let pp_q_op ppf = function
  | Enq v -> Format.fprintf ppf "enq %d" v
  | Deq -> Format.fprintf ppf "deq"

let test_queue_histories_linearizable () =
  let module R = Cdrc.Make (Smr.Hp) in
  let module Q = Ds.Dl_queue_rc.Make (R) in
  for seed = 1 to 30 do
    let q = Q.create ~max_threads:3 () in
    let rec_ = Lincheck.Recorder.create () in
    let worker pid () =
      let c = Q.ctx q pid in
      let rng = Repro_util.Rng.create ~seed:(seed + (pid * 7)) in
      for i = 1 to 4 do
        let v = (pid * 100) + i in
        if Repro_util.Rng.bool rng then
          ignore
            (Lincheck.Recorder.run rec_ ~thread:pid (Enq v) (fun () -> Q.enqueue c v; None))
        else ignore (Lincheck.Recorder.run rec_ ~thread:pid Deq (fun () -> Q.dequeue c))
      done;
      Q.flush c
    in
    let ds = List.init 3 (fun pid -> Domain.spawn (worker pid)) in
    List.iter Domain.join ds;
    Q.teardown q;
    match
      Lincheck.check_or_explain ~model:queue_model ~equal_res:( = ) ~pp_op:pp_q_op ~pp_res
        ~init:[] (Lincheck.Recorder.history rec_)
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d: %s" seed msg
  done

(* set: insert/remove/contains on the HM list (RC version) *)

type set_op = Ins of int | Rem of int | Mem of int

module IntSet = Set.Make (Int)

let set_model st op =
  match op with
  | Ins k -> (IntSet.add k st, not (IntSet.mem k st))
  | Rem k -> (IntSet.remove k st, IntSet.mem k st)
  | Mem k -> (st, IntSet.mem k st)

let pp_set_op ppf = function
  | Ins k -> Format.fprintf ppf "ins %d" k
  | Rem k -> Format.fprintf ppf "rem %d" k
  | Mem k -> Format.fprintf ppf "mem %d" k

let pp_bool ppf b = Format.fprintf ppf "%b" b

let test_set_histories_linearizable () =
  let module R = Cdrc.Make (Smr.Ibr) in
  let module L = Ds.Hm_list_rc.Make (R) in
  for seed = 1 to 30 do
    let l = L.create ~max_threads:3 () in
    let rec_ = Lincheck.Recorder.create () in
    let worker pid () =
      let c = L.ctx l pid in
      let rng = Repro_util.Rng.create ~seed:(seed + (pid * 13)) in
      for _ = 1 to 4 do
        let k = Repro_util.Rng.int rng 3 in
        match Repro_util.Rng.int rng 3 with
        | 0 -> ignore (Lincheck.Recorder.run rec_ ~thread:pid (Ins k) (fun () -> L.insert c k))
        | 1 -> ignore (Lincheck.Recorder.run rec_ ~thread:pid (Rem k) (fun () -> L.remove c k))
        | _ -> ignore (Lincheck.Recorder.run rec_ ~thread:pid (Mem k) (fun () -> L.contains c k))
      done;
      L.flush c
    in
    let ds = List.init 3 (fun pid -> Domain.spawn (worker pid)) in
    List.iter Domain.join ds;
    L.teardown l;
    match
      Lincheck.check_or_explain ~model:set_model ~equal_res:( = ) ~pp_op:pp_set_op
        ~pp_res:pp_bool ~init:IntSet.empty
        (Lincheck.Recorder.history rec_)
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d: %s" seed msg
  done

(* ---------------- histories under the traced scheduler ------------- *)

(* The parallel recordings above sample a handful of real interleavings
   per run; here the SAME structures run as cooperative fibers under
   the deterministic scheduler, with explicit yields inside each
   recorded window so operations overlap, and every (bounded) schedule
   is enumerated — each one's history checked against the model. *)

let sched_queue_scenario (type q c) (module Q : Ds.Queue_intf.S with type t = q and type ctx = c)
    () : Sched.scenario =
  let q = Q.create ~max_threads:2 () in
  let rec_ : (q_op, int option) Lincheck.Recorder.t = Lincheck.Recorder.create () in
  let recorded pid op f =
    Lincheck.Recorder.run rec_ ~thread:pid op (fun () ->
        Sched.yield ();
        let r = f () in
        Sched.yield ();
        r)
  in
  let fiber pid () =
    let c = Q.ctx q pid in
    List.iter
      (fun i ->
        let v = (pid * 10) + i in
        if i mod 2 = 1 then ignore (recorded pid (Enq v) (fun () -> Q.enqueue c v; None))
        else ignore (recorded pid Deq (fun () -> Q.dequeue c)))
      [ 1; 2; 3 ];
    Q.flush c
  in
  {
    Sched.fibers = [| fiber 0; fiber 1 |];
    check =
      (fun () ->
        let h = Lincheck.Recorder.history rec_ in
        Q.teardown q;
        match
          Lincheck.check_or_explain ~model:queue_model ~equal_res:( = ) ~pp_op:pp_q_op
            ~pp_res ~init:[] h
        with
        | Ok () -> ()
        | Error msg -> failwith msg);
  }

let test_sched_histories (module Q : Ds.Queue_intf.S) () =
  (match Sched.explore_dfs ~max_preemptions:2 (fun () -> sched_queue_scenario (module Q) ()) with
  | Sched.Pass _ -> ()
  | r -> Alcotest.failf "dfs: %a" Sched.pp_result r);
  match Sched.explore_pct ~iters:200 ~depth:3 ~seed:5 (fun () -> sched_queue_scenario (module Q) ()) with
  | Sched.Pass _ -> ()
  | r -> Alcotest.failf "pct: %a" Sched.pp_result r

let test_ms_queue_sched_histories () =
  let module R = Cdrc.Make (Smr.Ebr) in
  let module Q0 = Ds.Ms_queue_rc.Make (R) in
  (* adapt: Ms_queue_rc.create takes extra optional knobs *)
  let module Q = struct
    include Q0

    let create ~max_threads () = Q0.create ~max_threads ()
  end in
  test_sched_histories (module Q) ()

let test_dl_queue_sched_histories () =
  let module R = Cdrc.Make (Smr.Hp) in
  let module Q = Ds.Dl_queue_rc.Make (R) in
  test_sched_histories (module Q) ()

(* ---------------- pruned checker agrees with the naive one --------- *)

(* Random plausible histories: simulate open/close of per-thread
   operations against a logical clock, with results that are sometimes
   wrong — so both acceptances and rejections are exercised. The
   memoized checker must agree with the unpruned reference exactly. *)
let gen_history seed =
  let rng = Repro_util.Rng.create ~seed in
  let nthreads = 2 + Repro_util.Rng.int rng 2 in
  let ops_per = 2 + Repro_util.Rng.int rng 2 in
  let clock = ref 0 in
  let remaining = Array.make nthreads ops_per in
  let open_op : (stack_op * int) option array = Array.make nthreads None in
  let acc = ref [] in
  let active () =
    let l = ref [] in
    for t = nthreads - 1 downto 0 do
      if remaining.(t) > 0 || open_op.(t) <> None then l := t :: !l
    done;
    !l
  in
  let rec go () =
    match active () with
    | [] -> List.rev !acc
    | ts -> (
        let t = List.nth ts (Repro_util.Rng.int rng (List.length ts)) in
        match open_op.(t) with
        | None ->
            let op =
              if Repro_util.Rng.bool rng then Push (Repro_util.Rng.int rng 3) else Pop
            in
            open_op.(t) <- Some (op, !clock);
            incr clock;
            remaining.(t) <- remaining.(t) - 1;
            go ()
        | Some (op, inv) ->
            let res =
              match op with
              | Push _ -> None
              | Pop ->
                  if Repro_util.Rng.bool rng then None
                  else Some (Repro_util.Rng.int rng 3)
            in
            acc := { Lincheck.thread = t; op; res; inv; ret = !clock } :: !acc;
            incr clock;
            open_op.(t) <- None;
            go ())
  in
  go ()

let qcheck_pruned_agrees_naive =
  QCheck2.Test.make ~name:"pruned check agrees with naive" ~count:300
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let h = gen_history seed in
      let pruned = Lincheck.check ~model:stack_model ~equal_res:( = ) ~init:[] h in
      let naive = Lincheck.check_naive ~model:stack_model ~equal_res:( = ) ~init:[] h in
      pruned = naive)

let () =
  Alcotest.run "lincheck"
    [
      ( "checker",
        [
          Alcotest.test_case "accepts sequential" `Quick test_accepts_sequential;
          Alcotest.test_case "accepts overlap reorder" `Quick test_accepts_overlapping_reorder;
          Alcotest.test_case "rejects causality violation" `Quick test_rejects_causality_violation;
          Alcotest.test_case "rejects wrong value" `Quick test_rejects_wrong_value;
          Alcotest.test_case "rejects double pop" `Quick test_rejects_double_pop;
          Alcotest.test_case "explain renders" `Quick test_explain_renders;
        ] );
      ( "recorded histories",
        [
          Alcotest.test_case "stack (RCEBR)" `Slow test_stack_histories_linearizable;
          Alcotest.test_case "queue (RCHP-weak)" `Slow test_queue_histories_linearizable;
          Alcotest.test_case "set (RCIBR list)" `Slow test_set_histories_linearizable;
        ] );
      ( "sched histories",
        [
          Alcotest.test_case "ms_queue (RCEBR)" `Quick test_ms_queue_sched_histories;
          Alcotest.test_case "dl_queue (RCHP-weak)" `Quick test_dl_queue_sched_histories;
        ] );
      ("pruning", [ QCheck_alcotest.to_alcotest qcheck_pruned_agrees_naive ]);
    ]
