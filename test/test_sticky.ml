(* Tests for the sticky counters: the wait-free implementation of
   Fig 7 and the CAS-loop baseline, checked against a sequential model
   (qcheck) and under real parallelism (exactly-one-death-credit). *)

module Sc = Sticky.Sticky_counter
module Cc = Sticky.Casloop_counter

(* ---------------- sequential unit tests, shared by both impls ------- *)

module Make_unit (C : Sticky.Counter_intf.S) (N : sig
  val label : string
end) =
struct
  let t name f = Alcotest.test_case (N.label ^ ": " ^ name) `Quick f

  let basic () =
    let c = C.create 1 in
    Alcotest.(check int) "load 1" 1 (C.load c);
    Alcotest.(check bool) "inc ok" true (C.increment_if_not_zero c);
    Alcotest.(check int) "load 2" 2 (C.load c);
    Alcotest.(check bool) "dec not zero" false (C.decrement c);
    Alcotest.(check int) "load 1 again" 1 (C.load c);
    Alcotest.(check bool) "dec to zero" true (C.decrement c);
    Alcotest.(check int) "load 0" 0 (C.load c);
    Alcotest.(check bool) "is_zero" true (C.is_zero c)

  let sticky_after_zero () =
    let c = C.create 1 in
    Alcotest.(check bool) "dec to zero" true (C.decrement c);
    (* Once dead, always dead: increments must fail forever. *)
    for _ = 1 to 10 do
      Alcotest.(check bool) "inc fails" false (C.increment_if_not_zero c);
      Alcotest.(check int) "still zero" 0 (C.load c)
    done

  let created_at_zero_is_dead () =
    let c = C.create 0 in
    Alcotest.(check int) "load 0" 0 (C.load c);
    Alcotest.(check bool) "inc fails" false (C.increment_if_not_zero c)

  let create_negative_rejected () =
    match C.create (-1) with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()

  let many_increments () =
    let c = C.create 1 in
    for i = 2 to 1000 do
      Alcotest.(check bool) "inc" true (C.increment_if_not_zero c);
      Alcotest.(check int) "count" i (C.load c)
    done;
    for i = 999 downto 1 do
      Alcotest.(check bool) "dec" false (C.decrement c);
      Alcotest.(check int) "count" i (C.load c)
    done;
    Alcotest.(check bool) "final dec" true (C.decrement c)

  let tests =
    [
      t "basic" basic;
      t "sticky after zero" sticky_after_zero;
      t "created at zero" created_at_zero_is_dead;
      t "negative rejected" create_negative_rejected;
      t "many increments" many_increments;
    ]
end

module Unit_sticky =
  Make_unit
    (Sc)
    (struct
      let label = "sticky"
    end)

module Unit_casloop =
  Make_unit
    (Cc)
    (struct
      let label = "casloop"
    end)

(* ---------------- qcheck: random op sequences vs a model ------------ *)

type op = Inc | Dec | Load

let op_gen = QCheck2.Gen.oneofl [ Inc; Dec; Load ]

(* The model: an int that sticks at zero. A Dec is only legal when the
   model count is >= 1 (callers own a unit), so illegal Decs are
   skipped, mirroring the library precondition. *)
let model_check ops =
  let c = Sc.create 1 in
  let model = ref 1 in
  let dead = ref false in
  List.for_all
    (fun op ->
      match op with
      | Inc ->
          let expected = (not !dead) && !model > 0 in
          let got = Sc.increment_if_not_zero c in
          if got then incr model;
          got = expected
      | Dec ->
          if !model = 0 then true (* skip: precondition violation *)
          else begin
            decr model;
            let expected_dead = !model = 0 in
            let got = Sc.decrement c in
            if expected_dead then dead := true;
            got = expected_dead
          end
      | Load -> Sc.load c = !model)
    ops

let qcheck_sequential =
  QCheck2.Test.make ~name:"sticky matches sequential model" ~count:2000
    QCheck2.Gen.(list_size (int_range 0 60) op_gen)
    model_check

(* ---------------- parallel stress ----------------------------------- *)

(* P domains each own one unit of the count and drop it after a burst
   of inc/dec pairs; exactly one decrement overall must report
   bringing the counter to zero. *)
let parallel_one_death (module C : Sticky.Counter_intf.S) () =
  for _round = 1 to 50 do
    let p = 4 in
    let c = C.create p in
    let deaths = Atomic.make 0 in
    let domains =
      List.init p (fun _ ->
          Domain.spawn (fun () ->
              for _ = 1 to 100 do
                if C.increment_if_not_zero c then
                  if C.decrement c then ignore (Atomic.fetch_and_add deaths 1)
              done;
              (* drop our owned unit *)
              if C.decrement c then ignore (Atomic.fetch_and_add deaths 1)))
    in
    List.iter Domain.join domains;
    Alcotest.(check int) "exactly one death" 1 (Atomic.get deaths);
    Alcotest.(check int) "count is zero" 0 (C.load c);
    Alcotest.(check bool) "stuck" false (C.increment_if_not_zero c)
  done

(* Loads racing a death must return a value consistent with
   linearizability: once a load returns 0, every later load returns 0. *)
let parallel_load_monotone_death () =
  for _round = 1 to 50 do
    let c = Sc.create 1 in
    let saw_zero_then_nonzero = Atomic.make false in
    let reader =
      Domain.spawn (fun () ->
          let seen_zero = ref false in
          for _ = 1 to 1000 do
            let v = Sc.load c in
            if v = 0 then seen_zero := true
            else if !seen_zero then Atomic.set saw_zero_then_nonzero true
          done)
    in
    let killer = Domain.spawn (fun () -> ignore (Sc.decrement c)) in
    Domain.join reader;
    Domain.join killer;
    Alcotest.(check bool) "zero is final" false (Atomic.get saw_zero_then_nonzero)
  done

(* Helped-death protocol: a load that observes a mid-flight decrement
   helps announce the death; the decrement must still claim exactly one
   credit. This targets the help-flag path of Fig 7. *)
let parallel_load_vs_decrement () =
  for _round = 1 to 200 do
    let c = Sc.create 1 in
    let death = Atomic.make 0 in
    let loader = Domain.spawn (fun () -> Array.init 50 (fun _ -> Sc.load c)) in
    let killer =
      Domain.spawn (fun () -> if Sc.decrement c then ignore (Atomic.fetch_and_add death 1))
    in
    let loads = Domain.join loader in
    Domain.join killer;
    Alcotest.(check int) "one death credit" 1 (Atomic.get death);
    (* All loads are 0 or 1, and non-increasing. *)
    let ok = ref true in
    let prev = ref max_int in
    Array.iter
      (fun v ->
        if v > !prev || v > 1 then ok := false;
        prev := v)
      loads;
    Alcotest.(check bool) "loads monotone non-increasing" true !ok
  done

(* ---------------- schedule exploration --------------------------------- *)

(* The qcheck model test above samples random op sequences under a
   SEQUENTIAL execution; here the same model becomes a linearizability
   spec and every interleaving of short concurrent op sequences is
   explored deterministically (Sched + Lincheck). Small bounds suffice:
   the Fig 7 races need two fibers and one or two ops. *)

module Sx = Explore.Scenarios

let short_seqs =
  (* all op scripts of length <= 2 over {Inc; Dec; Load}: 13 of them *)
  let ops = [ Sx.Inc; Sx.Dec; Sx.Load ] in
  ([] :: List.map (fun o -> [ o ]) ops)
  @ List.concat_map (fun a -> List.map (fun b -> [ a; b ]) ops) ops

let pp_script s =
  String.concat ","
    (List.map (function Sx.Inc -> "inc" | Sx.Dec -> "dec" | Sx.Load -> "load") s)

let test_sched_exhaustive_vs_model () =
  (* every pair of short scripts on 2 fibers, every schedule up to 2
     preemptions: the recorded history must linearize against the
     sequential model *)
  List.iter
    (fun s0 ->
      List.iter
        (fun s1 ->
          match
            Sched.explore_dfs ~max_preemptions:2 (fun () ->
                Sx.sticky_lincheck ~seqs:[| s0; s1 |] ())
          with
          | Sched.Pass _ -> ()
          | r ->
              Alcotest.failf "scripts [%s] / [%s]: %a" (pp_script s0) (pp_script s1)
                Sched.pp_result r)
        short_seqs)
    short_seqs

let test_sched_mutant_drop_help_caught () =
  (* the injected Fig 7 bug — load announces the death without
     publishing the help flag — must fail linearization on the
     load-vs-final-decrement config, with a replayable schedule.
     Fiber 0 drops its unit first so its loads race fiber 1's killing
     decrement (loads before the fiber's own Dec can never see the
     death in flight). *)
  let mk () = Sx.sticky_lincheck ~mutate:true ~seqs:[| [ Sx.Dec; Sx.Load ]; [] |] () in
  match Sched.explore_dfs mk with
  | Sched.Fail f -> (
      Format.printf "sticky model mutant caught: %s@.  replay %a@." f.Sched.f_message
        Sched.pp_trace f.Sched.f_trace;
      match Sched.replay ~trace:f.Sched.f_trace mk with
      | Sched.Fail _ -> ()
      | r -> Alcotest.failf "trace did not replay: %a" Sched.pp_result r)
  | r -> Alcotest.failf "drop-help mutant survived model exploration: %a" Sched.pp_result r

let () =
  Alcotest.run "sticky"
    [
      ("unit", Unit_sticky.tests @ Unit_casloop.tests);
      ("qcheck", [ QCheck_alcotest.to_alcotest qcheck_sequential ]);
      ( "sched",
        [
          Alcotest.test_case "exhaustive vs model" `Quick test_sched_exhaustive_vs_model;
          Alcotest.test_case "drop-help mutant caught" `Quick
            test_sched_mutant_drop_help_caught;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "one death credit (sticky)" `Slow
            (parallel_one_death (module Sc));
          Alcotest.test_case "one death credit (casloop)" `Slow
            (parallel_one_death (module Cc));
          Alcotest.test_case "load monotone at death" `Slow parallel_load_monotone_death;
          Alcotest.test_case "load vs decrement helping" `Slow parallel_load_vs_decrement;
        ] );
    ]
