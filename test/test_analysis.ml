(* Tests for the happens-before race & lifetime sanitizer
   (DESIGN.md §14): vector-clock algebra first, then pinned-schedule
   replays of tiny two-fiber scenarios whose happens-before verdicts
   are computed by hand — each trace below is annotated with the clock
   arithmetic that justifies the expected verdict. Finally the §14
   registry itself: clean sanitized targets survive exhaustive DFS
   with zero false positives, and the seeded mutants are caught. *)

module V = Analysis.Vclock
module Mon = Analysis.Race_monitor
module T = Sched.Traced

(* ---------------- vector clocks ---------------- *)

let test_vclock_algebra () =
  let a = V.make 3 and b = V.make 3 in
  V.tick a 0;
  V.tick a 0;
  V.tick b 1;
  (* a = [2;0;0], b = [0;1;0]: concurrent *)
  Alcotest.(check bool) "a not leq b" false (V.leq a b);
  Alcotest.(check bool) "b not leq a" false (V.leq b a);
  Alcotest.(check bool) "leq reflexive" true (V.leq a a);
  let j = V.copy a in
  V.join j b;
  (* j = [2;1;0]: the lub *)
  Alcotest.(check int) "join component 0" 2 (V.get j 0);
  Alcotest.(check int) "join component 1" 1 (V.get j 1);
  Alcotest.(check bool) "a leq join" true (V.leq a j);
  Alcotest.(check bool) "b leq join" true (V.leq b j);
  (* copy does not alias *)
  V.tick a 2;
  Alcotest.(check int) "copy is a snapshot" 0 (V.get j 2);
  Alcotest.(check int) "size" 3 (V.size j);
  Alcotest.(check string) "printing" "<2,1,0>" (V.to_string j)

let test_vclock_zero_is_bottom () =
  let z = V.make 2 and c = V.make 2 in
  V.tick c 1;
  Alcotest.(check bool) "zero leq anything" true (V.leq z c);
  Alcotest.(check bool) "anything not leq zero" false (V.leq c z)

(* ---------------- pinned-schedule HB verdicts ----------------

   Decision/trace model (see Sched): every trace entry picks which
   fiber runs its next segment; a fiber's first segment runs from
   dispatch to its first atomic op's yield, and each later segment
   executes one atomic op and runs to the next yield (or to
   completion). Protocol events between atomic ops belong to the
   enclosing segment. Clocks are written [f0;f1;setup]. *)

let expect_fail name trace mk ~needle =
  match Sched.replay ~trace mk with
  | Sched.Fail f ->
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: message %S mentions %S" name f.Sched.f_message needle)
        true
        (contains needle f.Sched.f_message)
  | r -> Alcotest.failf "%s: expected a violation, got %a" name Sched.pp_result r

let expect_pass name trace mk =
  match Sched.replay ~trace mk with
  | Sched.Pass _ -> ()
  | r -> Alcotest.failf "%s: expected pass, got %a" name Sched.pp_result r

(* Rule (b), violated: fiber 0 ticks (exchange on a private cell), then
   derefs — deref clock [1;0;s]. Fiber 1 never synchronizes with it, so
   at the free its clock is the fork clock [0;0;s], and
   [1;0;s] <= [0;0;s] fails: the protection interval is not ordered
   before the free. Trace [0;0;1]: dispatch f0, execute its exchange
   (deref happens in that segment, f0 finishes), dispatch f1 (no atomic
   ops: retire + free run to completion and the free trips the check). *)
let hb_unordered () : Sched.scenario =
  let mon = Mon.create ~fibers:2 () in
  Mon.register mon ~ident:1;
  let scratch = T.make 0 in
  {
    Sched.fibers =
      [|
        (fun () ->
          ignore (T.exchange scratch 1);
          Mon.deref mon ~ident:1);
        (fun () ->
          Mon.retire mon ~ident:1;
          Mon.free mon ~ident:1);
      |];
    check = (fun () -> ());
  }

(* Rule (b), satisfied: same shape, but fiber 0 publishes on [flag]
   after the deref and fiber 1 reads [flag] before freeing. Deref clock
   [1;0;s]; the set publishes [1;0;s] at flag; fiber 1's get joins it,
   so the freer's clock is [1;1;s] and [1;0;s] <= [1;1;s] holds.
   Trace [0;0;0;1;1]: f0 = dispatch + exchange-segment + set-segment;
   f1 = dispatch + get-segment (retire and free follow the get). *)
let hb_ordered () : Sched.scenario =
  let mon = Mon.create ~fibers:2 () in
  Mon.register mon ~ident:1;
  let scratch = T.make 0 in
  let flag = T.make 0 in
  {
    Sched.fibers =
      [|
        (fun () ->
          ignore (T.exchange scratch 1);
          Mon.deref mon ~ident:1;
          T.set flag 1);
        (fun () ->
          if T.get flag = 1 then begin
            Mon.retire mon ~ident:1;
            Mon.free mon ~ident:1
          end);
      |];
    check = (fun () -> ());
  }

(* Rule (a), ordered flavor: the retire (clock [0;0;s]) is published to
   fiber 1 through [flag], so the unguarded deref at clock [0;1;s] is
   HB-AFTER the retire — "dereferences it after its retire". *)
let retired_use_ordered () : Sched.scenario =
  let mon = Mon.create ~fibers:2 () in
  Mon.register mon ~ident:1;
  let flag = T.make 0 in
  {
    Sched.fibers =
      [|
        (fun () ->
          Mon.retire mon ~ident:1;
          T.set flag 1);
        (fun () -> if T.get flag = 1 then Mon.deref mon ~ident:1);
      |];
    check = (fun () -> ());
  }

(* Rule (a), racing flavor: retire at clock [1;0;s] (after a tick on a
   private cell), deref at [0;1;s] (after a tick on a different private
   cell) — incomparable, so the deref RACES the retire. *)
let retired_use_racing () : Sched.scenario =
  let mon = Mon.create ~fibers:2 () in
  Mon.register mon ~ident:1;
  let s0 = T.make 0 in
  let s1 = T.make 0 in
  {
    Sched.fibers =
      [|
        (fun () ->
          ignore (T.exchange s0 1);
          Mon.retire mon ~ident:1);
        (fun () ->
          ignore (T.exchange s1 1);
          Mon.deref mon ~ident:1);
      |];
    check = (fun () -> ());
  }

(* Rule (a), suppressed by a guard: same race as above, but fiber 1
   announces a covering guard first — no violation on any schedule of
   this trace. *)
let retired_use_guarded () : Sched.scenario =
  let mon = Mon.create ~fibers:2 () in
  Mon.register mon ~ident:1;
  let s0 = T.make 0 in
  let s1 = T.make 0 in
  {
    Sched.fibers =
      [|
        (fun () ->
          ignore (T.exchange s0 1);
          Mon.retire mon ~ident:1);
        (fun () ->
          Mon.acquire mon ~ident:1;
          ignore (T.exchange s1 1);
          Mon.deref mon ~ident:1;
          Mon.release mon ~ident:1);
      |];
    check = (fun () -> ());
  }

let test_rule_b_unordered () =
  expect_fail "unordered free" [ 0; 0; 1 ] hb_unordered
    ~needle:"not ordered before free"

let test_rule_b_ordered () = expect_pass "ordered free" [ 0; 0; 0; 1; 1 ] hb_ordered

let test_rule_a_ordered () =
  expect_fail "use after retire" [ 0; 0; 1; 1 ] retired_use_ordered
    ~needle:"dereferences it"

let test_rule_a_racing () =
  expect_fail "deref races retire" [ 0; 0; 1; 1 ] retired_use_racing
    ~needle:"races retire"

let test_rule_a_guarded () =
  expect_pass "guard covers the deref" [ 0; 0; 1; 1 ] retired_use_guarded

(* Rule (c): the ledger is schedule-independent — any order of one
   legitimate death-taking decrement and one stray decrement drives
   the count negative at the second. *)
let rc_double_decrement () : Sched.scenario =
  let mon = Mon.create ~fibers:2 () in
  Mon.rc_register mon ~ident:1 ~count:1;
  {
    Sched.fibers =
      [|
        (fun () -> Mon.rc_decr mon ~ident:1 ~death:true);
        (fun () -> Mon.rc_decr mon ~ident:1 ~death:false);
      |];
    check = (fun () -> Mon.check mon);
  }

let rc_lost_death () : Sched.scenario =
  let mon = Mon.create ~fibers:2 () in
  Mon.rc_register mon ~ident:1 ~count:2;
  {
    Sched.fibers =
      [|
        (fun () -> Mon.rc_decr mon ~ident:1 ~death:false);
        (fun () -> Mon.rc_decr mon ~ident:1 ~death:false);
      |];
    check = (fun () -> Mon.check mon);
  }

let test_rc_double_decrement () =
  expect_fail "double decrement" [ 0; 1 ] rc_double_decrement
    ~needle:"duplicated decrement"

let test_rc_lost_death () =
  expect_fail "lost death credit" [ 0; 1 ] rc_lost_death ~needle:"lost death credit"

(* ---------------- the §14 registry ---------------- *)

let run_dfs name =
  match Explore.find_san name with
  | None -> Alcotest.failf "unknown sanitized target %s" name
  | Some t ->
      ( t,
        Explore.run_target t ~mode:Explore.Dfs ~seed:1 ~iters:0 ~max_preemptions:None
          ~max_steps:10_000 ~depth:3 ~replay:None )

let test_clean_targets_no_false_positives () =
  List.iter
    (fun name ->
      match run_dfs name with
      | _, Sched.Pass _ -> ()
      | _, r -> Alcotest.failf "%s: false positive under DFS: %a" name Sched.pp_result r)
    [ "san-slots"; "san-handoff"; "san-weak-upgrade" ]

let test_mutants_caught () =
  List.iter
    (fun (name, needle) ->
      match run_dfs name with
      | _, Sched.Fail f ->
          let contains sub s =
            let n = String.length sub and m = String.length s in
            let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s caught (%s)" name f.Sched.f_message)
            true
            (contains needle f.Sched.f_message)
      | _, r -> Alcotest.failf "%s: mutant survived: %a" name Sched.pp_result r)
    [
      ("san-slots-drop-acquire", "block #1");
      ("san-handoff-retire-early", "block #1");
      ("san-rc-extra-dec", "rc cell #1");
    ]

let test_mutant_trace_replays () =
  (* the printed schedule is a complete reproducer: replaying it hits
     the identical violation *)
  match run_dfs "san-handoff-retire-early" with
  | t, Sched.Fail f -> (
      match Sched.replay ~trace:f.Sched.f_trace t.Explore.t_mk with
      | Sched.Fail f' ->
          Alcotest.(check string) "same violation" f.Sched.f_message f'.Sched.f_message
      | r -> Alcotest.failf "replay diverged: %a" Sched.pp_result r)
  | _, r -> Alcotest.failf "mutant survived: %a" Sched.pp_result r

let () =
  Alcotest.run "analysis"
    [
      ( "vclock",
        [
          Alcotest.test_case "algebra" `Quick test_vclock_algebra;
          Alcotest.test_case "zero is bottom" `Quick test_vclock_zero_is_bottom;
        ] );
      ( "pinned-hb",
        [
          Alcotest.test_case "rule b: unordered free flagged" `Quick test_rule_b_unordered;
          Alcotest.test_case "rule b: ordered free clean" `Quick test_rule_b_ordered;
          Alcotest.test_case "rule a: ordered use-after-retire" `Quick test_rule_a_ordered;
          Alcotest.test_case "rule a: racing deref" `Quick test_rule_a_racing;
          Alcotest.test_case "rule a: guard covers" `Quick test_rule_a_guarded;
          Alcotest.test_case "rule c: double decrement" `Quick test_rc_double_decrement;
          Alcotest.test_case "rule c: lost death credit" `Quick test_rc_lost_death;
        ] );
      ( "registry",
        [
          Alcotest.test_case "clean targets: zero false positives" `Quick
            test_clean_targets_no_false_positives;
          Alcotest.test_case "mutants caught" `Quick test_mutants_caught;
          Alcotest.test_case "mutant trace replays" `Quick test_mutant_trace_replays;
        ] );
    ]
