(* Tests for the benchmark harness itself: the driver must prefill to
   the requested size, count operations, sample memory, and leave no
   leaks; the experiment registry must cover every figure; the queue
   driver must conserve elements. *)

module L_ebr = Ds.Hm_list_manual.Make (Smr.Ebr)
module D = Workload.Driver.Run (L_ebr)

let tiny_spec =
  {
    Workload.Driver.default_spec with
    threads = 2;
    duration = 0.1;
    key_range = 256;
    init_size = 128;
    update_pct = 20;
  }

let test_driver_basics () =
  let r = D.run ~spec:tiny_spec () in
  Alcotest.(check string) "scheme name" "EBR" r.scheme;
  Alcotest.(check bool) "performed ops" true (r.total_ops > 0);
  (* No wall-clock bounds: they are flaky on loaded machines. Check the
     measurement is internally consistent instead — elapsed is positive
     and the reported throughput derives from ops/elapsed. *)
  Alcotest.(check bool) "elapsed positive" true (r.elapsed > 0.);
  Alcotest.(check bool) "throughput positive" true (r.mops > 0.);
  let derived = float_of_int r.total_ops /. r.elapsed /. 1e6 in
  Alcotest.(check bool) "mops consistent with ops/elapsed" true
    (abs_float (r.mops -. derived) <= 0.05 *. derived);
  Alcotest.(check bool) "live average near init size" true
    (r.live_avg > 64. && r.live_avg < 512.);
  Alcotest.(check int) "no leak" 0 r.leaked;
  Alcotest.(check int) "no uaf on EBR" 0 r.uaf

let test_driver_deterministic_prefill () =
  (* Same seed => same prefill contents: verify via size only (the
     driver owns teardown, so probe with a fresh structure). *)
  let d = L_ebr.create ~max_threads:1 () in
  let c = L_ebr.ctx d 0 in
  let rng = Repro_util.Rng.create ~seed:tiny_spec.seed in
  let filled = ref 0 in
  while !filled < tiny_spec.init_size do
    if L_ebr.insert c (Repro_util.Rng.int rng tiny_spec.key_range) then incr filled
  done;
  Alcotest.(check int) "prefill reaches target" tiny_spec.init_size (L_ebr.size d);
  L_ebr.teardown d

let test_registry_covers_figures () =
  let ids =
    List.map (fun e -> e.Workload.Experiments.id) Workload.Experiments.set_experiments
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (List.mem id ids))
    [ "fig11"; "fig13a"; "fig13b"; "fig13c"; "fig13d"; "fig13e"; "fig13f" ]

let test_instance_matrix_complete () =
  List.iter
    (fun s ->
      let names =
        List.map
          (fun (module D : Ds.Set_intf.S) -> D.name)
          (Workload.Instances.all_sets s)
      in
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Workload.Instances.structure_name s ^ "/" ^ n)
            true (List.mem n names))
        [ "EBR"; "IBR"; "Hyaline"; "HP"; "HE"; "PTB"; "RCEBR"; "RCIBR"; "RCHyaline"; "RCHP"; "RCHE"; "RCPTB" ])
    [ Workload.Instances.List_s; Hash_s; Tree_s ];
  Alcotest.(check int) "8 queue instances" 8 (List.length Workload.Instances.queues)

let test_find_set () =
  (match Workload.Instances.find_set Workload.Instances.Tree_s "rcebr" with
  | Some (module D : Ds.Set_intf.S) -> Alcotest.(check string) "found" "RCEBR" D.name
  | None -> Alcotest.fail "RCEBR not found");
  Alcotest.(check bool) "unknown scheme" true
    (Workload.Instances.find_set Workload.Instances.Tree_s "nope" = None)

let test_queue_driver () =
  let module QR = Workload.Queue_driver.Run (Workload.Instances.Q_manual) in
  let r = QR.run ~threads:2 ~duration:0.1 () in
  Alcotest.(check bool) "ops" true (r.total_ops > 0);
  Alcotest.(check int) "no leak" 0 r.leaked

let () =
  Alcotest.run "workload"
    [
      ( "driver",
        [
          Alcotest.test_case "basics" `Slow test_driver_basics;
          Alcotest.test_case "deterministic prefill" `Quick test_driver_deterministic_prefill;
        ] );
      ( "registry",
        [
          Alcotest.test_case "figures covered" `Quick test_registry_covers_figures;
          Alcotest.test_case "instance matrix" `Quick test_instance_matrix_complete;
          Alcotest.test_case "find_set" `Quick test_find_set;
        ] );
      ("queue driver", [ Alcotest.test_case "basics" `Slow test_queue_driver ]);
    ]
