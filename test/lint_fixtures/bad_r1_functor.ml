(* rc-lint fixture: any module taking an ATOMIC parameter must route
   every atomic op through it; Stdlib.Atomic bypasses the shim. Never
   compiled. *)
module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
end

module Make (A : ATOMIC) = struct
  let cheat () = Stdlib.Atomic.make 0
  let fine () = A.make 0
end
