(* rc-lint fixture: a scheme capturing its tuning knobs as record
   fields — constants the adaptive controller cannot move (R7 fires on
   each knob-named field; [slots_per_thread] is structural and exempt).
   Never compiled. *)

type t = {
  epoch_freq : int;
  mutable cleanup_freq : int;
  slots_per_thread : int;
  mutable count : int;
}

let create ~epoch_freq ~cleanup_freq ~slots_per_thread () =
  { epoch_freq; cleanup_freq; slots_per_thread; count = 0 }

let due t =
  t.count <- t.count + 1;
  t.count mod t.cleanup_freq = 0 || t.count mod t.epoch_freq = 0
