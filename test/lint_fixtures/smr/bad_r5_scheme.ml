(* rc-lint fixture: an SMR scheme defining [retire] without touching
   Obs.Scheme_metrics.on_retire — telemetry would silently rot. Never
   compiled. *)
let retire _t ~pid:_ _id _op = ()
let acquire _t ~pid:_ _ = None
