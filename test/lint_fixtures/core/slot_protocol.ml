(* rc-lint fixture: a raw [open Atomic] inside a core file is just as
   blinding as a qualified call. Never compiled. *)
open Atomic

let spin r = while not (compare_and_set r 0 1) do () done
