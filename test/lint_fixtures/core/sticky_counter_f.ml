(* rc-lint fixture: named after a schedule-sensitive core, so R1
   applies to the whole file. Raw Atomic calls must be flagged — the
   §8 explorer cannot interpose on them. Never compiled. *)
module Make () = struct
  let counter = Atomic.make 0
  let bump () = Atomic.fetch_and_add counter 1
end
