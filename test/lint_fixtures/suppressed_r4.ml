(* rc-lint fixture: a floating file-level allow silences R4 from this
   point down — must produce zero findings. Never compiled. *)
[@@@rc_lint.allow "R4"]

let coerce (x : int) : string = Obj.magic x
