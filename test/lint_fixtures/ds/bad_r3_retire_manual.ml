(* rc-lint fixture: retire with no dominating CAS — the node may
   still be reachable from the structure. Never compiled. *)
let remove c node =
  let next = next_of node in
  mark node;
  retire c node;
  next
