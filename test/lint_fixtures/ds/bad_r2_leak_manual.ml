(* rc-lint fixture: acquires, releases on the happy path, but the
   early-raise path leaks the protection slot. Never compiled. *)
let pop c =
  let v, g = protect c c.head in
  if is_bad v then failwith "bad head"
  else begin
    release c g;
    v
  end
