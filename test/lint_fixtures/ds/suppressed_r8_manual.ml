(* rc-lint fixture: the same field-store escape as
   bad_r8_escape_manual, deliberately kept (a debug cursor) and
   silenced at the binding. Never compiled. *)
let peek c =
  let g = protect c c.head in
  c.saved <- Some g;
  let v = value_of g in
  release c g;
  v
[@@rc_lint.allow "R8"]
