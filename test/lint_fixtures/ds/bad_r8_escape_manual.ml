(* rc-lint fixture: guards escaping their protection scope — one
   stored into a mutable field (the structure outlives the frame), one
   returned to the caller inside a tuple. Never compiled. *)
let peek c =
  let g = protect c c.head in
  c.saved <- Some g;
  let v = value_of g in
  release c g;
  v

let cursor_pair c =
  let g = acquire c c.head in
  release c g;
  (value_of c, g)
