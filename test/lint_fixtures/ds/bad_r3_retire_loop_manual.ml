(* rc-lint fixture: retire on the CAS *failure* arm is flagged; the
   success-arm retire in [delete_ok] is not. Never compiled. *)
let delete c node = if Atomic.compare_and_set (link c) (Some node) None then () else retire c node
let delete_ok c node = if Atomic.compare_and_set (link c) (Some node) None then retire c node
