(* rc-lint fixture: acquires protection and never releases anywhere —
   the slot is permanently leaked. Never compiled. *)
let peek c =
  let v, _g = protect c c.head in
  v
