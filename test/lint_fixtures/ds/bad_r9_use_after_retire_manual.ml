(* rc-lint fixture: a node read after retire — once directly, once
   through a helper whose summary says it retires its second argument
   (the interprocedural case). Never compiled. *)
let drop_node c n = if cas_link c.head (Some n) (next_of n) then retire c n

let dequeue c =
  match swing_head c with
  | None -> None
  | Some n ->
      if cas_link c.head (Some n) (next_of n) then begin
        retire c n;
        Some (value_of n)
      end
      else None

let dequeue_via_helper c =
  match swing_head c with
  | None -> None
  | Some n ->
      drop_node c n;
      Some (value_of n)
