(* rc-lint fixture: a deliberate post-retire read (the value field is
   immutable and the test harness keeps the block alive), silenced at
   the expression. Never compiled. *)
let dequeue c =
  match swing_head c with
  | None -> None
  | Some n ->
      if cas_link c.head (Some n) (next_of n) then begin
        retire c n;
        (Some (value_of n) [@rc_lint.allow "R9"])
      end
      else None
