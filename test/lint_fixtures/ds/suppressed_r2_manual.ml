(* rc-lint fixture: two identical leaks, one annotated. Suppression
   must silence exactly that one site. Never compiled. *)
let peek_annotated c =
  let v, _g = protect c c.head in
  v
[@@rc_lint.allow "R2"]

let peek_leaky c =
  let v, _g = protect c c.head in
  v
