(* rc-lint fixture: per-domain hot counters declared as bare arrays —
   both fields share cache lines across domains. Never compiled. *)
type t = { name : string; hits : int array; misses : int Atomic.t array }

let bump t pid = t.hits.(pid) <- t.hits.(pid) + 1
