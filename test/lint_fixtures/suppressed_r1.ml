(* rc-lint fixture: the same raw-atomic escape as bad_r1_functor, but
   annotated at the site — must produce zero findings. Never compiled. *)
module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
end

module Make (A : ATOMIC) = struct
  let seeded () = (Stdlib.Atomic.make 0 [@rc_lint.allow "R1"])
  let fine () = A.make 0
end
