(* rc-lint fixture: a clean file. Atomic use outside a core file or
   ATOMIC-functor body is fine, as is Fun.protect (scoped
   finalization, not slot protection). Never compiled. *)
let counter = Atomic.make 0
let bump () = Atomic.fetch_and_add counter 1

let with_file path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)
