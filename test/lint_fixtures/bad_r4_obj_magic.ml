(* rc-lint fixture: Obj escape outside the allowlist. Never compiled. *)
let coerce (x : int) : string = Obj.magic x
