(* The deterministic schedule-exploration harness (DESIGN.md §8):
   first the harness itself (the DFS explorer must find a known lost
   update, replay must reproduce it), then exhaustive exploration of
   the functorized lock-free cores — sticky counter (Fig 7),
   acquire-retire announcement slots (Fig 2), CDRC weak upgrade
   (Figs 8-9) — and detection of the two injected mutations. *)

module S = Explore.Scenarios

(* ---------------- the harness itself ---------------- *)

let test_finds_lost_update () =
  (* exhaustive, tiny: the racy counter has a lost-update schedule and
     DFS must find it *)
  match Sched.explore_dfs S.racy_counter with
  | Sched.Fail f ->
      Alcotest.(check bool)
        "message mentions lost update" true
        (String.length f.Sched.f_message > 0)
  | r -> Alcotest.failf "racy counter survived exploration: %a" Sched.pp_result r

let test_replay_reproduces () =
  match Sched.explore_dfs S.racy_counter with
  | Sched.Fail f -> (
      match Sched.replay ~trace:f.Sched.f_trace S.racy_counter with
      | Sched.Fail f' ->
          Alcotest.(check (list int)) "same schedule" f.Sched.f_trace f'.Sched.f_trace
      | r -> Alcotest.failf "replay did not reproduce: %a" Sched.pp_result r)
  | r -> Alcotest.failf "no counterexample to replay: %a" Sched.pp_result r

let test_trace_roundtrip () =
  let t = [ 0; 1; 1; 0; 1 ] in
  Alcotest.(check (list int))
    "roundtrip" t
    (Sched.trace_of_string (Sched.trace_to_string t));
  Alcotest.(check (list int)) "commas accepted" t (Sched.trace_of_string "0,1,1,0,1");
  Alcotest.(check (list int)) "empty" [] (Sched.trace_of_string "[]")

let rejects name s =
  match Sched.trace_of_string s with
  | t -> Alcotest.failf "%s: %S parsed as a trace of length %d" name s (List.length t)
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (name ^ ": error names the parser") true
        (String.length msg >= 21 && String.sub msg 0 21 = "Sched.trace_of_string")

let test_trace_garbage_rejected () =
  rejects "word" "bogus";
  rejects "trailing garbage" "[0;1;x]";
  rejects "unbalanced open" "[0;1";
  rejects "unbalanced close" "0;1]";
  rejects "interior bracket" "[0;[1];2]";
  rejects "negative fiber" "[0;-1;2]";
  rejects "overflow" "[0;99999999999999999999999]";
  rejects "empty token" "[0;;1]";
  rejects "float" "[0;1.5]"

let prop_trace_roundtrip =
  QCheck2.Test.make ~name:"trace_of_string inverts trace_to_string" ~count:500
    QCheck2.Gen.(list_size (int_bound 40) (int_bound 8))
    (fun t -> Sched.trace_of_string (Sched.trace_to_string t) = t)

let prop_garbage_never_truncates =
  (* arbitrary strings either parse to a full trace (every token was a
     valid step) or raise Invalid_argument — never a silent prefix *)
  QCheck2.Test.make ~name:"garbage input never silently truncates" ~count:500
    QCheck2.Gen.(string_size ~gen:(oneofl [ '0'; '1'; '9'; ';'; ','; '['; ']'; 'x'; '-'; ' ' ]) (int_bound 12))
    (fun s ->
      match Sched.trace_of_string s with
      | trace ->
          (* count the separator-delimited tokens the parser must have
             consumed (its own normalization: trim, strip one bracket
             pair, trim): all of them, or it should have raised —
             success with any token dropped would be a silent prefix *)
          let s = String.trim s in
          let n = String.length s in
          let body =
            if n >= 2 && s.[0] = '[' && s.[n - 1] = ']' then String.sub s 1 (n - 2)
            else s
          in
          let body = String.trim body in
          let tokens =
            if body = "" then []
            else
              String.split_on_char ';' body |> List.concat_map (String.split_on_char ',')
          in
          List.length trace = List.length tokens
      | exception Invalid_argument _ -> true)

let test_pct_and_random_find_lost_update () =
  (match Sched.explore_random ~iters:200 ~seed:7 S.racy_counter with
  | Sched.Fail _ -> ()
  | r -> Alcotest.failf "random missed the lost update: %a" Sched.pp_result r);
  match Sched.explore_pct ~iters:200 ~depth:3 ~seed:7 S.racy_counter with
  | Sched.Fail _ -> ()
  | r -> Alcotest.failf "pct missed the lost update: %a" Sched.pp_result r

let test_preemption_bound_prunes () =
  (* with zero preemptions allowed, only domain-ordered schedules run:
     the lost update needs one preemption, so the search passes *)
  match Sched.explore_dfs ~max_preemptions:0 S.racy_counter with
  | Sched.Pass { schedules } ->
      Alcotest.(check bool) "few schedules" true (schedules >= 1 && schedules <= 4)
  | r -> Alcotest.failf "expected pass under 0-preemption bound: %a" Sched.pp_result r

(* ---------------- sticky counter (Fig 7) ---------------- *)

(* The acceptance config: 2 domains x 3 ops, exhaustive up to 2
   preemptions per schedule (the Fig 7 races need at most 2: they are
   one announcement interleaved into one decrement's slow path). *)
let test_sticky_one_death_exhaustive () =
  match
    Sched.explore_dfs ~max_preemptions:2 (fun () -> S.sticky_one_death ~domains:2 ~ops:3 ())
  with
  | Sched.Pass { schedules } ->
      Alcotest.(check bool) "explored many schedules" true (schedules > 100)
  | r -> Alcotest.failf "sticky one-death: %a" Sched.pp_result r

let test_sticky_load_vs_dec_exhaustive () =
  (* small enough for fully unbounded exhaustive search *)
  match Sched.explore_dfs (fun () -> S.sticky_load_vs_decrement ()) with
  | Sched.Pass _ -> ()
  | r -> Alcotest.failf "sticky load-vs-dec: %a" Sched.pp_result r

let test_sticky_drop_help_mutation_caught () =
  (* the injected Fig 7 bug: load announces the death without the help
     flag, so the decrement loses its credit. The explorer must find
     it, and the counterexample must replay. *)
  match Sched.explore_dfs (fun () -> S.sticky_load_vs_decrement ~mutate:true ()) with
  | Sched.Fail f -> (
      Format.printf "drop-help mutant caught, replayable trace %a@." Sched.pp_trace
        f.Sched.f_trace;
      match
        Sched.replay ~trace:f.Sched.f_trace (fun () ->
            S.sticky_load_vs_decrement ~mutate:true ())
      with
      | Sched.Fail _ -> ()
      | r -> Alcotest.failf "mutant trace did not replay: %a" Sched.pp_result r)
  | r -> Alcotest.failf "drop-help mutant survived: %a" Sched.pp_result r

let test_sticky_mutant_needs_the_bad_schedule () =
  (* sanity: under the purely sequential (0-preemption) schedules the
     mutant behaves correctly — the bug is schedule-dependent, which is
     exactly why wall-clock stress cannot reliably hit it *)
  match
    Sched.explore_dfs ~max_preemptions:0 (fun () -> S.sticky_load_vs_decrement ~mutate:true ())
  with
  | Sched.Pass _ -> ()
  | r -> Alcotest.failf "mutant should survive sequential schedules: %a" Sched.pp_result r

(* ---------------- acquire-retire slots (Fig 2) ---------------- *)

let test_slots_no_uaf_exhaustive () =
  match Sched.explore_dfs (fun () -> S.slots_reclaim ()) with
  | Sched.Pass { schedules } ->
      Alcotest.(check bool) "explored many schedules" true (schedules > 20)
  | r -> Alcotest.failf "slots: %a" Sched.pp_result r

let test_slots_skip_validate_caught () =
  match Sched.explore_dfs (fun () -> S.slots_reclaim ~mutate:true ()) with
  | Sched.Fail f ->
      Alcotest.(check bool)
        "verdict is a use-after-free" true
        (let m = f.Sched.f_message in
         let has sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length m && (String.sub m i n = sub || go (i + 1))
           in
           go 0
         in
         has "use-after-free" || has "Use_after_free")
  | r -> Alcotest.failf "skip-validate mutant survived: %a" Sched.pp_result r

(* ---------------- CDRC weak upgrade (Figs 8-9) ---------------- *)

let test_weak_upgrade_exhaustive () =
  match Sched.explore_dfs (fun () -> S.weak_upgrade ()) with
  | Sched.Pass { schedules } ->
      Alcotest.(check bool) "explored many schedules" true (schedules > 20)
  | r -> Alcotest.failf "weak upgrade: %a" Sched.pp_result r

let test_weak_upgrade_pct_smoke () =
  match Sched.explore_pct ~iters:300 ~depth:3 ~seed:11 (fun () -> S.weak_upgrade ()) with
  | Sched.Pass _ -> ()
  | r -> Alcotest.failf "weak upgrade (pct): %a" Sched.pp_result r

(* ---------------- registry ---------------- *)

let test_registry_verdicts () =
  (* every registered target produces the outcome it promises, under a
     cheap bounded search (the CI smoke runs the full-strength ones) *)
  List.iter
    (fun t ->
      let r =
        Explore.run_target t ~mode:Explore.Dfs ~seed:1 ~iters:100 ~max_preemptions:(Some 3)
          ~max_steps:10_000 ~depth:3 ~replay:None
      in
      let buf = Buffer.create 128 in
      let code = Explore.report (Format.formatter_of_buffer buf) t r in
      Alcotest.(check int) (t.Explore.t_name ^ " exit code") 0 code)
    Explore.targets

let () =
  Alcotest.run "sched"
    [
      ( "harness",
        [
          Alcotest.test_case "finds lost update" `Quick test_finds_lost_update;
          Alcotest.test_case "replay reproduces" `Quick test_replay_reproduces;
          Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "garbage traces rejected" `Quick test_trace_garbage_rejected;
          QCheck_alcotest.to_alcotest prop_trace_roundtrip;
          QCheck_alcotest.to_alcotest prop_garbage_never_truncates;
          Alcotest.test_case "pct+random find lost update" `Quick
            test_pct_and_random_find_lost_update;
          Alcotest.test_case "preemption bound prunes" `Quick test_preemption_bound_prunes;
        ] );
      ( "sticky",
        [
          Alcotest.test_case "one death, exhaustive" `Quick test_sticky_one_death_exhaustive;
          Alcotest.test_case "load vs dec, exhaustive" `Quick
            test_sticky_load_vs_dec_exhaustive;
          Alcotest.test_case "drop-help mutant caught" `Quick
            test_sticky_drop_help_mutation_caught;
          Alcotest.test_case "mutant ok sequentially" `Quick
            test_sticky_mutant_needs_the_bad_schedule;
        ] );
      ( "slots",
        [
          Alcotest.test_case "no UAF, exhaustive" `Quick test_slots_no_uaf_exhaustive;
          Alcotest.test_case "skip-validate mutant caught" `Quick
            test_slots_skip_validate_caught;
        ] );
      ( "weak",
        [
          Alcotest.test_case "upgrade race, exhaustive" `Quick test_weak_upgrade_exhaustive;
          Alcotest.test_case "upgrade race, pct smoke" `Quick test_weak_upgrade_pct_smoke;
        ] );
      ("registry", [ Alcotest.test_case "verdicts" `Quick test_registry_verdicts ]);
    ]
