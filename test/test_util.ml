(* Tests for the utility library: RNG determinism and distribution
   sanity, padded array semantics, backoff behaviour, statistics. *)

open Repro_util

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 in
  let b = Rng.create ~seed:42 in
  for _ = 1 to 1000 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 in
  let b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.next a = Rng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  let c = Rng.split a in
  let overlap = ref 0 in
  for _ = 1 to 100 do
    if Rng.next b = Rng.next c then incr overlap
  done;
  Alcotest.(check bool) "split streams differ" true (!overlap < 5)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_int_covers_range () =
  let r = Rng.create ~seed:11 in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    seen.(Rng.int r 10) <- true
  done;
  Alcotest.(check bool) "all buckets hit" true (Array.for_all Fun.id seen)

let test_rng_float_unit_interval () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let x = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_bool_balanced () =
  let r = Rng.create ~seed:9 in
  let trues = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bool r then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "roughly balanced" true (frac > 0.45 && frac < 0.55)

let test_padded_basic () =
  let p = Padded.create 4 0 in
  Alcotest.(check int) "length" 4 (Padded.length p);
  Padded.set p 2 99;
  Alcotest.(check int) "get" 99 (Padded.get p 2);
  Alcotest.(check int) "others untouched" 0 (Padded.get p 1);
  Alcotest.(check int) "exchange returns old" 99 (Padded.exchange p 2 7);
  Alcotest.(check int) "exchange stored" 7 (Padded.get p 2)

let test_padded_cas () =
  let p = Padded.create 2 10 in
  Alcotest.(check bool) "cas succeeds" true (Padded.compare_and_set p 0 10 20);
  Alcotest.(check bool) "cas fails" false (Padded.compare_and_set p 0 10 30);
  Alcotest.(check int) "value" 20 (Padded.get p 0)

let test_padded_fold () =
  let p = Padded.create 5 1 in
  Padded.set p 3 10;
  Alcotest.(check int) "sum" 14 (Padded.fold ( + ) 0 p)

let test_padded_parallel_disjoint () =
  (* Each domain hammers its own logical slot; no cross-talk expected. *)
  let n = 4 in
  let p = Padded.create n 0 in
  let domains =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            for k = 1 to 10_000 do
              Padded.set p i k
            done))
  in
  List.iter Domain.join domains;
  for i = 0 to n - 1 do
    Alcotest.(check int) "final value" 10_000 (Padded.get p i)
  done

let test_backoff_progresses () =
  let b = Backoff.create ~min:1 ~max:8 () in
  (* Just exercise it; semantic check is that it terminates quickly. *)
  for _ = 1 to 20 do
    Backoff.once b
  done;
  Backoff.reset b;
  Backoff.once b;
  Alcotest.(check pass) "backoff terminates" () ()

let test_backoff_doubles_and_caps () =
  let b = Backoff.create ~min:1 ~max:16 () in
  let expected = [ 1; 2; 4; 8; 16; 16; 16 ] in
  List.iter
    (fun e ->
      Alcotest.(check int) "spin count" e (Backoff.current b);
      Backoff.once b)
    expected

let test_backoff_reset () =
  let b = Backoff.create ~min:2 ~max:64 () in
  for _ = 1 to 10 do
    Backoff.once b
  done;
  Alcotest.(check int) "saturated at max" 64 (Backoff.current b);
  Backoff.reset b;
  Alcotest.(check int) "reset to min" 2 (Backoff.current b)

let test_backoff_jitter_deterministic () =
  (* Jitter draws from the supplied RNG, so the same seed must give the
     same schedule, and the nominal doubling/cap must be unaffected. *)
  let run seed =
    let b = Backoff.create ~min:1 ~max:8 ~rng:(Rng.create ~seed) () in
    List.init 12 (fun _ ->
        let c = Backoff.current b in
        Backoff.once b;
        c)
  in
  Alcotest.(check (list int)) "same seed, same schedule" (run 99) (run 99);
  let b = Backoff.create ~min:1 ~max:8 ~rng:(Rng.create ~seed:1) () in
  for _ = 1 to 10 do
    Backoff.once b
  done;
  Alcotest.(check int) "jitter does not change the cap" 8 (Backoff.current b)

let feq what a b = Alcotest.(check (float 1e-9)) what a b

let test_stats_mean_stddev () =
  feq "mean" 2. (Stats.mean [| 1.; 2.; 3. |]);
  feq "stddev" 1. (Stats.stddev [| 1.; 2.; 3. |]);
  feq "mean empty" 0. (Stats.mean [||]);
  feq "stddev single" 0. (Stats.stddev [| 5. |])

let test_stats_median_percentile () =
  feq "median odd" 3. (Stats.median [| 5.; 1.; 3. |]);
  feq "median even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  feq "p50" 3. (Stats.percentile [| 1.; 2.; 3.; 4.; 5. |] 50.);
  feq "p100" 5. (Stats.percentile [| 1.; 2.; 3.; 4.; 5. |] 100.)

let test_stats_min_max_throughput () =
  let lo, hi = Stats.min_max [| 3.; 1.; 2. |] in
  feq "min" 1. lo;
  feq "max" 3. hi;
  feq "mops" 2. (Stats.throughput_mops ~ops:1_000_000 ~seconds:0.5)

let test_stats_fixed_percentiles () =
  (* Nearest-rank on 1..1000: rank ceil(p/100 * 1000), 1-indexed. *)
  let xs = Array.init 1000 (fun i -> float_of_int (i + 1)) in
  feq "p50" 500. (Stats.p50 xs);
  feq "p99" 990. (Stats.p99 xs);
  feq "p999" 999. (Stats.p999 xs);
  feq "p50 singleton" 7. (Stats.p50 [| 7. |]);
  feq "p999 singleton" 7. (Stats.p999 [| 7. |])

let test_stats_merge_counts () =
  Alcotest.(check (array int)) "pointwise sum" [| 3; 5; 0 |]
    (Stats.merge_counts [| 1; 2; 0 |] [| 2; 3; 0 |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.merge_counts: bucket count mismatch") (fun () ->
      ignore (Stats.merge_counts [| 1 |] [| 1; 2 |]))

(* Property: [percentile] never mutates its input, always returns an
   element of the input, agrees with a sorted-copy nearest-rank oracle,
   and pins p=0 to the minimum and p=100 to the maximum. *)
let percentile_oracle_prop =
  QCheck.Test.make ~name:"percentile vs sorted-copy oracle" ~count:500
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (int_range (-1000) 1000))
        (int_range 0 100))
    (fun (l, p_int) ->
      let xs = Array.of_list (List.map float_of_int l) in
      let before = Array.copy xs in
      let p = float_of_int p_int in
      let got = Stats.percentile xs p in
      let oracle =
        let ys = Array.copy before in
        Array.sort compare ys;
        let n = Array.length ys in
        let rank = int_of_float (ceil ((p /. 100. *. float_of_int n) -. 1e-9)) in
        ys.(max 0 (min (n - 1) (rank - 1)))
      in
      xs = before
      && got = oracle
      && Array.exists (fun x -> x = got) before
      && Stats.percentile xs 0. = fst (Stats.min_max xs)
      && Stats.percentile xs 100. = snd (Stats.min_max xs))

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
          Alcotest.test_case "float unit interval" `Quick test_rng_float_unit_interval;
          Alcotest.test_case "bool balanced" `Quick test_rng_bool_balanced;
        ] );
      ( "padded",
        [
          Alcotest.test_case "basic" `Quick test_padded_basic;
          Alcotest.test_case "cas" `Quick test_padded_cas;
          Alcotest.test_case "fold" `Quick test_padded_fold;
          Alcotest.test_case "parallel disjoint slots" `Quick test_padded_parallel_disjoint;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "progresses" `Quick test_backoff_progresses;
          Alcotest.test_case "doubles and caps" `Quick test_backoff_doubles_and_caps;
          Alcotest.test_case "reset" `Quick test_backoff_reset;
          Alcotest.test_case "jitter deterministic" `Quick test_backoff_jitter_deterministic;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "median/percentile" `Quick test_stats_median_percentile;
          Alcotest.test_case "min/max/throughput" `Quick test_stats_min_max_throughput;
          Alcotest.test_case "p50/p99/p999" `Quick test_stats_fixed_percentiles;
          Alcotest.test_case "merge_counts" `Quick test_stats_merge_counts;
          QCheck_alcotest.to_alcotest percentile_oracle_prop;
        ] );
    ]
