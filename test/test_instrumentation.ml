(* Tests for the instrumentation and the small type-erasure modules:
   snapshot fast/slow path accounting (the Fig 11 fallback mechanism),
   weak-snapshot fallback under slot exhaustion, identity tokens, and
   deferred-op plumbing. *)

module Ident = Smr.Ident

(* ---------------- Ident ---------------- *)

let test_ident_identity () =
  let a = ref 1 and b = ref 1 in
  Alcotest.(check bool) "same object equal" true (Ident.equal (Ident.of_val a) (Ident.of_val a));
  Alcotest.(check bool) "distinct objects differ" false
    (Ident.equal (Ident.of_val a) (Ident.of_val b));
  Alcotest.(check bool) "null is null" true (Ident.is_null Ident.null);
  Alcotest.(check bool) "object is not null" false (Ident.is_null (Ident.of_val a));
  Alcotest.(check bool) "null equals null" true (Ident.equal Ident.null Ident.null)

let test_ident_stable_across_gc () =
  let a = Array.make 10 0 in
  let id = Ident.of_val a in
  (* Force minor+major collections; physical identity must survive the
     moving GC. *)
  for _ = 1 to 5 do
    ignore (Sys.opaque_identity (Array.make 10_000 0));
    Gc.full_major ()
  done;
  Alcotest.(check bool) "identity stable across GC" true (Ident.equal id (Ident.of_val a))

(* ---------------- Deferred ---------------- *)

let test_deferred_run () =
  let got = ref (-1) in
  let op : Smr.Deferred.t = fun pid -> got := pid in
  Smr.Deferred.run op ~pid:3;
  Alcotest.(check int) "pid passed" 3 !got

(* ---------------- snapshot_stats ---------------- *)

module R_hp = Cdrc.Make (Smr.Hp)
module R_ebr = Cdrc.Make (Smr.Ebr)

let test_fast_path_counting () =
  let rt = R_ebr.create ~max_threads:1 () in
  let th = R_ebr.thread rt 0 in
  R_ebr.critically th (fun () ->
      let p = R_ebr.Shared.make th 1 in
      let cell = R_ebr.Asp.make th (R_ebr.Shared.ptr p) in
      for _ = 1 to 10 do
        let s = R_ebr.Asp.get_snapshot th cell in
        R_ebr.Snapshot.drop th s
      done;
      R_ebr.Shared.drop th p;
      R_ebr.Asp.clear th cell);
  let fast, slow = R_ebr.snapshot_stats rt in
  Alcotest.(check int) "10 fast" 10 fast;
  Alcotest.(check int) "0 slow (region scheme never exhausts)" 0 slow;
  R_ebr.quiesce rt

let test_slow_path_counting_on_exhaustion () =
  (* 2 announcement slots: the first two snapshots are fast, the rest
     spill to the count-increment slow path. *)
  let rt = R_hp.create ~slots_per_thread:2 ~max_threads:1 () in
  let th = R_hp.thread rt 0 in
  R_hp.critically th (fun () ->
      let p = R_hp.Shared.make th 1 in
      let cell = R_hp.Asp.make th (R_hp.Shared.ptr p) in
      let snaps = List.init 5 (fun _ -> R_hp.Asp.get_snapshot th cell) in
      let protected_count =
        List.length (List.filter R_hp.Snapshot.is_protected snaps)
      in
      Alcotest.(check int) "2 guard-protected" 2 protected_count;
      let fast, slow = R_hp.snapshot_stats rt in
      Alcotest.(check int) "fast count" 2 fast;
      Alcotest.(check int) "slow count" 3 slow;
      List.iter (R_hp.Snapshot.drop th) snaps;
      R_hp.Shared.drop th p;
      R_hp.Asp.clear th cell);
  R_hp.quiesce rt

let test_weak_snapshot_fallback_on_exhaustion () =
  (* With 1 dispose slot, the second concurrent weak snapshot takes the
     Fig 9 line 26 fallback (strong increment) and is not
     guard-protected. *)
  let rt = R_hp.create ~support_weak:true ~slots_per_thread:1 ~max_threads:1 () in
  let th = R_hp.thread rt 0 in
  R_hp.critically th (fun () ->
      let p = R_hp.Shared.make th 9 in
      let w = R_hp.Weak.of_shared th p in
      let cell = R_hp.Awp.make th (R_hp.Weak.ptr w) in
      let ws1 = R_hp.Awp.get_snapshot th cell in
      let ws2 = R_hp.Awp.get_snapshot th cell in
      Alcotest.(check bool) "first uses dispose guard" true
        (R_hp.Weak_snapshot.is_protected ws1);
      Alcotest.(check bool) "second fell back to an increment" false
        (R_hp.Weak_snapshot.is_protected ws2);
      (* Both must read the value regardless of path. *)
      Alcotest.(check int) "ws1 reads" 9 (R_hp.Weak_snapshot.get ws1);
      Alcotest.(check int) "ws2 reads" 9 (R_hp.Weak_snapshot.get ws2);
      R_hp.Weak_snapshot.drop th ws1;
      R_hp.Weak_snapshot.drop th ws2;
      R_hp.Weak.drop th w;
      R_hp.Shared.drop th p;
      R_hp.Awp.clear th cell);
  R_hp.quiesce rt;
  Alcotest.(check int) "no leak" 0 (R_hp.live_objects rt)

(* The driver surfaces the slow-path share for RC structures. *)
let test_set_intf_snapshot_stats () =
  let module T = Ds.Nm_tree_rc.Make (R_hp) in
  let t = T.create ~slots_per_thread:2 ~max_threads:1 () in
  let c = T.ctx t 0 in
  for k = 1 to 200 do
    ignore (T.insert c k)
  done;
  (* Deep range queries exhaust 2 slots constantly. *)
  ignore (T.range_query c 0 200);
  (match T.snapshot_stats t with
  | Some (fast, slow) ->
      Alcotest.(check bool) "counted" true (fast > 0);
      Alcotest.(check bool) "slow path exercised" true (slow > 0)
  | None -> Alcotest.fail "RC tree must report stats");
  let module M = Ds.Nm_tree_manual.Make (Smr.Ebr) in
  let m = M.create ~max_threads:1 () in
  Alcotest.(check bool) "manual reports none" true (M.snapshot_stats m = None);
  M.teardown m;
  T.teardown t

(* ---------------- telemetry counters (lib/obs) ---------------- *)

(* Scripted single-domain HP sequence with exact expected counters:
   2 slots, so the third try_acquire exhausts; one confirm against a
   changed target retries; 5 retires all deliver on a forced eject. *)
let test_hp_scripted_counters () =
  Obs.Report.reset_all ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled false)
    (fun () ->
      let module H = Smr.Hp in
      let t = H.create ~slots_per_thread:2 ~max_threads:1 () in
      let pid = 0 in
      (* The refs anchor their idents: tokens are physical identities. *)
      let r1 = ref 1 and r2 = ref 2 and r3 = ref 3 in
      let id1 = Smr.Ident.of_val r1
      and id2 = Smr.Ident.of_val r2
      and id3 = Smr.Ident.of_val r3 in
      H.begin_critical_section t ~pid;
      let g1 = Option.get (H.try_acquire t ~pid id1) in
      let g2 = Option.get (H.try_acquire t ~pid id2) in
      Alcotest.(check bool) "third acquire exhausts" true (H.try_acquire t ~pid id3 = None);
      Alcotest.(check bool) "changed target fails confirm" false (H.confirm t ~pid g1 id3);
      Alcotest.(check bool) "re-announced confirm settles" true (H.confirm t ~pid g1 id3);
      H.release t ~pid g1;
      H.release t ~pid g2;
      H.end_critical_section t ~pid;
      let anchors = Array.init 5 (fun i -> ref (100 + i)) in
      let ran = ref 0 in
      Array.iter
        (fun r -> H.retire t ~pid (Smr.Ident.of_val r) ~birth:0 (fun _ -> incr ran))
        anchors;
      List.iter (fun op -> op pid) (H.eject ~force:true t ~pid);
      let v = Obs.Metrics.value in
      Alcotest.(check int) "acquire" 2 (v "smr.hp.acquire");
      Alcotest.(check int) "slot_exhausted" 1 (v "smr.hp.slot_exhausted");
      Alcotest.(check int) "confirm_retry" 1 (v "smr.hp.confirm_retry");
      Alcotest.(check int) "retire" 5 (v "smr.hp.retire");
      Alcotest.(check int) "eject scans" 1 (v "smr.hp.eject.scans");
      Alcotest.(check int) "eject ops" 5 (v "smr.hp.eject.ops");
      Alcotest.(check int) "delivered ops ran" 5 !ran;
      Alcotest.(check int) "backlog empty" 0 (H.retired_count t ~pid))

(* The PR's deterministic-accounting criterion: single domain, fixed op
   count, for every scheme the retire counter equals delivered eject
   ops plus the remaining backlog — checked before teardown, whose
   [drain_all] path legitimately bypasses the eject counters. *)
let accounting_schemes : (module Smr.Smr_intf.S) list =
  [
    (module Smr.Ebr);
    (module Smr.Ibr);
    (module Smr.Hp);
    (module Smr.Hazard_eras);
    (module Smr.Hyaline);
    (module Smr.Ptb);
    (module Smr.Leaky);
  ]

let test_accounting_identity () =
  List.iter
    (fun (module S : Smr.Smr_intf.S) ->
      Obs.Report.reset_all ();
      Obs.Metrics.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Obs.Metrics.set_enabled false)
        (fun () ->
          let module St = Ds.Treiber_stack_manual.Make (S) in
          let s = St.create ~max_threads:1 () in
          let c = St.ctx s 0 in
          for i = 1 to 300 do
            St.push c i;
            ignore (St.pop c)
          done;
          St.flush c;
          let lower = String.lowercase_ascii S.name in
          let retire = Obs.Metrics.value ("smr." ^ lower ^ ".retire") in
          let delivered = Obs.Metrics.value ("smr." ^ lower ^ ".eject.ops") in
          let backlog = St.Ar.total_pending s.St.ar in
          Alcotest.(check int) (S.name ^ ": one retire per pop") 300 retire;
          Alcotest.(check int)
            (S.name ^ ": retire = delivered + backlog")
            retire (delivered + backlog);
          St.teardown s))
    accounting_schemes

(* 4 domains, distinct pids, one shared counter: the merged total must
   be the exact sum of per-domain increments (the single-writer-per-
   shard contract of [Obs.Metrics]). *)
let counter_merge_prop =
  QCheck.Test.make ~name:"merged counter total = sum of per-domain increments" ~count:25
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (a, b, c, d) ->
      Obs.Report.reset_all ();
      Obs.Metrics.set_enabled true;
      let ctr = Obs.Metrics.counter "test.merge.total" in
      let ns = [| a; b; c; d |] in
      let ds =
        List.init 4 (fun i ->
            Domain.spawn (fun () ->
                for _ = 1 to ns.(i) do
                  Obs.Metrics.incr ctr ~pid:i
                done))
      in
      List.iter Domain.join ds;
      Obs.Metrics.set_enabled false;
      Obs.Metrics.total ctr = a + b + c + d)

let () =
  Alcotest.run "instrumentation"
    [
      ( "ident",
        [
          Alcotest.test_case "identity" `Quick test_ident_identity;
          Alcotest.test_case "stable across GC" `Quick test_ident_stable_across_gc;
        ] );
      ("deferred", [ Alcotest.test_case "run" `Quick test_deferred_run ]);
      ( "snapshot stats",
        [
          Alcotest.test_case "fast path counting" `Quick test_fast_path_counting;
          Alcotest.test_case "slow path on exhaustion" `Quick test_slow_path_counting_on_exhaustion;
          Alcotest.test_case "weak fallback on exhaustion" `Quick
            test_weak_snapshot_fallback_on_exhaustion;
          Alcotest.test_case "Set_intf stats" `Quick test_set_intf_snapshot_stats;
        ] );
      ( "telemetry counters",
        [
          Alcotest.test_case "scripted HP sequence" `Quick test_hp_scripted_counters;
          Alcotest.test_case "accounting identity, all schemes" `Quick
            test_accounting_identity;
          QCheck_alcotest.to_alcotest counter_merge_prop;
        ] );
    ]
