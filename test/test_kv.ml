(* The sharded KV serving workload (DESIGN.md §12).

   Three layers: (1) deterministic + qcheck distribution tests of the
   key generators (same seed → bit-identical streams, pinned goldens,
   Zipfian rank-frequency monotonicity, hotspot-shift moves the modal
   key); (2) shard-core internal consistency across all 7 RC schemes
   (get-after-put, expired keys never served, the node and box
   retirement identities, leak-free teardown); (3) linearizability of
   single-shard get/put/remove/TTL histories — recorded under real
   domains and explored exhaustively under [Sched.Traced] (DFS ≤2
   preemptions). *)

module Q = QCheck2

let to_alcotest = QCheck_alcotest.to_alcotest

(* ================================================================= *)
(* Key generators: determinism, distribution shape, goldens           *)

module Kg = Workload.Keygen

let spec_gen =
  Q.Gen.(
    oneof
      [
        return Kg.Uniform;
        (let* t = int_range 5 95 in
         return (Kg.Zipfian { theta = float_of_int t /. 100. }));
        (let* hot_keys = int_range 1 64 in
         let* hot_pct = int_range 0 100 in
         let* shift_every = int_range 1 500 in
         return (Kg.Hotspot { hot_keys; hot_pct; shift_every }));
      ])

let draws g n = List.init n (fun _ -> Kg.next g)

let prop_deterministic =
  Q.Test.make ~name:"keygen: same (spec,seed,range) → bit-identical stream" ~count:100
    Q.Gen.(triple spec_gen (int_range 0 10_000) (int_range 1 4096))
    (fun (spec, seed, range) ->
      let a = Kg.create ~seed ~range spec in
      let b = Kg.create ~seed ~range spec in
      draws a 128 = draws b 128)

let prop_in_range =
  Q.Test.make ~name:"keygen: every draw in [0, range)" ~count:100
    Q.Gen.(triple spec_gen (int_range 0 10_000) (int_range 1 4096))
    (fun (spec, seed, range) ->
      let g = Kg.create ~seed ~range spec in
      List.for_all (fun k -> k >= 0 && k < range) (draws g 256))

let prop_spec_roundtrip =
  (* Thetas are generated on a 2-decimal grid, matching the %.2f the
     printer uses, so the float comparison is exact. *)
  Q.Test.make ~name:"keygen: spec_of_string ∘ spec_to_string = Ok" ~count:200 spec_gen
    (fun spec -> Kg.spec_of_string (Kg.spec_to_string spec) = Ok spec)

let prop_hotspot_concentration =
  (* 90% of draws land in the 32-key hot window; 850/1000 is ~5σ below
     the binomial mean, so this never flakes across seeds. *)
  Q.Test.make ~name:"keygen: hotspot concentrates draws in the hot window" ~count:50
    Q.Gen.(int_range 0 100_000)
    (fun seed ->
      let g =
        Kg.create ~seed ~range:4096
          (Kg.Hotspot { hot_keys = 32; hot_pct = 90; shift_every = 1_000_000 })
      in
      let base = Kg.hot_base g in
      let in_hot k = (k - base + 4096) mod 4096 < 32 in
      List.length (List.filter in_hot (draws g 1000)) >= 850)

let rejects_bad_specs () =
  let bad s =
    match Kg.spec_of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  List.iter bad [ "zipf:1.5"; "zipf:0"; "hotspot:0:50:10"; "hotspot:8:101:10"; "bogus"; "" ]

let zipf_rank_frequency_monotone () =
  (* Pinned-seed distribution check: rank-frequency of the YCSB
     inverse CDF must decrease through the head and the tail must be
     thin. Counts at seed 42 / range 1024 / 20k draws are exact. *)
  let g = Kg.create ~seed:42 ~range:1024 (Kg.Zipfian { theta = 0.99 }) in
  let freq = Array.make 1024 0 in
  for _ = 1 to 20_000 do
    let r = Kg.zipf_rank g in
    freq.(r) <- freq.(r) + 1
  done;
  let chain = [ 0; 1; 2; 4; 8; 32; 128 ] in
  ignore
    (List.fold_left
       (fun prev r ->
         Alcotest.(check bool)
           (Printf.sprintf "freq(rank %d) decreases" r)
           true
           (freq.(r) < prev);
         freq.(r))
       max_int chain);
  Alcotest.(check bool) "head is heavy" true (freq.(0) >= 2000);
  Alcotest.(check bool) "tail is thin" true (freq.(128) <= 120)

(* The determinism contract, pinned: these exact sequences are part of
   the workload's reproducibility surface — a change here silently
   invalidates every recorded benchmark. *)
let golden_sequences () =
  let first8 spec = draws (Kg.create ~seed:42 ~range:1024 spec) 8 in
  Alcotest.(check (list int))
    "uniform seed 42"
    [ 453; 671; 616; 40; 921; 142; 876; 33 ]
    (first8 Kg.Uniform);
  Alcotest.(check (list int))
    "zipf 0.99 seed 42"
    [ 0; 232; 50; 721; 762; 839; 693; 866 ]
    (first8 (Kg.Zipfian { theta = 0.99 }));
  Alcotest.(check (list int))
    "hotspot 16/90/100 seed 42"
    [ 224; 217; 223; 210; 224; 218; 209; 223 ]
    (first8 (Kg.Hotspot { hot_keys = 16; hot_pct = 90; shift_every = 100 }))

let hotspot_shift_schedule () =
  let g =
    Kg.create ~seed:42 ~range:1024 (Kg.Hotspot { hot_keys = 16; hot_pct = 100; shift_every = 100 })
  in
  let base0 = Kg.hot_base g in
  Alcotest.(check int) "initial origin pinned" 209 base0;
  (* At pct 100 every pre-shift draw lands in the hot window. *)
  List.iter
    (fun k ->
      Alcotest.(check bool) "draw in hot window" true ((k - base0 + 1024) mod 1024 < 16))
    (draws g 100);
  Alcotest.(check int) "no shift within the phase" 0 (Kg.shifts g);
  ignore (Kg.next g);
  Alcotest.(check int) "draw 101 migrates" 1 (Kg.shifts g);
  Alcotest.(check int) "new origin pinned" 533 (Kg.hot_base g);
  Alcotest.(check bool) "origin moved" true (Kg.hot_base g <> base0)

let keygen_tests =
  [
    to_alcotest prop_deterministic;
    to_alcotest prop_in_range;
    to_alcotest prop_spec_roundtrip;
    to_alcotest prop_hotspot_concentration;
    Alcotest.test_case "rejects bad specs" `Quick rejects_bad_specs;
    Alcotest.test_case "zipf rank-frequency monotone" `Quick zipf_rank_frequency_monotone;
    Alcotest.test_case "golden sequences" `Quick golden_sequences;
    Alcotest.test_case "hotspot shift schedule" `Quick hotspot_shift_schedule;
  ]

(* ================================================================= *)
(* Shard core: per-scheme consistency                                 *)

let kv_schemes = Workload.Instances.kv_services

let basic_get_put_remove (name, (module K : Workload.Kv_intf.S)) () =
  let t = K.create ~shards:2 ~buckets:16 ~max_threads:1 () in
  let c = K.ctx t 0 in
  Alcotest.(check (option int)) (name ^ ": get on empty") None (K.get c ~now:0 5);
  Alcotest.(check bool) (name ^ ": fresh put") false (K.put c ~now:0 5 50);
  Alcotest.(check (option int)) (name ^ ": get after put") (Some 50) (K.get c ~now:0 5);
  Alcotest.(check bool) (name ^ ": overwrite") true (K.put c ~now:0 5 51);
  Alcotest.(check (option int)) (name ^ ": get after overwrite") (Some 51)
    (K.get c ~now:0 5);
  Alcotest.(check bool) (name ^ ": remove live") true (K.remove c ~now:0 5);
  Alcotest.(check (option int)) (name ^ ": get after remove") None (K.get c ~now:0 5);
  Alcotest.(check bool) (name ^ ": remove absent") false (K.remove c ~now:0 5);
  (* Reinsert after tombstone: the insert-before-tombstone path. *)
  Alcotest.(check bool) (name ^ ": reinsert") false (K.put c ~now:0 5 52);
  Alcotest.(check (option int)) (name ^ ": get after reinsert") (Some 52)
    (K.get c ~now:0 5);
  K.teardown t;
  Alcotest.(check int) (name ^ ": leak-free teardown") 0 (K.live_objects t)

let ttl_semantics (name, (module K : Workload.Kv_intf.S)) () =
  let t = K.create ~shards:1 ~buckets:8 ~max_threads:1 () in
  let c = K.ctx t 0 in
  ignore (K.put c ~now:0 ~ttl:10 1 100);
  Alcotest.(check (option int)) (name ^ ": before expiry") (Some 100) (K.get c ~now:9 1);
  (* Expired keys are never served; the failed get claims the expiry. *)
  Alcotest.(check (option int)) (name ^ ": at expiry") None (K.get c ~now:10 1);
  Alcotest.(check int) (name ^ ": expiry counted") 1 (K.counters t).Workload.Kv_intf.expiries;
  (* put over an expired (but unclaimed) entry is not an overwrite. *)
  ignore (K.put c ~now:0 ~ttl:5 2 200);
  Alcotest.(check bool) (name ^ ": put over expired") false (K.put c ~now:7 2 201);
  Alcotest.(check (option int)) (name ^ ": new value live") (Some 201) (K.get c ~now:8 2);
  Alcotest.(check int)
    (name ^ ": expired overwrite counted")
    1
    (K.counters t).Workload.Kv_intf.expired_overwrites;
  (* remove on an expired entry claims the expiry, returns false. *)
  ignore (K.put c ~now:20 ~ttl:1 3 300);
  Alcotest.(check bool) (name ^ ": remove expired") false (K.remove c ~now:30 3);
  Alcotest.(check int) (name ^ ": second expiry") 2 (K.counters t).Workload.Kv_intf.expiries;
  K.teardown t;
  Alcotest.(check int) (name ^ ": leak-free") 0 (K.live_objects t)

let expire_sweep_churn (name, (module K : Workload.Kv_intf.S)) () =
  let t = K.create ~shards:4 ~buckets:16 ~max_threads:1 () in
  let c = K.ctx t 0 in
  for k = 0 to 99 do
    ignore (K.put c ~now:0 ~ttl:(if k mod 2 = 0 then 5 else 1000) k k)
  done;
  Alcotest.(check int) (name ^ ": all live before") 100 (K.scan c ~now:4 0 1000);
  let claimed = K.expire_sweep c ~now:5 in
  Alcotest.(check int) (name ^ ": sweep claims evens") 50 claimed;
  Alcotest.(check int) (name ^ ": odds survive") 50 (K.scan c ~now:5 0 1000);
  Alcotest.(check int) (name ^ ": sweep idempotent") 0 (K.expire_sweep c ~now:5);
  K.teardown t;
  Alcotest.(check int) (name ^ ": leak-free") 0 (K.live_objects t)

(* The retirement-accounting identities (Kv_intf): after a sweep at
   quiescence, every node died by exactly one counted slot mark and
   every installed box was retired by exactly one counted event. *)
let accounting_identities (name, (module K : Workload.Kv_intf.S)) () =
  let t = K.create ~shards:2 ~buckets:32 ~max_threads:1 () in
  let c = K.ctx t 0 in
  let rng = Repro_util.Rng.create ~seed:814 in
  let now = ref 0 in
  for _ = 1 to 3000 do
    let k = Repro_util.Rng.int rng 64 in
    (match Repro_util.Rng.int rng 100 with
    | r when r < 50 ->
        let ttl = if Repro_util.Rng.bool rng then Some (Repro_util.Rng.int rng 20 + 1) else None in
        ignore (K.put c ~now:!now ?ttl k (Repro_util.Rng.int rng 1000))
    | r when r < 75 -> ignore (K.remove c ~now:!now k)
    | _ -> ignore (K.get c ~now:!now k));
    if Repro_util.Rng.int rng 10 = 0 then incr now
  done;
  ignore (K.expire_sweep c ~now:!now);
  let s = K.counters t in
  let size = K.size t ~now:!now in
  Alcotest.(check int)
    (name ^ ": node identity (puts_new = size + removes + expiries)")
    s.Workload.Kv_intf.puts_new
    (size + s.removes + s.expiries);
  let installed = s.puts_new + s.overwrites + s.expired_overwrites in
  Alcotest.(check int)
    (name ^ ": box identity (installed - size = retire events)")
    (installed - size)
    (s.overwrites + s.expired_overwrites + s.removes + s.expiries);
  K.teardown t;
  Alcotest.(check int) (name ^ ": leak-free") 0 (K.live_objects t)

let router_is_total_and_stable () =
  let module K = Workload.Instances.Kv_ebr in
  let t = K.create ~shards:5 (* rounds up to 8 *) ~buckets:8 ~max_threads:1 () in
  Alcotest.(check int) "shards round up to power of two" 8 (K.shard_count t);
  let hit = Array.make 8 0 in
  for k = 0 to 9999 do
    let s = K.shard_of_key t k in
    Alcotest.(check bool) "shard in range" true (s >= 0 && s < 8);
    Alcotest.(check int) "router is deterministic" s (K.shard_of_key t k);
    hit.(s) <- hit.(s) + 1
  done;
  Array.iteri
    (fun i n -> Alcotest.(check bool) (Printf.sprintf "shard %d populated" i) true (n > 500))
    hit;
  K.teardown t

let per_scheme mk = List.map (fun ((name, _) as inst) -> Alcotest.test_case name `Quick (mk inst)) kv_schemes

(* ================================================================= *)
(* Exploration: shard-core histories under the DFS scheduler.

   The KV core's linearization-relevant steps (chain traversal, slot
   CAS/mark, physical unlink) carry [Sched.yield] points, so under a
   controller each fiber's operation is interleaved mid-protocol. Every
   explored schedule records a history through [Lincheck.Recorder] and
   the scenario oracle demands a linearization against the sequential
   KV model — including the lazy-expiry rule (a get/remove that
   observes an expired entry claims it) — plus leak-free teardown. *)

type kv_op =
  | Put of { k : int; v : int; ttl : int option; now : int }
  | Get of { k : int; now : int }
  | Rem of { k : int; now : int }

type kv_res = B of bool | I of int option

let pp_kv_op ppf = function
  | Put { k; v; ttl; now } ->
      Format.fprintf ppf "put k=%d v=%d ttl=%s @%d" k v
        (match ttl with None -> "-" | Some d -> string_of_int d)
        now
  | Get { k; now } -> Format.fprintf ppf "get k=%d @%d" k now
  | Rem { k; now } -> Format.fprintf ppf "remove k=%d @%d" k now

let pp_kv_res ppf = function
  | B b -> Format.fprintf ppf "%b" b
  | I None -> Format.fprintf ppf "None"
  | I (Some v) -> Format.fprintf ppf "Some %d" v

(* Sequential model over a sorted assoc list (canonical states prune
   the Wing–Gong search). Expiry is modelled eagerly at the op that
   observes it, mirroring the implementation's lazy claim. *)
let kv_model st op =
  let drop k = List.remove_assoc k st in
  let put k ve st = List.sort compare ((k, ve) :: st) in
  match op with
  | Put { k; v; ttl; now } ->
      let exp = match ttl with None -> max_int | Some d -> now + d in
      let live = match List.assoc_opt k st with Some (_, e) -> e > now | None -> false in
      (put k (v, exp) (drop k), B live)
  | Get { k; now } -> (
      match List.assoc_opt k st with
      | Some (v, e) when e > now -> (st, I (Some v))
      | Some _ -> (drop k, I None)
      | None -> (st, I None))
  | Rem { k; now } -> (
      match List.assoc_opt k st with
      | Some (_, e) -> (drop k, B (e > now))
      | None -> (st, B false))

(* One explored subject: [prefill] at now=0, then one fiber per op
   list. [final_sizes] is the set of sizes every linearization ends
   with ([]: don't check). *)
let kv_scenario (module K : Workload.Kv_intf.S) ~prefill ~fibers:fiber_ops ~at ~final_sizes
    () =
  let t = K.create ~shards:1 ~buckets:1 ~max_threads:(List.length fiber_ops + 1) () in
  let c0 = K.ctx t 0 in
  List.iter (fun (k, v, ttl) -> ignore (K.put c0 ~now:0 ?ttl k v)) prefill;
  let init =
    List.sort compare
      (List.map
         (fun (k, v, ttl) -> (k, (v, match ttl with None -> max_int | Some d -> d)))
         prefill)
  in
  let rec_ = Lincheck.Recorder.create () in
  let fibers =
    Array.of_list
      (List.mapi
         (fun i ops ->
           let c = K.ctx t (i + 1) in
           fun () ->
             List.iter
               (fun op ->
                 match op with
                 | Put { k; v; ttl; now } ->
                     ignore
                       (Lincheck.Recorder.run rec_ ~thread:i op (fun () ->
                            B (K.put c ~now ?ttl k v)))
                 | Get { k; now } ->
                     ignore
                       (Lincheck.Recorder.run rec_ ~thread:i op (fun () -> I (K.get c ~now k)))
                 | Rem { k; now } ->
                     ignore
                       (Lincheck.Recorder.run rec_ ~thread:i op (fun () ->
                            B (K.remove c ~now k))))
               ops)
         fiber_ops)
  in
  let check () =
    let h = Lincheck.Recorder.history rec_ in
    (match
       Lincheck.check_or_explain ~model:kv_model ~equal_res:( = ) ~pp_op:pp_kv_op
         ~pp_res:pp_kv_res ~init h
     with
    | Ok () -> ()
    | Error msg -> failwith ("not linearizable: " ^ msg));
    (if final_sizes <> [] then
       let size = K.size t ~now:at in
       if not (List.mem size final_sizes) then
         failwith
           (Printf.sprintf "final size %d not in {%s}" size
              (String.concat "," (List.map string_of_int final_sizes))));
    K.teardown t;
    let leaked = K.live_objects t in
    if leaked <> 0 then failwith (Printf.sprintf "leaked %d blocks" leaked)
  in
  { Sched.fibers; check }

(* The scenario set: every two-fiber race the slot-mark protocol has
   to arbitrate. [at] is the logical time final sizes are read at. *)
let kv_races (module K : Workload.Kv_intf.S) =
  [
    ( "put/put same key",
      kv_scenario (module K) ~prefill:[]
        ~fibers:[ [ Put { k = 5; v = 1; ttl = None; now = 0 } ];
                  [ Put { k = 5; v = 2; ttl = None; now = 0 } ] ]
        ~at:0 ~final_sizes:[ 1 ] );
    ( "put/remove live key",
      kv_scenario (module K)
        ~prefill:[ (5, 10, None) ]
        ~fibers:[ [ Put { k = 5; v = 20; ttl = None; now = 1 } ];
                  [ Rem { k = 5; now = 1 } ] ]
        ~at:1 ~final_sizes:[ 0; 1 ] );
    ( "get/put expired key",
      kv_scenario (module K)
        ~prefill:[ (5, 10, Some 3) ]
        ~fibers:[ [ Get { k = 5; now = 5 } ];
                  [ Put { k = 5; v = 30; ttl = None; now = 5 } ] ]
        ~at:5 ~final_sizes:[ 1 ] );
    ( "remove/remove live key",
      kv_scenario (module K)
        ~prefill:[ (5, 10, None) ]
        ~fibers:[ [ Rem { k = 5; now = 1 } ]; [ Rem { k = 5; now = 1 } ] ]
        ~at:1 ~final_sizes:[ 0 ] );
    ( "insert past dying node",
      kv_scenario (module K)
        ~prefill:[ (3, 1, Some 2); (5, 2, None) ]
        ~fibers:[ [ Get { k = 3; now = 4 } ];
                  [ Put { k = 4; v = 9; ttl = None; now = 4 } ] ]
        ~at:4 ~final_sizes:[ 2 ] );
  ]

let explore_races (name, (module K : Workload.Kv_intf.S)) () =
  List.iter
    (fun (label, scenario) ->
      match Sched.explore_dfs ~max_preemptions:2 ~max_schedules:200_000 scenario with
      | Sched.Pass { schedules } ->
          if schedules < 2 then
            Alcotest.failf "%s/%s: only %d schedule(s) explored — no interleaving" name
              label schedules
      | Sched.Fail f -> Alcotest.failf "%s/%s: %s" name label f.Sched.f_message
      | Sched.Exhausted { schedules } ->
          Alcotest.failf "%s/%s: exhausted after %d schedules" name label schedules)
    (kv_races (module K))

(* ================================================================= *)

let () =
  Alcotest.run "kv"
    [
      ("keygen", keygen_tests);
      ("basic-ops", per_scheme basic_get_put_remove);
      ("ttl", per_scheme ttl_semantics);
      ("sweep", per_scheme expire_sweep_churn);
      ("accounting", per_scheme accounting_identities);
      ("router", [ Alcotest.test_case "total-stable-balanced" `Quick router_is_total_and_stable ]);
      ("explore", per_scheme explore_races);
    ]
