(* Data-structure tests: each set implementation is checked against a
   sequential model, for set semantics under concurrency (disjoint-key
   partitions), for range queries, and for leak freedom at teardown.
   Queues are checked for per-thread FIFO order, element conservation
   under concurrency, and leak freedom. *)

module IntSet = Set.Make (Int)

module Make_set_tests (D : Ds.Set_intf.S) (L : sig
  val label : string
end) =
struct
  let t name speed f = Alcotest.test_case (L.label ^ ": " ^ name) speed f

  let sequential_model () =
    let d = D.create ~max_threads:1 () in
    let c = D.ctx d 0 in
    let model = ref IntSet.empty in
    let rng = Repro_util.Rng.create ~seed:2024 in
    for _ = 1 to 5_000 do
      let key = Repro_util.Rng.int rng 64 in
      match Repro_util.Rng.int rng 3 with
      | 0 ->
          let expected = not (IntSet.mem key !model) in
          model := IntSet.add key !model;
          Alcotest.(check bool) "insert agrees" expected (D.insert c key)
      | 1 ->
          let expected = IntSet.mem key !model in
          model := IntSet.remove key !model;
          Alcotest.(check bool) "remove agrees" expected (D.remove c key)
      | _ ->
          Alcotest.(check bool) "contains agrees" (IntSet.mem key !model) (D.contains c key)
    done;
    Alcotest.(check int) "final size agrees" (IntSet.cardinal !model) (D.size d);
    D.flush c;
    Alcotest.(check bool) "backlog non-negative" true (D.retired_backlog d >= 0);
    D.teardown d;
    Alcotest.(check int) "leak free" 0 (D.live_objects d);
    (* Teardown quiesces: nothing may stay parked in the retire
       pipeline once every thread has drained. *)
    Alcotest.(check int) "backlog drained" 0 (D.retired_backlog d)

  let duplicate_semantics () =
    let d = D.create ~max_threads:1 () in
    let c = D.ctx d 0 in
    Alcotest.(check bool) "fresh insert" true (D.insert c 7);
    Alcotest.(check bool) "duplicate insert" false (D.insert c 7);
    Alcotest.(check bool) "present" true (D.contains c 7);
    Alcotest.(check bool) "remove" true (D.remove c 7);
    Alcotest.(check bool) "absent remove" false (D.remove c 7);
    Alcotest.(check bool) "absent" false (D.contains c 7);
    D.teardown d

  let range_query_counts () =
    let d = D.create ~max_threads:1 () in
    let c = D.ctx d 0 in
    for k = 0 to 99 do
      ignore (D.insert c k)
    done;
    Alcotest.(check int) "[10,20)" 10 (D.range_query c 10 20);
    Alcotest.(check int) "[0,100)" 100 (D.range_query c 0 100);
    Alcotest.(check int) "[95,200)" 5 (D.range_query c 95 200);
    Alcotest.(check int) "empty range" 0 (D.range_query c 200 300);
    ignore (D.remove c 15);
    Alcotest.(check int) "[10,20) after remove" 9 (D.range_query c 10 20);
    D.teardown d

  (* Disjoint key partitions: every thread owns keys ≡ pid (mod P), so
     expected final contents are exact. *)
  let concurrent_disjoint () =
    let p = 4 in
    let per = 300 in
    let d = D.create ~max_threads:p () in
    let failures = Atomic.make 0 in
    let worker pid () =
      let c = D.ctx d pid in
      try
        for i = 0 to per - 1 do
          let key = (i * p) + pid in
          if not (D.insert c key) then raise Exit
        done;
        (* Remove every other one of our keys. *)
        for i = 0 to (per / 2) - 1 do
          let key = (2 * i * p) + pid in
          if not (D.remove c key) then raise Exit
        done;
        D.flush c
      with _ -> ignore (Atomic.fetch_and_add failures 1)
    in
    let domains = List.init p (fun pid -> Domain.spawn (worker pid)) in
    List.iter Domain.join domains;
    Alcotest.(check int) "no worker failures" 0 (Atomic.get failures);
    Alcotest.(check int) "final size" (p * per / 2) (D.size d);
    let c0 = D.ctx d 0 in
    for i = 0 to per - 1 do
      for pid = 0 to p - 1 do
        let key = (i * p) + pid in
        let expected = i mod 2 = 1 in
        if D.contains c0 key <> expected then
          Alcotest.failf "key %d: expected %b" key expected
      done
    done;
    D.teardown d;
    Alcotest.(check int) "leak free" 0 (D.live_objects d)

  (* Contended single-key churn plus readers: exercises helping and
     unlink races; checks nothing crashes and memory is reclaimed. *)
  let concurrent_churn () =
    let p = 4 in
    let d = D.create ~max_threads:p () in
    let failures = Atomic.make 0 in
    let worker pid () =
      let c = D.ctx d pid in
      let rng = Repro_util.Rng.create ~seed:(pid + 31) in
      try
        for _ = 1 to 5_000 do
          let key = Repro_util.Rng.int rng 16 in
          match Repro_util.Rng.int rng 3 with
          | 0 -> ignore (D.insert c key)
          | 1 -> ignore (D.remove c key)
          | _ -> ignore (D.contains c key)
        done;
        D.flush c
      with e ->
        ignore (Atomic.fetch_and_add failures 1);
        Printf.eprintf "[%s churn %d] %s\n%!" L.label pid (Printexc.to_string e)
    in
    let domains = List.init p (fun pid -> Domain.spawn (worker pid)) in
    List.iter Domain.join domains;
    Alcotest.(check int) "no worker failures" 0 (Atomic.get failures);
    let size = D.size d in
    Alcotest.(check bool) "size within key range" true (size >= 0 && size <= 16);
    Alcotest.(check bool) "backlog non-negative" true (D.retired_backlog d >= 0);
    D.teardown d;
    Alcotest.(check int) "leak free" 0 (D.live_objects d);
    Alcotest.(check int) "backlog drained" 0 (D.retired_backlog d)

  let tests =
    [
      t "sequential model" `Slow sequential_model;
      t "duplicate semantics" `Quick duplicate_semantics;
      t "range query" `Quick range_query_counts;
      t "concurrent disjoint" `Slow concurrent_disjoint;
      t "concurrent churn" `Slow concurrent_churn;
    ]
end

(* ---- instantiations: a representative matrix (the benchmark covers
   the full one) ---- *)

module RC_ebr = Cdrc.Make (Smr.Ebr)
module RC_hp = Cdrc.Make (Smr.Hp)
module RC_hyaline = Cdrc.Make (Smr.Hyaline)
module RC_ibr = Cdrc.Make (Smr.Ibr)

module L_ebr = Ds.Hm_list_manual.Make (Smr.Ebr)
module L_hp = Ds.Hm_list_manual.Make (Smr.Hp)
module L_ibr = Ds.Hm_list_manual.Make (Smr.Ibr)
module L_hyaline = Ds.Hm_list_manual.Make (Smr.Hyaline)
module L_he = Ds.Hm_list_manual.Make (Smr.Hazard_eras)
module Lr_ebr = Ds.Hm_list_rc.Make (RC_ebr)
module Lr_hp = Ds.Hm_list_rc.Make (RC_hp)
module H_ebr = Ds.Hash_table_manual.Make (Smr.Ebr)
module Hr_ebr = Ds.Hash_table_rc.Make (RC_ebr)
module T_ebr = Ds.Nm_tree_manual.Make (Smr.Ebr)
module T_hyaline = Ds.Nm_tree_manual.Make (Smr.Hyaline)
module Tr_ebr = Ds.Nm_tree_rc.Make (RC_ebr)
module Tr_hp = Ds.Nm_tree_rc.Make (RC_hp)
module Tr_ibr = Ds.Nm_tree_rc.Make (RC_ibr)

module Tests_l_ebr =
  Make_set_tests
    (L_ebr)
    (struct
      let label = "list/EBR"
    end)

module Tests_l_hp =
  Make_set_tests
    (L_hp)
    (struct
      let label = "list/HP"
    end)

module Tests_l_ibr =
  Make_set_tests
    (L_ibr)
    (struct
      let label = "list/IBR"
    end)

module Tests_l_hyaline =
  Make_set_tests
    (L_hyaline)
    (struct
      let label = "list/Hyaline"
    end)

module Tests_l_he =
  Make_set_tests
    (L_he)
    (struct
      let label = "list/HE"
    end)

module Tests_lr_ebr =
  Make_set_tests
    (Lr_ebr)
    (struct
      let label = "list/RCEBR"
    end)

module Tests_lr_hp =
  Make_set_tests
    (Lr_hp)
    (struct
      let label = "list/RCHP"
    end)

module Tests_h_ebr =
  Make_set_tests
    (H_ebr)
    (struct
      let label = "hash/EBR"
    end)

module Tests_hr_ebr =
  Make_set_tests
    (Hr_ebr)
    (struct
      let label = "hash/RCEBR"
    end)

module Tests_t_ebr =
  Make_set_tests
    (T_ebr)
    (struct
      let label = "tree/EBR"
    end)

module Tests_t_hyaline =
  Make_set_tests
    (T_hyaline)
    (struct
      let label = "tree/Hyaline"
    end)

module Tests_tr_ebr =
  Make_set_tests
    (Tr_ebr)
    (struct
      let label = "tree/RCEBR"
    end)

module Tests_tr_hp =
  Make_set_tests
    (Tr_hp)
    (struct
      let label = "tree/RCHP"
    end)

module Tests_tr_ibr =
  Make_set_tests
    (Tr_ibr)
    (struct
      let label = "tree/RCIBR"
    end)

(* ---- queue tests ---- *)

module Make_queue_tests (Q : Ds.Queue_intf.S) (L : sig
  val label : string
end) =
struct
  let t name speed f = Alcotest.test_case (L.label ^ ": " ^ name) speed f

  let fifo_single_thread () =
    let q = Q.create ~max_threads:1 () in
    let c = Q.ctx q 0 in
    Alcotest.(check (option int)) "empty" None (Q.dequeue c);
    for i = 1 to 100 do
      Q.enqueue c i
    done;
    for i = 1 to 100 do
      Alcotest.(check (option int)) "fifo order" (Some i) (Q.dequeue c)
    done;
    Alcotest.(check (option int)) "empty again" None (Q.dequeue c);
    Q.flush c;
    Q.teardown q;
    Alcotest.(check int) "leak free" 0 (Q.live_objects q)

  let interleaved_enq_deq () =
    let q = Q.create ~max_threads:1 () in
    let c = Q.ctx q 0 in
    for round = 0 to 9 do
      for i = 0 to 9 do
        Q.enqueue c ((round * 10) + i)
      done;
      for i = 0 to 9 do
        Alcotest.(check (option int)) "fifo" (Some ((round * 10) + i)) (Q.dequeue c)
      done
    done;
    Q.flush c;
    Q.teardown q;
    Alcotest.(check int) "leak free" 0 (Q.live_objects q)

  (* The paper's Fig 12 workload shape: P threads each repeatedly
     dequeue an element and re-enqueue it; the multiset of values is
     conserved. *)
  let conservation_under_contention () =
    let p = 4 in
    let q = Q.create ~max_threads:p () in
    let c0 = Q.ctx q 0 in
    for i = 1 to p * 3 do
      Q.enqueue c0 i
    done;
    let failures = Atomic.make 0 in
    let worker pid () =
      let c = Q.ctx q pid in
      try
        for _ = 1 to 5_000 do
          match Q.dequeue c with Some v -> Q.enqueue c v | None -> ()
        done;
        Q.flush c
      with e ->
        ignore (Atomic.fetch_and_add failures 1);
        Printf.eprintf "[%s conserve %d] %s\n%!" L.label pid (Printexc.to_string e)
    in
    let domains = List.init p (fun pid -> Domain.spawn (worker pid)) in
    List.iter Domain.join domains;
    Alcotest.(check int) "no worker failures" 0 (Atomic.get failures);
    let rec drain acc =
      match Q.dequeue c0 with Some v -> drain (v :: acc) | None -> acc
    in
    let final = List.sort compare (drain []) in
    let expected = List.init (p * 3) (fun i -> i + 1) in
    Alcotest.(check (list int)) "values conserved" expected final;
    Q.flush c0;
    Alcotest.(check bool) "backlog non-negative" true (Q.retired_backlog q >= 0);
    Q.teardown q;
    Alcotest.(check int) "leak free" 0 (Q.live_objects q);
    Alcotest.(check int) "backlog drained" 0 (Q.retired_backlog q)

  let per_producer_order () =
    (* Two producers with disjoint value spaces and one consumer: each
       producer's values must come out in its insertion order. *)
    let q = Q.create ~max_threads:3 () in
    let n = 2_000 in
    let producer pid () =
      let c = Q.ctx q pid in
      for i = 0 to n - 1 do
        Q.enqueue c ((pid * 1_000_000) + i);
        if i land 63 = 0 then Q.flush c
      done;
      Q.flush c
    in
    let consumer () =
      let c = Q.ctx q 2 in
      let seen = Array.make 2 (-1) in
      let got = ref 0 in
      let ok = ref true in
      while !got < 2 * n do
        match Q.dequeue c with
        | None -> Domain.cpu_relax ()
        | Some v ->
            incr got;
            let pid = v / 1_000_000 in
            let i = v mod 1_000_000 in
            if i <= seen.(pid) then ok := false;
            seen.(pid) <- i
      done;
      !ok
    in
    let p1 = Domain.spawn (producer 0) in
    let p2 = Domain.spawn (producer 1) in
    let cons = Domain.spawn consumer in
    Domain.join p1;
    Domain.join p2;
    Alcotest.(check bool) "per-producer order" true (Domain.join cons);
    Q.teardown q;
    Alcotest.(check int) "leak free" 0 (Q.live_objects q)

  let tests =
    [
      t "fifo single thread" `Quick fifo_single_thread;
      t "interleaved" `Quick interleaved_enq_deq;
      t "conservation" `Slow conservation_under_contention;
      t "per-producer order" `Slow per_producer_order;
    ]
end

module Q_rc_hp = Ds.Dl_queue_rc.Make (RC_hp)
module Q_rc_ebr = Ds.Dl_queue_rc.Make (RC_ebr)
module Q_rc_hyaline = Ds.Dl_queue_rc.Make (RC_hyaline)
module Q_manual = Ds.Dl_queue_manual.Make ()
module Q_locked = Ds.Dl_queue_locked.Make ()

module Tests_q_rc_hp =
  Make_queue_tests
    (Q_rc_hp)
    (struct
      let label = "queue/RCHP-weak"
    end)

module Tests_q_rc_ebr =
  Make_queue_tests
    (Q_rc_ebr)
    (struct
      let label = "queue/RCEBR-weak"
    end)

module Tests_q_rc_hyaline =
  Make_queue_tests
    (Q_rc_hyaline)
    (struct
      let label = "queue/RCHyaline-weak"
    end)

module Tests_q_manual =
  Make_queue_tests
    (Q_manual)
    (struct
      let label = "queue/Original"
    end)

module Tests_q_locked =
  Make_queue_tests
    (Q_locked)
    (struct
      let label = "queue/locked"
    end)

let () =
  Alcotest.run "ds"
    [
      ("list manual ebr", Tests_l_ebr.tests);
      ("list manual hp", Tests_l_hp.tests);
      ("list manual ibr", Tests_l_ibr.tests);
      ("list manual hyaline", Tests_l_hyaline.tests);
      ("list manual he", Tests_l_he.tests);
      ("list rc ebr", Tests_lr_ebr.tests);
      ("list rc hp", Tests_lr_hp.tests);
      ("hash manual ebr", Tests_h_ebr.tests);
      ("hash rc ebr", Tests_hr_ebr.tests);
      ("tree manual ebr", Tests_t_ebr.tests);
      ("tree manual hyaline", Tests_t_hyaline.tests);
      ("tree rc ebr", Tests_tr_ebr.tests);
      ("tree rc hp", Tests_tr_hp.tests);
      ("tree rc ibr", Tests_tr_ibr.tests);
      ("queue rc hp", Tests_q_rc_hp.tests);
      ("queue rc ebr", Tests_q_rc_ebr.tests);
      ("queue rc hyaline", Tests_q_rc_hyaline.tests);
      ("queue original", Tests_q_manual.tests);
      ("queue locked", Tests_q_locked.tests);
    ]
