(* Resilience layer (DESIGN.md §13): qcheck properties over the
   circuit breaker's pure core, bit-identical chaos-campaign replay,
   and the request-outcome / worker-failure separation in the serving
   runner.

   The breaker properties quantify over *reachable* states — whatever a
   random input sequence produces from [init] — rather than raw state
   values, so they hold for the machine as driven, not just for states
   the machine can never enter. *)

module Q = QCheck2
module B = Workload.Breaker

let to_alcotest = QCheck_alcotest.to_alcotest

(* ------------------- generators ----------------------------------- *)

(* Small-threshold configs keep the walks short while exercising every
   transition; fields respect [validate_config]'s invariants by
   construction. *)
let config_gen =
  Q.Gen.(
    let* trip_failures = int_range 1 6 in
    let* backlog_trip = int_range 8 64 in
    let* shed_writes_at = int_range 1 backlog_trip in
    let* shed_writes_clear = int_range 0 shed_writes_at in
    let* p99_trip = int_range 2 32 in
    let* open_ticks = int_range 1 5 in
    let* probe_quota = int_range 1 5 in
    let* close_after = int_range 1 probe_quota in
    return
      {
        B.trip_failures;
        backlog_trip;
        shed_writes_at;
        shed_writes_clear;
        p99_trip;
        open_ticks;
        probe_quota;
        close_after;
      })

type op = Admit of B.kind | Report of bool | Tick of int * int option

let op_gen cfg =
  Q.Gen.(
    let backlog = int_range 0 (2 * cfg.B.backlog_trip) in
    let p99 = opt (int_range 0 (2 * cfg.B.p99_trip)) in
    oneof
      [
        map (fun w -> Admit (if w then B.Write else B.Read)) bool;
        map (fun ok -> Report ok) bool;
        map2 (fun b p -> Tick (b, p)) backlog p99;
      ])

let walk_gen =
  Q.Gen.(
    let* cfg = config_gen in
    let* ops = list_size (int_range 0 60) (op_gen cfg) in
    return (cfg, ops))

let apply cfg st = function
  | Admit k -> fst (B.admit cfg st k)
  | Report ok -> fst (B.report cfg st ~ok)
  | Tick (b, p) -> fst (B.tick cfg st ~backlog:b ~p99:p)

let reach cfg ops = List.fold_left (apply cfg) B.init ops
let is_closed = function B.Closed _ -> true | _ -> false

(* ------------------- properties ----------------------------------- *)

(* Liveness: from any reachable state, healthy signals alone close the
   breaker — Open drains to Half_open in <= open_ticks ticks and an
   idle Half_open quiet-closes in open_ticks more, so 2 * open_ticks
   healthy ticks suffice with no request traffic at all. A breaker
   that can wedge open after the fault clears fails this. *)
let prop_never_wedges_open =
  Q.Test.make ~name:"breaker: healthy ticks always close it" ~count:500 walk_gen
    (fun (cfg, ops) ->
      let st = ref (reach cfg ops) in
      for _ = 1 to 2 * cfg.B.open_ticks do
        st := fst (B.tick cfg !st ~backlog:0 ~p99:None)
      done;
      is_closed !st)

(* Half_open admission budget: exactly [probe_quota] probes are
   admitted, then everything sheds until a report or tick moves the
   state. *)
let prop_half_open_quota =
  Q.Test.make ~name:"breaker: half-open admits exactly probe_quota" ~count:500
    Q.Gen.(pair config_gen bool)
    (fun (cfg, write) ->
      let kind = if write then B.Write else B.Read in
      (* Drive init -> Open (backlog trip) -> Half_open (drain). *)
      let st = ref (fst (B.tick cfg B.init ~backlog:cfg.B.backlog_trip ~p99:None)) in
      for _ = 1 to cfg.B.open_ticks do
        st := fst (B.tick cfg !st ~backlog:0 ~p99:None)
      done;
      (match !st with B.Half_open _ -> () | _ -> Q.Test.fail_report "not half-open");
      let admitted = ref 0 in
      for _ = 1 to cfg.B.probe_quota + 3 do
        let st', d = B.admit cfg !st kind in
        st := st';
        match d with
        | B.Admit_probe -> incr admitted
        | B.Shed -> ()
        | B.Admit | B.Shed_write -> Q.Test.fail_report "non-probe decision half-open"
      done;
      !admitted = cfg.B.probe_quota)

(* Replay: the core is pure, so the full (state, output) trajectory of
   any input sequence is bit-identical across runs — the property CI
   leans on when a failed campaign is re-run from its printed seed. *)
let prop_replays_bit_identically =
  Q.Test.make ~name:"breaker: trajectories replay bit-identically" ~count:300 walk_gen
    (fun (cfg, ops) ->
      let trace () =
        List.fold_left
          (fun (st, acc) op ->
            let st', out =
              match op with
              | Admit k ->
                  let st', d = B.admit cfg st k in
                  (st', B.state_name st' ^ "/admit")
                  |> fun (s, tag) ->
                  ( s,
                    tag
                    ^
                    match d with
                    | B.Admit -> "+a"
                    | B.Admit_probe -> "+p"
                    | B.Shed -> "+s"
                    | B.Shed_write -> "+w" )
              | Report ok ->
                  let st', tr = B.report cfg st ~ok in
                  (st', B.state_name st' ^ if tr = None then "" else "/tr")
              | Tick (b, p) ->
                  let st', tr = B.tick cfg st ~backlog:b ~p99:p in
                  (st', B.state_name st' ^ if tr = None then "" else "/tr")
            in
            (st', out :: acc))
          (B.init, []) ops
        |> snd
      in
      trace () = trace ())

(* ------------------- chaos-campaign replay ------------------------ *)

let chaos_spec =
  {
    Workload.Chaos_runner.default_spec with
    Workload.Chaos_runner.ch_steps = 1500;
    ch_victims = 2;
  }

let chaos_replays_bit_identically () =
  let scheme =
    match Workload.Chaos_runner.find_schemes [ "EBR" ] with
    | [ s ] -> s
    | _ -> Alcotest.fail "EBR scheme not found"
  in
  let a = Workload.Chaos_runner.run_campaign ~spec:chaos_spec scheme in
  let b = Workload.Chaos_runner.run_campaign ~spec:chaos_spec scheme in
  Alcotest.(check bool) "campaign passed" true a.Workload.Chaos_runner.c_ok;
  Alcotest.(check int) "same digest" a.c_digest b.c_digest;
  Alcotest.(check int) "same ok count" a.c_ok_first b.c_ok_first;
  Alcotest.(check int) "same trips" a.c_trips b.c_trips;
  Alcotest.(check int) "same aborted" a.c_aborted b.c_aborted;
  Alcotest.(check (list int)) "same recoveries" a.c_recoveries b.c_recoveries;
  Alcotest.(check int) "same peak backlog" a.c_peak_backlog b.c_peak_backlog

let chaos_seed_changes_schedule () =
  let scheme =
    match Workload.Chaos_runner.find_schemes [ "EBR" ] with
    | [ s ] -> s
    | _ -> Alcotest.fail "EBR scheme not found"
  in
  let a = Workload.Chaos_runner.run_campaign ~spec:chaos_spec scheme in
  let b =
    Workload.Chaos_runner.run_campaign
      ~spec:{ chaos_spec with Workload.Chaos_runner.ch_seed = 43 }
      scheme
  in
  Alcotest.(check bool) "different digest" true (a.c_digest <> b.c_digest)

(* ------------------- outcome separation --------------------------- *)

(* A nanosecond deadline forces every request over budget: the runner
   must report timeouts/retries as request outcomes while r_failures —
   worker deaths — stays zero and the run still validates. *)
let request_outcomes_are_not_failures () =
  let scheme =
    match Workload.Instances.find_kv "EBR" with
    | Some s -> s
    | None -> Alcotest.fail "EBR KV instance not found"
  in
  let spec =
    {
      Workload.Kv_runner.default_spec with
      Workload.Kv_runner.threads = 2;
      duration = 0.1;
      shards = 2;
      keys = 2048;
      deadline_ms = 0.0001;
      retries = 1;
    }
  in
  let r = Workload.Kv_runner.run_one ~spec ~validate:true scheme in
  Alcotest.(check int) "no worker deaths" 0 r.Workload.Kv_runner.r_failures;
  Alcotest.(check bool) "deadline misses were accounted" true
    (r.r_timed_out + r.r_retried_ok > 0);
  Alcotest.(check bool) "retries were issued" true (r.r_retries > 0);
  Alcotest.(check (list string)) "run validates" [] r.r_violations;
  Alcotest.(check int) "no leaks" 0 r.r_leaked

let () =
  Alcotest.run "resilience"
    [
      ( "breaker",
        [
          to_alcotest prop_never_wedges_open;
          to_alcotest prop_half_open_quota;
          to_alcotest prop_replays_bit_identically;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "campaign replays bit-identically" `Slow
            chaos_replays_bit_identically;
          Alcotest.test_case "seed changes the schedule" `Slow
            chaos_seed_changes_schedule;
        ] );
      ( "outcomes",
        [
          Alcotest.test_case "request outcomes are not worker failures" `Slow
            request_outcomes_are_not_failures;
        ] );
    ]
