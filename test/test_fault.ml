(* Fault-injection tests: the plan machinery itself (determinism,
   stall clock, crash permanence, drop budgets), the paper's §2
   robustness contrast as deterministic assertions (EBR's backlog grows
   without bound under one stalled thread while HP/IBR/HE/PTB stay
   bounded), crash recovery via [abandon] for every scheme, and a
   qcheck property running random fault plans against the Treiber stack
   (no use-after-free ever; no leaks once crashed/stalled threads are
   abandoned and the structure torn down). *)

module FP = Fault.Fault_plan
module Ident = Smr.Ident

let all_schemes : (module Smr.Smr_intf.S) list =
  [
    (module Smr.Ebr : Smr.Smr_intf.S);
    (module Smr.Ibr);
    (module Smr.Hp);
    (module Smr.Hazard_eras);
    (module Smr.Hyaline);
    (module Smr.Ptb);
    (module Smr.Leaky);
  ]

(* ---------------------- Fault_plan unit tests --------------------- *)

let test_plan_deterministic () =
  (* Same seed, same workload of hits -> identical fired-event traces. *)
  let sites = [| FP.On_begin_cs; FP.On_confirm; FP.On_retire; FP.On_eject; FP.On_alloc |] in
  let drive plan =
    for s = 0 to 199 do
      try ignore (FP.hit plan sites.(s mod 5) ~pid:(s mod 3))
      with FP.Crashed _ -> ()
    done;
    FP.trace plan
  in
  let a = drive (FP.random ~seed:17 ~max_threads:3 ()) in
  let b = drive (FP.random ~seed:17 ~max_threads:3 ()) in
  Alcotest.(check bool) "identical traces" true (a = b)

let test_plan_hit_counts () =
  let plan =
    FP.create [ { FP.site = On_retire; pid = Some 0; at = 3; action = Delay 1 } ]
  in
  Alcotest.(check bool) "1st hit quiet" true (FP.hit plan On_retire ~pid:0 = None);
  Alcotest.(check bool) "other pid quiet" true (FP.hit plan On_retire ~pid:1 = None);
  Alcotest.(check bool) "other site quiet" true (FP.hit plan On_eject ~pid:0 = None);
  Alcotest.(check bool) "2nd hit quiet" true (FP.hit plan On_retire ~pid:0 = None);
  Alcotest.(check bool) "3rd hit fires" true
    (FP.hit plan On_retire ~pid:0 = Some (FP.Delay 1));
  Alcotest.(check bool) "4th hit quiet again" true (FP.hit plan On_retire ~pid:0 = None);
  match FP.trace plan with
  | [ e ] ->
      Alcotest.(check bool) "event site" true (e.FP.ev_site = FP.On_retire);
      Alcotest.(check int) "event pid" 0 e.FP.ev_pid;
      Alcotest.(check int) "event hit" 3 e.FP.ev_hit
  | t -> Alcotest.failf "expected one trace event, got %d" (List.length t)

let test_plan_stall_clock () =
  let plan =
    FP.create [ { FP.site = On_retire; pid = Some 0; at = 1; action = Stall 3 } ]
  in
  Alcotest.(check bool) "not stalled before" false (FP.stalled plan ~pid:0);
  ignore (FP.hit plan On_retire ~pid:0);
  Alcotest.(check bool) "stalled after firing" true (FP.stalled plan ~pid:0);
  (* The fault clock ticks on every site hit by anyone; the stall must
     expire on its own within the deadline. *)
  for _ = 1 to 10 do
    ignore (FP.hit plan On_eject ~pid:1)
  done;
  Alcotest.(check bool) "stall expired" false (FP.stalled plan ~pid:0)

let test_plan_stall_forever_and_resume () =
  let plan =
    FP.create [ { FP.site = On_begin_cs; pid = Some 1; at = 1; action = Stall 0 } ]
  in
  ignore (FP.hit plan On_begin_cs ~pid:1);
  for _ = 1 to 1000 do
    ignore (FP.hit plan On_eject ~pid:0)
  done;
  Alcotest.(check bool) "stall 0 never expires" true (FP.stalled plan ~pid:1);
  FP.resume plan ~pid:1;
  Alcotest.(check bool) "resume lifts it" false (FP.stalled plan ~pid:1)

let test_plan_crash_permanent () =
  let plan =
    FP.create [ { FP.site = On_alloc; pid = Some 1; at = 2; action = Crash } ]
  in
  Alcotest.(check bool) "1st alloc quiet" true (FP.hit plan On_alloc ~pid:1 = None);
  Alcotest.(check bool) "2nd alloc fires crash" true
    (FP.hit plan On_alloc ~pid:1 = Some FP.Crash);
  Alcotest.(check bool) "marked crashed" true (FP.crashed plan ~pid:1);
  Alcotest.check_raises "any later call raises" (FP.Crashed 1) (fun () ->
      ignore (FP.hit plan On_begin_cs ~pid:1));
  Alcotest.(check bool) "other pids unaffected" true
    (FP.hit plan On_alloc ~pid:0 = None && not (FP.crashed plan ~pid:0))

let test_plan_slow_persists_and_heals () =
  (* Slow is persistent gray failure: the factor sticks from the firing
     hit until heal, never stalls or kills the pid, and replays
     deterministically (it is plain plan state, like crash). *)
  let mk () =
    FP.create
      [ { FP.site = On_begin_cs; pid = Some 1; at = 2; action = Slow { factor = 5 } } ]
  in
  let plan = mk () in
  Alcotest.(check int) "healthy before" 0 (FP.slow_factor plan ~pid:1);
  Alcotest.(check bool) "1st hit quiet" true (FP.hit plan On_begin_cs ~pid:1 = None);
  Alcotest.(check bool) "2nd hit fires" true
    (FP.hit plan On_begin_cs ~pid:1 = Some (FP.Slow { factor = 5 }));
  Alcotest.(check int) "factor set" 5 (FP.slow_factor plan ~pid:1);
  Alcotest.(check bool) "not stalled" false (FP.stalled plan ~pid:1);
  Alcotest.(check bool) "not crashed" false (FP.crashed plan ~pid:1);
  ignore (FP.hit plan On_retire ~pid:1);
  Alcotest.(check int) "persists across hits" 5 (FP.slow_factor plan ~pid:1);
  Alcotest.(check int) "other pids healthy" 0 (FP.slow_factor plan ~pid:0);
  FP.heal plan ~pid:1;
  Alcotest.(check int) "heal clears it" 0 (FP.slow_factor plan ~pid:1);
  (* Replay determinism: an identical plan driven by the same hit
     sequence produces the identical trace. *)
  let drive p =
    ignore (FP.hit p On_begin_cs ~pid:1);
    ignore (FP.hit p On_begin_cs ~pid:1);
    ignore (FP.hit p On_retire ~pid:1);
    FP.trace p
  in
  Alcotest.(check bool) "bit-identical replay" true (drive (mk ()) = drive (mk ()));
  Alcotest.check_raises "factor < 1 rejected"
    (Invalid_argument "Fault_plan.create: slow factors start at 1") (fun () ->
      ignore
        (FP.create
           [ { FP.site = On_retire; pid = None; at = 1; action = Slow { factor = 0 } } ]))

let test_plan_drop_budget () =
  let plan =
    FP.create [ { FP.site = On_eject; pid = Some 0; at = 1; action = Drop_eject 3 } ]
  in
  Alcotest.(check int) "no budget before firing" 0 (FP.take_drops plan ~pid:0 ~avail:5);
  ignore (FP.hit plan On_eject ~pid:0);
  Alcotest.(check int) "capped by avail" 2 (FP.take_drops plan ~pid:0 ~avail:2);
  Alcotest.(check int) "remainder" 1 (FP.take_drops plan ~pid:0 ~avail:5);
  Alcotest.(check int) "exhausted" 0 (FP.take_drops plan ~pid:0 ~avail:5)

(* A gray-failed (Slow) thread is degraded but alive: unlike Stall, it
   keeps completing operations and releasing protection, so reclamation
   is never blocked behind it. *)
let test_slow_thread_stays_live () =
  let plan =
    FP.create
      [ { FP.site = On_begin_cs; pid = Some 0; at = 1; action = Slow { factor = 8 } } ]
  in
  let module FS =
    Fault.Faulty_smr.Make
      (Smr.Ebr)
      (struct
        let plan = plan
      end)
  in
  let s = FS.create ~epoch_freq:1 ~cleanup_freq:1 ~max_threads:1 () in
  let freed = ref 0 in
  for i = 1 to 100 do
    FS.begin_critical_section s ~pid:0;
    let birth = FS.alloc_hook s ~pid:0 in
    FS.retire s ~pid:0 (Ident.of_val (ref i)) ~birth (fun _ -> incr freed);
    FS.end_critical_section s ~pid:0;
    List.iter (fun op -> op 0) (FS.eject ~force:true s ~pid:0)
  done;
  Alcotest.(check int) "slow pid factor live" 8 (FP.slow_factor plan ~pid:0);
  Alcotest.(check bool) "never stalled" false (FP.stalled plan ~pid:0);
  Alcotest.(check bool) "reclamation kept up" true (!freed >= 99)

(* --------------- stalled thread: bounded vs unbounded ------------- *)

(* One thread (pid 0) stalls forever inside its first critical section;
   pid 1 keeps allocating and retiring fresh objects, force-ejecting
   after each. Protected-region schemes without interval tracking (EBR,
   Hyaline) must accumulate *every* retired entry behind the stalled
   section — a monotone, unbounded backlog — while HP/IBR/HE/PTB keep
   the backlog bounded by what the stalled thread can actually pin.
   Afterwards, [abandon] must restore full reclamation for everyone. *)

let n_churn = 300
let n_extra = 50 (* retired after the victim's suppressed section exit *)
let bound = 80 (* generous cap for the bounded schemes' backlogs *)

let stalled_backlog (module S : Smr.Smr_intf.S) () =
  let plan =
    FP.create [ { FP.site = On_begin_cs; pid = Some 0; at = 1; action = Stall 0 } ]
  in
  let module FS =
    Fault.Faulty_smr.Make
      (S)
      (struct
        let plan = plan
      end)
  in
  let s = FS.create ~epoch_freq:1 ~cleanup_freq:1 ~max_threads:2 () in
  let freed = ref 0 in
  let retire_one i =
    FS.begin_critical_section s ~pid:1;
    let birth = FS.alloc_hook s ~pid:1 in
    FS.retire s ~pid:1 (Ident.of_val (ref i)) ~birth (fun _ -> incr freed);
    FS.end_critical_section s ~pid:1;
    List.iter (fun op -> op 1) (FS.eject ~force:true s ~pid:1)
  in
  (* Victim enters and stalls (the entry itself still runs). *)
  FS.begin_critical_section s ~pid:0;
  Alcotest.(check bool) "victim stalled" true (FP.stalled plan ~pid:0);
  let unbounded = S.name = "EBR" || S.name = "Hyaline" in
  for i = 1 to n_churn do
    retire_one i;
    let backlog = i - !freed in
    if unbounded then
      Alcotest.(check int) (Printf.sprintf "%s: backlog = everything at %d" S.name i) i
        backlog
    else
      Alcotest.(check bool)
        (Printf.sprintf "%s: backlog bounded at %d (got %d)" S.name i backlog)
        true (backlog <= bound)
  done;
  (* The victim "finishes" its operation while stalled: the section
     exit is suppressed, so it must keep pinning. *)
  FS.end_critical_section s ~pid:0;
  for i = 1 to n_extra do
    retire_one (n_churn + i)
  done;
  if unbounded then
    Alcotest.(check int)
      (S.name ^ ": suppressed exit still pins")
      0 !freed;
  (* Recovery: reap the stalled thread; the survivor reclaims it all. *)
  FS.abandon s ~pid:0;
  let rec drain pid =
    match FS.eject ~force:true s ~pid with
    | [] -> ()
    | ops ->
        List.iter (fun op -> op pid) ops;
        drain pid
  in
  drain 1;
  let rec drain_all () =
    match FS.drain_all s with
    | [] -> ()
    | ops ->
        List.iter (fun op -> op 1) ops;
        drain_all ()
  in
  drain_all ();
  Alcotest.(check int)
    (S.name ^ ": abandon restores full reclamation")
    (n_churn + n_extra) !freed

(* ------------------- crash recovery via abandon ------------------- *)

(* pid 0 crashes on its 3rd retire (the entry is recorded first) while
   holding a critical section and an acquired guard. The survivor alone
   cannot reach the dead thread's retired entries; after [abandon] it
   must reclaim all three, each deferred op running exactly once. *)

let crash_recovery (module S : Smr.Smr_intf.S) () =
  let plan =
    FP.create [ { FP.site = On_retire; pid = Some 0; at = 3; action = Crash } ]
  in
  let module FS =
    Fault.Faulty_smr.Make
      (S)
      (struct
        let plan = plan
      end)
  in
  let s = FS.create ~epoch_freq:1 ~cleanup_freq:1 ~max_threads:2 () in
  let runs = Array.make 3 0 in
  let retire_one i =
    let birth = FS.alloc_hook s ~pid:0 in
    FS.retire s ~pid:0 (Ident.of_val (ref i)) ~birth (fun _ -> runs.(i) <- runs.(i) + 1)
  in
  FS.begin_critical_section s ~pid:0;
  let sentinel = Ident.of_val (ref 999) in
  let g = FS.acquire s ~pid:0 sentinel in
  while not (FS.confirm s ~pid:0 g sentinel) do
    ()
  done;
  let crashed =
    try
      retire_one 0;
      retire_one 1;
      retire_one 2;
      false
    with FP.Crashed 0 -> true
  in
  Alcotest.(check bool) (S.name ^ ": crashed on 3rd retire") true crashed;
  Alcotest.check_raises (S.name ^ ": dead pid stays dead") (FP.Crashed 0) (fun () ->
      ignore (FS.eject ~force:true s ~pid:0));
  let total () = Array.fold_left ( + ) 0 runs in
  let rec drain pid =
    match FS.eject ~force:true s ~pid with
    | [] -> ()
    | ops ->
        List.iter (fun op -> op pid) ops;
        drain pid
  in
  (* Survivor alone: the dead thread's entries are unreachable. *)
  drain 1;
  Alcotest.(check int) (S.name ^ ": stranded before abandon") 0 (total ());
  FS.abandon s ~pid:0;
  drain 1;
  if S.name <> "None" then
    Alcotest.(check int) (S.name ^ ": survivor adopted all entries") 3 (total ());
  let rec drain_all () =
    match FS.drain_all s with
    | [] -> ()
    | ops ->
        List.iter (fun op -> op 1) ops;
        drain_all ()
  in
  drain_all ();
  Array.iteri
    (fun i n -> Alcotest.(check int) (Printf.sprintf "%s: op %d ran once" S.name i) 1 n)
    runs

(* ------------- qcheck: random fault plans are survivable ---------- *)

(* Drive the Treiber stack with three cooperatively-interleaved threads
   under a random seeded fault plan. Whatever the plan injects —
   stalls, crashes, delays, dropped ejects — no operation may ever
   touch freed memory (Simheap would raise), and abandoning every
   crashed or still-stalled pid must leave a leak-free teardown. *)

let run_random_plan (module S : Smr.Smr_intf.S) seed =
  let plan = FP.random ~seed ~rules:4 ~max_threads:3 () in
  let module FS =
    Fault.Faulty_smr.Make
      (S)
      (struct
        let plan = plan
      end)
  in
  let module St = Ds.Treiber_stack_manual.Make (FS) in
  let st = St.create ~max_threads:3 () in
  let ctxs = Array.init 3 (St.ctx st) in
  let rng = Repro_util.Rng.create ~seed:(seed lxor 0x5f17) in
  for step = 0 to 299 do
    let pid = step mod 3 in
    if (not (FP.crashed plan ~pid)) && not (FP.stalled plan ~pid) then
      try
        if Repro_util.Rng.int rng 3 = 0 then ignore (St.pop ctxs.(pid))
        else St.push ctxs.(pid) step
      with FP.Crashed _ -> ()
  done;
  for pid = 0 to 2 do
    if (not (FP.crashed plan ~pid)) && not (FP.stalled plan ~pid) then (
      try St.flush ctxs.(pid) with FP.Crashed _ -> ())
  done;
  for pid = 0 to 2 do
    if FP.crashed plan ~pid || FP.stalled plan ~pid then St.abandon st ~pid
  done;
  St.teardown st;
  St.live_objects st = 0

let prop_random_plans_safe =
  QCheck2.Test.make ~name:"random fault plans: no UAF, no leaks after abandon"
    ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      List.for_all
        (fun (module S : Smr.Smr_intf.S) ->
          try run_random_plan (module S) seed
          with Simheap.Use_after_free _ | Simheap.Double_free _ -> false)
        all_schemes)

(* ------------------------------ suite ----------------------------- *)

let scheme_cases mk =
  List.map
    (fun (module S : Smr.Smr_intf.S) ->
      Alcotest.test_case S.name `Quick (mk (module S : Smr.Smr_intf.S)))
    all_schemes

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "hit counts" `Quick test_plan_hit_counts;
          Alcotest.test_case "stall clock" `Quick test_plan_stall_clock;
          Alcotest.test_case "stall forever / resume" `Quick
            test_plan_stall_forever_and_resume;
          Alcotest.test_case "crash permanent" `Quick test_plan_crash_permanent;
          Alcotest.test_case "slow persists / heals" `Quick
            test_plan_slow_persists_and_heals;
          Alcotest.test_case "drop budget" `Quick test_plan_drop_budget;
          Alcotest.test_case "slow thread stays live" `Quick test_slow_thread_stays_live;
        ] );
      ( "stalled-backlog",
        List.map
          (fun (module S : Smr.Smr_intf.S) ->
            Alcotest.test_case S.name `Quick (stalled_backlog (module S)))
          [
            (module Smr.Ebr : Smr.Smr_intf.S);
            (module Smr.Ibr);
            (module Smr.Hp);
            (module Smr.Hazard_eras);
            (module Smr.Hyaline);
            (module Smr.Ptb);
          ] );
      ("crash-abandon", scheme_cases crash_recovery);
      ("random-plans", [ QCheck_alcotest.to_alcotest prop_random_plans_safe ]);
    ]
