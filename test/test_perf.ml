(* Perf-trajectory summaries (DESIGN.md §11): JSON round-trips, quantile
   agreement with Histo, the regression-gate semantics behind
   tools/bench_check, and the pinned atomic-op footprints of the
   lock-free cores under the counting shim. The footprint expectations
   are protocol invariants — if one moves, an algorithm's atomic cost
   changed and the new number must be justified, not just re-pinned. *)

module P = Obs.Perf

let q ?(count = 10) p50 p99 p999 =
  { P.q_count = count; q_p50 = p50; q_p99 = p99; q_p999 = p999 }

let cell ?(scheme = "EBR") ?(structure = "hash") ?(threads = 2) ?(mops = 10.0)
    ?(reclaim = q 63 127 255) () =
  {
    P.c_scheme = scheme;
    c_structure = structure;
    c_threads = threads;
    c_ops = int_of_float (mops *. 1e6);
    c_mops = mops;
    c_reclaim = reclaim;
    c_eject_batch = q 7 15 15;
    c_peak_live = 1000;
    c_peak_backlog = 200;
    c_leaked = 0;
  }

let profile ?(core = "sticky") ?(op = "inc_dec") () =
  {
    P.a_core = core;
    a_op = op;
    a_ops = 1000;
    a_gets = 0;
    a_sets = 0;
    a_exchanges = 0;
    a_cas = 0;
    a_cas_failures = 0;
    a_faa = 2000;
  }

let summary ?(cells = [ cell () ]) ?(atomics = [ profile () ]) () =
  {
    P.s_meta =
      {
        P.m_label = "test";
        m_git_sha = "deadbeef";
        m_host_domains = 4;
        m_duration = 0.25;
        m_threads = [ 1; 2 ];
        m_scale = 4096;
      };
    s_cells = cells;
    s_atomics = atomics;
  }

(* ---------------- JSON ---------------- *)

let test_round_trip () =
  let s =
    summary
      ~cells:
        [
          cell ();
          cell ~scheme:{|RC"EBR\odd|} ~structure:"stack" ~threads:1 ~mops:0.000123 ();
        ]
      ()
  in
  let j = P.to_string s in
  match P.summary_of_string j with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok s' ->
      Alcotest.(check string) "bit-identical re-encode" j (P.to_string s');
      Alcotest.(check int) "cells" 2 (List.length s'.P.s_cells);
      Alcotest.(check string) "escaped scheme survives" {|RC"EBR\odd|}
        (List.nth s'.P.s_cells 1).P.c_scheme

let test_parse_rejects_garbage () =
  List.iter
    (fun j ->
      match P.summary_of_string j with
      | Ok _ -> Alcotest.failf "accepted %S" j
      | Error _ -> ())
    [ ""; "{"; "[1,2]"; {|{"schema_version":"x"}|}; {|{"meta":{}}|}; "nullx" ]

let test_load_file_missing () =
  match P.load_file "/nonexistent/bench.json" with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error _ -> ()

(* ---------------- quantiles ---------------- *)

let test_quantiles_match_histo () =
  Obs.Report.reset_all ();
  Obs.Metrics.set_enabled true;
  let h = Obs.Histo.histo "test.perf_quantiles" in
  let rng = Repro_util.Rng.create ~seed:11 in
  for _ = 1 to 5000 do
    Obs.Histo.observe h ~pid:0 (Repro_util.Rng.int rng 100_000)
  done;
  let counts = Obs.Histo.merged h in
  let qq = P.quantiles_of_counts counts in
  let expect p =
    match Obs.Histo.percentile_of_counts counts p with
    | Some v -> v
    | None -> Alcotest.fail "histo empty"
  in
  Alcotest.(check int) "count" 5000 qq.P.q_count;
  Alcotest.(check int) "p50" (expect 50.0) qq.P.q_p50;
  Alcotest.(check int) "p99" (expect 99.0) qq.P.q_p99;
  Alcotest.(check int) "p999" (expect 99.9) qq.P.q_p999;
  Obs.Metrics.set_enabled false;
  Obs.Report.reset_all ();
  let empty = P.quantiles_of_counts (Array.make Obs.Histo.buckets 0) in
  Alcotest.(check int) "empty count" 0 empty.P.q_count

(* ---------------- validate ---------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_validate () =
  (match P.validate (summary ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid summary rejected: %s" e);
  (match P.validate (summary ~cells:[] ()) with
  | Ok () -> Alcotest.fail "empty matrix accepted"
  | Error _ -> ());
  (match P.validate (summary ~cells:[ cell (); cell () ] ()) with
  | Ok () -> Alcotest.fail "duplicate cell key accepted"
  | Error _ -> ());
  (match P.validate (summary ~atomics:[] ()) with
  | Ok () -> Alcotest.fail "missing atomic profiles accepted"
  | Error _ -> ());
  match P.validate ~require_schemes:[ "EBR"; "PTB" ] (summary ()) with
  | Ok () -> Alcotest.fail "missing required scheme accepted"
  | Error e -> Alcotest.(check bool) "names the scheme" true (contains e "PTB")

(* ---------------- regression gate ---------------- *)

let compare ?throughput_tol ?latency_tol ?allow base cand =
  P.compare_summaries ?throughput_tol ?latency_tol ?allow base cand

let test_gate_throughput_regression () =
  let base = summary () in
  let worse = summary ~cells:[ cell ~mops:8.0 () ] () in
  let regs, compared = compare base worse in
  Alcotest.(check int) "one cell compared" 1 compared;
  Alcotest.(check bool) "fails" true (P.failed regs);
  (match regs with
  | [ r ] ->
      Alcotest.(check string) "metric" "throughput" r.P.r_metric;
      Alcotest.(check string) "key" "EBR/hash/2" r.P.r_key
  | _ -> Alcotest.failf "expected 1 regression, got %d" (List.length regs));
  (* 20% drop passes a 30% gate *)
  let regs, _ = compare ~throughput_tol:30.0 base worse in
  Alcotest.(check bool) "within widened tolerance" false (P.failed regs)

let test_gate_improvement_ok () =
  let base = summary () in
  let better =
    summary ~cells:[ cell ~mops:14.0 ~reclaim:(q 31 63 127) () ] ()
  in
  let regs, compared = compare base better in
  Alcotest.(check int) "compared" 1 compared;
  Alcotest.(check (list string)) "no regressions" []
    (List.map (fun r -> r.P.r_key) regs)

let test_gate_latency_regression () =
  let base = summary () in
  let slower = summary ~cells:[ cell ~reclaim:(q 63 255 511) () ] () in
  let regs, _ = compare base slower in
  Alcotest.(check bool) "fails" true (P.failed regs);
  (match regs with
  | [ r ] -> Alcotest.(check string) "metric" "reclaim_p99" r.P.r_metric
  | _ -> Alcotest.fail "expected exactly the latency regression");
  (* p99s below the 8-tick noise floor never flag: 1 -> 4 is +300% but
     both are bucket-resolution noise. *)
  let tiny_base = summary ~cells:[ cell ~reclaim:(q 1 1 1) () ] () in
  let tiny_cand = summary ~cells:[ cell ~reclaim:(q 1 4 4) () ] () in
  let regs, _ = compare tiny_base tiny_cand in
  Alcotest.(check bool) "noise floor" false (P.failed regs)

let test_gate_allowlist () =
  let base = summary () in
  let worse = summary ~cells:[ cell ~mops:8.0 () ] () in
  let check_allowed allow =
    let regs, _ = compare ~allow base worse in
    Alcotest.(check int) "still reported" 1 (List.length regs);
    Alcotest.(check bool) "but allowed" false (P.failed regs)
  in
  check_allowed [ "EBR/hash/2" ];
  check_allowed [ "EBR" ];
  check_allowed [ "EBR/hash" ];
  let regs, _ = compare ~allow:[ "RCEBR" ] base worse in
  Alcotest.(check bool) "prefix must match a '/' boundary" true (P.failed regs)

let test_gate_intersection_only () =
  let base = summary () in
  let cand =
    summary ~cells:[ cell ~scheme:"IBR" (); cell ~scheme:"HP" ~mops:1.0 () ] ()
  in
  (* No common key: nothing compared, nothing flagged. *)
  let regs, compared = compare base cand in
  Alcotest.(check int) "no common cells" 0 compared;
  Alcotest.(check bool) "no verdict" false (P.failed regs)

(* ---------------- counting shim ---------------- *)

module C = Sched.Counting

let test_counting_shim () =
  C.reset ();
  let r = C.make 5 in
  Alcotest.(check int) "make is free" 0 (C.total (C.snapshot ()));
  ignore (C.get r);
  C.set r 6;
  ignore (C.exchange r 7);
  Alcotest.(check bool) "cas success" true (C.compare_and_set r 7 8);
  Alcotest.(check bool) "cas failure" false (C.compare_and_set r 7 9);
  ignore (C.fetch_and_add r 1);
  let c = C.snapshot () in
  Alcotest.(check int) "gets" 1 c.C.gets;
  Alcotest.(check int) "sets" 1 c.C.sets;
  Alcotest.(check int) "exchanges" 1 c.C.exchanges;
  Alcotest.(check int) "cas" 2 c.C.cas;
  Alcotest.(check int) "cas failures" 1 c.C.cas_failures;
  Alcotest.(check int) "faa" 1 c.C.faa;
  Alcotest.(check int) "total" 6 (C.total c);
  Alcotest.(check int) "value" 9 (Atomic.get r);
  C.reset ();
  Alcotest.(check int) "reset" 0 (C.total (C.snapshot ()))

let test_pinned_atomic_footprints () =
  let profiles = Workload.Perf_runner.atomic_profiles () in
  let find core op =
    match
      List.find_opt (fun a -> a.P.a_core = core && a.P.a_op = op) profiles
    with
    | Some a -> a
    | None -> Alcotest.failf "missing profile %s/%s" core op
  in
  let expect core op ~gets ~sets ~exchanges ~cas ~faa =
    let a = find core op in
    let ops = a.P.a_ops in
    Alcotest.(check int) (core ^ "/" ^ op ^ " gets") (gets * ops) a.P.a_gets;
    Alcotest.(check int) (core ^ "/" ^ op ^ " sets") (sets * ops) a.P.a_sets;
    Alcotest.(check int) (core ^ "/" ^ op ^ " xchg") (exchanges * ops) a.P.a_exchanges;
    Alcotest.(check int) (core ^ "/" ^ op ^ " cas") (cas * ops) a.P.a_cas;
    Alcotest.(check int) (core ^ "/" ^ op ^ " cas failures") 0 a.P.a_cas_failures;
    Alcotest.(check int) (core ^ "/" ^ op ^ " faa") (faa * ops) a.P.a_faa;
    Alcotest.(check (float 0.001))
      (core ^ "/" ^ op ^ " atomics/op")
      (float_of_int (gets + sets + exchanges + cas + faa))
      (P.atomics_per_op a)
  in
  Alcotest.(check int) "8 pinned scripts" 8 (List.length profiles);
  (* Refcount hot path: one FAA up, one FAA down. *)
  expect "sticky" "inc_dec" ~gets:0 ~sets:0 ~exchanges:0 ~cas:0 ~faa:2;
  expect "sticky" "load" ~gets:1 ~sets:0 ~exchanges:0 ~cas:0 ~faa:0;
  (* Uncontended death: the final FAA plus the zero-flag CAS. *)
  expect "sticky" "death" ~gets:0 ~sets:0 ~exchanges:0 ~cas:1 ~faa:1;
  (* HP read path: pre-read + settle re-read + confirm, announce +
     release. *)
  expect "slot" "protect_release" ~gets:3 ~sets:2 ~exchanges:0 ~cas:0 ~faa:0;
  (* Eject scans 1 thread x 2 slots. *)
  expect "slot" "retire_eject" ~gets:2 ~sets:0 ~exchanges:0 ~cas:0 ~faa:0;
  expect "rc_cell" "upgrade_drop" ~gets:0 ~sets:0 ~exchanges:0 ~cas:0 ~faa:2;
  expect "rc_cell" "read" ~gets:1 ~sets:0 ~exchanges:0 ~cas:0 ~faa:0;
  (* Disposal: strong death (FAA+CAS), take (exchange), weak death
     (FAA+CAS). *)
  expect "rc_cell" "dispose" ~gets:0 ~sets:0 ~exchanges:1 ~cas:2 ~faa:2

let () =
  Alcotest.run "perf"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage;
          Alcotest.test_case "missing file" `Quick test_load_file_missing;
        ] );
      ( "quantiles",
        [ Alcotest.test_case "agree with Histo" `Quick test_quantiles_match_histo ] );
      ("validate", [ Alcotest.test_case "schema sanity" `Quick test_validate ]);
      ( "gate",
        [
          Alcotest.test_case "throughput regression" `Quick test_gate_throughput_regression;
          Alcotest.test_case "improvement passes" `Quick test_gate_improvement_ok;
          Alcotest.test_case "latency regression" `Quick test_gate_latency_regression;
          Alcotest.test_case "allowlist" `Quick test_gate_allowlist;
          Alcotest.test_case "intersection only" `Quick test_gate_intersection_only;
        ] );
      ( "atomics",
        [
          Alcotest.test_case "counting shim" `Quick test_counting_shim;
          Alcotest.test_case "pinned core footprints" `Quick test_pinned_atomic_footprints;
        ] );
    ]
