(* The adaptive reclamation controller (DESIGN.md §10).

   Three layers, mirroring the design: (1) deterministic unit tests of
   the pure [step] core — each policy's firing point is pinned exactly
   (force-advance at the high-water mark, SLO shrink then
   hysteresis-delayed regrow, stall backoff and escalation after the
   grace period); (2) qcheck properties over reachable states —
   monotone in the backlog signal, emitted knob values always inside
   the config clamps; (3) end-to-end determinism — the stalled-domain
   adaptivity experiment replays bit-identically, the controller run
   stays bounded where the fixed-knob run is not; plus the uniform
   knob-validation contract across every scheme. *)

module C = Adapt.Controller
module Q = QCheck2

let to_alcotest = QCheck_alcotest.to_alcotest
let cfg = C.default_config

(* Fold a signal script through [step] from the initial state,
   collecting each tick's actions. *)
let run_script sigs =
  let st, log =
    List.fold_left
      (fun (st, log) s ->
        let st', acts = C.step cfg st s in
        (st', acts :: log))
      (C.init cfg, []) sigs
  in
  (st, List.rev log)

let quiet backlog = { C.backlog; p99 = None; stalled = false }

(* ---------------- policy 1: memory pressure ----------------------- *)

let force_advance_at_high_water () =
  (* Backlog ramp in steps of 64: Force_advance must fire on exactly
     the ticks at or above [backlog_high], never below. *)
  let backlogs = List.init 17 (fun i -> i * 64) (* 0 .. 1024 *) in
  let _, log = run_script (List.map quiet backlogs) in
  List.iter2
    (fun b acts ->
      let fired = List.mem C.Force_advance acts in
      Alcotest.(check bool)
        (Printf.sprintf "force_advance at backlog=%d" b)
        (b >= cfg.C.backlog_high) fired)
    backlogs log

let sync_scan_engage_disengage () =
  (* Engages at [sync_scan_at], holds through the intermediate band,
     and disengages only once the backlog is calm again. *)
  let script =
    [ quiet cfg.C.sync_scan_at; quiet 300; quiet 300; quiet cfg.C.backlog_low ]
  in
  let _, log = run_script script in
  match log with
  | [ a1; a2; a3; a4 ] ->
      Alcotest.(check bool) "engages at sync_scan_at" true
        (List.mem (C.Set_sync_scan true) a1);
      Alcotest.(check bool) "holds above backlog_low" false
        (List.exists (function C.Set_sync_scan _ -> true | _ -> false) (a2 @ a3));
      Alcotest.(check bool) "disengages once calm" true
        (List.mem (C.Set_sync_scan false) a4)
  | _ -> Alcotest.fail "script length mismatch"

(* ---------------- policy 3: SLO guard ----------------------------- *)

let slo_shrink_then_hysteresis_regrow () =
  (* Latency over target halves the cap immediately; after latency
     recovers, the cap regrows only once [hysteresis] quiet ticks have
     passed — and doubles per tick after that. *)
  let over = { C.backlog = 64; p99 = Some (cfg.C.p99_target + 1); stalled = false } in
  let ok = { C.backlog = 64; p99 = Some 1; stalled = false } in
  let script = over :: List.init (cfg.C.hysteresis + 2) (fun _ -> ok) in
  let _, log = run_script script in
  (match log with
  | shrink :: rest ->
      Alcotest.(check bool) "tick 1 halves the cap" true
        (List.mem (C.Set_batch_cap (cfg.C.max_batch / 2)) shrink);
      let quiet_ticks = List.filteri (fun i _ -> i < cfg.C.hysteresis) rest in
      List.iter
        (fun acts ->
          Alcotest.(check bool) "cooldown ticks leave the cap alone" false
            (List.exists (function C.Set_batch_cap _ -> true | _ -> false) acts))
        quiet_ticks;
      let after = List.nth rest cfg.C.hysteresis in
      Alcotest.(check bool) "regrows after the cooldown" true
        (List.mem (C.Set_batch_cap cfg.C.max_batch) after)
  | [] -> Alcotest.fail "empty log");
  (* A second shrink re-arms the cooldown: grow is not sticky. *)
  let _, log2 = run_script [ over; ok; over; ok ] in
  let shrinks =
    List.concat log2
    |> List.filter (function C.Set_batch_cap v -> v < cfg.C.max_batch | _ -> false)
  in
  Alcotest.(check int) "both over-target ticks shrink" 2 (List.length shrinks)

(* ---------------- policy 2: stall response ------------------------ *)

let stall_backoff_and_escalation () =
  let stalled = { C.backlog = 200; p99 = None; stalled = true } in
  let script = List.init 5 (fun _ -> stalled) @ [ quiet 200 ] in
  let _, log = run_script script in
  let cleanup acts =
    List.filter_map (function C.Set_cleanup_freq v -> Some v | _ -> None) acts
  in
  (match log with
  | [ t1; t2; t3; t4; t5; t6 ] ->
      Alcotest.(check (list int)) "tick 1 doubles" [ 2 * cfg.C.base_cleanup ] (cleanup t1);
      Alcotest.(check (list int)) "tick 2 doubles" [ 4 * cfg.C.base_cleanup ] (cleanup t2);
      Alcotest.(check (list int)) "tick 3 doubles" [ 8 * cfg.C.base_cleanup ] (cleanup t3);
      Alcotest.(check bool) "escalates after grace ticks" true
        (List.mem C.Escalate_abandon t3);
      Alcotest.(check bool) "escalates at most once per episode" false
        (List.mem C.Escalate_abandon t4 || List.mem C.Escalate_abandon t5);
      Alcotest.(check (list int)) "backoff clamps at max_cleanup"
        [ cfg.C.max_cleanup ] (cleanup t4);
      Alcotest.(check (list int)) "no emit when clamped value repeats" [] (cleanup t5);
      Alcotest.(check (list int)) "stall clear reverts to base"
        [ cfg.C.base_cleanup ] (cleanup t6)
  | _ -> Alcotest.fail "script length mismatch");
  (* A new stall episode after recovery escalates again. *)
  let script2 =
    List.init 3 (fun _ -> stalled) @ [ quiet 200 ] @ List.init 3 (fun _ -> stalled)
  in
  let _, log2 = run_script script2 in
  let escalations =
    List.concat log2 |> List.filter (fun a -> a = C.Escalate_abandon) |> List.length
  in
  Alcotest.(check int) "each stall episode escalates once" 2 escalations

(* ---------------- qcheck properties ------------------------------- *)

let signal_gen =
  Q.Gen.(
    let* backlog = int_range 0 3000 in
    let* p99 = opt (int_range 0 256) in
    let* stalled = bool in
    return { C.backlog; p99; stalled })

(* Reachable states only: fold a random signal prefix from [init].
   Properties of [step] need only hold on states [step] can produce. *)
let state_gen =
  Q.Gen.(
    let* sigs = list_size (int_range 0 30) signal_gen in
    return (List.fold_left (fun st s -> fst (C.step cfg st s)) (C.init cfg) sigs))

let prop_monotone_in_backlog =
  Q.Test.make ~name:"controller: step is monotone in the backlog" ~count:1000
    Q.Gen.(triple state_gen signal_gen (int_range 0 3000))
    (fun (st, s, d) ->
      let st1, a1 = C.step cfg st s in
      let st2, a2 = C.step cfg st { s with C.backlog = s.C.backlog + d } in
      (* More backlog: never a larger cap, never un-fires force-advance,
         never disengages sync-scan. *)
      C.state_batch_cap st2 <= C.state_batch_cap st1
      && ((not (List.mem C.Force_advance a1)) || List.mem C.Force_advance a2)
      && ((not (C.state_sync_scan st1)) || C.state_sync_scan st2))

let prop_actions_within_bounds =
  Q.Test.make ~name:"controller: emitted knob values stay inside the clamps"
    ~count:1000
    Q.Gen.(pair state_gen signal_gen)
    (fun (st, s) ->
      let st', acts = C.step cfg st s in
      List.for_all
        (function
          | C.Set_batch_cap v -> cfg.C.min_batch <= v && v <= cfg.C.max_batch
          | C.Set_cleanup_freq v -> cfg.C.base_cleanup <= v && v <= cfg.C.max_cleanup
          | C.Force_advance | C.Set_sync_scan _ | C.Escalate_abandon -> true)
        acts
      && cfg.C.min_batch <= C.state_batch_cap st'
      && C.state_batch_cap st' <= cfg.C.max_batch
      && cfg.C.base_cleanup <= C.state_cleanup_freq st'
      && C.state_cleanup_freq st' <= cfg.C.max_cleanup)

let prop_step_deterministic =
  Q.Test.make ~name:"controller: step is a pure function of (state, signals)"
    ~count:300
    Q.Gen.(pair state_gen signal_gen)
    (fun (st, s) ->
      let st1, a1 = C.step cfg st s in
      let st2, a2 = C.step cfg st s in
      st1 = st2 && a1 = a2)

(* ---------------- end-to-end: the adaptivity experiment ----------- *)

let adaptivity_replays_bit_identically () =
  let run () =
    Workload.Experiments.run_adaptivity_one ~iters:2000 ~adapt:true
      (module Smr.Ebr : Smr.Smr_intf.S)
  in
  let a = run () in
  let b = run () in
  Alcotest.(check (list string))
    "decision logs identical across replays" a.Workload.Experiments.ad_decisions
    b.Workload.Experiments.ad_decisions;
  Alcotest.(check bool) "full results identical across replays" true (a = b);
  (* Pin the episode shape: escalation fires at the first controller
     tick past the grace period (check_every * (watchdog strikes +
     grace)) and the log opens with the first backoff decision. *)
  Alcotest.(check (option int))
    "escalates at iteration 192" (Some 192) a.Workload.Experiments.ad_escalated_at;
  (match a.Workload.Experiments.ad_decisions with
  | first :: _ ->
      Alcotest.(check string)
        "first decision is the first backoff"
        "t=4 backlog=128 p99=- stalled=true | cleanup_freq=128" first
  | [] -> Alcotest.fail "controller made no decisions");
  Alcotest.(check int) "leak-free" 0 a.Workload.Experiments.ad_leaked

let adaptivity_bounds_garbage () =
  let on =
    Workload.Experiments.run_adaptivity_one ~iters:2000 ~adapt:true
      (module Smr.Ebr : Smr.Smr_intf.S)
  in
  let off =
    Workload.Experiments.run_adaptivity_one ~iters:2000 ~adapt:false
      (module Smr.Ebr : Smr.Smr_intf.S)
  in
  Alcotest.(check bool)
    "controller keeps the peak backlog bounded" true
    (on.Workload.Experiments.ad_peak_backlog <= 512);
  Alcotest.(check bool)
    "fixed knobs grow without bound behind the pinned frontier" true
    (off.Workload.Experiments.ad_end_backlog >= 2000);
  Alcotest.(check int) "fixed-knob run still leak-free after teardown" 0
    off.Workload.Experiments.ad_leaked

(* ---------------- knob validation across every scheme ------------- *)

let all_schemes : (module Smr.Smr_intf.S) list =
  [
    (module Smr.Ebr);
    (module Smr.Ibr);
    (module Smr.Hp);
    (module Smr.Hazard_eras);
    (module Smr.Hyaline);
    (module Smr.Ptb);
    (module Smr.Leaky);
  ]

let knob_validation_uniform () =
  List.iter
    (fun (module S : Smr.Smr_intf.S) ->
      let rejects knob f =
        match f () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.failf "%s.create accepted a non-positive %s" S.name knob
      in
      rejects "epoch_freq" (fun () -> ignore (S.create ~epoch_freq:0 ~max_threads:1 ()));
      rejects "cleanup_freq" (fun () ->
          ignore (S.create ~cleanup_freq:(-1) ~max_threads:1 ()));
      rejects "slots_per_thread" (fun () ->
          ignore (S.create ~slots_per_thread:0 ~max_threads:1 ())))
    all_schemes

let knob_ignored_counter () =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled was) @@ fun () ->
  (* Leaky ignores all three tunables; HP ignores epoch_freq. *)
  let before = Obs.Metrics.value "smr.none.knob_ignored" in
  ignore
    (Smr.Leaky.create ~epoch_freq:5 ~cleanup_freq:5 ~slots_per_thread:5 ~max_threads:1 ());
  Alcotest.(check int) "Leaky records all three ignored knobs" (before + 3)
    (Obs.Metrics.value "smr.none.knob_ignored");
  let before_hp = Obs.Metrics.value "smr.hp.knob_ignored" in
  ignore (Smr.Hp.create ~epoch_freq:7 ~max_threads:1 ());
  Alcotest.(check int) "HP records its ignored epoch_freq" (before_hp + 1)
    (Obs.Metrics.value "smr.hp.knob_ignored");
  (* No false positives: a knob the scheme reads is not "ignored". *)
  let before_ebr = Obs.Metrics.value "smr.ebr.knob_ignored" in
  ignore (Smr.Ebr.create ~epoch_freq:5 ~cleanup_freq:5 ~max_threads:1 ());
  Alcotest.(check int) "EBR records nothing for knobs it reads" before_ebr
    (Obs.Metrics.value "smr.ebr.knob_ignored")

let knob_gauges_track_values () =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled was) @@ fun () ->
  let g name = Obs.Metrics.gauge_value (Obs.Metrics.gauge name) in
  let k = Smr.Knobs.create ~epoch_freq:17 ~scheme:"GaugeProbe" () in
  Alcotest.(check int) "explicit value mirrored" 17 (g "smr.gaugeprobe.knob.epoch_freq");
  Alcotest.(check int) "default value mirrored" Smr.Knobs.default_cleanup_freq
    (g "smr.gaugeprobe.knob.cleanup_freq");
  Smr.Knobs.set_batch_cap k 33;
  Alcotest.(check int) "setter updates the gauge" 33 (g "smr.gaugeprobe.knob.batch_cap");
  Alcotest.(check int) "setter updates the accessor" 33 (Smr.Knobs.batch_cap k)

(* ------------------------------------------------------------------ *)
(* Reaction latency to a hotspot phase shift (ROADMAP item 5): after a
   hot-set migration, the abandoned phase expires and the sweep's
   retirement burst must reach the controller within a bounded number
   of ticks. The pipeline is expiry (ttl=32) + sweep cadence (8) +
   one controller tick, so 64 is a comfortable but meaningful bound —
   a controller that only notices pressure an epoch later blows it. *)

let reaction_latency_bounded () =
  let r = Workload.Kv_runner.measure_adapt_reaction () in
  Alcotest.(check bool) "at least two phase shifts occurred" true (r.a_shifts >= 2);
  Alcotest.(check bool)
    (Printf.sprintf "every shift measured (got %d of %d)"
       (List.length r.a_reactions) r.a_shifts)
    true
    (List.length r.a_reactions >= 2);
  List.iter
    (fun dt ->
      Alcotest.(check bool)
        (Printf.sprintf "reaction %d ticks <= 64" dt)
        true (dt <= 64))
    r.a_reactions;
  (* The burst really happened: the post-shift peak clears the trip
     threshold (3/8 of the 256-key hot set) while the steady-state
     trickle stays below it — the reactions measure a real signal. *)
  Alcotest.(check bool) "retirement burst reached backlog_high" true
    (r.a_peak_backlog >= 96);
  Alcotest.(check bool)
    (Printf.sprintf "steady trickle %d below backlog_high" r.a_steady_peak)
    true
    (r.a_steady_peak < 96)

let reaction_gauge_recorded () =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled was) @@ fun () ->
  let r = Workload.Kv_runner.measure_adapt_reaction () in
  let g = Obs.Metrics.gauge_value (Obs.Metrics.gauge "adapt.reaction_ticks") in
  Alcotest.(check bool) "gauge holds the last measured reaction" true
    (match r.a_reactions with last :: _ -> g = last | [] -> false)

let reaction_replays_bit_identically () =
  let a = Workload.Kv_runner.measure_adapt_reaction () in
  let b = Workload.Kv_runner.measure_adapt_reaction () in
  Alcotest.(check (list int)) "same reaction sequence" a.a_reactions b.a_reactions;
  Alcotest.(check int) "same peak" a.a_peak_backlog b.a_peak_backlog

let () =
  Alcotest.run "adapt"
    [
      ( "step",
        [
          Alcotest.test_case "force-advance at high-water mark" `Quick
            force_advance_at_high_water;
          Alcotest.test_case "sync-scan engage/disengage hysteresis" `Quick
            sync_scan_engage_disengage;
          Alcotest.test_case "SLO shrink, hysteresis-delayed regrow" `Quick
            slo_shrink_then_hysteresis_regrow;
          Alcotest.test_case "stall backoff and one-shot escalation" `Quick
            stall_backoff_and_escalation;
        ] );
      ( "properties",
        [
          to_alcotest prop_monotone_in_backlog;
          to_alcotest prop_actions_within_bounds;
          to_alcotest prop_step_deterministic;
        ] );
      ( "adaptivity",
        [
          Alcotest.test_case "replays bit-identically" `Quick
            adaptivity_replays_bit_identically;
          Alcotest.test_case "bounded vs unbounded garbage" `Quick
            adaptivity_bounds_garbage;
        ] );
      ( "reaction",
        [
          Alcotest.test_case "phase-shift reaction latency bounded" `Quick
            reaction_latency_bounded;
          Alcotest.test_case "adapt.reaction_ticks gauge recorded" `Quick
            reaction_gauge_recorded;
          Alcotest.test_case "reaction probe replays bit-identically" `Quick
            reaction_replays_bit_identically;
        ] );
      ( "knobs",
        [
          Alcotest.test_case "create validation uniform across schemes" `Quick
            knob_validation_uniform;
          Alcotest.test_case "ignored-knob misuse counter" `Quick knob_ignored_counter;
          Alcotest.test_case "gauges mirror effective values" `Quick
            knob_gauges_track_values;
        ] );
    ]
