(* Command-line driver: run any single experiment from the paper's
   evaluation with full parameter control.

     cdrc-bench fig11 --threads 1,2,4 --duration 0.5
     cdrc-bench fig13c --schemes EBR,RCEBR --scale 10
     cdrc-bench fig12 --threads 4
     cdrc-bench abl-sticky
     cdrc-bench custom --structure tree --update 20 --rq 5 ...

   `bench/main.exe` runs the whole suite; this tool is for focused
   measurements. *)

open Cmdliner

let threads_arg =
  let doc = "Comma-separated thread counts to sweep." in
  Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "t"; "threads" ] ~docv:"N,N,..." ~doc)

let duration_arg =
  let doc = "Measured seconds per data point." in
  Arg.(value & opt float 0.5 & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc)

let schemes_arg =
  let doc =
    "Comma-separated scheme names (EBR, IBR, Hyaline, HP, HE, RCEBR, RCIBR, RCHyaline, \
     RCHP, RCHE; queues also accept Original, locked-weak, RC*-weak). Default: all."
  in
  Arg.(value & opt (list string) [] & info [ "s"; "schemes" ] ~docv:"NAME,..." ~doc)

let scale_arg =
  let doc = "Divide structure sizes by this factor (smoke runs)." in
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"K" ~doc)

let adapt_arg =
  let doc =
    "Run the adaptive reclamation controller alongside the sampler (on|off). The \
     controller's decision log is printed with each result."
  in
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) false
    & info [ "adapt" ] ~docv:"on|off" ~doc)

let run_set_exp_cmd (e : Workload.Experiments.set_exp) =
  let doc = e.title in
  let run threads duration schemes scale adapt =
    ignore (Workload.Experiments.run_set_exp ~threads ~duration ~schemes ~scale ~adapt e)
  in
  Cmd.v
    (Cmd.info e.id ~doc)
    Term.(const run $ threads_arg $ duration_arg $ schemes_arg $ scale_arg $ adapt_arg)

let fig12_cmd =
  let run threads duration schemes =
    ignore (Workload.Experiments.run_fig12 ~threads ~duration ~schemes ())
  in
  Cmd.v
    (Cmd.info "fig12" ~doc:"Fig 12: weak-pointer doubly-linked queue")
    Term.(const run $ threads_arg $ duration_arg $ schemes_arg)

let abl_sticky_cmd =
  let run threads duration = Workload.Experiments.run_abl_sticky ~threads ~duration () in
  Cmd.v
    (Cmd.info "abl-sticky" ~doc:"Ablation: wait-free sticky counter vs CAS loop")
    Term.(const run $ threads_arg $ duration_arg)

let abl_epochfreq_cmd =
  let run threads duration =
    let threads = match threads with t :: _ -> t | [] -> 4 in
    Workload.Experiments.run_abl_epochfreq ~threads ~duration ()
  in
  Cmd.v
    (Cmd.info "abl-epochfreq" ~doc:"Ablation: epoch advance frequency sweep")
    Term.(const run $ threads_arg $ duration_arg)

let abl_hpslots_cmd =
  let run threads duration =
    let threads = match threads with t :: _ -> t | [] -> 2 in
    Workload.Experiments.run_abl_hpslots ~threads ~duration ()
  in
  Cmd.v
    (Cmd.info "abl-hpslots" ~doc:"Ablation: RCHP announcement-slot budget")
    Term.(const run $ threads_arg $ duration_arg)

let ext_stack_cmd =
  let run threads duration = Workload.Experiments.run_ext_stack ~threads ~duration () in
  Cmd.v
    (Cmd.info "ext-stack" ~doc:"Extension: Treiber stack across every scheme")
    Term.(const run $ threads_arg $ duration_arg)

let robustness_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) (Some "results/robustness.txt")
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"CSV output path (empty string disables).")
  in
  let run duration schemes out =
    let out = match out with Some "" -> None | o -> o in
    (match out with
    | Some path -> (try Unix.mkdir (Filename.dirname path) 0o755 with Unix.Unix_error _ -> ())
    | None -> ());
    ignore (Workload.Experiments.run_robustness ~duration ~schemes ?out ())
  in
  Cmd.v
    (Cmd.info "robustness"
       ~doc:
         "Fault injection: garbage growth under one stalled thread, and recovery via \
          abandon")
    Term.(const run $ duration_arg $ schemes_arg $ out_arg)

let adaptivity_cmd =
  let iters_arg =
    Arg.(
      value & opt int 2000
      & info [ "iters" ] ~docv:"N" ~doc:"Churn iterations on the healthy domain.")
  in
  let bound_arg =
    Arg.(
      value & opt int 512
      & info [ "bound" ] ~docv:"B"
          ~doc:
            "Backlog bound asserted for the controller-on run (and exceeded by the \
             fixed-knob run).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) (Some "results/adaptivity.txt")
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Results + decision-log output path (empty string disables).")
  in
  let run iters bound out =
    let out = match out with Some "" -> None | o -> o in
    (match out with
    | Some path -> (try Unix.mkdir (Filename.dirname path) 0o755 with Unix.Unix_error _ -> ())
    | None -> ());
    let ok, _ = Workload.Experiments.run_adaptivity ~iters ~bound ?out () in
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "adaptivity"
       ~doc:
         "Adaptive controller vs fixed knobs under a stalled domain: deterministic \
          replay asserting the controller keeps EBR's garbage bounded where fixed \
          knobs do not (exit 1 on violation)")
    Term.(const run $ iters_arg $ bound_arg $ out_arg)

let perf_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the JSON summary to FILE (default: stdout).")
  in
  let label_arg =
    Arg.(
      value & opt string "perf"
      & info [ "label" ] ~docv:"LABEL" ~doc:"Label recorded in the summary's meta block.")
  in
  let keys_arg =
    Arg.(
      value
      & opt int Workload.Perf_runner.default_scale
      & info [ "keys" ] ~docv:"N" ~doc:"Structure size (elements / key range) per cell.")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Validate the emitted summary (schema sanity + coverage of all 7 reclamation \
             schemes); exit 1 on failure.")
  in
  let run threads duration keys label out validate =
    let log m = Printf.eprintf "perf: %s\n%!" m in
    let s = Workload.Perf_runner.run ~label ~threads ~duration ~scale:keys ~log () in
    let json = Obs.Perf.to_string s in
    (match out with
    | None -> print_endline json
    | Some f ->
        let oc = open_out f in
        output_string oc json;
        output_char oc '\n';
        close_out oc;
        Printf.eprintf "perf: wrote %s (%d cells, %d atomic profiles)\n%!" f
          (List.length s.Obs.Perf.s_cells)
          (List.length s.Obs.Perf.s_atomics));
    if validate then
      match
        Obs.Perf.validate ~require_schemes:Workload.Perf_runner.required_schemes s
      with
      | Ok () -> Printf.eprintf "perf: summary valid\n%!"
      | Error e ->
          Printf.eprintf "perf: summary INVALID: %s\n%!" e;
          exit 1
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Run the pinned perf-trajectory matrix (every scheme x stack/queue/hash x \
          thread count) with telemetry on and emit a machine-readable BENCH_*.json \
          summary; gate it against a baseline with tools/bench_check")
    Term.(
      const run $ threads_arg $ duration_arg $ keys_arg $ label_arg $ out_arg
      $ validate_arg)

let stats_cmd =
  let exp_arg =
    let doc = "Experiment to instrument: fig11, fig13a-f, fig12, robustness or chaos." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let perf_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "perf" ] ~docv:"FILE"
          ~doc:
            "Instead of running an experiment, render the perf summary in FILE (a \
             BENCH_*.json from the perf subcommand) as a per-scheme breakdown table \
             including atomics-per-op.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one JSON object (run output suppressed) instead of the metric tree.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the exported trace JSONL and assert required metric keys are \
             nonzero; exit 1 on failure.")
  in
  let run threads duration schemes scale json check perf exp =
    match (perf, exp) with
    | Some file, _ -> (
        match Obs.Perf.load_file file with
        | Error e ->
            Format.eprintf "stats: %s@." e;
            exit 2
        | Ok s -> Format.printf "%a@." Obs.Perf.pp s)
    | None, None ->
        Format.eprintf "stats: an EXPERIMENT is required (or --perf FILE)@.";
        exit 2
    | None, Some exp ->
        let code =
          Workload.Experiments.run_stats ~threads ~duration ~schemes ~scale ~json ~check
            exp
        in
        if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run an experiment with telemetry enabled: metric tree, reclamation-latency \
          percentiles, and an event trace in results/trace-<EXPERIMENT>.jsonl. With \
          --perf FILE, render a saved perf summary instead.")
    Term.(
      const run $ threads_arg $ duration_arg $ schemes_arg $ scale_arg $ json_arg
      $ check_arg $ perf_arg $ exp_arg)

let obs_overhead_cmd =
  let repeats_arg =
    Arg.(value & opt int 3 & info [ "repeats" ] ~docv:"N" ~doc:"Repeats per mode (median reported).")
  in
  let run threads duration repeats =
    let threads = match threads with t :: _ -> t | [] -> 2 in
    ignore (Workload.Experiments.run_obs_overhead ~threads ~duration ~repeats ())
  in
  Cmd.v
    (Cmd.info "obs-overhead"
       ~doc:"Measure the telemetry layer's cost (disabled vs enabled) on the Treiber kernel")
    Term.(const run $ threads_arg $ duration_arg $ repeats_arg)

let custom_cmd =
  let structure_arg =
    let structure_conv =
      Arg.enum
        [
          ("list", Workload.Instances.List_s);
          ("hash", Workload.Instances.Hash_s);
          ("tree", Workload.Instances.Tree_s);
        ]
    in
    Arg.(value & opt structure_conv Workload.Instances.Tree_s & info [ "structure" ] ~doc:"list|hash|tree")
  in
  let update_arg = Arg.(value & opt int 10 & info [ "update" ] ~doc:"Update percentage.") in
  let rq_arg = Arg.(value & opt int 0 & info [ "rq" ] ~doc:"Range-query percentage.") in
  let rq_size_arg = Arg.(value & opt int 64 & info [ "rq-size" ] ~doc:"Range-query width.") in
  let size_arg = Arg.(value & opt int 100_000 & info [ "size" ] ~doc:"Initial keys.") in
  let range_arg =
    Arg.(value & opt (some int) None & info [ "range" ] ~doc:"Key range (default 2x size).")
  in
  let run threads duration schemes adapt structure update rq rq_size size range =
    let e =
      {
        Workload.Experiments.id = "custom";
        title =
          Printf.sprintf "custom: %s, %d%% updates / %d%% RQ(%d), %d keys"
            (Workload.Instances.structure_name structure)
            update rq rq_size size;
        expected = "(custom workload)";
        structure;
        mix =
          (fun s ->
            {
              s with
              Workload.Driver.update_pct = update;
              rq_pct = rq;
              rq_size;
              init_size = size;
              key_range = (match range with Some r -> r | None -> 2 * size);
            });
      }
    in
    ignore (Workload.Experiments.run_set_exp ~threads ~duration ~schemes ~adapt e)
  in
  Cmd.v
    (Cmd.info "custom" ~doc:"Custom workload on any structure")
    Term.(
      const run $ threads_arg $ duration_arg $ schemes_arg $ adapt_arg $ structure_arg
      $ update_arg $ rq_arg $ rq_size_arg $ size_arg $ range_arg)

let kv_cmd =
  let shards_arg =
    Arg.(
      value & opt (list int) [ 4 ]
      & info [ "shards" ] ~docv:"N,N,..."
          ~doc:"Comma-separated shard counts to sweep (rounded up to powers of two).")
  in
  let mix_arg =
    Arg.(
      value & opt (list string) [ "read95" ]
      & info [ "mix" ] ~docv:"M,M,..."
          ~doc:"Operation mixes to sweep: read95 (95/5), write50 (50/50), scan (scan-with-churn).")
  in
  let keys_arg =
    Arg.(
      value & opt int Workload.Kv_runner.default_spec.Workload.Kv_runner.keys
      & info [ "keys" ] ~docv:"N" ~doc:"Key range.")
  in
  let keygen_arg =
    Arg.(
      value & opt string "zipf:0.99"
      & info [ "keygen" ] ~docv:"SPEC"
          ~doc:
            "Key distribution: uniform, zipf[:THETA], or hotspot[:KEYS:PCT:SHIFT] \
             (hot-set size, hot percentage, draws between hot-set migrations).")
  in
  let ttl_arg =
    Arg.(
      value & opt int Workload.Kv_runner.default_spec.Workload.Kv_runner.ttl_ticks
      & info [ "ttl" ] ~docv:"TICKS" ~doc:"TTL length in logical clock ticks.")
  in
  let ttl_pct_arg =
    Arg.(
      value & opt int Workload.Kv_runner.default_spec.Workload.Kv_runner.ttl_pct
      & info [ "ttl-pct" ] ~docv:"PCT" ~doc:"Percentage of puts that carry a TTL.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.") in
  let deadline_arg =
    Arg.(
      value & opt float 0.
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline in milliseconds; attempts past it count as timed out \
             and may be retried. 0 disables deadline accounting.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Bounded retries (with seeded-jitter backoff) after a deadline miss.")
  in
  let breaker_arg =
    Arg.(
      value & flag
      & info [ "breaker" ]
          ~doc:
            "Enable per-shard circuit breakers: the sampler feeds each shard's backlog \
             and request p99 into a closed/open/half-open machine and workers shed \
             against its published state (open sheds all, read-only sheds writes).")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "After each run, quiesce and assert the accounting identities (node and box \
             retirement) plus leak-freedom; exit 1 on violation.")
  in
  let fault_arg =
    Arg.(
      value
      & opt (some (enum [ ("stalled-shard", `Stalled_shard) ])) None
      & info [ "fault" ] ~docv:"SCENARIO"
          ~doc:
            "Run a fault scenario instead of the sweep. stalled-shard: a fault plan \
             stalls the victim inside a shard-0 critical section; asserts the per-shard \
             controller keeps the backlog bounded where fixed knobs do not (exit 1 \
             otherwise).")
  in
  let iters_arg =
    Arg.(
      value & opt int 2000
      & info [ "iters" ] ~docv:"N" ~doc:"Churn iterations (fault scenario).")
  in
  let bound_arg =
    Arg.(
      value & opt int 512
      & info [ "bound" ] ~docv:"B" ~doc:"Backlog bound asserted for the controller-on run.")
  in
  let run threads duration schemes adapt shards mixes keys keygen ttl ttl_pct seed
      deadline_ms retries breaker validate fault iters bound =
    match fault with
    | Some `Stalled_shard ->
        let ok, _ = Workload.Kv_runner.run_stalled_shard ~iters ~bound () in
        if not ok then exit 1
    | None ->
        let keygen =
          match Workload.Keygen.spec_of_string keygen with
          | Ok g -> g
          | Error e ->
              Format.eprintf "kv: %s@." e;
              exit 2
        in
        let mixes =
          List.map
            (fun m ->
              match Workload.Kv_runner.mix_of_string m with
              | Ok m -> m
              | Error e ->
                  Format.eprintf "kv: %s@." e;
                  exit 2)
            mixes
        in
        let selected =
          match schemes with
          | [] -> Workload.Instances.kv_services
          | names ->
              List.map
                (fun n ->
                  match Workload.Instances.find_kv n with
                  | Some inst -> inst
                  | None ->
                      Format.eprintf "kv: unknown scheme %S@." n;
                      exit 2)
                names
        in
        let spec =
          {
            Workload.Kv_runner.default_spec with
            Workload.Kv_runner.duration;
            keys;
            keygen;
            ttl_ticks = ttl;
            ttl_pct;
            adapt;
            deadline_ms;
            retries;
            breaker;
            seed;
          }
        in
        let ok, _ =
          Workload.Kv_runner.sweep ~spec ~schemes:selected ~shard_counts:shards
            ~thread_counts:threads ~mixes ~validate ()
        in
        if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "kv"
       ~doc:
         "Sharded KV serving workload over the RC hash table: scheme x shards x threads \
          x mix sweep with Zipfian/hotspot key skew, TTL-expiry churn, per-op latency \
          percentiles and per-shard adaptive controllers; --fault stalled-shard runs the \
          shard-stall + abandon-recovery scenario")
    Term.(
      const run $ threads_arg $ duration_arg $ schemes_arg $ adapt_arg $ shards_arg
      $ mix_arg $ keys_arg $ keygen_arg $ ttl_arg $ ttl_pct_arg $ seed_arg $ deadline_arg
      $ retries_arg $ breaker_arg $ validate_arg $ fault_arg $ iters_arg $ bound_arg)

let chaos_cmd =
  let campaign_arg =
    Arg.(
      value & opt string "mixed"
      & info [ "campaign" ] ~docv:"KIND"
          ~doc:
            "Campaign kind: stall-storm | rolling-crash | crash-eject | gray-slow | \
             mixed (stall + rolling crash + gray + eject-crash across victims).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Campaign seed: victim selection, fire points and all request randomness \
             derive from it, so a failed campaign replays bit-identically.")
  in
  let steps_arg =
    Arg.(value & opt int 4000 & info [ "steps" ] ~docv:"N" ~doc:"Requests to issue.")
  in
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N" ~doc:"Shard count (power of two).")
  in
  let victims_arg =
    Arg.(
      value & opt (some int) None
      & info [ "victims" ] ~docv:"N" ~doc:"Faulted shards (default: all).")
  in
  let breaker_arg =
    Arg.(
      value & opt (enum [ ("on", true); ("off", false) ]) true
      & info [ "breaker" ] ~docv:"on|off"
          ~doc:
            "Per-shard circuit breakers + recovery drills. With off, no recovery runs \
             — the recovery-SLO oracle then fails on campaigns that pin a shard (the \
             CI inverted gate).")
  in
  let write_pct_arg =
    Arg.(
      value & opt int 40
      & info [ "write-pct" ] ~docv:"PCT" ~doc:"Percentage of write requests.")
  in
  let bound_arg =
    Arg.(
      value & opt int 256
      & info [ "bound" ] ~docv:"N"
          ~doc:"Backlog bound: breaker trip point and end-of-campaign recovery gate.")
  in
  let slo_arg =
    Arg.(
      value & opt int 200
      & info [ "recovery-slo" ] ~docv:"STEPS"
          ~doc:"Max steps from a breaker trip to bounded backlog.")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Check the KV accounting identities at quiescence (with slack for requests \
             aborted mid-flight by a crash).")
  in
  let run campaign seed steps shards victims breaker write_pct bound slo validate schemes
      =
    match Fault.Chaos.kind_of_string campaign with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok kind ->
        let spec =
          {
            Workload.Chaos_runner.default_spec with
            ch_seed = seed;
            ch_kind = kind;
            ch_shards = shards;
            ch_victims = (match victims with Some v -> v | None -> shards);
            ch_steps = steps;
            ch_write_pct = write_pct;
            ch_breaker = breaker;
            ch_backlog_bound = bound;
            ch_recovery_slo = slo;
            ch_validate = validate;
          }
        in
        let schemes =
          match schemes with
          | [] -> Workload.Chaos_runner.base_schemes
          | names -> (
              match Workload.Chaos_runner.find_schemes names with
              | [] ->
                  prerr_endline "no matching schemes";
                  exit 2
              | l -> l)
        in
        let ok, _ = Workload.Chaos_runner.run_all ~spec ~schemes () in
        if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Deterministic chaos campaign against the sharded KV service: seeded \
          multi-shard fault schedules (stall storms, rolling crashes, crash-during-\
          eject, gray-failure slow shards) driven through deadlines, retries and \
          per-shard circuit breakers with abandon-based recovery drills; exits 1 if \
          any safety or SLO oracle fails")
    Term.(
      const run $ campaign_arg $ seed_arg $ steps_arg $ shards_arg $ victims_arg
      $ breaker_arg $ write_pct_arg $ bound_arg $ slo_arg $ validate_arg $ schemes_arg)

let explore_cmd =
  let target_arg =
    let doc =
      "Scenario to explore (use --list to enumerate). Targets marked MUTANT carry an \
       injected bug: the run succeeds when a counterexample is found."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)
  in
  let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List available targets and exit.") in
  let mode_arg =
    let mode_conv =
      Arg.enum [ ("dfs", Explore.Dfs); ("pct", Explore.Pct); ("random", Explore.Random) ]
    in
    Arg.(
      value & opt mode_conv Explore.Dfs
      & info [ "mode" ] ~docv:"dfs|pct|random"
          ~doc:
            "Exploration strategy: bounded-exhaustive DFS, PCT-style priority \
             randomization, or seeded random scheduling.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed (pct/random modes).")
  in
  let iters_arg =
    Arg.(
      value & opt int 1_000
      & info [ "iters" ] ~docv:"N" ~doc:"Schedules to try (pct/random modes).")
  in
  let preempt_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "preemptions" ] ~docv:"N"
          ~doc:"Bound forced context switches per schedule (dfs mode; default unbounded).")
  in
  let depth_arg =
    Arg.(
      value & opt int 3
      & info [ "depth" ] ~docv:"D" ~doc:"Priority-change points per schedule (pct mode).")
  in
  let max_steps_arg =
    Arg.(
      value & opt int 10_000
      & info [ "max-steps" ] ~docv:"N" ~doc:"Abort any single schedule after N steps.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"TRACE"
          ~doc:
            "Replay one schedule instead of exploring; TRACE is the printed fiber-index \
             list, e.g. '[0;1;1;0]' or '0,1,1,0'.")
  in
  let sanitize_arg =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Use the sanitized target registry (DESIGN.md §14): every explored schedule \
             is checked by the happens-before race & pointer-lifetime monitor; \
             violations name the two racing operations and print a replayable \
             schedule.")
  in
  let run list sanitize target mode seed iters preemptions depth max_steps replay =
    let registry = if sanitize then Explore.san_targets else Explore.targets in
    let find = if sanitize then Explore.find_san else Explore.find in
    if list then begin
      List.iter
        (fun t ->
          Format.printf "%-26s %s@." t.Explore.t_name t.Explore.t_doc)
        registry;
      exit 0
    end;
    match target with
    | None ->
        Format.eprintf "explore: a TARGET is required (try --list)@.";
        exit 2
    | Some name -> (
        match find name with
        | None ->
            Format.eprintf "explore: unknown target %S (try --list%s)@." name
              (if sanitize then " --sanitize" else "");
            exit 2
        | Some t ->
            let replay =
              match replay with
              | None -> None
              | Some s -> (
                  try Some (Sched.trace_of_string s)
                  with Invalid_argument m ->
                    Format.eprintf "explore: %s@." m;
                    exit 2)
            in
            let r =
              Explore.run_target t ~mode ~seed ~iters ~max_preemptions:preemptions
                ~max_steps ~depth ~replay
            in
            exit (Explore.report Format.std_formatter t r))
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Deterministic schedule exploration of the lock-free cores (sticky counter, \
          acquire-retire slots, CDRC weak upgrade); failures print a replayable schedule")
    Term.(
      const run $ list_arg $ sanitize_arg $ target_arg $ mode_arg $ seed_arg $ iters_arg
      $ preempt_arg $ depth_arg $ max_steps_arg $ replay_arg)

let () =
  let info =
    Cmd.info "cdrc-bench" ~version:"1.0.0"
      ~doc:
        "Benchmarks reproducing 'Turning Manual Concurrent Memory Reclamation into \
         Automatic Reference Counting' (PLDI 2022)"
  in
  let cmds =
    List.map run_set_exp_cmd Workload.Experiments.set_experiments
    @ [
        fig12_cmd; abl_sticky_cmd; abl_epochfreq_cmd; abl_hpslots_cmd; ext_stack_cmd;
        robustness_cmd; adaptivity_cmd; stats_cmd; obs_overhead_cmd; perf_cmd;
        kv_cmd; chaos_cmd; custom_cmd; explore_cmd;
      ]
  in
  exit (Cmd.eval (Cmd.group info cmds))
