(* Full benchmark harness: regenerates every figure of the paper's
   evaluation (§5) plus our ablations, preceded by a Bechamel
   micro-suite with one Test.make per table/figure (a single-threaded
   per-operation kernel of that figure's workload) and per-primitive
   costs.

   Environment knobs (all optional):
     BENCH_THREADS  — comma-separated sweep (default "1,2,4")
     BENCH_DURATION — seconds per data point (default 0.25)
     BENCH_SCALE    — divide structure sizes by this (default 1)
     BENCH_SKIP_MICRO=1 — skip the Bechamel section

   `main.exe perf` runs the pinned perf-trajectory matrix instead of
   the figure suite and writes a machine-readable summary (default
   BENCH.json, override with BENCH_PERF_OUT) for tools/bench_check —
   same output as `cdrc-bench perf`, reachable without cmdliner.

   See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
   paper-vs-measured record. *)

open Bechamel
open Toolkit

let getenv_default name default = match Sys.getenv_opt name with Some v -> v | None -> default

let threads =
  getenv_default "BENCH_THREADS" "1,2,4"
  |> String.split_on_char ','
  |> List.filter_map int_of_string_opt

let duration = float_of_string (getenv_default "BENCH_DURATION" "0.25")
let scale = int_of_string (getenv_default "BENCH_SCALE" "1")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite *)

module I = Workload.Instances

(* Per-figure kernels: a prefilled small structure and one operation of
   the figure's mix per run. Single-threaded per-op cost — the
   multi-domain versions below give the scalability picture. *)
let figure_kernel (type a) (module D : Ds.Set_intf.S with type t = a) ~size ~update_pct
    ~rq_pct ~rq_size =
  let d = D.create ~max_threads:1 () in
  let c = D.ctx d 0 in
  let rng = Repro_util.Rng.create ~seed:7 in
  let filled = ref 0 in
  while !filled < size do
    if D.insert c (Repro_util.Rng.int rng (2 * size)) then incr filled
  done;
  Staged.stage (fun () ->
      let r = Repro_util.Rng.int rng 100 in
      let key = Repro_util.Rng.int rng (2 * size) in
      if r < update_pct then
        if r land 1 = 0 then ignore (D.insert c key) else ignore (D.remove c key)
      else if r < update_pct + rq_pct then ignore (D.range_query c key (key + rq_size))
      else ignore (D.contains c key))

let figure_tests =
  [
    Test.make ~name:"fig11/tree-RCEBR upd50+rq50 kernel"
      (figure_kernel (module I.Tr_ebr) ~size:10_000 ~update_pct:50 ~rq_pct:50 ~rq_size:64);
    Test.make ~name:"fig12/queue-RCHP-weak pop-push kernel"
      (let q = I.Q_rc_hp.create ~max_threads:1 () in
       let c = I.Q_rc_hp.ctx q 0 in
       I.Q_rc_hp.enqueue c 1;
       Staged.stage (fun () ->
           match I.Q_rc_hp.dequeue c with
           | Some v -> I.Q_rc_hp.enqueue c v
           | None -> ()));
    Test.make ~name:"fig13a/list-RCEBR upd10 kernel"
      (figure_kernel (module I.Lr_ebr) ~size:1_000 ~update_pct:10 ~rq_pct:0 ~rq_size:0);
    Test.make ~name:"fig13b/hash-RCEBR upd10 kernel"
      (figure_kernel (module I.Hr_ebr) ~size:10_000 ~update_pct:10 ~rq_pct:0 ~rq_size:0);
    Test.make ~name:"fig13c/tree-RCEBR upd10 kernel"
      (figure_kernel (module I.Tr_ebr) ~size:10_000 ~update_pct:10 ~rq_pct:0 ~rq_size:0);
    Test.make ~name:"fig13d/tree-RCEBR upd50 kernel"
      (figure_kernel (module I.Tr_ebr) ~size:10_000 ~update_pct:50 ~rq_pct:0 ~rq_size:0);
    Test.make ~name:"fig13e/tree-RCEBR upd1 kernel"
      (figure_kernel (module I.Tr_ebr) ~size:10_000 ~update_pct:1 ~rq_pct:0 ~rq_size:0);
    Test.make ~name:"fig13f/tree-RCEBR upd100 kernel"
      (figure_kernel (module I.Tr_ebr) ~size:10_000 ~update_pct:100 ~rq_pct:0 ~rq_size:0);
  ]

let primitive_tests =
  let sticky = Sticky.Sticky_counter.create 1 in
  let casloop = Sticky.Casloop_counter.create 1 in
  let ebr = Smr.Ebr.create ~max_threads:1 () in
  let hp = Smr.Hp.create ~max_threads:1 () in
  let obj = ref 0 in
  let id = Smr.Ident.of_val obj in
  let module R = I.RC_ebr in
  let rt = R.create ~max_threads:1 () in
  let th = R.thread rt 0 in
  let sp = R.Shared.make th 42 in
  let cell = R.Asp.make th (R.Shared.ptr sp) in
  R.begin_critical_section th;
  [
    Test.make ~name:"prim/sticky inc+dec"
      (Staged.stage (fun () ->
           if Sticky.Sticky_counter.increment_if_not_zero sticky then
             ignore (Sticky.Sticky_counter.decrement sticky)));
    Test.make ~name:"prim/casloop inc+dec"
      (Staged.stage (fun () ->
           if Sticky.Casloop_counter.increment_if_not_zero casloop then
             ignore (Sticky.Casloop_counter.decrement casloop)));
    Test.make ~name:"prim/EBR critical section"
      (Staged.stage (fun () ->
           Smr.Ebr.begin_critical_section ebr ~pid:0;
           Smr.Ebr.end_critical_section ebr ~pid:0));
    Test.make ~name:"prim/HP announce+confirm+release"
      (Staged.stage (fun () ->
           match Smr.Hp.try_acquire hp ~pid:0 id with
           | Some g ->
               ignore (Smr.Hp.confirm hp ~pid:0 g id);
               Smr.Hp.release hp ~pid:0 g
           | None -> ()));
    Test.make ~name:"prim/RCEBR asp load+drop"
      (Staged.stage (fun () ->
           let p = R.Asp.load th cell in
           R.Shared.drop th p));
    Test.make ~name:"prim/RCEBR asp get_snapshot+drop"
      (Staged.stage (fun () ->
           let s = R.Asp.get_snapshot th cell in
           R.Snapshot.drop th s));
    Test.make ~name:"prim/RCEBR asp store"
      (Staged.stage (fun () -> R.Asp.store th cell (R.Shared.ptr sp)));
  ]

let run_micro () =
  let tests = Test.make_grouped ~name:"cdrc" (figure_tests @ primitive_tests) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "@.== Bechamel micro-suite (ns/op, single-threaded kernels) ==@.@.";
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Format.printf "%-45s %12.1f ns/op@." name est
      | _ -> Format.printf "%-45s %12s@." name "n/a")
    (List.sort compare rows);
  Format.printf "@."

(* ------------------------------------------------------------------ *)

let run_perf () =
  let out = getenv_default "BENCH_PERF_OUT" "BENCH.json" in
  let label = Filename.remove_extension (Filename.basename out) in
  Format.printf "cdrc_repro perf matrix — threads=%s duration=%.2fs out=%s@."
    (String.concat "," (List.map string_of_int threads))
    duration out;
  let s =
    Workload.Perf_runner.run ~label ~threads ~duration
      ~log:(fun m -> Format.eprintf "perf: %s@." m)
      ()
  in
  (match
     Obs.Perf.validate ~require_schemes:Workload.Perf_runner.required_schemes s
   with
  | Ok () -> ()
  | Error e ->
      Format.eprintf "perf: summary INVALID: %s@." e;
      exit 1);
  let oc = open_out out in
  output_string oc (Obs.Perf.to_string s);
  output_char oc '\n';
  close_out oc;
  Format.printf "perf summary written to %s (%d cells, %d atomic profiles)@." out
    (List.length s.Obs.Perf.s_cells)
    (List.length s.Obs.Perf.s_atomics)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "perf" then begin
    run_perf ();
    exit 0
  end;
  Format.printf
    "cdrc_repro benchmark suite — threads=%s duration=%.2fs scale=%d (1 = paper sizes)@."
    (String.concat "," (List.map string_of_int threads))
    duration scale;
  Format.printf "host: %d recommended domains@." (Domain.recommended_domain_count ());
  if Sys.getenv_opt "BENCH_SKIP_MICRO" = None then run_micro ();
  List.iter
    (fun e -> ignore (Workload.Experiments.run_set_exp ~threads ~duration ~scale e))
    Workload.Experiments.set_experiments;
  ignore (Workload.Experiments.run_fig12 ~threads ~duration ());
  Workload.Experiments.run_abl_sticky ~threads ~duration ();
  Workload.Experiments.run_abl_epochfreq
    ~threads:(List.fold_left max 1 threads)
    ~duration ();
  Workload.Experiments.run_abl_hpslots
    ~threads:(min 2 (List.fold_left max 1 threads))
    ~duration ();
  Workload.Experiments.run_ext_stack ~threads ~duration ();
  Format.printf "done.@."
