(* A concurrent read-mostly configuration cache: reader domains take
   snapshots of the current configuration (no reference-count traffic
   on the fast path) while a writer publishes fresh versions with
   atomic stores. Old versions reclaim automatically once the last
   reader drops its snapshot — the motivating RCU-style usage for
   making manual SMR automatic.

   This is the single-slot teaching example. The full serving
   workload it motivated — a sharded KV store with per-key value
   slots, TTL expiry, Zipfian/hotspot key skew and per-shard adaptive
   controllers — is promoted to [Workload.Kv_service] (DESIGN.md
   §12); drive it with `cdrc-bench kv`.

   Run with:  dune exec examples/kv_cache.exe *)

module R = Cdrc.Make (Smr.Ebr)

type config = { version : int; origins : string list; limit : int }

let () =
  let readers = 3 in
  let rt = R.create ~max_threads:(readers + 1) () in
  let th0 = R.thread rt 0 in
  let initial = R.Shared.make th0 { version = 0; origins = [ "localhost" ]; limit = 100 } in
  let current = R.Asp.make th0 (R.Shared.ptr initial) in
  R.Shared.drop th0 initial;

  let stop = Atomic.make false in
  let reads = Atomic.make 0 in
  let stale = Atomic.make 0 in

  let reader pid () =
    let th = R.thread rt pid in
    let last_seen = ref 0 in
    while not (Atomic.get stop) do
      R.critically th (fun () ->
          (* Snapshot read: safe even if the writer republishes and the
             old config's count would otherwise hit zero mid-read. *)
          let snap = R.Asp.get_snapshot th current in
          let cfg = R.Snapshot.get snap in
          if cfg.version < !last_seen then ignore (Atomic.fetch_and_add stale 1);
          last_seen := cfg.version;
          assert (List.length cfg.origins = 1 + (cfg.version mod 3));
          ignore (Sys.opaque_identity cfg.limit);
          R.Snapshot.drop th snap);
      ignore (Atomic.fetch_and_add reads 1)
    done;
    R.flush th
  in

  let versions = 2_000 in
  let writer () =
    for v = 1 to versions do
      let cfg =
        {
          version = v;
          origins = List.init (1 + (v mod 3)) (Printf.sprintf "host-%d");
          limit = 100 + v;
        }
      in
      let p = R.Shared.make th0 cfg in
      R.critically th0 (fun () -> R.Asp.store th0 current (R.Shared.ptr p));
      R.Shared.drop th0 p;
      if v mod 100 = 0 then R.flush th0
    done
  in

  let ds = List.init readers (fun i -> Domain.spawn (reader (i + 1))) in
  writer ();
  Atomic.set stop true;
  List.iter Domain.join ds;
  Printf.printf "published %d versions; %d snapshot reads; %d stale reads (must be 0)\n"
    versions (Atomic.get reads) (Atomic.get stale);
  Printf.printf
    "live objects before teardown: %d (stale versions may be retained while reader \
     sections pin old epochs on an oversubscribed host)\n"
    (R.live_objects rt);
  R.critically th0 (fun () -> R.Asp.clear th0 current);
  R.quiesce rt;
  Printf.printf "live objects after clearing: %d (0 = all stale versions reclaimed)\n"
    (R.live_objects rt);
  assert (Atomic.get stale = 0);
  assert (R.live_objects rt = 0)
